// Process-level replay engine tests: three-engine byte identity (simulated
// vs thread pool vs forked processes) over the shared plan, skewed
// partitions, sampling, partition-level failure reporting, and the
// corruption-safety of the CRC-framed worker result files.

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "checkpoint/gc.h"
#include "env/result_file.h"
#include "env/scratch.h"
#include "exec/process_executor.h"
#include "exec/replay_executor.h"
#include "flor/record.h"
#include "sim/parallel_replay.h"
#include "test_util.h"
#include "workloads/programs.h"

namespace flor {
namespace {

using workloads::kProbeInner;
using workloads::kProbeNone;
using workloads::MakeWorkloadFactory;
using workloads::WorkloadProfile;

WorkloadProfile ProcProfile(int64_t epochs = 12) {
  WorkloadProfile p;
  p.name = "ProcT";
  p.epochs = epochs;
  p.sim_epoch_seconds = 100;
  p.sim_outer_seconds = 2;
  p.sim_preamble_seconds = 5;
  p.sim_ckpt_raw_bytes = 1 << 20;  // cheap: dense checkpoints
  p.task_kind = data::Task::kVision;
  p.real_samples = 32;
  p.real_batch = 8;
  p.real_feature_dim = 12;
  p.real_classes = 3;
  p.real_hidden = 12;
  p.seed = testutil::TestSeed(29);
  return p;
}

void RecordOnto(FileSystem* fs, const WorkloadProfile& profile) {
  Env env(std::make_unique<SimClock>(), fs);
  auto instance = MakeWorkloadFactory(profile, kProbeNone)();
  ASSERT_TRUE(instance.ok());
  RecordSession session(&env,
                        workloads::DefaultRecordOptions(profile, "run"));
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

Result<exec::ProcessReplayExecutorResult> RunProcesses(
    FileSystem* fs, const WorkloadProfile& p, int partitions,
    exec::ProcessReplayExecutorOptions opts = {}) {
  opts.run_prefix = "run";
  opts.num_partitions = partitions;
  opts.init_mode = InitMode::kWeak;
  exec::ProcessReplayExecutor executor(fs, opts);
  return executor.Run(MakeWorkloadFactory(p, kProbeInner));
}

Result<exec::ReplayExecutorResult> RunThreads(FileSystem* fs,
                                              const WorkloadProfile& p,
                                              int threads, int partitions) {
  exec::ReplayExecutorOptions xopts;
  xopts.run_prefix = "run";
  xopts.num_threads = threads;
  xopts.num_partitions = partitions;
  xopts.init_mode = InitMode::kWeak;
  exec::ReplayExecutor executor(fs, xopts);
  return executor.Run(MakeWorkloadFactory(p, kProbeInner));
}

class ProcessReplayTest : public testutil::ScratchDirTest {};

TEST_F(ProcessReplayTest, ThreeEngineByteIdentityAcrossPartitionCounts) {
  PosixFileSystem fs(root());
  const WorkloadProfile profile = ProcProfile();
  RecordOnto(&fs, profile);

  // Engine 1: simulated cluster (the paper-scale model), G=4.
  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.init_mode = InitMode::kWeak;
  auto sim_result = sim::ClusterReplay(
      MakeWorkloadFactory(profile, kProbeInner), &fs, copts);
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  ASSERT_TRUE(sim_result->deferred.ok);
  const std::string baseline = sim_result->merged_logs.Serialize();
  ASSERT_FALSE(baseline.empty());

  // Engines 2 and 3 must merge the exact same bytes at every partition
  // count (merging concatenates partitions in epoch order, so G is
  // invisible in the merged stream).
  for (int partitions : {1, 2, 4, 8}) {
    auto threaded = RunThreads(&fs, profile, partitions, partitions);
    ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
    EXPECT_TRUE(threaded->deferred.ok);
    EXPECT_EQ(threaded->merged_logs.Serialize(), baseline)
        << "thread engine diverges at G=" << partitions;

    auto proc = RunProcesses(&fs, profile, partitions);
    ASSERT_TRUE(proc.ok()) << proc.status().ToString();
    EXPECT_TRUE(proc->deferred.ok)
        << (proc->deferred.anomalies.empty() ? ""
                                             : proc->deferred.anomalies[0]);
    EXPECT_EQ(proc->merged_logs.Serialize(), baseline)
        << "process engine diverges at G=" << partitions;
    EXPECT_EQ(proc->processes_used, proc->workers_used);
    EXPECT_EQ(proc->workers_used, threaded->workers_used);
    EXPECT_GT(proc->wall_seconds, 0);
    EXPECT_EQ(proc->total_forks, proc->workers_used);
    EXPECT_LE(proc->max_observed_children, proc->pool_size);
    EXPECT_EQ(proc->retried_partitions, 0);

    // Full-stats parity with the thread engine, not just the log bytes:
    // the result files carried everything across the process boundary.
    EXPECT_EQ(proc->partition_segments, threaded->partition_segments);
    EXPECT_EQ(proc->effective_init, threaded->effective_init);
    EXPECT_EQ(proc->deferred.entries_compared,
              threaded->deferred.entries_compared);
    EXPECT_EQ(proc->skipblocks.executed, threaded->skipblocks.executed);
    EXPECT_EQ(proc->skipblocks.skipped, threaded->skipblocks.skipped);
    EXPECT_EQ(proc->skipblocks.restores, threaded->skipblocks.restores);
    ASSERT_EQ(proc->probe_entries.size(), threaded->probe_entries.size());
    for (size_t i = 0; i < proc->probe_entries.size(); ++i)
      EXPECT_EQ(proc->probe_entries[i], threaded->probe_entries[i]);
    ASSERT_EQ(proc->worker_seconds.size(), threaded->worker_seconds.size());
  }

  // The invariant must also survive the scheduler: G=8 partitions over a
  // pool smaller than G complete out of order relative to fork order, and
  // the merged bytes must not move.
  for (int pool : {2, 3}) {
    exec::ProcessReplayExecutorOptions popts;
    popts.max_concurrent_children = pool;
    auto proc = RunProcesses(&fs, profile, /*partitions=*/8, popts);
    ASSERT_TRUE(proc.ok()) << proc.status().ToString();
    EXPECT_TRUE(proc->deferred.ok);
    EXPECT_EQ(proc->merged_logs.Serialize(), baseline)
        << "process engine diverges at G=8 pool=" << pool;
    EXPECT_EQ(proc->pool_size, pool);
    EXPECT_LE(proc->max_observed_children, pool);
  }

  // ...and retried partitions: a worker SIGKILLed on its first attempt is
  // re-forked, and the attempt-2 fragment merges to the same bytes.
  exec::ProcessReplayExecutorOptions retry_opts;
  retry_opts.max_concurrent_children = 2;
  retry_opts.child_before_session = [](int worker_id, int attempt) {
    if (worker_id == 5 && attempt == 1) raise(SIGKILL);
  };
  auto retried = RunProcesses(&fs, profile, /*partitions=*/8, retry_opts);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_TRUE(retried->deferred.ok);
  EXPECT_EQ(retried->merged_logs.Serialize(), baseline)
      << "process engine diverges after a retried partition";
  EXPECT_EQ(retried->retried_partitions, 1);
  EXPECT_EQ(retried->total_forks, retried->workers_used + 1);
  ASSERT_EQ(retried->partition_attempts.size(),
            static_cast<size_t>(retried->workers_used));
  EXPECT_EQ(retried->partition_attempts[5], 2);
}

TEST_F(ProcessReplayTest, ThreeEngineByteIdentityOnDemotedStore) {
  // A store GC'd down to keep_last_k=1 with a populated bucket mirror must
  // replay green and byte-identical across all three engines, every one
  // faulting retired checkpoints back from the bucket.
  PosixFileSystem fs(root());
  const WorkloadProfile profile = ProcProfile();
  {
    Env env(std::make_unique<SimClock>(), &fs);
    auto instance = MakeWorkloadFactory(profile, kProbeNone)();
    ASSERT_TRUE(instance.ok());
    RecordOptions opts = workloads::DefaultRecordOptions(profile, "run");
    opts.spool_prefix = "s3";
    RecordSession session(&env, opts);
    exec::Frame frame;
    auto recorded = session.Run(instance->program.get(), &frame);
    ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
  }

  // Pre-GC baseline, no bucket involvement.
  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.init_mode = InitMode::kWeak;
  auto before = sim::ClusterReplay(
      MakeWorkloadFactory(profile, kProbeInner), &fs, copts);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_TRUE(before->deferred.ok);
  const std::string baseline = before->merged_logs.Serialize();

  GcPolicy policy;
  policy.keep_last_k = 1;
  auto gc = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy, "s3");
  ASSERT_TRUE(gc.ok()) << gc.status().ToString();
  ASSERT_TRUE(gc->demoted_to_bucket);
  ASSERT_GT(gc->retired_objects(), 0);

  // Rehydration off everywhere so the store stays demoted between engines
  // and each one observes the same fault set.
  copts.bucket_prefix = "s3";
  copts.bucket_rehydrate = false;
  auto sim_result = sim::ClusterReplay(
      MakeWorkloadFactory(profile, kProbeInner), &fs, copts);
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  EXPECT_TRUE(sim_result->deferred.ok);
  EXPECT_GT(sim_result->bucket_faults, 0);
  EXPECT_EQ(sim_result->merged_logs.Serialize(), baseline);

  exec::ReplayExecutorOptions xopts;
  xopts.run_prefix = "run";
  xopts.num_threads = 4;
  xopts.num_partitions = 4;
  xopts.init_mode = InitMode::kWeak;
  xopts.bucket_prefix = "s3";
  xopts.bucket_rehydrate = false;
  auto threaded = exec::ReplayExecutor(&fs, xopts)
                      .Run(MakeWorkloadFactory(profile, kProbeInner));
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
  EXPECT_TRUE(threaded->deferred.ok);
  EXPECT_GT(threaded->bucket_faults, 0);
  EXPECT_EQ(threaded->merged_logs.Serialize(), baseline);

  exec::ProcessReplayExecutorOptions popts;
  popts.bucket_prefix = "s3";
  popts.bucket_rehydrate = false;
  auto proc = RunProcesses(&fs, profile, /*partitions=*/4, popts);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  EXPECT_TRUE(proc->deferred.ok)
      << (proc->deferred.anomalies.empty() ? ""
                                           : proc->deferred.anomalies[0]);
  EXPECT_EQ(proc->merged_logs.Serialize(), baseline);
  // The fault count crossed the process boundary through the framed
  // result files and matches the same-plan thread engine exactly.
  EXPECT_EQ(proc->bucket_faults, threaded->bucket_faults);
}

TEST_F(ProcessReplayTest, SkewedPartitionsStress) {
  PosixFileSystem fs(root());
  // Expensive checkpoints make the adaptive controller sparse (the RTE
  // regime): fewer boundary epochs than requested partitions, so the
  // planner clamps and the surviving segments are skewed.
  WorkloadProfile profile = ProcProfile(18);
  profile.sim_ckpt_raw_bytes = 4ull << 30;
  RecordOnto(&fs, profile);

  auto threaded = RunThreads(&fs, profile, /*threads=*/2, /*partitions=*/8);
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();

  auto proc = RunProcesses(&fs, profile, /*partitions=*/8);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  EXPECT_TRUE(proc->deferred.ok)
      << (proc->deferred.anomalies.empty() ? ""
                                           : proc->deferred.anomalies[0]);
  EXPECT_LT(proc->workers_used, 8);
  EXPECT_GE(proc->workers_used, 2);
  EXPECT_EQ(proc->workers_used, threaded->workers_used);
  EXPECT_EQ(proc->merged_logs.Serialize(),
            threaded->merged_logs.Serialize());
}

TEST_F(ProcessReplayTest, SamplingReplayRunsSingleProcess) {
  PosixFileSystem fs(root());
  const WorkloadProfile profile = ProcProfile(12);
  RecordOnto(&fs, profile);

  exec::ProcessReplayExecutorOptions popts;
  popts.sample_epochs = {3, 7};
  auto proc = RunProcesses(&fs, profile, /*partitions=*/4, popts);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  EXPECT_EQ(proc->processes_used, 1);
  EXPECT_EQ(proc->worker_seconds.size(), 1u);
  EXPECT_TRUE(proc->deferred.ok);
  // Probe output for exactly the sampled epochs' batches.
  EXPECT_EQ(proc->probe_entries.size(), 2u * 4u);

  exec::ReplayExecutorOptions xopts;
  xopts.run_prefix = "run";
  xopts.num_threads = 4;
  xopts.sample_epochs = {3, 7};
  xopts.init_mode = InitMode::kWeak;
  auto threaded = exec::ReplayExecutor(&fs, xopts)
                      .Run(MakeWorkloadFactory(profile, kProbeInner));
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
  EXPECT_EQ(proc->merged_logs.Serialize(),
            threaded->merged_logs.Serialize());
}

TEST_F(ProcessReplayTest, MemFileSystemRecordReplaysViaForkSnapshot) {
  // The benches record into a MemFileSystem; children read the record
  // artifacts through fork's copy-on-write snapshot while results travel
  // through the posix scratch directory.
  MemFileSystem fs;
  const WorkloadProfile profile = ProcProfile();
  {
    Env env(std::make_unique<SimClock>(), &fs);
    auto instance = MakeWorkloadFactory(profile, kProbeNone)();
    ASSERT_TRUE(instance.ok());
    RecordSession session(&env,
                          workloads::DefaultRecordOptions(profile, "run"));
    exec::Frame frame;
    auto recorded = session.Run(instance->program.get(), &frame);
    ASSERT_TRUE(recorded.ok()) << recorded.status().ToString();
  }

  auto proc = RunProcesses(&fs, profile, /*partitions=*/4);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  EXPECT_TRUE(proc->deferred.ok);

  auto threaded = RunThreads(&fs, profile, /*threads=*/4, /*partitions=*/4);
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
  EXPECT_EQ(proc->merged_logs.Serialize(),
            threaded->merged_logs.Serialize());
}

TEST_F(ProcessReplayTest, ReportsExactlyWhichPartitionDied) {
  PosixFileSystem fs(root());
  const WorkloadProfile profile = ProcProfile();
  RecordOnto(&fs, profile);

  const std::string scratch = root() + "/scratch";
  exec::ProcessReplayExecutorOptions popts;
  popts.scratch_dir = scratch;
  // max_attempts=1 is the pre-scheduler contract, preserved verbatim: no
  // retry, the dead partition fails the replay by name.
  popts.max_attempts = 1;
  popts.child_before_session = [](int worker_id, int) {
    if (worker_id == 1) raise(SIGKILL);  // a worker lost mid-partition
  };
  auto failed = RunProcesses(&fs, profile, /*partitions=*/4, popts);
  ASSERT_FALSE(failed.ok());
  const std::string msg = failed.status().message();
  EXPECT_NE(msg.find("partition 1/4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("signal 9"), std::string::npos) << msg;
  // Only the dead partition is reported...
  EXPECT_EQ(msg.find("partition 0"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("partition 2"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("partition 3"), std::string::npos) << msg;

  // ...and the surviving workers' fragments are intact on disk: present,
  // CRC-clean, and decodable into non-empty log fragments.
  PosixFileSystem scratch_fs(scratch);
  for (int w : {0, 2, 3}) {
    auto bytes = scratch_fs.ReadFile(
        exec::ProcessReplayExecutor::ResultFileName(w));
    ASSERT_TRUE(bytes.ok()) << "worker " << w;
    auto decoded = DecodeWorkerResult(*bytes);
    ASSERT_TRUE(decoded.ok())
        << "worker " << w << ": " << decoded.status().ToString();
    EXPECT_GT(decoded->logs.size(), 0u) << "worker " << w;
  }
  EXPECT_FALSE(scratch_fs.Exists(
      exec::ProcessReplayExecutor::ResultFileName(1)));

  // Rerunning the same plan without the fault replays green.
  exec::ProcessReplayExecutorOptions clean;
  clean.scratch_dir = scratch;
  auto rerun = RunProcesses(&fs, profile, /*partitions=*/4, clean);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_TRUE(rerun->deferred.ok);
}

TEST_F(ProcessReplayTest, AutoScratchIsPreservedOnPartitionFailure) {
  // With no caller-supplied scratch_dir, the executor mkdtemps its own —
  // normally removed after the run, but on a partition failure it must be
  // preserved (and named in the error) so the surviving fragments stay
  // inspectable.
  PosixFileSystem fs(root());
  const WorkloadProfile profile = ProcProfile();
  RecordOnto(&fs, profile);

  exec::ProcessReplayExecutorOptions popts;  // scratch_dir empty
  popts.max_attempts = 1;
  popts.child_before_session = [](int worker_id, int) {
    if (worker_id == 1) raise(SIGKILL);
  };
  auto failed = RunProcesses(&fs, profile, /*partitions=*/4, popts);
  ASSERT_FALSE(failed.ok());
  const std::string msg = failed.status().message();
  const std::string marker = "[surviving fragments in ";
  const size_t at = msg.find(marker);
  ASSERT_NE(at, std::string::npos) << msg;
  const size_t end = msg.find(']', at);
  ASSERT_NE(end, std::string::npos) << msg;
  const std::string scratch =
      msg.substr(at + marker.size(), end - at - marker.size());

  PosixFileSystem scratch_fs(scratch);
  for (int w : {0, 2, 3}) {
    auto bytes = scratch_fs.ReadFile(
        exec::ProcessReplayExecutor::ResultFileName(w));
    ASSERT_TRUE(bytes.ok()) << "worker " << w << " in " << scratch;
    EXPECT_TRUE(DecodeWorkerResult(*bytes).ok()) << "worker " << w;
  }
  std::filesystem::remove_all(scratch);  // manual cleanup of the keep
}

TEST_F(ProcessReplayTest, ChildReplayFailureReturnsPartitionStatus) {
  PosixFileSystem fs(root());
  const WorkloadProfile profile = ProcProfile();
  RecordOnto(&fs, profile);

  // Single-worker (sampling) plan whose child deletes the record logs
  // before replaying: the session fails inside the child and the status
  // must cross the process boundary through the framed error file.
  const std::string run_root = root();
  exec::ProcessReplayExecutorOptions popts;
  popts.sample_epochs = {3};
  // Default max_attempts: a *clean* replay failure is deterministic and
  // must not be retried even with retry budget left.
  popts.child_before_session = [run_root](int, int) {
    PosixFileSystem child_fs(run_root);
    (void)child_fs.DeleteFile("run/logs.tsv");
    (void)child_fs.DeleteFile("run/manifest.tsv");
  };
  auto failed = RunProcesses(&fs, profile, /*partitions=*/1, popts);
  ASSERT_FALSE(failed.ok());
  EXPECT_NE(failed.status().message().find("partition 0/1"),
            std::string::npos)
      << failed.status().ToString();
  EXPECT_TRUE(failed.status().IsNotFound()) << failed.status().ToString();
}

TEST_F(ProcessReplayTest, StaleScratchFilesNeverPassForFreshResults) {
  PosixFileSystem fs(root());
  const WorkloadProfile profile = ProcProfile();
  RecordOnto(&fs, profile);

  // Seed the caller-supplied scratch dir with plausible-looking garbage at
  // every worker path; the run must clear it and still merge correctly.
  const std::string scratch = root() + "/scratch";
  PosixFileSystem scratch_fs(scratch);
  for (int w = 0; w < 4; ++w) {
    ASSERT_TRUE(scratch_fs
                    .WriteFile(
                        exec::ProcessReplayExecutor::ResultFileName(w),
                        "stale garbage from a previous run")
                    .ok());
  }
  exec::ProcessReplayExecutorOptions popts;
  popts.scratch_dir = scratch;
  auto proc = RunProcesses(&fs, profile, /*partitions=*/4, popts);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  EXPECT_TRUE(proc->deferred.ok);

  auto threaded = RunThreads(&fs, profile, /*threads=*/4, /*partitions=*/4);
  ASSERT_TRUE(threaded.ok());
  EXPECT_EQ(proc->merged_logs.Serialize(),
            threaded->merged_logs.Serialize());
}

// ------------------------------------------------- scheduler behavior ---

TEST_F(ProcessReplayTest, SigkilledPartitionIsRetriedAndReplaySucceeds) {
  PosixFileSystem fs(root());
  const WorkloadProfile profile = ProcProfile();
  RecordOnto(&fs, profile);

  const std::string scratch = root() + "/scratch";
  exec::ProcessReplayExecutorOptions popts;  // default max_attempts = 2
  popts.scratch_dir = scratch;
  popts.max_concurrent_children = 2;
  popts.child_before_session = [](int worker_id, int attempt) {
    if (worker_id == 1 && attempt == 1) raise(SIGKILL);
  };
  auto proc = RunProcesses(&fs, profile, /*partitions=*/4, popts);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  EXPECT_TRUE(proc->deferred.ok);
  EXPECT_EQ(proc->retried_partitions, 1);
  EXPECT_EQ(proc->total_forks, proc->workers_used + 1);
  ASSERT_EQ(proc->partition_attempts.size(), 4u);
  EXPECT_EQ(proc->partition_attempts[1], 2);

  // The dead attempt committed nothing at its name; the retry committed
  // at the attempt-2 name.
  PosixFileSystem scratch_fs(scratch);
  EXPECT_FALSE(scratch_fs.Exists(
      exec::ProcessReplayExecutor::ResultFileName(1, 1)));
  auto bytes = scratch_fs.ReadFile(
      exec::ProcessReplayExecutor::ResultFileName(1, 2));
  ASSERT_TRUE(bytes.ok());
  EXPECT_TRUE(DecodeWorkerResult(*bytes).ok());

  auto threaded = RunThreads(&fs, profile, /*threads=*/4, /*partitions=*/4);
  ASSERT_TRUE(threaded.ok());
  EXPECT_EQ(proc->merged_logs.Serialize(),
            threaded->merged_logs.Serialize());
}

TEST_F(ProcessReplayTest, RetriesExhaustedFailsNamingAttempts) {
  PosixFileSystem fs(root());
  const WorkloadProfile profile = ProcProfile();
  RecordOnto(&fs, profile);

  const std::string scratch = root() + "/scratch";
  exec::ProcessReplayExecutorOptions popts;
  popts.scratch_dir = scratch;
  popts.max_attempts = 2;
  popts.child_before_session = [](int worker_id, int) {
    if (worker_id == 1) raise(SIGKILL);  // every attempt dies
  };
  auto failed = RunProcesses(&fs, profile, /*partitions=*/4, popts);
  ASSERT_FALSE(failed.ok());
  const std::string msg = failed.status().message();
  EXPECT_NE(msg.find("partition 1/4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("signal 9"), std::string::npos) << msg;
  EXPECT_NE(msg.find("2 attempts"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("partition 0"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("partition 2"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("partition 3"), std::string::npos) << msg;

  // Survivors are intact despite two rounds of carnage on partition 1.
  PosixFileSystem scratch_fs(scratch);
  for (int w : {0, 2, 3}) {
    auto bytes = scratch_fs.ReadFile(
        exec::ProcessReplayExecutor::ResultFileName(w));
    ASSERT_TRUE(bytes.ok()) << "worker " << w;
    EXPECT_TRUE(DecodeWorkerResult(*bytes).ok()) << "worker " << w;
  }
}

namespace capstats {

// Cross-process concurrency high-water mark, updated by every child under
// an exclusive flock on "<scratch>/cap-stats" ("<started> <max>"). A
// child is concurrent from fork until its committed result file becomes
// visible (children _exit immediately after committing, and the parent
// only reuses the slot after reaping that exit), so
// `started - committed_results_visible` bounds the number of live
// siblings from above at the instant of the update.
constexpr char kFile[] = "cap-stats";

void Bump(const std::string& scratch, int partitions) {
  const std::string path = scratch + "/" + kFile;
  const int fd = open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) _exit(97);
  if (flock(fd, LOCK_EX) != 0) _exit(97);
  char buf[64] = {0};
  int started = 0, high_water = 0;
  if (pread(fd, buf, sizeof(buf) - 1, 0) > 0)
    sscanf(buf, "%d %d", &started, &high_water);  // NOLINT(runtime/printf)
  ++started;
  PosixFileSystem scratch_fs(scratch);
  int committed = 0;
  for (int w = 0; w < partitions; ++w) {
    if (scratch_fs.Exists(exec::ProcessReplayExecutor::ResultFileName(w)))
      ++committed;
  }
  high_water = std::max(high_water, started - committed);
  const int n = snprintf(buf, sizeof(buf), "%d %d", started, high_water);
  if (pwrite(fd, buf, static_cast<size_t>(n), 0) != n) _exit(97);
  close(fd);  // releases the lock
}

void Read(const std::string& scratch, int* started, int* high_water) {
  PosixFileSystem scratch_fs(scratch);
  auto bytes = scratch_fs.ReadFile(kFile);
  ASSERT_TRUE(bytes.ok());
  ASSERT_EQ(sscanf(bytes->c_str(), "%d %d", started, high_water), 2);
}

}  // namespace capstats

TEST_F(ProcessReplayTest, ConcurrentChildrenNeverExceedPoolCap) {
  PosixFileSystem fs(root());
  const WorkloadProfile profile = ProcProfile();
  RecordOnto(&fs, profile);

  const std::string scratch = root() + "/scratch";
  const int kPartitions = 8;
  const int kPool = 2;
  exec::ProcessReplayExecutorOptions popts;
  popts.scratch_dir = scratch;
  popts.max_concurrent_children = kPool;
  popts.child_before_session = [scratch](int, int) {
    capstats::Bump(scratch, kPartitions);
  };
  auto proc = RunProcesses(&fs, profile, kPartitions, popts);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  // The planner may clamp below the requested G; what matters is that the
  // active count exceeds the pool so the scheduler actually queues.
  EXPECT_GT(proc->workers_used, kPool);
  EXPECT_EQ(proc->pool_size, kPool);
  EXPECT_LE(proc->max_observed_children, kPool);

  int started = 0, high_water = 0;
  capstats::Read(scratch, &started, &high_water);
  EXPECT_EQ(started, proc->workers_used);  // every partition ran once
  EXPECT_GE(high_water, 1);
  EXPECT_LE(high_water, kPool) << "pool cap breached";
}

TEST_F(ProcessReplayTest, SpeculativeReforkOutpacesStraggler) {
  PosixFileSystem fs(root());
  const WorkloadProfile profile = ProcProfile();
  RecordOnto(&fs, profile);

  const std::string scratch = root() + "/scratch";
  exec::ProcessReplayExecutorOptions popts;
  popts.scratch_dir = scratch;
  popts.max_concurrent_children = 4;
  popts.speculate_stragglers = true;
  popts.child_before_result_write = [](int worker_id, int attempt) {
    // Partition 3's first attempt stalls just before committing — the
    // lost-in-the-cluster straggler. Its speculative twin (attempt 2)
    // commits immediately; the sleeper is killed and reaped. If
    // speculation were broken this would still pass the merge but fail
    // the stats assertions 60 seconds later.
    if (worker_id == 3 && attempt == 1) sleep(60);
  };
  auto proc = RunProcesses(&fs, profile, /*partitions=*/4, popts);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();
  EXPECT_TRUE(proc->deferred.ok);
  EXPECT_EQ(proc->speculative_forks, 1);
  EXPECT_EQ(proc->speculative_wins, 1);
  EXPECT_EQ(proc->retried_partitions, 0);  // speculation, not death retry
  ASSERT_EQ(proc->partition_attempts.size(), 4u);
  EXPECT_EQ(proc->partition_attempts[3], 2);

  // The winner committed at the attempt-2 name; the killed straggler
  // never committed at its own.
  PosixFileSystem scratch_fs(scratch);
  EXPECT_FALSE(scratch_fs.Exists(
      exec::ProcessReplayExecutor::ResultFileName(3, 1)));
  EXPECT_TRUE(scratch_fs.Exists(
      exec::ProcessReplayExecutor::ResultFileName(3, 2)));

  auto threaded = RunThreads(&fs, profile, /*threads=*/4, /*partitions=*/4);
  ASSERT_TRUE(threaded.ok());
  EXPECT_EQ(proc->merged_logs.Serialize(),
            threaded->merged_logs.Serialize());
}

TEST_F(ProcessReplayTest, ShrinkingPartitionCountClearsAllStaleScratch) {
  PosixFileSystem fs(root());
  const WorkloadProfile profile = ProcProfile();
  RecordOnto(&fs, profile);

  // First run: G=4 with a retried partition, so the caller-owned scratch
  // holds worker-0..3 results *plus* an attempt-suffixed fragment.
  const std::string scratch = root() + "/scratch";
  exec::ProcessReplayExecutorOptions popts;
  popts.scratch_dir = scratch;
  popts.child_before_session = [](int worker_id, int attempt) {
    if (worker_id == 3 && attempt == 1) raise(SIGKILL);
  };
  auto first = RunProcesses(&fs, profile, /*partitions=*/4, popts);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  PosixFileSystem scratch_fs(scratch);
  ASSERT_TRUE(scratch_fs.Exists(
      exec::ProcessReplayExecutor::ResultFileName(3, 2)));

  // Second run shrinks to G=2: every stale file from the wider run —
  // including ids past the new active count and attempt-suffixed names
  // the per-id clearing loop used to miss — must be gone afterwards.
  exec::ProcessReplayExecutorOptions narrow;
  narrow.scratch_dir = scratch;
  auto second = RunProcesses(&fs, profile, /*partitions=*/2, narrow);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_TRUE(second->deferred.ok);
  EXPECT_FALSE(scratch_fs.Exists(
      exec::ProcessReplayExecutor::ResultFileName(2)));
  EXPECT_FALSE(scratch_fs.Exists(
      exec::ProcessReplayExecutor::ResultFileName(3)));
  EXPECT_FALSE(scratch_fs.Exists(
      exec::ProcessReplayExecutor::ResultFileName(3, 2)));

  auto threaded = RunThreads(&fs, profile, /*threads=*/2, /*partitions=*/2);
  ASSERT_TRUE(threaded.ok());
  EXPECT_EQ(second->merged_logs.Serialize(),
            threaded->merged_logs.Serialize());
}

// ------------------------------------------- result-file corruption ---

TEST_F(ProcessReplayTest, WorkerResultRoundTripsExactly) {
  PosixFileSystem fs(root());
  const WorkloadProfile profile = ProcProfile();
  RecordOnto(&fs, profile);

  const std::string scratch = root() + "/scratch";
  exec::ProcessReplayExecutorOptions popts;
  popts.scratch_dir = scratch;
  auto proc = RunProcesses(&fs, profile, /*partitions=*/2, popts);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();

  PosixFileSystem scratch_fs(scratch);
  for (int w = 0; w < 2; ++w) {
    auto bytes = scratch_fs.ReadFile(
        exec::ProcessReplayExecutor::ResultFileName(w));
    ASSERT_TRUE(bytes.ok());
    auto decoded = DecodeWorkerResult(*bytes);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    // Re-encoding the decoded result reproduces the file bit-exactly —
    // the codec loses nothing (doubles travel as hexfloat).
    EXPECT_EQ(EncodeWorkerResult(*decoded), *bytes) << "worker " << w;
  }
}

TEST_F(ProcessReplayTest, TruncatedOrMutatedResultFileNeverParses) {
  // Property test mirroring the manifest fuzz suite: any truncation or
  // byte mutation of a real worker result file must yield Corruption —
  // never a crash, and never a silently decoded garbage fragment.
  PosixFileSystem fs(root());
  const WorkloadProfile profile = ProcProfile(6);
  RecordOnto(&fs, profile);

  const std::string scratch = root() + "/scratch";
  exec::ProcessReplayExecutorOptions popts;
  popts.scratch_dir = scratch;
  auto proc = RunProcesses(&fs, profile, /*partitions=*/2, popts);
  ASSERT_TRUE(proc.ok()) << proc.status().ToString();

  PosixFileSystem scratch_fs(scratch);
  auto bytes = scratch_fs.ReadFile(
      exec::ProcessReplayExecutor::ResultFileName(0));
  ASSERT_TRUE(bytes.ok());
  const std::string& full = *bytes;
  ASSERT_TRUE(DecodeWorkerResult(full).ok());

  Rng rng = testutil::SeededRng(53);
  // Every strict-prefix truncation in a window around each end plus a
  // random sample of interior cuts (O(n^2) over the whole file is slow).
  std::vector<size_t> cuts;
  for (size_t n = 0; n < std::min<size_t>(64, full.size()); ++n) {
    cuts.push_back(n);
    cuts.push_back(full.size() - 1 - n);
  }
  for (int i = 0; i < 200; ++i) cuts.push_back(rng.Uniform(full.size()));
  for (size_t cut : cuts) {
    auto got = DecodeWorkerResult(full.substr(0, cut));
    ASSERT_FALSE(got.ok()) << "cut at " << cut << " parsed";
    EXPECT_TRUE(got.status().IsCorruption())
        << "cut at " << cut << ": " << got.status().ToString();
  }
  // Random single- and few-byte mutations.
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = full;
    const int flips = 1 + static_cast<int>(rng.Uniform(3));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.Uniform(mutated.size());
      const char old = mutated[pos];
      char next = static_cast<char>(rng.Uniform(256));
      while (next == old) next = static_cast<char>(rng.Uniform(256));
      mutated[pos] = next;
    }
    auto got = DecodeWorkerResult(mutated);
    ASSERT_FALSE(got.ok()) << "trial " << trial << " parsed";
    EXPECT_TRUE(got.status().IsCorruption())
        << "trial " << trial << ": " << got.status().ToString();
  }
  // A missing result file is NotFound, not Corruption.
  auto missing = ReadResultFile(&scratch_fs, "worker-9.res");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
}

TEST_F(ProcessReplayTest, MissingRecordRunFailsCleanly) {
  PosixFileSystem fs(root());  // nothing recorded
  const WorkloadProfile profile = ProcProfile();
  auto result = RunProcesses(&fs, profile, /*partitions=*/2);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace flor

#endif  // __unix__ || __APPLE__
