// Property suites across the whole record/replay stack (DESIGN.md §6):
//   * loop memoization correctness over a family of program shapes,
//   * partitioned replay ≡ sequential replay for any worker count,
//   * the unsafe-analysis failure modes (hidden side effects, unmanaged
//     RNG) are caught by the deferred checks,
//   * refused (rule-5) loops still replay correctly by re-execution.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "flor/record.h"
#include "ir/builder.h"
#include "flor/replay.h"
#include "sim/parallel_replay.h"
#include "test_util.h"
#include "workloads/programs.h"

namespace flor {
namespace {

using exec::Frame;
using workloads::kProbeInner;
using workloads::kProbeNone;
using workloads::kProbeOuter;
using workloads::MakeWorkloadFactory;
using workloads::WorkloadProfile;
using workloads::WorkloadRuntime;

WorkloadProfile ShapedProfile(int64_t epochs, int64_t samples,
                              int64_t batch, uint64_t seed) {
  WorkloadProfile p;
  p.name = "Prop";
  p.epochs = epochs;
  p.sim_epoch_seconds = 10;
  p.sim_outer_seconds = 1;
  p.sim_preamble_seconds = 1;
  p.sim_ckpt_raw_bytes = 1 << 20;
  p.task_kind = data::Task::kVision;
  p.real_samples = samples;
  p.real_batch = batch;
  p.real_feature_dim = 12;
  p.real_classes = 3;
  p.real_hidden = 12;
  p.seed = seed;
  return p;
}

uint64_t RecordAndFingerprint(FileSystem* fs, const WorkloadProfile& p) {
  Env env = testutil::MakeSimEnv(fs);
  auto instance = MakeWorkloadFactory(p, kProbeNone)();
  EXPECT_TRUE(instance.ok());
  RecordOptions opts = workloads::DefaultRecordOptions(p, "run");
  RecordSession session(&env, opts);
  Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return static_cast<WorkloadRuntime*>(instance->context.get())
      ->net->StateFingerprint();
}

// ---------------------------------------------------------------------
// Property 1: restoring Loop End Checkpoints ≡ executing the loops, over a
// sweep of program shapes.
class MemoizationSweep : public ::testing::TestWithParam<
                             std::tuple<int64_t, int64_t, uint64_t>> {};

TEST_P(MemoizationSweep, ReplayReproducesRecordedState) {
  auto [epochs, batches, seed] = GetParam();
  const WorkloadProfile p =
      ShapedProfile(epochs, batches * 8, 8, seed);
  MemFileSystem fs;
  const uint64_t recorded = RecordAndFingerprint(&fs, p);

  Env env = testutil::MakeSimEnv(&fs);
  auto instance = MakeWorkloadFactory(p, kProbeNone)();
  ASSERT_TRUE(instance.ok());
  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ReplaySession session(&env, ropts);
  Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->deferred.ok);
  EXPECT_EQ(result->skipblocks.executed, 0);
  EXPECT_EQ(static_cast<WorkloadRuntime*>(instance->context.get())
                ->net->StateFingerprint(),
            recorded);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MemoizationSweep,
    ::testing::Combine(::testing::Values<int64_t>(1, 3, 9),
                       ::testing::Values<int64_t>(1, 4),
                       ::testing::Values<uint64_t>(7, 1234)));

// ---------------------------------------------------------------------
// Property 2: partitioned replay produces exactly the sequential replay's
// hindsight output, for any worker count and probe placement.
class PartitionEquivalence
    : public ::testing::TestWithParam<std::tuple<int, uint32_t>> {};

TEST_P(PartitionEquivalence, MergedOutputMatchesSequential) {
  auto [gpus, probes] = GetParam();
  const WorkloadProfile p = ShapedProfile(8, 32, 8, 55);
  MemFileSystem fs;
  RecordAndFingerprint(&fs, p);

  auto factory = MakeWorkloadFactory(p, probes);

  // Sequential reference (one worker).
  std::vector<std::string> sequential;
  {
    Env env = testutil::MakeSimEnv(&fs);
    auto instance = factory();
    ASSERT_TRUE(instance.ok());
    ReplayOptions ropts;
    ropts.run_prefix = "run";
    ReplaySession session(&env, ropts);
    Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(result->deferred.ok);
    for (const auto& e : result->probe_entries)
      sequential.push_back(e.context + ":" + e.label + "=" + e.text);
  }

  // Partitioned run.
  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.cluster.instance = {"test", gpus, 1.0};
  copts.costs = sim::PaperPlatformCosts();
  auto result = sim::ClusterReplay(factory, &fs, copts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->deferred.ok)
      << (result->deferred.anomalies.empty()
              ? ""
              : result->deferred.anomalies[0]);
  std::vector<std::string> merged;
  for (const auto& e : result->probe_entries)
    merged.push_back(e.context + ":" + e.label + "=" + e.text);
  EXPECT_EQ(merged, sequential);
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndProbes, PartitionEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 8),
                       ::testing::Values<uint32_t>(
                           workloads::kProbeNone, workloads::kProbeOuter,
                           workloads::kProbeInner,
                           workloads::kProbeOuter |
                               workloads::kProbeInner)));

// ---------------------------------------------------------------------
// Property 3: a statement whose semantics mutate more than its surface
// pattern admits (Python dynamism) produces a replay anomaly that the
// deferred check catches (paper §5.2.2).

struct HiddenState {
  double acc = 0;
};

Result<ProgramInstance> HiddenSideEffectProgram(bool log_hidden) {
  auto ctx = std::make_shared<HiddenState>();
  ir::ProgramBuilder b;
  b.Assign({"x"}, {"0"}, [ctx](Frame* f) {
    ctx->acc = 0;
    f->Set("x", ir::Value::Float(0));
    return Status::OK();
  });
  b.BeginLoop("e", 4);
  {
    b.BeginLoop("i", 2);
    {
      // Surface pattern says "x = f(x)": changeset {x}. The callback ALSO
      // accumulates into hidden context state the analysis cannot see.
      b.CallAssign({"x"}, "f", {"x"}, [ctx](Frame* f) {
         const double x = f->At("x").AsFloat() + 1;
         ctx->acc += x;  // hidden side effect
         f->Set("x", ir::Value::Float(x));
         return Status::OK();
       }).Cost(1.0);  // nonzero Ci so the controller checkpoints
    }
    b.EndLoop();
    if (log_hidden) {
      b.Log("hidden_acc", [ctx](Frame*) {
        return StrFormat("%.3f", ctx->acc);
      });
    }
    b.Log("x", [](Frame* f) {
      return StrFormat("%.3f", f->At("x").AsFloat());
    });
  }
  b.EndLoop();
  ProgramInstance instance;
  instance.program = b.Build();
  instance.context = ctx;
  return instance;
}

TEST(DeferredChecks, HiddenSideEffectCaught) {
  MemFileSystem fs;
  {
    Env env = testutil::MakeSimEnv(&fs);
    auto instance = HiddenSideEffectProgram(true);
    ASSERT_TRUE(instance.ok());
    RecordOptions opts;
    opts.run_prefix = "run";
    RecordSession session(&env, opts);
    Frame frame;
    ASSERT_TRUE(session.Run(instance->program.get(), &frame).ok());
  }
  // Replay with a worker segment that skips epochs 0-1 via init restore:
  // the checkpoint restores x but not the hidden accumulator, so the
  // logged hidden_acc diverges — and the deferred check must flag it.
  Env env = testutil::MakeSimEnv(&fs);
  auto instance = HiddenSideEffectProgram(true);
  ASSERT_TRUE(instance.ok());
  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ropts.worker_id = 1;
  ropts.num_workers = 2;
  ropts.init_mode = InitMode::kWeak;
  ReplaySession session(&env, ropts);
  Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->deferred.ok)
      << "hidden side effect escaped the deferred check";
  EXPECT_FALSE(result->deferred.anomalies.empty());
  EXPECT_TRUE(result->deferred.ToStatus().IsReplayAnomaly());
}

TEST(DeferredChecks, SameProgramWithoutHiddenLogPasses) {
  // If the hidden state is never observable in logs, replay output agrees
  // with record output (the anomaly is invisible — matching the paper's
  // fingerprint argument: divergence shows up via logged metrics).
  MemFileSystem fs;
  {
    Env env = testutil::MakeSimEnv(&fs);
    auto instance = HiddenSideEffectProgram(false);
    ASSERT_TRUE(instance.ok());
    RecordOptions opts;
    opts.run_prefix = "run";
    RecordSession session(&env, opts);
    Frame frame;
    ASSERT_TRUE(session.Run(instance->program.get(), &frame).ok());
  }
  Env env = testutil::MakeSimEnv(&fs);
  auto instance = HiddenSideEffectProgram(false);
  ASSERT_TRUE(instance.ok());
  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ropts.worker_id = 1;
  ropts.num_workers = 2;
  ropts.init_mode = InitMode::kWeak;
  ReplaySession session(&env, ropts);
  Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->deferred.ok);
}

// ---------------------------------------------------------------------
// Property 4: RNG state driving in-loop randomness must be visible to the
// analysis (an explicit rng method call puts it in the changeset); then
// sampled re-execution reproduces recorded randomness bit-exactly.

Result<ProgramInstance> RngProgram(bool rng_in_changeset,
                                   bool probed = false) {
  struct Ctx {
    Rng rng{testutil::TestSeed(424242)};
  };
  auto ctx = std::make_shared<Ctx>();
  ir::ProgramBuilder b;
  b.Assign({"rng"}, {"seed"}, [ctx](Frame* f) {
    ctx->rng = Rng(testutil::TestSeed(424242));
    f->Set("rng", ir::Value::RngRef(&ctx->rng));
    return Status::OK();
  });
  b.Assign({"noise"}, {"0"}, [](Frame* f) {
    f->Set("noise", ir::Value::Float(0));
    return Status::OK();
  });
  b.BeginLoop("e", 4);
  {
    b.BeginLoop("i", 3);
    {
      if (rng_in_changeset) {
        // "rng.tick()" — rule 4 puts rng into the changeset, so its stream
        // position is checkpointed and restored.
        b.MethodCall("rng", "tick", {}, [](Frame*) { return Status::OK(); });
      }
      b.CallAssign({"noise"}, "draw", {"rng"}, [](Frame* f) {
         const double draw = f->At("rng").AsRng()->NextDouble();
         f->Set("noise", ir::Value::Float(draw));
         return Status::OK();
       }).Cost(1.0);  // nonzero Ci so the controller checkpoints
      if (probed) {
        // Hindsight probe inside the inner loop: forces the sampled epoch
        // to *re-execute* (a skipped loop would trivially match).
        b.Log("probe_noise", [](Frame* f) {
          return StrFormat("%.12f", f->At("noise").AsFloat());
        });
      }
    }
    b.EndLoop();
    b.Log("noise", [](Frame* f) {
      return StrFormat("%.12f", f->At("noise").AsFloat());
    });
  }
  b.EndLoop();
  ProgramInstance instance;
  instance.program = b.Build();
  instance.context = ctx;
  return instance;
}

/// Same program with the hindsight probe enabled.
Result<ProgramInstance> ProbedRngProgram(bool rng_in_changeset) {
  return RngProgram(rng_in_changeset, /*probed=*/true);
}

void RecordProgram(FileSystem* fs, const ProgramFactory& factory) {
  Env env = testutil::MakeSimEnv(fs);
  auto instance = factory();
  ASSERT_TRUE(instance.ok());
  RecordOptions opts;
  opts.run_prefix = "run";
  RecordSession session(&env, opts);
  Frame frame;
  ASSERT_TRUE(session.Run(instance->program.get(), &frame).ok());
}

TEST(DeferredChecks, RngInChangesetReplaysExactly) {
  MemFileSystem fs;
  RecordProgram(&fs, [] { return RngProgram(true); });
  Env env = testutil::MakeSimEnv(&fs);
  auto instance = ProbedRngProgram(true);
  ASSERT_TRUE(instance.ok());
  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ropts.sample_epochs = {2};  // random-access epoch 2: re-executes it
  ReplaySession session(&env, ropts);
  Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->deferred.ok)
      << (result->deferred.anomalies.empty()
              ? ""
              : result->deferred.anomalies[0]);
}

TEST(DeferredChecks, RngMissedFromChangesetCaught) {
  MemFileSystem fs;
  RecordProgram(&fs, [] { return RngProgram(false); });
  Env env = testutil::MakeSimEnv(&fs);
  auto instance = ProbedRngProgram(false);
  ASSERT_TRUE(instance.ok());
  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ropts.sample_epochs = {2};
  ReplaySession session(&env, ropts);
  Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok());
  // The re-executed epoch draws from an unrestored stream: caught.
  EXPECT_FALSE(result->deferred.ok);
}

// ---------------------------------------------------------------------
// Property 5: a loop refused by the analysis (rule 5 in its body) is never
// memoized, and replay still reproduces record by re-executing it.

Result<ProgramInstance> RefusedLoopProgram() {
  auto ctx = std::make_shared<double>(0.0);
  ir::ProgramBuilder b;
  b.Assign({"total"}, {"0"}, [ctx](Frame* f) {
    *ctx = 0;
    f->Set("total", ir::Value::Float(0));
    return Status::OK();
  });
  b.BeginLoop("e", 3);
  {
    b.BeginLoop("i", 2);
    {
      // Rule-5 statement: the inner loop is refused.
      b.OpaqueCall("mutate_world", {"total"}, [ctx](Frame* f) {
        *ctx += 1;
        f->Set("total", ir::Value::Float(*ctx));
        return Status::OK();
      });
    }
    b.EndLoop();
    b.Log("total", [](Frame* f) {
      return StrFormat("%.1f", f->At("total").AsFloat());
    });
  }
  b.EndLoop();
  ProgramInstance instance;
  instance.program = b.Build();
  instance.context = ctx;
  return instance;
}

TEST(RefusedLoops, ReplayReexecutesAndMatches) {
  MemFileSystem fs;
  RecordProgram(&fs, [] { return RefusedLoopProgram(); });

  Env env = testutil::MakeSimEnv(&fs);
  auto instance = RefusedLoopProgram();
  ASSERT_TRUE(instance.ok());
  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ReplaySession session(&env, ropts);
  Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Nothing was instrumented, so nothing was skipped — but the logs match.
  EXPECT_EQ(result->skipblocks.skipped, 0);
  EXPECT_TRUE(result->deferred.ok);
  EXPECT_EQ(frame.At("total").AsFloat(), 6.0);
}

TEST(RefusedLoops, NoCheckpointsMaterialized) {
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  auto instance = RefusedLoopProgram();
  ASSERT_TRUE(instance.ok());
  RecordOptions opts;
  opts.run_prefix = "run";
  RecordSession session(&env, opts);
  Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->manifest.records.size(), 0u);
  EXPECT_EQ(result->instrument.loops_instrumented, 0);
}

}  // namespace
}  // namespace flor
