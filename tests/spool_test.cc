// SpoolQueue: batched async spooling, retry/failure paths, per-shard
// reporting, and the concurrent materialize-while-spool interaction with
// the sharded CheckpointStore. This suite carries the `tsan` ctest label —
// FLOR_TSAN=1 ./scripts/check.sh runs it under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>

#include "checkpoint/materializer.h"
#include "checkpoint/spool.h"
#include "checkpoint/store.h"
#include "common/strings.h"
#include "env/background_queue.h"
#include "env/filesystem.h"
#include "flor/record.h"
#include "test_util.h"
#include "workloads/programs.h"

namespace flor {
namespace {

/// Writes `n` checkpoint-like objects through a store with `shards`
/// shards; returns the store's total byte count.
uint64_t FillStore(CheckpointStore* store, int n, size_t object_bytes) {
  for (int i = 0; i < n; ++i) {
    const CheckpointKey key{2, StrCat("e=", i)};
    const std::string payload(object_bytes, static_cast<char>('a' + i % 26));
    EXPECT_TRUE(store->PutBytes(key, payload).ok());
  }
  return store->TotalBytes();
}

TEST(SpoolQueue, BatchesBySizeAndObjectCount) {
  MemFileSystem fs;
  CheckpointStore store(&fs, "run/ckpt");
  FillStore(&store, 10, 100);

  // Object-count bound: 10 objects at 4 per batch -> 3 batches.
  SpoolOptions opts;
  opts.max_batch_objects = 4;
  opts.max_batch_bytes = 1ull << 30;
  SpoolReport by_count = SpoolStore(store, "s3/count", opts);
  EXPECT_TRUE(by_count.ok());
  EXPECT_EQ(by_count.objects, 10);
  EXPECT_EQ(by_count.batches, 3);

  // Byte bound: 100-byte objects with a 250-byte bound -> a batch flushes
  // once it reaches 3 objects (300 >= 250): 4 batches (3+3+3+1).
  opts.max_batch_objects = 1000;
  opts.max_batch_bytes = 250;
  SpoolReport by_bytes = SpoolStore(store, "s3/bytes", opts);
  EXPECT_TRUE(by_bytes.ok());
  EXPECT_EQ(by_bytes.objects, 10);
  EXPECT_EQ(by_bytes.batches, 4);
  EXPECT_EQ(by_bytes.bytes, 1000u);
}

TEST(SpoolQueue, PerShardReportsSumToTotal) {
  MemFileSystem fs;
  CheckpointStore store(&fs, "run/ckpt", /*num_shards=*/4);
  const uint64_t local = FillStore(&store, 32, 64);

  SpoolQueue queue(&fs, store.num_shards());
  for (int shard = 0; shard < store.num_shards(); ++shard) {
    for (const auto& path : fs.ListPrefix(store.ShardPrefix(shard) + "/"))
      queue.Enqueue(shard, path, "s3/" + path);
  }
  queue.Drain();

  int64_t objects = 0;
  uint64_t bytes = 0;
  int shards_with_objects = 0;
  for (int shard = 0; shard < queue.num_shards(); ++shard) {
    SpoolReport r = queue.ShardReport(shard);
    EXPECT_TRUE(r.ok());
    objects += r.objects;
    bytes += r.bytes;
    if (r.objects > 0) ++shards_with_objects;
  }
  EXPECT_EQ(objects, 32);
  EXPECT_EQ(bytes, local);
  // CRC32C placement spreads 32 keys over more than one of 4 shards.
  EXPECT_GT(shards_with_objects, 1);

  SpoolReport total = queue.TotalReport();
  EXPECT_EQ(total.objects, 32);
  EXPECT_EQ(total.bytes, local);
  EXPECT_DOUBLE_EQ(total.monthly_cost_dollars, S3MonthlyCost(local));
}

TEST(SpoolQueue, ShardedStoreLayoutPreservedInBucket) {
  MemFileSystem fs;
  CheckpointStore store(&fs, "run/ckpt", /*num_shards=*/4);
  FillStore(&store, 12, 50);

  SpoolReport report = SpoolStore(store, "s3/run/ckpt");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.objects, 12);

  // Every local object exists at the mirrored path under the bucket.
  for (const auto& path : fs.ListPrefix("run/ckpt/")) {
    const std::string mirrored = "s3/" + path;
    EXPECT_TRUE(fs.Exists(mirrored)) << mirrored;
  }
  EXPECT_EQ(fs.TotalBytesUnder("s3/run/ckpt/"), store.TotalBytes());
}

TEST(SpoolQueue, SpoolToS3MirrorsSpoolStoreLayoutRegardlessOfSlashes) {
  // The two spool entry points must land byte-identical mirror layouts —
  // the bucket tier reads objects at JoinObjectPath(bucket_prefix,
  // PathFor(key)), so a spool that shifts keys by a slash strands every
  // demoted checkpoint. Stray trailing slashes on either prefix used to do
  // exactly that to SpoolToS3.
  MemFileSystem fs;
  CheckpointStore store(&fs, "run/ckpt", /*num_shards=*/4);
  FillStore(&store, 12, 50);

  SpoolReport by_store = SpoolStore(store, "mirror/a/run/ckpt");
  ASSERT_TRUE(by_store.ok());

  /// Byte image under `prefix`, keyed by path relative to it.
  auto image = [&fs](const std::string& prefix) {
    std::map<std::string, std::string> out;
    for (const auto& path : fs.ListPrefix(prefix)) {
      auto data = fs.ReadFile(path);
      EXPECT_TRUE(data.ok()) << path;
      out[path.substr(prefix.size())] = *data;
    }
    return out;
  };
  const auto want = image("mirror/a/");
  ASSERT_EQ(want.size(), 12u);

  const struct {
    const char* src;
    const char* dst;
    const char* out;
  } kVariants[] = {
      {"run/ckpt", "mirror/b/run/ckpt", "mirror/b/"},
      {"run/ckpt/", "mirror/c/run/ckpt/", "mirror/c/"},
      {"run/ckpt//", "mirror/d/run/ckpt//", "mirror/d/"},
  };
  for (const auto& v : kVariants) {
    auto report = SpoolToS3(&fs, v.src, v.dst);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->objects, 12) << v.src;
    EXPECT_EQ(image(v.out), want) << v.src << " -> " << v.dst;
  }
}

TEST(SpoolQueue, TransientWriteFailuresAreRetried) {
  MemFileSystem base;
  FaultInjectionFileSystem fs(&base);
  CheckpointStore store(&fs, "run/ckpt");
  FillStore(&store, 5, 80);

  // Two consecutive bucket-write failures, three attempts allowed: the
  // spool must recover without losing an object.
  fs.InjectWriteFailures(2, "s3/");
  SpoolOptions opts;
  opts.max_attempts = 3;
  SpoolReport report = SpoolStore(store, "s3/run/ckpt", opts);
  EXPECT_TRUE(report.ok()) << report.first_error;
  EXPECT_EQ(report.objects, 5);
  EXPECT_EQ(report.retries, 2);
  EXPECT_EQ(report.failed_objects, 0);
  EXPECT_EQ(base.TotalBytesUnder("s3/run/ckpt/"), store.TotalBytes());
}

TEST(SpoolQueue, ExhaustedRetriesSurfaceFailedReportWithoutLosingObjects) {
  MemFileSystem base;
  FaultInjectionFileSystem fs(&base);
  CheckpointStore store(&fs, "run/ckpt");
  FillStore(&store, 6, 80);

  // One object's destination fails persistently (its key string appears
  // only in its own path); everything else must still spool.
  fs.InjectWriteFailures(1000, "s3/run/ckpt/L2@e=3");
  SpoolOptions opts;
  opts.max_attempts = 3;
  opts.max_batch_objects = 2;
  SpoolReport report = SpoolStore(store, "s3/run/ckpt", opts);

  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failed_objects, 1);
  EXPECT_EQ(report.objects, 5);
  EXPECT_EQ(report.retries, 2);  // two re-attempts before giving up
  EXPECT_FALSE(report.first_error.empty());
  // Already-spooled objects stay spooled; only the poisoned one is absent.
  EXPECT_FALSE(base.Exists("s3/run/ckpt/L2@e=3.ckpt"));
  for (int i = 0; i < 6; ++i) {
    if (i == 3) continue;
    EXPECT_TRUE(base.Exists(StrCat("s3/run/ckpt/L2@e=", i, ".ckpt"))) << i;
  }
}

TEST(SpoolQueue, MissingSourceCountsAsFailedObject) {
  MemFileSystem fs;
  SpoolQueue queue(&fs, 1);
  queue.Enqueue(0, "run/ckpt/ghost.ckpt", "s3/ghost.ckpt");
  queue.Drain();
  SpoolReport report = queue.TotalReport();
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failed_objects, 1);
  EXPECT_EQ(report.objects, 0);
}

TEST(SpoolQueue, LegacySpoolToS3ErrorsOnPersistentFailure) {
  MemFileSystem base;
  FaultInjectionFileSystem fs(&base);
  ASSERT_TRUE(fs.WriteFile("run/ckpt/a", std::string(64, 'x')).ok());
  fs.InjectWriteFailures(1000, "s3/");
  auto report = SpoolToS3(&fs, "run/ckpt/", "s3/ckpt/");
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kIOError);
}

TEST(SpoolQueue, ConcurrentMaterializeWhileSpooling) {
  // The production overlap: a wall-clock materializer keeps writing new
  // checkpoints into a sharded store while the spooler drains existing
  // objects to the bucket. Distinct per-shard locks and the thread-safe
  // filesystem must keep both sides consistent (TSAN-checked in CI).
  MemFileSystem fs;
  CheckpointStore store(&fs, "run/ckpt", /*num_shards=*/4);
  const int kPre = 24;
  FillStore(&store, kPre, 256);

  Env wall_env(std::make_unique<WallClock>(), &fs);
  MaterializerOptions mopts;
  mopts.strategy = MaterializeStrategy::kFork;
  Materializer materializer(&wall_env, mopts);

  SpoolOptions sopts;
  sopts.max_batch_objects = 4;
  SpoolQueue queue(&fs, store.num_shards(), sopts);

  std::atomic<bool> done{false};
  std::thread spooler([&] {
    for (int shard = 0; shard < store.num_shards(); ++shard) {
      for (const auto& path :
           fs.ListPrefix(store.ShardPrefix(shard) + "/"))
        queue.Enqueue(shard, path, "s3/" + path);
    }
    queue.Drain();
    done.store(true);
  });

  // Materialize more checkpoints into the same store meanwhile.
  const int kNew = 8;
  for (int i = 0; i < kNew; ++i) {
    NamedSnapshots snaps;
    snaps.emplace_back("step", ir::SnapshotValue(ir::Value::Int(i)));
    auto receipt = materializer.Materialize(
        &store, CheckpointKey{7, StrCat("e=", i)}, std::move(snaps), 0);
    ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  }
  materializer.Drain();
  spooler.join();
  ASSERT_TRUE(done.load());

  // The spooler copied exactly the pre-existing objects (its listing ran
  // before/while the writer added more — either way each listed object
  // must have landed), and the store now holds both generations.
  SpoolReport report = queue.TotalReport();
  EXPECT_TRUE(report.ok()) << report.first_error;
  EXPECT_GE(report.objects, kPre);
  int64_t store_objects = 0;
  for (const auto& s : store.WriteStatsByShard()) store_objects += s.objects;
  EXPECT_EQ(store_objects, kPre + kNew);
}

TEST(SpoolQueue, RecordSessionSpoolsAsYouMaterializesOnWallClock) {
  // The full production overlap, driven entirely by RecordSession: a
  // wall-clock Fork materializer lands checkpoints from its background
  // worker, and each durable checkpoint is handed straight to the
  // spooler's shard-local batch (Materializer on_durable -> SpoolQueue) —
  // three threads touching the store concurrently (training, materializer
  // worker, spool worker). TSAN-checked in CI via the `tsan` label. Small
  // batch and queue bounds force multiple flushes and exercise the
  // bounded-depth backpressure path.
  MemFileSystem fs;
  Env env(std::make_unique<WallClock>(), &fs);

  workloads::WorkloadProfile profile;
  profile.name = "SpoolRec";
  profile.epochs = 10;
  profile.sim_ckpt_raw_bytes = 1 << 20;  // cheap: dense checkpoints
  profile.ckpt_shards = 4;
  profile.task_kind = data::Task::kVision;
  profile.real_samples = 32;
  profile.real_batch = 8;
  profile.real_feature_dim = 12;
  profile.real_classes = 3;
  profile.real_hidden = 12;
  profile.seed = testutil::TestSeed(61);

  auto instance =
      workloads::MakeWorkloadFactory(profile, workloads::kProbeNone)();
  ASSERT_TRUE(instance.ok());
  RecordOptions opts = workloads::DefaultRecordOptions(profile, "run");
  opts.materializer.strategy = MaterializeStrategy::kFork;
  // Real wall-clock compute is microseconds against a modeled multi-ms
  // materialization, so the Joint Invariant would reject everything;
  // disable it — this test is about the spool pipeline, not the policy.
  opts.adaptive.enabled = false;
  opts.spool_prefix = "s3";
  opts.spool.max_batch_objects = 2;
  opts.spool.max_queued_batches = 2;
  RecordSession session(&env, opts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every materialized checkpoint was spooled, without any bench-side
  // spool calls; per-shard reports sum to the aggregate.
  ASSERT_EQ(result->spool_shard_reports.size(), 4u);
  EXPECT_TRUE(result->spool_report.ok()) << result->spool_report.first_error;
  EXPECT_EQ(result->spool_report.objects,
            static_cast<int64_t>(result->manifest.records.size()));
  EXPECT_GT(result->spool_report.batches, 1);
  int64_t shard_sum = 0;
  for (const auto& r : result->spool_shard_reports) shard_sum += r.objects;
  EXPECT_EQ(shard_sum, result->spool_report.objects);

  // The bucket mirrors the store byte-for-byte at the mirrored paths.
  CheckpointStore store(&fs, "run/ckpt", profile.ckpt_shards);
  for (const auto& rec : result->manifest.records) {
    const std::string local = store.PathFor(rec.key);
    auto local_data = fs.ReadFile(local);
    auto bucket_data = fs.ReadFile("s3/" + local);
    ASSERT_TRUE(local_data.ok()) << local;
    ASSERT_TRUE(bucket_data.ok()) << "s3/" << local;
    EXPECT_EQ(*bucket_data, *local_data) << local;
  }
  EXPECT_EQ(fs.TotalBytesUnder("s3/run/ckpt/"),
            fs.TotalBytesUnder("run/ckpt/"));
}

TEST(BackgroundQueue, WaitUntilInFlightBelowBoundsProducers) {
  BackgroundQueue queue;
  std::atomic<int> running{0};
  std::atomic<int> max_seen{0};
  for (int i = 0; i < 16; ++i) {
    queue.WaitUntilInFlightBelow(3);
    EXPECT_LT(queue.InFlight(), 3u);
    queue.Submit([&] {
      const int now = ++running;
      int prev = max_seen.load();
      while (prev < now && !max_seen.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      --running;
    });
  }
  queue.Drain();
  EXPECT_EQ(queue.InFlight(), 0u);
  EXPECT_LE(max_seen.load(), 1);  // single worker: never truly parallel
}

// --- Group-commit durability (Materializer::NotifyDurable) -----------------

/// Dense sim workload: adaptive off, so every epoch materializes and the
/// checkpoint count is deterministic.
workloads::WorkloadProfile GroupCommitProfile() {
  workloads::WorkloadProfile p;
  p.name = "GrpCmt";
  p.epochs = 10;
  p.sim_epoch_seconds = 10;
  p.sim_outer_seconds = 1;
  p.sim_preamble_seconds = 2;
  p.sim_ckpt_raw_bytes = 1 << 20;
  p.ckpt_shards = 4;
  p.task_kind = data::Task::kVision;
  p.real_samples = 32;
  p.real_batch = 8;
  p.real_feature_dim = 12;
  p.real_classes = 3;
  p.real_hidden = 12;
  p.seed = testutil::TestSeed(67);
  return p;
}

RecordResult RecordGroupCommit(FileSystem* fs, int window,
                               double notify_seconds) {
  Env env(std::make_unique<SimClock>(), fs);
  auto instance = workloads::MakeWorkloadFactory(GroupCommitProfile(),
                                                 workloads::kProbeNone)();
  EXPECT_TRUE(instance.ok());
  RecordOptions opts =
      workloads::DefaultRecordOptions(GroupCommitProfile(), "run");
  opts.adaptive.enabled = false;
  opts.spool_prefix = "s3";
  opts.materializer.group_commit_window = window;
  opts.materializer.costs.durable_notify_seconds = notify_seconds;
  RecordSession session(&env, opts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

TEST(GroupCommit, WindowEightByteIdenticalToWindowOneWhenNotifyIsFree) {
  // With a free sync (the default cost), batching notifications must not
  // change a single byte of any artifact — manifest, logs, checkpoint
  // objects, or the spooled bucket mirror — only the slot accounting.
  MemFileSystem fs_w1;
  MemFileSystem fs_w8;
  RecordResult w1 = RecordGroupCommit(&fs_w1, 1, 0.0);
  RecordResult w8 = RecordGroupCommit(&fs_w8, 8, 0.0);

  std::map<std::string, std::string> image_w1;
  for (const auto& path : fs_w1.ListPrefix("")) {
    auto data = fs_w1.ReadFile(path);
    ASSERT_TRUE(data.ok()) << path;
    image_w1[path] = *data;
  }
  std::map<std::string, std::string> image_w8;
  for (const auto& path : fs_w8.ListPrefix("")) {
    auto data = fs_w8.ReadFile(path);
    ASSERT_TRUE(data.ok()) << path;
    image_w8[path] = *data;
  }
  EXPECT_EQ(image_w8, image_w1);
  EXPECT_EQ(w8.runtime_seconds, w1.runtime_seconds);

  // Same notifications, different batching.
  EXPECT_EQ(w1.group_commit.joins, 10);
  EXPECT_EQ(w8.group_commit.joins, 10);
  EXPECT_EQ(w1.group_commit.slots, w1.group_commit.joins);
  EXPECT_EQ(w1.group_commit.syncs, w1.group_commit.joins);
  EXPECT_EQ(w1.group_commit.max_slot_joins, 1);
  // 10 joins at window 8: one full slot + the drain flush of the partial.
  EXPECT_EQ(w8.group_commit.slots, 2);
  EXPECT_EQ(w8.group_commit.syncs, 2);
  EXPECT_EQ(w8.group_commit.max_slot_joins, 8);
  EXPECT_EQ(w8.spool_report.objects, w1.spool_report.objects);
}

TEST(GroupCommit, SlotAccountingAndDeliveryOrder) {
  auto env = Env::NewSimEnv();
  MaterializerOptions opts;
  opts.strategy = MaterializeStrategy::kFork;
  opts.group_commit_window = 3;
  std::vector<std::string> delivered;
  opts.on_durable = [&delivered](const CheckpointKey& key, uint64_t bytes) {
    EXPECT_GT(bytes, 0u);
    delivered.push_back(key.ToString());
  };
  Materializer mat(env.get(), opts);
  CheckpointStore store(env->fs(), "ck");

  NamedSnapshots snaps;
  snaps.emplace_back("count", ir::SnapshotValue(ir::Value::Int(42)));
  for (int e = 0; e < 7; ++e) {
    auto receipt = mat.Materialize(&store, CheckpointKey{1, StrCat("e=", e)},
                                   snaps, 1 << 20);
    ASSERT_TRUE(receipt.ok());
  }
  // Two full slots closed; the 7th join sits in the open slot.
  GroupCommitStats mid = mat.group_commit_stats();
  EXPECT_EQ(mid.joins, 7);
  EXPECT_EQ(mid.slots, 2);
  EXPECT_EQ(mid.syncs, 2);
  ASSERT_EQ(delivered.size(), 6u);

  mat.Drain();  // flushes the partial slot: nothing acked is ever lost
  GroupCommitStats done = mat.group_commit_stats();
  EXPECT_EQ(done.joins, 7);
  EXPECT_EQ(done.slots, 3);
  EXPECT_EQ(done.syncs, 3);
  EXPECT_EQ(done.max_slot_joins, 3);
  EXPECT_DOUBLE_EQ(done.JoinsPerSlot(), 7.0 / 3.0);
  // Notifications arrive in store order across slot boundaries.
  ASSERT_EQ(delivered.size(), 7u);
  for (int e = 0; e < 7; ++e)
    EXPECT_EQ(delivered[static_cast<size_t>(e)], StrCat("L1@e=", e));
}

TEST(GroupCommit, SimNotifyCostIsAmortizedByWindow) {
  // A nonzero durable sync charges the training thread notify/window per
  // checkpoint: window 1 pays it in full, window 8 amortizes it ~8x.
  MemFileSystem fs_free;
  MemFileSystem fs_w1;
  MemFileSystem fs_w8;
  RecordResult free_run = RecordGroupCommit(&fs_free, 1, 0.0);
  RecordResult w1 = RecordGroupCommit(&fs_w1, 1, 0.5);
  RecordResult w8 = RecordGroupCommit(&fs_w8, 8, 0.5);

  EXPECT_GT(w1.runtime_seconds, w8.runtime_seconds);
  EXPECT_GT(w8.runtime_seconds, free_run.runtime_seconds);
  // 10 checkpoints: the full tax is 10 * 0.5s; amortized, 10 * 0.5/8.
  EXPECT_NEAR(w1.runtime_seconds - free_run.runtime_seconds, 10 * 0.5,
              1e-6);
  EXPECT_NEAR(w8.runtime_seconds - free_run.runtime_seconds,
              10 * 0.5 / 8, 1e-6);
}

}  // namespace
}  // namespace flor
