// Unit tests: workload registry, models, and the canonical training-script
// factory (structure, determinism, learnability).

#include <gtest/gtest.h>

#include "exec/interpreter.h"
#include "flor/instrument.h"
#include "test_util.h"
#include "workloads/programs.h"

namespace flor {
namespace workloads {
namespace {

TEST(Profiles, AllEightPresent) {
  const auto& all = AllWorkloads();
  ASSERT_EQ(all.size(), 8u);
  const char* names[] = {"RTE", "CoLA", "Cifr", "RsNt",
                         "Wiki", "Jasp", "ImgN", "RnnT"};
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(all[i].name, names[i]);
}

TEST(Profiles, LookupByName) {
  auto p = WorkloadByName("Wiki");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->epochs, 12);
  EXPECT_FALSE(WorkloadByName("nope").ok());
}

TEST(Profiles, Table3Columns) {
  auto rte = *WorkloadByName("RTE");
  EXPECT_TRUE(rte.fine_tune);
  EXPECT_EQ(rte.epochs, 200);
  EXPECT_EQ(rte.benchmark, "GLUE");
  auto jasp = *WorkloadByName("Jasp");
  EXPECT_EQ(jasp.benchmark, "MLPerf");
  EXPECT_EQ(jasp.epochs, 4);
  EXPECT_FALSE(jasp.fine_tune);
}

TEST(Profiles, VanillaRuntimesSpanPaperScales) {
  // Fine-tuning workloads are ~1h; the big training jobs are many hours.
  auto rte = *WorkloadByName("RTE");
  EXPECT_GT(rte.VanillaSeconds(), 0.5 * 3600);
  EXPECT_LT(rte.VanillaSeconds(), 2.0 * 3600);
  auto wiki = *WorkloadByName("Wiki");
  EXPECT_GT(wiki.VanillaSeconds(), 10 * 3600);
}

TEST(Models, BuildAllTinyModels) {
  for (const auto& p : AllWorkloads()) {
    Rng rng(p.seed);
    auto net = BuildModel(p, &rng);
    ASSERT_NE(net, nullptr) << p.name;
    EXPECT_GT(net->ParameterCount(), 0) << p.name;
    // Forward on a real batch shape.
    data::SyntheticDataset::Config cfg;
    cfg.task = p.task_kind;
    cfg.num_samples = p.real_samples;
    cfg.feature_dim = p.real_feature_dim;
    cfg.num_classes = p.real_classes;
    cfg.vocab_size = p.real_vocab;
    cfg.seed = p.seed;
    data::SyntheticDataset ds(cfg);
    auto feats = ds.BatchFeatures(0, 4);
    ASSERT_TRUE(feats.ok());
    auto out = net->Forward(*feats);
    ASSERT_TRUE(out.ok()) << p.name << ": " << out.status().ToString();
    EXPECT_EQ(out->shape(), (Shape{4, p.real_classes})) << p.name;
  }
}

TEST(Models, FreezeBackboneFreezesMajority) {
  auto p = *WorkloadByName("RTE");
  Rng rng(p.seed);
  auto net = BuildModel(p, &rng);
  const int frozen = FreezeBackbone(net.get());
  EXPECT_GT(frozen, 0);
  int64_t frozen_params = 0;
  for (auto* param : net->Parameters())
    if (param->frozen) frozen_params += param->value.numel();
  // "the vast majority of weights are frozen in model fine-tuning" (§5.3.4)
  EXPECT_GT(frozen_params, net->ParameterCount() / 2);
}

TEST(Models, OptimizerAndSchedulerKinds) {
  auto rte = *WorkloadByName("RTE");
  Rng rng = testutil::SeededRng(1);
  auto net = BuildModel(rte, &rng);
  auto opt = BuildOptimizer(rte, net.get());
  EXPECT_EQ(opt->Kind(), "adamw");
  auto sched = BuildScheduler(rte, opt.get());
  EXPECT_EQ(sched->Kind(), "step");

  auto cifr = *WorkloadByName("Cifr");
  auto net2 = BuildModel(cifr, &rng);
  auto opt2 = BuildOptimizer(cifr, net2.get());
  EXPECT_EQ(opt2->Kind(), "sgd");
  EXPECT_EQ(BuildScheduler(cifr, opt2.get())->Kind(), "cosine");
}

WorkloadProfile FastProfile() {
  auto p = *WorkloadByName("Cifr");
  p.epochs = 4;
  p.real_samples = 32;
  p.real_batch = 8;
  return p;
}

TEST(Factory, RebuildsStructurallyIdenticalPrograms) {
  auto factory = MakeWorkloadFactory(FastProfile(), kProbeNone);
  auto a = factory();
  auto b = factory();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->program->RenderSource(), b->program->RenderSource());
}

TEST(Factory, ProbeFlagsInsertLogStatements) {
  auto none = MakeWorkloadFactory(FastProfile(), kProbeNone)();
  auto outer = MakeWorkloadFactory(FastProfile(), kProbeOuter)();
  auto inner = MakeWorkloadFactory(FastProfile(), kProbeInner)();
  auto both =
      MakeWorkloadFactory(FastProfile(), kProbeOuter | kProbeInner)();
  ASSERT_TRUE(none.ok() && outer.ok() && inner.ok() && both.ok());
  EXPECT_NE(none->program->RenderSource(), outer->program->RenderSource());
  EXPECT_NE(outer->program->RenderSource(), inner->program->RenderSource());
  EXPECT_NE(outer->program->RenderSource(), both->program->RenderSource());
  EXPECT_NE(outer->program->RenderSource().find("weight_norm"),
            std::string::npos);
  EXPECT_NE(inner->program->RenderSource().find("grad_norm"),
            std::string::npos);
}

TEST(Factory, CanonicalAnalysisMatchesPaperExample) {
  auto instance = MakeWorkloadFactory(FastProfile(), kProbeNone)();
  ASSERT_TRUE(instance.ok());
  InstrumentReport report = InstrumentProgram(instance->program.get());
  EXPECT_EQ(report.loops_total, 2);
  EXPECT_EQ(report.loops_instrumented, 1);
  ir::Loop* training = instance->program->FindLoop(2);
  ASSERT_NE(training, nullptr);
  EXPECT_TRUE(training->analysis().instrumented);
  EXPECT_EQ(training->analysis().changeset,
            (std::vector<std::string>{"optimizer"}));
}

TEST(Factory, ExecutionIsDeterministicAndLearns) {
  auto factory = MakeWorkloadFactory(FastProfile(), kProbeNone);
  uint64_t fps[2];
  float first_loss = 0, last_loss = 0;
  for (int round = 0; round < 2; ++round) {
    auto instance = factory();
    ASSERT_TRUE(instance.ok());
    auto env = Env::NewSimEnv();
    exec::LogStream logs;
    exec::Interpreter interp(env.get(), &logs, nullptr);
    exec::Frame frame;
    ASSERT_TRUE(interp.Run(instance->program.get(), &frame).ok());
    auto* rt = static_cast<WorkloadRuntime*>(instance->context.get());
    fps[round] = rt->net->StateFingerprint();
    // Extract first and last per-batch losses.
    for (const auto& e : logs.entries()) {
      if (e.label != "loss") continue;
      if (first_loss == 0) first_loss = std::stof(e.text);
      last_loss = std::stof(e.text);
    }
  }
  EXPECT_EQ(fps[0], fps[1]) << "training is not deterministic";
  EXPECT_LT(last_loss, first_loss) << "model failed to learn";
}

TEST(Factory, SimulatedRuntimeMatchesProfile) {
  const auto p = FastProfile();
  auto instance = MakeWorkloadFactory(p, kProbeNone)();
  ASSERT_TRUE(instance.ok());
  auto env = Env::NewSimEnv();
  exec::Interpreter interp(env.get(), nullptr, nullptr);
  exec::Frame frame;
  ASSERT_TRUE(interp.Run(instance->program.get(), &frame).ok());
  EXPECT_NEAR(interp.elapsed_seconds(), p.VanillaSeconds(),
              p.VanillaSeconds() * 0.01);
}

TEST(Factory, DefaultRecordOptionsWired) {
  const auto p = *WorkloadByName("RnnT");
  RecordOptions opts = DefaultRecordOptions(p, "prefix/run");
  EXPECT_EQ(opts.run_prefix, "prefix/run");
  EXPECT_EQ(opts.workload, "RnnT");
  EXPECT_EQ(opts.nominal_checkpoint_bytes, p.sim_ckpt_raw_bytes);
  EXPECT_TRUE(opts.adaptive.enabled);
  EXPECT_NEAR(opts.adaptive.epsilon, 1.0 / 15.0, 1e-12);
  EXPECT_EQ(opts.materializer.strategy, MaterializeStrategy::kFork);
  EXPECT_NEAR(opts.vanilla_runtime_seconds, p.VanillaSeconds(), 1e-9);
}

}  // namespace
}  // namespace workloads
}  // namespace flor
