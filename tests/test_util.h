// Shared test scaffolding: scratch directories, Env construction, and
// deterministic seeding. Every suite that touches the real filesystem or
// draws randomness should come through here instead of hand-rolling setup.

#ifndef FLOR_TESTS_TEST_UTIL_H_
#define FLOR_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>

#include "common/random.h"
#include "env/env.h"

namespace flor {
namespace testutil {

/// Deterministic base seed for all suites. Defaults to 42; export
/// FLOR_TEST_SEED=<n> to reproduce a failure observed under another seed.
/// `salt` derives independent streams from the same base.
inline uint64_t TestSeed(uint64_t salt = 0) {
  static const uint64_t base = [] {
    const char* s = std::getenv("FLOR_TEST_SEED");
    return s != nullptr ? std::strtoull(s, nullptr, 10) : 42ull;
  }();
  return base + salt;
}

/// Rng seeded from TestSeed(). Use distinct salts for independent streams
/// within one test so draws stay reproducible under reordering.
inline Rng SeededRng(uint64_t salt = 0) { return Rng(TestSeed(salt)); }

/// The standard record/replay harness: simulated clock over a borrowed
/// (usually in-memory) filesystem.
inline Env MakeSimEnv(FileSystem* fs) {
  return Env(std::make_unique<SimClock>(), fs);
}

/// Fixture owning a unique on-disk scratch directory, wiped on setup and
/// teardown. Use `root()` for raw paths or `NewPosixEnv()` for an Env
/// rooted inside the scratch space.
class ScratchDirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    // Parameterized test names contain '/'; flatten so the scratch root is
    // always a single directory under TempDir().
    std::string leaf = std::string("flor_") + info->test_suite_name() +
                       "_" + info->name();
    for (char& c : leaf) {
      if (c == '/' || c == '\\') c = '_';
    }
    root_ = (std::filesystem::path(::testing::TempDir()) / leaf).string();
    std::filesystem::remove_all(root_);
  }

  void TearDown() override { std::filesystem::remove_all(root_); }

  const std::string& root() const { return root_; }
  std::unique_ptr<Env> NewPosixEnv() const { return Env::NewPosixEnv(root_); }

 private:
  std::string root_;
};

}  // namespace testutil
}  // namespace flor

#endif  // FLOR_TESTS_TEST_UTIL_H_
