// Unit tests: frames, log streams, and the interpreter (costs, loop
// handling, main-loop planning, SkipBlock hook dispatch).

#include <gtest/gtest.h>

#include <limits>

#include "common/strings.h"
#include "exec/interpreter.h"
#include "ir/builder.h"
#include "test_util.h"

namespace flor {
namespace exec {
namespace {

TEST(Frame, SetGetHas) {
  Frame f;
  EXPECT_FALSE(f.Has("x"));
  EXPECT_TRUE(f.Get("x").status().IsNotFound());
  f.Set("x", ir::Value::Int(7));
  EXPECT_TRUE(f.Has("x"));
  EXPECT_EQ(f.Get("x")->AsInt(), 7);
  EXPECT_EQ(f.At("x").AsInt(), 7);
  f.Set("x", ir::Value::Float(1.5));  // rebind with new kind
  EXPECT_EQ(f.At("x").kind(), ir::ValueKind::kFloat);
}

TEST(Frame, NamesSorted) {
  Frame f;
  f.Set("b", ir::Value::Int(1));
  f.Set("a", ir::Value::Int(2));
  EXPECT_EQ(f.Names(), (std::vector<std::string>{"a", "b"}));
}

TEST(Frame, FingerprintOrderInsensitive) {
  Frame f;
  f.Set("a", ir::Value::Int(1));
  f.Set("b", ir::Value::Int(2));
  EXPECT_EQ(f.FingerprintOf({"a", "b"}), f.FingerprintOf({"b", "a"}));
  const uint64_t before = f.FingerprintOf({"a", "b"});
  f.Set("a", ir::Value::Int(9));
  EXPECT_NE(f.FingerprintOf({"a", "b"}), before);
}

TEST(LogStream, SerializeRoundTripWithEscapes) {
  LogStream stream;
  LogEntry e;
  e.stmt_uid = 12;
  e.context = "e=1/i=2";
  e.init_mode = true;
  e.label = "loss";
  e.text = "has\ttab and\nnewline and \\backslash";
  stream.Append(e);
  LogEntry e2;
  e2.stmt_uid = 13;
  e2.label = "acc";
  e2.text = "0.5";
  stream.Append(e2);

  auto back = LogStream::Deserialize(stream.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_TRUE(back->entries()[0] == e);
  EXPECT_TRUE(back->entries()[1] == e2);
}

TEST(LogStream, WorkEntriesExcludeInit) {
  LogStream stream;
  LogEntry work;
  work.label = "w";
  LogEntry init;
  init.label = "i";
  init.init_mode = true;
  stream.Append(work);
  stream.Append(init);
  auto entries = stream.WorkEntries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].label, "w");
}

TEST(LogStream, MalformedLineRejected) {
  EXPECT_FALSE(LogStream::Deserialize("not\tenough\tfields\n").ok());
  EXPECT_TRUE(LogStream::Deserialize("").ok());  // empty is fine
}

/// The historical per-entry serializer (escape into a temporary, StrCat a
/// line, append): the reference the single-allocation Serialize() is
/// pinned against.
std::string ReferenceSerialize(const LogStream& stream) {
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '\t': out += "\\t"; break;
        case '\n': out += "\\n"; break;
        case '\\': out += "\\\\"; break;
        default: out += c;
      }
    }
    return out;
  };
  std::string out;
  for (const auto& e : stream.entries()) {
    out += StrCat(e.stmt_uid, "\t", escape(e.context), "\t",
                  e.init_mode ? 1 : 0, "\t", escape(e.label), "\t",
                  escape(e.text), "\n");
  }
  return out;
}

TEST(LogStream, SerializeBitIdenticalToReferenceOnRandomEntries) {
  // Property test over randomized entries — escape-heavy text, empty
  // fields, negative and extreme uids — the recorded-log byte format is a
  // compatibility surface (replay byte-parity checks hash it), so the
  // low-copy serializer must reproduce the reference bytes exactly.
  Rng rng = testutil::SeededRng(29);
  const std::string alphabet = "ab\t\n\\=/0.5 loss\xc3\xa9";
  auto random_string = [&](size_t max_len) {
    std::string s;
    const size_t len = rng.Uniform(max_len + 1);
    for (size_t i = 0; i < len; ++i)
      s += alphabet[rng.Uniform(alphabet.size())];
    return s;
  };
  for (int round = 0; round < 50; ++round) {
    LogStream stream;
    const int n = static_cast<int>(rng.Uniform(20));
    for (int i = 0; i < n; ++i) {
      LogEntry e;
      switch (rng.Uniform(5)) {
        case 0: e.stmt_uid = -1; break;
        case 1: e.stmt_uid = std::numeric_limits<int32_t>::min(); break;
        case 2: e.stmt_uid = std::numeric_limits<int32_t>::max(); break;
        default:
          e.stmt_uid = static_cast<int32_t>(rng.Uniform(1 << 20));
      }
      e.context = random_string(12);
      e.init_mode = rng.Uniform(2) == 1;
      e.label = random_string(8);
      e.text = random_string(40);
      stream.Append(e);
    }
    const std::string bytes = stream.Serialize();
    ASSERT_EQ(bytes, ReferenceSerialize(stream)) << "round " << round;
    // And the bytes still round-trip (escapes included).
    auto back = LogStream::Deserialize(bytes);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    ASSERT_EQ(back->size(), stream.size());
    for (size_t i = 0; i < stream.size(); ++i)
      EXPECT_TRUE(back->entries()[i] == stream.entries()[i]);
  }
}

std::unique_ptr<ir::Program> CounterProgram(int64_t outer, int64_t inner) {
  ir::ProgramBuilder b;
  b.Assign({"count"}, {"0"}, [](Frame* f) {
    f->Set("count", ir::Value::Int(0));
    return Status::OK();
  });
  b.BeginLoop("e", outer);
  b.BeginLoop("i", inner);
  b.CallAssign({"count"}, "inc", {"count"}, [](Frame* f) {
     f->Set("count", ir::Value::Int(f->At("count").AsInt() + 1));
     return Status::OK();
   }).Cost(1.0);
  b.EndLoop();
  b.Log("count", [](Frame* f) {
    return StrCat(f->At("count").AsInt());
  });
  b.EndLoop();
  return b.Build();
}

TEST(Interpreter, RunsNestedLoopsAndChargesCosts) {
  auto env = Env::NewSimEnv();
  auto program = CounterProgram(3, 4);
  LogStream logs;
  Interpreter interp(env.get(), &logs, nullptr);
  Frame frame;
  ASSERT_TRUE(interp.Run(program.get(), &frame).ok());
  EXPECT_EQ(frame.At("count").AsInt(), 12);
  EXPECT_DOUBLE_EQ(interp.elapsed_seconds(), 12.0);  // 12 x 1s sim cost
  ASSERT_EQ(logs.size(), 3u);
  EXPECT_EQ(logs.entries()[0].text, "4");
  EXPECT_EQ(logs.entries()[2].text, "12");
  EXPECT_EQ(logs.entries()[1].context, "e=1");
}

TEST(Interpreter, LoopVariableBoundPerIteration) {
  ir::ProgramBuilder b;
  b.Assign({"sum"}, {"0"}, [](Frame* f) {
    f->Set("sum", ir::Value::Int(0));
    return Status::OK();
  });
  b.BeginLoop("i", 5);
  b.CallAssign({"sum"}, "add", {"sum", "i"}, [](Frame* f) {
    f->Set("sum", ir::Value::Int(f->At("sum").AsInt() + f->At("i").AsInt()));
    return Status::OK();
  });
  b.EndLoop();
  auto program = b.Build();
  auto env = Env::NewSimEnv();
  Interpreter interp(env.get(), nullptr, nullptr);
  Frame frame;
  ASSERT_TRUE(interp.Run(program.get(), &frame).ok());
  EXPECT_EQ(frame.At("sum").AsInt(), 0 + 1 + 2 + 3 + 4);
  EXPECT_EQ(frame.At("i").AsInt(), 4);  // Python semantics after loop
}

TEST(Interpreter, DynamicTripCountFromFrame) {
  ir::ProgramBuilder b;
  b.Assign({"n"}, {"3"}, [](Frame* f) {
    f->Set("n", ir::Value::Int(3));
    return Status::OK();
  });
  b.Assign({"hits"}, {"0"}, [](Frame* f) {
    f->Set("hits", ir::Value::Int(0));
    return Status::OK();
  });
  b.BeginLoopVar("i", "n");
  b.CallAssign({"hits"}, "inc", {"hits"}, [](Frame* f) {
    f->Set("hits", ir::Value::Int(f->At("hits").AsInt() + 1));
    return Status::OK();
  });
  b.EndLoop();
  auto program = b.Build();
  auto env = Env::NewSimEnv();
  Interpreter interp(env.get(), nullptr, nullptr);
  Frame frame;
  ASSERT_TRUE(interp.Run(program.get(), &frame).ok());
  EXPECT_EQ(frame.At("hits").AsInt(), 3);
}

TEST(Interpreter, StatementErrorPropagates) {
  ir::ProgramBuilder b;
  b.OpaqueCall("boom", {}, [](Frame*) {
    return Status::Internal("kaboom");
  });
  auto program = b.Build();
  auto env = Env::NewSimEnv();
  Interpreter interp(env.get(), nullptr, nullptr);
  Frame frame;
  Status s = interp.Run(program.get(), &frame);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
}

/// Hooks that plan a custom main-loop schedule and skip marked loops.
class TestHooks : public ExecHooks {
 public:
  std::vector<PlannedIter> plan;
  bool covers_end = true;
  int enters = 0;
  int exits = 0;
  bool skip_all = false;

  Result<LoopAction> OnSkipBlockEnter(ir::Loop*, const std::string&, bool,
                                      Frame*) override {
    ++enters;
    return skip_all ? LoopAction::kSkip : LoopAction::kExecute;
  }
  Status OnSkipBlockExit(ir::Loop*, const std::string&, Frame*,
                         double) override {
    ++exits;
    return Status::OK();
  }
  Result<std::optional<MainLoopPlan>> PlanMainLoop(ir::Loop*, int64_t,
                                                   Frame*) override {
    MainLoopPlan p;
    p.iters = plan;
    p.covers_final_epoch = covers_end;
    return std::optional<MainLoopPlan>(std::move(p));
  }
};

TEST(Interpreter, MainLoopPlanControlsIterations) {
  auto program = CounterProgram(10, 2);
  TestHooks hooks;
  hooks.plan = {{3, IterMode::kWork}, {7, IterMode::kWork}};
  auto env = Env::NewSimEnv();
  LogStream logs;
  Interpreter interp(env.get(), &logs, &hooks);
  Frame frame;
  ASSERT_TRUE(interp.Run(program.get(), &frame).ok());
  // Only two planned epochs ran.
  EXPECT_EQ(frame.At("count").AsInt(), 4);
  ASSERT_EQ(logs.size(), 2u);
  EXPECT_EQ(logs.entries()[0].context, "e=3");
  EXPECT_EQ(logs.entries()[1].context, "e=7");
}

TEST(Interpreter, InitModeMarksLogEntries) {
  auto program = CounterProgram(4, 1);
  TestHooks hooks;
  hooks.plan = {{0, IterMode::kInit}, {1, IterMode::kWork}};
  auto env = Env::NewSimEnv();
  LogStream logs;
  Interpreter interp(env.get(), &logs, &hooks);
  Frame frame;
  ASSERT_TRUE(interp.Run(program.get(), &frame).ok());
  ASSERT_EQ(logs.size(), 2u);
  EXPECT_TRUE(logs.entries()[0].init_mode);
  EXPECT_FALSE(logs.entries()[1].init_mode);
}

TEST(Interpreter, PartialPlanMarksTailAsInit) {
  ir::ProgramBuilder b;
  b.BeginLoop("e", 4);
  b.OpaqueCall("work", {}, [](Frame*) { return Status::OK(); });
  b.EndLoop();
  b.Log("after", [](Frame*) { return std::string("tail"); });
  auto program = b.Build();

  TestHooks hooks;
  hooks.plan = {{0, IterMode::kWork}};
  hooks.covers_end = false;
  auto env = Env::NewSimEnv();
  LogStream logs;
  Interpreter interp(env.get(), &logs, &hooks);
  Frame frame;
  ASSERT_TRUE(interp.Run(program.get(), &frame).ok());
  ASSERT_EQ(logs.size(), 1u);
  EXPECT_TRUE(logs.entries()[0].init_mode);  // tail output suppressed
}

TEST(Interpreter, PlannedIterationOutOfRangeRejected) {
  auto program = CounterProgram(3, 1);
  TestHooks hooks;
  hooks.plan = {{5, IterMode::kWork}};
  auto env = Env::NewSimEnv();
  Interpreter interp(env.get(), nullptr, &hooks);
  Frame frame;
  EXPECT_EQ(interp.Run(program.get(), &frame).code(),
            StatusCode::kOutOfRange);
}

TEST(Interpreter, SkipBlockHooksFireForInstrumentedLoops) {
  ir::ProgramBuilder b;
  b.CallAssign({"model"}, "build", {}, [](Frame* f) {
    f->Set("model", ir::Value::Int(0));
    return Status::OK();
  });
  b.BeginLoop("e", 3);
  b.BeginLoop("i", 2);
  b.MethodCall("model", "update", {}, [](Frame* f) {
    f->Set("model", ir::Value::Int(f->At("model").AsInt() + 1));
    return Status::OK();
  });
  b.EndLoop();
  b.EndLoop();
  auto program = b.Build();
  // Mark the inner loop instrumented by hand (normally flor/instrument).
  program->FindLoop(2)->analysis().instrumented = true;

  TestHooks hooks;
  for (int64_t e = 0; e < 3; ++e) hooks.plan.push_back({e, IterMode::kWork});
  auto env = Env::NewSimEnv();
  Interpreter interp(env.get(), nullptr, &hooks);
  Frame frame;
  ASSERT_TRUE(interp.Run(program.get(), &frame).ok());
  EXPECT_EQ(hooks.enters, 3);
  EXPECT_EQ(hooks.exits, 3);
  EXPECT_EQ(frame.At("model").AsInt(), 6);
}

TEST(Interpreter, SkippedSkipBlockBodyDoesNotRun) {
  ir::ProgramBuilder b;
  b.CallAssign({"model"}, "build", {}, [](Frame* f) {
    f->Set("model", ir::Value::Int(0));
    return Status::OK();
  });
  b.BeginLoop("i", 4);
  b.MethodCall("model", "update", {}, [](Frame* f) {
    f->Set("model", ir::Value::Int(f->At("model").AsInt() + 1));
    return Status::OK();
  });
  b.EndLoop();
  auto program = b.Build();
  // The single top-level loop is the main loop; add a second loop wrapper?
  // Instead instrument it and give no main-loop special casing by nesting:
  // here we mark it instrumented and rely on hooks returning a plan of
  // nothing being absent (it IS the main loop, so PlanMainLoop applies).
  // Use a non-main nested shape instead:
  ir::ProgramBuilder b2;
  b2.CallAssign({"model"}, "build", {}, [](Frame* f) {
    f->Set("model", ir::Value::Int(0));
    return Status::OK();
  });
  b2.BeginLoop("e", 1);
  b2.BeginLoop("i", 4);
  b2.MethodCall("model", "update", {}, [](Frame* f) {
    f->Set("model", ir::Value::Int(f->At("model").AsInt() + 1));
    return Status::OK();
  });
  b2.EndLoop();
  b2.EndLoop();
  auto nested = b2.Build();
  nested->FindLoop(2)->analysis().instrumented = true;

  TestHooks skipper;
  skipper.skip_all = true;
  skipper.plan = {{0, IterMode::kWork}};
  auto env = Env::NewSimEnv();
  Interpreter interp(env.get(), nullptr, &skipper);
  Frame frame;
  ASSERT_TRUE(interp.Run(nested.get(), &frame).ok());
  EXPECT_EQ(skipper.enters, 1);
  EXPECT_EQ(skipper.exits, 0);               // exit hook only on execution
  EXPECT_EQ(frame.At("model").AsInt(), 0);   // body never ran
  EXPECT_EQ(frame.At("i").AsInt(), 3);       // iter var at final value
  (void)program;
}

TEST(VanillaHooks, ExecutesEverything) {
  auto program = CounterProgram(2, 2);
  program->FindLoop(2)->analysis().instrumented = true;
  VanillaHooks hooks;
  auto env = Env::NewSimEnv();
  Interpreter interp(env.get(), nullptr, &hooks);
  Frame frame;
  ASSERT_TRUE(interp.Run(program.get(), &frame).ok());
  EXPECT_EQ(frame.At("count").AsInt(), 4);
}

}  // namespace
}  // namespace exec
}  // namespace flor
