// Tests for the §8 future-work features: binary-search replay and
// cross-run log queries.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "flor/query.h"
#include "flor/record.h"
#include "flor/search.h"
#include "sim/cost_model.h"
#include "test_util.h"
#include "workloads/programs.h"

namespace flor {
namespace {

using workloads::kProbeInner;
using workloads::kProbeNone;
using workloads::MakeWorkloadFactory;
using workloads::WorkloadProfile;

WorkloadProfile SearchProfile(int64_t epochs = 16) {
  WorkloadProfile p;
  p.name = "Search";
  p.epochs = epochs;
  p.sim_epoch_seconds = 50;
  p.sim_outer_seconds = 1;
  p.sim_preamble_seconds = 2;
  p.sim_ckpt_raw_bytes = 1 << 20;
  p.task_kind = data::Task::kVision;
  p.real_samples = 32;
  p.real_batch = 8;
  p.real_feature_dim = 12;
  p.real_classes = 3;
  p.real_hidden = 12;
  p.seed = testutil::TestSeed(4242);
  return p;
}

void RecordInto(FileSystem* fs, const WorkloadProfile& p,
                const std::string& prefix) {
  Env env(std::make_unique<SimClock>(), fs);
  auto instance = MakeWorkloadFactory(p, kProbeNone)();
  ASSERT_TRUE(instance.ok());
  RecordOptions opts = workloads::DefaultRecordOptions(p, prefix);
  RecordSession session(&env, opts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

/// Predicate over the epoch index itself — a deterministic monotone
/// frontier lets us verify the search schedule exactly.
EpochPredicate FrontierAt(int64_t frontier) {
  return [frontier](int64_t epoch, const std::vector<exec::LogEntry>&)
             -> Result<bool> { return epoch >= frontier; };
}

TEST(SearchReplay, FindsFrontierInLogProbes) {
  const WorkloadProfile p = SearchProfile(16);
  MemFileSystem fs;
  RecordInto(&fs, p, "run");

  Env env = testutil::MakeSimEnv(&fs);
  SearchOptions opts;
  opts.run_prefix = "run";
  opts.costs = sim::PaperPlatformCosts();
  auto factory = MakeWorkloadFactory(p, kProbeInner);
  auto result = SearchReplay(&env, factory, FrontierAt(11), opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->found_epoch, 11);
  // Binary search: O(log 16) + the initial last-epoch check.
  EXPECT_LE(result->probed_epochs.size(), 6u);
}

TEST(SearchReplay, NeverHoldsReturnsMinusOneAfterOneProbe) {
  const WorkloadProfile p = SearchProfile(16);
  MemFileSystem fs;
  RecordInto(&fs, p, "run");
  Env env = testutil::MakeSimEnv(&fs);
  SearchOptions opts;
  opts.run_prefix = "run";
  auto factory = MakeWorkloadFactory(p, kProbeInner);
  auto result = SearchReplay(
      &env, factory,
      [](int64_t, const std::vector<exec::LogEntry>&) -> Result<bool> {
        return false;
      },
      opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->found_epoch, -1);
  EXPECT_EQ(result->probed_epochs.size(), 1u);  // only the last epoch
}

TEST(SearchReplay, HoldsEverywhereFindsEpochZero) {
  const WorkloadProfile p = SearchProfile(8);
  MemFileSystem fs;
  RecordInto(&fs, p, "run");
  Env env = testutil::MakeSimEnv(&fs);
  SearchOptions opts;
  opts.run_prefix = "run";
  auto factory = MakeWorkloadFactory(p, kProbeInner);
  auto result = SearchReplay(&env, factory, FrontierAt(0), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->found_epoch, 0);
}

TEST(SearchReplay, PredicateSeesEpochEntriesOnly) {
  const WorkloadProfile p = SearchProfile(8);
  MemFileSystem fs;
  RecordInto(&fs, p, "run");
  Env env = testutil::MakeSimEnv(&fs);
  SearchOptions opts;
  opts.run_prefix = "run";
  auto factory = MakeWorkloadFactory(p, kProbeInner);
  auto result = SearchReplay(
      &env, factory,
      [](int64_t epoch,
         const std::vector<exec::LogEntry>& entries) -> Result<bool> {
        // Every entry must come from the probed epoch's context, and the
        // hindsight grad_norm probe output must be present.
        bool saw_probe = false;
        for (const auto& e : entries) {
          EXPECT_EQ(e.context.find(StrCat("e=", epoch)), 0u) << e.context;
          if (e.label == "grad_norm") saw_probe = true;
        }
        EXPECT_TRUE(saw_probe);
        return epoch >= 5;
      },
      opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->found_epoch, 5);
}

TEST(SearchReplay, ConfirmationWindowRuns) {
  const WorkloadProfile p = SearchProfile(16);
  MemFileSystem fs;
  RecordInto(&fs, p, "run");
  Env env = testutil::MakeSimEnv(&fs);
  SearchOptions opts;
  opts.run_prefix = "run";
  opts.confirm_epochs = 2;
  auto factory = MakeWorkloadFactory(p, kProbeInner);
  auto result = SearchReplay(&env, factory, FrontierAt(6), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->found_epoch, 6);
  EXPECT_TRUE(result->confirmed);
  // The confirmation window (epochs 7 and 8) was probed last.
  ASSERT_GE(result->probed_epochs.size(), 2u);
  const auto n = result->probed_epochs.size();
  EXPECT_EQ(result->probed_epochs[n - 2], 7);
  EXPECT_EQ(result->probed_epochs[n - 1], 8);
}

TEST(SearchReplay, CheaperThanFullReplayForLargeRuns) {
  const WorkloadProfile p = SearchProfile(64);
  MemFileSystem fs;
  RecordInto(&fs, p, "run");
  Env env = testutil::MakeSimEnv(&fs);
  SearchOptions opts;
  opts.run_prefix = "run";
  opts.costs = sim::PaperPlatformCosts();
  auto factory = MakeWorkloadFactory(p, kProbeInner);
  auto result = SearchReplay(&env, factory, FrontierAt(40), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->found_epoch, 40);
  // <= 8 single-epoch probes vs a 64-epoch full re-execution.
  EXPECT_LT(result->total_latency_seconds, p.VanillaSeconds() / 4);
}

TEST(Query, ListRunsFindsAllManifests) {
  MemFileSystem fs;
  RecordInto(&fs, SearchProfile(4), "projects/a/run1");
  RecordInto(&fs, SearchProfile(4), "projects/a/run2");
  RecordInto(&fs, SearchProfile(4), "projects/b/run1");
  auto runs = ListRuns(&fs, "projects");
  ASSERT_TRUE(runs.ok());
  ASSERT_EQ(runs->size(), 3u);
  EXPECT_EQ((*runs)[0].prefix, "projects/a/run1");
  EXPECT_EQ((*runs)[0].workload, "Search");
  EXPECT_GT((*runs)[0].checkpoints, 0);
}

TEST(Query, MetricSeriesExtractsNumbers) {
  MemFileSystem fs;
  const WorkloadProfile p = SearchProfile(4);
  RecordInto(&fs, p, "run");
  auto series = MetricSeries(&fs, "run", "test_acc");
  ASSERT_TRUE(series.ok()) << series.status().ToString();
  EXPECT_EQ(series->size(), 4u);  // one per epoch
  for (double v : *series) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  auto losses = MetricSeries(&fs, "run", "loss");
  ASSERT_TRUE(losses.ok());
  EXPECT_EQ(losses->size(), 4u * 4u);  // per batch
  EXPECT_TRUE(MetricSeries(&fs, "run", "nope")->empty());
}

TEST(Query, FindRunsByPredicate) {
  MemFileSystem fs;
  RecordInto(&fs, SearchProfile(4), "runs/short");
  RecordInto(&fs, SearchProfile(8), "runs/long");
  auto found = FindRuns(
      &fs, "runs",
      [](const RunInfo&,
         const std::vector<exec::LogEntry>& logs) -> Result<bool> {
        int epochs = 0;
        for (const auto& e : logs)
          if (e.label == "test_acc") ++epochs;
        return epochs >= 8;
      });
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->size(), 1u);
  EXPECT_EQ((*found)[0].prefix, "runs/long");
}

TEST(Query, ExplodingVanishingPattern) {
  // The paper's §8 example pattern detector.
  EXPECT_TRUE(ShowsExplodingVanishingPattern(
      {1.0, 5.0, 60.0, 200.0, 3.0, 0.5, 0.001}));
  // Explodes but never vanishes.
  EXPECT_FALSE(ShowsExplodingVanishingPattern({1.0, 50.0, 100.0, 90.0}));
  // Decays without exploding.
  EXPECT_FALSE(ShowsExplodingVanishingPattern({1.0, 0.5, 0.1, 0.0001}));
  // Degenerate inputs.
  EXPECT_FALSE(ShowsExplodingVanishingPattern({}));
  EXPECT_FALSE(ShowsExplodingVanishingPattern({0.0, 100.0, 0.0}));
}

}  // namespace
}  // namespace flor
