// Unit tests: clocks, filesystems, background queue, Env bundles.

#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "env/background_queue.h"
#include "env/env.h"
#include "env/result_file.h"
#include "env/scratch.h"
#include "serialize/frame.h"
#include "test_util.h"

namespace flor {
namespace {

TEST(SimClock, AdvancesOnDemand) {
  SimClock clock;
  EXPECT_EQ(clock.NowMicros(), 0u);
  clock.AdvanceMicros(1500);
  EXPECT_EQ(clock.NowMicros(), 1500u);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 1.5e-3);
  EXPECT_TRUE(clock.is_simulated());
}

TEST(SimClock, AdvanceToNeverGoesBack) {
  SimClock clock(100);
  clock.AdvanceTo(50);
  EXPECT_EQ(clock.NowMicros(), 100u);
  clock.AdvanceTo(300);
  EXPECT_EQ(clock.NowMicros(), 300u);
}

TEST(WallClock, MonotonicAndReal) {
  WallClock clock;
  const uint64_t a = clock.NowMicros();
  clock.AdvanceMicros(2000);  // sleeps ~2 ms
  const uint64_t b = clock.NowMicros();
  EXPECT_GT(b, a);
  EXPECT_FALSE(clock.is_simulated());
}

TEST(SecondsToMicros, Rounds) {
  EXPECT_EQ(SecondsToMicros(1.0), 1000000u);
  EXPECT_EQ(SecondsToMicros(0.0000005), 1u);  // rounds up at .5
}

TEST(MemFileSystem, WriteReadRoundTrip) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("a/b/c.txt", "hello").ok());
  auto data = fs.ReadFile("a/b/c.txt");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "hello");
  EXPECT_TRUE(fs.Exists("a/b/c.txt"));
  EXPECT_FALSE(fs.Exists("a/b/d.txt"));
}

TEST(MemFileSystem, ReadMissingIsNotFound) {
  MemFileSystem fs;
  EXPECT_TRUE(fs.ReadFile("nope").status().IsNotFound());
  EXPECT_TRUE(fs.FileSize("nope").status().IsNotFound());
  EXPECT_TRUE(fs.DeleteFile("nope").IsNotFound());
}

TEST(MemFileSystem, OverwriteReplaces) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("x", "one").ok());
  ASSERT_TRUE(fs.WriteFile("x", "two").ok());
  EXPECT_EQ(*fs.ReadFile("x"), "two");
}

TEST(MemFileSystem, AppendCreatesAndExtends) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.AppendFile("log", "a").ok());
  ASSERT_TRUE(fs.AppendFile("log", "b").ok());
  EXPECT_EQ(*fs.ReadFile("log"), "ab");
}

TEST(MemFileSystem, ListPrefixSorted) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("run/ckpt/b", "2").ok());
  ASSERT_TRUE(fs.WriteFile("run/ckpt/a", "1").ok());
  ASSERT_TRUE(fs.WriteFile("run/logs", "x").ok());
  ASSERT_TRUE(fs.WriteFile("other", "y").ok());
  auto listed = fs.ListPrefix("run/ckpt/");
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], "run/ckpt/a");
  EXPECT_EQ(listed[1], "run/ckpt/b");
}

TEST(MemFileSystem, TotalBytesUnder) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("p/a", "123").ok());
  ASSERT_TRUE(fs.WriteFile("p/b", "4567").ok());
  ASSERT_TRUE(fs.WriteFile("q/c", "89").ok());
  EXPECT_EQ(fs.TotalBytesUnder("p/"), 7u);
}

TEST(MemFileSystem, CorruptByteFlipsContent) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("f", std::string("abc")).ok());
  ASSERT_TRUE(fs.CorruptByte("f", 1).ok());
  EXPECT_NE(*fs.ReadFile("f"), "abc");
  EXPECT_TRUE(fs.CorruptByte("f", 99).code() == StatusCode::kOutOfRange);
}

using PosixFileSystemTest = testutil::ScratchDirTest;

TEST_F(PosixFileSystemTest, RoundTripUnderTempRoot) {
  PosixFileSystem fs(root());
  ASSERT_TRUE(fs.WriteFile("sub/dir/file.bin", "payload").ok());
  EXPECT_TRUE(fs.Exists("sub/dir/file.bin"));
  EXPECT_EQ(*fs.ReadFile("sub/dir/file.bin"), "payload");
  EXPECT_EQ(*fs.FileSize("sub/dir/file.bin"), 7u);
  auto listed = fs.ListPrefix("sub/");
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0], "sub/dir/file.bin");
  ASSERT_TRUE(fs.AppendFile("sub/dir/file.bin", "!").ok());
  EXPECT_EQ(*fs.ReadFile("sub/dir/file.bin"), "payload!");
  ASSERT_TRUE(fs.DeleteFile("sub/dir/file.bin").ok());
  EXPECT_FALSE(fs.Exists("sub/dir/file.bin"));
}

TEST(BackgroundQueue, RunsJobsAndDrains) {
  BackgroundQueue queue;
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) queue.Submit([&] { ++counter; });
  queue.Drain();
  EXPECT_EQ(counter.load(), 50);
  EXPECT_EQ(queue.InFlight(), 0u);
}

TEST(BackgroundQueue, TracksMaxInFlight) {
  BackgroundQueue queue;
  for (int i = 0; i < 10; ++i) queue.Submit([] {});
  queue.Drain();
  EXPECT_GE(queue.MaxInFlight(), 1u);
}

TEST(Env, SimEnvBundlesSimServices) {
  auto env = Env::NewSimEnv(42);
  EXPECT_TRUE(env->clock()->is_simulated());
  EXPECT_NE(env->sim_clock(), nullptr);
  EXPECT_EQ(env->clock()->NowMicros(), 42u);
  EXPECT_TRUE(env->fs()->WriteFile("x", "y").ok());
}

TEST(Env, NonOwningSharedFilesystem) {
  MemFileSystem shared;
  Env a(std::make_unique<SimClock>(), &shared);
  Env b(std::make_unique<SimClock>(), &shared);
  ASSERT_TRUE(a.fs()->WriteFile("k", "v").ok());
  EXPECT_EQ(*b.fs()->ReadFile("k"), "v");
  a.clock()->AdvanceMicros(100);
  EXPECT_EQ(b.clock()->NowMicros(), 0u);  // clocks independent
}

// ------------------------------------------------------- result files ---

TEST(ResultFile, RoundTripsArbitrarySections) {
  // Sections carry raw bytes: embedded NULs, tabs, newlines, emptiness.
  const std::vector<std::string> sections = {
      "plain", std::string("\0binary\0", 8), "tab\there\nand newline", ""};
  const std::string encoded = EncodeResultSections(sections);
  auto decoded = DecodeResultSections(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, sections);

  // Zero sections is a valid (if empty) result.
  auto none = DecodeResultSections(EncodeResultSections({}));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

TEST(ResultFile, EveryTruncationAndHeaderLieIsCorruption) {
  const std::string encoded =
      EncodeResultSections({"alpha", "beta", "gamma"});
  // Every strict prefix fails — including the empty file and cuts at
  // exact frame boundaries (the header's section count catches those).
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    auto got = DecodeResultSections(encoded.substr(0, cut));
    ASSERT_FALSE(got.ok()) << "prefix of " << cut << " bytes parsed";
    EXPECT_TRUE(got.status().IsCorruption()) << "cut " << cut;
  }
  // Appending a stray well-formed frame is also a count mismatch.
  std::string extra = encoded;
  AppendFrame(&extra, "stray");
  EXPECT_TRUE(DecodeResultSections(extra).status().IsCorruption());
  // A frame stream without the florres header is rejected.
  std::string headerless;
  AppendFrame(&headerless, "not a header");
  EXPECT_TRUE(DecodeResultSections(headerless).status().IsCorruption());
}

TEST(ResultFile, SingleByteMutationsNeverParse) {
  const std::string encoded = EncodeResultSections({"alpha", "beta"});
  for (size_t pos = 0; pos < encoded.size(); ++pos) {
    std::string mutated = encoded;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x20);
    auto got = DecodeResultSections(mutated);
    ASSERT_FALSE(got.ok()) << "mutation at " << pos << " parsed";
    EXPECT_TRUE(got.status().IsCorruption()) << "mutation at " << pos;
  }
}

TEST(ResultFile, WriteReadThroughFilesystem) {
  MemFileSystem fs;
  ASSERT_TRUE(WriteResultFile(&fs, "res/worker-0.res", {"a", "b"}).ok());
  auto got = ReadResultFile(&fs, "res/worker-0.res");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (std::vector<std::string>{"a", "b"}));
  // Absent file: NotFound (the "worker never committed" signal), not
  // Corruption.
  auto missing = ReadResultFile(&fs, "res/worker-1.res");
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound());
  // A flipped byte on disk: Corruption.
  ASSERT_TRUE(fs.CorruptByte("res/worker-0.res", 6).ok());
  EXPECT_TRUE(
      ReadResultFile(&fs, "res/worker-0.res").status().IsCorruption());
}

// -------------------------------------------------------- scratch dirs ---

TEST(ScratchDir, CreatesUniqueDirsAndRemovesOnDestruction) {
  std::string first_path;
  {
    auto a = ScratchDir::Create("flor-envtest");
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    auto b = ScratchDir::Create("flor-envtest");
    ASSERT_TRUE(b.ok());
    EXPECT_NE(a->path(), b->path());
    first_path = a->path();
    PosixFileSystem fs(first_path);
    ASSERT_TRUE(fs.WriteFile("nested/file.txt", "data").ok());
    EXPECT_TRUE(fs.Exists("nested/file.txt"));
  }
  // Gone, including nested content.
  PosixFileSystem probe(first_path);
  EXPECT_FALSE(probe.Exists("nested/file.txt"));
}

TEST(ScratchDir, CreateFailureNamesTheErrno) {
  // A tag longer than any filesystem's component limit forces mkdtemp to
  // fail with ENAMETOOLONG (works even as root, unlike a permission
  // denial). The error must carry the template path and the strerror
  // text, not a bare "mkdtemp failed".
  const std::string tag(300, 'x');
  auto dir = ScratchDir::Create(tag);
  ASSERT_FALSE(dir.ok());
  EXPECT_TRUE(dir.status().code() == StatusCode::kIOError)
      << dir.status().ToString();
  const std::string msg = dir.status().ToString();
  EXPECT_NE(msg.find("mkdtemp"), std::string::npos) << msg;
  EXPECT_NE(msg.find(tag), std::string::npos) << msg;
  EXPECT_NE(msg.find(std::strerror(ENAMETOOLONG)), std::string::npos) << msg;
}

TEST(ScratchDir, KeepPreservesTheDirectory) {
  std::string path;
  {
    auto dir = ScratchDir::Create("flor-envtest-keep");
    ASSERT_TRUE(dir.ok());
    dir->set_keep(true);
    path = dir->path();
    PosixFileSystem fs(path);
    ASSERT_TRUE(fs.WriteFile("kept.txt", "still here").ok());
  }
  PosixFileSystem fs(path);
  EXPECT_EQ(*fs.ReadFile("kept.txt"), "still here");
  std::filesystem::remove_all(path);  // manual cleanup
}

}  // namespace
}  // namespace flor
