// Tiered checkpoint store (local shard → bucket mirror): read fall-through
// and rehydration, demotion under local GC, bucket-tier retirement with
// the manifest-first ordering contract, orphan reconciliation, and replay
// byte-parity across engines on an aggressively demoted store. Runs under
// the `tiered` ctest label (including the FLOR_TSAN pass in check.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "checkpoint/gc.h"
#include "checkpoint/spool.h"
#include "checkpoint/store.h"
#include "common/strings.h"
#include "env/filesystem.h"
#include "exec/replay_executor.h"
#include "flor/record.h"
#include "flor/replay_plan.h"
#include "sim/parallel_replay.h"
#include "test_util.h"
#include "workloads/programs.h"

namespace flor {
namespace {

using workloads::kProbeInner;
using workloads::kProbeNone;
using workloads::MakeWorkloadFactory;
using workloads::WorkloadProfile;

/// Densely checkpointed workload so GC has a long epoch timeline.
WorkloadProfile TieredProfile(int64_t epochs = 12, int shards = 4) {
  WorkloadProfile p;
  p.name = "TierT";
  p.epochs = epochs;
  p.sim_epoch_seconds = 100;
  p.sim_outer_seconds = 2;
  p.sim_preamble_seconds = 5;
  p.sim_ckpt_raw_bytes = 1 << 20;
  p.ckpt_shards = shards;
  p.task_kind = data::Task::kVision;
  p.real_samples = 32;
  p.real_batch = 8;
  p.real_feature_dim = 12;
  p.real_classes = 3;
  p.real_hidden = 12;
  p.seed = testutil::TestSeed(31);
  return p;
}

/// Records `profile` under "run" on `fs`, spooling the bucket mirror to
/// "s3" (no end-of-run GC unless `keep_last_k` is set).
RecordResult RecordWithMirror(FileSystem* fs, const WorkloadProfile& profile,
                              int64_t keep_last_k = 0) {
  Env env(std::make_unique<SimClock>(), fs);
  auto instance = MakeWorkloadFactory(profile, kProbeNone)();
  EXPECT_TRUE(instance.ok());
  RecordOptions opts = workloads::DefaultRecordOptions(profile, "run");
  opts.spool_prefix = "s3";
  opts.gc.keep_last_k = keep_last_k;
  RecordSession session(&env, opts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Full byte image of everything under `prefix`.
std::map<std::string, std::string> SnapshotPrefix(const FileSystem& fs,
                                                  const std::string& prefix) {
  std::map<std::string, std::string> out;
  for (const auto& path : fs.ListPrefix(prefix)) {
    auto data = fs.ReadFile(path);
    EXPECT_TRUE(data.ok()) << path;
    out[path] = *data;
  }
  return out;
}

TEST(JoinObjectPath, NormalizesSlashes) {
  EXPECT_EQ(JoinObjectPath("s3", "run/ckpt/a"), "s3/run/ckpt/a");
  EXPECT_EQ(JoinObjectPath("s3/", "run/ckpt/a"), "s3/run/ckpt/a");
  EXPECT_EQ(JoinObjectPath("s3//", "//run/ckpt/a"), "s3/run/ckpt/a");
  EXPECT_EQ(JoinObjectPath("", "run/a"), "run/a");
  EXPECT_EQ(JoinObjectPath("s3", ""), "s3");
  EXPECT_EQ(JoinObjectPath("s3/", "/"), "s3");
}

TEST(TieredStore, ReadsFallThroughToBucketAndRehydrate) {
  MemFileSystem fs;
  CheckpointStore store(&fs, "run/ckpt", /*num_shards=*/4);
  NamedSnapshots snaps;
  snaps.emplace_back("w", ir::SnapshotValue(ir::Value::Int(7)));
  const std::string bytes = EncodeCheckpoint(snaps);

  CheckpointKey key{2, "e=3"};
  ASSERT_TRUE(store.PutBytes(key, bytes).ok());
  // Mirror to the bucket the way the spooler does, then drop the local
  // copy — the demoted state.
  ASSERT_TRUE(
      fs.WriteFile(JoinObjectPath("s3", store.PathFor(key)), bytes).ok());
  ASSERT_TRUE(store.DeleteObject(key).ok());

  // Without a bucket: a local miss is a plain NotFound.
  EXPECT_TRUE(store.GetBytes(key).status().IsNotFound());
  EXPECT_FALSE(store.Exists(key));

  // With the bucket attached, the read falls through, reports its tier,
  // and rehydrates the local shard so the next read is local again.
  store.AttachBucket("s3");
  bool from_bucket = false;
  auto got = store.GetBytes(key, &from_bucket);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, bytes);
  EXPECT_TRUE(from_bucket);
  EXPECT_TRUE(store.Exists(key));
  EXPECT_EQ(store.tier_stats().bucket_faults, 1);
  EXPECT_EQ(store.tier_stats().rehydrated_objects, 1);
  EXPECT_TRUE(fs.Exists(store.PathFor(key)));

  auto again = store.GetBytes(key, &from_bucket);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(from_bucket);
  EXPECT_EQ(store.tier_stats().bucket_faults, 1);

  // Decoded reads go through the same tiers.
  auto decoded = store.Get(key);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0].second.int_v, 7);
}

TEST(TieredStore, NoRehydrateModeLeavesLocalTierEmpty) {
  MemFileSystem fs;
  CheckpointStore store(&fs, "run/ckpt");
  NamedSnapshots snaps;
  snaps.emplace_back("w", ir::SnapshotValue(ir::Value::Int(1)));
  const std::string bytes = EncodeCheckpoint(snaps);
  CheckpointKey key{1, "e=0"};
  ASSERT_TRUE(
      fs.WriteFile(JoinObjectPath("b", store.PathFor(key)), bytes).ok());

  store.AttachBucket("b", /*rehydrate_on_fault=*/false);
  bool from_bucket = false;
  ASSERT_TRUE(store.GetBytes(key, &from_bucket).ok());
  EXPECT_TRUE(from_bucket);
  EXPECT_FALSE(fs.Exists(store.PathFor(key)));
  EXPECT_EQ(store.tier_stats().bucket_faults, 1);
  EXPECT_EQ(store.tier_stats().rehydrated_objects, 0);
}

TEST(TieredStore, MissInBothTiersNamesKeyAndPaths) {
  MemFileSystem fs;
  CheckpointStore store(&fs, "run/ckpt", /*num_shards=*/2);
  store.AttachBucket("s3");
  CheckpointKey key{4, "e=9"};
  auto got = store.GetBytes(key);
  ASSERT_TRUE(got.status().IsNotFound());
  EXPECT_NE(got.status().message().find(key.ToString()), std::string::npos)
      << got.status().ToString();
  EXPECT_NE(got.status().message().find(store.PathFor(key)),
            std::string::npos);
  EXPECT_NE(got.status().message().find(store.BucketPathFor(key)),
            std::string::npos);
}

TEST(TieredStore, TornBucketObjectIsCorruptionNeverACrash) {
  MemFileSystem fs;
  const WorkloadProfile profile = TieredProfile();
  const RecordResult rec = RecordWithMirror(&fs, profile);

  // Demote everything but the newest epoch, then tear one bucket object.
  GcPolicy policy;
  policy.keep_last_k = 1;
  auto gc = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy, "s3");
  ASSERT_TRUE(gc.ok()) << gc.status().ToString();
  ASSERT_TRUE(gc->demoted_to_bucket);
  ASSERT_GT(gc->retired_objects(), 0);

  // Tear every demoted object's bucket copy: whichever one the replay plan
  // faults in must surface Corruption.
  CheckpointStore store(&fs, "run/ckpt", rec.manifest.shard_count);
  store.AttachBucket("s3", /*rehydrate_on_fault=*/false);
  const CheckpointRecord* demoted = nullptr;
  for (const auto& r : rec.manifest.records) {
    if (fs.Exists(store.PathFor(r.key))) continue;
    demoted = &r;
    ASSERT_TRUE(fs.CorruptByte(store.BucketPathFor(r.key), 6).ok());
  }
  ASSERT_NE(demoted, nullptr);

  auto got = store.Get(demoted->key);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption()) << got.status().ToString();

  // A full replay that needs the torn object fails with a status (never a
  // crash) — and an intact sibling still faults in fine.
  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.init_mode = InitMode::kWeak;
  copts.bucket_prefix = "s3";
  auto replayed = sim::ClusterReplay(MakeWorkloadFactory(profile,
                                                         kProbeInner),
                                     &fs, copts);
  ASSERT_FALSE(replayed.ok());
  EXPECT_TRUE(replayed.status().IsCorruption())
      << replayed.status().ToString();
}

TEST(TieredStore, KZeroWithBucketIsByteIdenticalNoOp) {
  MemFileSystem fs;
  const WorkloadProfile profile = TieredProfile(/*epochs=*/8, /*shards=*/2);
  RecordWithMirror(&fs, profile);
  const auto before = SnapshotPrefix(fs, "");

  GcPolicy policy;
  policy.keep_last_k = 0;
  auto report = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy,
                          "s3");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->retired_objects(), 0);
  EXPECT_FALSE(report->manifest_rewritten);
  EXPECT_EQ(SnapshotPrefix(fs, ""), before);
}

TEST(TieredStore, DemotionSkipsUnspooledObjects) {
  // A store with a bucket attached but an empty (or partial) mirror: the
  // demotion pass must keep local copies the bucket does not hold, so no
  // record ever becomes unreadable.
  MemFileSystem fs;
  const WorkloadProfile profile = TieredProfile(/*epochs=*/8, /*shards=*/2);
  Env env(std::make_unique<SimClock>(), &fs);
  auto instance = MakeWorkloadFactory(profile, kProbeNone)();
  ASSERT_TRUE(instance.ok());
  RecordSession session(&env,
                        workloads::DefaultRecordOptions(profile, "run"));
  exec::Frame frame;
  auto rec = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(rec.ok());

  const auto before = SnapshotPrefix(fs, "run/ckpt/");
  GcPolicy policy;
  policy.keep_last_k = 1;
  auto report = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy,
                          "s3-empty");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->demoted_to_bucket);
  EXPECT_EQ(report->retired_objects(), 0);
  EXPECT_GT(report->skipped_unspooled(), 0);
  EXPECT_EQ(SnapshotPrefix(fs, "run/ckpt/"), before);
}

TEST(TieredStore, ReplayIsByteIdenticalToPreDemotionOnBothEngines) {
  // The acceptance bar: a store demoted to keep_last_k=1 with a populated
  // bucket mirror replays green and byte-identical to the pre-GC replay,
  // on the simulated and threaded engines (the process engine's parity
  // run lives in process_executor_test.cc).
  MemFileSystem fs;
  const WorkloadProfile profile = TieredProfile();
  RecordWithMirror(&fs, profile);

  auto factory = MakeWorkloadFactory(profile, kProbeInner);
  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.init_mode = InitMode::kWeak;
  auto before = sim::ClusterReplay(factory, &fs, copts);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_TRUE(before->deferred.ok);
  EXPECT_EQ(before->bucket_faults, 0);

  GcPolicy policy;
  policy.keep_last_k = 1;
  auto gc = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy, "s3");
  ASSERT_TRUE(gc.ok());
  ASSERT_TRUE(gc->demoted_to_bucket);
  ASSERT_GT(gc->retired_objects(), 0);

  copts.bucket_prefix = "s3";
  copts.bucket_rehydrate = false;
  auto sim_after = sim::ClusterReplay(factory, &fs, copts);
  ASSERT_TRUE(sim_after.ok()) << sim_after.status().ToString();
  EXPECT_TRUE(sim_after->deferred.ok);
  EXPECT_GT(sim_after->bucket_faults, 0);
  EXPECT_EQ(sim_after->merged_logs.Serialize(),
            before->merged_logs.Serialize());

  exec::ReplayExecutorOptions xopts;
  xopts.run_prefix = "run";
  xopts.num_threads = 4;
  xopts.num_partitions = 4;
  xopts.init_mode = InitMode::kWeak;
  xopts.bucket_prefix = "s3";
  auto real_after = exec::ReplayExecutor(&fs, xopts).Run(factory);
  ASSERT_TRUE(real_after.ok()) << real_after.status().ToString();
  EXPECT_TRUE(real_after->deferred.ok);
  EXPECT_GT(real_after->bucket_faults, 0);
  EXPECT_EQ(real_after->merged_logs.Serialize(),
            before->merged_logs.Serialize());

  // The threaded engine ran with rehydration on: faulted objects are back
  // on the local shard, so a bucket-less replay works again.
  copts.bucket_prefix.clear();
  auto rehydrated = sim::ClusterReplay(factory, &fs, copts);
  ASSERT_TRUE(rehydrated.ok()) << rehydrated.status().ToString();
  EXPECT_TRUE(rehydrated->deferred.ok);
  EXPECT_EQ(rehydrated->merged_logs.Serialize(),
            before->merged_logs.Serialize());

  // Aggressive GC with the replay pointed at an empty bucket prefix still
  // fails cleanly, naming both probed tiers.
  MemFileSystem fs2;
  RecordWithMirror(&fs2, profile);
  auto gc2 = RetireRun(&fs2, "run/manifest.tsv", "run/ckpt", policy, "s3");
  ASSERT_TRUE(gc2.ok());
  sim::ClusterReplayOptions no_bucket;
  no_bucket.run_prefix = "run";
  no_bucket.cluster.num_machines = 1;
  no_bucket.init_mode = InitMode::kWeak;
  no_bucket.bucket_prefix = "nosuch-bucket";
  auto missing = sim::ClusterReplay(factory, &fs2, no_bucket);
  ASSERT_FALSE(missing.ok());
  EXPECT_TRUE(missing.status().IsNotFound())
      << missing.status().ToString();
  EXPECT_NE(missing.status().message().find("missing in both tiers"),
            std::string::npos)
      << missing.status().ToString();
}

TEST(TieredStore, BucketFaultInRacesConcurrentLocalDemotion) {
  // Readers fault demoted objects back in (rehydration writes under the
  // shard writer lock) while a GC thread demotes local copies of the same
  // store. Every read must return intact bytes; the worst race outcome is
  // a resurrected local copy, i.e. an orphan for the sweep.
  MemFileSystem fs;
  const WorkloadProfile profile = TieredProfile(/*epochs=*/10, /*shards=*/4);
  const RecordResult rec = RecordWithMirror(&fs, profile);
  ASSERT_GT(rec.manifest.records.size(), 6u);

  CheckpointStore store(&fs, "run/ckpt", rec.manifest.shard_count);
  store.AttachBucket("s3");
  Manifest manifest = rec.manifest;

  std::atomic<bool> stop{false};
  std::atomic<int64_t> read_failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&store, &rec, &stop, &read_failures] {
      while (!stop.load(std::memory_order_relaxed)) {
        for (const auto& r : rec.manifest.records) {
          auto got = store.Get(r.key);
          if (!got.ok()) read_failures.fetch_add(1);
        }
      }
    });
  }

  GcPolicy policy;
  policy.keep_last_k = 1;
  for (int round = 0; round < 8; ++round) {
    auto report =
        RetireCheckpoints(&store, &manifest, "run/manifest.tsv", policy);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report->demoted_to_bucket);
    EXPECT_EQ(report->failed_deletes(), 0);
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(read_failures.load(), 0);
  // Reads may have rehydrated demoted objects mid-demotion; the sweep
  // reclaims those resurrected orphans... which here are still referenced
  // by the (intact) manifest, so reconciliation deletes nothing.
  ReconcileReport sweep = ReconcileOrphans(&store, manifest);
  EXPECT_TRUE(sweep.ok());
  EXPECT_EQ(sweep.local_orphans(), 0);
  EXPECT_EQ(sweep.bucket_orphans(), 0);
}

TEST(TieredStore, BucketRetirementIsManifestFirstAndHonorsPins) {
  MemFileSystem fs;
  const WorkloadProfile profile = TieredProfile();
  const RecordResult rec = RecordWithMirror(&fs, profile);
  const size_t records_before = rec.manifest.records.size();
  ASSERT_GT(records_before, 4u);

  // Demote aggressively first — bucket GC must reclaim lingering local
  // copies too, so leave K(local) > K'(bucket) to create some.
  GcPolicy local;
  local.keep_last_k = 3;
  auto demo = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", local, "s3");
  ASSERT_TRUE(demo.ok());
  ASSERT_TRUE(demo->demoted_to_bucket);

  // Pin one old epoch-level epoch; retire the bucket down to K'=1.
  CheckpointStore store(&fs, "run/ckpt", rec.manifest.shard_count);
  store.AttachBucket("s3");
  Manifest manifest = rec.manifest;
  std::set<int64_t> epochs;
  for (const auto& r : manifest.records)
    if (r.epoch >= 0) epochs.insert(r.epoch);
  const int64_t pinned_epoch = *epochs.begin();
  BucketGcPolicy policy;
  policy.keep_last_k = 1;
  policy.pinned_epochs = {pinned_epoch};

  auto report =
      RetireBucketCheckpoints(&store, &manifest, "run/manifest.tsv",
                              policy);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->manifest_rewritten);
  EXPECT_FALSE(report->demoted_to_bucket);
  EXPECT_TRUE(report->ok());
  EXPECT_GT(report->retired_objects(), 0);
  EXPECT_LT(manifest.records.size(), records_before);

  // The persisted manifest matches the in-memory prune, every surviving
  // record is readable through the tiers, every retired record is gone
  // from both, and the pinned epoch survived.
  auto persisted_bytes = fs.ReadFile("run/manifest.tsv");
  ASSERT_TRUE(persisted_bytes.ok());
  auto persisted = Manifest::Deserialize(*persisted_bytes);
  ASSERT_TRUE(persisted.ok());
  ASSERT_EQ(persisted->records.size(), manifest.records.size());
  std::set<std::string> surviving;
  bool pinned_survived = false;
  for (const auto& r : persisted->records) {
    surviving.insert(r.key.ToString());
    EXPECT_TRUE(store.Exists(r.key)) << r.key.ToString();
    if (r.epoch == pinned_epoch) pinned_survived = true;
  }
  EXPECT_TRUE(pinned_survived);
  for (const auto& r : rec.manifest.records) {
    if (surviving.count(r.key.ToString())) continue;
    EXPECT_FALSE(fs.Exists(store.PathFor(r.key))) << r.key.ToString();
    EXPECT_FALSE(fs.Exists(store.BucketPathFor(r.key)))
        << r.key.ToString();
  }

  // Requires the bucket tier: a plain store is rejected.
  CheckpointStore no_bucket(&fs, "run/ckpt", rec.manifest.shard_count);
  Manifest m2 = *persisted;
  auto bad = RetireBucketCheckpoints(&no_bucket, &m2, "run/manifest.tsv",
                                     policy);
  EXPECT_FALSE(bad.ok());

  // A manifest-persist failure retires nothing from either tier.
  MemFileSystem base2;
  FaultInjectionFileSystem faulty(&base2);
  RecordWithMirror(&faulty, profile);
  const auto before_fail = SnapshotPrefix(base2, "");
  faulty.InjectWriteFailures(1, "manifest.tsv");
  BucketGcPolicy aggressive;
  aggressive.keep_last_k = 1;
  auto failed = RetireBucketRun(&faulty, "run/manifest.tsv", "run/ckpt",
                                "s3", aggressive);
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(SnapshotPrefix(base2, ""), before_fail);
}

TEST(TieredStore, ReconcileOrphansReclaimsBothTiers) {
  MemFileSystem fs;
  const WorkloadProfile profile = TieredProfile(/*epochs=*/10, /*shards=*/4);
  const RecordResult rec = RecordWithMirror(&fs, profile);

  CheckpointStore store(&fs, "run/ckpt", rec.manifest.shard_count);
  store.AttachBucket("s3");

  // Manufacture orphans the way real passes leak them: retire some epochs
  // from the bucket with every delete failing — the manifest prune lands,
  // all the objects stay behind as unreferenced bytes.
  FaultInjectionFileSystem faulty(&fs);
  CheckpointStore faulty_store(&faulty, "run/ckpt",
                               rec.manifest.shard_count);
  faulty_store.AttachBucket("s3");
  Manifest manifest = rec.manifest;
  faulty.InjectDeleteFailures(1 << 20);
  BucketGcPolicy policy;
  policy.keep_last_k = 2;
  auto leaked = RetireBucketCheckpoints(&faulty_store, &manifest,
                                        "run/manifest.tsv", policy);
  ASSERT_TRUE(leaked.ok()) << leaked.status().ToString();
  EXPECT_TRUE(leaked->manifest_rewritten);
  EXPECT_GT(leaked->failed_deletes(), 0);
  faulty.InjectDeleteFailures(0);

  const int64_t expected_local = [&] {
    int64_t n = 0;
    std::set<std::string> surviving;
    for (const auto& r : manifest.records)
      surviving.insert(r.key.ToString());
    for (const auto& r : rec.manifest.records) {
      if (surviving.count(r.key.ToString())) continue;
      if (fs.Exists(store.PathFor(r.key))) ++n;
    }
    return n;
  }();

  ReconcileReport sweep = ReconcileOrphans(&store, manifest);
  EXPECT_TRUE(sweep.ok());
  EXPECT_EQ(sweep.shards.size(), 4u);
  EXPECT_EQ(sweep.local_orphans(), expected_local);
  EXPECT_GT(sweep.bucket_orphans(), 0);
  EXPECT_GT(sweep.orphan_bytes(), 0u);

  // Post-sweep: both tiers hold exactly the referenced objects, and the
  // run still replays green from the pruned manifest.
  EXPECT_EQ(fs.ListPrefix("run/ckpt/").size() +
                fs.ListPrefix("s3/run/ckpt/").size(),
            manifest.records.size() * 2);
  for (const auto& r : manifest.records) {
    EXPECT_TRUE(fs.Exists(store.PathFor(r.key))) << r.key.ToString();
    EXPECT_TRUE(fs.Exists(store.BucketPathFor(r.key)))
        << r.key.ToString();
  }
  ReconcileReport idempotent = ReconcileOrphans(&store, manifest);
  EXPECT_EQ(idempotent.local_orphans(), 0);
  EXPECT_EQ(idempotent.bucket_orphans(), 0);

  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.init_mode = InitMode::kWeak;
  copts.bucket_prefix = "s3";
  auto replayed = sim::ClusterReplay(MakeWorkloadFactory(profile,
                                                         kProbeInner),
                                     &fs, copts);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_TRUE(replayed->deferred.ok);
}

}  // namespace
}  // namespace flor
