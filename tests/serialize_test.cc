// Unit + property tests: coding primitives, compression codecs, frames.

#include <gtest/gtest.h>

#include "common/random.h"
#include "serialize/coding.h"
#include "serialize/compress.h"
#include "serialize/frame.h"
#include "test_util.h"

namespace flor {
namespace {

TEST(Coding, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeef);
  PutFixed64(&buf, 0x0123456789abcdefULL);
  Decoder dec(buf);
  uint32_t a;
  uint64_t b;
  ASSERT_TRUE(dec.GetFixed32(&a).ok());
  ASSERT_TRUE(dec.GetFixed64(&b).ok());
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, 0x0123456789abcdefULL);
  EXPECT_TRUE(dec.done());
}

TEST(Coding, VarintRoundTripBoundaries) {
  std::string buf;
  const uint64_t values[] = {0, 1, 127, 128, 16383, 16384,
                             UINT32_MAX, UINT64_MAX};
  for (uint64_t v : values) PutVarint64(&buf, v);
  Decoder dec(buf);
  for (uint64_t v : values) {
    uint64_t out;
    ASSERT_TRUE(dec.GetVarint64(&out).ok());
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(dec.done());
}

TEST(Coding, SignedVarintZigzag) {
  std::string buf;
  const int64_t values[] = {0, -1, 1, -64, 63, INT64_MIN, INT64_MAX};
  for (int64_t v : values) PutSignedVarint64(&buf, v);
  Decoder dec(buf);
  for (int64_t v : values) {
    int64_t out;
    ASSERT_TRUE(dec.GetSignedVarint64(&out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(Coding, FloatsBitExact) {
  std::string buf;
  PutFloat(&buf, 3.14159f);
  PutDouble(&buf, -2.718281828459045);
  Decoder dec(buf);
  float f;
  double d;
  ASSERT_TRUE(dec.GetFloat(&f).ok());
  ASSERT_TRUE(dec.GetDouble(&d).ok());
  EXPECT_EQ(f, 3.14159f);
  EXPECT_EQ(d, -2.718281828459045);
}

TEST(Coding, LengthPrefixed) {
  std::string buf;
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string("bin\0ary", 7));
  Decoder dec(buf);
  std::string a, b;
  ASSERT_TRUE(dec.GetLengthPrefixed(&a).ok());
  ASSERT_TRUE(dec.GetLengthPrefixed(&b).ok());
  EXPECT_EQ(a, "");
  EXPECT_EQ(b, std::string("bin\0ary", 7));
}

TEST(Coding, UnderflowDetected) {
  std::string buf;
  PutFixed32(&buf, 7);
  Decoder dec(buf);
  uint64_t v64;
  EXPECT_TRUE(dec.GetFixed64(&v64).IsCorruption());
  uint32_t v32;
  EXPECT_TRUE(dec.GetFixed32(&v32).ok());  // cursor unchanged on failure
}

TEST(Coding, TruncatedVarintDetected) {
  std::string buf;
  buf.push_back(static_cast<char>(0x80));  // continuation with no next byte
  Decoder dec(buf);
  uint64_t v;
  EXPECT_TRUE(dec.GetVarint64(&v).IsCorruption());
}

TEST(Coding, TruncatedStringDetected) {
  std::string buf;
  PutVarint64(&buf, 100);  // claims 100 bytes, provides none
  Decoder dec(buf);
  std::string s;
  EXPECT_TRUE(dec.GetLengthPrefixed(&s).IsCorruption());
}

TEST(Coding, RandomRoundTripProperty) {
  Rng rng = testutil::SeededRng(1);
  for (int trial = 0; trial < 2000; ++trial) {
    // Bias the magnitude so every varint width (1..10 bytes) gets coverage.
    const int bits = 1 + static_cast<int>(rng.Uniform(64));
    const uint64_t v64 = rng.Next() >> (64 - bits);
    const uint32_t v32 = static_cast<uint32_t>(v64);
    const int64_t s64 = static_cast<int64_t>(rng.Next());
    std::string buf;
    PutVarint64(&buf, v64);
    PutVarint32(&buf, v32);
    PutSignedVarint64(&buf, s64);
    PutFixed32(&buf, v32);
    PutFixed64(&buf, v64);
    Decoder dec(buf);
    uint64_t got64 = 0, gotf64 = 0;
    uint32_t got32 = 0, gotf32 = 0;
    int64_t gots64 = 0;
    ASSERT_TRUE(dec.GetVarint64(&got64).ok());
    ASSERT_TRUE(dec.GetVarint32(&got32).ok());
    ASSERT_TRUE(dec.GetSignedVarint64(&gots64).ok());
    ASSERT_TRUE(dec.GetFixed32(&gotf32).ok());
    ASSERT_TRUE(dec.GetFixed64(&gotf64).ok());
    EXPECT_EQ(got64, v64);
    EXPECT_EQ(got32, v32);
    EXPECT_EQ(gots64, s64);
    EXPECT_EQ(gotf32, v32);
    EXPECT_EQ(gotf64, v64);
    EXPECT_TRUE(dec.done());
  }
}

TEST(Coding, EveryStrictPrefixFailsToFullyDecode) {
  // One buffer holding every primitive; decoding any strict prefix must
  // fail at some field (no crash, no bogus full parse).
  std::string buf;
  PutVarint64(&buf, 0x8f00ff00ff00ffULL);
  PutVarint32(&buf, 0xdeadbeefu);
  PutSignedVarint64(&buf, -123456789);
  PutFixed32(&buf, 0x01020304u);
  PutFixed64(&buf, 0x05060708090a0b0cULL);
  PutFloat(&buf, 1.5f);
  PutDouble(&buf, -2.5);
  PutLengthPrefixed(&buf, "payload");
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Decoder dec(buf.data(), cut);
    uint64_t v64, f64;
    uint32_t v32, f32;
    int64_t s64;
    float f;
    double d;
    std::string s;
    const bool all_ok =
        dec.GetVarint64(&v64).ok() && dec.GetVarint32(&v32).ok() &&
        dec.GetSignedVarint64(&s64).ok() && dec.GetFixed32(&f32).ok() &&
        dec.GetFixed64(&f64).ok() && dec.GetFloat(&f).ok() &&
        dec.GetDouble(&d).ok() && dec.GetLengthPrefixed(&s).ok();
    EXPECT_FALSE(all_ok) << "cut=" << cut;
  }
}

std::string RandomBytes(size_t n, uint64_t salt) {
  Rng rng = testutil::SeededRng(salt);
  std::string out(n, 0);
  for (auto& c : out) c = static_cast<char>(rng.Uniform(256));
  return out;
}

std::string CompressibleBytes(size_t n, uint64_t salt) {
  Rng rng = testutil::SeededRng(salt);
  std::string out;
  while (out.size() < n) {
    const char c = static_cast<char>(rng.Uniform(4));
    out.append(16 + rng.Uniform(64), c);
  }
  out.resize(n);
  return out;
}

class CompressRoundTrip
    : public ::testing::TestWithParam<std::tuple<Codec, size_t, bool>> {};

TEST_P(CompressRoundTrip, Lossless) {
  auto [codec, size, compressible] = GetParam();
  const std::string input = compressible ? CompressibleBytes(size, size)
                                         : RandomBytes(size, size);
  std::string packed = Compress(input, codec);
  auto out = Decompress(packed);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(*out, input);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecsAndSizes, CompressRoundTrip,
    ::testing::Combine(::testing::Values(Codec::kNone, Codec::kRle,
                                         Codec::kLz),
                       ::testing::Values(size_t{0}, size_t{1}, size_t{7},
                                         size_t{255}, size_t{4096},
                                         size_t{1} << 17),
                       ::testing::Bool()));

TEST(Compress, CompressibleShrinks) {
  const std::string input = CompressibleBytes(1 << 16, 3);
  EXPECT_LT(Compress(input, Codec::kRle).size(), input.size() / 2);
  EXPECT_LT(Compress(input, Codec::kLz).size(), input.size() / 2);
}

TEST(Compress, IncompressibleFallsBackToRaw) {
  const std::string input = RandomBytes(1 << 14, 5);
  std::string packed = Compress(input, Codec::kLz);
  auto codec = PeekCodec(packed);
  ASSERT_TRUE(codec.ok());
  EXPECT_EQ(*codec, Codec::kNone);  // stored raw, never inflated
  EXPECT_LE(packed.size(), input.size() + 16);
}

TEST(Compress, MalformedInputRejected) {
  EXPECT_TRUE(Decompress("").status().IsCorruption());
  std::string bogus;
  bogus.push_back(9);  // unknown codec byte
  EXPECT_TRUE(Decompress(bogus).status().IsCorruption());
}

TEST(Compress, SizeMismatchDetected) {
  std::string packed = Compress("hello world, hello world", Codec::kRle);
  packed.pop_back();  // truncate body
  EXPECT_FALSE(Decompress(packed).ok());
}

TEST(Frame, RoundTripMultiple) {
  std::string file;
  AppendFrame(&file, "first");
  AppendFrame(&file, "");
  AppendFrame(&file, RandomBytes(1000, 1));
  auto frames = ReadFrames(file);
  ASSERT_TRUE(frames.ok());
  ASSERT_EQ(frames->size(), 3u);
  EXPECT_EQ((*frames)[0], "first");
  EXPECT_EQ((*frames)[1], "");
}

TEST(Frame, EveryByteCorruptionDetected) {
  std::string file;
  AppendFrame(&file, "checkpoint payload bytes");
  for (size_t i = 0; i < file.size(); ++i) {
    std::string corrupted = file;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x01);
    auto frames = ReadFrames(corrupted);
    EXPECT_FALSE(frames.ok()) << "corruption at byte " << i << " undetected";
  }
}

TEST(Frame, ReaderReportsEofAsNotFound) {
  std::string file;
  AppendFrame(&file, "x");
  FrameReader reader(file);
  std::string payload;
  ASSERT_TRUE(reader.Next(&payload).ok());
  EXPECT_TRUE(reader.Next(&payload).IsNotFound());
}

}  // namespace
}  // namespace flor
