// Unit tests: Status/Result, Rng, strings, crc32, logging plumbing.

#include <gtest/gtest.h>

#include <set>

#include "common/crc32.h"
#include "common/random.h"
#include "common/status.h"
#include "common/strings.h"
#include "test_util.h"

namespace flor {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnavailable); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(Status, IsValidStatusCodeMatchesEnumeratorsExactly) {
  // Every named code is valid; IsValidStatusCode and StatusCodeName agree
  // over the whole 0..255 underlying range, so integer-transported codes
  // (worker error files) decode any enumerator — including ones added
  // after the numerically-last of today — and nothing else.
  int valid = 0;
  for (int c = 0; c <= 255; ++c) {
    const bool named =
        std::string(StatusCodeName(static_cast<StatusCode>(c))) != "Unknown";
    EXPECT_EQ(IsValidStatusCode(c), named) << "code " << c;
    valid += IsValidStatusCode(c) ? 1 : 0;
  }
  EXPECT_EQ(valid, static_cast<int>(StatusCode::kUnavailable) + 1);
  EXPECT_TRUE(IsValidStatusCode(static_cast<int>(StatusCode::kUnavailable)));
  EXPECT_FALSE(IsValidStatusCode(-1));
  EXPECT_FALSE(
      IsValidStatusCode(static_cast<int>(StatusCode::kUnavailable) + 1));
  EXPECT_FALSE(IsValidStatusCode(256));
  static_assert(IsValidStatusCode(static_cast<int>(StatusCode::kOk)),
                "constexpr-usable");
}

TEST(Status, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::IOError("x"), Status::IOError("x"));
  EXPECT_FALSE(Status::IOError("x") == Status::IOError("y"));
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = Status::Corruption("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

Result<int> Half(int v) {
  if (v % 2) return Status::InvalidArgument("odd");
  return v / 2;
}

Result<int> Quarter(int v) {
  FLOR_ASSIGN_OR_RETURN(int h, Half(v));
  FLOR_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(Result, AssignOrReturnMacro) {
  auto r = Quarter(8);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3, odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(Rng, Deterministic) {
  Rng a = testutil::SeededRng(123), b = testutil::SeededRng(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a = testutil::SeededRng(1), b = testutil::SeededRng(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.Next() == b.Next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng = testutil::SeededRng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng = testutil::SeededRng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng = testutil::SeededRng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng = testutil::SeededRng(13);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, StateRoundTrip) {
  Rng a = testutil::SeededRng(17);
  a.Next();
  a.Next();
  uint64_t st[4];
  a.GetState(st);
  Rng b = testutil::SeededRng(0);
  b.SetState(st);
  EXPECT_TRUE(a == b);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, BernoulliExtremes) {
  Rng rng = testutil::SeededRng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Mix64, Distinct) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(Mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Strings, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

TEST(Strings, SplitJoin) {
  auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrJoin(parts, ","), "a,b,,c");
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("run/ckpt/x", "run/"));
  EXPECT_FALSE(StartsWith("ru", "run"));
  EXPECT_TRUE(EndsWith("file.ckpt", ".ckpt"));
  EXPECT_FALSE(EndsWith("ckpt", ".ckpt"));
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(51ull * 1024 * 1024), "51 MB");
  EXPECT_EQ(HumanBytes(14ull * 1024 * 1024 * 1024), "14.0 GB");
}

TEST(Strings, HumanSeconds) {
  EXPECT_EQ(HumanSeconds(0.25), "250 ms");
  EXPECT_EQ(HumanSeconds(12.5), "12.5 s");
  EXPECT_EQ(HumanSeconds(90), "1.5 min");
  EXPECT_EQ(HumanSeconds(3600), "1.00 h");
}

TEST(Strings, HumanDollars) {
  EXPECT_EQ(HumanDollars(0.33), "$ 0.33");
  EXPECT_EQ(HumanDollars(0.001), "$ 0.001");
}

TEST(Crc32, KnownVector) {
  // CRC32C("123456789") = 0xE3069283 (Castagnoli reference value).
  const char* data = "123456789";
  EXPECT_EQ(Crc32c(data, 9), 0xE3069283u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(Crc32c("", 0), 0u); }

TEST(Crc32, Incremental) {
  const std::string s = "hello, checkpoint world";
  uint32_t whole = Crc32c(s.data(), s.size());
  // CRC is order-sensitive but our helper restarts; verify sensitivity.
  std::string swapped = s;
  std::swap(swapped[0], swapped[1]);
  EXPECT_NE(Crc32c(swapped.data(), swapped.size()), whole);
}

TEST(Crc32, Rfc3720GoldenVectors) {
  // iSCSI CRC32C reference vectors (RFC 3720 §B.4).
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  std::string ascending(32, '\0');
  std::string descending(32, '\0');
  for (int i = 0; i < 32; ++i) {
    ascending[i] = static_cast<char>(i);
    descending[i] = static_cast<char>(31 - i);
  }
  EXPECT_EQ(Crc32c(ascending.data(), ascending.size()), 0x46DD794Eu);
  EXPECT_EQ(Crc32c(descending.data(), descending.size()), 0x113FDB5Cu);
}

TEST(Crc32, ExtendMatchesOneShotAtEverySplit) {
  Rng rng = testutil::SeededRng(31);
  std::string s(257, '\0');
  for (auto& c : s) c = static_cast<char>(rng.Uniform(256));
  const uint32_t whole = Crc32c(s.data(), s.size());
  for (size_t split = 0; split <= s.size(); ++split) {
    uint32_t crc = Crc32c(s.data(), split);
    crc = Crc32c(crc, s.data() + split, s.size() - split);
    EXPECT_EQ(crc, whole) << "split=" << split;
  }
}

TEST(Crc32, SliceBy1OracleAgreesOnGoldenVectors) {
  using internal::Crc32cSliceBy1;
  const char* digits = "123456789";
  EXPECT_EQ(Crc32cSliceBy1(0, digits, 9), 0xE3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32cSliceBy1(0, zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32, SliceBy8MatchesSliceBy1Randomized) {
  // Every length 0..600 (covers head-alignment, 8-byte body, and tail
  // combinations) plus random unaligned offsets into the buffer. Exercises
  // the explicit software fast path, independent of dispatch.
  Rng rng = testutil::SeededRng(32);
  std::string buf(608, '\0');
  for (auto& c : buf) c = static_cast<char>(rng.Uniform(256));
  for (size_t len = 0; len <= 600; ++len) {
    const size_t off = rng.Uniform(8);
    const uint32_t seed32 = static_cast<uint32_t>(rng.Next());
    EXPECT_EQ(internal::Crc32cSliceBy8(seed32, buf.data() + off, len),
              internal::Crc32cSliceBy1(seed32, buf.data() + off, len))
        << "len=" << len << " off=" << off;
  }
}

TEST(Crc32, DispatchedImplMatchesOracleRandomized) {
  // Whatever Crc32c dispatched to on this host (hardware instruction or
  // slice-by-8 fallback) must agree with the byte-at-a-time oracle.
  Rng rng = testutil::SeededRng(33);
  std::string buf(608, '\0');
  for (auto& c : buf) c = static_cast<char>(rng.Uniform(256));
  for (size_t len = 0; len <= 600; ++len) {
    const size_t off = rng.Uniform(8);
    const uint32_t seed32 = static_cast<uint32_t>(rng.Next());
    EXPECT_EQ(Crc32c(seed32, buf.data() + off, len),
              internal::Crc32cSliceBy1(seed32, buf.data() + off, len))
        << "len=" << len << " off=" << off
        << " impl=" << internal::Crc32cImplName();
  }
}

TEST(Crc32, HardwarePathMatchesOracleWhenAvailable) {
  if (!internal::Crc32cHardwareAvailable()) {
    GTEST_SKIP() << "no CRC32C instruction on this host; "
                 << "dispatch falls back to " << internal::Crc32cImplName();
  }
  // Golden vectors through the instruction path itself.
  const char* digits = "123456789";
  EXPECT_EQ(internal::Crc32cHardware(0, digits, 9), 0xE3069283u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(internal::Crc32cHardware(0, zeros.data(), zeros.size()),
            0x8A9136AAu);
  // Randomized cross-check against the oracle, unaligned heads included.
  Rng rng = testutil::SeededRng(34);
  std::string buf(300, '\0');
  for (auto& c : buf) c = static_cast<char>(rng.Uniform(256));
  for (size_t len = 0; len <= 256; ++len) {
    const size_t off = rng.Uniform(8);
    const uint32_t seed32 = static_cast<uint32_t>(rng.Next());
    EXPECT_EQ(internal::Crc32cHardware(seed32, buf.data() + off, len),
              internal::Crc32cSliceBy1(seed32, buf.data() + off, len))
        << "len=" << len << " off=" << off;
  }
}

TEST(Crc32, ImplNameIsKnown) {
  const std::string name = internal::Crc32cImplName();
  EXPECT_TRUE(name == "sse4.2" || name == "armv8-crc" ||
              name == "slice-by-8")
      << name;
  // Dispatch and availability must agree.
  EXPECT_EQ(name != "slice-by-8", internal::Crc32cHardwareAvailable());
}

}  // namespace
}  // namespace flor
