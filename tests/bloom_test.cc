// Bloom-filtered checkpoint existence checks (common/bloom.h,
// checkpoint/store.h): the filter contract (no false negatives, FPR near
// target), byte-for-byte answer identity between a bloom-enabled store and
// its filterless twin across randomized Put/Delete/rebuild histories, the
// manifest-seeded recovery path, counter accounting, and replay-level
// equivalence with the filter on. The concurrent writer/reader case runs
// under the `tsan` ctest label (FLOR_TSAN=1 ./scripts/check.sh).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "checkpoint/store.h"
#include "common/bloom.h"
#include "common/strings.h"
#include "env/filesystem.h"
#include "flor/record.h"
#include "flor/replay.h"
#include "test_util.h"
#include "workloads/programs.h"

namespace flor {
namespace {

using workloads::kProbeNone;
using workloads::MakeWorkloadFactory;
using workloads::WorkloadProfile;

CheckpointKey Key(int32_t loop_id, int64_t epoch) {
  CheckpointKey k;
  k.loop_id = loop_id;
  k.ctx = StrCat("e=", epoch);
  return k;
}

// --- Filter-level contract -------------------------------------------------

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter filter(4096, 0.01);
  Rng rng = testutil::SeededRng(11);
  std::vector<std::string> keys;
  keys.reserve(4096);
  for (int i = 0; i < 4096; ++i)
    keys.push_back(StrCat("L", rng.Uniform(1 << 20), "@e=", i));
  for (const auto& k : keys) filter.Add(k);
  for (const auto& k : keys) EXPECT_TRUE(filter.MayContain(k)) << k;
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  constexpr int kKeys = 4096;
  constexpr double kTarget = 0.01;
  BloomFilter filter(kKeys, kTarget);
  for (int i = 0; i < kKeys; ++i) filter.Add(StrCat("present/", i));

  int false_positives = 0;
  constexpr int kProbes = 20000;
  for (int i = 0; i < kProbes; ++i)
    if (filter.MayContain(StrCat("absent/", i))) ++false_positives;
  const double fpr = static_cast<double>(false_positives) / kProbes;
  // The sizing math targets kTarget at exactly kKeys insertions; allow 2x
  // for the rounding of m and k plus sampling noise over 20k probes.
  EXPECT_LE(fpr, 2 * kTarget) << false_positives << " false positives";
  // A filter that never fires positive on absents would be suspicious too
  // (the probe arm is then likely broken); expect at least one at 20k.
  EXPECT_GT(filter.bit_count(), 0u);
  EXPECT_GE(filter.hash_count(), 1);
}

TEST(BloomFilter, DegenerateSizingStillWorks) {
  // 0 expected keys and out-of-range targets must clamp, not crash, and
  // must preserve no-false-negatives.
  for (double p : {1e-12, 0.5, 2.0, -1.0}) {
    BloomFilter filter(0, p);
    filter.Add("k");
    EXPECT_TRUE(filter.MayContain("k")) << "p=" << p;
  }
}

// --- Store-level answer identity ------------------------------------------

/// Applies an identical randomized Put/Delete history to a bloom-enabled
/// store and a filterless twin, then asserts both answer Exists and
/// GetBytes identically (status code AND message bytes) over present,
/// deleted, and never-written keys.
void RunTwinStoreHistory(bool with_bucket) {
  constexpr int kShards = 4;
  MemFileSystem fs_bloom;
  MemFileSystem fs_plain;
  CheckpointStore bloom_store(&fs_bloom, "run/ckpt", kShards);
  CheckpointStore plain_store(&fs_plain, "run/ckpt", kShards);
  if (with_bucket) {
    bloom_store.AttachBucket("s3/run/ckpt", /*rehydrate_on_fault=*/false);
    plain_store.AttachBucket("s3/run/ckpt", /*rehydrate_on_fault=*/false);
  }
  BloomOptions bopts;
  bopts.expected_keys_per_shard = 64;
  bloom_store.EnableBloom(bopts);

  Rng rng = testutil::SeededRng(23);
  std::set<int64_t> live;
  std::set<int64_t> deleted;
  for (int step = 0; step < 300; ++step) {
    if (!live.empty() && rng.Uniform(4) == 0) {
      // Delete a random live key from both stores.
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Uniform(
                           static_cast<uint32_t>(live.size()))));
      const CheckpointKey k = Key(2, *it);
      ASSERT_TRUE(bloom_store.DeleteObject(k).ok());
      ASSERT_TRUE(plain_store.DeleteObject(k).ok());
      deleted.insert(*it);
      live.erase(it);
    } else {
      const int64_t epoch = rng.Uniform(512);
      const CheckpointKey k = Key(2, epoch);
      const std::string bytes = StrCat("payload-", epoch, "-", step);
      ASSERT_TRUE(bloom_store.PutBytes(k, bytes).ok());
      ASSERT_TRUE(plain_store.PutBytes(k, bytes).ok());
      live.insert(epoch);
      deleted.erase(epoch);
    }
  }

  // Probe every epoch in a range covering present, deleted, and
  // never-written keys.
  for (int64_t epoch = 0; epoch < 560; ++epoch) {
    const CheckpointKey k = Key(2, epoch);
    EXPECT_EQ(bloom_store.Exists(k), plain_store.Exists(k))
        << "epoch " << epoch;
    auto with = bloom_store.GetBytes(k);
    auto without = plain_store.GetBytes(k);
    ASSERT_EQ(with.ok(), without.ok()) << "epoch " << epoch;
    if (with.ok()) {
      EXPECT_EQ(*with, *without) << "epoch " << epoch;
    } else {
      EXPECT_EQ(with.status().ToString(), without.status().ToString())
          << "epoch " << epoch;
    }
  }
  // No false negatives: every live key exists through the filter.
  for (int64_t epoch : live) EXPECT_TRUE(bloom_store.Exists(Key(2, epoch)));
  // The filter actually worked: some never-written probes were answered
  // without touching the store (560-epoch sweep over <= ~300 distinct
  // keys guarantees plenty of definite misses at FPR 0.01).
  EXPECT_GT(bloom_store.tier_stats().bloom_skipped_probes, 0);
  EXPECT_EQ(plain_store.tier_stats().bloom_skipped_probes, 0);
}

TEST(BloomStore, AnswersIdenticalToFilterlessTwin) {
  RunTwinStoreHistory(/*with_bucket=*/false);
}

TEST(BloomStore, AnswersIdenticalToFilterlessTwinWithBucketTier) {
  RunTwinStoreHistory(/*with_bucket=*/true);
}

TEST(BloomStore, DeletedKeysDegradeToFalsePositivesNeverFalseNegatives) {
  MemFileSystem fs;
  CheckpointStore store(&fs, "run/ckpt", 2);
  store.EnableBloom();
  for (int64_t e = 0; e < 32; ++e)
    ASSERT_TRUE(store.PutBytes(Key(2, e), "x").ok());
  for (int64_t e = 0; e < 16; ++e)
    ASSERT_TRUE(store.DeleteObject(Key(2, e)).ok());

  // Deleted keys: bits stay set, so the probe reaches the store, misses,
  // and is counted as a false positive — the answer itself stays correct.
  for (int64_t e = 0; e < 16; ++e) EXPECT_FALSE(store.Exists(Key(2, e)));
  EXPECT_EQ(store.tier_stats().bloom_false_positives, 16);
  EXPECT_EQ(store.tier_stats().bloom_skipped_probes, 0);
  // Remaining keys: never a false negative.
  for (int64_t e = 16; e < 32; ++e) EXPECT_TRUE(store.Exists(Key(2, e)));
}

TEST(BloomStore, SeedFromManifestServesExistingRun) {
  // A store opened over a finished run has an empty in-memory filter; the
  // manifest seeds it. Unseeded, the filter would wrongly rule every
  // recorded key absent — this is the recovery-path contract.
  MemFileSystem fs;
  Manifest manifest;
  manifest.shard_count = 4;
  {
    CheckpointStore writer(&fs, "run/ckpt", 4);
    for (int64_t e = 0; e < 24; ++e) {
      const CheckpointKey k = Key(2, e);
      ASSERT_TRUE(writer.PutBytes(k, StrCat("ckpt-", e)).ok());
      CheckpointRecord rec;
      rec.key = k;
      rec.epoch = e;
      rec.shard = writer.ShardOf(k);
      manifest.records.push_back(rec);
    }
  }

  CheckpointStore reader(&fs, "run/ckpt", 4);
  BloomOptions bopts;
  bopts.expected_keys_per_shard = 16;
  reader.EnableBloom(bopts);
  reader.SeedBloomFromManifest(manifest);
  for (const auto& rec : manifest.records) {
    EXPECT_TRUE(reader.Exists(rec.key)) << rec.key.ToString();
    auto bytes = reader.GetBytes(rec.key);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(*bytes, StrCat("ckpt-", rec.epoch));
  }
  // Absent keys are mostly short-circuited without a filesystem probe.
  int64_t skipped_before = reader.tier_stats().bloom_skipped_probes;
  for (int64_t e = 1000; e < 1100; ++e) EXPECT_FALSE(reader.Exists(Key(2, e)));
  const int64_t skipped =
      reader.tier_stats().bloom_skipped_probes - skipped_before;
  EXPECT_GE(skipped, 90) << "filter short-circuited too few absent probes";
  EXPECT_EQ(skipped + reader.tier_stats().bloom_false_positives, 100);
}

// --- Replay-level equivalence ----------------------------------------------

WorkloadProfile BloomProfile() {
  WorkloadProfile p;
  p.name = "BloomT";
  p.epochs = 6;
  p.sim_epoch_seconds = 10;
  p.sim_outer_seconds = 1;
  p.sim_preamble_seconds = 2;
  p.sim_ckpt_raw_bytes = 1 << 20;
  p.ckpt_shards = 4;
  p.task_kind = data::Task::kVision;
  p.real_samples = 32;
  p.real_batch = 8;
  p.real_feature_dim = 12;
  p.real_classes = 3;
  p.real_hidden = 12;
  p.seed = testutil::TestSeed(59);
  return p;
}

TEST(BloomReplay, FilteredReplayMatchesFilterlessByteForByte) {
  MemFileSystem fs;
  {
    Env env(std::make_unique<SimClock>(), &fs);
    auto instance = MakeWorkloadFactory(BloomProfile(), kProbeNone)();
    ASSERT_TRUE(instance.ok());
    RecordOptions opts =
        workloads::DefaultRecordOptions(BloomProfile(), "run");
    RecordSession session(&env, opts);
    exec::Frame frame;
    auto rec = session.Run(instance->program.get(), &frame);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  }

  auto replay = [&fs](bool bloom) {
    Env env(std::make_unique<SimClock>(), &fs);
    auto instance = MakeWorkloadFactory(BloomProfile(), kProbeNone)();
    EXPECT_TRUE(instance.ok());
    ReplayOptions ropts;
    ropts.run_prefix = "run";
    ropts.bloom_filter = bloom;
    ReplaySession session(&env, ropts);
    exec::Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(result).value();
  };

  ReplayResult plain = replay(false);
  ReplayResult filtered = replay(true);
  EXPECT_EQ(filtered.logs.Serialize(), plain.logs.Serialize());
  EXPECT_EQ(filtered.runtime_seconds, plain.runtime_seconds);
  EXPECT_EQ(filtered.skipblocks.skipped, plain.skipblocks.skipped);
  EXPECT_TRUE(filtered.deferred.ok);
  EXPECT_EQ(plain.bloom_skipped_probes, 0);
  EXPECT_GE(filtered.bloom_skipped_probes, 0);
}

// --- Concurrency (tsan label) ----------------------------------------------

TEST(BloomStore, ConcurrentWriterAndReadersAreRaceFree) {
  // One writer thread Put()ing fresh keys while reader threads hammer
  // Exists/GetBytes over the same key range: the relaxed-atomic filter
  // bits and the lock-free read path must be ThreadSanitizer-clean, and a
  // reader must never see a false negative for a key whose Put completed
  // before the reader's probe (checked post-join for every key).
  constexpr int kKeys = 512;
  constexpr int kReaders = 3;
  MemFileSystem fs;
  CheckpointStore store(&fs, "run/ckpt", 4);
  BloomOptions bopts;
  bopts.expected_keys_per_shard = 256;
  store.EnableBloom(bopts);

  std::atomic<int64_t> written{0};
  std::thread writer([&] {
    for (int64_t e = 0; e < kKeys; ++e) {
      ASSERT_TRUE(store.PutBytes(Key(2, e), StrCat("v", e)).ok());
      written.store(e + 1, std::memory_order_release);
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng = testutil::SeededRng(100 + static_cast<uint64_t>(r));
      for (int i = 0; i < 2000; ++i) {
        const int64_t e = rng.Uniform(kKeys + 64);  // includes absent keys
        const int64_t floor = written.load(std::memory_order_acquire);
        const bool exists = store.Exists(Key(2, e));
        // A key written before we sampled `floor` must be visible.
        if (e < floor) {
          EXPECT_TRUE(exists) << "false negative at e=" << e;
        }
        if (exists) {
          auto bytes = store.GetBytes(Key(2, e));
          if (bytes.ok()) {
            EXPECT_EQ(*bytes, StrCat("v", e));
          }
        }
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();
  for (int64_t e = 0; e < kKeys; ++e)
    EXPECT_TRUE(store.Exists(Key(2, e))) << e;
}

}  // namespace
}  // namespace flor
