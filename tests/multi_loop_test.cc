// Structural generality tests: programs with several skippable loops per
// epoch, deeper loop nesting, and record/replay on a real (posix)
// filesystem.

#include <gtest/gtest.h>

#include "common/strings.h"
#include "flor/record.h"
#include "flor/replay.h"
#include "ir/builder.h"
#include "sim/parallel_replay.h"
#include "test_util.h"

namespace flor {
namespace {

using exec::Frame;

/// A script whose main loop contains TWO instrumented loops — a training
/// loop and a validation loop — each mutating its own accumulator. This
/// exercises the partition-boundary intersection across skippable loops
/// (ReplaySession::BoundaryEpochs).
Result<ProgramInstance> TwoLoopProgram(bool probe_valid) {
  // All state lives in frame variables, so the declared changesets are the
  // whole truth (contrast property_test.cc's HiddenSideEffectProgram).
  ir::ProgramBuilder b;
  b.Assign({"t"}, {"0"}, [](Frame* f) {
    f->Set("t", ir::Value::Float(0));
    return Status::OK();
  });
  b.Assign({"v"}, {"0"}, [](Frame* f) {
    f->Set("v", ir::Value::Float(0));
    return Status::OK();
  });
  b.BeginLoop("e", 6);
  {
    b.BeginLoop("i", 3);  // training loop (L2)
    {
      b.CallAssign({"t"}, "train_step", {"t", "e", "i"}, [](Frame* f) {
         const double t =
             f->At("t").AsFloat() + 1 + f->At("e").AsInt() * 0.1;
         f->Set("t", ir::Value::Float(t));
         return Status::OK();
       }).Cost(5.0);
    }
    b.EndLoop();
    b.BeginLoop("j", 2);  // validation loop (L3)
    {
      b.CallAssign({"v"}, "valid_step", {"v", "t"}, [](Frame* f) {
         const double v =
             f->At("v").AsFloat() + f->At("t").AsFloat() * 0.01;
         f->Set("v", ir::Value::Float(v));
         return Status::OK();
       }).Cost(1.0);
      if (probe_valid) {
        b.Log("v_probe", [](Frame* f) {
          return StrFormat("%.6f", f->At("v").AsFloat());
        });
      }
    }
    b.EndLoop();
    b.Log("t", [](Frame* f) {
      return StrFormat("%.6f", f->At("t").AsFloat());
    });
    b.Log("v", [](Frame* f) {
      return StrFormat("%.6f", f->At("v").AsFloat());
    });
  }
  b.EndLoop();
  ProgramInstance out;
  out.program = b.Build();
  return out;
}

TEST(MultiLoop, BothLoopsInstrumentedAndCheckpointed) {
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  auto instance = TwoLoopProgram(false);
  ASSERT_TRUE(instance.ok());
  RecordOptions opts;
  opts.run_prefix = "run";
  RecordSession session(&env, opts);
  Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->instrument.loops_instrumented, 2);
  // 6 epochs x 2 loops.
  EXPECT_EQ(result->manifest.records.size(), 12u);
  EXPECT_EQ(result->manifest.EpochsWithCheckpoint(2).size(), 6u);
  EXPECT_EQ(result->manifest.EpochsWithCheckpoint(3).size(), 6u);
}

TEST(MultiLoop, ProbingOneLoopSkipsTheOther) {
  MemFileSystem fs;
  {
    Env env = testutil::MakeSimEnv(&fs);
    auto instance = TwoLoopProgram(false);
    ASSERT_TRUE(instance.ok());
    RecordOptions opts;
    opts.run_prefix = "run";
    RecordSession session(&env, opts);
    Frame frame;
    ASSERT_TRUE(session.Run(instance->program.get(), &frame).ok());
  }
  Env env = testutil::MakeSimEnv(&fs);
  auto instance = TwoLoopProgram(true);  // probe only the validation loop
  ASSERT_TRUE(instance.ok());
  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ReplaySession session(&env, ropts);
  Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Training loops all skipped (6), validation loops all executed (6).
  EXPECT_EQ(result->skipblocks.skipped, 6);
  EXPECT_EQ(result->skipblocks.executed, 6);
  EXPECT_EQ(result->probe_entries.size(), 6u * 2u);
  EXPECT_TRUE(result->deferred.ok)
      << (result->deferred.anomalies.empty()
              ? ""
              : result->deferred.anomalies[0]);
}

TEST(MultiLoop, ParallelReplayIntersectsBoundaries) {
  MemFileSystem fs;
  {
    Env env = testutil::MakeSimEnv(&fs);
    auto instance = TwoLoopProgram(false);
    ASSERT_TRUE(instance.ok());
    RecordOptions opts;
    opts.run_prefix = "run";
    RecordSession session(&env, opts);
    Frame frame;
    ASSERT_TRUE(session.Run(instance->program.get(), &frame).ok());
  }
  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;  // 4 workers over 6 epochs
  auto result = sim::ClusterReplay([] { return TwoLoopProgram(true); }, &fs,
                                   copts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 6 epochs balance optimally onto 3 workers (2-2-2); a 4th would not
  // reduce the maximum share, so the partitioner does not use it.
  EXPECT_EQ(result->workers_used, 3);
  EXPECT_TRUE(result->deferred.ok)
      << (result->deferred.anomalies.empty()
              ? ""
              : result->deferred.anomalies[0]);
  EXPECT_EQ(result->probe_entries.size(), 6u * 2u);
}

/// Three-deep nesting: the epoch loop contains a batch loop which contains
/// a micro-batch (gradient-accumulation) loop. Checkpoint keys carry the
/// full nested context ("e=1/i=2").
Result<ProgramInstance> DeepNestProgram() {
  auto ctx = std::make_shared<double>(0.0);
  ir::ProgramBuilder b;
  b.Assign({"acc"}, {"0"}, [ctx](Frame* f) {
    *ctx = 0;
    f->Set("acc", ir::Value::Float(0));
    return Status::OK();
  });
  b.BeginLoop("e", 3);
  {
    b.BeginLoop("i", 2);
    {
      b.BeginLoop("m", 4);  // micro-batch loop (L3), nested two deep
      {
        b.CallAssign({"acc"}, "micro_step", {"acc", "e", "i", "m"},
                     [ctx](Frame* f) {
                       *ctx += 0.5 + f->At("m").AsInt() * 0.25;
                       f->Set("acc", ir::Value::Float(*ctx));
                       return Status::OK();
                     })
            .Cost(2.0);
      }
      b.EndLoop();
    }
    b.EndLoop();
    b.Log("acc", [](Frame* f) {
      return StrFormat("%.6f", f->At("acc").AsFloat());
    });
  }
  b.EndLoop();
  ProgramInstance out;
  out.program = b.Build();
  out.context = ctx;
  return out;
}

TEST(DeepNest, NestedContextsKeyCheckpoints) {
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  auto instance = DeepNestProgram();
  ASSERT_TRUE(instance.ok());
  RecordOptions opts;
  opts.run_prefix = "run";
  RecordSession session(&env, opts);
  Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Both the batch loop (per epoch) and the micro loop (per epoch x batch)
  // are instrumented: 3 + 3*2 checkpoints.
  EXPECT_EQ(result->instrument.loops_instrumented, 2);
  EXPECT_EQ(result->manifest.records.size(), 3u + 6u);
  bool saw_nested_key = false;
  for (const auto& rec : result->manifest.records)
    if (rec.key.ctx == "e=1/i=0") saw_nested_key = true;
  EXPECT_TRUE(saw_nested_key);
}

TEST(DeepNest, ReplaySkipsAtTheOutermostSkippableLevel) {
  MemFileSystem fs;
  {
    Env env = testutil::MakeSimEnv(&fs);
    auto instance = DeepNestProgram();
    ASSERT_TRUE(instance.ok());
    RecordOptions opts;
    opts.run_prefix = "run";
    RecordSession session(&env, opts);
    Frame frame;
    ASSERT_TRUE(session.Run(instance->program.get(), &frame).ok());
  }
  Env env = testutil::MakeSimEnv(&fs);
  auto instance = DeepNestProgram();
  ASSERT_TRUE(instance.ok());
  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ReplaySession session(&env, ropts);
  Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // The batch loop (direct child of main) skips; its nested micro loops
  // are never reached.
  EXPECT_EQ(result->skipblocks.skipped, 3);
  EXPECT_EQ(result->skipblocks.executed, 0);
  EXPECT_TRUE(result->deferred.ok);
  EXPECT_NEAR(frame.At("acc").AsFloat(), 3 * 2 * (4 * 0.5 + 0.25 * 6),
              1e-4);
}

using PosixEndToEnd = testutil::ScratchDirTest;

TEST_F(PosixEndToEnd, RecordReplayOnRealDisk) {
  {
    auto env = NewPosixEnv();
    auto instance = TwoLoopProgram(false);
    ASSERT_TRUE(instance.ok());
    RecordOptions opts;
    opts.run_prefix = "run";
    // Real wall-clock loop bodies run in microseconds, so the Joint
    // Invariant would (correctly) checkpoint sparsely; force density so
    // the partitioned replay below has boundaries everywhere.
    opts.adaptive.enabled = false;
    RecordSession session(env.get(), opts);
    Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->manifest.records.size(), 12u);
  }
  {
    auto env = NewPosixEnv();
    auto instance = TwoLoopProgram(true);
    ASSERT_TRUE(instance.ok());
    ReplayOptions ropts;
    ropts.run_prefix = "run";
    ReplaySession session(env.get(), ropts);
    Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->deferred.ok)
        << (result->deferred.anomalies.empty()
                ? ""
                : result->deferred.anomalies[0]);
    EXPECT_EQ(result->probe_entries.size(), 12u);
  }
}

}  // namespace
}  // namespace flor
