// Crash consistency of background materialization (ROADMAP open item).
//
// The paper's Fork strategy writes checkpoints from a forked child while
// the parent trains on. If that child dies mid-write (OOM-killed, node
// preempted), the parent-side store must never serve a half-written
// checkpoint as a good one: it either sees the complete object or cleanly
// detects the torn state (NotFound under atomic rename; Corruption via the
// frame checksum for in-place writes).
//
// These tests fork a real child process, SIGKILL it at a controlled point
// mid-write (the child signals progress over a pipe and then parks), and
// assert the parent-visible outcome.

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <functional>

#include "checkpoint/checkpoint.h"
#include "checkpoint/spool.h"
#include "checkpoint/store.h"
#include "common/strings.h"
#include "env/filesystem.h"
#include "test_util.h"

namespace flor {
namespace {

/// A deterministic multi-kilobyte checkpoint payload.
NamedSnapshots TestSnapshots() {
  Rng rng = testutil::SeededRng(83);
  Tensor weights(Shape({64, 32}));
  float* w = weights.f32();
  for (int64_t i = 0; i < weights.numel(); ++i)
    w[i] = static_cast<float>(rng.NextGaussian());
  NamedSnapshots snaps;
  snaps.emplace_back("net",
                     ir::SnapshotValue(ir::Value::FromTensor(weights)));
  snaps.emplace_back("step", ir::SnapshotValue(ir::Value::Int(1234)));
  return snaps;
}

class CrashConsistencyTest : public testutil::ScratchDirTest {
 protected:
  /// Forks a child that runs `child_fn(fs)`, writes one progress byte to a
  /// pipe when mid-write, and parks. The parent SIGKILLs it at that point.
  /// Returns false if the child finished instead of parking (setup bug).
  void KillChildMidWrite(
      const std::function<void(PosixFileSystem*, int wfd)>& child_fn) {
    int pipefd[2];
    ASSERT_EQ(pipe(pipefd), 0);
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: never return into gtest.
      close(pipefd[0]);
      PosixFileSystem fs(root());
      child_fn(&fs, pipefd[1]);
      _exit(0);
    }
    close(pipefd[1]);
    char byte = 0;
    // Wait for the child to report "mid-write".
    ASSERT_EQ(read(pipefd[0], &byte, 1), 1);
    close(pipefd[0]);
    ASSERT_EQ(kill(pid, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
  }
};

TEST_F(CrashConsistencyTest, AtomicWriteKilledMidRenamePathLeavesNoObject) {
  // Child goes through the store (PosixFileSystem::WriteFile = temp file +
  // rename): killed before the rename, the final path must simply not
  // exist — a torn temp file is invisible to readers.
  const CheckpointKey key{2, "e=5"};
  const std::string bytes = EncodeCheckpoint(TestSnapshots());
  ASSERT_GT(bytes.size(), 64u);

  KillChildMidWrite([&](PosixFileSystem* fs, int wfd) {
    CheckpointStore store(fs, "run/ckpt");
    // Stage the temp file the way WriteFile does, but park before the
    // rename (the moment a real child dies when the node is lost between
    // write() and rename()).
    const std::string partial = bytes.substr(0, bytes.size() / 2);
    Status s = fs->AppendFile("run/ckpt-staging.tmp", partial);
    (void)s;
    char one = 1;
    (void)!write(wfd, &one, 1);
    pause();  // parked mid-write; parent SIGKILLs
  });

  PosixFileSystem fs(root());
  CheckpointStore store(&fs, "run/ckpt");
  EXPECT_FALSE(store.Exists(key));
  auto got = store.Get(key);
  EXPECT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound()) << got.status().ToString();
}

TEST_F(CrashConsistencyTest, TornInPlaceWriteIsDetectedByChecksum) {
  // Child bypasses the atomic rename and writes the object in place (the
  // append path — what a naive spooler would do), dying halfway. The
  // parent must detect the torn frame, not decode garbage.
  const CheckpointKey key{2, "e=5"};
  const std::string bytes = EncodeCheckpoint(TestSnapshots());

  KillChildMidWrite([&](PosixFileSystem* fs, int wfd) {
    CheckpointStore store(fs, "run/ckpt");
    // First half of the real object, written directly to the final path
    // (the store lays objects out as <prefix>/<key>.ckpt).
    const std::string half = bytes.substr(0, bytes.size() / 2);
    Status s =
        fs->AppendFile("run/ckpt/" + key.ToString() + ".ckpt", half);
    (void)s;
    char one = 1;
    (void)!write(wfd, &one, 1);
    pause();
  });

  PosixFileSystem fs(root());
  CheckpointStore store(&fs, "run/ckpt");
  ASSERT_TRUE(store.Exists(key));  // the torn object is present...
  auto got = store.Get(key);       // ...but never decodes as valid
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption()) << got.status().ToString();
}

TEST_F(CrashConsistencyTest, CompletedChildWriteSurvivesKill) {
  // Control: the child completes the materialization before dying; the
  // parent store then serves the full checkpoint, bit-exact.
  const CheckpointKey key{2, "e=5"};
  const NamedSnapshots snaps = TestSnapshots();
  const std::string bytes = EncodeCheckpoint(snaps);

  KillChildMidWrite([&](PosixFileSystem* fs, int wfd) {
    CheckpointStore store(fs, "run/ckpt");
    Status s = store.PutBytes(key, bytes);
    char one = static_cast<char>(s.ok() ? 1 : 2);
    (void)!write(wfd, &one, 1);
    pause();
  });

  PosixFileSystem fs(root());
  CheckpointStore store(&fs, "run/ckpt");
  auto got = store.Get(key);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), snaps.size());
  for (size_t i = 0; i < snaps.size(); ++i) {
    EXPECT_EQ((*got)[i].first, snaps[i].first);
  }
  // Byte-exact round trip of the stored object.
  auto raw = store.GetBytes(key);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(*raw, bytes);
}

TEST_F(CrashConsistencyTest, KilledMidBatchedSpoolKeepsShardLocalAtomicity) {
  // The spooler child dies (SIGKILL) partway through draining a sharded
  // store to the bucket. Shard-local atomicity: every object that made it
  // to the bucket must be complete and decode bit-exact (WriteFile is
  // atomic per object), with no torn objects anywhere — a shard is simply
  // a prefix of fully-spooled objects plus absent ones.
  const int kShards = 4;
  const int kObjects = 16;
  const std::string bytes = EncodeCheckpoint(TestSnapshots());

  // Parent stages the sharded store first, so it knows the full layout.
  {
    PosixFileSystem fs(root());
    CheckpointStore store(&fs, "run/ckpt", kShards);
    for (int e = 0; e < kObjects; ++e)
      ASSERT_TRUE(store.PutBytes(CheckpointKey{2, StrCat("e=", e)},
                                 bytes).ok());
  }

  KillChildMidWrite([&](PosixFileSystem* fs, int wfd) {
    CheckpointStore store(fs, "run/ckpt", kShards);
    SpoolOptions sopts;
    sopts.max_batch_objects = 4;
    SpoolQueue queue(fs, kShards, sopts);
    for (int shard = 0; shard < kShards; ++shard) {
      for (const auto& path :
           fs->ListPrefix(store.ShardPrefix(shard) + "/"))
        queue.Enqueue(shard, path, "s3/" + path);
    }
    queue.Flush();
    // Report mid-spool while batches are still running in the background
    // worker, then park: the parent SIGKILLs a genuinely in-flight spool.
    char one = 1;
    (void)!write(wfd, &one, 1);
    pause();
  });

  PosixFileSystem fs(root());
  CheckpointStore store(&fs, "run/ckpt", kShards);
  int spooled = 0;
  for (int e = 0; e < kObjects; ++e) {
    const CheckpointKey key{2, StrCat("e=", e)};
    const std::string dst = "s3/" + store.PathFor(key);
    if (!fs.Exists(dst)) continue;  // never spooled: fine
    ++spooled;
    // Present implies complete and bit-exact — never torn.
    auto got = fs.ReadFile(dst);
    ASSERT_TRUE(got.ok()) << dst;
    EXPECT_EQ(*got, bytes) << dst;
    auto decoded = DecodeCheckpoint(*got);
    EXPECT_TRUE(decoded.ok()) << dst << ": "
                              << decoded.status().ToString();
  }
  // A kill between stage and rename can orphan a ".tmp" — that is fine
  // (readers resolve only final paths); what must never exist is a torn
  // object at a *final* path.
  for (const auto& path : fs.ListPrefix("s3/")) {
    if (EndsWith(path, ".tmp")) continue;
    auto data = fs.ReadFile(path);
    ASSERT_TRUE(data.ok()) << path;
    EXPECT_TRUE(DecodeCheckpoint(*data).ok()) << path;
  }
  // The local store is untouched by the crashed spooler.
  EXPECT_EQ(fs.TotalBytesUnder("run/ckpt/"),
            static_cast<uint64_t>(kObjects) * bytes.size());
  // (spooled count varies with kill timing; zero and all are both legal.)
  EXPECT_LE(spooled, kObjects);
}

}  // namespace
}  // namespace flor

#endif  // __unix__ || __APPLE__
