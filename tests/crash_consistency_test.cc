// Crash consistency of background materialization (ROADMAP open item).
//
// The paper's Fork strategy writes checkpoints from a forked child while
// the parent trains on. If that child dies mid-write (OOM-killed, node
// preempted), the parent-side store must never serve a half-written
// checkpoint as a good one: it either sees the complete object or cleanly
// detects the torn state (NotFound under atomic rename; Corruption via the
// frame checksum for in-place writes).
//
// These tests fork a real child process, SIGKILL it at a controlled point
// mid-write (the child signals progress over a pipe and then parks), and
// assert the parent-visible outcome.

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <functional>

#include "checkpoint/checkpoint.h"
#include "checkpoint/gc.h"
#include "checkpoint/spool.h"
#include "checkpoint/store.h"
#include "common/strings.h"
#include "env/filesystem.h"
#include "env/result_file.h"
#include "exec/process_executor.h"
#include "exec/replay_executor.h"
#include "flor/record.h"
#include "sim/parallel_replay.h"
#include "test_util.h"
#include "workloads/programs.h"

namespace flor {
namespace {

/// A deterministic multi-kilobyte checkpoint payload.
NamedSnapshots TestSnapshots() {
  Rng rng = testutil::SeededRng(83);
  Tensor weights(Shape({64, 32}));
  float* w = weights.f32();
  for (int64_t i = 0; i < weights.numel(); ++i)
    w[i] = static_cast<float>(rng.NextGaussian());
  NamedSnapshots snaps;
  snaps.emplace_back("net",
                     ir::SnapshotValue(ir::Value::FromTensor(weights)));
  snaps.emplace_back("step", ir::SnapshotValue(ir::Value::Int(1234)));
  return snaps;
}

class CrashConsistencyTest : public testutil::ScratchDirTest {
 protected:
  /// Forks a child that runs `child_fn(fs)`, writes one progress byte to a
  /// pipe when mid-write, and parks. The parent SIGKILLs it at that point.
  /// Returns false if the child finished instead of parking (setup bug).
  void KillChildMidWrite(
      const std::function<void(PosixFileSystem*, int wfd)>& child_fn) {
    int pipefd[2];
    ASSERT_EQ(pipe(pipefd), 0);
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: never return into gtest.
      close(pipefd[0]);
      PosixFileSystem fs(root());
      child_fn(&fs, pipefd[1]);
      _exit(0);
    }
    close(pipefd[1]);
    char byte = 0;
    // Wait for the child to report "mid-write".
    ASSERT_EQ(read(pipefd[0], &byte, 1), 1);
    close(pipefd[0]);
    ASSERT_EQ(kill(pid, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus));
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);
  }
};

TEST_F(CrashConsistencyTest, AtomicWriteKilledMidRenamePathLeavesNoObject) {
  // Child goes through the store (PosixFileSystem::WriteFile = temp file +
  // rename): killed before the rename, the final path must simply not
  // exist — a torn temp file is invisible to readers.
  const CheckpointKey key{2, "e=5"};
  const std::string bytes = EncodeCheckpoint(TestSnapshots());
  ASSERT_GT(bytes.size(), 64u);

  KillChildMidWrite([&](PosixFileSystem* fs, int wfd) {
    CheckpointStore store(fs, "run/ckpt");
    // Stage the temp file the way WriteFile does, but park before the
    // rename (the moment a real child dies when the node is lost between
    // write() and rename()).
    const std::string partial = bytes.substr(0, bytes.size() / 2);
    Status s = fs->AppendFile("run/ckpt-staging.tmp", partial);
    (void)s;
    char one = 1;
    (void)!write(wfd, &one, 1);
    pause();  // parked mid-write; parent SIGKILLs
  });

  PosixFileSystem fs(root());
  CheckpointStore store(&fs, "run/ckpt");
  EXPECT_FALSE(store.Exists(key));
  auto got = store.Get(key);
  EXPECT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound()) << got.status().ToString();
}

TEST_F(CrashConsistencyTest, TornInPlaceWriteIsDetectedByChecksum) {
  // Child bypasses the atomic rename and writes the object in place (the
  // append path — what a naive spooler would do), dying halfway. The
  // parent must detect the torn frame, not decode garbage.
  const CheckpointKey key{2, "e=5"};
  const std::string bytes = EncodeCheckpoint(TestSnapshots());

  KillChildMidWrite([&](PosixFileSystem* fs, int wfd) {
    CheckpointStore store(fs, "run/ckpt");
    // First half of the real object, written directly to the final path
    // (the store lays objects out as <prefix>/<key>.ckpt).
    const std::string half = bytes.substr(0, bytes.size() / 2);
    Status s =
        fs->AppendFile("run/ckpt/" + key.ToString() + ".ckpt", half);
    (void)s;
    char one = 1;
    (void)!write(wfd, &one, 1);
    pause();
  });

  PosixFileSystem fs(root());
  CheckpointStore store(&fs, "run/ckpt");
  ASSERT_TRUE(store.Exists(key));  // the torn object is present...
  auto got = store.Get(key);       // ...but never decodes as valid
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption()) << got.status().ToString();
}

TEST_F(CrashConsistencyTest, CompletedChildWriteSurvivesKill) {
  // Control: the child completes the materialization before dying; the
  // parent store then serves the full checkpoint, bit-exact.
  const CheckpointKey key{2, "e=5"};
  const NamedSnapshots snaps = TestSnapshots();
  const std::string bytes = EncodeCheckpoint(snaps);

  KillChildMidWrite([&](PosixFileSystem* fs, int wfd) {
    CheckpointStore store(fs, "run/ckpt");
    Status s = store.PutBytes(key, bytes);
    char one = static_cast<char>(s.ok() ? 1 : 2);
    (void)!write(wfd, &one, 1);
    pause();
  });

  PosixFileSystem fs(root());
  CheckpointStore store(&fs, "run/ckpt");
  auto got = store.Get(key);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), snaps.size());
  for (size_t i = 0; i < snaps.size(); ++i) {
    EXPECT_EQ((*got)[i].first, snaps[i].first);
  }
  // Byte-exact round trip of the stored object.
  auto raw = store.GetBytes(key);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(*raw, bytes);
}

TEST_F(CrashConsistencyTest, KilledMidBatchedSpoolKeepsShardLocalAtomicity) {
  // The spooler child dies (SIGKILL) partway through draining a sharded
  // store to the bucket. Shard-local atomicity: every object that made it
  // to the bucket must be complete and decode bit-exact (WriteFile is
  // atomic per object), with no torn objects anywhere — a shard is simply
  // a prefix of fully-spooled objects plus absent ones.
  const int kShards = 4;
  const int kObjects = 16;
  const std::string bytes = EncodeCheckpoint(TestSnapshots());

  // Parent stages the sharded store first, so it knows the full layout.
  {
    PosixFileSystem fs(root());
    CheckpointStore store(&fs, "run/ckpt", kShards);
    for (int e = 0; e < kObjects; ++e)
      ASSERT_TRUE(store.PutBytes(CheckpointKey{2, StrCat("e=", e)},
                                 bytes).ok());
  }

  KillChildMidWrite([&](PosixFileSystem* fs, int wfd) {
    CheckpointStore store(fs, "run/ckpt", kShards);
    SpoolOptions sopts;
    sopts.max_batch_objects = 4;
    SpoolQueue queue(fs, kShards, sopts);
    for (int shard = 0; shard < kShards; ++shard) {
      for (const auto& path :
           fs->ListPrefix(store.ShardPrefix(shard) + "/"))
        queue.Enqueue(shard, path, "s3/" + path);
    }
    queue.Flush();
    // Report mid-spool while batches are still running in the background
    // worker, then park: the parent SIGKILLs a genuinely in-flight spool.
    char one = 1;
    (void)!write(wfd, &one, 1);
    pause();
  });

  PosixFileSystem fs(root());
  CheckpointStore store(&fs, "run/ckpt", kShards);
  int spooled = 0;
  for (int e = 0; e < kObjects; ++e) {
    const CheckpointKey key{2, StrCat("e=", e)};
    const std::string dst = "s3/" + store.PathFor(key);
    if (!fs.Exists(dst)) continue;  // never spooled: fine
    ++spooled;
    // Present implies complete and bit-exact — never torn.
    auto got = fs.ReadFile(dst);
    ASSERT_TRUE(got.ok()) << dst;
    EXPECT_EQ(*got, bytes) << dst;
    auto decoded = DecodeCheckpoint(*got);
    EXPECT_TRUE(decoded.ok()) << dst << ": "
                              << decoded.status().ToString();
  }
  // A kill between stage and rename can orphan a ".tmp" — that is fine
  // (readers resolve only final paths); what must never exist is a torn
  // object at a *final* path.
  for (const auto& path : fs.ListPrefix("s3/")) {
    if (EndsWith(path, ".tmp")) continue;
    auto data = fs.ReadFile(path);
    ASSERT_TRUE(data.ok()) << path;
    EXPECT_TRUE(DecodeCheckpoint(*data).ok()) << path;
  }
  // The local store is untouched by the crashed spooler.
  EXPECT_EQ(fs.TotalBytesUnder("run/ckpt/"),
            static_cast<uint64_t>(kObjects) * bytes.size());
  // (spooled count varies with kill timing; zero and all are both legal.)
  EXPECT_LE(spooled, kObjects);
}

/// Delegating FileSystem that parks the process (after signaling `wfd`)
/// on the `park_at`-th DeleteFile call — the hook that lets the parent
/// SIGKILL a GC child genuinely mid-retirement, with some deletes landed
/// and some not.
class ParkOnDeleteFileSystem : public FileSystem {
 public:
  ParkOnDeleteFileSystem(FileSystem* base, int park_at, int wfd)
      : base_(base), park_at_(park_at), wfd_(wfd) {}

  Status WriteFile(const std::string& path, const std::string& data)
      override {
    return base_->WriteFile(path, data);
  }
  Status AppendFile(const std::string& path, const std::string& data)
      override {
    return base_->AppendFile(path, data);
  }
  Result<std::string> ReadFile(const std::string& path) const override {
    return base_->ReadFile(path);
  }
  bool Exists(const std::string& path) const override {
    return base_->Exists(path);
  }
  Result<uint64_t> FileSize(const std::string& path) const override {
    return base_->FileSize(path);
  }
  Status DeleteFile(const std::string& path) override {
    if (++deletes_ == park_at_) {
      char one = 1;
      (void)!write(wfd_, &one, 1);
      pause();  // parked mid-GC; parent SIGKILLs
    }
    return base_->DeleteFile(path);
  }
  std::vector<std::string> ListPrefix(
      const std::string& prefix) const override {
    return base_->ListPrefix(prefix);
  }

 private:
  FileSystem* base_;
  int deletes_ = 0;
  int park_at_;
  int wfd_;
};

TEST_F(CrashConsistencyTest, KilledMidGcLeavesReplayableStore) {
  // Retirement's crash contract: the pruned manifest lands first (one
  // atomic WriteFile), deletes follow shard by shard — so a GC process
  // SIGKILLed between deletes leaves (a) a manifest that parses, (b) an
  // object present for every record it references, and (c) a run that
  // still replays green and byte-identically on both engines. Retired-but-
  // undeleted objects are mere orphans.
  workloads::WorkloadProfile profile;
  profile.name = "CrashGc";
  profile.epochs = 10;
  profile.sim_epoch_seconds = 100;
  profile.sim_outer_seconds = 2;
  profile.sim_preamble_seconds = 5;
  profile.sim_ckpt_raw_bytes = 1 << 20;  // cheap: dense checkpoints
  profile.ckpt_shards = 4;
  profile.task_kind = data::Task::kVision;
  profile.real_samples = 32;
  profile.real_batch = 8;
  profile.real_feature_dim = 12;
  profile.real_classes = 3;
  profile.real_hidden = 12;
  profile.seed = testutil::TestSeed(47);

  // Parent stages a real record run on disk.
  {
    PosixFileSystem fs(root());
    Env env(std::make_unique<SimClock>(), &fs);
    auto instance =
        workloads::MakeWorkloadFactory(profile, workloads::kProbeNone)();
    ASSERT_TRUE(instance.ok());
    RecordSession session(
        &env, workloads::DefaultRecordOptions(profile, "run"));
    exec::Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_GT(result->manifest.records.size(), 4u);
  }

  const size_t objects_before = [&] {
    PosixFileSystem fs(root());
    return fs.ListPrefix("run/ckpt/").size();
  }();

  KillChildMidWrite([&](PosixFileSystem* fs, int wfd) {
    // Park on the third delete: the pruned manifest is durable and some
    // (but not all) retired objects are gone when the SIGKILL lands.
    ParkOnDeleteFileSystem parked(fs, /*park_at=*/3, wfd);
    GcPolicy policy;
    policy.keep_last_k = 1;
    auto report =
        RetireRun(&parked, "run/manifest.tsv", "run/ckpt", policy);
    (void)report;
  });

  PosixFileSystem fs(root());
  // (a) The manifest parses — the rewrite was atomic.
  auto manifest_bytes = fs.ReadFile("run/manifest.tsv");
  ASSERT_TRUE(manifest_bytes.ok());
  auto manifest = Manifest::Deserialize(*manifest_bytes);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();

  // (b) Every referenced object is present and decodes bit-exact; the
  // interrupted deletes left orphans (more objects than records), never
  // a dangling record.
  CheckpointStore store(&fs, "run/ckpt", manifest->shard_count);
  for (const auto& rec : manifest->records) {
    auto got = store.Get(rec.key);
    EXPECT_TRUE(got.ok()) << rec.key.ToString() << ": "
                          << got.status().ToString();
  }
  const size_t objects_after = fs.ListPrefix("run/ckpt/").size();
  EXPECT_LT(objects_after, objects_before);           // some deletes landed
  EXPECT_GT(objects_after, manifest->records.size());  // orphans remain

  // (c) Both engines replay the crashed-GC store green, byte-identically.
  auto factory =
      workloads::MakeWorkloadFactory(profile, workloads::kProbeInner);
  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.init_mode = InitMode::kWeak;
  auto sim_result = sim::ClusterReplay(factory, &fs, copts);
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  EXPECT_TRUE(sim_result->deferred.ok);

  exec::ReplayExecutorOptions xopts;
  xopts.run_prefix = "run";
  xopts.num_threads = 2;
  xopts.num_partitions = 2;
  xopts.init_mode = InitMode::kWeak;
  auto real_result = exec::ReplayExecutor(&fs, xopts).Run(factory);
  ASSERT_TRUE(real_result.ok()) << real_result.status().ToString();
  EXPECT_TRUE(real_result->deferred.ok);
  EXPECT_EQ(real_result->merged_logs.Serialize(),
            sim_result->merged_logs.Serialize());
}

TEST_F(CrashConsistencyTest, KilledMidBucketRetirementKeepsTiersReadable) {
  // Bucket-tier GC inherits the manifest-first crash contract: a process
  // SIGKILLed between the (atomic, already-landed) manifest prune and the
  // two-tier deletes leaves (a) a manifest that parses, (b) every record
  // it references readable through the tiers, (c) a run that replays green
  // with the bucket attached — the half-deleted epochs are orphans in
  // either tier, which the reconciliation sweep then reclaims exactly.
  workloads::WorkloadProfile profile;
  profile.name = "CrashBkt";
  profile.epochs = 10;
  profile.sim_epoch_seconds = 100;
  profile.sim_outer_seconds = 2;
  profile.sim_preamble_seconds = 5;
  profile.sim_ckpt_raw_bytes = 1 << 20;  // cheap: dense checkpoints
  profile.ckpt_shards = 4;
  profile.task_kind = data::Task::kVision;
  profile.real_samples = 32;
  profile.real_batch = 8;
  profile.real_feature_dim = 12;
  profile.real_classes = 3;
  profile.real_hidden = 12;
  profile.seed = testutil::TestSeed(53);

  // Parent stages a record run with its spool mirror on disk.
  {
    PosixFileSystem fs(root());
    Env env(std::make_unique<SimClock>(), &fs);
    auto instance =
        workloads::MakeWorkloadFactory(profile, workloads::kProbeNone)();
    ASSERT_TRUE(instance.ok());
    RecordOptions opts = workloads::DefaultRecordOptions(profile, "run");
    opts.spool_prefix = "s3";
    RecordSession session(&env, opts);
    exec::Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_GT(result->manifest.records.size(), 4u);
    ASSERT_TRUE(result->spool_report.ok());
  }

  const size_t objects_before = [&] {
    PosixFileSystem fs(root());
    return fs.ListPrefix("run/ckpt/").size() +
           fs.ListPrefix("s3/run/ckpt/").size();
  }();

  KillChildMidWrite([&](PosixFileSystem* fs, int wfd) {
    // Park on the third delete: the pruned manifest is durable, a record
    // or two is half-reclaimed (bucket copy gone, local copy not, or vice
    // versa) when the SIGKILL lands.
    ParkOnDeleteFileSystem parked(fs, /*park_at=*/3, wfd);
    BucketGcPolicy policy;
    policy.keep_last_k = 2;
    auto report = RetireBucketRun(&parked, "run/manifest.tsv", "run/ckpt",
                                  "s3", policy);
    (void)report;
  });

  PosixFileSystem fs(root());
  // (a) The manifest parses and was pruned.
  auto manifest_bytes = fs.ReadFile("run/manifest.tsv");
  ASSERT_TRUE(manifest_bytes.ok());
  auto manifest = Manifest::Deserialize(*manifest_bytes);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();

  // (b) Every referenced record reads through the tiers; the interrupted
  // deletes left orphans behind (more objects than two tiers' worth of
  // records), never a dangling record.
  CheckpointStore store(&fs, "run/ckpt", manifest->shard_count);
  store.AttachBucket("s3");
  for (const auto& rec : manifest->records) {
    auto got = store.Get(rec.key);
    EXPECT_TRUE(got.ok()) << rec.key.ToString() << ": "
                          << got.status().ToString();
  }
  const auto count_objects = [&fs] {
    return fs.ListPrefix("run/ckpt/").size() +
           fs.ListPrefix("s3/run/ckpt/").size();
  };
  EXPECT_LT(count_objects(), objects_before);  // some deletes landed
  EXPECT_GT(count_objects(), manifest->records.size() * 2);  // orphans

  // (c) The crashed-GC run replays green with the bucket attached.
  auto factory =
      workloads::MakeWorkloadFactory(profile, workloads::kProbeInner);
  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.init_mode = InitMode::kWeak;
  copts.bucket_prefix = "s3";
  auto sim_result = sim::ClusterReplay(factory, &fs, copts);
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  EXPECT_TRUE(sim_result->deferred.ok);

  // The sweep reclaims exactly the leftovers: afterwards each tier holds
  // one object per referenced record, and a rerun of the same bucket GC
  // completes as a no-op.
  auto sweep = ReconcileRun(&fs, "run/manifest.tsv", "run/ckpt", "s3");
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  EXPECT_TRUE(sweep->ok());
  EXPECT_GT(sweep->local_orphans() + sweep->bucket_orphans(), 0);
  EXPECT_EQ(count_objects(), manifest->records.size() * 2);

  BucketGcPolicy policy;
  policy.keep_last_k = 2;
  auto rerun = RetireBucketRun(&fs, "run/manifest.tsv", "run/ckpt", "s3",
                               policy);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_EQ(rerun->retired_objects(), 0);
  EXPECT_EQ(count_objects(), manifest->records.size() * 2);
}

/// Delegating FileSystem that parks the process (after signaling `wfd`)
/// on the `park_at`-th WriteFile under `watch_prefix` — before the write
/// lands, so the parent SIGKILLs a record session genuinely mid-slot:
/// earlier checkpoints are durable (some acked, some batched in the open
/// group-commit slot), the parked one never exists.
class ParkOnWriteFileSystem : public FileSystem {
 public:
  ParkOnWriteFileSystem(FileSystem* base, std::string watch_prefix,
                        int park_at, int wfd)
      : base_(base), watch_prefix_(std::move(watch_prefix)),
        park_at_(park_at), wfd_(wfd) {}

  Status WriteFile(const std::string& path, const std::string& data)
      override {
    if (path.rfind(watch_prefix_, 0) == 0 && ++writes_ == park_at_) {
      char one = 1;
      (void)!write(wfd_, &one, 1);
      pause();  // parked mid-slot; parent SIGKILLs
    }
    return base_->WriteFile(path, data);
  }
  Status AppendFile(const std::string& path, const std::string& data)
      override {
    return base_->AppendFile(path, data);
  }
  Result<std::string> ReadFile(const std::string& path) const override {
    return base_->ReadFile(path);
  }
  bool Exists(const std::string& path) const override {
    return base_->Exists(path);
  }
  Result<uint64_t> FileSize(const std::string& path) const override {
    return base_->FileSize(path);
  }
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }
  std::vector<std::string> ListPrefix(
      const std::string& prefix) const override {
    return base_->ListPrefix(prefix);
  }

 private:
  FileSystem* base_;
  std::string watch_prefix_;
  int writes_ = 0;
  int park_at_;
  int wfd_;
};

TEST_F(CrashConsistencyTest, KilledMidGroupCommitSlotLosesNoAckedCheckpoint) {
  // Group commit batches durable *notifications*, not durability: a record
  // process SIGKILLed mid-slot (kill lands during the 6th checkpoint write
  // at window 4 — slot one delivered, the 5th checkpoint durable but its
  // ack still batched in the open slot) must leave
  //   (a) no torn object at any final path (every checkpoint on disk
  //       decodes bit-exact),
  //   (b) the spool mirror holding only *acked* checkpoints (the open
  //       slot's members were never handed to the spooler), each
  //       byte-identical to its local object,
  //   (c) no manifest (the run never completed — a half-written index
  //       would be worse than none), and
  //   (d) a re-record over the same prefix that completes green with a
  //       parseable manifest and every record readable.
  workloads::WorkloadProfile profile;
  profile.name = "CrashGrpCmt";
  profile.epochs = 10;
  profile.sim_epoch_seconds = 100;
  profile.sim_outer_seconds = 2;
  profile.sim_preamble_seconds = 5;
  profile.sim_ckpt_raw_bytes = 1 << 20;  // cheap: dense checkpoints
  profile.ckpt_shards = 4;
  profile.task_kind = data::Task::kVision;
  profile.real_samples = 32;
  profile.real_batch = 8;
  profile.real_feature_dim = 12;
  profile.real_classes = 3;
  profile.real_hidden = 12;
  profile.seed = testutil::TestSeed(71);

  constexpr int kWindow = 4;
  KillChildMidWrite([&](PosixFileSystem* fs, int wfd) {
    // Park on the 6th checkpoint-object write: epochs 0-4 durable (0-3
    // acked as slot one, 4 batched in the open slot), epoch 5 mid-write.
    ParkOnWriteFileSystem parked(fs, "run/ckpt/", /*park_at=*/6, wfd);
    Env env(std::make_unique<SimClock>(), &parked);
    auto instance =
        workloads::MakeWorkloadFactory(profile, workloads::kProbeNone)();
    if (!instance.ok()) _exit(3);
    RecordOptions opts = workloads::DefaultRecordOptions(profile, "run");
    opts.adaptive.enabled = false;  // dense: one checkpoint per epoch
    opts.spool_prefix = "s3";
    opts.spool.max_batch_objects = 1;  // spool each ack promptly
    opts.materializer.group_commit_window = kWindow;
    RecordSession session(&env, opts);
    exec::Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    (void)result;
  });

  PosixFileSystem fs(root());
  CheckpointStore store(&fs, "run/ckpt", profile.ckpt_shards);

  // (a) Exactly the five pre-kill checkpoints landed, none torn.
  int durable = 0;
  for (int64_t e = 0; e < profile.epochs; ++e) {
    const CheckpointKey key{2, StrCat("e=", e)};
    if (!store.Exists(key)) continue;
    ++durable;
    EXPECT_LT(e, 5) << "epoch " << e << " written after the kill point";
    auto got = store.Get(key);
    EXPECT_TRUE(got.ok()) << key.ToString() << ": "
                          << got.status().ToString();
  }
  EXPECT_EQ(durable, 5);

  // (b) The mirror holds only acked (slot-one, epochs 0-3) checkpoints,
  // each complete and byte-identical to its local object. The open slot's
  // epoch-4 ack was still batched: it must not have been spooled.
  for (const auto& path : fs.ListPrefix("s3/run/ckpt/")) {
    if (EndsWith(path, ".tmp")) continue;
    const std::string local = path.substr(3);  // strip "s3/"
    auto mirrored = fs.ReadFile(path);
    auto local_data = fs.ReadFile(local);
    ASSERT_TRUE(mirrored.ok()) << path;
    ASSERT_TRUE(local_data.ok()) << local;
    EXPECT_EQ(*mirrored, *local_data) << path;
    EXPECT_TRUE(DecodeCheckpoint(*mirrored).ok()) << path;
  }
  const std::string unacked = "s3/" + store.PathFor(CheckpointKey{2, "e=4"});
  EXPECT_FALSE(fs.Exists(unacked))
      << "open-slot checkpoint was spooled before its slot closed";

  // (c) The run never completed, so no index claims it did.
  EXPECT_FALSE(fs.Exists("run/manifest.tsv"));

  // (d) Re-recording over the crashed prefix completes green: manifest
  // parses and every record it references is readable.
  {
    Env env(std::make_unique<SimClock>(), &fs);
    auto instance =
        workloads::MakeWorkloadFactory(profile, workloads::kProbeNone)();
    ASSERT_TRUE(instance.ok());
    RecordOptions opts = workloads::DefaultRecordOptions(profile, "run");
    opts.adaptive.enabled = false;
    opts.spool_prefix = "s3";
    opts.materializer.group_commit_window = kWindow;
    RecordSession session(&env, opts);
    exec::Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }
  auto manifest_bytes = fs.ReadFile("run/manifest.tsv");
  ASSERT_TRUE(manifest_bytes.ok());
  auto manifest = Manifest::Deserialize(*manifest_bytes);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  EXPECT_EQ(manifest->records.size(), static_cast<size_t>(profile.epochs));
  CheckpointStore recovered(&fs, "run/ckpt", manifest->shard_count);
  for (const auto& rec : manifest->records) {
    auto got = recovered.Get(rec.key);
    EXPECT_TRUE(got.ok()) << rec.key.ToString() << ": "
                          << got.status().ToString();
  }
}

TEST_F(CrashConsistencyTest, ReplayWorkerKilledMidPartitionIsRecoverable) {
  // The process engine's crash contract: a replay worker SIGKILLed mid-
  // partition — here after tearing a half-written frame into its result
  // file's *final* path, the worst-case torn state — must surface as a
  // partition-level error naming exactly that partition; the torn frame
  // must fail to parse rather than merge as garbage; and rerunning the
  // same plan must replay green, byte-identical to the simulated engine.
  workloads::WorkloadProfile profile;
  profile.name = "CrashProc";
  profile.epochs = 12;
  profile.sim_epoch_seconds = 100;
  profile.sim_outer_seconds = 2;
  profile.sim_preamble_seconds = 5;
  profile.sim_ckpt_raw_bytes = 1 << 20;  // cheap: dense checkpoints
  profile.task_kind = data::Task::kVision;
  profile.real_samples = 32;
  profile.real_batch = 8;
  profile.real_feature_dim = 12;
  profile.real_classes = 3;
  profile.real_hidden = 12;
  profile.seed = testutil::TestSeed(59);

  PosixFileSystem fs(root());
  {
    Env env(std::make_unique<SimClock>(), &fs);
    auto instance =
        workloads::MakeWorkloadFactory(profile, workloads::kProbeNone)();
    ASSERT_TRUE(instance.ok());
    RecordSession session(
        &env, workloads::DefaultRecordOptions(profile, "run"));
    exec::Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  auto factory =
      workloads::MakeWorkloadFactory(profile, workloads::kProbeInner);
  const std::string scratch = root() + "/proc-scratch";

  exec::ProcessReplayExecutorOptions popts;
  popts.run_prefix = "run";
  popts.num_partitions = 4;
  popts.init_mode = InitMode::kWeak;
  popts.scratch_dir = scratch;
  // Pre-scheduler fail-fast contract, preserved verbatim at
  // max_attempts=1; KilledMidResultWriteIsRetriedToSuccess below covers
  // the retrying default.
  popts.max_attempts = 1;
  popts.child_before_result_write = [scratch](int worker_id, int) {
    if (worker_id != 1) return;
    // The kill lands while the worker is writing its fragment to the
    // final path (the in-place shape a naive writer would have): stage
    // half of a framed result, then die.
    PosixFileSystem child_fs(scratch);
    const std::string bytes =
        EncodeResultSections({"half", "written", "fragment"});
    (void)child_fs.AppendFile(
        exec::ProcessReplayExecutor::ResultFileName(1),
        bytes.substr(0, bytes.size() / 2));
    raise(SIGKILL);
  };
  auto failed = exec::ProcessReplayExecutor(&fs, popts).Run(factory);
  ASSERT_FALSE(failed.ok());
  const std::string msg = failed.status().message();
  EXPECT_NE(msg.find("partition 1/4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("signal 9"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("partition 0"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("partition 2"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("partition 3"), std::string::npos) << msg;

  // The torn result frame is present but never parses — Corruption, not
  // a silently merged garbage fragment.
  PosixFileSystem scratch_fs(scratch);
  ASSERT_TRUE(scratch_fs.Exists(
      exec::ProcessReplayExecutor::ResultFileName(1)));
  auto torn = ReadResultFile(&scratch_fs,
                             exec::ProcessReplayExecutor::ResultFileName(1));
  ASSERT_FALSE(torn.ok());
  EXPECT_TRUE(torn.status().IsCorruption()) << torn.status().ToString();
  // Surviving fragments are intact and decodable.
  for (int w : {0, 2, 3}) {
    auto bytes = scratch_fs.ReadFile(
        exec::ProcessReplayExecutor::ResultFileName(w));
    ASSERT_TRUE(bytes.ok()) << "worker " << w;
    EXPECT_TRUE(DecodeWorkerResult(*bytes).ok()) << "worker " << w;
  }

  // Rerunning the same plan replays green and byte-identical to the
  // simulated engine — the crash left no durable damage.
  exec::ProcessReplayExecutorOptions clean = popts;
  clean.child_before_result_write = nullptr;
  auto rerun = exec::ProcessReplayExecutor(&fs, clean).Run(factory);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_TRUE(rerun->deferred.ok);

  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.init_mode = InitMode::kWeak;
  auto sim_result = sim::ClusterReplay(factory, &fs, copts);
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  EXPECT_TRUE(sim_result->deferred.ok);
  EXPECT_EQ(rerun->merged_logs.Serialize(),
            sim_result->merged_logs.Serialize());
}

TEST_F(CrashConsistencyTest, KilledMidResultWriteIsRetriedToSuccess) {
  // The scheduler's recovery contract: the same worst-case loss as above —
  // a worker SIGKILLed after tearing half a frame into its attempt-1
  // result path — but with the default retry budget, the scheduler
  // re-forks the partition, the clean attempt-2 fragment commits under its
  // own attempt-suffixed name (the torn attempt-1 file cannot shadow it),
  // and the replay completes byte-identical to the simulated engine.
  workloads::WorkloadProfile profile;
  profile.name = "CrashProcRetry";
  profile.epochs = 12;
  profile.sim_epoch_seconds = 100;
  profile.sim_outer_seconds = 2;
  profile.sim_preamble_seconds = 5;
  profile.sim_ckpt_raw_bytes = 1 << 20;  // cheap: dense checkpoints
  profile.task_kind = data::Task::kVision;
  profile.real_samples = 32;
  profile.real_batch = 8;
  profile.real_feature_dim = 12;
  profile.real_classes = 3;
  profile.real_hidden = 12;
  profile.seed = testutil::TestSeed(61);

  PosixFileSystem fs(root());
  {
    Env env(std::make_unique<SimClock>(), &fs);
    auto instance =
        workloads::MakeWorkloadFactory(profile, workloads::kProbeNone)();
    ASSERT_TRUE(instance.ok());
    RecordSession session(
        &env, workloads::DefaultRecordOptions(profile, "run"));
    exec::Frame frame;
    auto result = session.Run(instance->program.get(), &frame);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
  }

  auto factory =
      workloads::MakeWorkloadFactory(profile, workloads::kProbeInner);
  const std::string scratch = root() + "/proc-scratch";

  exec::ProcessReplayExecutorOptions popts;  // default max_attempts = 2
  popts.run_prefix = "run";
  popts.num_partitions = 4;
  popts.init_mode = InitMode::kWeak;
  popts.scratch_dir = scratch;
  popts.child_before_result_write = [scratch](int worker_id, int attempt) {
    if (worker_id != 1 || attempt != 1) return;
    PosixFileSystem child_fs(scratch);
    const std::string bytes =
        EncodeResultSections({"half", "written", "fragment"});
    (void)child_fs.AppendFile(
        exec::ProcessReplayExecutor::ResultFileName(1, 1),
        bytes.substr(0, bytes.size() / 2));
    raise(SIGKILL);
  };
  auto result = exec::ProcessReplayExecutor(&fs, popts).Run(factory);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->deferred.ok);
  EXPECT_EQ(result->retried_partitions, 1);
  ASSERT_EQ(result->partition_attempts.size(), 4u);
  EXPECT_EQ(result->partition_attempts[1], 2);

  // The torn attempt-1 file is still on disk and still refuses to parse;
  // the committed fragment lives at the attempt-2 name.
  PosixFileSystem scratch_fs(scratch);
  auto torn = ReadResultFile(
      &scratch_fs, exec::ProcessReplayExecutor::ResultFileName(1, 1));
  ASSERT_FALSE(torn.ok());
  EXPECT_TRUE(torn.status().IsCorruption()) << torn.status().ToString();
  auto committed = scratch_fs.ReadFile(
      exec::ProcessReplayExecutor::ResultFileName(1, 2));
  ASSERT_TRUE(committed.ok());
  EXPECT_TRUE(DecodeWorkerResult(*committed).ok());

  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.init_mode = InitMode::kWeak;
  auto sim_result = sim::ClusterReplay(factory, &fs, copts);
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  EXPECT_TRUE(sim_result->deferred.ok);
  EXPECT_EQ(result->merged_logs.Serialize(),
            sim_result->merged_logs.Serialize());
}

}  // namespace
}  // namespace flor

#endif  // __unix__ || __APPLE__
