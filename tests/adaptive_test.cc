// Unit tests: the adaptive checkpointing controller and its invariants
// (paper §5.3, Eqs. 1-4).

#include <gtest/gtest.h>

#include <cmath>

#include "flor/adaptive.h"

namespace flor {
namespace {

constexpr double kEps = 1.0 / 15.0;

AdaptiveOptions DefaultOpts() {
  AdaptiveOptions opts;
  opts.enabled = true;
  opts.epsilon = kEps;
  opts.initial_c = 1.0;
  return opts;
}

TEST(Adaptive, CheapCheckpointsMaterializeEveryTime) {
  AdaptiveController ctrl(DefaultOpts());
  // Mi/Ci = 0.001 << eps: dense checkpointing (the Cifr/RsNt regime).
  for (int i = 0; i < 50; ++i)
    EXPECT_TRUE(ctrl.ShouldMaterialize(1, 10.0, 0.01));
  EXPECT_EQ(ctrl.checkpoints(1), 50);
  EXPECT_EQ(ctrl.executions(1), 50);
}

TEST(Adaptive, ExpensiveCheckpointsBecomePeriodic) {
  AdaptiveController ctrl(DefaultOpts());
  // Mi/Ci = 2.2: the RTE regime. Expect ~ n*eps/2.2 checkpoints.
  int materialized = 0;
  for (int i = 0; i < 200; ++i)
    if (ctrl.ShouldMaterialize(2, 11.1, 24.4)) ++materialized;
  EXPECT_EQ(materialized, ctrl.checkpoints(2));
  EXPECT_GE(materialized, 5);
  EXPECT_LE(materialized, 7);  // paper: 6 checkpoints for RTE
}

TEST(Adaptive, DisabledAlwaysMaterializes) {
  AdaptiveOptions opts = DefaultOpts();
  opts.enabled = false;
  AdaptiveController ctrl(opts);
  for (int i = 0; i < 20; ++i)
    EXPECT_TRUE(ctrl.ShouldMaterialize(1, 1.0, 100.0));
  EXPECT_EQ(ctrl.checkpoints(1), 20);
}

TEST(Adaptive, ZeroComputeNeverMaterializes) {
  AdaptiveController ctrl(DefaultOpts());
  EXPECT_FALSE(ctrl.ShouldMaterialize(1, 0.0, 1.0));
}

TEST(Adaptive, RecordOverheadInvariantHolds) {
  // Eq. 1: ki * Mi < ni * eps * Ci for every decision trace prefix.
  AdaptiveController ctrl(DefaultOpts());
  const double ci = 10.0, mi = 9.0;  // ratio 0.9, far above eps
  for (int i = 0; i < 500; ++i) ctrl.ShouldMaterialize(1, ci, mi);
  const double ki = static_cast<double>(ctrl.checkpoints(1));
  const double ni = static_cast<double>(ctrl.executions(1));
  EXPECT_LT(ki * mi, ni * kEps * ci + mi + 1e-9)
      << "Record Overhead invariant violated";
}

TEST(Adaptive, ReplayLatencyInvariantHolds) {
  // Eq. 3: Mi + Ri < (ni/ki) Ci with Ri = c*Mi, whenever ki > 0.
  AdaptiveController ctrl(DefaultOpts());
  const double ci = 10.0, mi = 22.0, c = 1.0;
  for (int i = 0; i < 300; ++i) ctrl.ShouldMaterialize(1, ci, mi);
  const double ki = static_cast<double>(ctrl.checkpoints(1));
  ASSERT_GT(ki, 0);
  const double ni = static_cast<double>(ctrl.executions(1));
  EXPECT_LT(mi + c * mi, ni / ki * ci) << "Replay Latency invariant violated";
}

TEST(Adaptive, TraceRecordsDecisions) {
  AdaptiveController ctrl(DefaultOpts());
  ctrl.ShouldMaterialize(3, 5.0, 0.01);
  ctrl.ShouldMaterialize(3, 5.0, 100.0);
  ASSERT_EQ(ctrl.trace().size(), 2u);
  EXPECT_TRUE(ctrl.trace()[0].materialize);
  EXPECT_FALSE(ctrl.trace()[1].materialize);
  EXPECT_EQ(ctrl.trace()[1].ni, 2);
  EXPECT_EQ(ctrl.trace()[1].ki, 1);
  EXPECT_NEAR(ctrl.trace()[1].ratio, 20.0, 1e-9);
}

TEST(Adaptive, CRefinement) {
  AdaptiveController ctrl(DefaultOpts());
  EXPECT_DOUBLE_EQ(ctrl.c(), 1.0);  // initial
  ctrl.ObserveRestore(13.8, 10.0);
  ctrl.ObserveRestore(27.6, 20.0);
  EXPECT_NEAR(ctrl.c(), 1.38, 1e-9);
  ctrl.ObserveRestore(5.0, 0.0);  // ignored: bad denominator
  EXPECT_NEAR(ctrl.c(), 1.38, 1e-9);
}

TEST(Adaptive, LargerCBindsTighterThanEpsilon) {
  // With c large, 1/(1+c) < eps takes over as the binding threshold.
  AdaptiveOptions opts = DefaultOpts();
  opts.initial_c = 30.0;  // 1/(1+c) = 1/31 < 1/15
  AdaptiveController tight(opts);
  AdaptiveController loose(DefaultOpts());
  // Ratio just under eps: loose materializes at ni=1, tight does not.
  EXPECT_TRUE(loose.ShouldMaterialize(1, 100.0, 6.0));   // 0.06 < 1/15
  EXPECT_FALSE(tight.ShouldMaterialize(1, 100.0, 6.0));  // 0.06 > 1/31
}

TEST(Adaptive, IndependentPerLoopState) {
  AdaptiveController ctrl(DefaultOpts());
  ctrl.ShouldMaterialize(1, 10.0, 0.01);
  ctrl.ShouldMaterialize(2, 10.0, 100.0);
  EXPECT_EQ(ctrl.checkpoints(1), 1);
  EXPECT_EQ(ctrl.checkpoints(2), 0);
  EXPECT_EQ(ctrl.executions(1), 1);
  EXPECT_EQ(ctrl.executions(2), 1);
  EXPECT_EQ(ctrl.executions(3), 0);
}

/// Property sweep: for any (Mi/Ci) ratio and epoch count, both invariants
/// hold over the whole decision trace.
class AdaptiveInvariantSweep
    : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(AdaptiveInvariantSweep, JointInvariantImpliesBothBounds) {
  auto [ratio, epochs] = GetParam();
  AdaptiveController ctrl(DefaultOpts());
  const double ci = 10.0;
  const double mi = ratio * ci;
  for (int i = 0; i < epochs; ++i) ctrl.ShouldMaterialize(1, ci, mi);
  const double ki = static_cast<double>(ctrl.checkpoints(1));
  const double ni = static_cast<double>(ctrl.executions(1));
  // Eq. 1 (allow the one-decision slack inherent in testing post-hoc).
  EXPECT_LE(ki * mi, ni * kEps * ci + mi + 1e-9);
  if (ki > 0) {
    // Eq. 3 with c = 1.
    EXPECT_LT(mi + 1.0 * mi, ni / ki * ci + mi + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RatiosAndLengths, AdaptiveInvariantSweep,
    ::testing::Combine(::testing::Values(0.001, 0.05, 0.5, 1.0, 2.2, 10.0),
                       ::testing::Values(10, 80, 200, 1000)));

}  // namespace
}  // namespace flor
