// Unit tests: synthetic datasets and the deterministic DataLoader.

#include <gtest/gtest.h>

#include <set>

#include "data/loader.h"
#include "test_util.h"

namespace flor {
namespace data {
namespace {

SyntheticDataset::Config VisionConfig() {
  SyntheticDataset::Config cfg;
  cfg.task = Task::kVision;
  cfg.num_samples = 64;
  cfg.feature_dim = 16;
  cfg.num_classes = 4;
  cfg.seed = testutil::TestSeed();
  return cfg;
}

TEST(Dataset, SamplesAreDeterministic) {
  SyntheticDataset a(VisionConfig()), b(VisionConfig());
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_TRUE(a.Sample(i).Equals(b.Sample(i)));
    EXPECT_EQ(a.Label(i), b.Label(i));
  }
}

TEST(Dataset, DifferentSeedsDiffer) {
  auto cfg = VisionConfig();
  SyntheticDataset a(cfg);
  cfg.seed = testutil::TestSeed(1);
  SyntheticDataset b(cfg);
  EXPECT_FALSE(a.Sample(0).Equals(b.Sample(0)));
}

TEST(Dataset, LabelsInRangeAndCoverClasses) {
  SyntheticDataset ds(VisionConfig());
  std::set<int64_t> seen;
  for (int64_t i = 0; i < ds.size(); ++i) {
    const int64_t y = ds.Label(i);
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 4);
    seen.insert(y);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Dataset, TextSamplesAreTokenIds) {
  auto cfg = VisionConfig();
  cfg.task = Task::kText;
  cfg.vocab_size = 50;
  SyntheticDataset ds(cfg);
  Tensor s = ds.Sample(3);
  EXPECT_EQ(s.dtype(), DType::kI64);
  for (int64_t i = 0; i < s.numel(); ++i) {
    EXPECT_GE(s.at_i64(i), 0);
    EXPECT_LT(s.at_i64(i), 50);
  }
}

TEST(Dataset, BatchShapes) {
  SyntheticDataset ds(VisionConfig());
  auto feats = ds.BatchFeatures(8, 4);
  ASSERT_TRUE(feats.ok());
  EXPECT_EQ(feats->shape(), (Shape{4, 16}));
  auto labels = ds.BatchLabels(8, 4);
  ASSERT_TRUE(labels.ok());
  EXPECT_EQ(labels->shape(), (Shape{4}));
  EXPECT_EQ(labels->at_i64(0), ds.Label(8));
}

TEST(Dataset, BatchOutOfRangeRejected) {
  SyntheticDataset ds(VisionConfig());
  EXPECT_FALSE(ds.BatchFeatures(60, 10).ok());
  EXPECT_FALSE(ds.BatchFeatures(-1, 2).ok());
  EXPECT_FALSE(ds.BatchLabels(0, 0).ok());
}

TEST(Loader, BatchesPerEpochDropsPartial) {
  SyntheticDataset ds(VisionConfig());  // 64 samples
  DataLoader loader(&ds, 10);
  EXPECT_EQ(loader.batches_per_epoch(), 6);  // 64/10, partial dropped
}

TEST(Loader, DeterministicAcrossInstances) {
  SyntheticDataset ds(VisionConfig());
  DataLoader a(&ds, 8), b(&ds, 8);
  for (int64_t e = 0; e < 3; ++e) {
    for (int64_t i = 0; i < a.batches_per_epoch(); ++i) {
      auto ba = a.GetBatch(e, i);
      auto bb = b.GetBatch(e, i);
      ASSERT_TRUE(ba.ok());
      ASSERT_TRUE(bb.ok());
      EXPECT_TRUE(ba->features.Equals(bb->features));
      EXPECT_TRUE(ba->labels.Equals(bb->labels));
    }
  }
}

TEST(Loader, EpochsShuffleDifferently) {
  SyntheticDataset ds(VisionConfig());
  DataLoader loader(&ds, 8);
  auto e0 = loader.GetBatch(0, 0);
  auto e1 = loader.GetBatch(1, 0);
  ASSERT_TRUE(e0.ok());
  ASSERT_TRUE(e1.ok());
  EXPECT_FALSE(e0->features.Equals(e1->features));
}

TEST(Loader, EpochCoversAllRetainedSamplesOnce) {
  SyntheticDataset ds(VisionConfig());
  DataLoader loader(&ds, 8);
  auto batches = loader.Epoch(0);
  ASSERT_TRUE(batches.ok());
  ASSERT_EQ(batches->size(), 8u);
  // Labels across the epoch form a permutation-sized multiset: count total.
  int64_t total = 0;
  for (const auto& b : *batches) total += b.labels.numel();
  EXPECT_EQ(total, 64);
}

TEST(Loader, BatchIndexValidated) {
  SyntheticDataset ds(VisionConfig());
  DataLoader loader(&ds, 8);
  EXPECT_FALSE(loader.GetBatch(0, 8).ok());
  EXPECT_FALSE(loader.GetBatch(0, -1).ok());
}

TEST(Loader, TextBatchesAreI64) {
  auto cfg = VisionConfig();
  cfg.task = Task::kText;
  SyntheticDataset ds(cfg);
  DataLoader loader(&ds, 4);
  auto batch = loader.GetBatch(0, 0);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->features.dtype(), DType::kI64);
  EXPECT_EQ(batch->features.shape(), (Shape{4, 16}));
}

}  // namespace
}  // namespace data
}  // namespace flor
