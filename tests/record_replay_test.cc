// End-to-end record/replay integration tests on a miniature workload.

#include <gtest/gtest.h>

#include "flor/record.h"
#include "flor/replay.h"
#include "sim/cost_model.h"
#include "test_util.h"
#include "workloads/programs.h"

namespace flor {
namespace {

using workloads::kProbeInner;
using workloads::kProbeNone;
using workloads::kProbeOuter;
using workloads::MakeWorkloadFactory;
using workloads::WorkloadProfile;
using workloads::WorkloadRuntime;

WorkloadProfile TinyProfile() {
  WorkloadProfile p;
  p.name = "Tiny";
  p.benchmark = "test";
  p.task = "classification";
  p.model = "MLP";
  p.dataset = "synthetic";
  p.epochs = 6;
  p.sim_epoch_seconds = 10;
  p.sim_outer_seconds = 1;
  p.sim_preamble_seconds = 2;
  p.sim_ckpt_raw_bytes = 1 << 20;  // 1 MB: cheap, so checkpointing is dense
  p.task_kind = data::Task::kVision;
  p.real_samples = 32;
  p.real_batch = 8;
  p.real_feature_dim = 16;
  p.real_classes = 3;
  p.real_hidden = 16;
  p.seed = testutil::TestSeed(77);
  return p;
}

/// Runs record for the tiny workload into `env` under "run"; returns the
/// record result and (via out-param) the final model fingerprint.
RecordResult RecordTiny(Env* env, uint64_t* final_fingerprint,
                        bool adaptive_enabled = true) {
  auto factory = MakeWorkloadFactory(TinyProfile(), kProbeNone);
  auto instance = factory();
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();

  RecordOptions opts = workloads::DefaultRecordOptions(TinyProfile(), "run");
  opts.adaptive.enabled = adaptive_enabled;
  RecordSession session(env, opts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  auto* rt = static_cast<WorkloadRuntime*>(instance->context.get());
  if (final_fingerprint) *final_fingerprint = rt->net->StateFingerprint();
  return std::move(result).value();
}

TEST(Record, MaterializesDenseCheckpoints) {
  auto env = Env::NewSimEnv();
  uint64_t fp = 0;
  RecordResult rec = RecordTiny(env.get(), &fp);

  // The training loop ran once per epoch and (cheap checkpoints) was
  // memoized every time.
  EXPECT_EQ(rec.skipblocks.executed, 6);
  EXPECT_EQ(rec.skipblocks.materialized, 6);
  EXPECT_EQ(rec.manifest.records.size(), 6u);
  // Epoch indices parsed from contexts.
  auto epochs = rec.manifest.EpochsWithCheckpoint(2);
  ASSERT_EQ(epochs.size(), 6u);
  EXPECT_EQ(epochs.front(), 0);
  EXPECT_EQ(epochs.back(), 5);
  // Artifacts persisted.
  EXPECT_TRUE(env->fs()->Exists("run/source.py"));
  EXPECT_TRUE(env->fs()->Exists("run/logs.tsv"));
  EXPECT_TRUE(env->fs()->Exists("run/manifest.tsv"));
  // Per-batch loss + per-epoch test_acc + final norm.
  EXPECT_EQ(rec.logs.size(), 6u * 4u + 6u + 1u);
}

TEST(Record, RuntimeMatchesSimulatedCosts) {
  auto env = Env::NewSimEnv();
  RecordResult rec = RecordTiny(env.get(), nullptr);
  const double vanilla = TinyProfile().VanillaSeconds();  // 2 + 6*11 = 68
  EXPECT_GE(rec.runtime_seconds, vanilla);
  // Overhead is bounded by the tolerance for this cheap-checkpoint case.
  EXPECT_LE(rec.runtime_seconds, vanilla * 1.067);
}

TEST(Replay, NoProbesSkipsEverythingAndMatchesState) {
  auto env = Env::NewSimEnv();
  uint64_t recorded_fp = 0;
  RecordResult rec = RecordTiny(env.get(), &recorded_fp);

  auto factory = MakeWorkloadFactory(TinyProfile(), kProbeNone);
  auto instance = factory();
  ASSERT_TRUE(instance.ok());

  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ReplaySession session(env.get(), ropts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_FALSE(result->probes.any());
  EXPECT_EQ(result->skipblocks.skipped, 6);
  EXPECT_EQ(result->skipblocks.executed, 0);
  EXPECT_TRUE(result->deferred.ok)
      << (result->deferred.anomalies.empty()
              ? ""
              : result->deferred.anomalies[0]);

  // Restoring the memoized loops reproduces the recorded final model state
  // bit-exactly.
  auto* rt = static_cast<WorkloadRuntime*>(instance->context.get());
  EXPECT_EQ(rt->net->StateFingerprint(), recorded_fp);

  // Partial replay is much faster than the record run on simulated time.
  EXPECT_LT(result->runtime_seconds, rec.runtime_seconds / 4);
}

TEST(Replay, OuterProbeProducesHindsightLogsWithoutReexecution) {
  auto env = Env::NewSimEnv();
  RecordTiny(env.get(), nullptr);

  auto instance = MakeWorkloadFactory(TinyProfile(), kProbeOuter)();
  ASSERT_TRUE(instance.ok());

  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ReplaySession session(env.get(), ropts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_TRUE(result->probes.any());
  // The probe is outside the training loop, so all loops still skip.
  EXPECT_EQ(result->skipblocks.skipped, 6);
  EXPECT_EQ(result->skipblocks.executed, 0);
  // One hindsight entry per epoch.
  ASSERT_EQ(result->probe_entries.size(), 6u);
  EXPECT_EQ(result->probe_entries[0].label, "weight_norm");
  EXPECT_TRUE(result->deferred.ok);
}

TEST(Replay, InnerProbeForcesReexecutionAndMatchesRecordLogs) {
  auto env = Env::NewSimEnv();
  RecordResult rec = RecordTiny(env.get(), nullptr);

  auto instance = MakeWorkloadFactory(TinyProfile(), kProbeInner)();
  ASSERT_TRUE(instance.ok());

  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ReplaySession session(env.get(), ropts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Probed training loops must re-execute.
  EXPECT_EQ(result->skipblocks.executed, 6);
  EXPECT_EQ(result->skipblocks.skipped, 0);
  // grad_norm per batch per epoch.
  EXPECT_EQ(result->probe_entries.size(), 6u * 4u);
  // Re-executed training reproduces the recorded loss values bit-exactly —
  // this is the deferred correctness check passing with real content.
  EXPECT_TRUE(result->deferred.ok)
      << (result->deferred.anomalies.empty()
              ? ""
              : result->deferred.anomalies[0]);
  EXPECT_GT(result->deferred.entries_compared, 0);
  // Full re-execution costs about as much as training did.
  EXPECT_GT(result->runtime_seconds, rec.runtime_seconds * 0.8);
}

TEST(Replay, NonLogEditIsRejected) {
  auto env = Env::NewSimEnv();
  RecordTiny(env.get(), nullptr);

  // Build a variant whose (non-log) structure differs: different epochs.
  WorkloadProfile altered = TinyProfile();
  altered.epochs = 7;
  auto instance = MakeWorkloadFactory(altered, kProbeNone)();
  ASSERT_TRUE(instance.ok());

  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ReplaySession session(env.get(), ropts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(Replay, WorkerSegmentReplaysItsPartitionOnly) {
  auto env = Env::NewSimEnv();
  RecordTiny(env.get(), nullptr);

  auto instance = MakeWorkloadFactory(TinyProfile(), kProbeInner)();
  ASSERT_TRUE(instance.ok());

  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ropts.worker_id = 1;
  ropts.num_workers = 3;
  ReplaySession session(env.get(), ropts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->active_workers, 3);
  EXPECT_EQ(result->work_begin, 2);
  EXPECT_EQ(result->work_end, 4);
  // Work entries only cover epochs 2..3.
  for (const auto& e : result->logs.WorkEntries()) {
    if (e.context.empty()) continue;
    EXPECT_TRUE(e.context.find("e=2") == 0 || e.context.find("e=3") == 0)
        << e.context;
  }
  EXPECT_TRUE(result->deferred.ok);
}

TEST(Replay, SamplingReplayRandomAccessesEpochs) {
  auto env = Env::NewSimEnv();
  RecordTiny(env.get(), nullptr);

  auto instance = MakeWorkloadFactory(TinyProfile(), kProbeInner)();
  ASSERT_TRUE(instance.ok());

  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ropts.sample_epochs = {1, 4};
  ReplaySession session(env.get(), ropts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Two sampled epochs re-executed, two init restores (epochs 0 and 3).
  EXPECT_EQ(result->skipblocks.executed, 2);
  EXPECT_EQ(result->skipblocks.skipped, 2);
  EXPECT_TRUE(result->deferred.ok)
      << (result->deferred.anomalies.empty()
              ? ""
              : result->deferred.anomalies[0]);
  std::set<std::string> contexts;
  for (const auto& e : result->logs.WorkEntries())
    if (!e.context.empty())
      contexts.insert(e.context.substr(0, e.context.find('/')));
  EXPECT_EQ(contexts, (std::set<std::string>{"e=1", "e=4"}));
}

TEST(Replay, RestoreAccountingMovesTogether) {
  // Regression: RestoreSkipBlock used to guard the restore-latency
  // accumulation on result_ but bump the restores counter through the same
  // pointer unconditionally — the two could only ever diverge by crashing.
  // The invariant is now checked once up front, and every restore charges
  // its Ri: one restore per skipped block, nonzero accumulated latency,
  // and (no bucket configured) zero bucket faults.
  auto env = Env::NewSimEnv();
  RecordTiny(env.get(), nullptr);

  auto instance = MakeWorkloadFactory(TinyProfile(), kProbeNone)();
  ASSERT_TRUE(instance.ok());
  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ReplaySession session(env.get(), ropts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->skipblocks.restores, result->skipblocks.skipped);
  EXPECT_GT(result->skipblocks.restores, 0);
  EXPECT_GT(result->restore_seconds, 0);
  EXPECT_GT(result->observed_c, 0);
  EXPECT_EQ(result->bucket_faults, 0);
}

TEST(Replay, ObservedCMatchesCostModel) {
  auto env = Env::NewSimEnv();
  RecordTiny(env.get(), nullptr);

  auto instance = MakeWorkloadFactory(TinyProfile(), kProbeNone)();
  ASSERT_TRUE(instance.ok());
  ReplayOptions ropts;
  ropts.run_prefix = "run";
  ropts.costs = sim::PaperPlatformCosts();
  ReplaySession session(env.get(), ropts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok());
  // restore = c * materialize with the paper's platform model.
  EXPECT_NEAR(result->observed_c, 1.38, 0.05);
}

}  // namespace
}  // namespace flor
