// Unit tests: cloud cost model and cluster pricing.

#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "sim/cost_model.h"

namespace flor {
namespace sim {
namespace {

TEST(CostModel, InstanceRates) {
  // On-demand rates from the paper's platform (§6, Fig. 14).
  EXPECT_EQ(kP3_2xLarge.gpus, 1);
  EXPECT_DOUBLE_EQ(kP3_2xLarge.dollars_per_hour, 3.06);
  EXPECT_EQ(kP3_8xLarge.gpus, 4);
  EXPECT_DOUBLE_EQ(kP3_8xLarge.dollars_per_hour, 12.24);
  // 4-GPU machine = 4x the 1-GPU machine's price on this family.
  EXPECT_NEAR(kP3_8xLarge.dollars_per_hour / kP3_2xLarge.dollars_per_hour,
              4.0, 1e-9);
}

TEST(CostModel, InstanceCostProRated) {
  EXPECT_DOUBLE_EQ(InstanceCost(kP3_2xLarge, 3600), 3.06);
  EXPECT_DOUBLE_EQ(InstanceCost(kP3_2xLarge, 1800), 1.53);
  EXPECT_DOUBLE_EQ(InstanceCost(kP3_8xLarge, 0), 0.0);
}

TEST(CostModel, PaperPlatformRatios) {
  MaterializerCosts costs = PaperPlatformCosts();
  // Serialization 4.3x I/O (§5.1); restore factor c = 1.38 (§5.3.2).
  EXPECT_NEAR(costs.io_bps / costs.serialize_bps, 4.3, 1e-9);
  EXPECT_DOUBLE_EQ(costs.restore_factor, 1.38);
  // EBS 7 Gbps = 875 MB/s.
  EXPECT_DOUBLE_EQ(costs.io_bps, 875e6);
}

TEST(Cluster, TotalGpus) {
  Cluster c;
  c.instance = kP3_8xLarge;
  c.num_machines = 3;
  EXPECT_EQ(c.total_gpus(), 12);
}

TEST(Cluster, PriceClusterAssignsWorkersInOrder) {
  Cluster c;
  c.instance = kP3_8xLarge;
  c.num_machines = 2;
  // 6 workers: first 4 on machine 0, last 2 on machine 1.
  std::vector<double> workers{100, 200, 150, 50, 300, 250};
  auto usage = PriceCluster(c, workers);
  ASSERT_EQ(usage.size(), 2u);
  EXPECT_DOUBLE_EQ(usage[0].busy_seconds, 200);  // max of first four
  EXPECT_DOUBLE_EQ(usage[1].busy_seconds, 300);  // max of last two
  EXPECT_DOUBLE_EQ(usage[0].cost_dollars,
                   InstanceCost(kP3_8xLarge, 200));
  EXPECT_DOUBLE_EQ(TotalClusterCost(usage),
                   usage[0].cost_dollars + usage[1].cost_dollars);
}

TEST(Cluster, IdleMachinesAreFree) {
  Cluster c;
  c.instance = kP3_8xLarge;
  c.num_machines = 4;
  std::vector<double> workers{100};  // one busy worker on machine 0
  auto usage = PriceCluster(c, workers);
  ASSERT_EQ(usage.size(), 1u);  // idle machines not billed
  EXPECT_EQ(usage[0].machine_id, 0);
}

TEST(Cluster, SerialVsParallelCostNearParity) {
  // The Fig. 14 arithmetic: G workers at T/G on G/4 machines of 4 GPUs
  // costs the same as one GPU at T, when the per-GPU rate matches.
  const double total_seconds = 8 * 3600;
  const double serial_cost = InstanceCost(kP3_2xLarge, total_seconds);
  Cluster c;
  c.instance = kP3_8xLarge;
  c.num_machines = 2;
  std::vector<double> workers(8, total_seconds / 8);
  const double parallel_cost = TotalClusterCost(PriceCluster(c, workers));
  EXPECT_NEAR(parallel_cost, serial_cost, 1e-9);
}

}  // namespace
}  // namespace sim
}  // namespace flor
