// Real thread-pool replay engine tests: determinism across thread counts,
// agreement with the simulated engine, deferred-check parity, skewed
// partitions, and the work-stealing pool itself.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "exec/replay_executor.h"
#include "flor/record.h"
#include "sim/parallel_replay.h"
#include "test_util.h"
#include "workloads/programs.h"

namespace flor {
namespace {

using workloads::kProbeInner;
using workloads::kProbeNone;
using workloads::MakeWorkloadFactory;
using workloads::WorkloadProfile;

WorkloadProfile ExecProfile(int64_t epochs = 12) {
  WorkloadProfile p;
  p.name = "ExecT";
  p.epochs = epochs;
  p.sim_epoch_seconds = 100;
  p.sim_outer_seconds = 2;
  p.sim_preamble_seconds = 5;
  p.sim_ckpt_raw_bytes = 1 << 20;  // cheap: dense checkpoints
  p.task_kind = data::Task::kVision;
  p.real_samples = 32;
  p.real_batch = 8;
  p.real_feature_dim = 12;
  p.real_classes = 3;
  p.real_hidden = 12;
  p.seed = testutil::TestSeed(11);
  return p;
}

/// Records the workload onto `fs` under "run" (simulated clock: adaptive
/// decisions and manifest costs are modeled; state is real).
void RecordOnto(FileSystem* fs, const WorkloadProfile& profile) {
  Env env(std::make_unique<SimClock>(), fs);
  auto instance = MakeWorkloadFactory(profile, kProbeNone)();
  ASSERT_TRUE(instance.ok());
  RecordOptions opts = workloads::DefaultRecordOptions(profile, "run");
  RecordSession session(&env, opts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

Result<exec::ReplayExecutorResult> RunExecutor(FileSystem* fs,
                                               const WorkloadProfile& p,
                                               int threads,
                                               int partitions = 4) {
  exec::ReplayExecutorOptions xopts;
  xopts.run_prefix = "run";
  xopts.num_threads = threads;
  xopts.num_partitions = partitions;
  xopts.init_mode = InitMode::kWeak;
  exec::ReplayExecutor executor(fs, xopts);
  return executor.Run(MakeWorkloadFactory(p, kProbeInner));
}

TEST(ReplayExecutor, MergedLogsByteIdenticalAcrossThreadCounts) {
  MemFileSystem fs;
  const WorkloadProfile profile = ExecProfile();
  RecordOnto(&fs, profile);

  std::string baseline;
  exec::LogStream baseline_stream;
  for (int threads : {1, 2, 4, 8}) {
    auto result = RunExecutor(&fs, profile, threads);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->deferred.ok)
        << threads << " threads: "
        << (result->deferred.anomalies.empty()
                ? ""
                : result->deferred.anomalies[0]);
    EXPECT_EQ(result->workers_used, 4);
    EXPECT_EQ(result->threads_used, std::min(threads, 4));
    const std::string merged = result->merged_logs.Serialize();
    if (threads == 1) {
      baseline = merged;
      baseline_stream = result->merged_logs;
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(merged, baseline) << "divergence at " << threads
                                  << " threads";
    }
  }
}

TEST(ReplayExecutor, AgreesWithSimulatedEngineByteForByte) {
  MemFileSystem fs;
  const WorkloadProfile profile = ExecProfile();
  RecordOnto(&fs, profile);

  // Simulated engine on the paper's 4-GPU machine.
  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.init_mode = InitMode::kWeak;
  auto sim_result =
      sim::ClusterReplay(MakeWorkloadFactory(profile, kProbeInner), &fs,
                         copts);
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();

  // Real engine, same G=4 partitioning.
  auto real_result = RunExecutor(&fs, profile, /*threads=*/4);
  ASSERT_TRUE(real_result.ok()) << real_result.status().ToString();

  EXPECT_EQ(real_result->merged_logs.Serialize(),
            sim_result->merged_logs.Serialize());
  EXPECT_EQ(real_result->workers_used, sim_result->workers_used);
  EXPECT_EQ(real_result->partition_segments,
            sim_result->partition_segments);
  EXPECT_EQ(real_result->effective_init, sim_result->effective_init);
  // Deferred checks agree entry-for-entry.
  EXPECT_EQ(real_result->deferred.ok, sim_result->deferred.ok);
  EXPECT_EQ(real_result->deferred.entries_compared,
            sim_result->deferred.entries_compared);
  // Identical hindsight output.
  ASSERT_EQ(real_result->probe_entries.size(),
            sim_result->probe_entries.size());
  for (size_t i = 0; i < real_result->probe_entries.size(); ++i)
    EXPECT_EQ(real_result->probe_entries[i], sim_result->probe_entries[i]);
  // Same SkipBlock activity.
  EXPECT_EQ(real_result->skipblocks.executed,
            sim_result->skipblocks.executed);
  EXPECT_EQ(real_result->skipblocks.skipped,
            sim_result->skipblocks.skipped);
}

TEST(ReplayExecutor, ShardedStoreKeepsByteIdentityAcrossEnginesAndThreads) {
  // Record onto a 4-shard checkpoint store (manifest carries the shard
  // count; replay routes reads through it). Sharding moves objects, never
  // bytes: both engines and every thread count must merge the same logs
  // as the flat-store baseline workload shape.
  MemFileSystem fs;
  WorkloadProfile profile = ExecProfile();
  profile.ckpt_shards = 4;
  RecordOnto(&fs, profile);

  // The record run really sharded the object layout.
  EXPECT_FALSE(fs.ListPrefix("run/ckpt/shard-").empty());

  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.init_mode = InitMode::kWeak;
  auto sim_result =
      sim::ClusterReplay(MakeWorkloadFactory(profile, kProbeInner), &fs,
                         copts);
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  EXPECT_TRUE(sim_result->deferred.ok);

  std::string baseline;
  for (int threads : {1, 2, 4}) {
    auto result = RunExecutor(&fs, profile, threads);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->deferred.ok);
    const std::string merged = result->merged_logs.Serialize();
    if (threads == 1) {
      baseline = merged;
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(merged, baseline) << threads << " threads";
    }
  }
  // Engine-vs-engine parity holds on the sharded store too.
  EXPECT_EQ(baseline, sim_result->merged_logs.Serialize());
}

TEST(ReplayExecutor, StrongInitMatchesWeakInit) {
  MemFileSystem fs;
  const WorkloadProfile profile = ExecProfile();
  RecordOnto(&fs, profile);

  exec::ReplayExecutorOptions xopts;
  xopts.run_prefix = "run";
  xopts.num_threads = 4;
  xopts.num_partitions = 4;
  auto factory = MakeWorkloadFactory(profile, kProbeInner);

  xopts.init_mode = InitMode::kStrong;
  auto strong = exec::ReplayExecutor(&fs, xopts).Run(factory);
  ASSERT_TRUE(strong.ok()) << strong.status().ToString();
  xopts.init_mode = InitMode::kWeak;
  auto weak = exec::ReplayExecutor(&fs, xopts).Run(factory);
  ASSERT_TRUE(weak.ok()) << weak.status().ToString();

  EXPECT_TRUE(strong->deferred.ok);
  EXPECT_TRUE(weak->deferred.ok);
  EXPECT_EQ(strong->effective_init, InitMode::kStrong);
  EXPECT_EQ(weak->effective_init, InitMode::kWeak);
  EXPECT_EQ(strong->merged_logs.Serialize(), weak->merged_logs.Serialize());
}

TEST(ReplayExecutor, SkewedPartitionsStress) {
  MemFileSystem fs;
  // Sparse checkpoints: an expensive checkpoint relative to epoch compute
  // (Mi/Ci well above epsilon) makes the adaptive controller periodic (the
  // RTE regime), so partition boundaries are few and the resulting
  // segments are skewed.
  WorkloadProfile profile = ExecProfile(18);
  profile.sim_ckpt_raw_bytes = 4ull << 30;
  RecordOnto(&fs, profile);

  std::string baseline;
  for (int threads : {1, 2, 4}) {
    // More requested partitions than boundary epochs exist: the planner
    // clamps, and the surviving segments have unequal epoch counts.
    auto result = RunExecutor(&fs, profile, threads, /*partitions=*/8);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->deferred.ok)
        << (result->deferred.anomalies.empty()
                ? ""
                : result->deferred.anomalies[0]);
    // Sparse checkpointing limited the partitioning.
    EXPECT_LT(result->workers_used, 8);
    EXPECT_GE(result->workers_used, 2);
    const std::string merged = result->merged_logs.Serialize();
    if (threads == 1) {
      baseline = merged;
    } else {
      EXPECT_EQ(merged, baseline);
    }
  }
}

TEST(ReplayExecutor, MorePartitionsThanThreadsCompletesAll) {
  MemFileSystem fs;
  const WorkloadProfile profile = ExecProfile(12);
  RecordOnto(&fs, profile);

  auto fewer = RunExecutor(&fs, profile, /*threads=*/2, /*partitions=*/6);
  ASSERT_TRUE(fewer.ok()) << fewer.status().ToString();
  EXPECT_EQ(fewer->workers_used, 6);
  EXPECT_EQ(fewer->threads_used, 2);
  ASSERT_EQ(fewer->worker_seconds.size(), 6u);
  for (double s : fewer->worker_seconds) EXPECT_GT(s, 0);
  EXPECT_TRUE(fewer->deferred.ok);

  auto one = RunExecutor(&fs, profile, /*threads=*/1, /*partitions=*/6);
  ASSERT_TRUE(one.ok()) << one.status().ToString();
  EXPECT_EQ(one->merged_logs.Serialize(), fewer->merged_logs.Serialize());
}

TEST(ReplayExecutor, SamplingReplayRunsSingleWorker) {
  MemFileSystem fs;
  const WorkloadProfile profile = ExecProfile(12);
  RecordOnto(&fs, profile);

  exec::ReplayExecutorOptions xopts;
  xopts.run_prefix = "run";
  xopts.num_threads = 4;
  xopts.sample_epochs = {3, 7};
  exec::ReplayExecutor executor(&fs, xopts);
  auto result = executor.Run(MakeWorkloadFactory(profile, kProbeInner));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->worker_seconds.size(), 1u);
  EXPECT_TRUE(result->deferred.ok);
  // Probe output for exactly the sampled epochs' batches.
  EXPECT_EQ(result->probe_entries.size(), 2u * 4u);
}

TEST(ReplayExecutor, MissingRecordRunFailsCleanly) {
  MemFileSystem fs;  // nothing recorded
  const WorkloadProfile profile = ExecProfile();
  auto result = RunExecutor(&fs, profile, 2);
  EXPECT_FALSE(result.ok());
}

// ---------------------------------------------------------------- pool ---

TEST(WorkStealingPool, RunsEveryTaskExactlyOnce) {
  std::vector<std::atomic<int>> counts(64);
  for (auto& c : counts) c = 0;
  std::vector<std::function<void()>> tasks;
  for (size_t i = 0; i < counts.size(); ++i)
    tasks.push_back([&counts, i] { counts[i].fetch_add(1); });
  auto stats = exec::WorkStealingPool::Run(4, tasks);
  EXPECT_EQ(stats.tasks_run, 64);
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(WorkStealingPool, InlineWhenSingleThreaded) {
  int calls = 0;
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 5; ++i) tasks.push_back([&calls] { ++calls; });
  auto stats = exec::WorkStealingPool::Run(1, tasks);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(stats.tasks_run, 5);
  EXPECT_EQ(stats.steals, 0);
}

TEST(WorkStealingPool, StealsFromBlockedThread) {
  // Thread 0's first task blocks until every other task has run. Those
  // tasks were dealt round-robin to both deques, so thread 1 must steal
  // thread 0's share for the gate to open — stealing is forced, not just
  // possible.
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  const int kOthers = 7;
  std::vector<std::function<void()>> tasks;
  tasks.push_back([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == kOthers; });
  });
  for (int i = 0; i < kOthers; ++i) {
    tasks.push_back([&] {
      std::lock_guard<std::mutex> lock(mu);
      ++done;
      cv.notify_all();
    });
  }
  auto stats = exec::WorkStealingPool::Run(2, tasks);
  EXPECT_EQ(stats.tasks_run, 8);
  // Thread 0 held tasks {0, 2, 4, 6} and was blocked inside task 0; tasks
  // 2/4/6 can only have run via steals.
  EXPECT_GE(stats.steals, 3);
}

}  // namespace
}  // namespace flor
