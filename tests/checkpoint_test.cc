// Unit tests: checkpoint format, store + manifest, materializer strategies,
// spooler, with corruption-injection coverage.

#include <gtest/gtest.h>

#include "checkpoint/materializer.h"
#include "checkpoint/spool.h"
#include "common/strings.h"
#include "checkpoint/store.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "sim/cost_model.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace flor {
namespace {

TEST(CheckpointKey, ToStringAndEpoch) {
  CheckpointKey key{2, "e=17"};
  EXPECT_EQ(key.ToString(), "L2@e=17");
  EXPECT_EQ(key.EpochIndex(), 17);
  CheckpointKey nested{3, "e=4/i=2"};
  EXPECT_EQ(nested.ToString(), "L3@e=4.i=2");
  EXPECT_EQ(nested.EpochIndex(), 4);
  CheckpointKey top{1, ""};
  EXPECT_EQ(top.EpochIndex(), -1);
}

NamedSnapshots SampleSnapshots() {
  NamedSnapshots snaps;
  snaps.emplace_back("count", ir::SnapshotValue(ir::Value::Int(42)));
  Tensor t(Shape{16});
  Rng rng(3);
  ops::RandNormal(&t, &rng);
  snaps.emplace_back("weights",
                     ir::SnapshotValue(ir::Value::FromTensor(t)));
  snaps.emplace_back("name", ir::SnapshotValue(ir::Value::Str("flor")));
  return snaps;
}

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  NamedSnapshots snaps = SampleSnapshots();
  std::string bytes = EncodeCheckpoint(snaps);
  auto back = DecodeCheckpoint(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 3u);
  EXPECT_EQ((*back)[0].first, "count");
  EXPECT_EQ((*back)[0].second.int_v, 42);
  EXPECT_TRUE((*back)[1].second.tensor_v.Equals(snaps[1].second.tensor_v));
  EXPECT_EQ((*back)[2].second.str_v, "flor");
}

TEST(Checkpoint, ModuleAndOptimizerSnapshotsRoundTrip) {
  Rng rng(4);
  nn::Linear fc("fc", 4, 4, &rng);
  nn::Adam adam(&fc, 0.01f);
  ops::Fill(&fc.weight().grad, 0.1f);
  ASSERT_TRUE(adam.Step().ok());

  NamedSnapshots snaps;
  snaps.emplace_back("net", ir::SnapshotValue(ir::Value::ModuleRef(&fc)));
  snaps.emplace_back("opt",
                     ir::SnapshotValue(ir::Value::OptimizerRef(&adam)));
  auto back = DecodeCheckpoint(EncodeCheckpoint(snaps));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0].second.params.size(), 2u);  // weight + bias
  EXPECT_EQ((*back)[1].second.opt_kind, "adam");
  EXPECT_EQ((*back)[1].second.opt_steps, 1);
}

TEST(Checkpoint, AnyByteCorruptionDetected) {
  std::string bytes = EncodeCheckpoint(SampleSnapshots());
  // Sample positions across the frame (every 7th byte for speed).
  for (size_t i = 0; i < bytes.size(); i += 7) {
    std::string corrupted = bytes;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x40);
    EXPECT_FALSE(DecodeCheckpoint(corrupted).ok())
        << "undetected corruption at byte " << i;
  }
}

TEST(Checkpoint, RawBytesAccounting) {
  NamedSnapshots snaps = SampleSnapshots();
  const uint64_t raw = SnapshotsRawBytes(snaps);
  EXPECT_GT(raw, 16u * 4u);  // at least the tensor payload
}

TEST(Store, PutGetExistsAndTotals) {
  MemFileSystem fs;
  CheckpointStore store(&fs, "run/ckpt");
  CheckpointKey key{2, "e=0"};
  EXPECT_FALSE(store.Exists(key));
  std::string bytes = EncodeCheckpoint(SampleSnapshots());
  ASSERT_TRUE(store.PutBytes(key, bytes).ok());
  EXPECT_TRUE(store.Exists(key));
  auto back = store.Get(key);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 3u);
  EXPECT_EQ(store.TotalBytes(), bytes.size());
  EXPECT_TRUE(store.Get(CheckpointKey{2, "e=1"}).status().IsNotFound());
}

TEST(Store, CorruptionSurfacesOnRead) {
  MemFileSystem fs;
  CheckpointStore store(&fs, "ck");
  CheckpointKey key{1, "e=3"};
  ASSERT_TRUE(store.PutBytes(key, EncodeCheckpoint(SampleSnapshots())).ok());
  ASSERT_TRUE(fs.CorruptByte("ck/L1@e=3.ckpt", 10).ok());
  EXPECT_TRUE(store.Get(key).status().IsCorruption());
}

TEST(Manifest, SerializeRoundTrip) {
  Manifest m;
  m.workload = "RTE";
  m.record_runtime_seconds = 123.5;
  m.vanilla_runtime_seconds = 120.0;
  m.c_estimate = 1.38;
  m.loop_executions[2] = 200;
  for (int64_t e : {33, 66, 99}) {
    CheckpointRecord rec;
    rec.key = {2, StrCat("e=", e)};
    rec.epoch = e;
    rec.raw_bytes = 1000;
    rec.stored_bytes = 600;
    rec.nominal_raw_bytes = 4ull << 30;
    rec.materialize_seconds = 24.5;
    m.records.push_back(rec);
  }
  auto back = Manifest::Deserialize(m.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->workload, "RTE");
  EXPECT_DOUBLE_EQ(back->c_estimate, 1.38);
  EXPECT_EQ(back->loop_executions.at(2), 200);
  ASSERT_EQ(back->records.size(), 3u);
  EXPECT_EQ(back->records[1].epoch, 66);
  EXPECT_EQ(back->records[1].nominal_raw_bytes, 4ull << 30);
  EXPECT_EQ(back->EpochsWithCheckpoint(2),
            (std::vector<int64_t>{33, 66, 99}));
  EXPECT_TRUE(back->EpochsWithCheckpoint(7).empty());
  EXPECT_EQ(back->TotalStoredBytes(), 1800u);
  EXPECT_EQ(back->TotalNominalBytes(), 3ull * (4ull << 30));
}

TEST(Manifest, MalformedLineRejected) {
  EXPECT_FALSE(Manifest::Deserialize("garbage line\n").ok());
}

TEST(Materializer, SimStrategiesOrderedAsFig5) {
  // Main-thread cost: Baseline > IPC-Queue > IPC-Plasma >= Fork.
  const uint64_t bytes = 1100ull * 1000 * 1000;
  double main_cost[4];
  int i = 0;
  for (auto strategy :
       {MaterializeStrategy::kBaseline, MaterializeStrategy::kIpcQueue,
        MaterializeStrategy::kIpcPlasma, MaterializeStrategy::kFork}) {
    auto env = Env::NewSimEnv();
    MaterializerOptions opts;
    opts.strategy = strategy;
    opts.costs = sim::PaperPlatformCosts();
    Materializer mat(env.get(), opts);
    CheckpointStore store(env->fs(), "ck");
    auto receipt = mat.Materialize(&store, CheckpointKey{1, "e=0"},
                                   SampleSnapshots(), bytes);
    ASSERT_TRUE(receipt.ok());
    main_cost[i++] = receipt->main_thread_seconds;
  }
  EXPECT_GT(main_cost[0], main_cost[1]);
  EXPECT_GT(main_cost[1], main_cost[2]);
  EXPECT_GE(main_cost[2], main_cost[3]);  // Fork slightly ahead of Plasma
}

TEST(Materializer, BackpressureStallsWhenBufferFull) {
  auto env = Env::NewSimEnv();
  MaterializerOptions opts;
  opts.strategy = MaterializeStrategy::kFork;
  opts.costs = sim::PaperPlatformCosts();
  opts.max_in_flight = 2;
  Materializer mat(env.get(), opts);
  CheckpointStore store(env->fs(), "ck");
  const uint64_t huge = 4ull << 30;  // ~25s of background work each
  for (int e = 0; e < 4; ++e) {
    auto receipt = mat.Materialize(&store, CheckpointKey{1, StrCat("e=", e)},
                                   SampleSnapshots(), huge);
    ASSERT_TRUE(receipt.ok());
    if (e < 2) {
      EXPECT_DOUBLE_EQ(receipt->stall_seconds, 0.0);
    } else {
      EXPECT_GT(receipt->stall_seconds, 1.0);  // buffer full: stall
    }
  }
  EXPECT_GT(mat.total_stall_seconds(), 0.0);
}

TEST(Materializer, DrainAdvancesToLastCompletion) {
  auto env = Env::NewSimEnv();
  MaterializerOptions opts;
  opts.strategy = MaterializeStrategy::kFork;
  opts.costs = sim::PaperPlatformCosts();
  Materializer mat(env.get(), opts);
  CheckpointStore store(env->fs(), "ck");
  auto receipt = mat.Materialize(&store, CheckpointKey{1, "e=0"},
                                 SampleSnapshots(), 1ull << 30);
  ASSERT_TRUE(receipt.ok());
  const double before = env->clock()->NowSeconds();
  mat.Drain();
  EXPECT_GT(env->clock()->NowSeconds(), before);  // joined the children
}

using MaterializerScratchTest = testutil::ScratchDirTest;

TEST_F(MaterializerScratchTest, WallModeWritesForReal) {
  auto env = NewPosixEnv();
  MaterializerOptions opts;
  opts.strategy = MaterializeStrategy::kFork;
  Materializer mat(env.get(), opts);
  CheckpointStore store(env->fs(), "ck");
  CheckpointKey key{1, "e=0"};
  auto receipt = mat.Materialize(&store, key, SampleSnapshots(), 0);
  ASSERT_TRUE(receipt.ok());
  mat.Drain();
  auto back = store.Get(key);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->size(), 3u);
}

TEST(Materializer, CostModelHelpers) {
  MaterializerCosts costs = sim::PaperPlatformCosts();
  const uint64_t gb = 1ull << 30;
  // serialization ~4.3x I/O (paper §5.1).
  const double ser = static_cast<double>(gb) / costs.serialize_bps;
  const double io = static_cast<double>(gb) / costs.io_bps;
  EXPECT_NEAR(ser / io, 4.3, 0.01);
  EXPECT_NEAR(costs.RestoreSeconds(gb) / costs.MaterializeSeconds(gb), 1.38,
              1e-9);
}

TEST(Spool, CopiesAndPrices) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("run/ckpt/a", std::string(1024, 'x')).ok());
  ASSERT_TRUE(fs.WriteFile("run/ckpt/b", std::string(2048, 'y')).ok());
  auto report = SpoolToS3(&fs, "run/ckpt/", "s3/ckpt/");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->objects, 2);
  EXPECT_EQ(report->bytes, 3072u);
  EXPECT_TRUE(fs.Exists("s3/ckpt/a"));
  EXPECT_TRUE(fs.Exists("s3/ckpt/b"));
  EXPECT_DOUBLE_EQ(report->monthly_cost_dollars, S3MonthlyCost(3072));
}

TEST(Spool, S3PricingMatchesPaperBallpark) {
  // 14 GB (RTE's Table 4 footprint) should cost ~ $0.32/month.
  EXPECT_NEAR(S3MonthlyCost(14ull << 30), 0.322, 0.01);
  // "we can store 130 GB for a month, at the same cost as running a
  // single-GPU instance for an hour" — P3.2xLarge is $3.06/h.
  EXPECT_NEAR(S3MonthlyCost(130ull << 30), sim::kP3_2xLarge.dollars_per_hour,
              0.2);
}

}  // namespace
}  // namespace flor
