// Unit tests: checkpoint format, store + manifest, materializer strategies,
// spooler, with corruption-injection coverage.

#include <gtest/gtest.h>

#include "checkpoint/materializer.h"
#include "checkpoint/spool.h"
#include "common/strings.h"
#include "checkpoint/store.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "sim/cost_model.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace flor {
namespace {

TEST(CheckpointKey, ToStringAndEpoch) {
  CheckpointKey key{2, "e=17"};
  EXPECT_EQ(key.ToString(), "L2@e=17");
  EXPECT_EQ(key.EpochIndex(), 17);
  CheckpointKey nested{3, "e=4/i=2"};
  EXPECT_EQ(nested.ToString(), "L3@e=4.i=2");
  EXPECT_EQ(nested.EpochIndex(), 4);
  CheckpointKey top{1, ""};
  EXPECT_EQ(top.EpochIndex(), -1);
}

NamedSnapshots SampleSnapshots() {
  NamedSnapshots snaps;
  snaps.emplace_back("count", ir::SnapshotValue(ir::Value::Int(42)));
  Tensor t(Shape{16});
  Rng rng = testutil::SeededRng(3);
  ops::RandNormal(&t, &rng);
  snaps.emplace_back("weights",
                     ir::SnapshotValue(ir::Value::FromTensor(t)));
  snaps.emplace_back("name", ir::SnapshotValue(ir::Value::Str("flor")));
  return snaps;
}

TEST(Checkpoint, EncodeDecodeRoundTrip) {
  NamedSnapshots snaps = SampleSnapshots();
  std::string bytes = EncodeCheckpoint(snaps);
  auto back = DecodeCheckpoint(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->size(), 3u);
  EXPECT_EQ((*back)[0].first, "count");
  EXPECT_EQ((*back)[0].second.int_v, 42);
  EXPECT_TRUE((*back)[1].second.tensor_v.Equals(snaps[1].second.tensor_v));
  EXPECT_EQ((*back)[2].second.str_v, "flor");
}

TEST(Checkpoint, ModuleAndOptimizerSnapshotsRoundTrip) {
  Rng rng = testutil::SeededRng(4);
  nn::Linear fc("fc", 4, 4, &rng);
  nn::Adam adam(&fc, 0.01f);
  ops::Fill(&fc.weight().grad, 0.1f);
  ASSERT_TRUE(adam.Step().ok());

  NamedSnapshots snaps;
  snaps.emplace_back("net", ir::SnapshotValue(ir::Value::ModuleRef(&fc)));
  snaps.emplace_back("opt",
                     ir::SnapshotValue(ir::Value::OptimizerRef(&adam)));
  auto back = DecodeCheckpoint(EncodeCheckpoint(snaps));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)[0].second.params.size(), 2u);  // weight + bias
  EXPECT_EQ((*back)[1].second.opt_kind, "adam");
  EXPECT_EQ((*back)[1].second.opt_steps, 1);
}

TEST(Checkpoint, AnyByteCorruptionDetected) {
  std::string bytes = EncodeCheckpoint(SampleSnapshots());
  // Sample positions across the frame (every 7th byte for speed).
  for (size_t i = 0; i < bytes.size(); i += 7) {
    std::string corrupted = bytes;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x40);
    EXPECT_FALSE(DecodeCheckpoint(corrupted).ok())
        << "undetected corruption at byte " << i;
  }
}

TEST(Checkpoint, RawBytesAccounting) {
  NamedSnapshots snaps = SampleSnapshots();
  const uint64_t raw = SnapshotsRawBytes(snaps);
  EXPECT_GT(raw, 16u * 4u);  // at least the tensor payload
}

TEST(Store, PutGetExistsAndTotals) {
  MemFileSystem fs;
  CheckpointStore store(&fs, "run/ckpt");
  CheckpointKey key{2, "e=0"};
  EXPECT_FALSE(store.Exists(key));
  std::string bytes = EncodeCheckpoint(SampleSnapshots());
  ASSERT_TRUE(store.PutBytes(key, bytes).ok());
  EXPECT_TRUE(store.Exists(key));
  auto back = store.Get(key);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 3u);
  EXPECT_EQ(store.TotalBytes(), bytes.size());
  EXPECT_TRUE(store.Get(CheckpointKey{2, "e=1"}).status().IsNotFound());
}

TEST(Store, CorruptionSurfacesOnRead) {
  MemFileSystem fs;
  CheckpointStore store(&fs, "ck");
  CheckpointKey key{1, "e=3"};
  ASSERT_TRUE(store.PutBytes(key, EncodeCheckpoint(SampleSnapshots())).ok());
  ASSERT_TRUE(fs.CorruptByte("ck/L1@e=3.ckpt", 10).ok());
  EXPECT_TRUE(store.Get(key).status().IsCorruption());
}

TEST(Manifest, SerializeRoundTrip) {
  Manifest m;
  m.workload = "RTE";
  m.record_runtime_seconds = 123.5;
  m.vanilla_runtime_seconds = 120.0;
  m.c_estimate = 1.38;
  m.loop_executions[2] = 200;
  for (int64_t e : {33, 66, 99}) {
    CheckpointRecord rec;
    rec.key = {2, StrCat("e=", e)};
    rec.epoch = e;
    rec.raw_bytes = 1000;
    rec.stored_bytes = 600;
    rec.nominal_raw_bytes = 4ull << 30;
    rec.materialize_seconds = 24.5;
    m.records.push_back(rec);
  }
  auto back = Manifest::Deserialize(m.Serialize());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->workload, "RTE");
  EXPECT_DOUBLE_EQ(back->c_estimate, 1.38);
  EXPECT_EQ(back->loop_executions.at(2), 200);
  ASSERT_EQ(back->records.size(), 3u);
  EXPECT_EQ(back->records[1].epoch, 66);
  EXPECT_EQ(back->records[1].nominal_raw_bytes, 4ull << 30);
  EXPECT_EQ(back->EpochsWithCheckpoint(2),
            (std::vector<int64_t>{33, 66, 99}));
  EXPECT_TRUE(back->EpochsWithCheckpoint(7).empty());
  EXPECT_EQ(back->TotalStoredBytes(), 1800u);
  EXPECT_EQ(back->TotalNominalBytes(), 3ull * (4ull << 30));
}

TEST(Manifest, MalformedLineRejected) {
  EXPECT_FALSE(Manifest::Deserialize("garbage line\n").ok());
}

Manifest ShardedManifest(int shard_count, int records) {
  Manifest m;
  m.workload = "RsNt";
  m.record_runtime_seconds = 50.25;
  m.vanilla_runtime_seconds = 48.5;
  m.c_estimate = 1.41;
  m.shard_count = shard_count;
  m.loop_executions[2] = 64;
  ShardRouter router(shard_count);
  for (int e = 0; e < records; ++e) {
    CheckpointRecord rec;
    rec.key = {2, StrCat("e=", e)};
    rec.epoch = e;
    rec.raw_bytes = 512;
    rec.stored_bytes = 300;
    rec.materialize_seconds = 1.5;
    rec.shard = router.ShardOf(rec.key);
    m.records.push_back(rec);
  }
  return m;
}

TEST(Manifest, ShardCountRoundTrips) {
  Manifest m = ShardedManifest(/*shard_count=*/8, /*records=*/12);
  const std::string bytes = m.Serialize();
  EXPECT_NE(bytes.find("shards\t8"), std::string::npos);
  auto back = Manifest::Deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->shard_count, 8);
  ASSERT_EQ(back->records.size(), 12u);
  for (size_t i = 0; i < back->records.size(); ++i)
    EXPECT_EQ(back->records[i].shard, m.records[i].shard) << i;
}

TEST(Manifest, UnshardedSerializationIsByteStableLegacyFormat) {
  // At shard count 1 the output must carry no shard fields at all: the
  // bytes are identical to what the pre-sharding code wrote, so old and
  // new manifests are interchangeable for unsharded runs.
  Manifest m = ShardedManifest(/*shard_count=*/1, /*records=*/3);
  const std::string bytes = m.Serialize();
  EXPECT_EQ(bytes.find("shards"), std::string::npos);
  for (const auto& line : StrSplit(bytes, '\n')) {
    if (StartsWith(line, "ckpt\t")) {
      EXPECT_EQ(StrSplit(line, '\t').size(), 8u) << line;
    }
  }
  auto back = Manifest::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->shard_count, 1);
}

TEST(Manifest, OldFormatDeserializesAsSingleShardAndRoundTrips) {
  // A manifest written before sharding existed (8-field ckpt lines, no
  // `shards` line) must load as shard count 1 and survive a round trip
  // through the new code unchanged.
  const std::string old_format =
      "workload\tRTE\n"
      "record_runtime\t123.5\n"
      "vanilla_runtime\t120\n"
      "c_estimate\t1.38\n"
      "loop_exec\t2\t200\n"
      "ckpt\t2\te=33\t33\t1000\t600\t4294967296\t24.5\n"
      "ckpt\t2\te=66\t66\t1000\t600\t4294967296\t24.5\n";
  auto m = Manifest::Deserialize(old_format);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m->shard_count, 1);
  ASSERT_EQ(m->records.size(), 2u);
  EXPECT_EQ(m->records[0].shard, 0);
  EXPECT_EQ(m->Serialize(), old_format);
}

TEST(Manifest, TruncatedInputNeverCrashesOrSilentlyDefaults) {
  // Mirror of the serialize-suite strict-prefix tests: deserializing any
  // strict prefix either succeeds or reports Corruption — never a crash,
  // never another code. (A cut inside a decimal can legitimately parse —
  // "50.2" is a prefix of "50.25" — but a cut that leaves a dangling tag
  // or an empty numeric field must be Corruption, not a zero default.)
  const std::string full = ShardedManifest(4, 6).Serialize();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    const std::string prefix = full.substr(0, cut);
    auto got = Manifest::Deserialize(prefix);
    if (!got.ok()) {
      EXPECT_TRUE(got.status().IsCorruption()) << "cut=" << cut;
    } else if (cut > 0 && full[cut - 1] == '\t' &&
               !StartsWith(prefix.substr(prefix.rfind('\n') + 1),
                           "workload")) {
      // A numeric line truncated at a field separator has an empty last
      // field — that must never parse as zero. (The workload line is
      // exempt: an empty workload string is representable.)
      ADD_FAILURE() << "cut=" << cut
                    << " accepted a line truncated at a field separator";
    }
    // Every prefix ending on a line boundary is a complete (shorter)
    // manifest and must parse.
    if (prefix.empty() || prefix.back() == '\n') {
      EXPECT_TRUE(got.ok()) << "cut=" << cut << ": "
                            << got.status().ToString();
    }
  }
}

TEST(Manifest, NonNumericFieldsAreCorruptionNotZero) {
  // The permissive strtod/strtol behavior used to turn garbage into 0;
  // every numeric field must now be parsed strictly.
  EXPECT_TRUE(Manifest::Deserialize("record_runtime\tfast\n")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(Manifest::Deserialize("c_estimate\t1.2.3\n")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(Manifest::Deserialize("shards\tmany\n")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(Manifest::Deserialize("shards\t0\n").status().IsCorruption());
  EXPECT_TRUE(Manifest::Deserialize("loop_exec\tx\t3\n")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(
      Manifest::Deserialize("ckpt\t2\te=1\t1\t10e\t6\t0\t1.5\n")
          .status()
          .IsCorruption());
  EXPECT_TRUE(
      Manifest::Deserialize("ckpt\t2\te=1\t1\t10\t6\t0\t1.5\t-2\n")
          .status()
          .IsCorruption());
  // Record shard beyond the declared shard count is inconsistent.
  EXPECT_TRUE(Manifest::Deserialize(
                  "shards\t2\nckpt\t2\te=1\t1\t10\t6\t0\t1.5\t5\n")
                  .status()
                  .IsCorruption());
  // Out-of-int-range shard values must be Corruption, never a silent
  // narrowing wrap (2^32 would wrap to 0 and pass the shard-count check).
  EXPECT_TRUE(Manifest::Deserialize(
                  "shards\t2\nckpt\t2\te=1\t1\t10\t6\t0\t1.5\t4294967296\n")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(Manifest::Deserialize(
                  "shards\t2\nckpt\t2\te=1\t1\t10\t6\t0\t1.5\t2147483648\n")
                  .status()
                  .IsCorruption());
}

TEST(Manifest, GarbageBytesFuzz) {
  // Random mutations of a valid manifest must parse, or fail with
  // Corruption — nothing else (no crashes, no other codes).
  const std::string full = ShardedManifest(4, 6).Serialize();
  Rng rng = testutil::SeededRng(97);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = full;
    const int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      const size_t pos = rng.Uniform(mutated.size());
      mutated[pos] = static_cast<char>(rng.Uniform(256));
    }
    auto got = Manifest::Deserialize(mutated);
    if (!got.ok()) {
      EXPECT_TRUE(got.status().IsCorruption()) << "trial " << trial;
    }
  }
}

TEST(ShardRouter, PlacementIsDeterministicAndInRange) {
  ShardRouter router(16);
  for (int i = 0; i < 200; ++i) {
    const CheckpointKey key{3, StrCat("e=", i)};
    const int shard = router.ShardOf(key);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 16);
    EXPECT_EQ(shard, router.ShardOf(key));  // pure function of the key
  }
  // Single-shard router keeps the legacy flat layout.
  ShardRouter flat(1);
  EXPECT_EQ(flat.ShardOf(CheckpointKey{3, "e=7"}), 0);
  EXPECT_EQ(flat.PathFor("run/ckpt", CheckpointKey{3, "e=7"}),
            "run/ckpt/L3@e=7.ckpt");
  EXPECT_EQ(router.ShardPrefix("run/ckpt", 7), "run/ckpt/shard-0007");
}

TEST(ShardRouter, SpreadsKeysAcrossShards) {
  // CRC32C placement over many keys should touch every shard and keep the
  // heaviest shard within a small factor of fair share.
  const int kShards = 8;
  const int kKeys = 800;
  ShardRouter router(kShards);
  std::vector<int> count(kShards, 0);
  for (int i = 0; i < kKeys; ++i)
    ++count[static_cast<size_t>(router.ShardOf(CheckpointKey{
        2, StrCat("e=", i)}))];
  for (int s = 0; s < kShards; ++s) {
    EXPECT_GT(count[s], 0) << "shard " << s << " unused";
    EXPECT_LT(count[s], 2 * kKeys / kShards) << "shard " << s << " hot";
  }
}

TEST(Store, ShardedPutGetAndLayout) {
  MemFileSystem fs;
  CheckpointStore store(&fs, "run/ckpt", /*num_shards=*/4);
  EXPECT_EQ(store.num_shards(), 4);

  std::string bytes = EncodeCheckpoint(SampleSnapshots());
  uint64_t total = 0;
  for (int e = 0; e < 10; ++e) {
    CheckpointKey key{2, StrCat("e=", e)};
    ASSERT_TRUE(store.PutBytes(key, bytes).ok());
    total += bytes.size();
    // The object lives exactly at its routed shard path.
    const std::string path = store.PathFor(key);
    EXPECT_NE(path.find(StrFormat("shard-%04d", store.ShardOf(key))),
              std::string::npos);
    EXPECT_TRUE(fs.Exists(path));
    auto back = store.Get(key);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->size(), 3u);
  }
  EXPECT_EQ(store.TotalBytes(), total);

  // Per-shard write stats cover every object, on the routed shards.
  auto stats = store.WriteStatsByShard();
  ASSERT_EQ(stats.size(), 4u);
  int64_t objects = 0;
  uint64_t stat_bytes = 0;
  for (const auto& s : stats) {
    objects += s.objects;
    stat_bytes += s.bytes;
  }
  EXPECT_EQ(objects, 10);
  EXPECT_EQ(stat_bytes, total);
}

TEST(Store, SingleShardMatchesLegacyFlatLayout) {
  MemFileSystem fs;
  CheckpointStore store(&fs, "run/ckpt", /*num_shards=*/1);
  CheckpointKey key{2, "e=0"};
  ASSERT_TRUE(store.PutBytes(key, "payload").ok());
  // Exactly the pre-sharding path — no shard directory.
  EXPECT_TRUE(fs.Exists("run/ckpt/L2@e=0.ckpt"));
  EXPECT_EQ(store.PathFor(key), "run/ckpt/L2@e=0.ckpt");
}

TEST(Materializer, SimStrategiesOrderedAsFig5) {
  // Main-thread cost: Baseline > IPC-Queue > IPC-Plasma >= Fork.
  const uint64_t bytes = 1100ull * 1000 * 1000;
  double main_cost[4];
  int i = 0;
  for (auto strategy :
       {MaterializeStrategy::kBaseline, MaterializeStrategy::kIpcQueue,
        MaterializeStrategy::kIpcPlasma, MaterializeStrategy::kFork}) {
    auto env = Env::NewSimEnv();
    MaterializerOptions opts;
    opts.strategy = strategy;
    opts.costs = sim::PaperPlatformCosts();
    Materializer mat(env.get(), opts);
    CheckpointStore store(env->fs(), "ck");
    auto receipt = mat.Materialize(&store, CheckpointKey{1, "e=0"},
                                   SampleSnapshots(), bytes);
    ASSERT_TRUE(receipt.ok());
    main_cost[i++] = receipt->main_thread_seconds;
  }
  EXPECT_GT(main_cost[0], main_cost[1]);
  EXPECT_GT(main_cost[1], main_cost[2]);
  EXPECT_GE(main_cost[2], main_cost[3]);  // Fork slightly ahead of Plasma
}

TEST(Materializer, BackpressureStallsWhenBufferFull) {
  auto env = Env::NewSimEnv();
  MaterializerOptions opts;
  opts.strategy = MaterializeStrategy::kFork;
  opts.costs = sim::PaperPlatformCosts();
  opts.max_in_flight = 2;
  Materializer mat(env.get(), opts);
  CheckpointStore store(env->fs(), "ck");
  const uint64_t huge = 4ull << 30;  // ~25s of background work each
  for (int e = 0; e < 4; ++e) {
    auto receipt = mat.Materialize(&store, CheckpointKey{1, StrCat("e=", e)},
                                   SampleSnapshots(), huge);
    ASSERT_TRUE(receipt.ok());
    if (e < 2) {
      EXPECT_DOUBLE_EQ(receipt->stall_seconds, 0.0);
    } else {
      EXPECT_GT(receipt->stall_seconds, 1.0);  // buffer full: stall
    }
  }
  EXPECT_GT(mat.total_stall_seconds(), 0.0);
}

TEST(Materializer, DrainAdvancesToLastCompletion) {
  auto env = Env::NewSimEnv();
  MaterializerOptions opts;
  opts.strategy = MaterializeStrategy::kFork;
  opts.costs = sim::PaperPlatformCosts();
  Materializer mat(env.get(), opts);
  CheckpointStore store(env->fs(), "ck");
  auto receipt = mat.Materialize(&store, CheckpointKey{1, "e=0"},
                                 SampleSnapshots(), 1ull << 30);
  ASSERT_TRUE(receipt.ok());
  const double before = env->clock()->NowSeconds();
  mat.Drain();
  EXPECT_GT(env->clock()->NowSeconds(), before);  // joined the children
}

using MaterializerScratchTest = testutil::ScratchDirTest;

TEST_F(MaterializerScratchTest, WallModeWritesForReal) {
  auto env = NewPosixEnv();
  MaterializerOptions opts;
  opts.strategy = MaterializeStrategy::kFork;
  Materializer mat(env.get(), opts);
  CheckpointStore store(env->fs(), "ck");
  CheckpointKey key{1, "e=0"};
  auto receipt = mat.Materialize(&store, key, SampleSnapshots(), 0);
  ASSERT_TRUE(receipt.ok());
  mat.Drain();
  auto back = store.Get(key);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->size(), 3u);
}

TEST(Materializer, CostModelHelpers) {
  MaterializerCosts costs = sim::PaperPlatformCosts();
  const uint64_t gb = 1ull << 30;
  // serialization ~4.3x I/O (paper §5.1).
  const double ser = static_cast<double>(gb) / costs.serialize_bps;
  const double io = static_cast<double>(gb) / costs.io_bps;
  EXPECT_NEAR(ser / io, 4.3, 0.01);
  EXPECT_NEAR(costs.RestoreSeconds(gb) / costs.MaterializeSeconds(gb), 1.38,
              1e-9);
}

TEST(Spool, CopiesAndPrices) {
  MemFileSystem fs;
  ASSERT_TRUE(fs.WriteFile("run/ckpt/a", std::string(1024, 'x')).ok());
  ASSERT_TRUE(fs.WriteFile("run/ckpt/b", std::string(2048, 'y')).ok());
  auto report = SpoolToS3(&fs, "run/ckpt/", "s3/ckpt/");
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->objects, 2);
  EXPECT_EQ(report->bytes, 3072u);
  EXPECT_TRUE(fs.Exists("s3/ckpt/a"));
  EXPECT_TRUE(fs.Exists("s3/ckpt/b"));
  EXPECT_DOUBLE_EQ(report->monthly_cost_dollars, S3MonthlyCost(3072));
}

TEST(Spool, S3PricingMatchesPaperBallpark) {
  // 14 GB (RTE's Table 4 footprint) should cost ~ $0.32/month.
  EXPECT_NEAR(S3MonthlyCost(14ull << 30), 0.322, 0.01);
  // "we can store 130 GB for a month, at the same cost as running a
  // single-GPU instance for an hour" — P3.2xLarge is $3.06/h.
  EXPECT_NEAR(S3MonthlyCost(130ull << 30), sim::kP3_2xLarge.dollars_per_hour,
              0.2);
}

}  // namespace
}  // namespace flor
