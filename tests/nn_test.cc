// Unit tests: layers (incl. gradient checks), losses, optimizers,
// schedulers, and model state serialization.

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/scheduler.h"
#include "nn/serialize.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace flor {
namespace nn {
namespace {

/// Central-difference gradient check of dLoss/dParam for one parameter
/// element, where loss = sum(Forward(x)).
void CheckParamGradient(Module* layer, const Tensor& x, Parameter* param,
                        int64_t elem, float tol = 2e-2f) {
  layer->ZeroGrad();
  auto y = layer->Forward(x);
  ASSERT_TRUE(y.ok()) << y.status().ToString();
  Tensor ones(y->shape());
  ops::Fill(&ones, 1.0f);
  ASSERT_TRUE(layer->Backward(ones).ok());
  const float analytic = param->grad.at(elem);

  const float eps = 1e-3f;
  const float saved = param->value.at(elem);
  param->value.f32()[elem] = saved + eps;
  float plus = ops::Sum(*layer->Forward(x));
  param->value.f32()[elem] = saved - eps;
  float minus = ops::Sum(*layer->Forward(x));
  param->value.f32()[elem] = saved;
  const float numeric = (plus - minus) / (2 * eps);
  EXPECT_NEAR(analytic, numeric,
              tol * std::max(1.0f, std::fabs(numeric)));
}

TEST(Linear, ForwardShapeAndBias) {
  Rng rng = testutil::SeededRng(1);
  Linear fc("fc", 3, 2, &rng);
  ops::Fill(&fc.weight().value, 0.0f);
  fc.bias().value.f32()[0] = 1.5f;
  fc.bias().value.f32()[1] = -2.0f;
  Tensor x(Shape{4, 3});
  auto y = fc.Forward(x);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->shape(), (Shape{4, 2}));
  EXPECT_EQ(y->at(0), 1.5f);
  EXPECT_EQ(y->at(1), -2.0f);
}

TEST(Linear, RejectsWrongInput) {
  Rng rng = testutil::SeededRng(1);
  Linear fc("fc", 3, 2, &rng);
  EXPECT_FALSE(fc.Forward(Tensor(Shape{4, 5})).ok());
}

TEST(Linear, GradientCheck) {
  Rng rng = testutil::SeededRng(2);
  Linear fc("fc", 4, 3, &rng);
  Tensor x(Shape{2, 4});
  ops::RandNormal(&x, &rng);
  CheckParamGradient(&fc, x, &fc.weight(), 0);
  CheckParamGradient(&fc, x, &fc.weight(), 7);
  CheckParamGradient(&fc, x, &fc.bias(), 1);
}

TEST(Conv2d, GradientCheck) {
  Rng rng = testutil::SeededRng(3);
  Conv2d conv("conv", 2, 3, 3, 1, &rng);
  Tensor x(Shape{1, 2, 5, 5});
  ops::RandNormal(&x, &rng);
  Parameter* kernel = conv.LocalParameters()[0];
  CheckParamGradient(&conv, x, kernel, 0);
  CheckParamGradient(&conv, x, kernel, 11);
}

TEST(Embedding, LookupAndGrad) {
  Rng rng = testutil::SeededRng(4);
  Embedding emb("emb", 10, 4, &rng);
  Tensor ids(Shape{2, 3}, std::vector<int64_t>{0, 1, 2, 3, 4, 5});
  auto y = emb.Forward(ids);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->shape(), (Shape{2, 12}));
  // Row 0 of output begins with table row 0.
  Parameter* table = emb.LocalParameters()[0];
  EXPECT_EQ(y->at(0), table->value.at(0));

  emb.ZeroGrad();
  Tensor g(y->shape());
  ops::Fill(&g, 1.0f);
  ASSERT_TRUE(emb.Backward(g).ok());
  // Token 0 used once => its grad row is all ones; token 9 unused => zero.
  EXPECT_EQ(table->grad.at(0), 1.0f);
  EXPECT_EQ(table->grad.at(9 * 4), 0.0f);
}

TEST(Embedding, RejectsOutOfVocab) {
  Rng rng = testutil::SeededRng(4);
  Embedding emb("emb", 4, 2, &rng);
  Tensor ids(Shape{1, 1}, std::vector<int64_t>{7});
  EXPECT_FALSE(emb.Forward(ids).ok());
}

TEST(LayerNorm, NormalizesRows) {
  LayerNorm ln("ln", 8);
  Rng rng = testutil::SeededRng(5);
  Tensor x(Shape{3, 8});
  ops::RandNormal(&x, &rng, 5.0f);
  auto y = ln.Forward(x);
  ASSERT_TRUE(y.ok());
  for (int64_t r = 0; r < 3; ++r) {
    double mean = 0, var = 0;
    for (int64_t c = 0; c < 8; ++c) mean += y->at(r * 8 + c);
    mean /= 8;
    for (int64_t c = 0; c < 8; ++c) {
      double d = y->at(r * 8 + c) - mean;
      var += d * d;
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNorm, GradientCheck) {
  LayerNorm ln("ln", 6);
  Rng rng = testutil::SeededRng(6);
  Tensor x(Shape{2, 6});
  ops::RandNormal(&x, &rng);
  auto params = ln.LocalParameters();
  CheckParamGradient(&ln, x, params[0], 2);  // gain
  CheckParamGradient(&ln, x, params[1], 3);  // bias
}

TEST(Dropout, DeterministicWithSeededRng) {
  Rng r1 = testutil::SeededRng(7), r2 = testutil::SeededRng(7);
  Dropout d1("d", 0.5f, &r1), d2("d", 0.5f, &r2);
  Tensor x(Shape{64});
  ops::Fill(&x, 1.0f);
  auto y1 = d1.Forward(x);
  auto y2 = d2.Forward(x);
  ASSERT_TRUE(y1.ok());
  EXPECT_TRUE(y1->Equals(*y2));
  // Eval mode is the identity.
  d1.set_training(false);
  EXPECT_TRUE((*d1.Forward(x)).Equals(x));
}

TEST(Sequential, ComposesAndCollectsParams) {
  Rng rng = testutil::SeededRng(8);
  auto mlp = BuildMlp("mlp", {4, 8, 2}, &rng);
  EXPECT_EQ(mlp->Parameters().size(), 4u);  // 2 Linear layers x (W, b)
  EXPECT_EQ(mlp->ParameterCount(), 4 * 8 + 8 + 8 * 2 + 2);
  Tensor x(Shape{3, 4});
  auto y = mlp->Forward(x);
  ASSERT_TRUE(y.ok());
  EXPECT_EQ(y->shape(), (Shape{3, 2}));
}

TEST(Module, FreezeMatching) {
  Rng rng = testutil::SeededRng(9);
  auto mlp = BuildMlp("mlp", {4, 8, 2}, &rng);
  const int frozen = mlp->FreezeMatching(".fc0");
  EXPECT_EQ(frozen, 2);  // weight + bias of first layer
  int count = 0;
  for (auto* p : mlp->Parameters())
    if (p->frozen) ++count;
  EXPECT_EQ(count, 2);
}

TEST(Loss, SoftmaxCrossEntropyGradSumsToZeroPerRow) {
  Rng rng = testutil::SeededRng(10);
  Tensor logits(Shape{4, 5});
  ops::RandNormal(&logits, &rng);
  Tensor labels(Shape{4}, std::vector<int64_t>{0, 1, 2, 3});
  auto lr = SoftmaxCrossEntropy(logits, labels);
  ASSERT_TRUE(lr.ok());
  EXPECT_GT(lr->loss, 0.0f);
  for (int64_t r = 0; r < 4; ++r) {
    float sum = 0;
    for (int64_t c = 0; c < 5; ++c) sum += lr->grad_logits.at(r * 5 + c);
    EXPECT_NEAR(sum, 0.0f, 1e-5f);
  }
}

TEST(Loss, MseKnownValue) {
  Tensor pred(Shape{2}, std::vector<float>{1, 3});
  Tensor target(Shape{2}, std::vector<float>{1, 1});
  auto lr = MseLoss(pred, target);
  ASSERT_TRUE(lr.ok());
  EXPECT_NEAR(lr->loss, 2.0f, 1e-6f);       // (0 + 4) / 2
  EXPECT_NEAR(lr->grad_logits.at(1), 2.0f, 1e-6f);  // 2*(3-1)/2
}

TEST(Sgd, DescendsQuadratic) {
  // Minimize sum((w - 3)^2) via handmade grads.
  Rng rng = testutil::SeededRng(11);
  Linear fc("fc", 1, 1, &rng);
  Sgd sgd(&fc, 0.1f);
  for (int step = 0; step < 100; ++step) {
    fc.ZeroGrad();
    const float w = fc.weight().value.at(0);
    fc.weight().grad.f32()[0] = 2 * (w - 3.0f);
    ASSERT_TRUE(sgd.Step().ok());
  }
  EXPECT_NEAR(fc.weight().value.at(0), 3.0f, 1e-3f);
  EXPECT_EQ(sgd.step_count(), 100);
}

TEST(Sgd, RespectsFrozenParameters) {
  Rng rng = testutil::SeededRng(12);
  Linear fc("fc", 2, 2, &rng);
  fc.weight().frozen = true;
  const Tensor before = fc.weight().value.Clone();
  ops::Fill(&fc.weight().grad, 1.0f);
  ops::Fill(&fc.bias().grad, 1.0f);
  Sgd sgd(&fc, 0.5f);
  ASSERT_TRUE(sgd.Step().ok());
  EXPECT_TRUE(fc.weight().value.Equals(before));
  EXPECT_NE(fc.bias().value.at(0), 0.0f);
}

TEST(Sgd, MomentumAccelerates) {
  Rng rng = testutil::SeededRng(13);
  Linear a("a", 1, 1, &rng), b("b", 1, 1, &rng);
  ops::Fill(&a.weight().value, 10.0f);
  ops::Fill(&b.weight().value, 10.0f);
  Sgd plain(&a, 0.01f, 0.0f);
  Sgd momentum(&b, 0.01f, 0.9f);
  for (int i = 0; i < 20; ++i) {
    ops::Fill(&a.weight().grad, 1.0f);
    ops::Fill(&b.weight().grad, 1.0f);
    ASSERT_TRUE(plain.Step().ok());
    ASSERT_TRUE(momentum.Step().ok());
  }
  EXPECT_LT(b.weight().value.at(0), a.weight().value.at(0));
}

TEST(Adam, DescendsQuadratic) {
  Rng rng = testutil::SeededRng(14);
  Linear fc("fc", 1, 1, &rng);
  ops::Fill(&fc.weight().value, -4.0f);
  Adam adam(&fc, 0.1f);
  for (int step = 0; step < 300; ++step) {
    fc.ZeroGrad();
    const float w = fc.weight().value.at(0);
    fc.weight().grad.f32()[0] = 2 * (w - 1.0f);
    ASSERT_TRUE(adam.Step().ok());
  }
  EXPECT_NEAR(fc.weight().value.at(0), 1.0f, 0.05f);
}

TEST(Adam, AdamWDecaysWeights) {
  Rng rng = testutil::SeededRng(15);
  Linear fc("fc", 1, 1, &rng);
  ops::Fill(&fc.weight().value, 5.0f);
  ops::Fill(&fc.bias().value, 5.0f);
  Adam adamw(&fc, 0.0f, 0.9f, 0.999f, 1e-8f, /*wd=*/0.1f, /*adamw=*/true);
  // lr=0 disables the gradient path... but AdamW couples wd with lr, so use
  // a tiny lr and zero grads: only decay acts.
  adamw.set_lr(0.1f);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(adamw.Step().ok());
  EXPECT_LT(fc.weight().value.at(0), 5.0f);
}

TEST(Scheduler, StepLrHalves) {
  Rng rng = testutil::SeededRng(16);
  Linear fc("fc", 1, 1, &rng);
  Sgd sgd(&fc, 1.0f);
  StepLr sched(&sgd, 2, 0.5f);
  sched.Step();  // epoch 1
  EXPECT_FLOAT_EQ(sgd.lr(), 1.0f);
  sched.Step();  // epoch 2
  EXPECT_FLOAT_EQ(sgd.lr(), 0.5f);
  sched.Step();
  sched.Step();  // epoch 4
  EXPECT_FLOAT_EQ(sgd.lr(), 0.25f);
}

TEST(Scheduler, CosineDecaysToMin) {
  Rng rng = testutil::SeededRng(17);
  Linear fc("fc", 1, 1, &rng);
  Sgd sgd(&fc, 1.0f);
  CosineLr sched(&sgd, 10, 0.0f);
  float prev = 2.0f;
  for (int e = 0; e < 10; ++e) {
    sched.Step();
    EXPECT_LT(sgd.lr(), prev);
    prev = sgd.lr();
  }
  EXPECT_NEAR(sgd.lr(), 0.0f, 1e-5f);
}

TEST(Scheduler, CyclicOscillates) {
  Rng rng = testutil::SeededRng(18);
  Linear fc("fc", 1, 1, &rng);
  Sgd sgd(&fc, 0.1f);
  CyclicLr sched(&sgd, 1.0f, 4);
  sched.Step();
  sched.Step();  // peak of triangle
  EXPECT_NEAR(sgd.lr(), 1.0f, 1e-5f);
  sched.Step();
  sched.Step();  // back to base
  EXPECT_NEAR(sgd.lr(), 0.1f, 1e-5f);
}

TEST(Serialize, ModuleStateRoundTrip) {
  Rng rng = testutil::SeededRng(19);
  auto src = BuildMlp("mlp", {4, 6, 2}, &rng);
  Rng rng2 = testutil::SeededRng(20);  // different init
  auto dst = BuildMlp("mlp", {4, 6, 2}, &rng2);
  EXPECT_NE(src->StateFingerprint(), dst->StateFingerprint());

  std::string bytes;
  EncodeModuleState(&bytes, src.get());
  Decoder dec(bytes);
  ASSERT_TRUE(DecodeModuleState(&dec, dst.get()).ok());
  EXPECT_EQ(src->StateFingerprint(), dst->StateFingerprint());
}

TEST(Serialize, ModuleStructureMismatchRejected) {
  Rng rng = testutil::SeededRng(21);
  auto src = BuildMlp("mlp", {4, 6, 2}, &rng);
  auto other = BuildMlp("mlp", {4, 8, 2}, &rng);
  std::string bytes;
  EncodeModuleState(&bytes, src.get());
  Decoder dec(bytes);
  EXPECT_TRUE(DecodeModuleState(&dec, other.get()).IsCorruption());
}

TEST(Serialize, OptimizerStateRoundTrip) {
  Rng rng = testutil::SeededRng(22);
  Linear fc("fc", 3, 3, &rng);
  Adam src(&fc, 0.01f);
  ops::Fill(&fc.weight().grad, 0.5f);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(src.Step().ok());

  Adam dst(&fc, 0.5f);
  std::string bytes;
  EncodeOptimizerState(&bytes, &src);
  Decoder dec(bytes);
  ASSERT_TRUE(DecodeOptimizerState(&dec, &dst).ok());
  EXPECT_EQ(dst.step_count(), 3);
  EXPECT_FLOAT_EQ(dst.lr(), 0.01f);
  EXPECT_EQ(src.StateFingerprint(), dst.StateFingerprint());
}

TEST(Serialize, OptimizerKindMismatchRejected) {
  Rng rng = testutil::SeededRng(23);
  Linear fc("fc", 2, 2, &rng);
  Sgd sgd(&fc, 0.1f);
  Adam adam(&fc, 0.1f);
  std::string bytes;
  EncodeOptimizerState(&bytes, &sgd);
  Decoder dec(bytes);
  EXPECT_TRUE(DecodeOptimizerState(&dec, &adam).IsCorruption());
}

TEST(Serialize, SchedulerStateRoundTrip) {
  Rng rng = testutil::SeededRng(24);
  Linear fc("fc", 2, 2, &rng);
  Sgd sgd(&fc, 1.0f);
  StepLr src(&sgd, 3, 0.1f);
  src.Step();
  src.Step();
  StepLr dst(&sgd, 3, 0.1f);
  std::string bytes;
  EncodeSchedulerState(&bytes, &src);
  Decoder dec(bytes);
  ASSERT_TRUE(DecodeSchedulerState(&dec, &dst).ok());
  EXPECT_EQ(dst.epoch(), 2);
}

TEST(TrainingLoop, MlpLearnsSyntheticTask) {
  // Real end-to-end learning: loss must drop substantially.
  Rng rng = testutil::SeededRng(25);
  auto mlp = BuildMlp("mlp", {8, 16, 3}, &rng);
  Sgd sgd(mlp.get(), 0.1f, 0.9f);

  Tensor x(Shape{30, 8});
  std::vector<int64_t> labels_v(30);
  for (int64_t i = 0; i < 30; ++i) {
    labels_v[static_cast<size_t>(i)] = i % 3;
    for (int64_t j = 0; j < 8; ++j)
      x.f32()[i * 8 + j] = static_cast<float>((i % 3) - 1) *
                               std::sin(static_cast<float>(j + 1)) +
                           0.1f * static_cast<float>(rng.NextGaussian());
  }
  Tensor labels(Shape{30}, std::move(labels_v));

  float first_loss = 0, last_loss = 0;
  for (int step = 0; step < 60; ++step) {
    mlp->ZeroGrad();
    auto logits = mlp->Forward(x);
    ASSERT_TRUE(logits.ok());
    auto lr = SoftmaxCrossEntropy(*logits, labels);
    ASSERT_TRUE(lr.ok());
    if (step == 0) first_loss = lr->loss;
    last_loss = lr->loss;
    ASSERT_TRUE(mlp->Backward(lr->grad_logits).ok());
    ASSERT_TRUE(sgd.Step().ok());
  }
  EXPECT_LT(last_loss, first_loss * 0.5f);
}

}  // namespace
}  // namespace nn
}  // namespace flor
