// Wire protocol + socket server tests: CRC-framed message round-trips,
// the every-prefix-truncation and single-byte-mutation fuzz (torn or
// tampered requests always decode as Corruption, never crash), reply
// structs with bit-exact doubles, byte-identity of the socket path
// against in-process Session calls (record manifests, query listings,
// merged replay logs on all three engines), typed semantic errors that
// keep the connection usable, corrupt-message hangups, the graceful
// drain refusal, and TCP loopback. Runs under the `server` ctest label
// (including the FLOR_TSAN pass in check.sh).

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.h"
#include "env/filesystem.h"
#include "flor/record.h"
#include "service/server.h"
#include "service/service.h"
#include "service/wire.h"
#include "test_util.h"
#include "workloads/programs.h"

namespace flor {
namespace {

using workloads::kProbeInner;
using workloads::kProbeNone;
using workloads::MakeWorkloadFactory;
using workloads::WorkloadProfile;

/// Densely checkpointed sim workload (the service-test shape).
WorkloadProfile ServerProfile(int64_t epochs = 8) {
  WorkloadProfile p;
  p.name = "SrvT";
  p.epochs = epochs;
  p.sim_epoch_seconds = 100;
  p.sim_outer_seconds = 2;
  p.sim_preamble_seconds = 5;
  p.sim_ckpt_raw_bytes = 1 << 20;
  p.ckpt_shards = 4;
  p.task_kind = data::Task::kVision;
  p.real_samples = 32;
  p.real_batch = 8;
  p.real_feature_dim = 12;
  p.real_classes = 3;
  p.real_hidden = 12;
  p.seed = testutil::TestSeed(53);
  return p;
}

SessionRecordOptions ServerRecordOptions(const WorkloadProfile& profile) {
  const RecordOptions o = workloads::DefaultRecordOptions(profile, "");
  SessionRecordOptions s;
  s.workload = o.workload;
  s.materializer = o.materializer;
  s.adaptive = o.adaptive;
  s.nominal_checkpoint_bytes = o.nominal_checkpoint_bytes;
  s.vanilla_runtime_seconds = o.vanilla_runtime_seconds;
  return s;
}

ConnectionOptions ServerConnectionOptions(const WorkloadProfile& profile) {
  ConnectionOptions copts;
  copts.root = "svc";
  copts.ckpt_shards = profile.ckpt_shards;
  copts.tier.bucket_prefix = "s3";
  return copts;
}

/// Resolver with two specs: "svc" records (probe-free), "svc-probed"
/// replays with the inner probe — the wire analogue of the service
/// tests' record/replay factory split.
WorkloadResolver ServerResolver(const WorkloadProfile& profile) {
  return [profile](const std::string& spec) -> Result<ResolvedWorkload> {
    ResolvedWorkload out;
    out.record = ServerRecordOptions(profile);
    if (spec == "svc") {
      out.factory = MakeWorkloadFactory(profile, kProbeNone);
      return out;
    }
    if (spec == "svc-probed") {
      out.factory = MakeWorkloadFactory(profile, kProbeInner);
      return out;
    }
    return Status::NotFound(StrCat("unknown workload spec '", spec, "'"));
  };
}

// ------------------------------------------------------------ wire unit ---

TEST(WireTest, RequestRoundTripsAllFields) {
  wire::Request req;
  req.op = "exists";
  req.tenant = "alice";
  req.run = "run-1";
  req.workload = "svc";
  req.engine = "procs";
  req.workers = 7;
  req.loop_id = -3;
  req.ctx = std::string("e=2\ti=0\0raw\n", 12);  // raw bytes survive

  auto decoded = wire::DecodeRequest(wire::EncodeRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->op, req.op);
  EXPECT_EQ(decoded->tenant, req.tenant);
  EXPECT_EQ(decoded->run, req.run);
  EXPECT_EQ(decoded->workload, req.workload);
  EXPECT_EQ(decoded->engine, req.engine);
  EXPECT_EQ(decoded->workers, req.workers);
  EXPECT_EQ(decoded->loop_id, req.loop_id);
  EXPECT_EQ(decoded->ctx, req.ctx);
}

TEST(WireTest, ResponseRoundTripsBinaryPayload) {
  wire::Response res;
  res.code = 0;
  res.message = "";
  res.payload = {"meta\tline", std::string("\0bulk\0", 6), ""};
  auto decoded = wire::DecodeResponse(wire::EncodeResponse(res));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->code, 0);
  EXPECT_EQ(decoded->payload, res.payload);

  // An error response reconstructs the Status it carried.
  const Status original = Status::NotFound("no such run: svc/alice/r9");
  auto err = wire::DecodeResponse(
      wire::EncodeResponse(wire::ErrorResponse(original)));
  ASSERT_TRUE(err.ok()) << err.status().ToString();
  EXPECT_FALSE(err->ok());
  const Status back = err->ToStatus();
  EXPECT_TRUE(back.IsNotFound());
  EXPECT_EQ(back.message(), original.message());

  // A code outside the Status enum is structural Corruption — a decoder
  // must never cast garbage into a StatusCode.
  wire::Response bogus;
  bogus.code = 99;
  auto rejected = wire::DecodeResponse(wire::EncodeResponse(bogus));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsCorruption())
      << rejected.status().ToString();
}

TEST(WireTest, KindMismatchIsCorruption) {
  wire::Request req;
  req.op = "query";
  req.tenant = "alice";
  const std::string request_bytes = wire::EncodeRequest(req);
  auto as_response = wire::DecodeResponse(request_bytes);
  ASSERT_FALSE(as_response.ok());
  EXPECT_TRUE(as_response.status().IsCorruption())
      << as_response.status().ToString();

  const std::string response_bytes =
      wire::EncodeResponse(wire::ErrorResponse(Status::OK()));
  auto as_request = wire::DecodeRequest(response_bytes);
  ASSERT_FALSE(as_request.ok());
  EXPECT_TRUE(as_request.status().IsCorruption())
      << as_request.status().ToString();
}

TEST(WireTest, EveryTruncationIsCorruption) {
  wire::Request req;
  req.op = "replay";
  req.tenant = "alice";
  req.run = "run-1";
  req.workload = "svc-probed";
  req.engine = "threads";
  req.workers = 2;
  const std::string encoded = wire::EncodeRequest(req);
  // Every strict prefix fails — the empty message, cuts inside a frame
  // (CRC), and cuts at exact frame boundaries (header section count).
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    auto got = wire::DecodeRequest(encoded.substr(0, cut));
    ASSERT_FALSE(got.ok()) << "prefix of " << cut << " bytes parsed";
    EXPECT_TRUE(got.status().IsCorruption()) << "cut " << cut;
  }
}

TEST(WireTest, SingleByteMutationsNeverParse) {
  wire::Request req;
  req.op = "record";
  req.tenant = "alice";
  req.run = "run-1";
  req.workload = "svc";
  req.ctx = "e=2/i=0";
  const std::string encoded = wire::EncodeRequest(req);
  for (size_t pos = 0; pos < encoded.size(); ++pos) {
    std::string mutated = encoded;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x20);
    auto got = wire::DecodeRequest(mutated);
    ASSERT_FALSE(got.ok()) << "mutation at " << pos << " parsed";
    EXPECT_TRUE(got.status().IsCorruption()) << "mutation at " << pos;
  }
}

TEST(WireTest, RepliesRoundTripBitExactDoubles) {
  // Doubles travel as hexfloats: 0.1 and friends must come back
  // bit-identical, not shortest-decimal approximations.
  wire::RecordReply rec;
  rec.checkpoints = 12;
  rec.runtime_seconds = 0.1;
  rec.admission_wait_seconds = 3.0000000000000004e-9;
  rec.manifest = std::string("florman\0binary", 14);
  auto rec_back = wire::ParseRecordReply(wire::MakeRecordReply(rec));
  ASSERT_TRUE(rec_back.ok()) << rec_back.status().ToString();
  EXPECT_EQ(rec_back->checkpoints, rec.checkpoints);
  EXPECT_EQ(rec_back->runtime_seconds, rec.runtime_seconds);
  EXPECT_EQ(rec_back->admission_wait_seconds, rec.admission_wait_seconds);
  EXPECT_EQ(rec_back->manifest, rec.manifest);

  wire::ReplayReply rep;
  rep.workers_used = 4;
  rep.latency_seconds = 1234.5678901234567;
  rep.wall_seconds = 2.5e-3;
  rep.bucket_faults = 17;
  rep.bloom_skipped_probes = 5;
  rep.deferred_ok = true;
  rep.merged_logs = "11\te=2/i=0\t0\tloss\t0.125\n";
  auto rep_back = wire::ParseReplayReply(wire::MakeReplayReply(rep));
  ASSERT_TRUE(rep_back.ok()) << rep_back.status().ToString();
  EXPECT_EQ(rep_back->workers_used, rep.workers_used);
  EXPECT_EQ(rep_back->latency_seconds, rep.latency_seconds);
  EXPECT_EQ(rep_back->wall_seconds, rep.wall_seconds);
  EXPECT_EQ(rep_back->bucket_faults, rep.bucket_faults);
  EXPECT_EQ(rep_back->bloom_skipped_probes, rep.bloom_skipped_probes);
  EXPECT_TRUE(rep_back->deferred_ok);
  EXPECT_EQ(rep_back->merged_logs, rep.merged_logs);

  wire::QueryReply query;
  RunInfo a;
  a.prefix = "svc/alice/r1";
  a.workload = "SrvT";
  a.record_runtime_seconds = 807.1999999999999;
  a.checkpoints = 8;
  RunInfo b;
  b.prefix = "svc/alice/r2";
  query.runs = {a, b};
  auto query_back = wire::ParseQueryReply(wire::MakeQueryReply(query));
  ASSERT_TRUE(query_back.ok()) << query_back.status().ToString();
  ASSERT_EQ(query_back->runs.size(), 2u);
  EXPECT_EQ(query_back->runs[0].prefix, a.prefix);
  EXPECT_EQ(query_back->runs[0].workload, a.workload);
  EXPECT_EQ(query_back->runs[0].record_runtime_seconds,
            a.record_runtime_seconds);
  EXPECT_EQ(query_back->runs[0].checkpoints, a.checkpoints);
  EXPECT_EQ(query_back->runs[1].prefix, b.prefix);

  for (bool flag : {true, false}) {
    wire::ExistsReply exists;
    exists.exists = flag;
    auto back = wire::ParseExistsReply(wire::MakeExistsReply(exists));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->exists, flag);
  }
}

TEST(WireTest, EngineNamesRoundTrip) {
  for (ReplayEngine engine :
       {ReplayEngine::kSimulated, ReplayEngine::kThreads,
        ReplayEngine::kProcesses}) {
    auto back = wire::ParseEngine(wire::EngineName(engine));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, engine);
  }
  auto unknown = wire::ParseEngine("gpu");
  ASSERT_FALSE(unknown.ok());
  // Semantic, not structural: an unknown engine in a well-formed request
  // earns a typed error response, never a Corruption hangup.
  EXPECT_TRUE(unknown.status().code() == StatusCode::kInvalidArgument)
      << unknown.status().ToString();
}

// ---------------------------------------------------------- socket path ---

class ServerTest : public testutil::ScratchDirTest {
 protected:
  std::string SocketPath() {
    std::filesystem::create_directories(root());
    return root() + "/flor.sock";
  }
};

TEST_F(ServerTest, StartValidatesOptions) {
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  auto conn = Connection::Open(&env, ConnectionOptions());
  ASSERT_TRUE(conn.ok());

  ServerOptions neither;
  EXPECT_FALSE(Server::Start(conn->get(), neither).ok());

  ServerOptions both;
  both.unix_path = SocketPath();
  both.tcp = true;
  EXPECT_FALSE(Server::Start(conn->get(), both).ok());

  EXPECT_FALSE(Server::Start(nullptr, ServerOptions()).ok());
}

TEST_F(ServerTest, SocketRoundTripMatchesInProcessSession) {
  const WorkloadProfile profile = ServerProfile();

  // In-process golden: a separate Connection over a separate filesystem,
  // driven directly.
  MemFileSystem fs_direct;
  Env env_direct = testutil::MakeSimEnv(&fs_direct);
  auto direct_conn =
      Connection::Open(&env_direct, ServerConnectionOptions(profile));
  ASSERT_TRUE(direct_conn.ok()) << direct_conn.status().ToString();
  auto direct_session = (*direct_conn)->OpenSession("alice");
  ASSERT_TRUE(direct_session.ok());
  auto direct_rec =
      (*direct_session)
          ->Record("r1", MakeWorkloadFactory(profile, kProbeNone),
                   ServerRecordOptions(profile));
  ASSERT_TRUE(direct_rec.ok()) << direct_rec.status().ToString();

  // Served path: the same workload through the socket front door.
  MemFileSystem fs_srv;
  Env env_srv = testutil::MakeSimEnv(&fs_srv);
  auto conn = Connection::Open(&env_srv, ServerConnectionOptions(profile));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  ServerOptions sopts;
  sopts.unix_path = SocketPath();
  sopts.resolve_workload = ServerResolver(profile);
  auto server = Server::Start(conn->get(), sopts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = WireClient::ConnectUnix((*server)->unix_path());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  // record: the manifest travels verbatim — byte-identical to the file
  // the in-process record left behind.
  wire::Request record_req;
  record_req.op = "record";
  record_req.tenant = "alice";
  record_req.run = "r1";
  record_req.workload = "svc";
  auto record_res = client->Call(record_req);
  ASSERT_TRUE(record_res.ok()) << record_res.status().ToString();
  auto record_reply = wire::ParseRecordReply(*record_res);
  ASSERT_TRUE(record_reply.ok()) << record_reply.status().ToString();
  const RunPaths paths("svc/alice/r1");
  auto direct_manifest = fs_direct.ReadFile(paths.Manifest());
  ASSERT_TRUE(direct_manifest.ok());
  EXPECT_EQ(record_reply->manifest, *direct_manifest);
  EXPECT_EQ(record_reply->checkpoints,
            static_cast<int64_t>(direct_rec->manifest.records.size()));
  EXPECT_EQ(record_reply->runtime_seconds, direct_rec->runtime_seconds);

  // query: same listing, runtime double bit-exact over the wire.
  auto direct_runs = (*direct_session)->Query();
  ASSERT_TRUE(direct_runs.ok());
  ASSERT_EQ(direct_runs->size(), 1u);
  wire::Request query_req;
  query_req.op = "query";
  query_req.tenant = "alice";
  auto query_res = client->Call(query_req);
  ASSERT_TRUE(query_res.ok()) << query_res.status().ToString();
  auto query_reply = wire::ParseQueryReply(*query_res);
  ASSERT_TRUE(query_reply.ok()) << query_reply.status().ToString();
  ASSERT_EQ(query_reply->runs.size(), 1u);
  EXPECT_EQ(query_reply->runs[0].prefix, (*direct_runs)[0].prefix);
  EXPECT_EQ(query_reply->runs[0].workload, (*direct_runs)[0].workload);
  EXPECT_EQ(query_reply->runs[0].record_runtime_seconds,
            (*direct_runs)[0].record_runtime_seconds);
  EXPECT_EQ(query_reply->runs[0].checkpoints, (*direct_runs)[0].checkpoints);

  // exists: a key parsed out of the wire manifest is present; a bogus
  // loop is not. The manifest bytes are client-usable, not opaque.
  auto manifest = Manifest::Deserialize(record_reply->manifest);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_FALSE(manifest->records.empty());
  const CheckpointKey key = manifest->records.front().key;
  wire::Request exists_req;
  exists_req.op = "exists";
  exists_req.tenant = "alice";
  exists_req.run = "r1";
  exists_req.loop_id = key.loop_id;
  exists_req.ctx = key.ctx;
  auto exists_res = client->Call(exists_req);
  ASSERT_TRUE(exists_res.ok()) << exists_res.status().ToString();
  auto exists_reply = wire::ParseExistsReply(*exists_res);
  ASSERT_TRUE(exists_reply.ok()) << exists_reply.status().ToString();
  EXPECT_TRUE(exists_reply->exists);
  exists_req.loop_id = 4096;
  auto absent_res = client->Call(exists_req);
  ASSERT_TRUE(absent_res.ok());
  auto absent_reply = wire::ParseExistsReply(*absent_res);
  ASSERT_TRUE(absent_reply.ok()) << absent_reply.status().ToString();
  EXPECT_FALSE(absent_reply->exists);

  // replay on all three engines: merged logs byte-identical to the
  // in-process replay of the golden run.
  for (const char* engine : {"sim", "threads", "procs"}) {
    SessionReplayOptions dopts;
    auto parsed = wire::ParseEngine(engine);
    ASSERT_TRUE(parsed.ok());
    dopts.engine = *parsed;
    dopts.workers = 2;
    auto direct_replay =
        (*direct_session)
            ->Replay("r1", MakeWorkloadFactory(profile, kProbeInner), dopts);
    ASSERT_TRUE(direct_replay.ok()) << direct_replay.status().ToString();

    wire::Request replay_req;
    replay_req.op = "replay";
    replay_req.tenant = "alice";
    replay_req.run = "r1";
    replay_req.workload = "svc-probed";
    replay_req.engine = engine;
    replay_req.workers = 2;
    auto replay_res = client->Call(replay_req);
    ASSERT_TRUE(replay_res.ok()) << replay_res.status().ToString();
    auto replay_reply = wire::ParseReplayReply(*replay_res);
    ASSERT_TRUE(replay_reply.ok()) << replay_reply.status().ToString();
    EXPECT_TRUE(replay_reply->deferred_ok) << engine;
    EXPECT_EQ(replay_reply->workers_used, 2) << engine;
    EXPECT_EQ(replay_reply->merged_logs,
              direct_replay->merged_logs.Serialize())
        << engine;
  }

  const ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.connections_accepted, 1);
  EXPECT_EQ(stats.requests_served, 7);  // record + query + 2 exists + 3 replays
  EXPECT_EQ(stats.corrupt_messages, 0);
  EXPECT_EQ(stats.unavailable_refusals, 0);
}

TEST_F(ServerTest, TypedErrorsKeepTheConnectionUsable) {
  const WorkloadProfile profile = ServerProfile(/*epochs=*/4);
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  auto conn = Connection::Open(&env, ServerConnectionOptions(profile));
  ASSERT_TRUE(conn.ok());
  ServerOptions sopts;
  sopts.unix_path = SocketPath();
  sopts.resolve_workload = ServerResolver(profile);
  auto server = Server::Start(conn->get(), sopts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = WireClient::ConnectUnix((*server)->unix_path());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  struct Case {
    wire::Request req;
    StatusCode expected;
  };
  std::vector<Case> cases;
  {
    wire::Request r;  // unknown op
    r.op = "mutate";
    r.tenant = "alice";
    cases.push_back({r, StatusCode::kInvalidArgument});
  }
  {
    wire::Request r;  // tenant escape
    r.op = "query";
    r.tenant = "../bob";
    cases.push_back({r, StatusCode::kInvalidArgument});
  }
  {
    wire::Request r;  // unknown engine
    r.op = "replay";
    r.tenant = "alice";
    r.run = "r1";
    r.workload = "svc-probed";
    r.engine = "gpu";
    cases.push_back({r, StatusCode::kInvalidArgument});
  }
  {
    wire::Request r;  // workers out of range
    r.op = "replay";
    r.tenant = "alice";
    r.run = "r1";
    r.workload = "svc-probed";
    r.workers = 0;
    cases.push_back({r, StatusCode::kInvalidArgument});
  }
  {
    wire::Request r;  // unresolvable workload spec
    r.op = "record";
    r.tenant = "alice";
    r.run = "r1";
    r.workload = "no-such-spec";
    cases.push_back({r, StatusCode::kNotFound});
  }
  {
    wire::Request r;  // run never recorded
    r.op = "exists";
    r.tenant = "alice";
    r.run = "never";
    cases.push_back({r, StatusCode::kNotFound});
  }
  for (const Case& c : cases) {
    auto res = client->Call(c.req);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(res->code, static_cast<int64_t>(c.expected))
        << "op " << c.req.op << ": " << res->message;
  }

  // Same client, same stream: a valid request still works afterwards.
  wire::Request query;
  query.op = "query";
  query.tenant = "alice";
  auto res = client->Call(query);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  auto reply = wire::ParseQueryReply(*res);
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_TRUE(reply->runs.empty());

  const ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.requests_served,
            static_cast<int64_t>(cases.size()) + 1);
  EXPECT_EQ(stats.corrupt_messages, 0);
}

TEST_F(ServerTest, NoResolverMeansRecordReplayNotSupported) {
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  auto conn = Connection::Open(&env, ConnectionOptions());
  ASSERT_TRUE(conn.ok());
  ServerOptions sopts;
  sopts.unix_path = SocketPath();  // no resolver
  auto server = Server::Start(conn->get(), sopts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = WireClient::ConnectUnix((*server)->unix_path());
  ASSERT_TRUE(client.ok());

  wire::Request record;
  record.op = "record";
  record.tenant = "alice";
  record.run = "r1";
  record.workload = "svc";
  auto res = client->Call(record);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->code, static_cast<int64_t>(StatusCode::kNotSupported))
      << res->message;

  // query/exists still work without a resolver.
  wire::Request query;
  query.op = "query";
  query.tenant = "alice";
  auto qres = client->Call(query);
  ASSERT_TRUE(qres.ok());
  EXPECT_TRUE(wire::ParseQueryReply(*qres).ok());
}

TEST_F(ServerTest, CorruptMessageGetsTypedResponseThenHangup) {
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  auto conn = Connection::Open(&env, ConnectionOptions());
  ASSERT_TRUE(conn.ok());
  ServerOptions sopts;
  sopts.unix_path = SocketPath();
  auto server = Server::Start(conn->get(), sopts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  wire::Request query;
  query.op = "query";
  query.tenant = "alice";
  std::string mutated = wire::EncodeRequest(query);
  mutated[mutated.size() / 2] =
      static_cast<char>(mutated[mutated.size() / 2] ^ 0x20);

  auto client = WireClient::ConnectUnix((*server)->unix_path());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendBytes(mutated).ok());
  auto res = client->ReadResponse();
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->code, static_cast<int64_t>(StatusCode::kCorruption))
      << res->message;
  // After a corrupt message the server hangs up — stream alignment is
  // untrusted. The next exchange on this client fails...
  auto after = client->Call(query);
  EXPECT_FALSE(after.ok());
  // ...but a fresh client works: the server survived the poison bytes.
  auto fresh = WireClient::ConnectUnix((*server)->unix_path());
  ASSERT_TRUE(fresh.ok());
  auto ok_res = fresh->Call(query);
  ASSERT_TRUE(ok_res.ok()) << ok_res.status().ToString();
  EXPECT_TRUE(wire::ParseQueryReply(*ok_res).ok());

  const ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.corrupt_messages, 1);
}

TEST_F(ServerTest, OversizedDeclaredLengthIsCorruption) {
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  auto conn = Connection::Open(&env, ConnectionOptions());
  ASSERT_TRUE(conn.ok());
  ServerOptions sopts;
  sopts.unix_path = SocketPath();
  sopts.max_message_bytes = 1024;
  auto server = Server::Start(conn->get(), sopts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  auto client = WireClient::ConnectUnix((*server)->unix_path());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SendRawPrefix(1u << 20, "").ok());
  auto res = client->ReadResponse();
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(res->code, static_cast<int64_t>(StatusCode::kCorruption))
      << res->message;
  EXPECT_NE(res->message.find("exceeds the limit"), std::string::npos)
      << res->message;
  EXPECT_EQ((*server)->stats().corrupt_messages, 1);
}

TEST_F(ServerTest, TruncatedStreamDoesNotWedgeTheServer) {
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  auto conn = Connection::Open(&env, ConnectionOptions());
  ASSERT_TRUE(conn.ok());
  ServerOptions sopts;
  sopts.unix_path = SocketPath();
  auto server = Server::Start(conn->get(), sopts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Promise 64 bytes, deliver 3, hang up: the handler sees a mid-message
  // cut (nothing answerable) and must simply drop the connection.
  {
    auto client = WireClient::ConnectUnix((*server)->unix_path());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->SendRawPrefix(64, "abc").ok());
  }
  // The server is still serving.
  auto fresh = WireClient::ConnectUnix((*server)->unix_path());
  ASSERT_TRUE(fresh.ok());
  wire::Request query;
  query.op = "query";
  query.tenant = "alice";
  auto res = fresh->Call(query);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(wire::ParseQueryReply(*res).ok());
}

TEST_F(ServerTest, DrainedConnectionRefusesWithUnavailable) {
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  auto conn = Connection::Open(&env, ConnectionOptions());
  ASSERT_TRUE(conn.ok());
  ServerOptions sopts;
  sopts.unix_path = SocketPath();
  auto server = Server::Start(conn->get(), sopts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = WireClient::ConnectUnix((*server)->unix_path());
  ASSERT_TRUE(client.ok());

  wire::Request query;
  query.op = "query";
  query.tenant = "alice";
  auto before = client->Call(query);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->ok()) << before->message;

  ASSERT_TRUE((*conn)->Close().ok());

  // The stream stays up; every request now earns a typed Unavailable —
  // the client sees the drain, not a dropped socket.
  auto after = client->Call(query);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->code, static_cast<int64_t>(StatusCode::kUnavailable))
      << after->message;
  EXPECT_TRUE(after->ToStatus().code() == StatusCode::kUnavailable);

  const ServerStats stats = (*server)->stats();
  EXPECT_EQ(stats.unavailable_refusals, 1);
  EXPECT_EQ(stats.requests_served, 2);
}

TEST_F(ServerTest, TcpLoopbackRoundTrip) {
  const WorkloadProfile profile = ServerProfile(/*epochs=*/4);
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  auto conn = Connection::Open(&env, ServerConnectionOptions(profile));
  ASSERT_TRUE(conn.ok());
  ServerOptions sopts;
  sopts.tcp = true;  // port 0: ephemeral
  sopts.resolve_workload = ServerResolver(profile);
  auto server = Server::Start(conn->get(), sopts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_GT((*server)->tcp_port(), 0);

  auto client = WireClient::ConnectTcp((*server)->tcp_port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  wire::Request record;
  record.op = "record";
  record.tenant = "alice";
  record.run = "r1";
  record.workload = "svc";
  auto rec_res = client->Call(record);
  ASSERT_TRUE(rec_res.ok()) << rec_res.status().ToString();
  auto rec_reply = wire::ParseRecordReply(*rec_res);
  ASSERT_TRUE(rec_reply.ok()) << rec_reply.status().ToString();
  EXPECT_GT(rec_reply->checkpoints, 0);

  wire::Request query;
  query.op = "query";
  query.tenant = "alice";
  auto query_res = client->Call(query);
  ASSERT_TRUE(query_res.ok()) << query_res.status().ToString();
  auto query_reply = wire::ParseQueryReply(*query_res);
  ASSERT_TRUE(query_reply.ok()) << query_reply.status().ToString();
  ASSERT_EQ(query_reply->runs.size(), 1u);
  EXPECT_EQ(query_reply->runs[0].prefix, "svc/alice/r1");
}

}  // namespace
}  // namespace flor
