// Unit tests: IR values/snapshots, statements, programs, builder, and the
// probe-detecting version diff.

#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/diff.h"
#include "ir/value.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/scheduler.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace flor {
namespace ir {
namespace {

TEST(Value, ScalarKinds) {
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::Float(2.5).AsFloat(), 2.5);
  EXPECT_TRUE(Value::Bool(true).AsBool());
  EXPECT_EQ(Value::Str("hi").AsStr(), "hi");
  EXPECT_TRUE(Value().is_none());
}

TEST(Value, FingerprintTracksReferentState) {
  Rng rng = testutil::SeededRng(1);
  nn::Linear fc("fc", 2, 2, &rng);
  Value v = Value::ModuleRef(&fc);
  const uint64_t before = v.Fingerprint();
  fc.weight().value.f32()[0] += 1.0f;
  EXPECT_NE(v.Fingerprint(), before);
}

TEST(Value, ToStringForms) {
  EXPECT_EQ(Value::Int(3).ToString(), "3");
  EXPECT_EQ(Value::Bool(false).ToString(), "False");
  EXPECT_EQ(Value().ToString(), "None");
}

TEST(Snapshot, ScalarRoundTrip) {
  Value live = Value::Int(1);
  ValueSnapshot snap = SnapshotValue(Value::Int(42));
  ASSERT_TRUE(RestoreValue(snap, &live).ok());
  EXPECT_EQ(live.AsInt(), 42);
}

TEST(Snapshot, TensorIsDeepCopy) {
  Tensor t(Shape{3}, std::vector<float>{1, 2, 3});
  Value v = Value::FromTensor(t);
  ValueSnapshot snap = SnapshotValue(v);
  t.f32()[0] = 99;  // mutate after snapshot
  Value live = Value::FromTensor(Tensor(Shape{3}));
  ASSERT_TRUE(RestoreValue(snap, &live).ok());
  EXPECT_EQ(live.AsTensor().at(0), 1.0f);
}

TEST(Snapshot, ModuleRestoreInPlace) {
  Rng rng = testutil::SeededRng(2);
  nn::Linear fc("fc", 3, 3, &rng);
  Value v = Value::ModuleRef(&fc);
  ValueSnapshot snap = SnapshotValue(v);
  const uint64_t saved_fp = fc.StateFingerprint();
  ops::Fill(&fc.weight().value, 0.0f);  // clobber
  EXPECT_NE(fc.StateFingerprint(), saved_fp);
  ASSERT_TRUE(RestoreValue(snap, &v).ok());
  EXPECT_EQ(fc.StateFingerprint(), saved_fp);
}

TEST(Snapshot, OptimizerRestoreIncludesMomentsAndLr) {
  Rng rng = testutil::SeededRng(3);
  nn::Linear fc("fc", 2, 2, &rng);
  nn::Adam adam(&fc, 0.01f);
  ops::Fill(&fc.weight().grad, 1.0f);
  ASSERT_TRUE(adam.Step().ok());
  Value v = Value::OptimizerRef(&adam);
  ValueSnapshot snap = SnapshotValue(v);
  const uint64_t saved = adam.StateFingerprint();
  ASSERT_TRUE(adam.Step().ok());
  adam.set_lr(0.5f);
  EXPECT_NE(adam.StateFingerprint(), saved);
  ASSERT_TRUE(RestoreValue(snap, &v).ok());
  EXPECT_EQ(adam.StateFingerprint(), saved);
  EXPECT_EQ(adam.step_count(), 1);
}

TEST(Snapshot, RngStateRoundTrip) {
  Rng rng = testutil::SeededRng(4);
  rng.Next();
  Value v = Value::RngRef(&rng);
  ValueSnapshot snap = SnapshotValue(v);
  const uint64_t next = rng.Next();  // advance past snapshot
  ASSERT_TRUE(RestoreValue(snap, &v).ok());
  EXPECT_EQ(rng.Next(), next);  // stream rewound
}

TEST(Snapshot, KindMismatchRejected) {
  ValueSnapshot snap = SnapshotValue(Value::Int(1));
  Rng rng = testutil::SeededRng(5);
  nn::Linear fc("fc", 2, 2, &rng);
  Value live = Value::ModuleRef(&fc);
  EXPECT_TRUE(RestoreValue(snap, &live).IsCorruption());
}

TEST(Snapshot, ApproxBytesScalesWithState) {
  Rng rng = testutil::SeededRng(6);
  nn::Linear small("s", 2, 2, &rng);
  nn::Linear big("b", 64, 64, &rng);
  EXPECT_GT(SnapshotValue(Value::ModuleRef(&big)).ApproxBytes(),
            SnapshotValue(Value::ModuleRef(&small)).ApproxBytes());
}

TEST(Stmt, RenderForms) {
  Stmt s;
  s.pattern = StmtPattern::kMethodAssign;
  s.targets = {"preds"};
  s.receiver = "net";
  s.callee = "forward";
  s.reads = {"batch"};
  EXPECT_EQ(s.Render(), "preds = net.forward(batch)");

  s.pattern = StmtPattern::kCallAssign;
  EXPECT_EQ(s.Render(), "preds = forward(batch)");

  s.pattern = StmtPattern::kAssign;
  s.reads = {"x", "y"};
  s.targets = {"a", "b"};
  EXPECT_EQ(s.Render(), "a, b = x, y");

  s.pattern = StmtPattern::kMethodCall;
  s.receiver = "optimizer";
  s.callee = "step";
  s.reads = {};
  EXPECT_EQ(s.Render(), "optimizer.step()");

  s.pattern = StmtPattern::kOpaqueCall;
  s.callee = "save";
  s.reads = {"net"};
  EXPECT_EQ(s.Render(), "save(net)");

  s.pattern = StmtPattern::kLog;
  s.log_label = "loss";
  s.reads = {"loss"};
  EXPECT_EQ(s.Render(), "flor.log(\"loss\", loss)");
}

std::unique_ptr<Program> SampleProgram(bool with_probe) {
  ProgramBuilder b;
  b.CallAssign({"net"}, "build_model", {}, nullptr);
  b.CallAssign({"optimizer"}, "make_optimizer", {"net"}, nullptr);
  b.BeginLoop("e", 4);
  b.BeginLoopVar("i", "num_batches");
  b.MethodCall("optimizer", "step", {}, nullptr);
  if (with_probe) {
    b.Log("grad_norm", [](exec::Frame*) { return std::string("1"); },
          {"net"});
  }
  b.EndLoop();
  b.Log("acc", [](exec::Frame*) { return std::string("0.5"); },
        {"test_acc"});
  b.EndLoop();
  return b.Build();
}

TEST(Builder, AssignsStableIdsInOrder) {
  auto p1 = SampleProgram(false);
  auto p2 = SampleProgram(false);
  EXPECT_EQ(p1->RenderSource(), p2->RenderSource());
  auto loops = p1->AllLoops();
  ASSERT_EQ(loops.size(), 2u);
  EXPECT_EQ(loops[0]->id(), 1);
  EXPECT_EQ(loops[1]->id(), 2);
  EXPECT_EQ(p1->MainLoop(), loops[0]);
  EXPECT_EQ(p1->FindLoop(2), loops[1]);
  EXPECT_EQ(p1->FindLoop(9), nullptr);
}

TEST(Builder, CostAttachesToLastStmt) {
  ProgramBuilder b;
  b.CallAssign({"x"}, "f", {}, nullptr).Cost(3.5);
  auto p = b.Build();
  EXPECT_DOUBLE_EQ(p->top().nodes[0].stmt->sim_cost_seconds, 3.5);
}

TEST(Program, RenderSourceShape) {
  auto p = SampleProgram(false);
  const std::string src = p->RenderSource();
  EXPECT_NE(src.find("import flor"), std::string::npos);
  EXPECT_NE(src.find("for e in range(4):  # L1"), std::string::npos);
  EXPECT_NE(src.find("for i in range(num_batches):  # L2"),
            std::string::npos);
  EXPECT_NE(src.find("    optimizer.step()"), std::string::npos);
}

TEST(Diff, IdenticalVersionsHaveNoProbes) {
  auto recorded = SampleProgram(false);
  auto current = SampleProgram(false);
  auto report = DiffForProbes(recorded->RenderSource(), *current);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->any());
}

TEST(Diff, DetectsInsertedProbeInNestedLoop) {
  auto recorded = SampleProgram(false);
  auto current = SampleProgram(true);
  auto report = DiffForProbes(recorded->RenderSource(), *current);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->any());
  EXPECT_EQ(report->probed_loops, (std::set<int32_t>{2}));
  EXPECT_EQ(report->probe_stmt_uids.size(), 1u);
  EXPECT_FALSE(report->preamble_probed);
}

TEST(Diff, DetectsPreambleProbe) {
  auto recorded = SampleProgram(false);
  ProgramBuilder b;
  b.CallAssign({"net"}, "build_model", {}, nullptr);
  b.Log("init_norm", [](exec::Frame*) { return std::string("0"); },
        {"net"});
  b.CallAssign({"optimizer"}, "make_optimizer", {"net"}, nullptr);
  b.BeginLoop("e", 4);
  b.BeginLoopVar("i", "num_batches");
  b.MethodCall("optimizer", "step", {}, nullptr);
  b.EndLoop();
  b.Log("acc", [](exec::Frame*) { return std::string("0.5"); },
        {"test_acc"});
  b.EndLoop();
  auto current = b.Build();
  auto report = DiffForProbes(recorded->RenderSource(), *current);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->preamble_probed);
}

TEST(Diff, RejectsModifiedStatement) {
  auto recorded = SampleProgram(false);
  ProgramBuilder b;
  b.CallAssign({"net"}, "build_other_model", {}, nullptr);  // changed callee
  b.CallAssign({"optimizer"}, "make_optimizer", {"net"}, nullptr);
  b.BeginLoop("e", 4);
  b.BeginLoopVar("i", "num_batches");
  b.MethodCall("optimizer", "step", {}, nullptr);
  b.EndLoop();
  b.Log("acc", [](exec::Frame*) { return std::string("0.5"); },
        {"test_acc"});
  b.EndLoop();
  auto current = b.Build();
  auto report = DiffForProbes(recorded->RenderSource(), *current);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(Diff, RejectsDeletedStatement) {
  auto recorded = SampleProgram(false);
  ProgramBuilder b;
  b.CallAssign({"net"}, "build_model", {}, nullptr);
  // make_optimizer deleted
  b.BeginLoop("e", 4);
  b.BeginLoopVar("i", "num_batches");
  b.MethodCall("optimizer", "step", {}, nullptr);
  b.EndLoop();
  b.Log("acc", [](exec::Frame*) { return std::string("0.5"); },
        {"test_acc"});
  b.EndLoop();
  auto current = b.Build();
  EXPECT_FALSE(DiffForProbes(recorded->RenderSource(), *current).ok());
}

TEST(Diff, RejectsChangedLoopStructure) {
  auto recorded = SampleProgram(false);
  ProgramBuilder b;
  b.CallAssign({"net"}, "build_model", {}, nullptr);
  b.CallAssign({"optimizer"}, "make_optimizer", {"net"}, nullptr);
  b.BeginLoop("e", 5);  // different trip count
  b.BeginLoopVar("i", "num_batches");
  b.MethodCall("optimizer", "step", {}, nullptr);
  b.EndLoop();
  b.Log("acc", [](exec::Frame*) { return std::string("0.5"); },
        {"test_acc"});
  b.EndLoop();
  auto current = b.Build();
  EXPECT_FALSE(DiffForProbes(recorded->RenderSource(), *current).ok());
}

TEST(Diff, OriginalLogStatementsMatchAcrossVersions) {
  // Record-time logs (the "acc" log) are not probes.
  auto recorded = SampleProgram(true);
  auto current = SampleProgram(true);
  auto report = DiffForProbes(recorded->RenderSource(), *current);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->any());
}

}  // namespace
}  // namespace ir
}  // namespace flor
