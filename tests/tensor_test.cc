// Unit tests: shapes, tensors, ops, tensor serialization.

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "test_util.h"

namespace flor {
namespace {

TEST(Shape, NumelAndStrides) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  auto strides = s.Strides();
  EXPECT_EQ(strides, (std::vector<int64_t>{12, 4, 1}));
  EXPECT_EQ(s.ToString(), "[2, 3, 4]");
  EXPECT_EQ(Shape{}.numel(), 1);  // scalar
}

TEST(Tensor, ZeroInitialized) {
  Tensor t(Shape{3, 3});
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0f);
  EXPECT_EQ(t.byte_size(), 36u);
}

TEST(Tensor, CopyIsShallowCloneIsDeep) {
  Tensor a(Shape{4}, std::vector<float>{1, 2, 3, 4});
  Tensor b = a;           // shares storage (Python reference semantics)
  Tensor c = a.Clone();   // fresh storage
  EXPECT_TRUE(a.SharesStorageWith(b));
  EXPECT_FALSE(a.SharesStorageWith(c));
  a.f32()[0] = 99;
  EXPECT_EQ(b.at(0), 99.0f);
  EXPECT_EQ(c.at(0), 1.0f);
}

TEST(Tensor, I64Tensors) {
  Tensor t(Shape{3}, std::vector<int64_t>{-1, 0, 7});
  EXPECT_EQ(t.dtype(), DType::kI64);
  EXPECT_EQ(t.at_i64(0), -1);
  EXPECT_EQ(t.byte_size(), 24u);
}

TEST(Tensor, FingerprintSensitive) {
  Tensor a(Shape{4}, std::vector<float>{1, 2, 3, 4});
  Tensor b = a.Clone();
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  b.f32()[3] += 1e-6f;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  // Shape participates: same data, different shape.
  Tensor c(Shape{2, 2}, std::vector<float>{1, 2, 3, 4});
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
}

TEST(Tensor, EqualsAndAllClose) {
  Tensor a(Shape{2}, std::vector<float>{1.0f, 2.0f});
  Tensor b(Shape{2}, std::vector<float>{1.0f, 2.000001f});
  EXPECT_FALSE(a.Equals(b));
  EXPECT_TRUE(a.AllClose(b, 1e-5f));
  EXPECT_FALSE(a.AllClose(b, 1e-8f));
}

TEST(Ops, FillAndScale) {
  Tensor t(Shape{5});
  ops::Fill(&t, 2.0f);
  ops::Scale(&t, 3.0f);
  EXPECT_EQ(ops::Sum(t), 30.0f);
}

TEST(Ops, RandDeterministic) {
  Tensor a(Shape{64}), b(Shape{64});
  Rng r1 = testutil::SeededRng(5), r2 = testutil::SeededRng(5);
  ops::RandNormal(&a, &r1);
  ops::RandNormal(&b, &r2);
  EXPECT_TRUE(a.Equals(b));
}

TEST(Ops, ElementwiseAndShapeErrors) {
  Tensor a(Shape{2}, std::vector<float>{1, 2});
  Tensor b(Shape{2}, std::vector<float>{10, 20});
  EXPECT_EQ((*ops::Add(a, b)).at(1), 22.0f);
  EXPECT_EQ((*ops::Sub(b, a)).at(0), 9.0f);
  EXPECT_EQ((*ops::Mul(a, b)).at(1), 40.0f);
  Tensor c(Shape{3});
  EXPECT_FALSE(ops::Add(a, c).ok());
}

TEST(Ops, Axpy) {
  Tensor x(Shape{3}, std::vector<float>{1, 1, 1});
  Tensor y(Shape{3}, std::vector<float>{1, 2, 3});
  ASSERT_TRUE(ops::Axpy(2.0f, x, &y).ok());
  EXPECT_EQ(y.at(0), 3.0f);
  EXPECT_EQ(y.at(2), 5.0f);
}

TEST(Ops, MatMulKnown) {
  Tensor a(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, std::vector<float>{7, 8, 9, 10, 11, 12});
  auto c = ops::MatMul(a, b);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->shape(), (Shape{2, 2}));
  EXPECT_EQ(c->at(0), 58.0f);
  EXPECT_EQ(c->at(1), 64.0f);
  EXPECT_EQ(c->at(2), 139.0f);
  EXPECT_EQ(c->at(3), 154.0f);
}

TEST(Ops, MatMulDimMismatch) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{2, 2});
  EXPECT_FALSE(ops::MatMul(a, b).ok());
}

TEST(Ops, Transpose2D) {
  Tensor a(Shape{2, 3}, std::vector<float>{1, 2, 3, 4, 5, 6});
  auto t = ops::Transpose2D(a);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->shape(), (Shape{3, 2}));
  EXPECT_EQ(t->at(0), 1.0f);
  EXPECT_EQ(t->at(1), 4.0f);
}

TEST(Ops, ReluAndBackward) {
  Tensor x(Shape{4}, std::vector<float>{-1, 0, 2, -3});
  Tensor y = ops::Relu(x);
  EXPECT_EQ(y.at(0), 0.0f);
  EXPECT_EQ(y.at(2), 2.0f);
  Tensor g(Shape{4}, std::vector<float>{1, 1, 1, 1});
  Tensor gx = ops::ReluBackward(x, g);
  EXPECT_EQ(gx.at(0), 0.0f);
  EXPECT_EQ(gx.at(2), 1.0f);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Tensor x(Shape{2, 3}, std::vector<float>{1, 2, 3, -1, 0, 1});
  auto p = ops::SoftmaxRows(x);
  ASSERT_TRUE(p.ok());
  for (int64_t r = 0; r < 2; ++r) {
    float sum = 0;
    for (int64_t c = 0; c < 3; ++c) sum += p->at(r * 3 + c);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
  // Monotone in logits.
  EXPECT_GT(p->at(2), p->at(1));
}

TEST(Ops, NllAndAccuracy) {
  Tensor logits(Shape{2, 2}, std::vector<float>{5, -5, -5, 5});
  Tensor labels(Shape{2}, std::vector<int64_t>{0, 1});
  auto probs = ops::SoftmaxRows(logits);
  ASSERT_TRUE(probs.ok());
  auto loss = ops::NllLoss(*probs, labels);
  ASSERT_TRUE(loss.ok());
  EXPECT_LT(*loss, 0.01f);
  auto acc = ops::Accuracy(logits, labels);
  ASSERT_TRUE(acc.ok());
  EXPECT_EQ(*acc, 1.0f);
  Tensor bad_labels(Shape{2}, std::vector<int64_t>{1, 0});
  EXPECT_EQ(*ops::Accuracy(logits, bad_labels), 0.0f);
}

TEST(Ops, LabelOutOfRangeRejected) {
  Tensor probs(Shape{1, 2}, std::vector<float>{0.5f, 0.5f});
  Tensor labels(Shape{1}, std::vector<int64_t>{5});
  EXPECT_FALSE(ops::NllLoss(probs, labels).ok());
}

TEST(Ops, Norms) {
  Tensor t(Shape{2}, std::vector<float>{3, 4});
  EXPECT_NEAR(ops::L2Norm(t), 5.0f, 1e-6f);
  EXPECT_EQ(ops::Max(t), 4.0f);
  EXPECT_EQ(ops::Mean(t), 3.5f);
}

TEST(Ops, Conv2DIdentityKernel) {
  // 1x1x3x3 input, 1x1x1x1 kernel of value 2 => output doubled.
  Tensor input(Shape{1, 1, 3, 3},
               std::vector<float>{1, 2, 3, 4, 5, 6, 7, 8, 9});
  Tensor kernel(Shape{1, 1, 1, 1}, std::vector<float>{2});
  auto out = ops::Conv2D(input, kernel, 0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{1, 1, 3, 3}));
  EXPECT_EQ(out->at(4), 10.0f);
}

TEST(Ops, Conv2DPaddingAndShape) {
  Tensor input(Shape{2, 3, 8, 8});
  Tensor kernel(Shape{4, 3, 3, 3});
  auto out = ops::Conv2D(input, kernel, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->shape(), (Shape{2, 4, 8, 8}));
  // Channel mismatch rejected.
  Tensor bad_kernel(Shape{4, 2, 3, 3});
  EXPECT_FALSE(ops::Conv2D(input, bad_kernel, 1).ok());
}

TEST(Ops, ArangeAndArgmax) {
  Tensor r = ops::ArangeI64(4);
  EXPECT_EQ(r.at_i64(3), 3);
  Tensor x(Shape{2, 3}, std::vector<float>{0, 5, 1, 9, 2, 3});
  auto am = ops::ArgmaxRows(x);
  ASSERT_TRUE(am.ok());
  EXPECT_EQ(am->at_i64(0), 1);
  EXPECT_EQ(am->at_i64(1), 0);
}

class TensorSerializeRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, DType>> {};

TEST_P(TensorSerializeRoundTrip, BitExact) {
  auto [rank, dtype] = GetParam();
  std::vector<int64_t> dims;
  for (int i = 0; i < rank; ++i) dims.push_back(2 + i);
  Tensor t(Shape(dims), dtype);
  Rng rng(static_cast<uint64_t>(rank) * 7 + static_cast<uint64_t>(dtype));
  if (dtype == DType::kF32) {
    ops::RandNormal(&t, &rng);
  } else {
    for (int64_t i = 0; i < t.numel(); ++i)
      t.i64()[i] = static_cast<int64_t>(rng.Next());
  }
  auto back = TensorFromBytes(TensorToBytes(t));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->Equals(t));
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndDtypes, TensorSerializeRoundTrip,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4),
                       ::testing::Values(DType::kF32, DType::kI64)));

TEST(TensorSerialize, CorruptionRejected) {
  Tensor t(Shape{8});
  std::string bytes = TensorToBytes(t);
  bytes.resize(bytes.size() - 4);  // truncate data
  EXPECT_FALSE(TensorFromBytes(bytes).ok());
  std::string bad_dtype = TensorToBytes(t);
  bad_dtype[0] = 9;
  EXPECT_FALSE(TensorFromBytes(bad_dtype).ok());
}

}  // namespace
}  // namespace flor
