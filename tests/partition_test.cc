// Unit + property tests: main-loop iterator partitioning, strong/weak
// initialization plans, and sampled-epoch plans (paper §5.4, §8).

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "flor/partition.h"

namespace flor {
namespace {

std::vector<int64_t> DenseCkpts(int64_t epochs) {
  std::vector<int64_t> out(static_cast<size_t>(epochs));
  std::iota(out.begin(), out.end(), 0);
  return out;
}

/// Work segments must tile [0, epochs) exactly once, in order.
void CheckTiling(const PartitionPlan& plan, int64_t epochs) {
  int64_t next = 0;
  for (const auto& wp : plan.workers) {
    EXPECT_EQ(wp.work_begin, next);
    EXPECT_GT(wp.work_end, wp.work_begin);
    next = wp.work_end;
  }
  EXPECT_EQ(next, epochs);
}

TEST(Partition, DenseStrongBalanced) {
  auto plan = PartitionMainLoop(12, 4, InitMode::kStrong, DenseCkpts(12));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->mode, InitMode::kStrong);
  ASSERT_EQ(plan->workers.size(), 4u);
  CheckTiling(*plan, 12);
  EXPECT_EQ(plan->max_worker_epochs, 3);
  // Strong init: worker w has exactly work_begin init iterations.
  for (const auto& wp : plan->workers) {
    int64_t init_count = 0;
    for (const auto& it : wp.iters)
      if (it.mode == exec::IterMode::kInit) ++init_count;
    EXPECT_EQ(init_count, wp.work_begin);
  }
}

TEST(Partition, DenseWeakHasSingleInitIteration) {
  auto plan = PartitionMainLoop(12, 4, InitMode::kWeak, DenseCkpts(12));
  ASSERT_TRUE(plan.ok());
  for (const auto& wp : plan->workers) {
    int64_t init_count = 0;
    for (const auto& it : wp.iters)
      if (it.mode == exec::IterMode::kInit) {
        ++init_count;
        EXPECT_EQ(it.index, wp.work_begin - 1);
      }
    EXPECT_EQ(init_count, wp.work_begin > 0 ? 1 : 0);
  }
}

TEST(Partition, SparseFallsBackToWeak) {
  // Checkpoints only at epochs 33, 66, ..., 198 (the RTE pattern).
  std::vector<int64_t> ckpts{33, 66, 99, 132, 165, 198};
  auto plan = PartitionMainLoop(200, 4, InitMode::kStrong, ckpts);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->mode, InitMode::kWeak);  // forced fallback (§5.4.2)
  // 7 candidate segments: starts {0,34,67,100,133,166,199}.
  EXPECT_EQ(plan->segments, 7);
  CheckTiling(*plan, 200);
  // 4 GPUs on segments {34,33,33,33,33,33,1}: the optimal contiguous
  // grouping caps the largest share at 66 epochs — 66/200 = 33%, the
  // paper's "at best 2/6 = 33% replay time" for sparse workloads.
  EXPECT_EQ(plan->max_worker_epochs, 66);
}

TEST(Partition, SegmentBoundariesOnlyAtCheckpoints) {
  std::vector<int64_t> ckpts{9, 19};
  auto plan = PartitionMainLoop(30, 3, InitMode::kWeak, ckpts);
  ASSERT_TRUE(plan.ok());
  std::set<int64_t> valid_starts{0, 10, 20};
  for (const auto& wp : plan->workers)
    EXPECT_TRUE(valid_starts.count(wp.work_begin)) << wp.work_begin;
}

TEST(Partition, NoCheckpointsMeansOneSegment) {
  auto plan = PartitionMainLoop(50, 8, InitMode::kStrong, {});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->segments, 1);
  ASSERT_EQ(plan->workers.size(), 1u);
  EXPECT_EQ(plan->workers[0].work_begin, 0);
  EXPECT_EQ(plan->workers[0].work_end, 50);
}

TEST(Partition, MoreWorkersThanEpochs) {
  auto plan = PartitionMainLoop(3, 16, InitMode::kWeak, DenseCkpts(3));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->workers.size(), 3u);
  CheckTiling(*plan, 3);
}

TEST(Partition, InvalidArgumentsRejected) {
  EXPECT_FALSE(PartitionMainLoop(0, 4, InitMode::kWeak, {}).ok());
  EXPECT_FALSE(PartitionMainLoop(10, 0, InitMode::kWeak, {}).ok());
}

TEST(Partition, Fig13LoadBalanceCeiling) {
  // 200 epochs over 16 workers: the largest share must be 13 epochs
  // (paper: "balancing 200 epochs over 16 parallel workers results in each
  // worker doing up to 13 epochs of work").
  auto plan = PartitionMainLoop(200, 16, InitMode::kWeak, DenseCkpts(200));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->workers.size(), 16u);
  EXPECT_EQ(plan->max_worker_epochs, 13);
}

TEST(SamplePlan, WeakInitBeforeEachJump) {
  auto plan = PlanSampledEpochs(20, {5, 6, 12}, DenseCkpts(20));
  ASSERT_TRUE(plan.ok());
  // init 4, work 5, work 6 (contiguous, no re-init), init 11, work 12.
  ASSERT_EQ(plan->iters.size(), 5u);
  EXPECT_EQ(plan->iters[0].index, 4);
  EXPECT_EQ(plan->iters[0].mode, exec::IterMode::kInit);
  EXPECT_EQ(plan->iters[1].index, 5);
  EXPECT_EQ(plan->iters[2].index, 6);
  EXPECT_EQ(plan->iters[2].mode, exec::IterMode::kWork);
  EXPECT_EQ(plan->iters[3].index, 11);
  EXPECT_EQ(plan->iters[3].mode, exec::IterMode::kInit);
  EXPECT_EQ(plan->iters[4].index, 12);
}

TEST(SamplePlan, EpochZeroNeedsNoInit) {
  auto plan = PlanSampledEpochs(10, {0}, DenseCkpts(10));
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->iters.size(), 1u);
  EXPECT_EQ(plan->iters[0].mode, exec::IterMode::kWork);
}

TEST(SamplePlan, MissingCheckpointRejected) {
  EXPECT_FALSE(PlanSampledEpochs(10, {5}, {}).ok());
  EXPECT_FALSE(PlanSampledEpochs(10, {50}, DenseCkpts(10)).ok());
}

TEST(SamplePlan, DeduplicatesAndSorts) {
  auto plan = PlanSampledEpochs(10, {7, 3, 7}, DenseCkpts(10));
  ASSERT_TRUE(plan.ok());
  // init 2, work 3, init 6, work 7.
  ASSERT_EQ(plan->iters.size(), 4u);
  EXPECT_EQ(plan->iters[1].index, 3);
  EXPECT_EQ(plan->iters[3].index, 7);
}

/// Property sweep: arbitrary (epochs, workers, checkpoint spacing) — plans
/// always tile the range, respect boundaries, and balance within one
/// segment size of optimal.
class PartitionSweep : public ::testing::TestWithParam<
                           std::tuple<int64_t, int, int, int>> {};

TEST_P(PartitionSweep, TilesAndBalances) {
  auto [epochs, workers, spacing, mode_i] = GetParam();
  std::vector<int64_t> ckpts;
  for (int64_t e = spacing - 1; e < epochs; e += spacing) ckpts.push_back(e);
  const InitMode mode = mode_i ? InitMode::kStrong : InitMode::kWeak;
  auto plan = PartitionMainLoop(epochs, workers, mode, ckpts);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  CheckTiling(*plan, epochs);
  // No worker exceeds max_worker_epochs.
  for (const auto& wp : plan->workers)
    EXPECT_LE(wp.work_epochs(), plan->max_worker_epochs);
  // Max share is at least the ideal share (ceil over usable segments).
  const int64_t used = static_cast<int64_t>(plan->workers.size());
  EXPECT_GE(plan->max_worker_epochs * used, epochs);
  // Init iterations precede work iterations and stay in range.
  for (const auto& wp : plan->workers) {
    bool seen_work = false;
    for (const auto& it : wp.iters) {
      EXPECT_GE(it.index, 0);
      EXPECT_LT(it.index, epochs);
      if (it.mode == exec::IterMode::kWork) {
        seen_work = true;
      } else {
        EXPECT_FALSE(seen_work) << "init after work";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartitionSweep,
    ::testing::Combine(::testing::Values<int64_t>(1, 7, 80, 200),
                       ::testing::Values(1, 3, 4, 16),
                       ::testing::Values(1, 5, 33),
                       ::testing::Values(0, 1)));

}  // namespace
}  // namespace flor
