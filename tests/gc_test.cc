// Shard-aware checkpoint GC (checkpoint/gc.h): keep-last-K-per-loop
// planning, manifest-first atomicity, shard-local deletes, pinned replay
// plans, delete-failure orphans, and the end-to-end record→spool→retire
// lifecycle through RecordSession — including byte parity of both replay
// engines on a retired store.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "checkpoint/gc.h"
#include "checkpoint/spool.h"
#include "checkpoint/store.h"
#include "common/strings.h"
#include "env/filesystem.h"
#include "exec/replay_executor.h"
#include "flor/record.h"
#include "flor/replay_plan.h"
#include "sim/parallel_replay.h"
#include "test_util.h"
#include "workloads/programs.h"

namespace flor {
namespace {

using workloads::kProbeInner;
using workloads::kProbeNone;
using workloads::MakeWorkloadFactory;
using workloads::WorkloadProfile;

/// Densely checkpointed workload (cheap checkpoints vs epoch cost) so the
/// GC has a long epoch timeline to retire from.
WorkloadProfile GcProfile(int64_t epochs = 12, int shards = 4) {
  WorkloadProfile p;
  p.name = "GcT";
  p.epochs = epochs;
  p.sim_epoch_seconds = 100;
  p.sim_outer_seconds = 2;
  p.sim_preamble_seconds = 5;
  p.sim_ckpt_raw_bytes = 1 << 20;
  p.ckpt_shards = shards;
  p.task_kind = data::Task::kVision;
  p.real_samples = 32;
  p.real_batch = 8;
  p.real_feature_dim = 12;
  p.real_classes = 3;
  p.real_hidden = 12;
  p.seed = testutil::TestSeed(29);
  return p;
}

/// Records `profile` onto `fs` under "run"; returns the record result.
RecordResult RecordOnto(FileSystem* fs, const WorkloadProfile& profile,
                        const std::string& spool_prefix = "",
                        int64_t keep_last_k = 0) {
  Env env(std::make_unique<SimClock>(), fs);
  auto instance = MakeWorkloadFactory(profile, kProbeNone)();
  EXPECT_TRUE(instance.ok());
  RecordOptions opts = workloads::DefaultRecordOptions(profile, "run");
  opts.spool_prefix = spool_prefix;
  opts.gc.keep_last_k = keep_last_k;
  RecordSession session(&env, opts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Distinct checkpointed epochs per loop id, from a manifest.
std::map<int32_t, std::vector<int64_t>> EpochsByLoop(const Manifest& m) {
  std::map<int32_t, std::vector<int64_t>> out;
  std::set<int32_t> loops;
  for (const auto& rec : m.records) loops.insert(rec.key.loop_id);
  for (int32_t id : loops) out[id] = m.EpochsWithCheckpoint(id);
  return out;
}

/// Full byte image of everything under `prefix`.
std::map<std::string, std::string> SnapshotPrefix(const FileSystem& fs,
                                                  const std::string& prefix) {
  std::map<std::string, std::string> out;
  for (const auto& path : fs.ListPrefix(prefix)) {
    auto data = fs.ReadFile(path);
    EXPECT_TRUE(data.ok()) << path;
    out[path] = *data;
  }
  return out;
}

TEST(PlanRetirement, KeepsLastKPerLoopAndPinnedEpochs) {
  Manifest m;
  m.shard_count = 2;
  // Loop 2 at epochs 0..4, loop 5 at epochs 1,3, one epoch-less record.
  for (int64_t e = 0; e < 5; ++e) {
    CheckpointRecord rec;
    rec.key = {2, StrCat("e=", e)};
    rec.epoch = e;
    rec.shard = static_cast<int>(e % 2);
    m.records.push_back(rec);
  }
  for (int64_t e : {1, 3}) {
    CheckpointRecord rec;
    rec.key = {5, StrCat("e=", e)};
    rec.epoch = e;
    m.records.push_back(rec);
  }
  CheckpointRecord top;
  top.key = {9, ""};
  top.epoch = -1;
  m.records.push_back(top);

  GcPolicy policy;
  policy.keep_last_k = 2;
  policy.pinned_epochs = {0};
  const std::vector<size_t> retired = PlanRetirement(m, policy);
  // Loop 2 keeps {3, 4} (recency) + {0} (pinned) -> retires e=1, e=2
  // (indices 1, 2); loop 5 keeps both of its epochs; the epoch-less record
  // is eternal.
  EXPECT_EQ(retired, (std::vector<size_t>{1, 2}));

  // K = 0 plans nothing, unconditionally.
  policy.keep_last_k = 0;
  EXPECT_TRUE(PlanRetirement(m, policy).empty());
}

TEST(CheckpointGc, KeepLastKRetiresOldEpochsShardLocally) {
  MemFileSystem fs;
  const WorkloadProfile profile = GcProfile();
  const RecordResult rec = RecordOnto(&fs, profile);
  const auto before = EpochsByLoop(rec.manifest);
  const size_t objects_before = fs.ListPrefix("run/ckpt/").size();
  ASSERT_GT(objects_before, 0u);

  GcPolicy policy;
  policy.keep_last_k = 2;
  auto report = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->manifest_rewritten);
  EXPECT_TRUE(report->ok());
  EXPECT_EQ(report->shards.size(), 4u);
  EXPECT_GT(report->retired_objects(), 0);
  EXPECT_GT(report->retired_bytes(), 0u);

  auto manifest_bytes = fs.ReadFile("run/manifest.tsv");
  ASSERT_TRUE(manifest_bytes.ok());
  auto after_manifest = Manifest::Deserialize(*manifest_bytes);
  ASSERT_TRUE(after_manifest.ok());
  EXPECT_EQ(static_cast<int64_t>(after_manifest->records.size()),
            report->surviving_records);

  // Each loop keeps exactly its last two epochs.
  const auto after = EpochsByLoop(*after_manifest);
  for (const auto& [loop_id, epochs] : before) {
    const size_t keep = std::min<size_t>(2, epochs.size());
    std::vector<int64_t> expect(epochs.end() - keep, epochs.end());
    ASSERT_TRUE(after.count(loop_id)) << "loop " << loop_id;
    EXPECT_EQ(after.at(loop_id), expect) << "loop " << loop_id;
  }

  // Store consistency: every surviving record's object exists; the object
  // count dropped by exactly the retired count.
  CheckpointStore store(&fs, "run/ckpt", after_manifest->shard_count);
  for (const auto& r : after_manifest->records)
    EXPECT_TRUE(store.Exists(r.key)) << r.key.ToString();
  EXPECT_EQ(fs.ListPrefix("run/ckpt/").size(),
            objects_before - static_cast<size_t>(report->retired_objects()));

  // Idempotence: the survivors are already the last K epochs, so a second
  // pass is a no-op.
  auto again = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->manifest_rewritten);
  EXPECT_EQ(again->retired_objects(), 0);
}

TEST(CheckpointGc, DisabledRetentionIsByteIdenticalNoOp) {
  MemFileSystem fs;
  RecordOnto(&fs, GcProfile(/*epochs=*/8, /*shards=*/1));
  const auto before = SnapshotPrefix(fs, "run/");

  GcPolicy policy;  // keep_last_k = 0
  auto report = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->manifest_rewritten);
  EXPECT_EQ(report->retired_objects(), 0);
  // Shard-1, GC disabled: every run artifact byte-identical, including the
  // legacy-format manifest.
  EXPECT_EQ(SnapshotPrefix(fs, "run/"), before);
}

TEST(CheckpointGc, ReplayEnginesByteIdenticalOnRetiredStore) {
  MemFileSystem fs;
  const WorkloadProfile profile = GcProfile(/*epochs=*/12, /*shards=*/4);
  RecordOnto(&fs, profile);

  GcPolicy policy;
  policy.keep_last_k = 4;
  auto report = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy);
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->retired_objects(), 0);

  // Simulated engine on the retired store.
  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.init_mode = InitMode::kWeak;
  auto sim_result = sim::ClusterReplay(MakeWorkloadFactory(profile,
                                                           kProbeInner),
                                       &fs, copts);
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  EXPECT_TRUE(sim_result->deferred.ok)
      << (sim_result->deferred.anomalies.empty()
              ? ""
              : sim_result->deferred.anomalies[0]);

  // Real engine across thread counts: byte-identical to itself and to the
  // simulated engine.
  std::string baseline;
  for (int threads : {1, 2, 4}) {
    exec::ReplayExecutorOptions xopts;
    xopts.run_prefix = "run";
    xopts.num_threads = threads;
    xopts.num_partitions = 4;
    xopts.init_mode = InitMode::kWeak;
    exec::ReplayExecutor executor(&fs, xopts);
    auto result = executor.Run(MakeWorkloadFactory(profile, kProbeInner));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->deferred.ok);
    const std::string merged = result->merged_logs.Serialize();
    if (threads == 1) {
      baseline = merged;
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(merged, baseline) << threads << " threads";
    }
  }
  EXPECT_EQ(baseline, sim_result->merged_logs.Serialize());
}

TEST(CheckpointGc, PinnedReplayPlanSurvivesAggressiveRetention) {
  MemFileSystem fs;
  const WorkloadProfile profile = GcProfile(/*epochs=*/12, /*shards=*/4);
  const RecordResult rec = RecordOnto(&fs, profile);
  const auto epochs_before = EpochsByLoop(rec.manifest);
  auto factory = MakeWorkloadFactory(profile, kProbeInner);

  // Plan a 4-way replay and run it before any retention: the baseline.
  ClusterPlanOptions plan_opts;
  plan_opts.run_prefix = "run";
  plan_opts.num_workers = 4;
  plan_opts.init_mode = InitMode::kWeak;
  auto pinned = PlannedRestoreEpochs(factory, &fs, plan_opts);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  ASSERT_FALSE(pinned->empty());

  exec::ReplayExecutorOptions xopts;
  xopts.run_prefix = "run";
  xopts.num_threads = 4;
  xopts.num_partitions = 4;
  xopts.init_mode = InitMode::kWeak;
  auto before = exec::ReplayExecutor(&fs, xopts).Run(factory);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_TRUE(before->deferred.ok);

  // Aggressive retention with the plan's restore epochs pinned.
  GcPolicy policy;
  policy.keep_last_k = 1;
  policy.pinned_epochs = *pinned;
  auto report = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->retired_objects(), 0);

  // Every checkpoint the plan restores from is still present, for every
  // loop that had it before retention.
  auto manifest_bytes = fs.ReadFile("run/manifest.tsv");
  ASSERT_TRUE(manifest_bytes.ok());
  auto manifest = Manifest::Deserialize(*manifest_bytes);
  ASSERT_TRUE(manifest.ok());
  const auto epochs_after = EpochsByLoop(*manifest);
  for (int64_t e : *pinned) {
    for (const auto& [loop_id, epochs] : epochs_before) {
      if (!std::binary_search(epochs.begin(), epochs.end(), e)) continue;
      const std::vector<int64_t>& surviving = epochs_after.at(loop_id);
      EXPECT_TRUE(std::binary_search(surviving.begin(), surviving.end(), e))
          << "loop " << loop_id << " lost pinned epoch " << e;
    }
  }

  // The same 4-way replay still runs green after retention, and its merged
  // log is byte-identical to the pre-retention run.
  auto after = exec::ReplayExecutor(&fs, xopts).Run(factory);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after->deferred.ok);
  EXPECT_EQ(after->workers_used, before->workers_used);
  EXPECT_EQ(after->merged_logs.Serialize(), before->merged_logs.Serialize());
}

TEST(CheckpointGc, DeleteFailuresLeakOrphansNeverBreakReplay) {
  MemFileSystem base;
  FaultInjectionFileSystem fs(&base);
  const WorkloadProfile profile = GcProfile(/*epochs=*/10, /*shards=*/4);
  RecordOnto(&fs, profile);
  const size_t objects_before = base.ListPrefix("run/ckpt/").size();

  fs.InjectDeleteFailures(2, "run/ckpt");
  GcPolicy policy;
  policy.keep_last_k = 1;
  auto report = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->manifest_rewritten);
  EXPECT_EQ(report->failed_deletes(), 2);
  EXPECT_FALSE(report->ok());

  // The failed deletes leaked orphans: present on disk, absent from the
  // manifest.
  EXPECT_EQ(base.ListPrefix("run/ckpt/").size(),
            objects_before - static_cast<size_t>(report->retired_objects()));
  auto manifest_bytes = base.ReadFile("run/manifest.tsv");
  ASSERT_TRUE(manifest_bytes.ok());
  auto manifest = Manifest::Deserialize(*manifest_bytes);
  ASSERT_TRUE(manifest.ok());
  CheckpointStore store(&base, "run/ckpt", manifest->shard_count);
  size_t referenced = 0;
  for (const auto& r : manifest->records) {
    EXPECT_TRUE(store.Exists(r.key));
    ++referenced;
  }
  EXPECT_LT(referenced, base.ListPrefix("run/ckpt/").size());

  // Replay ignores orphans: still green on the real engine.
  exec::ReplayExecutorOptions xopts;
  xopts.run_prefix = "run";
  xopts.num_threads = 2;
  xopts.num_partitions = 2;
  xopts.init_mode = InitMode::kWeak;
  auto result = exec::ReplayExecutor(&base, xopts)
                    .Run(MakeWorkloadFactory(profile, kProbeInner));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->deferred.ok);
}

TEST(CheckpointGc, RecordSessionLifecycleSpoolsThenRetires) {
  // The full pipeline through RecordSession alone: record + spool-as-you-
  // materialize + keep-last-K retirement, no bench-side spool or GC calls.
  MemFileSystem fs;
  const WorkloadProfile profile = GcProfile(/*epochs=*/12, /*shards=*/4);
  const RecordResult rec =
      RecordOnto(&fs, profile, /*spool_prefix=*/"s3", /*keep_last_k=*/2);

  // Spooling covered every materialized checkpoint (pre-retirement), with
  // per-shard reports summing to the aggregate.
  EXPECT_EQ(rec.spool_shard_reports.size(), 4u);
  EXPECT_TRUE(rec.spool_report.ok()) << rec.spool_report.first_error;
  EXPECT_EQ(rec.spool_report.objects,
            rec.gc_report.retired_objects() +
                static_cast<int64_t>(rec.manifest.records.size()));
  int64_t shard_sum = 0;
  for (const auto& r : rec.spool_shard_reports) shard_sum += r.objects;
  EXPECT_EQ(shard_sum, rec.spool_report.objects);

  // The bucket is the durable archive: it mirrors every spooled object
  // byte-for-byte, including ones retirement later deleted locally.
  size_t bucket_objects = 0;
  for (const auto& path : fs.ListPrefix("s3/run/ckpt/")) {
    ++bucket_objects;
    const std::string local = path.substr(3);  // strip "s3/"
    if (fs.Exists(local)) {
      auto bucket = fs.ReadFile(path);
      auto local_data = fs.ReadFile(local);
      ASSERT_TRUE(bucket.ok() && local_data.ok());
      EXPECT_EQ(*bucket, *local_data) << path;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(bucket_objects), rec.spool_report.objects);

  // Retirement ran and the result manifest reflects the survivors.
  EXPECT_GT(rec.gc_report.retired_objects(), 0);
  EXPECT_TRUE(rec.gc_report.ok());
  CheckpointStore store(&fs, "run/ckpt", rec.manifest.shard_count);
  for (const auto& r : rec.manifest.records)
    EXPECT_TRUE(store.Exists(r.key)) << r.key.ToString();
  for (const auto& [loop_id, epochs] : EpochsByLoop(rec.manifest))
    EXPECT_LE(epochs.size(), 2u) << "loop " << loop_id;

  // And the retired run replays green, byte-identically on both engines.
  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.init_mode = InitMode::kWeak;
  auto sim_result = sim::ClusterReplay(MakeWorkloadFactory(profile,
                                                           kProbeInner),
                                       &fs, copts);
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  EXPECT_TRUE(sim_result->deferred.ok);

  exec::ReplayExecutorOptions xopts;
  xopts.run_prefix = "run";
  xopts.num_threads = 4;
  xopts.num_partitions = 4;
  xopts.init_mode = InitMode::kWeak;
  auto real_result = exec::ReplayExecutor(&fs, xopts)
                         .Run(MakeWorkloadFactory(profile, kProbeInner));
  ASSERT_TRUE(real_result.ok()) << real_result.status().ToString();
  EXPECT_TRUE(real_result->deferred.ok);
  EXPECT_EQ(real_result->merged_logs.Serialize(),
            sim_result->merged_logs.Serialize());
}

TEST(CheckpointGc, ManifestPersistFailureRetiresNothing) {
  MemFileSystem base;
  FaultInjectionFileSystem fs(&base);
  const WorkloadProfile profile = GcProfile(/*epochs=*/8, /*shards=*/2);
  RecordOnto(&fs, profile);
  const auto before = SnapshotPrefix(base, "run/");

  fs.InjectWriteFailures(1, "manifest.tsv");
  GcPolicy policy;
  policy.keep_last_k = 1;
  auto report = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy);
  EXPECT_FALSE(report.ok());
  // Manifest-first ordering: if the pruned manifest cannot land, nothing
  // is deleted and the run is untouched.
  EXPECT_EQ(SnapshotPrefix(base, "run/"), before);
}

}  // namespace
}  // namespace flor
