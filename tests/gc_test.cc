// Shard-aware checkpoint GC (checkpoint/gc.h): keep-last-K-per-loop
// planning, manifest-first atomicity, shard-local deletes, pinned replay
// plans, delete-failure orphans, and the end-to-end record→spool→retire
// lifecycle through RecordSession — including byte parity of both replay
// engines on a retired store.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "checkpoint/gc.h"
#include "checkpoint/spool.h"
#include "checkpoint/store.h"
#include "common/strings.h"
#include "env/filesystem.h"
#include "exec/replay_executor.h"
#include "flor/record.h"
#include "flor/replay_plan.h"
#include "sim/parallel_replay.h"
#include "test_util.h"
#include "workloads/programs.h"

namespace flor {
namespace {

using workloads::kProbeInner;
using workloads::kProbeNone;
using workloads::MakeWorkloadFactory;
using workloads::WorkloadProfile;

/// Densely checkpointed workload (cheap checkpoints vs epoch cost) so the
/// GC has a long epoch timeline to retire from.
WorkloadProfile GcProfile(int64_t epochs = 12, int shards = 4) {
  WorkloadProfile p;
  p.name = "GcT";
  p.epochs = epochs;
  p.sim_epoch_seconds = 100;
  p.sim_outer_seconds = 2;
  p.sim_preamble_seconds = 5;
  p.sim_ckpt_raw_bytes = 1 << 20;
  p.ckpt_shards = shards;
  p.task_kind = data::Task::kVision;
  p.real_samples = 32;
  p.real_batch = 8;
  p.real_feature_dim = 12;
  p.real_classes = 3;
  p.real_hidden = 12;
  p.seed = testutil::TestSeed(29);
  return p;
}

/// Records `profile` onto `fs` under "run"; returns the record result.
RecordResult RecordOnto(FileSystem* fs, const WorkloadProfile& profile,
                        const std::string& spool_prefix = "",
                        int64_t keep_last_k = 0) {
  Env env(std::make_unique<SimClock>(), fs);
  auto instance = MakeWorkloadFactory(profile, kProbeNone)();
  EXPECT_TRUE(instance.ok());
  RecordOptions opts = workloads::DefaultRecordOptions(profile, "run");
  opts.spool_prefix = spool_prefix;
  opts.gc.keep_last_k = keep_last_k;
  RecordSession session(&env, opts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Distinct checkpointed epochs per loop id, from a manifest.
std::map<int32_t, std::vector<int64_t>> EpochsByLoop(const Manifest& m) {
  std::map<int32_t, std::vector<int64_t>> out;
  std::set<int32_t> loops;
  for (const auto& rec : m.records) loops.insert(rec.key.loop_id);
  for (int32_t id : loops) out[id] = m.EpochsWithCheckpoint(id);
  return out;
}

/// Full byte image of everything under `prefix`.
std::map<std::string, std::string> SnapshotPrefix(const FileSystem& fs,
                                                  const std::string& prefix) {
  std::map<std::string, std::string> out;
  for (const auto& path : fs.ListPrefix(prefix)) {
    auto data = fs.ReadFile(path);
    EXPECT_TRUE(data.ok()) << path;
    out[path] = *data;
  }
  return out;
}

TEST(PlanRetirement, KeepsLastKPerLoopAndPinnedEpochs) {
  Manifest m;
  m.shard_count = 2;
  // Loop 2 at epochs 0..4, loop 5 at epochs 1,3, one epoch-less record.
  for (int64_t e = 0; e < 5; ++e) {
    CheckpointRecord rec;
    rec.key = {2, StrCat("e=", e)};
    rec.epoch = e;
    rec.shard = static_cast<int>(e % 2);
    m.records.push_back(rec);
  }
  for (int64_t e : {1, 3}) {
    CheckpointRecord rec;
    rec.key = {5, StrCat("e=", e)};
    rec.epoch = e;
    m.records.push_back(rec);
  }
  CheckpointRecord top;
  top.key = {9, ""};
  top.epoch = -1;
  m.records.push_back(top);

  GcPolicy policy;
  policy.keep_last_k = 2;
  policy.pinned_epochs = {0};
  const std::vector<size_t> retired = PlanRetirement(m, policy);
  // Loop 2 keeps {3, 4} (recency) + {0} (pinned) -> retires e=1, e=2
  // (indices 1, 2); loop 5 keeps both of its epochs; the epoch-less record
  // is eternal.
  EXPECT_EQ(retired, (std::vector<size_t>{1, 2}));

  // K = 0 plans nothing, unconditionally.
  policy.keep_last_k = 0;
  EXPECT_TRUE(PlanRetirement(m, policy).empty());
}

TEST(PlanRetirement, PinsScopePerLoopNestedRecordsRetire) {
  // Pins come from PlannedRestoreEpochs and protect the checkpoints worker
  // init restores — the *epoch-level* records (single-segment "e=N" ctx).
  // Nested-loop records (ctx "e=N/i=M") are never init-restore targets:
  // restoring an epoch-level loop skips its body, so nested loops are not
  // entered during init. They must retire by recency even at pinned
  // epochs — pinning them in every loop's keep-set kept them forever.
  Manifest m;
  // Epoch-level loop 2 and nested loop 7, both at epochs 0..5.
  for (int64_t e = 0; e < 6; ++e) {
    CheckpointRecord epoch_level;
    epoch_level.key = {2, StrCat("e=", e)};
    epoch_level.epoch = e;
    m.records.push_back(epoch_level);
    CheckpointRecord nested;
    nested.key = {7, StrCat("e=", e, "/i=1")};
    nested.epoch = e;
    m.records.push_back(nested);
  }

  GcPolicy policy;
  policy.keep_last_k = 1;
  policy.pinned_epochs = {0, 2};
  const std::vector<size_t> retired = PlanRetirement(m, policy);

  std::set<std::string> retired_keys;
  for (size_t idx : retired)
    retired_keys.insert(m.records[idx].key.ToString());
  // Epoch-level loop 2: keeps e=5 (recency) and e=0, e=2 (pins).
  EXPECT_EQ(retired_keys.count(CheckpointKey{2, "e=5"}.ToString()), 0u);
  EXPECT_EQ(retired_keys.count(CheckpointKey{2, "e=0"}.ToString()), 0u);
  EXPECT_EQ(retired_keys.count(CheckpointKey{2, "e=2"}.ToString()), 0u);
  EXPECT_EQ(retired_keys.count(CheckpointKey{2, "e=1"}.ToString()), 1u);
  // Nested loop 7: keeps only e=5 — the pinned epochs retire with the
  // rest of its timeline.
  EXPECT_EQ(retired_keys.count(
                CheckpointKey{7, "e=5/i=1"}.ToString()), 0u);
  EXPECT_EQ(retired_keys.count(
                CheckpointKey{7, "e=0/i=1"}.ToString()), 1u);
  EXPECT_EQ(retired_keys.count(
                CheckpointKey{7, "e=2/i=1"}.ToString()), 1u);
  // 12 records, kept: 3 epoch-level + 1 nested.
  EXPECT_EQ(retired.size(), 8u);
}

TEST(CheckpointGc, KeepLastKRetiresOldEpochsShardLocally) {
  MemFileSystem fs;
  const WorkloadProfile profile = GcProfile();
  const RecordResult rec = RecordOnto(&fs, profile);
  const auto before = EpochsByLoop(rec.manifest);
  const size_t objects_before = fs.ListPrefix("run/ckpt/").size();
  ASSERT_GT(objects_before, 0u);

  GcPolicy policy;
  policy.keep_last_k = 2;
  auto report = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->manifest_rewritten);
  EXPECT_TRUE(report->ok());
  EXPECT_EQ(report->shards.size(), 4u);
  EXPECT_GT(report->retired_objects(), 0);
  EXPECT_GT(report->retired_bytes(), 0u);

  auto manifest_bytes = fs.ReadFile("run/manifest.tsv");
  ASSERT_TRUE(manifest_bytes.ok());
  auto after_manifest = Manifest::Deserialize(*manifest_bytes);
  ASSERT_TRUE(after_manifest.ok());
  EXPECT_EQ(static_cast<int64_t>(after_manifest->records.size()),
            report->surviving_records);

  // Each loop keeps exactly its last two epochs.
  const auto after = EpochsByLoop(*after_manifest);
  for (const auto& [loop_id, epochs] : before) {
    const size_t keep = std::min<size_t>(2, epochs.size());
    std::vector<int64_t> expect(epochs.end() - keep, epochs.end());
    ASSERT_TRUE(after.count(loop_id)) << "loop " << loop_id;
    EXPECT_EQ(after.at(loop_id), expect) << "loop " << loop_id;
  }

  // Store consistency: every surviving record's object exists; the object
  // count dropped by exactly the retired count.
  CheckpointStore store(&fs, "run/ckpt", after_manifest->shard_count);
  for (const auto& r : after_manifest->records)
    EXPECT_TRUE(store.Exists(r.key)) << r.key.ToString();
  EXPECT_EQ(fs.ListPrefix("run/ckpt/").size(),
            objects_before - static_cast<size_t>(report->retired_objects()));

  // Idempotence: the survivors are already the last K epochs, so a second
  // pass is a no-op.
  auto again = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->manifest_rewritten);
  EXPECT_EQ(again->retired_objects(), 0);
}

TEST(CheckpointGc, DisabledRetentionIsByteIdenticalNoOp) {
  MemFileSystem fs;
  RecordOnto(&fs, GcProfile(/*epochs=*/8, /*shards=*/1));
  const auto before = SnapshotPrefix(fs, "run/");

  GcPolicy policy;  // keep_last_k = 0
  auto report = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->manifest_rewritten);
  EXPECT_EQ(report->retired_objects(), 0);
  // Shard-1, GC disabled: every run artifact byte-identical, including the
  // legacy-format manifest.
  EXPECT_EQ(SnapshotPrefix(fs, "run/"), before);
}

TEST(CheckpointGc, ReplayEnginesByteIdenticalOnRetiredStore) {
  MemFileSystem fs;
  const WorkloadProfile profile = GcProfile(/*epochs=*/12, /*shards=*/4);
  RecordOnto(&fs, profile);

  GcPolicy policy;
  policy.keep_last_k = 4;
  auto report = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy);
  ASSERT_TRUE(report.ok());
  ASSERT_GT(report->retired_objects(), 0);

  // Simulated engine on the retired store.
  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.init_mode = InitMode::kWeak;
  auto sim_result = sim::ClusterReplay(MakeWorkloadFactory(profile,
                                                           kProbeInner),
                                       &fs, copts);
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  EXPECT_TRUE(sim_result->deferred.ok)
      << (sim_result->deferred.anomalies.empty()
              ? ""
              : sim_result->deferred.anomalies[0]);

  // Real engine across thread counts: byte-identical to itself and to the
  // simulated engine.
  std::string baseline;
  for (int threads : {1, 2, 4}) {
    exec::ReplayExecutorOptions xopts;
    xopts.run_prefix = "run";
    xopts.num_threads = threads;
    xopts.num_partitions = 4;
    xopts.init_mode = InitMode::kWeak;
    exec::ReplayExecutor executor(&fs, xopts);
    auto result = executor.Run(MakeWorkloadFactory(profile, kProbeInner));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->deferred.ok);
    const std::string merged = result->merged_logs.Serialize();
    if (threads == 1) {
      baseline = merged;
      EXPECT_FALSE(baseline.empty());
    } else {
      EXPECT_EQ(merged, baseline) << threads << " threads";
    }
  }
  EXPECT_EQ(baseline, sim_result->merged_logs.Serialize());
}

TEST(CheckpointGc, PinnedReplayPlanSurvivesAggressiveRetention) {
  MemFileSystem fs;
  const WorkloadProfile profile = GcProfile(/*epochs=*/12, /*shards=*/4);
  const RecordResult rec = RecordOnto(&fs, profile);
  const auto epochs_before = EpochsByLoop(rec.manifest);
  auto factory = MakeWorkloadFactory(profile, kProbeInner);

  // Plan a 4-way replay and run it before any retention: the baseline.
  ClusterPlanOptions plan_opts;
  plan_opts.run_prefix = "run";
  plan_opts.num_workers = 4;
  plan_opts.init_mode = InitMode::kWeak;
  auto pinned = PlannedRestoreEpochs(factory, &fs, plan_opts);
  ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
  ASSERT_FALSE(pinned->empty());

  exec::ReplayExecutorOptions xopts;
  xopts.run_prefix = "run";
  xopts.num_threads = 4;
  xopts.num_partitions = 4;
  xopts.init_mode = InitMode::kWeak;
  auto before = exec::ReplayExecutor(&fs, xopts).Run(factory);
  ASSERT_TRUE(before.ok()) << before.status().ToString();
  ASSERT_TRUE(before->deferred.ok);

  // Aggressive retention with the plan's restore epochs pinned.
  GcPolicy policy;
  policy.keep_last_k = 1;
  policy.pinned_epochs = *pinned;
  auto report = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->retired_objects(), 0);

  // Every checkpoint the plan restores from is still present, for every
  // loop that had it before retention.
  auto manifest_bytes = fs.ReadFile("run/manifest.tsv");
  ASSERT_TRUE(manifest_bytes.ok());
  auto manifest = Manifest::Deserialize(*manifest_bytes);
  ASSERT_TRUE(manifest.ok());
  const auto epochs_after = EpochsByLoop(*manifest);
  for (int64_t e : *pinned) {
    for (const auto& [loop_id, epochs] : epochs_before) {
      if (!std::binary_search(epochs.begin(), epochs.end(), e)) continue;
      const std::vector<int64_t>& surviving = epochs_after.at(loop_id);
      EXPECT_TRUE(std::binary_search(surviving.begin(), surviving.end(), e))
          << "loop " << loop_id << " lost pinned epoch " << e;
    }
  }

  // The same 4-way replay still runs green after retention, and its merged
  // log is byte-identical to the pre-retention run.
  auto after = exec::ReplayExecutor(&fs, xopts).Run(factory);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_TRUE(after->deferred.ok);
  EXPECT_EQ(after->workers_used, before->workers_used);
  EXPECT_EQ(after->merged_logs.Serialize(), before->merged_logs.Serialize());
}

TEST(CheckpointGc, DeleteFailuresLeakOrphansNeverBreakReplay) {
  MemFileSystem base;
  FaultInjectionFileSystem fs(&base);
  const WorkloadProfile profile = GcProfile(/*epochs=*/10, /*shards=*/4);
  RecordOnto(&fs, profile);
  const size_t objects_before = base.ListPrefix("run/ckpt/").size();

  fs.InjectDeleteFailures(2, "run/ckpt");
  GcPolicy policy;
  policy.keep_last_k = 1;
  auto report = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->manifest_rewritten);
  EXPECT_EQ(report->failed_deletes(), 2);
  EXPECT_FALSE(report->ok());

  // The failed deletes leaked orphans: present on disk, absent from the
  // manifest.
  EXPECT_EQ(base.ListPrefix("run/ckpt/").size(),
            objects_before - static_cast<size_t>(report->retired_objects()));
  auto manifest_bytes = base.ReadFile("run/manifest.tsv");
  ASSERT_TRUE(manifest_bytes.ok());
  auto manifest = Manifest::Deserialize(*manifest_bytes);
  ASSERT_TRUE(manifest.ok());
  CheckpointStore store(&base, "run/ckpt", manifest->shard_count);
  size_t referenced = 0;
  for (const auto& r : manifest->records) {
    EXPECT_TRUE(store.Exists(r.key));
    ++referenced;
  }
  EXPECT_LT(referenced, base.ListPrefix("run/ckpt/").size());

  // Replay ignores orphans: still green on the real engine.
  exec::ReplayExecutorOptions xopts;
  xopts.run_prefix = "run";
  xopts.num_threads = 2;
  xopts.num_partitions = 2;
  xopts.init_mode = InitMode::kWeak;
  auto result = exec::ReplayExecutor(&base, xopts)
                    .Run(MakeWorkloadFactory(profile, kProbeInner));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->deferred.ok);
}

TEST(CheckpointGc, RecordSessionLifecycleSpoolsThenDemotes) {
  // The full pipeline through RecordSession alone: record + spool-as-you-
  // materialize + keep-last-K retirement. With the spool mirror attached
  // as the store's bucket tier, the end-of-run GC *demotes*: local copies
  // of old epochs are deleted, the manifest stays complete, and replay
  // faults demoted checkpoints back in from the bucket.
  MemFileSystem fs;
  const WorkloadProfile profile = GcProfile(/*epochs=*/12, /*shards=*/4);
  const RecordResult rec =
      RecordOnto(&fs, profile, /*spool_prefix=*/"s3", /*keep_last_k=*/2);

  // Spooling covered every materialized checkpoint, with per-shard
  // reports summing to the aggregate. Demotion keeps the manifest
  // complete, so the record count equals the spool count.
  EXPECT_EQ(rec.spool_shard_reports.size(), 4u);
  EXPECT_TRUE(rec.spool_report.ok()) << rec.spool_report.first_error;
  EXPECT_EQ(rec.spool_report.objects,
            static_cast<int64_t>(rec.manifest.records.size()));
  int64_t shard_sum = 0;
  for (const auto& r : rec.spool_shard_reports) shard_sum += r.objects;
  EXPECT_EQ(shard_sum, rec.spool_report.objects);

  // The GC demoted: local deletes only, no manifest rewrite, and every
  // demoted object had already been spooled (end-of-run GC runs after the
  // spool drain).
  EXPECT_TRUE(rec.gc_report.demoted_to_bucket);
  EXPECT_FALSE(rec.gc_report.manifest_rewritten);
  EXPECT_GT(rec.gc_report.retired_objects(), 0);
  EXPECT_EQ(rec.gc_report.skipped_unspooled(), 0);
  EXPECT_TRUE(rec.gc_report.ok());

  // The bucket is the durable archive: it mirrors every spooled object
  // byte-for-byte, including ones demotion deleted locally.
  size_t bucket_objects = 0;
  for (const auto& path : fs.ListPrefix("s3/run/ckpt/")) {
    ++bucket_objects;
    const std::string local = path.substr(3);  // strip "s3/"
    if (fs.Exists(local)) {
      auto bucket = fs.ReadFile(path);
      auto local_data = fs.ReadFile(local);
      ASSERT_TRUE(bucket.ok() && local_data.ok());
      EXPECT_EQ(*bucket, *local_data) << path;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(bucket_objects), rec.spool_report.objects);

  // Locally, only records.size() - retired objects remain, at most the
  // two newest epochs per loop; through the tiers, every manifest record
  // is still readable.
  EXPECT_EQ(fs.ListPrefix("run/ckpt/").size(),
            rec.manifest.records.size() -
                static_cast<size_t>(rec.gc_report.retired_objects()));
  CheckpointStore local_only(&fs, "run/ckpt", rec.manifest.shard_count);
  std::map<int32_t, std::set<int64_t>> local_epochs;
  for (const auto& r : rec.manifest.records) {
    if (r.epoch >= 0 && local_only.Exists(r.key))
      local_epochs[r.key.loop_id].insert(r.epoch);
  }
  for (const auto& [loop_id, epochs] : local_epochs)
    EXPECT_LE(epochs.size(), 2u) << "loop " << loop_id;
  CheckpointStore tiered(&fs, "run/ckpt", rec.manifest.shard_count);
  tiered.AttachBucket("s3", /*rehydrate_on_fault=*/false);
  for (const auto& r : rec.manifest.records)
    EXPECT_TRUE(tiered.Exists(r.key)) << r.key.ToString();

  // And the demoted run replays green, byte-identically on both engines,
  // faulting old epochs in from the bucket.
  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.init_mode = InitMode::kWeak;
  copts.bucket_prefix = "s3";
  copts.bucket_rehydrate = false;
  auto sim_result = sim::ClusterReplay(MakeWorkloadFactory(profile,
                                                           kProbeInner),
                                       &fs, copts);
  ASSERT_TRUE(sim_result.ok()) << sim_result.status().ToString();
  EXPECT_TRUE(sim_result->deferred.ok);
  EXPECT_GT(sim_result->bucket_faults, 0);

  exec::ReplayExecutorOptions xopts;
  xopts.run_prefix = "run";
  xopts.num_threads = 4;
  xopts.num_partitions = 4;
  xopts.init_mode = InitMode::kWeak;
  xopts.bucket_prefix = "s3";
  xopts.bucket_rehydrate = false;
  auto real_result = exec::ReplayExecutor(&fs, xopts)
                         .Run(MakeWorkloadFactory(profile, kProbeInner));
  ASSERT_TRUE(real_result.ok()) << real_result.status().ToString();
  EXPECT_TRUE(real_result->deferred.ok);
  EXPECT_EQ(real_result->bucket_faults, sim_result->bucket_faults);
  EXPECT_EQ(real_result->merged_logs.Serialize(),
            sim_result->merged_logs.Serialize());
}

TEST(CheckpointGc, ManifestPersistFailureRetiresNothing) {
  MemFileSystem base;
  FaultInjectionFileSystem fs(&base);
  const WorkloadProfile profile = GcProfile(/*epochs=*/8, /*shards=*/2);
  RecordOnto(&fs, profile);
  const auto before = SnapshotPrefix(base, "run/");

  fs.InjectWriteFailures(1, "manifest.tsv");
  GcPolicy policy;
  policy.keep_last_k = 1;
  auto report = RetireRun(&fs, "run/manifest.tsv", "run/ckpt", policy);
  EXPECT_FALSE(report.ok());
  // Manifest-first ordering: if the pruned manifest cannot land, nothing
  // is deleted and the run is untouched.
  EXPECT_EQ(SnapshotPrefix(base, "run/"), before);
}

}  // namespace
}  // namespace flor
