// Unit tests: Table-1 rule matching, loop side-effect analysis with
// loop-scoped filtering, instrumentation policy, runtime augmentation.

#include <gtest/gtest.h>

#include "analysis/augment.h"
#include "analysis/changeset.h"
#include "analysis/side_effect.h"
#include "flor/instrument.h"
#include "ir/builder.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "test_util.h"
#include "nn/scheduler.h"

namespace flor {
namespace analysis {
namespace {

ir::Stmt MakeStmt(ir::StmtPattern pattern,
                  std::vector<std::string> targets = {},
                  std::string receiver = "", std::string callee = "f",
                  std::vector<std::string> reads = {}) {
  ir::Stmt s;
  s.pattern = pattern;
  s.targets = std::move(targets);
  s.receiver = std::move(receiver);
  s.callee = std::move(callee);
  s.reads = std::move(reads);
  return s;
}

TEST(Rules, Rule1MethodAssignAddsReceiverAndTargets) {
  auto s = MakeStmt(ir::StmtPattern::kMethodAssign, {"a", "b"}, "obj",
                    "method");
  auto out = ApplyRules(s, {});
  EXPECT_EQ(out.rule, 1);
  EXPECT_FALSE(out.refuse);
  EXPECT_EQ(out.delta, (std::vector<std::string>{"obj", "a", "b"}));
}

TEST(Rules, Rule2CallAssignAddsTargets) {
  auto s = MakeStmt(ir::StmtPattern::kCallAssign, {"v"});
  auto out = ApplyRules(s, {});
  EXPECT_EQ(out.rule, 2);
  EXPECT_EQ(out.delta, (std::vector<std::string>{"v"}));
}

TEST(Rules, Rule3AssignAddsTargets) {
  auto s = MakeStmt(ir::StmtPattern::kAssign, {"x", "y"});
  auto out = ApplyRules(s, {});
  EXPECT_EQ(out.rule, 3);
  EXPECT_EQ(out.delta, (std::vector<std::string>{"x", "y"}));
}

TEST(Rules, Rule4MethodCallAddsReceiver) {
  auto s = MakeStmt(ir::StmtPattern::kMethodCall, {}, "optimizer", "step");
  auto out = ApplyRules(s, {});
  EXPECT_EQ(out.rule, 4);
  EXPECT_EQ(out.delta, (std::vector<std::string>{"optimizer"}));
}

TEST(Rules, Rule5OpaqueCallRefuses) {
  auto s = MakeStmt(ir::StmtPattern::kOpaqueCall);
  auto out = ApplyRules(s, {});
  EXPECT_EQ(out.rule, 5);
  EXPECT_TRUE(out.refuse);
}

TEST(Rules, Rule0PrecedesWhenTargetAlreadyModified) {
  // Any assignment form whose target is already in the changeset refuses.
  for (auto pattern :
       {ir::StmtPattern::kAssign, ir::StmtPattern::kCallAssign,
        ir::StmtPattern::kMethodAssign}) {
    auto s = MakeStmt(pattern, {"x"}, "obj", "m");
    auto out = ApplyRules(s, {"x"});
    EXPECT_EQ(out.rule, 0) << ir::StmtPatternName(pattern);
    EXPECT_TRUE(out.refuse);
  }
}

TEST(Rules, LogActivatesNoRule) {
  ir::Stmt s;
  s.pattern = ir::StmtPattern::kLog;
  s.log_label = "loss";
  auto out = ApplyRules(s, {"loss"});
  EXPECT_EQ(out.rule, -1);
  EXPECT_FALSE(out.refuse);
  EXPECT_TRUE(out.delta.empty());
}

/// The paper's Fig. 6 training loop, as close as the IR allows.
std::unique_ptr<ir::Program> PaperExampleProgram() {
  ir::ProgramBuilder b;
  b.CallAssign({"trainloader"}, "make_loader", {}, nullptr);
  b.CallAssign({"num_batches"}, "len", {"trainloader"}, nullptr);
  b.CallAssign({"net"}, "build_model", {}, nullptr);
  b.CallAssign({"optimizer"}, "make_optimizer", {"net"}, nullptr);
  b.CallAssign({"scheduler"}, "make_scheduler", {"optimizer"}, nullptr);
  b.BeginLoop("e", 10);  // main loop (L1)
  {
    b.BeginLoopVar("i", "num_batches");  // training loop (L2)
    {
      b.MethodCall("optimizer", "zero_grad", {}, nullptr);
      b.CallAssign({"batch", "labels"}, "fetch_batch",
                   {"trainloader", "e", "i"}, nullptr);
      b.CallAssign({"preds"}, "forward", {"net", "batch"}, nullptr);
      b.CallAssign({"loss", "grad"}, "criterion", {"preds", "labels"},
                   nullptr);
      b.MethodCall("grad", "backward", {"net"}, nullptr);
      b.MethodCall("optimizer", "step", {}, nullptr);
      b.Log("loss", nullptr, {"loss"});
    }
    b.EndLoop();
    b.MethodCall("scheduler", "step", {}, nullptr);
    b.CallAssign({"test_acc"}, "evaluate", {"net", "e"}, nullptr);
    b.OpaqueCall("save_checkpoint", {"net"}, nullptr);  // rule 5
  }
  b.EndLoop();
  return b.Build();
}

TEST(SideEffect, PaperExampleChangesets) {
  auto program = PaperExampleProgram();
  AnalyzeProgram(program.get());

  ir::Loop* main_loop = program->FindLoop(1);
  ir::Loop* train_loop = program->FindLoop(2);
  ASSERT_NE(main_loop, nullptr);
  ASSERT_NE(train_loop, nullptr);

  // Training loop: eligible; changeset is exactly {optimizer} after the
  // loop-scoped filter drops batch/labels/preds/loss/grad (paper §5.2.1).
  EXPECT_TRUE(train_loop->analysis().refusal.empty());
  EXPECT_EQ(train_loop->analysis().changeset,
            (std::vector<std::string>{"optimizer"}));
  EXPECT_EQ(train_loop->analysis().filtered,
            (std::vector<std::string>{"batch", "grad", "labels", "loss",
                                      "preds"}));

  // Main loop: refused due to the rule-5 save_checkpoint call.
  EXPECT_FALSE(main_loop->analysis().refusal.empty());
  EXPECT_NE(main_loop->analysis().refusal.find("rule 5"),
            std::string::npos);
}

TEST(SideEffect, Rule0RefusesLoop) {
  ir::ProgramBuilder b;
  b.CallAssign({"acc"}, "init", {}, nullptr);
  b.BeginLoop("i", 5);
  b.CallAssign({"acc"}, "f", {"acc"}, nullptr);   // acc enters changeset
  b.Assign({"acc"}, {"acc"}, nullptr);            // reassign: rule 0
  b.EndLoop();
  auto program = b.Build();
  AnalyzeProgram(program.get());
  auto* loop = program->FindLoop(1);
  EXPECT_NE(loop->analysis().refusal.find("rule 0"), std::string::npos);
}

TEST(SideEffect, NestedRefusalPropagates) {
  ir::ProgramBuilder b;
  b.BeginLoop("e", 3);
  b.BeginLoop("i", 3);
  b.OpaqueCall("mystery", {}, nullptr);
  b.EndLoop();
  b.EndLoop();
  auto program = b.Build();
  AnalyzeProgram(program.get());
  EXPECT_NE(program->FindLoop(1)->analysis().refusal.find("nested loop"),
            std::string::npos);
  EXPECT_NE(program->FindLoop(2)->analysis().refusal.find("rule 5"),
            std::string::npos);
}

TEST(SideEffect, NestedChangesetMergesIntoParent) {
  ir::ProgramBuilder b;
  b.CallAssign({"model"}, "build", {}, nullptr);
  b.BeginLoop("e", 3);
  b.BeginLoop("i", 3);
  b.MethodCall("model", "update", {}, nullptr);
  b.EndLoop();
  b.EndLoop();
  auto program = b.Build();
  AnalyzeProgram(program.get());
  // Outer loop's changeset includes the nested loop's effect on model.
  EXPECT_EQ(program->FindLoop(1)->analysis().changeset,
            (std::vector<std::string>{"model"}));
  // The nested iteration variable does not leak.
  for (const auto& v : program->FindLoop(1)->analysis().changeset)
    EXPECT_NE(v, "i");
}

TEST(SideEffect, LoopScopedReceiverFiltered) {
  ir::ProgramBuilder b;
  b.BeginLoop("i", 3);
  b.CallAssign({"tmp_obj"}, "make", {}, nullptr);
  b.MethodCall("tmp_obj", "mutate", {}, nullptr);
  b.EndLoop();
  auto program = b.Build();
  AnalyzeProgram(program.get());
  auto& a = program->FindLoop(1)->analysis();
  EXPECT_TRUE(a.changeset.empty());
  EXPECT_EQ(a.filtered, (std::vector<std::string>{"tmp_obj"}));
}

TEST(Instrument, PolicyWrapsTrainingLoopOnly) {
  auto program = PaperExampleProgram();
  InstrumentReport report = InstrumentProgram(program.get());
  EXPECT_EQ(report.loops_total, 2);
  EXPECT_EQ(report.loops_instrumented, 1);
  EXPECT_FALSE(program->FindLoop(1)->analysis().instrumented);  // main
  EXPECT_TRUE(program->FindLoop(2)->analysis().instrumented);   // training
  // Main-loop refusal reason mentions the generator.
  bool main_refused = false;
  for (const auto& [id, reason] : report.refusals)
    if (id == 1) main_refused = true;
  EXPECT_TRUE(main_refused);
}

TEST(Instrument, SkippableEpochLoops) {
  auto program = PaperExampleProgram();
  InstrumentProgram(program.get());
  auto loops = SkippableEpochLoops(program.get());
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0]->id(), 2);
}

TEST(Augment, OptimizerPullsModelAndScheduler) {
  Rng rng = testutil::SeededRng(1);
  nn::Linear net("net", 2, 2, &rng);
  nn::Sgd opt(&net, 0.1f);
  nn::StepLr sched(&opt, 2, 0.5f);

  exec::Frame frame;
  frame.Set("net", ir::Value::ModuleRef(&net));
  frame.Set("optimizer", ir::Value::OptimizerRef(&opt));
  frame.Set("scheduler", ir::Value::SchedulerRef(&sched));
  frame.Set("unrelated", ir::Value::Int(3));

  auto augmented = AugmentChangeset(frame, {"optimizer"});
  EXPECT_EQ(augmented, (std::vector<std::string>{"net", "optimizer",
                                                 "scheduler"}));
}

TEST(Augment, SchedulerPullsOptimizerTransitively) {
  Rng rng = testutil::SeededRng(2);
  nn::Linear net("net", 2, 2, &rng);
  nn::Adam opt(&net, 0.1f);
  nn::CosineLr sched(&opt, 10);

  exec::Frame frame;
  frame.Set("model", ir::Value::ModuleRef(&net));
  frame.Set("opt", ir::Value::OptimizerRef(&opt));
  frame.Set("sched", ir::Value::SchedulerRef(&sched));

  auto augmented = AugmentChangeset(frame, {"sched"});
  // sched -> opt -> model (fixpoint).
  EXPECT_EQ(augmented,
            (std::vector<std::string>{"model", "opt", "sched"}));
}

TEST(Augment, AliasesAllIncluded) {
  Rng rng = testutil::SeededRng(3);
  nn::Linear net("net", 2, 2, &rng);
  nn::Sgd opt(&net, 0.1f);
  exec::Frame frame;
  frame.Set("net", ir::Value::ModuleRef(&net));
  frame.Set("model_alias", ir::Value::ModuleRef(&net));
  frame.Set("optimizer", ir::Value::OptimizerRef(&opt));
  auto augmented = AugmentChangeset(frame, {"optimizer"});
  EXPECT_EQ(augmented, (std::vector<std::string>{"model_alias", "net",
                                                 "optimizer"}));
}

TEST(Augment, NonReferenceChangesetUnchanged) {
  exec::Frame frame;
  frame.Set("x", ir::Value::Int(1));
  auto augmented = AugmentChangeset(frame, {"x", "unbound"});
  EXPECT_EQ(augmented, (std::vector<std::string>{"unbound", "x"}));
}

}  // namespace
}  // namespace analysis
}  // namespace flor
