// Connection/Session service front-end: tenant-namespace isolation through
// every tier (local shards, bucket fall-through, bloom fast path),
// byte-identity of the service path against the one-shot entry points on
// all three replay engines, admission control over concurrent recorders,
// concurrent sessions racing the background GC worker, shared-spool delta
// accounting, namespace validation, the options-dedup static guards, and
// the pinned process-worker wire format — plus the fair-admission gate
// (per-tenant quotas, starved-wait histogram), per-tenant stats slices,
// the tenant-attributed GC failure ring, and graceful drain via
// Connection::Close. Runs under the `service` ctest label (including the
// FLOR_TSAN pass in check.sh).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "checkpoint/gc.h"
#include "common/strings.h"
#include "env/filesystem.h"
#include "exec/process_executor.h"
#include "exec/replay_executor.h"
#include "flor/record.h"
#include "flor/replay_plan.h"
#include "service/service.h"
#include "sim/parallel_replay.h"
#include "test_util.h"
#include "workloads/programs.h"

namespace flor {
namespace {

using workloads::kProbeInner;
using workloads::kProbeNone;
using workloads::MakeWorkloadFactory;
using workloads::WorkloadProfile;

// --- Options-dedup guards: every replay entry point and the service share
// --- the one TierOptions aggregate (satellite of the connection/session
// --- redesign). A new tier knob added to TierOptions flows to all of them
// --- or none.
static_assert(std::is_base_of_v<TierOptions, ReplayOptions>,
              "ReplayOptions must inherit the shared TierOptions");
static_assert(std::is_base_of_v<TierOptions, ClusterPlanOptions>,
              "ClusterPlanOptions must inherit the shared TierOptions");
static_assert(std::is_base_of_v<TierOptions, sim::ClusterReplayOptions>,
              "ClusterReplayOptions must inherit the shared TierOptions");
static_assert(std::is_base_of_v<TierOptions, exec::ReplayExecutorOptions>,
              "ReplayExecutorOptions must inherit the shared TierOptions");
static_assert(
    std::is_base_of_v<TierOptions, exec::ProcessReplayExecutorOptions>,
    "ProcessReplayExecutorOptions must inherit the shared TierOptions");

/// Densely checkpointed sim workload (the tiered-test shape) so GC and
/// partitioned replay have a long epoch timeline.
WorkloadProfile ServiceProfile(int64_t epochs = 12, int shards = 4) {
  WorkloadProfile p;
  p.name = "SvcT";
  p.epochs = epochs;
  p.sim_epoch_seconds = 100;
  p.sim_outer_seconds = 2;
  p.sim_preamble_seconds = 5;
  p.sim_ckpt_raw_bytes = 1 << 20;
  p.ckpt_shards = shards;
  p.task_kind = data::Task::kVision;
  p.real_samples = 32;
  p.real_batch = 8;
  p.real_feature_dim = 12;
  p.real_classes = 3;
  p.real_hidden = 12;
  p.seed = testutil::TestSeed(47);
  return p;
}

/// The per-call slice of a one-shot RecordOptions — what a service caller
/// passes per Record (the store/tier/GC layer lives on the Connection).
SessionRecordOptions SessionRecordFrom(const RecordOptions& o) {
  SessionRecordOptions s;
  s.workload = o.workload;
  s.materializer = o.materializer;
  s.adaptive = o.adaptive;
  s.nominal_checkpoint_bytes = o.nominal_checkpoint_bytes;
  s.vanilla_runtime_seconds = o.vanilla_runtime_seconds;
  return s;
}

/// Full byte image of everything under `prefix`.
std::map<std::string, std::string> SnapshotPrefix(const FileSystem& fs,
                                                  const std::string& prefix) {
  std::map<std::string, std::string> out;
  for (const auto& path : fs.ListPrefix(prefix)) {
    auto data = fs.ReadFile(path);
    EXPECT_TRUE(data.ok()) << path;
    if (data.ok()) out[path] = *data;
  }
  return out;
}

ConnectionOptions TieredConnectionOptions(const WorkloadProfile& profile) {
  ConnectionOptions copts;
  copts.root = "svc";
  copts.ckpt_shards = profile.ckpt_shards;
  copts.tier.bucket_prefix = "s3";
  return copts;
}

TEST(ServiceTest, SessionPathByteIdenticalToOneShotEntryPoints) {
  const WorkloadProfile profile = ServiceProfile();
  const std::string prefix = "svc/alice/r1";

  // Service path: record + three-engine replay through one Connection.
  MemFileSystem fs_svc;
  Env env_svc = testutil::MakeSimEnv(&fs_svc);
  auto conn = Connection::Open(&env_svc, TieredConnectionOptions(profile));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  auto session = (*conn)->OpenSession("alice");
  ASSERT_TRUE(session.ok()) << session.status().ToString();

  const RecordOptions ropts = workloads::DefaultRecordOptions(profile, "");
  auto rec = (*session)->Record("r1", MakeWorkloadFactory(profile, kProbeNone),
                                SessionRecordFrom(ropts));
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  (*conn)->DrainBackground();

  // One-shot path: same run prefix, same spool mirror, private spooler.
  MemFileSystem fs_direct;
  Env env_direct = testutil::MakeSimEnv(&fs_direct);
  RecordOptions direct_opts = workloads::DefaultRecordOptions(profile, prefix);
  direct_opts.spool_prefix = "s3";
  {
    auto instance = MakeWorkloadFactory(profile, kProbeNone)();
    ASSERT_TRUE(instance.ok());
    RecordSession one_shot(&env_direct, direct_opts);
    exec::Frame frame;
    auto direct_rec = one_shot.Run(instance->program.get(), &frame);
    ASSERT_TRUE(direct_rec.ok()) << direct_rec.status().ToString();
    EXPECT_EQ(rec->manifest.records.size(),
              direct_rec->manifest.records.size());
  }

  // Record artifacts and the bucket mirror are byte-identical between the
  // service path (shared spool, connection-owned store) and the one-shot
  // path (private spool, session-owned store).
  EXPECT_EQ(SnapshotPrefix(fs_svc, "svc"), SnapshotPrefix(fs_direct, "svc"));
  EXPECT_EQ(SnapshotPrefix(fs_svc, "s3"), SnapshotPrefix(fs_direct, "s3"));

  // Replay through the session on all three engines; all merged logs must
  // be byte-identical to a direct sim::ClusterReplay of the one-shot run.
  const ProgramFactory probed = MakeWorkloadFactory(profile, kProbeInner);
  sim::ClusterReplayOptions sim_opts;
  sim_opts.run_prefix = prefix;
  sim_opts.cluster.instance = sim::kP3_2xLarge;
  sim_opts.cluster.num_machines = 2;
  sim_opts.bucket_prefix = "s3";
  auto direct_replay = sim::ClusterReplay(probed, &fs_direct, sim_opts);
  ASSERT_TRUE(direct_replay.ok()) << direct_replay.status().ToString();
  ASSERT_TRUE(direct_replay->deferred.ok);
  const std::string golden_logs = direct_replay->merged_logs.Serialize();

  for (ReplayEngine engine :
       {ReplayEngine::kSimulated, ReplayEngine::kThreads,
        ReplayEngine::kProcesses}) {
    SessionReplayOptions sopts;
    sopts.engine = engine;
    sopts.workers = 2;
    auto replay = (*session)->Replay("r1", probed, sopts);
    ASSERT_TRUE(replay.ok()) << replay.status().ToString();
    EXPECT_TRUE(replay->deferred.ok);
    EXPECT_EQ(replay->merged_logs.Serialize(), golden_logs)
        << "engine " << static_cast<int>(engine);
    EXPECT_EQ(replay->workers_used, 2) << static_cast<int>(engine);
  }

  const ConnectionStats stats = (*conn)->stats();
  EXPECT_EQ(stats.sessions_opened, 1);
  EXPECT_EQ(stats.records_completed, 1);
  EXPECT_EQ(stats.replays_completed, 3);
}

TEST(ServiceTest, TenantsAreInvisibleToEachOtherThroughEveryTier) {
  // Bloom filters ON: Exists takes the bloom fast path; demotion below
  // forces the bucket fall-through path too.
  const WorkloadProfile long_profile = ServiceProfile(/*epochs=*/12);
  WorkloadProfile short_profile = ServiceProfile(/*epochs=*/6);

  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  ConnectionOptions copts = TieredConnectionOptions(long_profile);
  copts.tier.bloom_filter = true;
  copts.gc.keep_last_k = 1;  // background demotion after each record
  auto conn = Connection::Open(&env, copts);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  auto alice = (*conn)->OpenSession("alice");
  auto bob = (*conn)->OpenSession("bob");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());

  auto alice_rec =
      (*alice)->Record("exp", MakeWorkloadFactory(long_profile, kProbeNone),
                       SessionRecordFrom(workloads::DefaultRecordOptions(
                           long_profile, "")));
  ASSERT_TRUE(alice_rec.ok()) << alice_rec.status().ToString();
  auto bob_rec =
      (*bob)->Record("exp", MakeWorkloadFactory(short_profile, kProbeNone),
                     SessionRecordFrom(workloads::DefaultRecordOptions(
                         short_profile, "")));
  ASSERT_TRUE(bob_rec.ok()) << bob_rec.status().ToString();
  (*conn)->DrainBackground();  // demotion done: locals pruned to K=1

  // Query surface: each tenant lists exactly its own run, under its own
  // prefix.
  auto alice_runs = (*alice)->Query();
  auto bob_runs = (*bob)->Query();
  ASSERT_TRUE(alice_runs.ok());
  ASSERT_TRUE(bob_runs.ok());
  ASSERT_EQ(alice_runs->size(), 1u);
  ASSERT_EQ(bob_runs->size(), 1u);
  EXPECT_EQ((*alice_runs)[0].prefix, "svc/alice/exp");
  EXPECT_EQ((*bob_runs)[0].prefix, "svc/bob/exp");

  // Alice recorded more epochs than bob: her newest checkpoint key does
  // not exist in bob's run of the same name. After demotion the alice
  // probe is served through the bucket fall-through; the bob probe is a
  // bloom-fast-path definite miss (or a counted false positive that still
  // probes and misses) — never a hit on alice's object.
  ASSERT_FALSE(alice_rec->manifest.records.empty());
  const CheckpointKey alice_key = alice_rec->manifest.records.back().key;
  auto alice_sees = (*alice)->Exists("exp", alice_key);
  ASSERT_TRUE(alice_sees.ok()) << alice_sees.status().ToString();
  EXPECT_TRUE(*alice_sees);
  auto bob_sees = (*bob)->Exists("exp", alice_key);
  ASSERT_TRUE(bob_sees.ok()) << bob_sees.status().ToString();
  EXPECT_FALSE(*bob_sees);

  // A run bob never recorded is NotFound for him even though alice has it
  // — and he cannot reach hers by name escape.
  EXPECT_FALSE((*bob)->MetricSeries("other", "loss").ok());
  auto escape = (*bob)->Exists("../alice", alice_key);
  EXPECT_FALSE(escape.ok());
  EXPECT_TRUE(escape.status().code() == StatusCode::kInvalidArgument)
      << escape.status().ToString();
}

TEST(ServiceTest, AdmissionControlBoundsConcurrentRecorders) {
  // Wall-clock connection: two recorder threads, one admission slot. The
  // second thread starts only once the first is observably inside its
  // record, so it must wait on the gate.
  WorkloadProfile profile = ServiceProfile(/*epochs=*/4);
  profile.wall_batch_seconds = 0.01;

  MemFileSystem fs;
  Env env(std::make_unique<WallClock>(), &fs);
  ConnectionOptions copts = TieredConnectionOptions(profile);
  copts.max_concurrent_records = 1;
  auto conn = Connection::Open(&env, copts);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  const SessionRecordOptions sropts =
      SessionRecordFrom(workloads::DefaultRecordOptions(profile, ""));
  auto record_one = [&](const std::string& tenant) {
    auto session = (*conn)->OpenSession(tenant);
    ASSERT_TRUE(session.ok());
    auto rec = (*session)->Record("r", MakeWorkloadFactory(profile, kProbeNone),
                                  sropts);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  };

  std::thread first([&] { record_one("t0"); });
  while ((*conn)->stats().active_records < 1) std::this_thread::yield();
  std::thread second([&] { record_one("t1"); });
  first.join();
  second.join();
  (*conn)->DrainBackground();

  const ConnectionStats stats = (*conn)->stats();
  EXPECT_EQ(stats.records_completed, 2);
  EXPECT_EQ(stats.max_observed_records, 1);
  EXPECT_GE(stats.admission_waits, 1);
  EXPECT_EQ(stats.active_records, 0);
}

TEST(ServiceTest, ConcurrentSessionsRaceBackgroundGc) {
  // Three tenant threads record, query, and replay through one connection
  // while its background worker demotes each finished run to the bucket
  // tier (keep-last-1). Demotion keeps manifests intact, so every replay
  // — racing GC or after it — must produce the same merged logs.
  const WorkloadProfile profile = ServiceProfile();

  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  ConnectionOptions copts = TieredConnectionOptions(profile);
  copts.tier.bloom_filter = true;
  copts.gc.keep_last_k = 1;
  auto conn = Connection::Open(&env, copts);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  const SessionRecordOptions sropts =
      SessionRecordFrom(workloads::DefaultRecordOptions(profile, ""));
  const ProgramFactory record_factory =
      MakeWorkloadFactory(profile, kProbeNone);
  const ProgramFactory probed = MakeWorkloadFactory(profile, kProbeInner);

  constexpr int kTenants = 3;
  std::vector<std::string> merged(kTenants);
  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      auto session = (*conn)->OpenSession(StrCat("tenant", t));
      ASSERT_TRUE(session.ok());
      auto rec = (*session)->Record("run", record_factory, sropts);
      ASSERT_TRUE(rec.ok()) << rec.status().ToString();
      // Race the query surface and a threaded replay against the
      // background demotion of this run (and the other tenants' work).
      for (int i = 0; i < 3; ++i) {
        auto runs = (*session)->Query();
        ASSERT_TRUE(runs.ok());
        EXPECT_EQ(runs->size(), 1u);
        auto exists =
            (*session)->Exists("run", rec->manifest.records.front().key);
        ASSERT_TRUE(exists.ok()) << exists.status().ToString();
        EXPECT_TRUE(*exists);  // demoted at worst — bucket keeps it live
      }
      SessionReplayOptions sopts;
      sopts.engine = ReplayEngine::kThreads;
      sopts.workers = 2;
      auto replay = (*session)->Replay("run", probed, sopts);
      ASSERT_TRUE(replay.ok()) << replay.status().ToString();
      EXPECT_TRUE(replay->deferred.ok);
      merged[static_cast<size_t>(t)] = replay->merged_logs.Serialize();
    });
  }
  for (auto& th : threads) th.join();
  (*conn)->DrainBackground();

  // Identical workloads => identical merged logs per tenant, racing GC or
  // not; and a quiescent post-GC replay agrees too.
  for (int t = 1; t < kTenants; ++t) EXPECT_EQ(merged[0], merged[t]);
  auto session = (*conn)->OpenSession("tenant0");
  ASSERT_TRUE(session.ok());
  SessionReplayOptions sopts;
  sopts.engine = ReplayEngine::kSimulated;
  sopts.workers = 2;
  auto after_gc = (*session)->Replay("run", probed, sopts);
  ASSERT_TRUE(after_gc.ok()) << after_gc.status().ToString();
  EXPECT_EQ(after_gc->merged_logs.Serialize(), merged[0]);

  const ConnectionStats stats = (*conn)->stats();
  EXPECT_EQ(stats.records_completed, kTenants);
  EXPECT_EQ(stats.gc_passes, kTenants);
  EXPECT_EQ(stats.gc_failures, 0) << stats.last_gc_error;
}

TEST(ServiceTest, SharedSpoolReportsPerSessionDeltas) {
  const WorkloadProfile profile = ServiceProfile(/*epochs=*/6);
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  auto conn = Connection::Open(&env, TieredConnectionOptions(profile));
  ASSERT_TRUE(conn.ok());
  auto session = (*conn)->OpenSession("alice");
  ASSERT_TRUE(session.ok());

  const SessionRecordOptions sropts =
      SessionRecordFrom(workloads::DefaultRecordOptions(profile, ""));
  const ProgramFactory factory = MakeWorkloadFactory(profile, kProbeNone);
  auto rec1 = (*session)->Record("r1", factory, sropts);
  ASSERT_TRUE(rec1.ok()) << rec1.status().ToString();
  auto rec2 = (*session)->Record("r2", factory, sropts);
  ASSERT_TRUE(rec2.ok()) << rec2.status().ToString();

  // Each session's report covers its own run, not the queue's cumulative
  // totals; the shared queue's lifetime totals are the sum.
  EXPECT_EQ(rec1->spool_report.objects,
            static_cast<int64_t>(rec1->manifest.records.size()));
  EXPECT_EQ(rec2->spool_report.objects,
            static_cast<int64_t>(rec2->manifest.records.size()));
  EXPECT_EQ((*conn)->shared_spool()->TotalReport().objects,
            rec1->spool_report.objects + rec2->spool_report.objects);
}

TEST(ServiceTest, NamespaceValidationRejectsEscapes) {
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  auto conn = Connection::Open(&env, ConnectionOptions());
  ASSERT_TRUE(conn.ok());

  for (const char* bad : {"", ".", "..", "a/b", "a\\b", "a b", "/abs"}) {
    auto s = (*conn)->OpenSession(bad);
    EXPECT_FALSE(s.ok()) << "tenant '" << bad << "'";
    EXPECT_TRUE(s.status().code() == StatusCode::kInvalidArgument) << s.status().ToString();
  }
  auto session = (*conn)->OpenSession("ok-1.2_b");
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  for (const char* bad : {"", "..", "x/y", "../peer"}) {
    auto p = (*session)->RunPrefix(bad);
    EXPECT_FALSE(p.ok()) << "run '" << bad << "'";
  }
  auto p = (*session)->RunPrefix("run-1");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p, "flor/ok-1.2_b/run-1");
}

TEST(ServiceTest, ConnectionValidatesOptions) {
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);

  ConnectionOptions bad_shards;
  bad_shards.ckpt_shards = 0;
  EXPECT_FALSE(Connection::Open(&env, bad_shards).ok());

  ConnectionOptions bad_root;
  bad_root.root = "";
  EXPECT_FALSE(Connection::Open(&env, bad_root).ok());

  ConnectionOptions colliding;
  colliding.root = "svc";
  colliding.tier.bucket_prefix = "svc";
  EXPECT_FALSE(Connection::Open(&env, colliding).ok());

  ConnectionOptions negative_admission;
  negative_admission.max_concurrent_records = -1;
  EXPECT_FALSE(Connection::Open(&env, negative_admission).ok());
}

TEST(ServiceTest, MaintenanceRequiresQuiescence) {
  const WorkloadProfile profile = ServiceProfile(/*epochs=*/6);
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  auto conn = Connection::Open(&env, TieredConnectionOptions(profile));
  ASSERT_TRUE(conn.ok());
  auto session = (*conn)->OpenSession("alice");
  ASSERT_TRUE(session.ok());
  auto rec = (*session)->Record(
      "r1", MakeWorkloadFactory(profile, kProbeNone),
      SessionRecordFrom(workloads::DefaultRecordOptions(profile, "")));
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  (*conn)->DrainBackground();

  BucketGcPolicy policy;
  policy.keep_last_k = 1;
  auto bucket_gc = (*conn)->RetireBucket("alice", "r1", policy);
  ASSERT_TRUE(bucket_gc.ok()) << bucket_gc.status().ToString();
  auto sweep = (*conn)->Reconcile("alice", "r1");
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
}

// --- Wire-format guard: the options dedup (TierOptions bases) must not
// --- move a byte of the process-worker result encoding. Golden captured
// --- from the pre-refactor encoder; a change here is a wire break for
// --- mixed-version parent/child fleets.
TEST(ServiceTest, WorkerResultWireFormatIsPinned) {
  ReplayResult r;
  r.runtime_seconds = 1.5;
  r.restore_seconds = 0.25;
  r.observed_c = 0.625;
  r.effective_init = InitMode::kWeak;
  r.partition_segments = 8;
  r.active_workers = 4;
  r.work_begin = 2;
  r.work_end = 4;
  r.skipblocks.executed = 3;
  r.skipblocks.skipped = 5;
  r.skipblocks.restores = 2;
  r.skipblocks.materialized = 1;
  r.bucket_faults = 7;
  r.bloom_skipped_probes = 9;
  r.probes.preamble_probed = true;
  r.probes.probed_loops = {2, 5};
  r.probes.probe_stmt_uids = {11, 13};
  exec::LogEntry e1;
  e1.stmt_uid = 11;
  e1.context = "e=2/i=0";
  e1.init_mode = false;
  e1.label = "loss";
  e1.text = "0.125";
  r.logs.Append(e1);
  exec::LogEntry e2;
  e2.stmt_uid = 13;
  e2.context = "e=3";
  e2.init_mode = true;
  e2.label = "grad_norm";
  e2.text = "2.5";
  r.logs.Append(e2);
  r.probe_entries = {e1};

  const char* kGoldenHex =
      "8b7fd9a50a666c6f7272657331093539ca4d31870272756e74696d655f7365636f6e"
      "6473093078312e38702b300a726573746f72655f7365636f6e647309307831702d32"
      "0a6f627365727665645f63093078312e34702d310a6566666563746976655f696e69"
      "7409310a706172746974696f6e5f7365676d656e747309380a6163746976655f776f"
      "726b65727309340a776f726b5f626567696e09320a776f726b5f656e6409340a7362"
      "5f657865637574656409330a73625f736b697070656409350a73625f726573746f72"
      "657309320a73625f6d6174657269616c697a656409310a6275636b65745f6661756c"
      "747309370a626c6f6f6d5f736b69707065645f70726f62657309390a707265616d62"
      "6c655f70726f62656409310ac6369e332f313109653d322f693d300930096c6f7373"
      "09302e3132350a313309653d33093109677261645f6e6f726d09322e350a57744858"
      "18313109653d322f693d300930096c6f737309302e3132350aad4cb6330631310a31"
      "330a2862fbc804320a350a";
  std::string golden;
  for (const char* p = kGoldenHex; p[0] != '\0' && p[1] != '\0'; p += 2) {
    auto nibble = [](char c) {
      return c <= '9' ? c - '0' : c - 'a' + 10;
    };
    golden.push_back(
        static_cast<char>((nibble(p[0]) << 4) | nibble(p[1])));
  }

  EXPECT_EQ(EncodeWorkerResult(r), golden);

  auto decoded = DecodeWorkerResult(golden);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->runtime_seconds, 1.5);
  EXPECT_EQ(decoded->bucket_faults, 7);
  EXPECT_EQ(decoded->bloom_skipped_probes, 9);
  EXPECT_EQ(decoded->logs.Serialize(), r.logs.Serialize());
}

// --- Fairness, per-tenant accounting, the GC failure ring, and graceful
// --- drain (the admission-gate starvation fix).

TEST(ServiceTest, NamespaceSegmentLengthIsCapped) {
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  auto conn = Connection::Open(&env, ConnectionOptions());
  ASSERT_TRUE(conn.ok());

  const std::string at_limit(kMaxNamespaceSegmentBytes, 'a');
  auto ok_session = (*conn)->OpenSession(at_limit);
  EXPECT_TRUE(ok_session.ok()) << ok_session.status().ToString();

  const std::string over(kMaxNamespaceSegmentBytes + 1, 'a');
  auto rejected = (*conn)->OpenSession(over);
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().code() == StatusCode::kInvalidArgument)
      << rejected.status().ToString();
  // The message names the offending size and the limit — an operator
  // should not have to count the bytes themselves.
  EXPECT_NE(rejected.status().ToString().find(
                StrCat(kMaxNamespaceSegmentBytes + 1, " bytes")),
            std::string::npos)
      << rejected.status().ToString();
  EXPECT_NE(rejected.status().ToString().find(
                StrCat("limit is ", kMaxNamespaceSegmentBytes)),
            std::string::npos)
      << rejected.status().ToString();

  // Run names go through the same validation.
  auto session = (*conn)->OpenSession("alice");
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE((*session)->RunPrefix(over).ok());
  EXPECT_TRUE((*session)->RunPrefix(at_limit).ok());
}

TEST(ServiceTest, StarvedWaitBucketEdges) {
  EXPECT_EQ(StarvedWaitBucket(0), 0);
  EXPECT_EQ(StarvedWaitBucket(0.0009), 0);
  EXPECT_EQ(StarvedWaitBucket(0.005), 1);
  EXPECT_EQ(StarvedWaitBucket(0.05), 2);
  EXPECT_EQ(StarvedWaitBucket(0.5), 3);
  EXPECT_EQ(StarvedWaitBucket(5.0), 4);
  EXPECT_EQ(StarvedWaitBucket(10.0), 5);
  EXPECT_EQ(StarvedWaitBucket(1e9), kStarvedWaitBucketCount - 1);
}

TEST(ServiceTest, FairAdmissionBoundsBurstTenantToQuota) {
  // The starvation regression: a burst tenant fires three concurrent
  // records at a two-slot gate with a one-per-tenant quota. Under fair
  // admission the burst tenant can never hold more than its quota, so a
  // steady tenant arriving behind the burst still gets the other slot —
  // the fifo gate would have let the burst queue-jump it indefinitely.
  WorkloadProfile profile = ServiceProfile(/*epochs=*/4);
  profile.wall_batch_seconds = 0.01;

  MemFileSystem fs;
  Env env(std::make_unique<WallClock>(), &fs);
  ConnectionOptions copts = TieredConnectionOptions(profile);
  copts.max_concurrent_records = 2;
  copts.max_records_per_tenant = 1;
  auto conn = Connection::Open(&env, copts);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  const SessionRecordOptions sropts =
      SessionRecordFrom(workloads::DefaultRecordOptions(profile, ""));
  const ProgramFactory factory = MakeWorkloadFactory(profile, kProbeNone);
  auto record_one = [&](const std::string& tenant, const std::string& run) {
    auto session = (*conn)->OpenSession(tenant);
    ASSERT_TRUE(session.ok());
    auto rec = (*session)->Record(run, factory, sropts);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  };

  std::thread burst1([&] { record_one("burst", "r1"); });
  while ((*conn)->stats().active_records < 1) std::this_thread::yield();
  std::thread burst2([&] { record_one("burst", "r2"); });
  std::thread burst3([&] { record_one("burst", "r3"); });
  std::thread steady([&] { record_one("steady", "r1"); });
  burst1.join();
  burst2.join();
  burst3.join();
  steady.join();
  (*conn)->DrainBackground();

  const ConnectionStats stats = (*conn)->stats();
  EXPECT_EQ(stats.records_completed, 4);
  EXPECT_LE(stats.max_observed_records, 2);
  EXPECT_EQ(stats.active_records, 0);

  const TenantStats& burst = stats.tenants.at("burst");
  const TenantStats& steady_stats = stats.tenants.at("steady");
  // The quota held: the burst tenant never ran two records at once, no
  // matter how many it had queued.
  EXPECT_EQ(burst.max_observed_records, 1);
  EXPECT_EQ(burst.records_completed, 3);
  EXPECT_GE(burst.admission_waits, 2);  // r2 and r3 had to queue
  EXPECT_EQ(steady_stats.records_completed, 1);
  EXPECT_LE(steady_stats.max_observed_records, 1);

  // Every blocked call landed exactly one histogram count, and the wait
  // totals are consistent with the worst single wait.
  for (const auto& entry : stats.tenants) {
    const TenantStats& t = entry.second;
    int64_t hist_total = 0;
    for (int64_t c : t.starved_wait_hist) hist_total += c;
    EXPECT_EQ(hist_total, t.admission_waits) << entry.first;
    EXPECT_GE(t.admission_wait_seconds, t.max_admission_wait_seconds)
        << entry.first;
  }
}

TEST(ServiceTest, GcFailureRingAttributesTenants) {
  // Two tenants' background retirements both fail (a flaky object store
  // refusing deletes). Both failures must stay observable — the old
  // last_gc_error-only surface let the second overwrite the first.
  const WorkloadProfile profile = ServiceProfile(/*epochs=*/6);
  MemFileSystem base;
  FaultInjectionFileSystem fs(&base);
  Env env = testutil::MakeSimEnv(&fs);
  ConnectionOptions copts = TieredConnectionOptions(profile);
  copts.gc.keep_last_k = 1;
  auto conn = Connection::Open(&env, copts);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  const SessionRecordOptions sropts =
      SessionRecordFrom(workloads::DefaultRecordOptions(profile, ""));
  const ProgramFactory factory = MakeWorkloadFactory(profile, kProbeNone);

  // The record path only writes; deletes happen exclusively in the GC
  // worker, so arming the injector now deterministically fails every
  // retirement delete without touching the runs themselves.
  fs.InjectDeleteFailures(1 << 20, "");
  for (const char* tenant : {"alice", "bob"}) {
    auto session = (*conn)->OpenSession(tenant);
    ASSERT_TRUE(session.ok());
    auto rec = (*session)->Record("run", factory, sropts);
    ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  }
  (*conn)->DrainBackground();

  const ConnectionStats stats = (*conn)->stats();
  EXPECT_EQ(stats.gc_passes, 0);
  EXPECT_EQ(stats.gc_failures, 2);
  EXPECT_EQ(stats.tenants.at("alice").gc_failures, 1);
  EXPECT_EQ(stats.tenants.at("bob").gc_failures, 1);
  EXPECT_FALSE(stats.last_gc_error.empty());

  // Both tenants' failures ride the ring, each attributed and carrying
  // the orphan diagnosis.
  ASSERT_EQ(stats.recent_gc_errors.size(), 2u);
  std::vector<std::string> tenants;
  for (const GcFailure& f : stats.recent_gc_errors) {
    tenants.push_back(f.tenant);
    EXPECT_EQ(f.run, "run");
    EXPECT_NE(f.error.find("delete(s) failed"), std::string::npos)
        << f.error;
  }
  std::sort(tenants.begin(), tenants.end());
  EXPECT_EQ(tenants, (std::vector<std::string>{"alice", "bob"}));
}

TEST(ServiceTest, PerTenantStatsAttributeTraffic) {
  // One tenant's spool, read-tier, GC, and query traffic lands on its
  // TenantStats slice — and only there.
  const WorkloadProfile profile = ServiceProfile();
  MemFileSystem fs;
  Env env = testutil::MakeSimEnv(&fs);
  ConnectionOptions copts = TieredConnectionOptions(profile);
  copts.tier.bloom_filter = true;
  copts.gc.keep_last_k = 1;  // demote after record: replay faults buckets
  auto conn = Connection::Open(&env, copts);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  auto alice = (*conn)->OpenSession("alice");
  auto bob = (*conn)->OpenSession("bob");
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());

  const SessionRecordOptions sropts =
      SessionRecordFrom(workloads::DefaultRecordOptions(profile, ""));
  auto rec =
      (*alice)->Record("r1", MakeWorkloadFactory(profile, kProbeNone), sropts);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_EQ(rec->admission_wait_seconds, 0);  // gate unlimited: no wait
  (*conn)->DrainBackground();  // demotion done

  {
    const ConnectionStats stats = (*conn)->stats();
    const TenantStats& a = stats.tenants.at("alice");
    EXPECT_EQ(a.records_completed, 1);
    EXPECT_EQ(a.spool_objects, rec->spool_report.objects);
    EXPECT_EQ(a.spool_bytes, static_cast<int64_t>(rec->spool_report.bytes));
    EXPECT_GT(a.spool_bytes, 0);
    EXPECT_EQ(a.gc_passes, 1);
    EXPECT_EQ(a.gc_failures, 0);
  }

  SessionReplayOptions sopts;
  sopts.engine = ReplayEngine::kThreads;
  sopts.workers = 2;
  auto replay =
      (*alice)->Replay("r1", MakeWorkloadFactory(profile, kProbeInner), sopts);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_GT(replay->bucket_faults, 0);  // demoted epochs fault back in
  {
    const ConnectionStats stats = (*conn)->stats();
    const TenantStats& a = stats.tenants.at("alice");
    EXPECT_EQ(a.replays_completed, 1);
    EXPECT_EQ(a.bucket_faults, replay->bucket_faults);
    EXPECT_EQ(a.bloom_skipped_probes, replay->bloom_skipped_probes);
  }

  // The query surface counts per tenant: two Query calls and an Exists
  // probe for alice, none of it visible on bob.
  ASSERT_TRUE((*alice)->Query().ok());
  ASSERT_TRUE((*alice)->Query().ok());
  ASSERT_FALSE(rec->manifest.records.empty());
  auto exists = (*alice)->Exists("r1", rec->manifest.records.front().key);
  ASSERT_TRUE(exists.ok()) << exists.status().ToString();
  EXPECT_TRUE(*exists);

  const ConnectionStats stats = (*conn)->stats();
  EXPECT_EQ(stats.tenants.at("alice").queries_served, 3);
  const TenantStats& b = stats.tenants.at("bob");
  EXPECT_EQ(b.sessions_opened, 1);
  EXPECT_EQ(b.records_completed, 0);
  EXPECT_EQ(b.queries_served, 0);
  EXPECT_EQ(b.spool_bytes, 0);
  EXPECT_EQ(b.bucket_faults, 0);
}

TEST(ServiceTest, CloseRefusesNewWorkAndUnblocksWaiters) {
  // Graceful drain: Close stops admitting, a Record blocked on the
  // admission gate fails with Unavailable instead of hanging, in-flight
  // work finishes, and Close is idempotent.
  WorkloadProfile profile = ServiceProfile(/*epochs=*/6);
  profile.wall_batch_seconds = 0.02;

  MemFileSystem fs;
  Env env(std::make_unique<WallClock>(), &fs);
  ConnectionOptions copts = TieredConnectionOptions(profile);
  copts.max_concurrent_records = 1;
  auto conn = Connection::Open(&env, copts);
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();

  const SessionRecordOptions sropts =
      SessionRecordFrom(workloads::DefaultRecordOptions(profile, ""));
  const ProgramFactory factory = MakeWorkloadFactory(profile, kProbeNone);

  auto holder = (*conn)->OpenSession("holder");
  auto waiter = (*conn)->OpenSession("waiter");
  ASSERT_TRUE(holder.ok());
  ASSERT_TRUE(waiter.ok());

  Status holder_status, waiter_status;
  std::thread holder_thread([&] {
    holder_status = (*holder)->Record("r", factory, sropts).status();
  });
  while ((*conn)->stats().active_records < 1) std::this_thread::yield();
  std::thread waiter_thread([&] {
    waiter_status = (*waiter)->Record("r", factory, sropts).status();
  });
  // Give the waiter a moment to reach the gate (either way it must come
  // back Unavailable: refused at BeginOp or woken out of the wait ring).
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  ASSERT_TRUE((*conn)->Close().ok());
  EXPECT_TRUE((*conn)->closed());
  holder_thread.join();
  waiter_thread.join();

  // The in-flight record was allowed to finish; the queued one was not.
  EXPECT_TRUE(holder_status.ok()) << holder_status.ToString();
  EXPECT_TRUE(waiter_status.code() == StatusCode::kUnavailable)
      << waiter_status.ToString();

  // Closed means closed: sessions (new or existing) are refused.
  auto late = (*conn)->OpenSession("late");
  EXPECT_TRUE(late.status().code() == StatusCode::kUnavailable)
      << late.status().ToString();
  auto query = (*holder)->Query();
  EXPECT_TRUE(query.status().code() == StatusCode::kUnavailable)
      << query.status().ToString();
  EXPECT_TRUE((*conn)->Close().ok());  // idempotent

  const ConnectionStats stats = (*conn)->stats();
  EXPECT_EQ(stats.records_completed, 1);
  EXPECT_EQ(stats.active_records, 0);
}

TEST(ServiceTest, CloseDeadlineExpiryAborts) {
  WorkloadProfile profile = ServiceProfile(/*epochs=*/8);
  profile.wall_batch_seconds = 0.02;

  MemFileSystem fs;
  Env env(std::make_unique<WallClock>(), &fs);
  auto conn = Connection::Open(&env, TieredConnectionOptions(profile));
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  auto session = (*conn)->OpenSession("slow");
  ASSERT_TRUE(session.ok());

  const SessionRecordOptions sropts =
      SessionRecordFrom(workloads::DefaultRecordOptions(profile, ""));
  Status record_status;
  std::thread recorder([&] {
    record_status =
        (*session)
            ->Record("r", MakeWorkloadFactory(profile, kProbeNone), sropts)
            .status();
  });
  while ((*conn)->stats().active_records < 1) std::this_thread::yield();

  // The record takes >= 320ms of modeled batches; a 1ms deadline expires
  // first. The connection stays closed, the straggler finishes, and a
  // second Close completes the drain.
  const Status expired = (*conn)->Close(/*deadline_seconds=*/0.001);
  EXPECT_TRUE(expired.code() == StatusCode::kAborted) << expired.ToString();
  EXPECT_NE(expired.ToString().find("still in flight"), std::string::npos)
      << expired.ToString();
  EXPECT_TRUE((*conn)->closed());

  recorder.join();
  EXPECT_TRUE(record_status.ok()) << record_status.ToString();
  EXPECT_TRUE((*conn)->Close().ok());
}

}  // namespace
}  // namespace flor
