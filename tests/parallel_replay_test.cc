// Hindsight parallelism: cluster replay engine tests (paper §5.4).

#include <gtest/gtest.h>

#include "flor/record.h"
#include "sim/parallel_replay.h"
#include "test_util.h"
#include "workloads/programs.h"

namespace flor {
namespace {

using workloads::kProbeInner;
using workloads::kProbeNone;
using workloads::kProbeOuter;
using workloads::MakeWorkloadFactory;
using workloads::WorkloadProfile;

WorkloadProfile ParProfile(int64_t epochs = 12) {
  WorkloadProfile p;
  p.name = "Par";
  p.epochs = epochs;
  p.sim_epoch_seconds = 100;
  p.sim_outer_seconds = 2;
  p.sim_preamble_seconds = 5;
  p.sim_ckpt_raw_bytes = 8 << 20;
  p.task_kind = data::Task::kVision;
  p.real_samples = 32;
  p.real_batch = 8;
  p.real_feature_dim = 12;
  p.real_classes = 3;
  p.real_hidden = 12;
  p.seed = testutil::TestSeed(99);
  return p;
}

/// Records the workload onto `fs` under "run"; returns record runtime.
double RecordOnto(FileSystem* fs, const WorkloadProfile& profile) {
  Env env(std::make_unique<SimClock>(), fs);
  auto instance = MakeWorkloadFactory(profile, kProbeNone)();
  EXPECT_TRUE(instance.ok());
  RecordOptions opts = workloads::DefaultRecordOptions(profile, "run");
  RecordSession session(&env, opts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result->runtime_seconds;
}

TEST(ClusterReplay, InnerProbeScalesAcrossWorkers) {
  MemFileSystem fs;
  const WorkloadProfile profile = ParProfile();
  const double record_seconds = RecordOnto(&fs, profile);

  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.cluster.instance = sim::kP3_8xLarge;  // 4 GPUs
  copts.costs = sim::PaperPlatformCosts();

  auto factory = MakeWorkloadFactory(profile, kProbeInner);
  auto result = sim::ClusterReplay(factory, &fs, copts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(result->workers_used, 4);
  // 12 epochs over 4 workers => 3 epochs each; near-ideal parallelism.
  const double ideal = record_seconds / 4;
  EXPECT_LT(result->latency_seconds, ideal * 1.35);
  EXPECT_GT(result->latency_seconds, ideal * 0.7);
  // Every epoch's probe output is present exactly once in merged logs.
  EXPECT_EQ(result->probe_entries.size(),
            static_cast<size_t>(profile.epochs) * 4u);
  EXPECT_TRUE(result->deferred.ok)
      << (result->deferred.anomalies.empty()
              ? ""
              : result->deferred.anomalies[0]);
}

TEST(ClusterReplay, WeakAndStrongInitAgree) {
  MemFileSystem fs;
  const WorkloadProfile profile = ParProfile();
  RecordOnto(&fs, profile);

  auto factory = MakeWorkloadFactory(profile, kProbeInner);
  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.costs = sim::PaperPlatformCosts();

  copts.init_mode = InitMode::kStrong;
  auto strong = sim::ClusterReplay(factory, &fs, copts);
  ASSERT_TRUE(strong.ok());
  copts.init_mode = InitMode::kWeak;
  auto weak = sim::ClusterReplay(factory, &fs, copts);
  ASSERT_TRUE(weak.ok());

  EXPECT_TRUE(strong->deferred.ok);
  EXPECT_TRUE(weak->deferred.ok);
  EXPECT_EQ(strong->effective_init, InitMode::kStrong);
  EXPECT_EQ(weak->effective_init, InitMode::kWeak);
  // "the difference between weak and strong initialization is negligible"
  EXPECT_NEAR(weak->latency_seconds, strong->latency_seconds,
              strong->latency_seconds * 0.15);
  // Identical hindsight output.
  ASSERT_EQ(weak->probe_entries.size(), strong->probe_entries.size());
  for (size_t i = 0; i < weak->probe_entries.size(); ++i)
    EXPECT_EQ(weak->probe_entries[i].text, strong->probe_entries[i].text);
}

TEST(ClusterReplay, SpeedupBoundedByLoadBalanceCeiling) {
  MemFileSystem fs;
  // 10 epochs over 4 workers -> max 3 epochs per worker -> <= 10/3 speedup.
  const WorkloadProfile profile = ParProfile(10);
  const double record_seconds = RecordOnto(&fs, profile);

  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.costs = sim::PaperPlatformCosts();
  auto result =
      sim::ClusterReplay(MakeWorkloadFactory(profile, kProbeInner), &fs,
                         copts);
  ASSERT_TRUE(result.ok());
  const double speedup = record_seconds / result->latency_seconds;
  EXPECT_LE(speedup, 10.0 / 3.0 + 0.01);
  EXPECT_GT(speedup, 10.0 / 3.0 * 0.75);
}

TEST(ClusterReplay, MoreWorkersThanEpochsUsesEpochCount) {
  MemFileSystem fs;
  const WorkloadProfile profile = ParProfile(3);
  RecordOnto(&fs, profile);

  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 2;  // 8 GPUs for 3 epochs
  copts.costs = sim::PaperPlatformCosts();
  auto result =
      sim::ClusterReplay(MakeWorkloadFactory(profile, kProbeInner), &fs,
                         copts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->workers_used, 3);
  EXPECT_TRUE(result->deferred.ok);
}

TEST(ClusterReplay, OuterProbeIsCheapAndParallel) {
  MemFileSystem fs;
  const WorkloadProfile profile = ParProfile();
  const double record_seconds = RecordOnto(&fs, profile);

  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.costs = sim::PaperPlatformCosts();
  auto result = sim::ClusterReplay(MakeWorkloadFactory(profile, kProbeOuter),
                                   &fs, copts);
  ASSERT_TRUE(result.ok());
  // Partial replay: all training loops restored, not executed.
  EXPECT_EQ(result->skipblocks.executed, 0);
  EXPECT_GT(result->skipblocks.skipped, 0);
  EXPECT_LT(result->latency_seconds, record_seconds / 20);
  EXPECT_EQ(result->probe_entries.size(),
            static_cast<size_t>(profile.epochs));
  EXPECT_TRUE(result->deferred.ok);
}

TEST(ClusterReplay, MachinePricingCoversBusyWorkers) {
  MemFileSystem fs;
  const WorkloadProfile profile = ParProfile();
  RecordOnto(&fs, profile);

  sim::ClusterReplayOptions copts;
  copts.run_prefix = "run";
  copts.cluster.num_machines = 1;
  copts.costs = sim::PaperPlatformCosts();
  auto result =
      sim::ClusterReplay(MakeWorkloadFactory(profile, kProbeInner), &fs,
                         copts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->machine_usage.size(), 1u);
  EXPECT_NEAR(result->machine_usage[0].cost_dollars,
              sim::InstanceCost(sim::kP3_8xLarge, result->latency_seconds),
              1e-9);
  EXPECT_GT(result->total_cost_dollars, 0);
}

}  // namespace
}  // namespace flor
