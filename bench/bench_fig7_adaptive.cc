// Figure 7 — impact of adaptive checkpointing on record overhead.
//
// For each workload, record runs twice: with the adaptive controller
// enabled (the default) and disabled (materialize every loop execution).
// The user-specifiable overhead tolerance is ε = 6.67%. Expected shape:
// * with adaptivity, no workload exceeds ε;
// * without it, the fine-tuning workloads (RTE, CoLA) blow up — their
//   checkpoints are enormous relative to their short epochs (paper: 91%
//   and 28%).
// Also reports the refined restore/materialize scaling factor c measured
// from an actual replay (paper: average c = 1.38).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace flor;
  using bench::Pct;

  std::printf("Figure 7: Impact of adaptive checkpointing on record "
              "overhead (tolerance = 6.67%%).\n\n");
  std::printf("%-5s %12s %12s %12s %8s %8s\n", "Name", "vanilla",
              "adaptive", "disabled", "ckpts-A", "ckpts-D");
  bench::Hr();

  double c_sum = 0;
  int c_count = 0;
  bool tolerance_ok = true;
  for (const auto& profile : bench::BenchWorkloads()) {
    MemFileSystem fs;
    const double vanilla =
        bench::RunVanilla(&fs, profile, workloads::kProbeNone);

    RecordResult adaptive =
        bench::RunRecord(&fs, profile, "adaptive", /*adaptive=*/true);
    const double adaptive_overhead =
        adaptive.runtime_seconds / vanilla - 1.0;
    tolerance_ok &= adaptive_overhead <= 1.0 / 15.0 + 1e-9;

    MemFileSystem fs2;
    RecordResult disabled =
        bench::RunRecord(&fs2, profile, "disabled", /*adaptive=*/false);
    const double disabled_overhead =
        disabled.runtime_seconds / vanilla - 1.0;

    std::printf("%-5s %12s %12s %12s %8zu %8zu\n", profile.name.c_str(),
                HumanSeconds(vanilla).c_str(),
                Pct(adaptive_overhead).c_str(),
                Pct(disabled_overhead).c_str(),
                adaptive.manifest.records.size(),
                disabled.manifest.records.size());

    // Refine c from a real (no-probe) replay against the adaptive run.
    {
      Env env(std::make_unique<SimClock>(), &fs);
      auto instance =
          workloads::MakeWorkloadFactory(profile, workloads::kProbeNone)();
      FLOR_CHECK(instance.ok());
      ReplayOptions ropts;
      ropts.run_prefix = "adaptive";
      ropts.costs = sim::PaperPlatformCosts();
      ReplaySession session(&env, ropts);
      exec::Frame frame;
      auto rr = session.Run(instance->program.get(), &frame);
      FLOR_CHECK(rr.ok()) << rr.status().ToString();
      if (rr->observed_c > 0) {
        c_sum += rr->observed_c;
        ++c_count;
      }
    }
  }

  bench::Hr();
  std::printf("all workloads within 6.67%% tolerance with adaptivity: %s\n",
              tolerance_ok ? "YES" : "NO");
  if (c_count > 0) {
    std::printf("measured average scaling factor c (restore/materialize): "
                "%.2f  (paper: 1.38)\n", c_sum / c_count);
  }
  std::printf("\nPaper shape: fine-tuning workloads (RTE, CoLA) exceed the "
              "tolerance by a wide\nmargin without adaptivity (paper: 91%% "
              "and 28%%); no workload exceeds it with\nadaptive "
              "checkpointing.\n");
  return 0;
}
