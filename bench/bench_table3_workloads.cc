// Table 3 — the computer vision and NLP benchmarks used in the evaluation.
// Reprints the table from the workload registry and adds the simulated
// scale parameters each experiment harness uses.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace flor;

  const auto profiles = bench::BenchWorkloads();
  std::printf("Table 3: Computer vision and NLP benchmarks used in our "
              "evaluation.\n\n");
  std::printf("%-5s %-10s %-33s %-16s %-11s %-10s %7s\n", "Name", "Benchmark",
              "Task", "Model", "Dataset", "Train/Tune", "Epochs");
  bench::Hr();
  for (const auto& p : profiles) {
    std::printf("%-5s %-10s %-33s %-16s %-11s %-10s %7lld\n",
                p.name.c_str(), p.benchmark.c_str(), p.task.c_str(),
                p.model.c_str(), p.dataset.c_str(),
                p.fine_tune ? "Fine-Tune" : "Train",
                static_cast<long long>(p.epochs));
  }

  std::printf("\nSimulated scale calibration (see EXPERIMENTS.md):\n\n");
  std::printf("%-5s %14s %13s %13s %16s\n", "Name", "epoch compute",
              "outer/epoch", "preamble", "ckpt raw bytes");
  bench::Hr();
  for (const auto& p : profiles) {
    std::printf("%-5s %14s %13s %13s %16s\n", p.name.c_str(),
                HumanSeconds(p.sim_epoch_seconds).c_str(),
                HumanSeconds(p.sim_outer_seconds).c_str(),
                HumanSeconds(p.sim_preamble_seconds).c_str(),
                HumanBytes(p.sim_ckpt_raw_bytes).c_str());
  }
  std::printf("\nVanilla training runtimes (simulated):\n");
  for (const auto& p : profiles) {
    std::printf("  %-5s %s\n", p.name.c_str(),
                HumanSeconds(p.VanillaSeconds()).c_str());
  }
  return 0;
}
