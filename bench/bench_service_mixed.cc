// Service front-end under mixed multi-tenant load: N session threads share
// one flor::Connection (shared spool, bucket tier, bloom filters,
// background GC) and each runs a full tenant lifecycle — record a run,
// hammer the query surface (ListRuns + Exists through the tiers), then a
// thread-engine replay. Reports aggregate session throughput and the
// query-path latency distribution as the session count sweeps.
//
// Expected shape: sessions/sec grows with the session count until the
// record sessions saturate the host's cores (each record runs a real
// training loop with a wall-clock per-batch device cost), while query
// p50/p99 stays flat — queries are read-only prefix scans and never
// contend on the admission gate or the GC worker. Set BENCH_JSON=<path>
// to capture `stage: "service_mixed"` rows.
//
// A second stage measures the admission-gate fairness fix: one burst
// tenant floods a two-slot gate with back-to-back records while steady
// tenants each want a single slot. Under the legacy global FIFO cv-gate
// the burst backlog barges ahead of the steady arrivals (their admission
// p99 grows with the whole backlog); under fair admission the burst
// tenant is quota-capped to one slot and freed slots hand off round-robin,
// so a steady tenant's wait is bounded by roughly one record duration.
// Captured as `stage: "skewed_mix"` rows, one per gate.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/service.h"

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double>* sorted_in_place, double p) {
  std::sort(sorted_in_place->begin(), sorted_in_place->end());
  if (sorted_in_place->empty()) return 0;
  const size_t idx = static_cast<size_t>(
      p * static_cast<double>(sorted_in_place->size() - 1) + 0.5);
  return (*sorted_in_place)[std::min(idx, sorted_in_place->size() - 1)];
}

}  // namespace

int main() {
  using namespace flor;

  bench::BenchJson json("service_mixed");

  // The standard real-engine workload shape: dense checkpoints, wall-clock
  // per-batch device cost so concurrent recorders contend like GPU jobs.
  workloads::WorkloadProfile profile = bench::ExecutorWorkload();
  profile.name = "SvcMix";
  profile.epochs = bench::SmokeMode() ? 4 : 8;

  const int queries_per_session = bench::SmokeIters(50, 10);
  std::vector<int> session_counts =
      bench::SmokeMode() ? std::vector<int>{2, 4}
                         : std::vector<int>{1, 2, 4, 8};

  std::printf("Service mixed load: record + query + replay lifecycles on "
              "one shared Connection.\n\n");
  std::printf("%9s %10s %13s %12s %12s %10s\n", "sessions", "wall",
              "sessions/s", "query p50", "query p99", "gc passes");
  bench::Hr();

  for (int sessions : session_counts) {
    MemFileSystem fs;
    Env env(std::make_unique<WallClock>(), &fs);

    ConnectionOptions copts;
    copts.root = "svc";
    copts.ckpt_shards = profile.ckpt_shards;
    copts.tier.bucket_prefix = "s3";
    copts.tier.bloom_filter = true;
    copts.gc.keep_last_k = 1;  // background demotion races the readers
    auto conn = Connection::Open(&env, copts);
    FLOR_CHECK(conn.ok()) << conn.status().ToString();

    const SessionRecordOptions record_opts = [&] {
      RecordOptions defaults = workloads::DefaultRecordOptions(profile, "");
      SessionRecordOptions s;
      s.workload = defaults.workload;
      s.materializer = defaults.materializer;
      s.adaptive = defaults.adaptive;
      // Deterministic checkpoint density: under a wall clock the adaptive
      // controller keys off real measured overhead and may materialize
      // nothing for a workload this small, leaving replay un-partitionable.
      s.adaptive.enabled = false;
      s.nominal_checkpoint_bytes = defaults.nominal_checkpoint_bytes;
      s.vanilla_runtime_seconds = defaults.vanilla_runtime_seconds;
      return s;
    }();
    const ProgramFactory record_factory =
        workloads::MakeWorkloadFactory(profile, workloads::kProbeNone);
    const ProgramFactory probed_factory =
        workloads::MakeWorkloadFactory(profile, workloads::kProbeInner);

    std::mutex latencies_mu;
    std::vector<double> query_latencies;
    query_latencies.reserve(
        static_cast<size_t>(sessions * queries_per_session));

    const double start = NowSeconds();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(sessions));
    for (int t = 0; t < sessions; ++t) {
      threads.emplace_back([&, t] {
        auto session = (*conn)->OpenSession(StrCat("tenant", t));
        FLOR_CHECK(session.ok()) << session.status().ToString();
        auto rec = (*session)->Record("run", record_factory, record_opts);
        FLOR_CHECK(rec.ok()) << rec.status().ToString();
        FLOR_CHECK(!rec->manifest.records.empty());

        std::vector<double> local;
        local.reserve(static_cast<size_t>(queries_per_session));
        const CheckpointKey key = rec->manifest.records.front().key;
        for (int q = 0; q < queries_per_session; ++q) {
          const double q_start = NowSeconds();
          auto runs = (*session)->Query();
          FLOR_CHECK(runs.ok()) << runs.status().ToString();
          auto exists = (*session)->Exists("run", key);
          FLOR_CHECK(exists.ok()) << exists.status().ToString();
          FLOR_CHECK(*exists);
          local.push_back(NowSeconds() - q_start);
        }

        SessionReplayOptions ropts;
        ropts.engine = ReplayEngine::kThreads;
        ropts.workers = 2;
        auto replay = (*session)->Replay("run", probed_factory, ropts);
        FLOR_CHECK(replay.ok()) << replay.status().ToString();
        FLOR_CHECK(replay->deferred.ok);

        std::lock_guard<std::mutex> lock(latencies_mu);
        query_latencies.insert(query_latencies.end(), local.begin(),
                               local.end());
      });
    }
    for (auto& th : threads) th.join();
    (*conn)->DrainBackground();
    const double wall = NowSeconds() - start;

    const ConnectionStats stats = (*conn)->stats();
    FLOR_CHECK(stats.records_completed == sessions);
    FLOR_CHECK(stats.gc_failures == 0) << stats.last_gc_error;

    const double sessions_per_sec = sessions / wall;
    const double p50 = Percentile(&query_latencies, 0.50);
    const double p99 = Percentile(&query_latencies, 0.99);

    std::printf("%9d %10s %13.2f %12s %12s %10lld\n", sessions,
                HumanSeconds(wall).c_str(), sessions_per_sec,
                HumanSeconds(p50).c_str(), HumanSeconds(p99).c_str(),
                static_cast<long long>(stats.gc_passes));

    json.Row()
        .Field("stage", "service_mixed")
        .Field("concurrent_sessions", sessions)
        .Field("queries_per_session", queries_per_session)
        .Field("records_completed", stats.records_completed)
        .Field("replays_completed", stats.replays_completed)
        .Field("queries_served", stats.queries_served)
        .Field("gc_passes", stats.gc_passes)
        .Field("wall_seconds", wall)
        .Field("sessions_per_sec", sessions_per_sec)
        .Field("query_p50_seconds", p50)
        .Field("query_p99_seconds", p99);
  }

  std::printf("\nQueries are read-only prefix scans: p99 should stay flat "
              "as sessions are added,\nwhile the wall time per sweep grows "
              "with recorder contention for cores.\n");

  // ---- Skewed tenant mix: burst-vs-steady admission fairness. ----
  const int burst_threads = bench::SmokeMode() ? 3 : 4;
  const int burst_runs_each = bench::SmokeMode() ? 2 : 4;
  const int steady_tenants = bench::SmokeMode() ? 2 : 4;

  std::printf("\nSkewed tenant mix: %d burst recorder(s) x %d run(s) "
              "flooding a 2-slot gate vs %d steady tenants.\n\n",
              burst_threads, burst_runs_each, steady_tenants);
  std::printf("%9s %10s %13s %13s %13s\n", "gate", "wall", "steady p50",
              "steady p99", "burst peak");
  bench::Hr();

  for (const bool fair : {false, true}) {
    MemFileSystem fs;
    Env env(std::make_unique<WallClock>(), &fs);

    ConnectionOptions copts;
    copts.root = "svc";
    copts.ckpt_shards = profile.ckpt_shards;
    copts.tier.bucket_prefix = "s3";
    copts.max_concurrent_records = 2;
    copts.max_records_per_tenant = 1;  // enforced under the fair gate only
    copts.fair_admission = fair;
    auto conn = Connection::Open(&env, copts);
    FLOR_CHECK(conn.ok()) << conn.status().ToString();

    const SessionRecordOptions record_opts = [&] {
      RecordOptions defaults = workloads::DefaultRecordOptions(profile, "");
      SessionRecordOptions s;
      s.workload = defaults.workload;
      s.materializer = defaults.materializer;
      s.adaptive = defaults.adaptive;
      s.adaptive.enabled = false;
      s.nominal_checkpoint_bytes = defaults.nominal_checkpoint_bytes;
      s.vanilla_runtime_seconds = defaults.vanilla_runtime_seconds;
      return s;
    }();
    const ProgramFactory record_factory =
        workloads::MakeWorkloadFactory(profile, workloads::kProbeNone);

    std::mutex waits_mu;
    std::vector<double> steady_waits;
    steady_waits.reserve(static_cast<size_t>(steady_tenants));

    const double start = NowSeconds();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(burst_threads + steady_tenants));
    for (int t = 0; t < burst_threads; ++t) {
      threads.emplace_back([&, t] {
        auto session = (*conn)->OpenSession("burst");
        FLOR_CHECK(session.ok()) << session.status().ToString();
        for (int r = 0; r < burst_runs_each; ++r) {
          auto rec = (*session)->Record(StrCat("b", t, "-", r),
                                        record_factory, record_opts);
          FLOR_CHECK(rec.ok()) << rec.status().ToString();
        }
      });
    }
    // Let the burst saturate the gate before the steady tenants arrive —
    // the starvation-prone arrival order. Under the fair gate the burst
    // tenant's quota caps it at one running record, so one is saturation.
    const int burst_peak_possible = fair ? 1 : 2;
    while ((*conn)->stats().active_records < burst_peak_possible) {
      std::this_thread::yield();
    }
    for (int t = 0; t < steady_tenants; ++t) {
      threads.emplace_back([&, t] {
        auto session = (*conn)->OpenSession(StrCat("steady", t));
        FLOR_CHECK(session.ok()) << session.status().ToString();
        auto rec = (*session)->Record("run", record_factory, record_opts);
        FLOR_CHECK(rec.ok()) << rec.status().ToString();
        std::lock_guard<std::mutex> lock(waits_mu);
        steady_waits.push_back(rec->admission_wait_seconds);
      });
    }
    for (auto& th : threads) th.join();
    (*conn)->DrainBackground();
    const double wall = NowSeconds() - start;

    const ConnectionStats stats = (*conn)->stats();
    FLOR_CHECK(stats.records_completed ==
               burst_threads * burst_runs_each + steady_tenants);
    const int burst_peak = stats.tenants.at("burst").max_observed_records;
    if (fair) FLOR_CHECK(burst_peak == 1);  // quota held

    const double p50 = Percentile(&steady_waits, 0.50);
    const double p99 = Percentile(&steady_waits, 0.99);
    const char* gate = fair ? "fair" : "fifo";
    std::printf("%9s %10s %13s %13s %13d\n", gate,
                HumanSeconds(wall).c_str(), HumanSeconds(p50).c_str(),
                HumanSeconds(p99).c_str(), burst_peak);

    json.Row()
        .Field("stage", "skewed_mix")
        .Field("gate", gate)
        .Field("burst_threads", burst_threads)
        .Field("burst_runs_each", burst_runs_each)
        .Field("steady_tenants", steady_tenants)
        .Field("wall_seconds", wall)
        .Field("steady_wait_p50_seconds", p50)
        .Field("steady_wait_p99_seconds", p99);
  }

  std::printf("\nThe fair gate quota-caps the burst tenant and hands freed "
              "slots round-robin:\nsteady-tenant admission p99 drops from "
              "backlog-scaled (fifo) to about one record\nduration.\n");
  return 0;
}
