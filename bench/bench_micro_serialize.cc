// Micro benchmarks (google-benchmark) for the serialization substrate:
// tensor encode/decode, compression codecs, checksummed frames, and full
// checkpoint round trips. These are the real-time costs behind the §5.1
// serialization-vs-I/O discussion.

#include <benchmark/benchmark.h>

#include "checkpoint/checkpoint.h"
#include "common/random.h"
#include "exec/log_stream.h"
#include "serialize/compress.h"
#include "serialize/frame.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace flor {
namespace {

Tensor MakeTensor(int64_t n, bool compressible) {
  Tensor t(Shape{n});
  if (compressible) {
    // Block-constant data: the frozen-parameter pattern.
    float* p = t.f32();
    for (int64_t i = 0; i < n; ++i)
      p[i] = static_cast<float>((i / 64) % 7);
  } else {
    Rng rng(1234);
    ops::RandNormal(&t, &rng);
  }
  return t;
}

void BM_TensorEncode(benchmark::State& state) {
  Tensor t = MakeTensor(state.range(0), false);
  for (auto _ : state) {
    std::string bytes = TensorToBytes(t);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t.byte_size()));
}
BENCHMARK(BM_TensorEncode)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_TensorDecode(benchmark::State& state) {
  std::string bytes = TensorToBytes(MakeTensor(state.range(0), false));
  for (auto _ : state) {
    auto t = TensorFromBytes(bytes);
    benchmark::DoNotOptimize(t);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_TensorDecode)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_CompressLz(benchmark::State& state) {
  const bool compressible = state.range(1) != 0;
  std::string payload = TensorToBytes(MakeTensor(state.range(0),
                                                 compressible));
  for (auto _ : state) {
    std::string out = Compress(payload, Codec::kLz);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_CompressLz)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Args({1 << 18, 0})
    ->Args({1 << 18, 1});

void BM_CompressRle(benchmark::State& state) {
  std::string payload = TensorToBytes(MakeTensor(state.range(0), true));
  for (auto _ : state) {
    std::string out = Compress(payload, Codec::kRle);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_CompressRle)->Arg(1 << 14)->Arg(1 << 18);

void BM_FrameRoundTrip(benchmark::State& state) {
  std::string payload = TensorToBytes(MakeTensor(state.range(0), false));
  for (auto _ : state) {
    std::string framed;
    AppendFrame(&framed, payload);
    FrameReader reader(framed);
    std::string out;
    benchmark::DoNotOptimize(reader.Next(&out));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_FrameRoundTrip)->Arg(1 << 14)->Arg(1 << 18);

void BM_CheckpointEncodeDecode(benchmark::State& state) {
  NamedSnapshots snaps;
  for (int i = 0; i < 4; ++i) {
    snaps.emplace_back(
        "t" + std::to_string(i),
        ir::SnapshotValue(ir::Value::FromTensor(
            MakeTensor(state.range(0), i % 2 == 0))));
  }
  for (auto _ : state) {
    std::string bytes = EncodeCheckpoint(snaps);
    auto decoded = DecodeCheckpoint(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_CheckpointEncodeDecode)->Arg(1 << 12)->Arg(1 << 16);

/// A record-run-shaped log stream: per-batch loss lines plus per-epoch
/// metrics, contexts like "e=17/i=3", occasional escapes in the text.
exec::LogStream MakeLogStream(int64_t entries) {
  exec::LogStream stream;
  stream.Reserve(static_cast<size_t>(entries));
  for (int64_t i = 0; i < entries; ++i) {
    exec::LogEntry& e = stream.AppendEntry();
    e.stmt_uid = static_cast<int32_t>(7 + i % 5);
    e.context = "e=" + std::to_string(i / 8) + "/i=" + std::to_string(i % 8);
    e.label = i % 9 == 0 ? "test_acc" : "loss";
    e.text = "0." + std::to_string(1000000 + i % 899999);
    if (i % 31 == 0) e.text += "\tnote\nwrapped";
  }
  return stream;
}

void BM_LogStreamSerialize(benchmark::State& state) {
  const exec::LogStream stream = MakeLogStream(state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string out = stream.Serialize();
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_LogStreamSerialize)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

/// The pre-optimization shape: escape each field into a temporary, build
/// each line with string concatenation, append to the output. Kept as the
/// comparison arm for the single-allocation Serialize above (exec_test
/// pins the two byte-identical; this pins the speedup visible).
void BM_LogStreamSerializeNaive(benchmark::State& state) {
  const exec::LogStream stream = MakeLogStream(state.range(0));
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '\t': out += "\\t"; break;
        case '\n': out += "\\n"; break;
        case '\\': out += "\\\\"; break;
        default: out += c;
      }
    }
    return out;
  };
  size_t bytes = 0;
  for (auto _ : state) {
    std::string out;
    for (const auto& e : stream.entries()) {
      out += std::to_string(e.stmt_uid) + "\t" + escape(e.context) + "\t" +
             (e.init_mode ? "1" : "0") + "\t" + escape(e.label) + "\t" +
             escape(e.text) + "\n";
    }
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_LogStreamSerializeNaive)
    ->Arg(1 << 10)
    ->Arg(1 << 14)
    ->Arg(1 << 17);

}  // namespace
}  // namespace flor
