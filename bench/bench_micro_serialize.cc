// Micro benchmarks (google-benchmark) for the serialization substrate:
// tensor encode/decode, compression codecs, checksummed frames, and full
// checkpoint round trips. These are the real-time costs behind the §5.1
// serialization-vs-I/O discussion.

#include <benchmark/benchmark.h>

#include "checkpoint/checkpoint.h"
#include "common/random.h"
#include "serialize/compress.h"
#include "serialize/frame.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"

namespace flor {
namespace {

Tensor MakeTensor(int64_t n, bool compressible) {
  Tensor t(Shape{n});
  if (compressible) {
    // Block-constant data: the frozen-parameter pattern.
    float* p = t.f32();
    for (int64_t i = 0; i < n; ++i)
      p[i] = static_cast<float>((i / 64) % 7);
  } else {
    Rng rng(1234);
    ops::RandNormal(&t, &rng);
  }
  return t;
}

void BM_TensorEncode(benchmark::State& state) {
  Tensor t = MakeTensor(state.range(0), false);
  for (auto _ : state) {
    std::string bytes = TensorToBytes(t);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(t.byte_size()));
}
BENCHMARK(BM_TensorEncode)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_TensorDecode(benchmark::State& state) {
  std::string bytes = TensorToBytes(MakeTensor(state.range(0), false));
  for (auto _ : state) {
    auto t = TensorFromBytes(bytes);
    benchmark::DoNotOptimize(t);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes.size()));
}
BENCHMARK(BM_TensorDecode)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_CompressLz(benchmark::State& state) {
  const bool compressible = state.range(1) != 0;
  std::string payload = TensorToBytes(MakeTensor(state.range(0),
                                                 compressible));
  for (auto _ : state) {
    std::string out = Compress(payload, Codec::kLz);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_CompressLz)
    ->Args({1 << 14, 0})
    ->Args({1 << 14, 1})
    ->Args({1 << 18, 0})
    ->Args({1 << 18, 1});

void BM_CompressRle(benchmark::State& state) {
  std::string payload = TensorToBytes(MakeTensor(state.range(0), true));
  for (auto _ : state) {
    std::string out = Compress(payload, Codec::kRle);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_CompressRle)->Arg(1 << 14)->Arg(1 << 18);

void BM_FrameRoundTrip(benchmark::State& state) {
  std::string payload = TensorToBytes(MakeTensor(state.range(0), false));
  for (auto _ : state) {
    std::string framed;
    AppendFrame(&framed, payload);
    FrameReader reader(framed);
    std::string out;
    benchmark::DoNotOptimize(reader.Next(&out));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_FrameRoundTrip)->Arg(1 << 14)->Arg(1 << 18);

void BM_CheckpointEncodeDecode(benchmark::State& state) {
  NamedSnapshots snaps;
  for (int i = 0; i < 4; ++i) {
    snaps.emplace_back(
        "t" + std::to_string(i),
        ir::SnapshotValue(ir::Value::FromTensor(
            MakeTensor(state.range(0), i % 2 == 0))));
  }
  for (auto _ : state) {
    std::string bytes = EncodeCheckpoint(snaps);
    auto decoded = DecodeCheckpoint(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_CheckpointEncodeDecode)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace
}  // namespace flor
