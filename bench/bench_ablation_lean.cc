// Ablation: lean checkpointing (paper §5.2).
//
// "Loop-scoped variables are very common and can be large, so this
//  filtering step is necessary for controlling overhead on record."
//
// For each workload's canonical training script, measures the actual bytes
// a Loop End Checkpoint captures with lean checkpointing (the filtered +
// augmented changeset: {optimizer, scheduler, net}) versus what a naive
// checkpoint of the *unfiltered* changeset would also haul along
// (batch/labels/preds/loss/grad per-batch temporaries). State is taken from
// a really-executed epoch of the tiny model, so the ratio reflects genuine
// tensor sizes.

#include <cstdio>

#include "analysis/augment.h"
#include "bench_util.h"
#include "exec/interpreter.h"
#include "flor/instrument.h"

int main() {
  using namespace flor;

  std::printf("Ablation: lean checkpointing — checkpoint bytes with vs "
              "without the\nloop-scoped filter (tiny-model scale; real "
              "state).\n\n");
  std::printf("%-5s %12s %12s %8s   %s\n", "Name", "lean", "naive",
              "ratio", "filtered-out variables");
  bench::Hr();

  for (const auto& profile : bench::BenchWorkloads()) {
    // Run one epoch for real so the frame holds genuine tensors.
    workloads::WorkloadProfile p = profile;
    p.epochs = 1;
    auto instance =
        workloads::MakeWorkloadFactory(p, workloads::kProbeNone)();
    FLOR_CHECK(instance.ok());
    InstrumentProgram(instance->program.get());
    auto env = Env::NewSimEnv();
    exec::Interpreter interp(env.get(), nullptr, nullptr);
    exec::Frame frame;
    FLOR_CHECK_OK(interp.Run(instance->program.get(), &frame));

    ir::Loop* training = instance->program->FindLoop(2);
    FLOR_CHECK(training != nullptr && training->analysis().instrumented);

    auto bytes_of = [&frame](const std::vector<std::string>& names) {
      uint64_t total = 0;
      for (const auto& name : names) {
        auto v = frame.Get(name);
        if (v.ok()) total += ir::SnapshotValue(*v).ApproxBytes();
      }
      return total;
    };

    const auto lean_names =
        analysis::AugmentChangeset(frame, training->analysis().changeset);
    const uint64_t lean = bytes_of(lean_names);
    std::vector<std::string> naive_names = lean_names;
    naive_names.insert(naive_names.end(),
                       training->analysis().filtered.begin(),
                       training->analysis().filtered.end());
    const uint64_t naive = bytes_of(naive_names);

    std::printf("%-5s %12s %12s %7.2fx   %s\n", profile.name.c_str(),
                HumanBytes(lean).c_str(), HumanBytes(naive).c_str(),
                static_cast<double>(naive) / static_cast<double>(lean),
                StrJoin(training->analysis().filtered, ", ").c_str());
  }
  bench::Hr();
  std::printf("At paper scale the gap is far larger: the filtered "
              "per-batch activations\nscale with batch size x model width, "
              "and they would be re-captured on\n*every* loop execution.\n");
  return 0;
}
