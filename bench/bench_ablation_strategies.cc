// Ablation (§5.1, end-to-end): how much background materialization buys.
//
// "With regard to the experiments of Table 3, background materialization
//  brings record overhead from an average of 4.76% to the average of 1.74%
//  mentioned above."
//
// Records every workload once per Fig. 5 strategy and reports the average
// record overhead. Expected shape: Baseline (everything on the training
// thread) noticeably worse than Fork; IPC strategies in between.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace flor;
  using bench::Pct;

  const auto profiles = bench::BenchWorkloads();
  std::printf("Ablation: record overhead by materialization strategy "
              "(adaptive checkpointing ON).\n\n");
  std::printf("%-12s", "Strategy");
  for (const auto& p : profiles)
    std::printf(" %8s", p.name.c_str());
  std::printf(" %9s\n", "average");
  bench::Hr();

  for (MaterializeStrategy strategy :
       {MaterializeStrategy::kBaseline, MaterializeStrategy::kIpcQueue,
        MaterializeStrategy::kIpcPlasma, MaterializeStrategy::kFork}) {
    std::printf("%-12s", MaterializeStrategyName(strategy));
    double sum = 0;
    for (const auto& profile : profiles) {
      MemFileSystem fs;
      const double vanilla =
          bench::RunVanilla(&fs, profile, workloads::kProbeNone);
      RecordResult rec = bench::RunRecord(&fs, profile, "run",
                                          /*adaptive=*/true, strategy);
      const double overhead = rec.runtime_seconds / vanilla - 1.0;
      sum += overhead;
      std::printf(" %8s", Pct(overhead).c_str());
    }
    std::printf(" %9s\n", Pct(sum / 8).c_str());
  }
  bench::Hr();
  std::printf("Paper: background materialization (Fork) brings the average "
              "from 4.76%%\n(foreground) down to ~1.7%%; the shape to check "
              "is Baseline >> Fork.\n");
  return 0;
}
