// Table 4 — S3 storage costs for one execution of Flor record, plus the
// sharded-store / batched-spool sweep.
//
// Each workload records with adaptive checkpointing; the table reports the
// gzip-stand-in-compressed checkpoint footprint at paper scale (nominal
// per-checkpoint size x checkpoints materialized) and its monthly S3 cost.
// The checkpoints are also really spooled (at tiny-model scale) from the
// local store to the simulated "s3/" bucket through the batched SpoolQueue,
// as the paper's background spooler does.
//
// On top of the paper's single-prefix column, the bench sweeps the
// checkpoint store over shards ∈ {1, 4, 16} and spool batch sizes: the
// shard-1 row must reproduce the pre-sharding storage bytes and monthly
// cost exactly (sharding moves objects, never changes them), and every
// sweep point must land the same bytes in the bucket.
//
// A second sweep exercises the automatic end-to-end lifecycle (rows with
// stage: "record+spool+gc"): RecordSession itself spools each checkpoint
// as the materializer lands it and retires old epochs keep-last-K per
// shard — no bench-side spool or GC calls. Invariants checked per point:
// the spooled bucket holds every materialized checkpoint (it is the
// durable archive), retirement leaves at most K epochs per loop locally,
// and the K=0 / shard-1 point leaves the run byte-identical to a plain
// record (the lifecycle is free when disabled).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench_util.h"
#include "checkpoint/gc.h"
#include "checkpoint/spool.h"
#include "common/logging.h"

int main() {
  using namespace flor;

  struct Row {
    std::string name;
    uint64_t stored_bytes;
    double monthly_cost;
  };
  std::vector<Row> rows;

  const int kShardSweep[] = {1, 4, 16};
  const int64_t kBatchSweep[] = {1, 8, 64};  // objects per spool batch

  bench::BenchJson json("table4_storage");

  std::printf("Sharded-store spool sweep (real objects, tiny scale):\n\n");
  std::printf("%-5s %7s %7s %9s %9s %9s %12s\n", "Name", "shards", "batch",
              "objects", "batches", "retries", "spool");
  bench::Hr();

  for (const auto& base_profile : bench::BenchWorkloads()) {
    uint64_t baseline_stored = 0;   // shard-1 nominal footprint
    double baseline_cost = 0;
    uint64_t baseline_bucket = 0;   // shard-1 real spooled bytes

    for (int shards : kShardSweep) {
      workloads::WorkloadProfile profile = base_profile;
      profile.ckpt_shards = shards;
      MemFileSystem fs;
      RecordResult rec = bench::RunRecord(&fs, profile, "run");

      // Nominal (paper-scale) compressed footprint. Placement does not
      // change content: the adaptive controller sees identical costs, so
      // the record count — and with it the footprint — is shard-invariant.
      const uint64_t stored =
          profile.NominalStoredBytes() * rec.manifest.records.size();
      const double cost = S3MonthlyCost(stored);

      CheckpointStore store(&fs, "run/ckpt", shards);
      const uint64_t local_bytes = store.TotalBytes();

      for (int64_t batch : kBatchSweep) {
        // Really spool the (tiny-scale) checkpoints to the simulated
        // bucket, one destination per sweep point.
        SpoolOptions sopts;
        sopts.max_batch_objects = batch;
        const std::string dst =
            StrCat("s3/b", batch, "/run/ckpt");
        const auto start = std::chrono::steady_clock::now();
        SpoolReport spool = SpoolStore(store, dst, sopts);
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();

        FLOR_CHECK(spool.ok()) << spool.first_error;
        FLOR_CHECK_EQ(spool.objects,
                      static_cast<int64_t>(rec.manifest.records.size()));
        FLOR_CHECK_EQ(spool.bytes, local_bytes);
        FLOR_CHECK_EQ(fs.TotalBytesUnder(dst + "/"), local_bytes);

        json.Row()
            .Field("workload", profile.name)
            .Field("shards", shards)
            .Field("batch", batch)
            .Field("stored_bytes", static_cast<int64_t>(stored))
            .Field("monthly_cost_dollars", cost)
            .Field("spooled_objects", spool.objects)
            .Field("spool_batches", spool.batches)
            .Field("spool_retries", spool.retries)
            .Field("seconds", seconds);

        std::printf("%-5s %7d %7lld %9lld %9lld %9lld %12s\n",
                    profile.name.c_str(), shards,
                    static_cast<long long>(batch),
                    static_cast<long long>(spool.objects),
                    static_cast<long long>(spool.batches),
                    static_cast<long long>(spool.retries),
                    HumanSeconds(seconds).c_str());
      }

      if (shards == 1) {
        baseline_stored = stored;
        baseline_cost = cost;
        baseline_bucket = local_bytes;
        rows.push_back({profile.name, stored, cost});
      } else {
        // Sharding must not move the Table 4 numbers by a single byte.
        FLOR_CHECK_EQ(stored, baseline_stored);
        FLOR_CHECK_EQ(cost, baseline_cost);
        FLOR_CHECK_EQ(local_bytes, baseline_bucket);
      }
    }
  }

  // ------------------------------------------------------------------
  // Lifecycle sweep: record + spool-as-you-materialize + keep-last-K GC,
  // all driven by RecordSession.
  // ------------------------------------------------------------------
  std::printf("\nBackground lifecycle sweep (record+spool+gc, automatic):"
              "\n\n");
  std::printf("%-5s %7s %7s %7s %9s %9s %9s %12s\n", "Name", "shards",
              "keepK", "ckpts", "spooled", "demoted", "local", "record");
  bench::Hr();

  const int kLifecycleShards[] = {1, 4};
  const int64_t kKeepSweep[] = {0, 2};

  for (const auto& base_profile : bench::BenchWorkloads()) {
    // Plain-record baseline at shard 1: the lifecycle with spooling on
    // and retention off must not change a byte of the run's local output.
    uint64_t plain_ckpt_bytes = 0;
    std::string plain_manifest;
    {
      workloads::WorkloadProfile profile = base_profile;
      profile.ckpt_shards = 1;
      MemFileSystem fs;
      bench::RunRecord(&fs, profile, "run");
      plain_ckpt_bytes = fs.TotalBytesUnder("run/ckpt/");
      auto m = fs.ReadFile("run/manifest.tsv");
      FLOR_CHECK(m.ok());
      plain_manifest = *m;
    }

    for (int shards : kLifecycleShards) {
      for (int64_t keep_k : kKeepSweep) {
        workloads::WorkloadProfile profile = base_profile;
        profile.ckpt_shards = shards;
        MemFileSystem fs;
        Env env(std::make_unique<SimClock>(), &fs);
        auto instance = workloads::MakeWorkloadFactory(
            profile, workloads::kProbeNone)();
        FLOR_CHECK(instance.ok()) << instance.status().ToString();
        RecordOptions opts =
            workloads::DefaultRecordOptions(profile, "run");
        opts.spool_prefix = "s3";
        opts.gc.keep_last_k = keep_k;

        const auto start = std::chrono::steady_clock::now();
        RecordSession session(&env, opts);
        exec::Frame frame;
        auto result = session.Run(instance->program.get(), &frame);
        const double seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        FLOR_CHECK(result.ok()) << result.status().ToString();

        // The pipeline was automatic: every materialized checkpoint is in
        // the bucket (the durable archive), and — because the spool mirror
        // is the store's bucket tier — the GC *demoted*: the manifest
        // stays complete while the local store keeps only the newest K
        // epochs per loop.
        const int64_t materialized =
            static_cast<int64_t>(result->manifest.records.size());
        const int64_t local_objects =
            materialized - result->gc_report.retired_objects();
        FLOR_CHECK(result->spool_report.ok())
            << result->spool_report.first_error;
        FLOR_CHECK_EQ(result->spool_report.objects, materialized);
        FLOR_CHECK_EQ(
            static_cast<int64_t>(fs.ListPrefix("s3/run/ckpt/").size()),
            materialized);
        FLOR_CHECK_EQ(
            static_cast<int64_t>(fs.ListPrefix("run/ckpt/").size()),
            local_objects);

        if (keep_k == 0) {
          // Retention disabled: a guaranteed no-op.
          FLOR_CHECK_EQ(result->gc_report.retired_objects(), 0);
          if (shards == 1) {
            // And at shard 1 the local run output is byte-identical to a
            // plain record without the lifecycle.
            FLOR_CHECK_EQ(fs.TotalBytesUnder("run/ckpt/"),
                          plain_ckpt_bytes);
            auto m = fs.ReadFile("run/manifest.tsv");
            FLOR_CHECK(m.ok());
            FLOR_CHECK(*m == plain_manifest)
                << "lifecycle changed the shard-1 manifest bytes";
          }
        } else {
          // Demotion held keep-last-K *locally*: at most K epochs per
          // loop still have a local object; the rest are bucket-only.
          FLOR_CHECK(result->gc_report.demoted_to_bucket);
          FLOR_CHECK_EQ(result->gc_report.skipped_unspooled(), 0);
          CheckpointStore local_store(&fs, "run/ckpt",
                                      result->manifest.shard_count);
          std::map<int32_t, std::set<int64_t>> local_epochs;
          for (const auto& r : result->manifest.records) {
            if (r.epoch >= 0 && local_store.Exists(r.key))
              local_epochs[r.key.loop_id].insert(r.epoch);
          }
          for (const auto& [loop_id, set] : local_epochs) {
            FLOR_CHECK_LE(static_cast<int64_t>(set.size()), keep_k)
                << "loop " << loop_id;
          }
        }

        json.Row()
            .Field("stage", "record+spool+gc")
            .Field("workload", profile.name)
            .Field("shards", shards)
            .Field("keep_last_k", keep_k)
            .Field("checkpoints", materialized)
            .Field("spooled_objects", result->spool_report.objects)
            .Field("spool_batches", result->spool_report.batches)
            .Field("demoted_objects", result->gc_report.retired_objects())
            .Field("local_objects", local_objects)
            .Field("seconds", seconds);

        std::printf("%-5s %7d %7lld %7lld %9lld %9lld %9lld %12s\n",
                    profile.name.c_str(), shards,
                    static_cast<long long>(keep_k),
                    static_cast<long long>(materialized),
                    static_cast<long long>(result->spool_report.objects),
                    static_cast<long long>(
                        result->gc_report.retired_objects()),
                    static_cast<long long>(local_objects),
                    HumanSeconds(seconds).c_str());
      }
    }
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.stored_bytes < b.stored_bytes;
  });

  std::printf("\nTable 4: S3 storage costs for one execution of Flor "
              "record.\n\n");
  std::printf("%-5s %18s %20s\n", "Name", "Checkpoint Size",
              "Storage Cost / Mo.");
  bench::Hr();
  double total = 0;
  bool all_under_dollar = true;
  for (const auto& row : rows) {
    std::printf("%-5s %18s %20s\n", row.name.c_str(),
                HumanBytes(row.stored_bytes).c_str(),
                HumanDollars(row.monthly_cost).c_str());
    total += row.monthly_cost;
    all_under_dollar &= row.monthly_cost < 1.0;
  }
  bench::Hr();
  std::printf("every workload under $1.00/month: %s   (paper: yes)\n",
              all_under_dollar ? "YES" : "NO");
  std::printf("total for all eight workloads: %s\n",
              HumanDollars(total).c_str());
  std::printf("shard sweep: shard-1 footprint and cost reproduced exactly "
              "at 4 and 16 shards.\n");
  return 0;
}
