// Table 4 — S3 storage costs for one execution of Flor record.
//
// Each workload records with adaptive checkpointing; the table reports the
// gzip-stand-in-compressed checkpoint footprint at paper scale (nominal
// per-checkpoint size x checkpoints materialized) and its monthly S3 cost.
// The checkpoints are also really spooled (at tiny-model scale) from the
// local prefix to the simulated "s3/" bucket, as the paper's background
// spooler does.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "checkpoint/spool.h"

int main() {
  using namespace flor;

  struct Row {
    std::string name;
    uint64_t stored_bytes;
    double monthly_cost;
  };
  std::vector<Row> rows;

  for (const auto& profile : bench::BenchWorkloads()) {
    MemFileSystem fs;
    RecordResult rec = bench::RunRecord(&fs, profile, "run");

    // Nominal (paper-scale) compressed footprint.
    const uint64_t stored =
        profile.NominalStoredBytes() * rec.manifest.records.size();

    // Really spool the (tiny-scale) checkpoints to the simulated bucket.
    auto spool = SpoolToS3(&fs, "run/ckpt/", "s3/run/ckpt/");
    FLOR_CHECK(spool.ok()) << spool.status().ToString();
    FLOR_CHECK_EQ(spool->objects,
                  static_cast<int64_t>(rec.manifest.records.size()));

    rows.push_back({profile.name, stored, S3MonthlyCost(stored)});
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.stored_bytes < b.stored_bytes;
  });

  std::printf("Table 4: S3 storage costs for one execution of Flor "
              "record.\n\n");
  std::printf("%-5s %18s %20s\n", "Name", "Checkpoint Size",
              "Storage Cost / Mo.");
  bench::Hr();
  double total = 0;
  bool all_under_dollar = true;
  for (const auto& row : rows) {
    std::printf("%-5s %18s %20s\n", row.name.c_str(),
                HumanBytes(row.stored_bytes).c_str(),
                HumanDollars(row.monthly_cost).c_str());
    total += row.monthly_cost;
    all_under_dollar &= row.monthly_cost < 1.0;
  }
  bench::Hr();
  std::printf("every workload under $1.00/month: %s   (paper: yes)\n",
              all_under_dollar ? "YES" : "NO");
  std::printf("total for all eight workloads: %s\n",
              HumanDollars(total).c_str());
  return 0;
}
