// Figure 14 — cost comparison for performing the same amount of work
// serially vs. in parallel, plus the tiered-retention cost/latency
// frontier that the local->bucket checkpoint store opens up.
//
// Part 1 (the paper's figure): serial on one P3.2xLarge (1 GPU) vs the
// partitioned replay on N P3.8xLarge machines (4 GPUs each). "Parallel
// executions take less time but run on more expensive hardware"; because
// Flor's parallelism is nearly ideal, the dollar costs come out almost
// equal while wall-clock time drops ~Nx.
//
// Part 2 (tiered frontier): sweep local keep-last-K (demotion to the
// bucket mirror) x bucket keep-last-K' (final-tier retirement). Each
// point records with spool-as-you-materialize, applies both retention
// tiers, then replays through the tiered store with rehydration off so
// every bucket fault is visible. Reported per point: bytes held on each
// tier, the S3 monthly bill for the bucket tier, replay latency (bucket
// restores are charged at s3_read_bps by the cost model), bucket fault
// count, and cluster cost — the storage-vs-replay-latency trade-off an
// operator tunes K/K' against. Merged replay logs must stay
// byte-identical to the unretired baseline at every point.

#include <cstdio>

#include "bench_util.h"
#include "checkpoint/gc.h"
#include "checkpoint/spool.h"

int main() {
  using namespace flor;

  bench::BenchJson json("fig14_cost");

  std::printf("Figure 14: Cost of the same work, serial (P3.2xLarge) vs "
              "parallel (N x P3.8xLarge).\n\n");
  std::printf("%-10s %12s %10s %12s %10s %8s\n", "Workload", "serial",
              "cost", "parallel", "cost", "ratio");
  bench::Hr();

  // The paper's figure uses the long-running training workloads; machine
  // count is hyphenated on the x-axis labels.
  struct Case {
    const char* name;
    int machines;
  };
  std::vector<Case> cases = {{"RsNt", 4}, {"Wiki", 3}, {"ImgN", 2},
                             {"RnnT", 2}};
  if (bench::SmokeMode()) cases.resize(1);

  for (const auto& c : cases) {
    auto profile_or = workloads::WorkloadByName(c.name);
    FLOR_CHECK(profile_or.ok());
    const auto& profile = *profile_or;

    MemFileSystem fs;
    bench::RunRecord(&fs, profile, "run");
    const double vanilla =
        bench::RunVanilla(&fs, profile, workloads::kProbeInner);
    const double serial_cost = sim::InstanceCost(sim::kP3_2xLarge, vanilla);

    sim::ClusterReplayOptions copts;
    copts.run_prefix = "run";
    copts.cluster.num_machines = c.machines;
    copts.cluster.instance = sim::kP3_8xLarge;
    copts.init_mode = InitMode::kWeak;
    copts.costs = sim::PaperPlatformCosts();
    auto result = sim::ClusterReplay(
        workloads::MakeWorkloadFactory(profile, workloads::kProbeInner), &fs,
        copts);
    FLOR_CHECK(result.ok()) << result.status().ToString();
    FLOR_CHECK(result->deferred.ok);

    std::printf("%-6s-%-3d %12s %10s %12s %10s %7.2fx\n", c.name,
                c.machines, HumanSeconds(vanilla).c_str(),
                HumanDollars(serial_cost).c_str(),
                HumanSeconds(result->latency_seconds).c_str(),
                HumanDollars(result->total_cost_dollars).c_str(),
                result->total_cost_dollars / serial_cost);
    json.Row()
        .Field("stage", "serial_vs_parallel")
        .Field("workload", c.name)
        .Field("machines", c.machines)
        .Field("serial_seconds", vanilla)
        .Field("serial_cost_dollars", serial_cost)
        .Field("parallel_seconds", result->latency_seconds)
        .Field("parallel_cost_dollars", result->total_cost_dollars);
  }
  bench::Hr();
  std::printf("Paper shape: parallel replay costs about the same as serial "
              "(near-ideal\nparallelism) while cutting wall-clock time by "
              "roughly the worker count; the\nmarginal cost of parallelism "
              "stays under a few dollars.\n");

  // --- Part 2: tiered-retention frontier -------------------------------
  // One workload, swept over local K x bucket K'. K=0 keeps every
  // checkpoint local (no demotion, zero faults); K>0 demotes all but the
  // newest K epochs to the bucket, so replay restores fault back in over
  // the modeled S3 link. K'>0 additionally prunes the manifest to the
  // newest K' epochs, shrinking both tiers at the price of fewer restore
  // boundaries (more re-execution).
  const Case frontier_case = cases.front();
  auto frontier_profile_or = workloads::WorkloadByName(frontier_case.name);
  FLOR_CHECK(frontier_profile_or.ok());
  const auto& frontier_profile = *frontier_profile_or;

  std::vector<int64_t> local_ks = {0, 1, 2};
  const std::vector<int64_t> bucket_ks = {0, 4};
  if (bench::SmokeMode()) local_ks = {0, 1};

  std::printf("\nTiered retention frontier (%s-%d, bucket fall-through, "
              "rehydration off):\n\n", frontier_case.name,
              frontier_case.machines);
  std::printf("%4s %4s %10s %10s %10s %12s %7s %10s\n", "K", "K'", "local",
              "bucket", "S3/mo", "latency", "faults", "cost");
  bench::Hr();

  std::string baseline_logs;  // merged logs of the K=0, K'=0 point
  double baseline_latency = 0;
  for (int64_t local_k : local_ks) {
    for (int64_t bucket_k : bucket_ks) {
      MemFileSystem fs;
      Env env(std::make_unique<SimClock>(), &fs);
      auto instance = workloads::MakeWorkloadFactory(
          frontier_profile, workloads::kProbeNone)();
      FLOR_CHECK(instance.ok()) << instance.status().ToString();
      RecordOptions opts =
          workloads::DefaultRecordOptions(frontier_profile, "run");
      opts.spool_prefix = "s3";     // bucket mirror, spooled as materialized
      opts.gc.keep_last_k = local_k;  // end-of-run demotion
      RecordSession session(&env, opts);
      exec::Frame frame;
      auto recorded = session.Run(instance->program.get(), &frame);
      FLOR_CHECK(recorded.ok()) << recorded.status().ToString();

      if (bucket_k > 0) {
        BucketGcPolicy bpolicy;
        bpolicy.keep_last_k = bucket_k;
        auto pruned = RetireBucketRun(&fs, "run/manifest.tsv", "run/ckpt",
                                      "s3", bpolicy);
        FLOR_CHECK(pruned.ok()) << pruned.status().ToString();
        FLOR_CHECK(pruned->ok());
      }

      // Tier footprints at paper scale: nominal per-checkpoint size x
      // objects held, the same convention as the Table 4 bench (the tiny
      // test-model snapshots themselves are a few KB).
      const uint64_t nominal = frontier_profile.NominalStoredBytes();
      const uint64_t local_bytes =
          nominal * fs.ListPrefix("run/ckpt/").size();
      const uint64_t bucket_bytes =
          nominal * fs.ListPrefix("s3/run/ckpt/").size();
      const double s3_monthly = S3MonthlyCost(bucket_bytes);

      sim::ClusterReplayOptions copts;
      copts.run_prefix = "run";
      copts.cluster.num_machines = frontier_case.machines;
      copts.cluster.instance = sim::kP3_8xLarge;
      copts.init_mode = InitMode::kWeak;
      copts.costs = sim::PaperPlatformCosts();
      copts.bucket_prefix = "s3";
      copts.bucket_rehydrate = false;  // every bucket restore stays visible
      auto replay = sim::ClusterReplay(
          workloads::MakeWorkloadFactory(frontier_profile,
                                         workloads::kProbeInner),
          &fs, copts);
      FLOR_CHECK(replay.ok()) << replay.status().ToString();
      FLOR_CHECK(replay->deferred.ok);

      // Retention must never change what hindsight replay computes: every
      // point's merged logs are byte-identical to the unretired baseline.
      const std::string logs = replay->merged_logs.Serialize();
      if (local_k == 0 && bucket_k == 0) {
        baseline_logs = logs;
        baseline_latency = replay->latency_seconds;
      }
      FLOR_CHECK(logs == baseline_logs);

      if (local_k == 0) {
        // Nothing was demoted; surviving records all have local copies.
        FLOR_CHECK(replay->bucket_faults == 0);
      } else if (bucket_k == 0) {
        // Dense manifest, local tier pruned to K epochs: restores below
        // the local horizon must fault in from the bucket.
        FLOR_CHECK(replay->bucket_faults > 0);
      }
      if (replay->bucket_faults > 0) {
        // Faulted restores are charged at the S3 read link; the frontier
        // never beats the all-local baseline on latency.
        FLOR_CHECK(replay->latency_seconds >= baseline_latency - 1e-9);
      }

      std::printf("%4lld %4lld %10s %10s %10s %12s %7lld %10s\n",
                  static_cast<long long>(local_k),
                  static_cast<long long>(bucket_k),
                  HumanBytes(local_bytes).c_str(),
                  HumanBytes(bucket_bytes).c_str(),
                  HumanDollars(s3_monthly).c_str(),
                  HumanSeconds(replay->latency_seconds).c_str(),
                  static_cast<long long>(replay->bucket_faults),
                  HumanDollars(replay->total_cost_dollars).c_str());
      json.Row()
          .Field("stage", "tiered_frontier")
          .Field("workload", frontier_case.name)
          .Field("machines", frontier_case.machines)
          .Field("local_keep_k", local_k)
          .Field("bucket_keep_k", bucket_k)
          .Field("local_bytes", static_cast<int64_t>(local_bytes))
          .Field("bucket_bytes", static_cast<int64_t>(bucket_bytes))
          .Field("s3_monthly_cost_dollars", s3_monthly)
          .Field("bucket_faults", replay->bucket_faults)
          .Field("latency_seconds", replay->latency_seconds)
          .Field("cluster_cost_dollars", replay->total_cost_dollars);
    }
  }
  bench::Hr();
  std::printf("Demotion (K) trades local disk for replay latency at equal "
              "durability; bucket\nretirement (K') caps the S3 bill at the "
              "price of fewer restore boundaries.\nMerged replay logs stay "
              "byte-identical at every point.\n");
  return 0;
}
