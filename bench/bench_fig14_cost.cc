// Figure 14 — cost comparison for performing the same amount of work
// serially vs. in parallel.
//
// Serial: one P3.2xLarge (1 GPU) runs the full re-execution. Parallel: N
// P3.8xLarge machines (4 GPUs each) run the partitioned replay. "Parallel
// executions take less time but run on more expensive hardware"; because
// Flor's parallelism is nearly ideal, the dollar costs come out almost
// equal while wall-clock time drops ~Nx.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace flor;

  std::printf("Figure 14: Cost of the same work, serial (P3.2xLarge) vs "
              "parallel (N x P3.8xLarge).\n\n");
  std::printf("%-10s %12s %10s %12s %10s %8s\n", "Workload", "serial",
              "cost", "parallel", "cost", "ratio");
  bench::Hr();

  // The paper's figure uses the long-running training workloads; machine
  // count is hyphenated on the x-axis labels.
  struct Case {
    const char* name;
    int machines;
  };
  std::vector<Case> cases = {{"RsNt", 4}, {"Wiki", 3}, {"ImgN", 2},
                             {"RnnT", 2}};
  if (bench::SmokeMode()) cases.resize(1);

  for (const auto& c : cases) {
    auto profile_or = workloads::WorkloadByName(c.name);
    FLOR_CHECK(profile_or.ok());
    const auto& profile = *profile_or;

    MemFileSystem fs;
    bench::RunRecord(&fs, profile, "run");
    const double vanilla =
        bench::RunVanilla(&fs, profile, workloads::kProbeInner);
    const double serial_cost = sim::InstanceCost(sim::kP3_2xLarge, vanilla);

    sim::ClusterReplayOptions copts;
    copts.run_prefix = "run";
    copts.cluster.num_machines = c.machines;
    copts.cluster.instance = sim::kP3_8xLarge;
    copts.init_mode = InitMode::kWeak;
    copts.costs = sim::PaperPlatformCosts();
    auto result = sim::ClusterReplay(
        workloads::MakeWorkloadFactory(profile, workloads::kProbeInner), &fs,
        copts);
    FLOR_CHECK(result.ok()) << result.status().ToString();
    FLOR_CHECK(result->deferred.ok);

    std::printf("%-6s-%-3d %12s %10s %12s %10s %7.2fx\n", c.name,
                c.machines, HumanSeconds(vanilla).c_str(),
                HumanDollars(serial_cost).c_str(),
                HumanSeconds(result->latency_seconds).c_str(),
                HumanDollars(result->total_cost_dollars).c_str(),
                result->total_cost_dollars / serial_cost);
  }
  bench::Hr();
  std::printf("Paper shape: parallel replay costs about the same as serial "
              "(near-ideal\nparallelism) while cutting wall-clock time by "
              "roughly the worker count; the\nmarginal cost of parallelism "
              "stays under a few dollars.\n");
  return 0;
}
