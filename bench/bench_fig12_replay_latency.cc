// Figure 12 — replay latency, factored by the position of the hindsight
// logging statements.
//
// Top: the developer probes only the outer main loop. Partial replay skips
// every memoized training loop; combined with parallelism this gives
// latencies in minutes even for multi-hour jobs (paper: 7x to 1123x, the
// bigger wins on the longer experiments).
//
// Bottom: the developer probes the inner training loop, so a full
// re-execution is needed; speedups come from hindsight parallelism alone.
// "Each workload uses as many machines, from a pool of four machines, as
// will result in parallelism gains."

#include <cstdio>

#include "bench_util.h"

namespace {

using namespace flor;

/// Cluster replay with as many machines (from a pool of 4) as keep helping.
sim::ClusterReplayResult BestOverPool(const ProgramFactory& factory,
                                      MemFileSystem* fs, int* machines_used) {
  sim::ClusterReplayResult best;
  bool first = true;
  for (int machines = 1; machines <= 4; ++machines) {
    sim::ClusterReplayOptions copts;
    copts.run_prefix = "run";
    copts.cluster.num_machines = machines;
    copts.cluster.instance = sim::kP3_8xLarge;
    // Weak initialization: strong init would re-run every preceding
    // epoch's unskippable statements per worker, erasing the gains of
    // partial replay (the paper's scale-out runs use weak init, Fig. 13).
    copts.init_mode = InitMode::kWeak;
    copts.costs = sim::PaperPlatformCosts();
    auto result = sim::ClusterReplay(factory, fs, copts);
    FLOR_CHECK(result.ok()) << result.status().ToString();
    FLOR_CHECK(result->deferred.ok);
    if (first || result->latency_seconds < best.latency_seconds * 0.98) {
      best = std::move(result).value();
      *machines_used = machines;
      first = false;
    } else {
      break;  // no further parallelism gains
    }
  }
  return best;
}

void RunCase(uint32_t probes, const char* title) {
  using bench::Pct;
  std::printf("%s\n", title);
  std::printf("%-5s %12s %12s %9s %9s\n", "Name", "vanilla", "replay",
              "speedup", "machines");
  bench::Hr();
  for (const auto& profile : bench::BenchWorkloads()) {
    MemFileSystem fs;
    bench::RunRecord(&fs, profile, "run");
    const double vanilla = bench::RunVanilla(&fs, profile, probes);
    auto factory = workloads::MakeWorkloadFactory(profile, probes);
    int machines = 1;
    auto result = BestOverPool(factory, &fs, &machines);
    std::printf("%-5s %12s %12s %8.0fx %9d\n", profile.name.c_str(),
                HumanSeconds(vanilla).c_str(),
                HumanSeconds(result.latency_seconds).c_str(),
                vanilla / result.latency_seconds, machines);
  }
  bench::Hr();
}

}  // namespace

int main() {
  std::printf("Figure 12: Replay latency, factored by probe position.\n\n");
  RunCase(flor::workloads::kProbeOuter,
          "Top: outer-loop probe (partial + parallel replay)");
  std::printf("\n");
  RunCase(flor::workloads::kProbeInner,
          "Bottom: inner-loop probe (parallel-only replay, full "
          "re-execution)");
  std::printf(
      "\nPaper shape: outer-loop probes get order-of-magnitude-plus "
      "speedups, largest\nfor the longest experiments; inner-loop probes "
      "are bounded by parallelism\n(and by partition count for RTE/CoLA)."
      "\n");
  return 0;
}
