// Shared helpers for the figure/table reproduction harnesses.

#ifndef FLOR_BENCH_BENCH_UTIL_H_
#define FLOR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.h"
#include "flor/record.h"
#include "flor/replay.h"
#include "sim/cost_model.h"
#include "sim/parallel_replay.h"
#include "workloads/profiles.h"
#include "workloads/programs.h"

namespace flor {
namespace bench {

/// True when BENCH_SMOKE is set (to anything but "" or "0") in the
/// environment: benches shrink to a compile-and-run check so CI's
/// `bench_smoke` ctest label stays cheap.
inline bool SmokeMode() {
  static const bool smoke = [] {
    const char* v = std::getenv("BENCH_SMOKE");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
  }();
  return smoke;
}

/// Iteration/trial count: `full` normally, `smoke` under BENCH_SMOKE=1.
inline int SmokeIters(int full, int smoke = 1) {
  return SmokeMode() ? smoke : full;
}

/// The workloads a bench should sweep: the paper's full Table-3 set
/// normally, just the first profile under BENCH_SMOKE=1.
inline std::vector<workloads::WorkloadProfile> BenchWorkloads() {
  std::vector<workloads::WorkloadProfile> all = workloads::AllWorkloads();
  if (SmokeMode() && all.size() > 1) all.resize(1);
  return all;
}

/// Vanilla (no-Flor) simulated run of a workload program; returns runtime.
inline double RunVanilla(FileSystem* fs,
                         const workloads::WorkloadProfile& profile,
                         uint32_t probes) {
  Env env(std::make_unique<SimClock>(), fs);
  auto instance = workloads::MakeWorkloadFactory(profile, probes)();
  FLOR_CHECK(instance.ok()) << instance.status().ToString();
  exec::Frame frame;
  auto result = VanillaRun(&env, instance->program.get(), &frame);
  FLOR_CHECK(result.ok()) << result.status().ToString();
  return result->runtime_seconds;
}

/// Flor record of a workload into `fs` under `run_prefix`.
inline RecordResult RunRecord(FileSystem* fs,
                              const workloads::WorkloadProfile& profile,
                              const std::string& run_prefix,
                              bool adaptive_enabled = true,
                              MaterializeStrategy strategy =
                                  MaterializeStrategy::kFork) {
  Env env(std::make_unique<SimClock>(), fs);
  auto instance =
      workloads::MakeWorkloadFactory(profile, workloads::kProbeNone)();
  FLOR_CHECK(instance.ok()) << instance.status().ToString();
  RecordOptions opts = workloads::DefaultRecordOptions(profile, run_prefix);
  opts.adaptive.enabled = adaptive_enabled;
  opts.materializer.strategy = strategy;
  RecordSession session(&env, opts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  FLOR_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Fraction formatter ("8.3%").
inline std::string Pct(double fraction) {
  return StrFormat("%.2f%%", fraction * 100.0);
}

inline void Hr() {
  std::printf(
      "--------------------------------------------------------------------"
      "----------\n");
}

}  // namespace bench
}  // namespace flor

#endif  // FLOR_BENCH_BENCH_UTIL_H_
