// Shared helpers for the figure/table reproduction harnesses.

#ifndef FLOR_BENCH_BENCH_UTIL_H_
#define FLOR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/strings.h"
#include "flor/record.h"
#include "flor/replay.h"
#include "sim/cost_model.h"
#include "sim/parallel_replay.h"
#include "workloads/profiles.h"
#include "workloads/programs.h"

namespace flor {
namespace bench {

/// True when BENCH_SMOKE is set (to anything but "" or "0") in the
/// environment: benches shrink to a compile-and-run check so CI's
/// `bench_smoke` ctest label stays cheap.
inline bool SmokeMode() {
  static const bool smoke = [] {
    const char* v = std::getenv("BENCH_SMOKE");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
  }();
  return smoke;
}

/// Iteration/trial count: `full` normally, `smoke` under BENCH_SMOKE=1.
inline int SmokeIters(int full, int smoke = 1) {
  return SmokeMode() ? smoke : full;
}

/// Machine-readable result capture: when BENCH_JSON=<path> is set in the
/// environment, every Row()/Field() call is accumulated and written to
/// <path> on destruction as {"bench": ..., "rows": [...]}; otherwise the
/// whole object is a no-op. Lets perf PRs diff measured numbers instead of
/// copy-pasting terminal tables (see README "Benchmark JSON capture").
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name)
      : bench_name_(std::move(bench_name)) {
    const char* path = std::getenv("BENCH_JSON");
    if (path != nullptr && path[0] != '\0') path_ = path;
  }

  ~BenchJson() {
    if (path_.empty()) return;
    std::string out = StrCat("{\"bench\": \"", bench_name_, "\",\n");
    out += StrCat(" \"smoke\": ", SmokeMode() ? "true" : "false",
                  ",\n \"rows\": [\n");
    for (size_t i = 0; i < rows_.size(); ++i) {
      out += "  {" + rows_[i] + "}";
      out += i + 1 < rows_.size() ? ",\n" : "\n";
    }
    out += " ]\n}\n";
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BENCH_JSON: cannot open %s\n", path_.c_str());
      return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
  }

  /// Starts a new result row.
  BenchJson& Row() {
    rows_.emplace_back();
    return *this;
  }

  BenchJson& Field(const char* key, const std::string& v) {
    return Raw(key, StrCat("\"", Escaped(v), "\""));
  }
  BenchJson& Field(const char* key, const char* v) {
    return Field(key, std::string(v));
  }
  BenchJson& Field(const char* key, double v) {
    return Raw(key, StrFormat("%.9g", v));
  }
  BenchJson& Field(const char* key, int64_t v) {
    return Raw(key, StrCat(v));
  }
  BenchJson& Field(const char* key, int v) {
    return Field(key, static_cast<int64_t>(v));
  }
  BenchJson& Field(const char* key, bool v) {
    return Raw(key, v ? "true" : "false");
  }

 private:
  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  BenchJson& Raw(const char* key, std::string value) {
    if (path_.empty()) return *this;
    std::string& row = rows_.back();
    if (!row.empty()) row += ", ";
    row += StrCat("\"", key, "\": ", value);
    return *this;
  }

  std::string bench_name_;
  std::string path_;
  std::vector<std::string> rows_;
};

/// The workloads a bench should sweep: the paper's full Table-3 set
/// normally, just the first profile under BENCH_SMOKE=1.
inline std::vector<workloads::WorkloadProfile> BenchWorkloads() {
  std::vector<workloads::WorkloadProfile> all = workloads::AllWorkloads();
  if (SmokeMode() && all.size() > 1) all.resize(1);
  return all;
}

/// The standard workload for the *real* (wall-clock) replay engine: dense
/// checkpoints so the main loop partitions anywhere, and a per-batch
/// blocking device cost (WorkloadProfile::wall_batch_seconds) so measured
/// parallel speedup reflects the paper's GPU-bound overlap rather than how
/// fast this host multiplies tiny matrices. Epoch count divides evenly by
/// 4 so the 4-thread curve is not load-balance-capped.
inline workloads::WorkloadProfile ExecutorWorkload() {
  workloads::WorkloadProfile p;
  p.name = "Exec";
  p.benchmark = "real-engine";
  p.task = "classification";
  p.model = "MLP";
  p.dataset = "synthetic";
  p.epochs = SmokeMode() ? 8 : 16;
  p.sim_epoch_seconds = 100;  // cheap ckpts vs epoch cost -> dense
  p.sim_outer_seconds = 2;
  p.sim_preamble_seconds = 5;
  p.sim_ckpt_raw_bytes = 1 << 20;
  p.wall_batch_seconds = SmokeMode() ? 0.002 : 0.010;
  p.ckpt_shards = 4;  // real-engine workers read from a sharded store
  p.task_kind = data::Task::kVision;
  p.real_samples = 128;
  p.real_batch = 16;  // 8 batches/epoch
  p.real_feature_dim = 24;
  p.real_classes = 4;
  p.real_hidden = 24;
  p.seed = 4031;
  return p;
}

/// Vanilla (no-Flor) simulated run of a workload program; returns runtime.
inline double RunVanilla(FileSystem* fs,
                         const workloads::WorkloadProfile& profile,
                         uint32_t probes) {
  Env env(std::make_unique<SimClock>(), fs);
  auto instance = workloads::MakeWorkloadFactory(profile, probes)();
  FLOR_CHECK(instance.ok()) << instance.status().ToString();
  exec::Frame frame;
  auto result = VanillaRun(&env, instance->program.get(), &frame);
  FLOR_CHECK(result.ok()) << result.status().ToString();
  return result->runtime_seconds;
}

/// Flor record of a workload into `fs` under `run_prefix`.
inline RecordResult RunRecord(FileSystem* fs,
                              const workloads::WorkloadProfile& profile,
                              const std::string& run_prefix,
                              bool adaptive_enabled = true,
                              MaterializeStrategy strategy =
                                  MaterializeStrategy::kFork) {
  Env env(std::make_unique<SimClock>(), fs);
  auto instance =
      workloads::MakeWorkloadFactory(profile, workloads::kProbeNone)();
  FLOR_CHECK(instance.ok()) << instance.status().ToString();
  RecordOptions opts = workloads::DefaultRecordOptions(profile, run_prefix);
  opts.adaptive.enabled = adaptive_enabled;
  opts.materializer.strategy = strategy;
  RecordSession session(&env, opts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  FLOR_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Fraction formatter ("8.3%").
inline std::string Pct(double fraction) {
  return StrFormat("%.2f%%", fraction * 100.0);
}

inline void Hr() {
  std::printf(
      "--------------------------------------------------------------------"
      "----------\n");
}

}  // namespace bench
}  // namespace flor

#endif  // FLOR_BENCH_BENCH_UTIL_H_
