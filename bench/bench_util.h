// Shared helpers for the figure/table reproduction harnesses.

#ifndef FLOR_BENCH_BENCH_UTIL_H_
#define FLOR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "common/strings.h"
#include "flor/record.h"
#include "flor/replay.h"
#include "sim/cost_model.h"
#include "sim/parallel_replay.h"
#include "workloads/programs.h"

namespace flor {
namespace bench {

/// Vanilla (no-Flor) simulated run of a workload program; returns runtime.
inline double RunVanilla(FileSystem* fs,
                         const workloads::WorkloadProfile& profile,
                         uint32_t probes) {
  Env env(std::make_unique<SimClock>(), fs);
  auto instance = workloads::MakeWorkloadFactory(profile, probes)();
  FLOR_CHECK(instance.ok()) << instance.status().ToString();
  exec::Frame frame;
  auto result = VanillaRun(&env, instance->program.get(), &frame);
  FLOR_CHECK(result.ok()) << result.status().ToString();
  return result->runtime_seconds;
}

/// Flor record of a workload into `fs` under `run_prefix`.
inline RecordResult RunRecord(FileSystem* fs,
                              const workloads::WorkloadProfile& profile,
                              const std::string& run_prefix,
                              bool adaptive_enabled = true,
                              MaterializeStrategy strategy =
                                  MaterializeStrategy::kFork) {
  Env env(std::make_unique<SimClock>(), fs);
  auto instance =
      workloads::MakeWorkloadFactory(profile, workloads::kProbeNone)();
  FLOR_CHECK(instance.ok()) << instance.status().ToString();
  RecordOptions opts = workloads::DefaultRecordOptions(profile, run_prefix);
  opts.adaptive.enabled = adaptive_enabled;
  opts.materializer.strategy = strategy;
  RecordSession session(&env, opts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  FLOR_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Fraction formatter ("8.3%").
inline std::string Pct(double fraction) {
  return StrFormat("%.2f%%", fraction * 100.0);
}

inline void Hr() {
  std::printf(
      "--------------------------------------------------------------------"
      "----------\n");
}

}  // namespace bench
}  // namespace flor

#endif  // FLOR_BENCH_BENCH_UTIL_H_
