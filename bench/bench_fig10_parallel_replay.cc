// Figure 10 — parallel replay time of entire model training jobs, as a
// fraction of a vanilla re-execution, on 4 GPUs (one P3.8xLarge), for weak
// and strong initialization.
//
// The hindsight probe sits in the inner training loop, so nothing can be
// skipped: this measures pure hindsight parallelism. Expected shape: the
// densely checkpointed workloads approach the ideal 1/4 line; RTE & CoLA
// are limited by their sparse (adaptive) checkpoints to a handful of
// partitions, so 4 GPUs can at best reach (max segment / epochs) of vanilla
// time (paper: 2/6 = 33%).
//
// Two engines run:
//   * simulated (sim::ClusterReplay) — paper-scale latencies on per-worker
//     simulated clocks;
//   * real (exec::ReplayExecutor) — the same partition plan on an actual
//     thread pool, measured with the wall clock, 4 partitions at 1/2/4
//     threads. The merged multi-thread log is verified byte-identical to
//     the 1-thread log on every run;
//   * proc (exec::ProcessReplayExecutor) — the same plan again, one forked
//     worker process per partition (the paper's per-GPU deployment shape),
//     same wall_batch_seconds device-time model, merged log verified
//     byte-identical to the thread engine.
//
// Set BENCH_JSON=<path> to capture all sections as JSON rows.

#include <cstdio>

#include "bench_util.h"
#include "exec/process_executor.h"
#include "exec/replay_executor.h"

int main() {
  using namespace flor;
  using bench::Pct;

  bench::BenchJson json("fig10_parallel_replay");

  std::printf("Figure 10: Parallel replay time as fraction of a vanilla "
              "re-execution (4 GPUs).\n\n");
  std::printf("-- simulated engine (per-worker simulated clocks) --\n");
  std::printf("%-5s %12s %12s %10s %10s %6s\n", "Name", "vanilla",
              "weak", "strong", "fraction", "parts");
  bench::Hr();

  for (const auto& profile : bench::BenchWorkloads()) {
    MemFileSystem fs;
    bench::RunRecord(&fs, profile, "run");
    // Vanilla re-execution performs the same work and logs the same amount
    // of data (i.e. runs the probed program), without Flor speedups.
    const double vanilla =
        bench::RunVanilla(&fs, profile, workloads::kProbeInner);

    auto factory =
        workloads::MakeWorkloadFactory(profile, workloads::kProbeInner);

    double latencies[2] = {0, 0};
    int64_t segments = 0;
    InitMode effective[2] = {InitMode::kWeak, InitMode::kStrong};
    for (int m = 0; m < 2; ++m) {
      sim::ClusterReplayOptions copts;
      copts.run_prefix = "run";
      copts.cluster.num_machines = 1;
      copts.cluster.instance = sim::kP3_8xLarge;
      copts.init_mode = m == 0 ? InitMode::kWeak : InitMode::kStrong;
      copts.costs = sim::PaperPlatformCosts();
      auto result = sim::ClusterReplay(factory, &fs, copts);
      FLOR_CHECK(result.ok()) << result.status().ToString();
      FLOR_CHECK(result->deferred.ok)
          << profile.name << ": "
          << (result->deferred.anomalies.empty()
                  ? ""
                  : result->deferred.anomalies[0]);
      latencies[m] = result->latency_seconds;
      segments = result->partition_segments;
      effective[m] = result->effective_init;
    }

    std::printf("%-5s %12s %12s %10s %10s %6lld%s\n", profile.name.c_str(),
                HumanSeconds(vanilla).c_str(),
                HumanSeconds(latencies[0]).c_str(),
                HumanSeconds(latencies[1]).c_str(),
                Pct(latencies[0] / vanilla).c_str(),
                static_cast<long long>(segments),
                effective[1] == InitMode::kWeak ? " (weak-only)" : "");
    json.Row()
        .Field("engine", "sim")
        .Field("workload", profile.name)
        .Field("vanilla_seconds", vanilla)
        .Field("weak_seconds", latencies[0])
        .Field("strong_seconds", latencies[1])
        .Field("fraction_of_vanilla", latencies[0] / vanilla)
        .Field("partition_segments", segments)
        .Field("strong_fell_back_to_weak",
               effective[1] == InitMode::kWeak);
  }
  bench::Hr();
  std::printf("ideal on 4 GPUs: 25.00%%. Paper shape: dense workloads "
              "near-ideal; RTE/CoLA\nlimited by their few checkpoint "
              "partitions (paper: 2/6 = 33%%); weak vs strong\n"
              "difference negligible.\n");

  // ------------------------------------------------------- real engine --
  const workloads::WorkloadProfile real_profile = bench::ExecutorWorkload();
  MemFileSystem real_fs;
  bench::RunRecord(&real_fs, real_profile, "run");
  auto real_factory =
      workloads::MakeWorkloadFactory(real_profile, workloads::kProbeInner);

  std::printf("\n-- real engine (thread pool, wall clock; workload %s, "
              "%lld epochs, G=4 partitions) --\n", real_profile.name.c_str(),
              static_cast<long long>(real_profile.epochs));
  std::printf("%8s %12s %9s %9s %7s\n", "threads", "wall", "speedup",
              "ideal", "steals");
  bench::Hr();

  std::string single_thread_logs;
  double single_thread_wall = 0;
  double speedup_at_4 = 0;
  for (int threads : {1, 2, 4}) {
    exec::ReplayExecutorOptions xopts;
    xopts.run_prefix = "run";
    xopts.num_threads = threads;
    xopts.num_partitions = 4;  // the paper's 4 GPUs
    xopts.init_mode = InitMode::kWeak;
    xopts.costs = sim::PaperPlatformCosts();
    exec::ReplayExecutor executor(&real_fs, xopts);
    auto result = executor.Run(real_factory);
    FLOR_CHECK(result.ok()) << result.status().ToString();
    FLOR_CHECK(result->deferred.ok)
        << (result->deferred.anomalies.empty()
                ? ""
                : result->deferred.anomalies[0]);

    const std::string merged = result->merged_logs.Serialize();
    if (threads == 1) {
      single_thread_logs = merged;
      single_thread_wall = result->wall_seconds;
    } else {
      FLOR_CHECK(merged == single_thread_logs)
          << "merged logs diverge from 1-thread replay at " << threads
          << " threads";
    }
    const double speedup = single_thread_wall / result->wall_seconds;
    if (threads == 4) speedup_at_4 = speedup;
    std::printf("%8d %12s %8.2fx %8.2fx %7lld\n", threads,
                HumanSeconds(result->wall_seconds).c_str(), speedup,
                static_cast<double>(threads),
                static_cast<long long>(result->steals));
    json.Row()
        .Field("engine", "real")
        .Field("workload", real_profile.name)
        .Field("threads", threads)
        .Field("partitions", 4)
        .Field("wall_seconds", result->wall_seconds)
        .Field("latency_seconds", result->latency_seconds)
        .Field("speedup_vs_1_thread", speedup)
        .Field("steals", result->steals)
        .Field("merged_logs_match_single_thread",
               threads == 1 || merged == single_thread_logs);
  }
  bench::Hr();
  std::printf("real 4-thread speedup: %.2fx (workers block on modeled "
              "device time, so the\ncurve tracks the paper's GPU-bound "
              "overlap even on few host cores).\n", speedup_at_4);

  // ---------------------------------------------------- process engine --
  std::printf("\n-- process engine (fork per partition, wall clock; same "
              "workload and device-time model) --\n");
  std::printf("%8s %12s %9s %9s\n", "procs", "wall", "speedup", "ideal");
  bench::Hr();

  double one_proc_wall = 0;
  double proc_speedup_at_4 = 0;
  for (int procs : {1, 2, 4}) {
    exec::ProcessReplayExecutorOptions popts;
    popts.run_prefix = "run";
    popts.num_partitions = procs;
    // One pool slot per partition, as on a cluster with one node per
    // modeled GPU: the scheduler must not serialize device-bound
    // partitions behind this host's core count.
    popts.max_concurrent_children = procs;
    popts.init_mode = InitMode::kWeak;
    popts.costs = sim::PaperPlatformCosts();
    exec::ProcessReplayExecutor executor(&real_fs, popts);
    auto result = executor.Run(real_factory);
    FLOR_CHECK(result.ok()) << result.status().ToString();
    FLOR_CHECK(result->deferred.ok)
        << (result->deferred.anomalies.empty()
                ? ""
                : result->deferred.anomalies[0]);

    // Merging is partition-count invariant, so every process row must
    // reproduce the thread engine's merged bytes exactly.
    const std::string merged = result->merged_logs.Serialize();
    FLOR_CHECK(merged == single_thread_logs)
        << "process engine diverges from thread engine at " << procs
        << " processes";

    if (procs == 1) one_proc_wall = result->wall_seconds;
    const double speedup = one_proc_wall / result->wall_seconds;
    if (procs == 4) proc_speedup_at_4 = speedup;
    std::printf("%8d %12s %8.2fx %8.2fx\n", procs,
                HumanSeconds(result->wall_seconds).c_str(), speedup,
                static_cast<double>(procs));
    json.Row()
        .Field("engine", "proc")
        .Field("workload", real_profile.name)
        .Field("processes", procs)
        .Field("partitions", procs)
        .Field("wall_seconds", result->wall_seconds)
        .Field("latency_seconds", result->latency_seconds)
        .Field("speedup_vs_1_process", speedup)
        .Field("merged_logs_match_thread_engine", true);
  }
  bench::Hr();
  std::printf("proc 4-process speedup: %.2fx (true address-space isolation;"
              " workers still\nblock on the same modeled device time, so "
              "the curve matches the thread engine).\n", proc_speedup_at_4);
  return 0;
}
