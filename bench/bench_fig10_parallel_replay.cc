// Figure 10 — parallel replay time of entire model training jobs, as a
// fraction of a vanilla re-execution, on 4 GPUs (one P3.8xLarge), for weak
// and strong initialization.
//
// The hindsight probe sits in the inner training loop, so nothing can be
// skipped: this measures pure hindsight parallelism. Expected shape: the
// densely checkpointed workloads approach the ideal 1/4 line; RTE & CoLA
// are limited by their sparse (adaptive) checkpoints to a handful of
// partitions, so 4 GPUs can at best reach (max segment / epochs) of vanilla
// time (paper: 2/6 = 33%).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace flor;
  using bench::Pct;

  std::printf("Figure 10: Parallel replay time as fraction of a vanilla "
              "re-execution (4 GPUs).\n\n");
  std::printf("%-5s %12s %12s %10s %10s %6s\n", "Name", "vanilla",
              "weak", "strong", "fraction", "parts");
  bench::Hr();

  for (const auto& profile : bench::BenchWorkloads()) {
    MemFileSystem fs;
    bench::RunRecord(&fs, profile, "run");
    // Vanilla re-execution performs the same work and logs the same amount
    // of data (i.e. runs the probed program), without Flor speedups.
    const double vanilla =
        bench::RunVanilla(&fs, profile, workloads::kProbeInner);

    auto factory =
        workloads::MakeWorkloadFactory(profile, workloads::kProbeInner);

    double latencies[2] = {0, 0};
    int64_t segments = 0;
    InitMode effective[2] = {InitMode::kWeak, InitMode::kStrong};
    for (int m = 0; m < 2; ++m) {
      sim::ClusterReplayOptions copts;
      copts.run_prefix = "run";
      copts.cluster.num_machines = 1;
      copts.cluster.instance = sim::kP3_8xLarge;
      copts.init_mode = m == 0 ? InitMode::kWeak : InitMode::kStrong;
      copts.costs = sim::PaperPlatformCosts();
      auto result = sim::ClusterReplay(factory, &fs, copts);
      FLOR_CHECK(result.ok()) << result.status().ToString();
      FLOR_CHECK(result->deferred.ok)
          << profile.name << ": "
          << (result->deferred.anomalies.empty()
                  ? ""
                  : result->deferred.anomalies[0]);
      latencies[m] = result->latency_seconds;
      segments = result->partition_segments;
      effective[m] = result->effective_init;
    }

    std::printf("%-5s %12s %12s %10s %10s %6lld%s\n", profile.name.c_str(),
                HumanSeconds(vanilla).c_str(),
                HumanSeconds(latencies[0]).c_str(),
                HumanSeconds(latencies[1]).c_str(),
                Pct(latencies[0] / vanilla).c_str(),
                static_cast<long long>(segments),
                effective[1] == InitMode::kWeak ? " (weak-only)" : "");
  }
  bench::Hr();
  std::printf("ideal on 4 GPUs: 25.00%%. Paper shape: dense workloads "
              "near-ideal; RTE/CoLA\nlimited by their few checkpoint "
              "partitions (paper: 2/6 = 33%%); weak vs strong\n"
              "difference negligible.\n");
  return 0;
}
