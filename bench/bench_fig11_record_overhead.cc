// Figure 11 — comparison of model training time with and without
// checkpointing, in hours. The text label over each pair of bars is the
// overhead added by Flor record as a fraction of a vanilla execution.
// Paper: average overhead 1.47%, no workload exceeding the 6.67% tolerance.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace flor;
  using bench::Pct;

  std::printf("Figure 11: Model training time with and without "
              "checkpointing.\n\n");
  std::printf("%-5s %14s %14s %10s\n", "Name", "vanilla", "Flor record",
              "overhead");
  bench::Hr();

  double overhead_sum = 0;
  int count = 0;
  for (const auto& profile : bench::BenchWorkloads()) {
    MemFileSystem fs;
    const double vanilla =
        bench::RunVanilla(&fs, profile, workloads::kProbeNone);
    RecordResult rec = bench::RunRecord(&fs, profile, "run");
    const double overhead = rec.runtime_seconds / vanilla - 1.0;
    overhead_sum += overhead;
    ++count;
    std::printf("%-5s %14s %14s %10s\n", profile.name.c_str(),
                HumanSeconds(vanilla).c_str(),
                HumanSeconds(rec.runtime_seconds).c_str(),
                Pct(overhead).c_str());
  }
  bench::Hr();
  std::printf("average record overhead: %s   (paper: 1.47%%; tolerance "
              "6.67%%)\n", Pct(overhead_sum / count).c_str());
  return 0;
}
