// Figure 11 — comparison of model training time with and without
// checkpointing, in hours. The text label over each pair of bars is the
// overhead added by Flor record as a fraction of a vanilla execution.
// Paper: average overhead 1.47%, no workload exceeding the 6.67% tolerance.
//
// Three record configurations per workload:
//   * buffered       — durability notifications are free (the paper's
//                      setting: the OS page cache absorbs the sync);
//   * per_checkpoint — every checkpoint pays one durable sync
//                      (kDurableNotifySeconds), window 1: the production
//                      durability tax at its worst;
//   * group_commit   — same sync cost amortized over a
//                      kGroupCommitWindow-checkpoint slot (WiredTiger
//                      log-slot style: the leader syncs, followers
//                      piggyback).
// BENCH_JSON rows carry per-workload vanilla/record seconds, the
// overhead_fraction (gated by scripts/bench_diff.py against
// bench/baselines/BENCH_fig11.json), and the group-commit slot stats.

#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

using namespace flor;

/// Per-slot durable-notification cost for the production-durability
/// configs: a durable ack on networked storage (§6.2's spool platform
/// pays an S3 round trip per object — hundreds of ms at checkpoint sizes;
/// a local EBS fsync is an order of magnitude cheaper).
constexpr double kDurableNotifySeconds = 0.500;
constexpr int kGroupCommitWindow = 8;

struct Config {
  const char* name;
  int window;
  double notify_seconds;
};

RecordResult RunRecordConfig(FileSystem* fs,
                             const workloads::WorkloadProfile& profile,
                             const std::string& run_prefix,
                             const Config& config) {
  Env env(std::make_unique<SimClock>(), fs);
  auto instance =
      workloads::MakeWorkloadFactory(profile, workloads::kProbeNone)();
  FLOR_CHECK(instance.ok()) << instance.status().ToString();
  RecordOptions opts = workloads::DefaultRecordOptions(profile, run_prefix);
  opts.materializer.group_commit_window = config.window;
  opts.materializer.costs.durable_notify_seconds = config.notify_seconds;
  RecordSession session(&env, opts);
  exec::Frame frame;
  auto result = session.Run(instance->program.get(), &frame);
  FLOR_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace

int main() {
  using namespace flor;
  using bench::Pct;

  bench::BenchJson json("fig11_record_overhead");
  const std::vector<Config> configs = {
      {"buffered", 1, 0.0},
      {"per_checkpoint", 1, kDurableNotifySeconds},
      {"group_commit", kGroupCommitWindow, kDurableNotifySeconds},
  };

  std::printf("Figure 11: Model training time with and without "
              "checkpointing.\n");
  std::printf("(durable sync %.0f ms; group-commit window %d)\n\n",
              kDurableNotifySeconds * 1e3, kGroupCommitWindow);
  std::printf("%-5s %14s | %10s %14s %10s\n", "Name", "vanilla", "config",
              "Flor record", "overhead");
  bench::Hr();

  std::vector<double> overhead_sum(configs.size(), 0);
  int count = 0;
  for (const auto& profile : bench::BenchWorkloads()) {
    MemFileSystem vfs;
    const double vanilla =
        bench::RunVanilla(&vfs, profile, workloads::kProbeNone);
    ++count;
    for (size_t c = 0; c < configs.size(); ++c) {
      MemFileSystem fs;
      RecordResult rec = RunRecordConfig(&fs, profile, "run", configs[c]);
      const double overhead = rec.runtime_seconds / vanilla - 1.0;
      overhead_sum[c] += overhead;
      std::printf("%-5s %14s | %10s %14s %10s\n",
                  c == 0 ? profile.name.c_str() : "",
                  c == 0 ? HumanSeconds(vanilla).c_str() : "",
                  configs[c].name,
                  HumanSeconds(rec.runtime_seconds).c_str(),
                  Pct(overhead).c_str());
      json.Row()
          .Field("workload", profile.name)
          .Field("config", configs[c].name)
          .Field("group_commit_window", configs[c].window)
          .Field("vanilla_seconds", vanilla)
          .Field("record_seconds", rec.runtime_seconds)
          .Field("overhead_fraction", overhead)
          .Field("slots", rec.group_commit.slots)
          .Field("syncs", rec.group_commit.syncs)
          .Field("joins_per_slot", rec.group_commit.JoinsPerSlot());
    }
  }
  bench::Hr();
  for (size_t c = 0; c < configs.size(); ++c) {
    const double avg = overhead_sum[c] / count;
    std::printf("average record overhead [%-14s]: %s\n", configs[c].name,
                Pct(avg).c_str());
    json.Row()
        .Field("workload", "average")
        .Field("config", configs[c].name)
        .Field("group_commit_window", configs[c].window)
        .Field("overhead_fraction", avg);
  }
  std::printf("(paper: 1.47%% average; tolerance 6.67%%)\n");
  return 0;
}
