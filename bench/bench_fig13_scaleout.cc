// Figure 13 — replay time using GPUs from multiple P3.8xLarge machines, on
// experiment RsNt (chosen because it has 200 epochs to parallelize).
//
// Expected shape: near-ideal speedup as machines are added, with the gap to
// ideal explained by load balancing: 200 epochs over 16 workers means some
// worker does ceil(200/16) = 13 epochs, capping speedup at 200/13 = 15.38x.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace flor;

  auto profile_or = workloads::WorkloadByName("RsNt");
  FLOR_CHECK(profile_or.ok());
  const auto& profile = *profile_or;

  MemFileSystem fs;
  bench::RunRecord(&fs, profile, "run");
  const double vanilla =
      bench::RunVanilla(&fs, profile, workloads::kProbeInner);
  auto factory =
      workloads::MakeWorkloadFactory(profile, workloads::kProbeInner);

  std::printf("Figure 13: RsNt replay scale-out over P3.8xLarge machines "
              "(4 GPUs each).\n\n");
  std::printf("vanilla re-execution: %s\n\n",
              HumanSeconds(vanilla).c_str());
  std::printf("%9s %6s %12s %9s %9s %12s\n", "machines", "GPUs", "replay",
              "speedup", "ideal", "ceiling");
  bench::Hr();

  const int max_machines = bench::SmokeIters(4, 1);
  for (int machines = 1; machines <= max_machines; ++machines) {
    sim::ClusterReplayOptions copts;
    copts.run_prefix = "run";
    copts.cluster.num_machines = machines;
    copts.cluster.instance = sim::kP3_8xLarge;
    copts.init_mode = InitMode::kWeak;  // the paper's Fig. 13 uses weak
    copts.costs = sim::PaperPlatformCosts();
    auto result = sim::ClusterReplay(factory, &fs, copts);
    FLOR_CHECK(result.ok()) << result.status().ToString();
    FLOR_CHECK(result->deferred.ok);

    const int gpus = machines * 4;
    const double speedup = vanilla / result->latency_seconds;
    const double ceiling =
        static_cast<double>(profile.epochs) /
        ((profile.epochs + gpus - 1) / gpus);  // epochs / ceil(E/G)
    std::printf("%9d %6d %12s %8.2fx %8.2fx %11.2fx\n", machines, gpus,
                HumanSeconds(result->latency_seconds).c_str(), speedup,
                static_cast<double>(gpus), ceiling);
  }
  bench::Hr();
  std::printf("Paper shape: near-ideal scaling; at 16 GPUs the max "
              "achievable speedup is\n200/13 = 15.38x due to load "
              "balancing.\n");
  return 0;
}
