// Figure 13 — replay time using GPUs from multiple P3.8xLarge machines, on
// experiment RsNt (chosen because it has 200 epochs to parallelize).
//
// Expected shape: near-ideal speedup as machines are added, with the gap to
// ideal explained by load balancing: 200 epochs over 16 workers means some
// worker does ceil(200/16) = 13 epochs, capping speedup at 200/13 = 15.38x.
//
// A second section sweeps the *real* thread-pool engine over worker-thread
// counts on the standard executor workload: same partition planner, wall
// clock instead of simulated clocks. A third sweeps the process engine
// (fork per partition — the paper's per-GPU deployment) over the same
// curve, byte-checked against the thread engine. Set BENCH_JSON=<path> to
// capture all curves as JSON rows.

#include <cstdio>

#include "bench_util.h"
#include "exec/process_executor.h"
#include "exec/replay_executor.h"

int main() {
  using namespace flor;

  bench::BenchJson json("fig13_scaleout");

  auto profile_or = workloads::WorkloadByName("RsNt");
  FLOR_CHECK(profile_or.ok());
  const auto& profile = *profile_or;

  MemFileSystem fs;
  bench::RunRecord(&fs, profile, "run");
  const double vanilla =
      bench::RunVanilla(&fs, profile, workloads::kProbeInner);
  auto factory =
      workloads::MakeWorkloadFactory(profile, workloads::kProbeInner);

  std::printf("Figure 13: RsNt replay scale-out over P3.8xLarge machines "
              "(4 GPUs each).\n\n");
  std::printf("vanilla re-execution: %s\n\n",
              HumanSeconds(vanilla).c_str());
  std::printf("-- simulated engine --\n");
  std::printf("%9s %6s %12s %9s %9s %12s\n", "machines", "GPUs", "replay",
              "speedup", "ideal", "ceiling");
  bench::Hr();

  const int max_machines = bench::SmokeIters(4, 1);
  for (int machines = 1; machines <= max_machines; ++machines) {
    sim::ClusterReplayOptions copts;
    copts.run_prefix = "run";
    copts.cluster.num_machines = machines;
    copts.cluster.instance = sim::kP3_8xLarge;
    copts.init_mode = InitMode::kWeak;  // the paper's Fig. 13 uses weak
    copts.costs = sim::PaperPlatformCosts();
    auto result = sim::ClusterReplay(factory, &fs, copts);
    FLOR_CHECK(result.ok()) << result.status().ToString();
    FLOR_CHECK(result->deferred.ok);

    const int gpus = machines * 4;
    const double speedup = vanilla / result->latency_seconds;
    const double ceiling =
        static_cast<double>(profile.epochs) /
        ((profile.epochs + gpus - 1) / gpus);  // epochs / ceil(E/G)
    std::printf("%9d %6d %12s %8.2fx %8.2fx %11.2fx\n", machines, gpus,
                HumanSeconds(result->latency_seconds).c_str(), speedup,
                static_cast<double>(gpus), ceiling);
    json.Row()
        .Field("engine", "sim")
        .Field("workload", profile.name)
        .Field("machines", machines)
        .Field("gpus", gpus)
        .Field("replay_seconds", result->latency_seconds)
        .Field("speedup_vs_vanilla", speedup)
        .Field("load_balance_ceiling", ceiling);
  }
  bench::Hr();
  std::printf("Paper shape: near-ideal scaling; at 16 GPUs the max "
              "achievable speedup is\n200/13 = 15.38x due to load "
              "balancing.\n");

  // ------------------------------------------------------- real engine --
  const workloads::WorkloadProfile real_profile = bench::ExecutorWorkload();
  MemFileSystem real_fs;
  bench::RunRecord(&real_fs, real_profile, "run");
  auto real_factory =
      workloads::MakeWorkloadFactory(real_profile, workloads::kProbeInner);

  std::printf("\n-- real engine (thread pool, wall clock; workload %s, "
              "%lld epochs, one partition per thread) --\n",
              real_profile.name.c_str(),
              static_cast<long long>(real_profile.epochs));
  std::printf("%8s %6s %12s %9s %9s\n", "threads", "parts", "wall",
              "speedup", "ideal");
  bench::Hr();

  double one_thread_wall = 0;
  std::string thread_logs;
  const int max_threads = bench::SmokeIters(8, 2);
  for (int threads = 1; threads <= max_threads; threads *= 2) {
    exec::ReplayExecutorOptions xopts;
    xopts.run_prefix = "run";
    xopts.num_threads = threads;
    xopts.num_partitions = threads;  // scale-out: G grows with the pool
    xopts.init_mode = InitMode::kWeak;
    xopts.costs = sim::PaperPlatformCosts();
    exec::ReplayExecutor executor(&real_fs, xopts);
    auto result = executor.Run(real_factory);
    FLOR_CHECK(result.ok()) << result.status().ToString();
    FLOR_CHECK(result->deferred.ok);

    if (threads == 1) {
      one_thread_wall = result->wall_seconds;
      thread_logs = result->merged_logs.Serialize();
    }
    const double speedup = one_thread_wall / result->wall_seconds;
    std::printf("%8d %6d %12s %8.2fx %8.2fx\n", threads,
                result->workers_used,
                HumanSeconds(result->wall_seconds).c_str(), speedup,
                static_cast<double>(threads));
    json.Row()
        .Field("engine", "real")
        .Field("workload", real_profile.name)
        .Field("threads", threads)
        .Field("partitions", result->workers_used)
        .Field("wall_seconds", result->wall_seconds)
        .Field("speedup_vs_1_thread", speedup);
  }
  bench::Hr();
  std::printf("The real curve is the measured analog of the simulated one: "
              "same planner and\nmerge, wall-clock timing.\n");

  // ---------------------------------------------------- process engine --
  std::printf("\n-- process engine (fork per partition, wall clock; same "
              "workload) --\n");
  std::printf("%8s %6s %12s %9s %9s\n", "procs", "parts", "wall",
              "speedup", "ideal");
  bench::Hr();

  double one_proc_wall = 0;
  for (int procs = 1; procs <= max_threads; procs *= 2) {
    exec::ProcessReplayExecutorOptions popts;
    popts.run_prefix = "run";
    popts.num_partitions = procs;  // scale-out: one process per partition
    // One pool slot per partition (a cluster node per modeled GPU); the
    // elastic sweep below is where the pool shrinks under G.
    popts.max_concurrent_children = procs;
    popts.init_mode = InitMode::kWeak;
    popts.costs = sim::PaperPlatformCosts();
    exec::ProcessReplayExecutor executor(&real_fs, popts);
    auto result = executor.Run(real_factory);
    FLOR_CHECK(result.ok()) << result.status().ToString();
    FLOR_CHECK(result->deferred.ok);
    FLOR_CHECK(result->merged_logs.Serialize() == thread_logs)
        << "process engine diverges from thread engine at " << procs
        << " processes";

    if (procs == 1) one_proc_wall = result->wall_seconds;
    const double speedup = one_proc_wall / result->wall_seconds;
    std::printf("%8d %6d %12s %8.2fx %8.2fx\n", procs,
                result->workers_used,
                HumanSeconds(result->wall_seconds).c_str(), speedup,
                static_cast<double>(procs));
    json.Row()
        .Field("engine", "proc")
        .Field("workload", real_profile.name)
        .Field("processes", procs)
        .Field("partitions", result->workers_used)
        .Field("wall_seconds", result->wall_seconds)
        .Field("speedup_vs_1_process", speedup)
        .Field("merged_logs_match_thread_engine", true);
  }
  bench::Hr();
  std::printf("The process curve adds true isolation to the same measured "
              "overlap: fork-per-\npartition, byte-identical merged logs, "
              "children reaped as they finish.\n");

  // ---------------------------------------- elastic pool (pool < G) --
  // The cluster-shaped question: G partitions but fewer worker slots than
  // partitions — the scheduler queues partitions and re-forks as slots
  // free up, trading wall time for footprint. Merged bytes stay pinned to
  // the thread engine at every pool size.
  const int elastic_parts = max_threads;  // 8 full, 2 smoke
  std::printf("\n-- process engine, elastic pool (G=%d partitions over "
              "fewer worker slots) --\n", elastic_parts);
  std::printf("%8s %6s %12s %9s %7s\n", "pool", "parts", "wall",
              "vs full", "forks");
  bench::Hr();

  double full_pool_wall = 0;
  for (int pool : {8, 4, 2}) {
    if (pool > elastic_parts) continue;  // smoke trims the sweep
    exec::ProcessReplayExecutorOptions popts;
    popts.run_prefix = "run";
    popts.num_partitions = elastic_parts;
    popts.max_concurrent_children = pool;
    popts.init_mode = InitMode::kWeak;
    popts.costs = sim::PaperPlatformCosts();
    exec::ProcessReplayExecutor executor(&real_fs, popts);
    auto result = executor.Run(real_factory);
    FLOR_CHECK(result.ok()) << result.status().ToString();
    FLOR_CHECK(result->deferred.ok);
    FLOR_CHECK(result->merged_logs.Serialize() == thread_logs)
        << "process engine diverges from thread engine at G="
        << elastic_parts << " pool=" << pool;
    FLOR_CHECK(result->max_observed_children <= pool);

    if (full_pool_wall == 0) full_pool_wall = result->wall_seconds;
    const double slowdown = result->wall_seconds / full_pool_wall;
    std::printf("%8d %6d %12s %8.2fx %7d\n", pool, result->workers_used,
                HumanSeconds(result->wall_seconds).c_str(), slowdown,
                result->total_forks);
    json.Row()
        .Field("engine", "proc")
        .Field("stage", "elastic_pool")
        .Field("workload", real_profile.name)
        .Field("partitions", result->workers_used)
        .Field("pool", pool)
        .Field("wall_seconds", result->wall_seconds)
        .Field("total_forks", result->total_forks)
        .Field("slowdown_fraction_vs_full_pool", slowdown)
        .Field("merged_logs_match_thread_engine", true);
  }
  bench::Hr();
  std::printf("Fewer slots than partitions still completes — the replay "
              "degrades in wall time\ninstead of failing, the elastic "
              "scale-out story behind retry-on-worker-death.\n");
  return 0;
}
