// Figure 5 — background materialization performance.
//
// "We take a 1.1GB checkpoint from the RTE experiment of Table 3, and
//  measure how long the main thread takes to finish executing, ignoring any
//  child processes and letting them run in the background."
//
// Four strategies are compared: Baseline (cloudpickle: serialize + write on
// the main thread), IPC-Queue (serialize on main, write in background),
// IPC-Plasma (shared-memory copy, no serialization for arrays), and Fork
// (COW snapshot + everything in background, batched). Expected shape:
// Baseline >> IPC-Queue >> IPC-Plasma >~ Fork, with Fork slightly ahead of
// Plasma thanks to batching.
//
// Times come from the calibrated platform cost model (EBS 7 Gbps;
// serialization 4.3x the I/O cost) driving the *actual* Materializer code
// path on a simulated clock; the checkpoint content itself is real and is
// really serialized and stored.

#include <cstdio>

#include "bench_util.h"
#include "checkpoint/materializer.h"
#include "tensor/ops.h"

int main() {
  using namespace flor;

  constexpr uint64_t kCheckpointBytes = 1100ull * 1000 * 1000;  // 1.1 GB
  const int kRuns = bench::SmokeIters(10);
  // Store shard sweep: the modeled phase costs are placement-invariant, so
  // the sharded rows double as a regression check that routing writes over
  // shard prefixes does not perturb the Fig. 5 comparison.
  const int kShardSweep[] = {1, 4};

  bench::BenchJson json("fig5_materialization");

  std::printf("Figure 5: Background materialization performance.\n");
  std::printf("1.1 GB RTE checkpoint; main-thread completion time, "
              "average of %d runs.\n\n", kRuns);
  std::printf("%-12s %7s %16s %18s\n", "Strategy", "shards", "main thread",
              "background");
  bench::Hr();

  for (MaterializeStrategy strategy :
       {MaterializeStrategy::kBaseline, MaterializeStrategy::kIpcQueue,
        MaterializeStrategy::kIpcPlasma, MaterializeStrategy::kFork}) {
    double flat_main = 0;  // shard-1 totals, for the invariance check
    for (int shards : kShardSweep) {
      double main_total = 0;
      double bg_total = 0;
      for (int run = 0; run < kRuns; ++run) {
        auto env = Env::NewSimEnv();
        MaterializerOptions mopts;
        mopts.strategy = strategy;
        mopts.costs = sim::PaperPlatformCosts();
        Materializer materializer(env.get(), mopts);
        CheckpointStore store(env->fs(), "ckpt", shards);

        // A real (small) snapshot payload: the simulated byte size scales
        // the modeled costs.
        Tensor payload(Shape{1024});
        Rng rng(7 + static_cast<uint64_t>(run));
        ops::RandNormal(&payload, &rng);
        NamedSnapshots snaps;
        snaps.emplace_back("state",
                           ir::SnapshotValue(ir::Value::FromTensor(payload)));

        CheckpointKey key{1, StrCat("run=", run)};
        auto receipt = materializer.Materialize(&store, key,
                                                std::move(snaps),
                                                kCheckpointBytes);
        FLOR_CHECK(receipt.ok()) << receipt.status().ToString();
        main_total += receipt->main_thread_seconds;
        bg_total += receipt->background_seconds;
      }
      if (shards == 1) {
        flat_main = main_total;
      } else {
        FLOR_CHECK_EQ(main_total, flat_main);  // placement-invariant costs
      }
      json.Row()
          .Field("strategy", MaterializeStrategyName(strategy))
          .Field("shards", shards)
          .Field("main_seconds", main_total / kRuns)
          .Field("background_seconds", bg_total / kRuns);
      std::printf("%-12s %7d %16s %18s\n", MaterializeStrategyName(strategy),
                  shards, HumanSeconds(main_total / kRuns).c_str(),
                  HumanSeconds(bg_total / kRuns).c_str());
    }
  }

  std::printf("\nPaper shape: Baseline slowest (serialize+write on the "
              "training thread);\nFork fastest, slightly ahead of "
              "IPC-Plasma thanks to batching.\n");
  return 0;
}
