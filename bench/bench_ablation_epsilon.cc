// Ablation: the overhead tolerance ε (paper §5.3, §6).
//
// "We chose an overhead tolerance of 6.67% (or 1/15) to ensure that there
//  is a sufficiently wide gap between materialization and computation
//  times... [ε] may be set to a different value by the user."
//
// Sweeps ε on the checkpoint-bound fine-tuning workloads and shows the
// resulting record overhead, checkpoint count, and — the replay-side
// consequence — partition count and 4-GPU replay fraction. Expected shape:
// larger ε ⇒ more checkpoints and overhead, finer partitions, faster
// parallel replay; the invariant "overhead ≤ ε" holds at every setting.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace flor;
  using bench::Pct;

  std::printf("Ablation: overhead tolerance epsilon on the fine-tuning "
              "workloads.\n\n");
  std::printf("%-5s %9s %10s %7s %7s %16s\n", "Name", "epsilon", "overhead",
              "ckpts", "parts", "4-GPU replay");
  bench::Hr();

  std::vector<const char*> names = {"RTE", "CoLA"};
  if (bench::SmokeMode()) names.resize(1);
  for (const char* name : names) {
    auto profile_or = workloads::WorkloadByName(name);
    FLOR_CHECK(profile_or.ok());
    const auto& profile = *profile_or;
    const double vanilla = profile.VanillaSeconds();

    for (double epsilon : {1.0 / 30.0, 1.0 / 15.0, 1.0 / 7.5, 1.0 / 3.0}) {
      MemFileSystem fs;
      Env env(std::make_unique<SimClock>(), &fs);
      auto instance =
          workloads::MakeWorkloadFactory(profile, workloads::kProbeNone)();
      FLOR_CHECK(instance.ok());
      RecordOptions opts = workloads::DefaultRecordOptions(profile, "run");
      opts.adaptive.epsilon = epsilon;
      RecordSession session(&env, opts);
      exec::Frame frame;
      auto rec = session.Run(instance->program.get(), &frame);
      FLOR_CHECK(rec.ok()) << rec.status().ToString();
      const double overhead = rec->runtime_seconds / vanilla - 1.0;
      FLOR_CHECK(overhead <= epsilon + 1e-9)
          << name << ": overhead exceeded epsilon";

      sim::ClusterReplayOptions copts;
      copts.run_prefix = "run";
      copts.cluster.num_machines = 1;
      copts.costs = sim::PaperPlatformCosts();
      auto replay = sim::ClusterReplay(
          workloads::MakeWorkloadFactory(profile, workloads::kProbeInner),
          &fs, copts);
      FLOR_CHECK(replay.ok()) << replay.status().ToString();
      FLOR_CHECK(replay->deferred.ok);

      std::printf("%-5s %9s %10s %7zu %7lld %16s\n", name,
                  Pct(epsilon).c_str(), Pct(overhead).c_str(),
                  rec->manifest.records.size(),
                  static_cast<long long>(replay->partition_segments),
                  Pct(replay->latency_seconds / vanilla).c_str());
    }
    bench::Hr();
  }
  std::printf("Shape: epsilon trades record overhead for replay "
              "parallelizability; the\noverhead <= epsilon invariant holds "
              "at every setting (checked).\n");
  return 0;
}
