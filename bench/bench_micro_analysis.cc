// Micro benchmarks (google-benchmark) for the static machinery: side-effect
// analysis / instrumentation, program rendering, and version diffing — the
// costs Flor pays once per record or replay launch (§5.2).

#include <benchmark/benchmark.h>

#include "flor/instrument.h"
#include "ir/builder.h"
#include "ir/diff.h"

namespace flor {
namespace {

/// Builds a synthetic training-script program with `loops` nested-loop
/// bodies of `stmts` statements each.
std::unique_ptr<ir::Program> MakeProgram(int loops, int stmts,
                                         bool with_probe = false) {
  ir::ProgramBuilder b;
  b.CallAssign({"net"}, "build_model", {}, nullptr);
  b.CallAssign({"optimizer"}, "make_optimizer", {"net"}, nullptr);
  b.BeginLoop("e", 100);
  for (int l = 0; l < loops; ++l) {
    b.BeginLoop("i" + std::to_string(l), 50);
    for (int s = 0; s < stmts; ++s) {
      b.CallAssign({"tmp" + std::to_string(s)}, "f",
                   {"net", "tmp" + std::to_string(s ? s - 1 : 0)}, nullptr);
    }
    b.MethodCall("optimizer", "step", {}, nullptr);
    if (with_probe && l == 0) {
      b.Log("probe", [](exec::Frame*) { return std::string("x"); });
    }
    b.EndLoop();
  }
  b.OpaqueCall("save_checkpoint", {"net"}, nullptr);
  b.EndLoop();
  return b.Build();
}

void BM_InstrumentProgram(benchmark::State& state) {
  for (auto _ : state) {
    auto program =
        MakeProgram(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(1)));
    InstrumentReport report = InstrumentProgram(program.get());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_InstrumentProgram)->Args({2, 8})->Args({4, 32})->Args({8, 128});

void BM_RenderSource(benchmark::State& state) {
  auto program = MakeProgram(4, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::string src = program->RenderSource();
    benchmark::DoNotOptimize(src);
  }
}
BENCHMARK(BM_RenderSource)->Arg(8)->Arg(64)->Arg(256);

void BM_DiffForProbes(benchmark::State& state) {
  auto recorded = MakeProgram(4, static_cast<int>(state.range(0)));
  const std::string source = recorded->RenderSource();
  auto probed =
      MakeProgram(4, static_cast<int>(state.range(0)), /*with_probe=*/true);
  for (auto _ : state) {
    auto report = ir::DiffForProbes(source, *probed);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_DiffForProbes)->Arg(8)->Arg(64)->Arg(256);

}  // namespace
}  // namespace flor
