#!/usr/bin/env python3
"""Contract tests for scripts/bench_diff.py, run as a ctest entry.

Feeds crafted BENCH_*.json pairs through the real CLI and asserts the
documented exit codes: 0 = clean (improvements, new/unmatched rows, and
sub-threshold noise included), 1 = at least one wall-second regression
over the threshold, 2 = usage or file error (missing file, malformed
JSON, not a capture).

Usage: bench_diff_test.py /path/to/bench_diff.py
"""

import json
import os
import subprocess
import sys
import tempfile


def write(dirname, name, doc):
    path = os.path.join(dirname, name)
    with open(path, "w") as f:
        if isinstance(doc, str):
            f.write(doc)
        else:
            json.dump(doc, f)
    return path


def capture(rows, bench="t"):
    return {"bench": bench, "smoke": True, "rows": rows}


def run(bench_diff, *args):
    proc = subprocess.run([sys.executable, bench_diff, *args],
                          stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
                          text=True)
    return proc.returncode, proc.stdout


def main():
    if len(sys.argv) != 2:
        print("usage: bench_diff_test.py /path/to/bench_diff.py")
        return 1
    bench_diff = sys.argv[1]
    failures = []

    def expect(name, got, want, output):
        if got != want:
            failures.append(f"{name}: exit {got}, want {want}\n{output}")
        else:
            print(f"ok: {name} (exit {got})")

    with tempfile.TemporaryDirectory(prefix="bench_diff_test") as tmp:
        row = {"workload": "RTE", "shards": 1, "seconds": 1.0}

        # Identical captures: clean.
        base = write(tmp, "base.json", capture([row]))
        same = write(tmp, "same.json", capture([row]))
        code, out = run(bench_diff, base, same)
        expect("identical", code, 0, out)

        # >10% wall-second regression: exit 1.
        slow = write(tmp, "slow.json",
                     capture([{**row, "seconds": 1.2}]))
        code, out = run(bench_diff, base, slow)
        expect("regression", code, 1, out)
        if "REGRESSION" not in out:
            failures.append(f"regression: missing REGRESSION line\n{out}")

        # Within threshold: clean.
        close = write(tmp, "close.json",
                      capture([{**row, "seconds": 1.05}]))
        code, out = run(bench_diff, base, close)
        expect("within-threshold", code, 0, out)

        # Improvement: clean.
        fast = write(tmp, "fast.json",
                     capture([{**row, "seconds": 0.5}]))
        code, out = run(bench_diff, base, fast)
        expect("improvement", code, 0, out)

        # Sub-min-seconds baseline: noise, never a regression.
        tiny_base = write(tmp, "tiny_base.json",
                          capture([{**row, "seconds": 0.0002}]))
        tiny_slow = write(tmp, "tiny_slow.json",
                          capture([{**row, "seconds": 0.0009}]))
        code, out = run(bench_diff, tiny_base, tiny_slow)
        expect("sub-min-seconds", code, 0, out)

        # Rows present on only one side (sweeps grow/shrink): reported,
        # not failed.
        grown = write(tmp, "grown.json", capture([
            {**row, "seconds": 1.0},
            {"workload": "CoLA", "shards": 4, "seconds": 2.0},
        ]))
        code, out = run(bench_diff, base, grown)
        expect("missing-row", code, 0, out)
        if "without a match" not in out and "new row" not in out:
            failures.append(f"missing-row: unmatched rows not noted\n{out}")

        # Derived fields (speedup, steals, retries) must not break row
        # identity: same config, different derived values, slower seconds
        # -> still matched, still a regression.
        base_derived = write(tmp, "base_derived.json", capture(
            [{**row, "speedup_vs_1_thread": 3.9, "steals": 2,
              "seconds": 1.0}]))
        cur_derived = write(tmp, "cur_derived.json", capture(
            [{**row, "speedup_vs_1_thread": 2.1, "steals": 7,
              "seconds": 1.5}]))
        code, out = run(bench_diff, base_derived, cur_derived)
        expect("derived-fields-regression", code, 1, out)

        # Fraction-valued measurements (record-overhead rows carry no wall
        # seconds) are gated like wall times: a >threshold increase fails...
        frac_row = {"workload": "RTE", "config": "group_commit",
                    "overhead_fraction": 0.010}
        frac_base = write(tmp, "frac_base.json", capture([frac_row]))
        frac_slow = write(tmp, "frac_slow.json", capture(
            [{**frac_row, "overhead_fraction": 0.015}]))
        code, out = run(bench_diff, frac_base, frac_slow)
        expect("fraction-regression", code, 1, out)

        # ...an improvement or within-threshold drift stays clean...
        frac_fast = write(tmp, "frac_fast.json", capture(
            [{**frac_row, "overhead_fraction": 0.004}]))
        code, out = run(bench_diff, frac_base, frac_fast)
        expect("fraction-improvement", code, 0, out)

        # ...and a changed fraction must not break row identity (it is a
        # measurement, not a config field): the same row's seconds still
        # match and gate.
        frac_sec_base = write(tmp, "frac_sec_base.json", capture(
            [{**frac_row, "record_seconds": 1.0}]))
        frac_sec_cur = write(tmp, "frac_sec_cur.json", capture(
            [{**frac_row, "overhead_fraction": 0.02, "record_seconds": 1.5}]))
        code, out = run(bench_diff, frac_sec_base, frac_sec_cur)
        expect("fraction-not-identity", code, 1, out)

        # Derived fraction *mentions* (fraction_of_vanilla) are still
        # neither identity nor gated: a big change alone stays clean.
        dfrac_base = write(tmp, "dfrac_base.json", capture(
            [{**row, "fraction_of_vanilla": 0.25}]))
        dfrac_cur = write(tmp, "dfrac_cur.json", capture(
            [{**row, "fraction_of_vanilla": 0.90}]))
        code, out = run(bench_diff, dfrac_base, dfrac_cur)
        expect("derived-fraction-ignored", code, 0, out)

        # Malformed JSON: exit 2.
        broken = write(tmp, "broken.json", "{not json")
        code, out = run(bench_diff, base, broken)
        expect("malformed-current", code, 2, out)
        code, out = run(bench_diff, broken, same)
        expect("malformed-baseline", code, 2, out)

        # Valid JSON but not a capture: exit 2.
        notcap = write(tmp, "notcap.json", {"rows": "nope"})
        code, out = run(bench_diff, base, notcap)
        expect("not-a-capture", code, 2, out)

        # Missing file: exit 2.
        code, out = run(bench_diff, base,
                        os.path.join(tmp, "absent.json"))
        expect("missing-file", code, 2, out)

    if failures:
        print("\n".join(["FAILURES:"] + failures))
        return 1
    print("bench_diff_test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
