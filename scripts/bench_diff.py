#!/usr/bin/env python3
"""Compare two BENCH_*.json captures and fail on wall-second regressions.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--threshold 0.10]
                  [--min-seconds 0.001]

Rows are matched by their identity fields: everything except measured
values (fields named "seconds"/"fraction" or ending in "_seconds"/
"_fraction") and derived or run-varying outputs (booleans, and fields
mentioning "speedup", "steal", "retries", "fraction", or "per_sec" — e.g.
speedup_vs_1_thread and steals change between any two wall-clock runs and
must not break row matching). Fraction-valued measurements (e.g. the
record-overhead rows of BENCH_fig11.json, which carry no wall seconds)
are gated exactly like wall times; fields merely *mentioning* fraction
(fraction_of_vanilla, slowdown_fraction_vs_full_pool) stay derived-only.
For each matched row, every measured field present on both sides is
compared; a field counts as a regression when

    current > baseline * (1 + threshold)   and   baseline >= min-seconds

(the min-seconds floor keeps sub-millisecond noise from tripping the gate).
Rows present on only one side are reported but do not fail the diff —
sweeps grow. Exit status: 0 = no regressions, 1 = at least one regression,
2 = usage or file error.

Wired into scripts/check.sh: export BENCH_BASELINE=<dir of old captures>
to gate the freshly captured BENCH_*.json files against it.
"""

import argparse
import json
import sys


def is_measured(key):
    return (key == "seconds" or key.endswith("_seconds") or
            key == "fraction" or key.endswith("_fraction"))


# Derived metrics and outcome flags vary run to run (or follow the measured
# times); they are neither identity nor independently gated. "per_sec"
# covers throughput rates (e.g. sessions_per_sec = sessions / wall_seconds),
# which are the measured wall time seen from the other side.
DERIVED_TAGS = ("speedup", "steal", "retries", "fraction", "per_sec")


def is_derived(key, value):
    return isinstance(value, bool) or any(t in key for t in DERIVED_TAGS)


def row_key(row):
    """Identity of a row: its configuration fields, order-insensitive."""
    return tuple(sorted((k, json.dumps(v, sort_keys=True))
                        for k, v in row.items()
                        if not is_measured(k) and not is_derived(k, v)))


def fail_usage(message):
    """File/usage failure: exit 2, distinct from a regression's exit 1."""
    print(message, file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail_usage(f"bench_diff: cannot read {path}: {e}")
    if not isinstance(doc, dict) or not isinstance(doc.get("rows"), list):
        fail_usage(f"bench_diff: {path}: not a BENCH_*.json capture")
    return doc


def describe(key):
    return ", ".join(f"{k}={json.loads(v)}" for k, v in key) or "<no key>"


def main():
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json captures.")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative wall-second slack (default 0.10)")
    parser.add_argument("--min-seconds", type=float, default=0.001,
                        help="ignore baselines below this (default 1 ms)")
    args = parser.parse_args()

    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    if base_doc.get("bench") != cur_doc.get("bench"):
        print(f"bench_diff: note: comparing different benches "
              f"({base_doc.get('bench')} vs {cur_doc.get('bench')})")

    base_rows = {}
    for row in base_doc["rows"]:
        base_rows.setdefault(row_key(row), row)

    regressions = []
    compared = 0
    unmatched = 0
    for row in cur_doc["rows"]:
        base = base_rows.pop(row_key(row), None)
        if base is None:
            unmatched += 1
            continue
        for field in row:
            if not is_measured(field) or field not in base:
                continue
            old, new = base[field], row[field]
            if not isinstance(old, (int, float)) or \
               not isinstance(new, (int, float)):
                continue
            compared += 1
            if old >= args.min_seconds and new > old * (1 + args.threshold):
                regressions.append((row_key(row), field, old, new))

    for key, field, old, new in regressions:
        print(f"REGRESSION {describe(key)}: {field} "
              f"{old:.6g}s -> {new:.6g}s (+{(new / old - 1) * 100:.1f}%)")
    if unmatched or base_rows:
        print(f"bench_diff: note: {unmatched} new row(s), "
              f"{len(base_rows)} baseline row(s) without a match")
    verdict = "FAIL" if regressions else "OK"
    print(f"bench_diff: {verdict} — {compared} measurement(s) compared, "
          f"{len(regressions)} regression(s) over "
          f"{args.threshold * 100:.0f}%")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
