#!/usr/bin/env bash
# Pre-PR gate: configure, build everything (libs, tests, benches, examples)
# with warnings-as-errors, run the full test suite, then run the smoke
# benches (capturing the parallel-replay curves as BENCH_fig10.json /
# BENCH_fig13.json). Run from anywhere; exits nonzero on the first failure.
#
#   ./scripts/check.sh                 # full gate
#   BUILD_DIR=out ./scripts/check.sh   # custom build dir
#   FLOR_TSAN=1 ./scripts/check.sh     # also run the concurrency suites
#                                      # under ThreadSanitizer
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . -DFLOR_WERROR=ON

echo "== build =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== unit + property tests =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error \
      -j "${JOBS}" -LE bench_smoke

echo "== bench smoke (BENCH_SMOKE=1) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error \
      -j "${JOBS}" -L bench_smoke

echo "== bench JSON capture (BENCH_fig10.json / BENCH_fig13.json) =="
BENCH_SMOKE=1 BENCH_JSON=BENCH_fig10.json \
    "${BUILD_DIR}/bench_fig10_parallel_replay" > /dev/null
BENCH_SMOKE=1 BENCH_JSON=BENCH_fig13.json \
    "${BUILD_DIR}/bench_fig13_scaleout" > /dev/null
echo "wrote BENCH_fig10.json BENCH_fig13.json"

if [[ "${FLOR_TSAN:-0}" != "0" ]]; then
  echo "== ThreadSanitizer: concurrency suites (${BUILD_DIR}-tsan) =="
  cmake -B "${BUILD_DIR}-tsan" -S . -DFLOR_TSAN=ON
  cmake --build "${BUILD_DIR}-tsan" -j "${JOBS}" \
        --target replay_executor_test
  ctest --test-dir "${BUILD_DIR}-tsan" --output-on-failure \
        --no-tests=error -j "${JOBS}" \
        -R 'ReplayExecutor|WorkStealingPool'
fi

echo "== OK =="
