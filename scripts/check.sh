#!/usr/bin/env bash
# Pre-PR gate: configure, build everything (libs, tests, benches, examples)
# with warnings-as-errors, run the full test suite, then run the smoke
# benches (capturing the parallel-replay curves as BENCH_fig10.json /
# BENCH_fig13.json). Run from anywhere; exits nonzero on the first failure.
#
#   ./scripts/check.sh                 # full gate
#   BUILD_DIR=out ./scripts/check.sh   # custom build dir
#   FLOR_TSAN=1 ./scripts/check.sh     # also run the concurrency suites
#                                      # under ThreadSanitizer
#   FLOR_BUILD_TYPE=Debug ./scripts/check.sh
#                                      # override CMAKE_BUILD_TYPE (CI runs
#                                      # the Debug + Release matrix this way)
#   FLOR_CCACHE=1 ./scripts/check.sh   # compile through ccache (no-op when
#                                      # ccache is not installed)
#   BENCH_BASELINE=<dir> ./scripts/check.sh
#                                      # also diff the fresh BENCH_*.json
#                                      # captures against the copies in
#                                      # <dir>; fails on >10% wall-second
#                                      # regressions (scripts/bench_diff.py)
#                                      # — CI runs this warn-only against
#                                      # bench/baselines/
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

# Main configure args; the tsan tree gets its own array (no -Werror there,
# matching the pre-existing behavior) so neither depends on the other's
# element order — and both stay non-empty, which keeps `set -u` happy on
# bash < 4.4 (macOS ships 3.2).
CMAKE_ARGS=(-DFLOR_WERROR=ON)
TSAN_ARGS=(-DFLOR_TSAN=ON)
if [[ -n "${FLOR_BUILD_TYPE:-}" ]]; then
  CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE="${FLOR_BUILD_TYPE}")
  TSAN_ARGS+=(-DCMAKE_BUILD_TYPE="${FLOR_BUILD_TYPE}")
fi
if [[ "${FLOR_CCACHE:-0}" != "0" ]] && command -v ccache >/dev/null 2>&1; then
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
  TSAN_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

echo "== test-seed audit =="
# New suites must derive their randomness from tests/test_util.h
# (TestSeed()/SeededRng()) so FLOR_TEST_SEED=<n> reproduces any failure;
# a literal seed ignores the override. SeededRng(<n>) literals are fine —
# those are salts layered on the base seed, not seeds.
if grep -nE 'mt19937[^;]*[({][0-9]|(^|[^A-Za-z_])Rng *[({] *[0-9]|Rng +[A-Za-z_0-9]+ *\( *[0-9]' \
        tests/*.cc tests/*.h; then
  echo "error: literal RNG seed in tests/ — use testutil::TestSeed()/SeededRng() (tests/test_util.h)" >&2
  exit 1
fi

echo "== service-layer construction lint =="
# The Connection/Session front-end owns store and spooler construction:
# CheckpointStore::Open is the one sanctioned way to build a store, and the
# only SpoolQueue constructions live in the service layer, the record
# session (private per-run spooler), and the spool subsystem itself.
# Direct construction anywhere else bypasses the connection's tier
# configuration (bucket + bloom) and its shared-spooler accounting.
LINT_ALLOW='src/checkpoint/store\.(h|cc)|src/checkpoint/spool\.(h|cc)|src/service/connection\.cc|src/flor/record\.cc'
if grep -rnE 'make_unique<CheckpointStore>|new CheckpointStore|CheckpointStore [a-z_]+\(|make_unique<SpoolQueue>|new SpoolQueue|SpoolQueue [a-z_]+\(' \
        src/ | grep -vE "^(${LINT_ALLOW}):"; then
  echo "error: direct CheckpointStore/SpoolQueue construction outside the" >&2
  echo "service layer — open stores via CheckpointStore::Open (tier-aware)" >&2
  echo "or go through flor::Connection (src/service/service.h)" >&2
  exit 1
fi

echo "== configure (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]}"

echo "== build =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== unit + property tests =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error \
      -j "${JOBS}" -LE bench_smoke

echo "== bench smoke (BENCH_SMOKE=1) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error \
      -j "${JOBS}" -L bench_smoke

echo "== bench JSON capture (BENCH_fig10/fig11/fig13/fig14/table4.json) =="
BENCH_SMOKE=1 BENCH_JSON=BENCH_fig10.json \
    "${BUILD_DIR}/bench_fig10_parallel_replay" > /dev/null
BENCH_SMOKE=1 BENCH_JSON=BENCH_fig11.json \
    "${BUILD_DIR}/bench_fig11_record_overhead" > /dev/null
BENCH_SMOKE=1 BENCH_JSON=BENCH_fig13.json \
    "${BUILD_DIR}/bench_fig13_scaleout" > /dev/null
BENCH_SMOKE=1 BENCH_JSON=BENCH_fig14.json \
    "${BUILD_DIR}/bench_fig14_cost" > /dev/null
BENCH_SMOKE=1 BENCH_JSON=BENCH_table4.json \
    "${BUILD_DIR}/bench_table4_storage" > /dev/null
BENCH_SMOKE=1 BENCH_JSON=BENCH_service.json \
    "${BUILD_DIR}/bench_service_mixed" > /dev/null
echo "wrote BENCH_fig10.json BENCH_fig11.json BENCH_fig13.json BENCH_fig14.json BENCH_table4.json BENCH_service.json"

if [[ -n "${BENCH_BASELINE:-}" ]]; then
  echo "== bench regression diff vs ${BENCH_BASELINE} =="
  for f in BENCH_fig10.json BENCH_fig11.json BENCH_fig13.json BENCH_fig14.json BENCH_table4.json BENCH_service.json; do
    if [[ -f "${BENCH_BASELINE}/${f}" ]]; then
      python3 scripts/bench_diff.py "${BENCH_BASELINE}/${f}" "${f}"
    else
      echo "bench_diff: no baseline for ${f}, skipped"
    fi
  done
fi

if [[ "${FLOR_TSAN:-0}" != "0" ]]; then
  echo "== ThreadSanitizer: concurrency + fork suites (${BUILD_DIR}-tsan) =="
  cmake -B "${BUILD_DIR}-tsan" -S . "${TSAN_ARGS[@]}"
  cmake --build "${BUILD_DIR}-tsan" -j "${JOBS}" \
        --target replay_executor_test spool_test bloom_test \
                 process_executor_test crash_consistency_test \
                 tiered_store_test service_test server_test
  # `tsan` labels the suites exercising real threads (thread-pool replay
  # engine, spool/shard batching); `proc` labels the fork-heavy suites
  # (process replay engine, SIGKILL crash harness); `tiered` labels the
  # tiered-store suite racing bucket fault-in against local GC demotion;
  # `service` labels the Connection/Session suite racing concurrent tenant
  # sessions against the connection's background GC worker; `server` labels
  # the wire-server suite racing socket clients, fuzzed frames, and drain
  # against the accept/handler threads. All run
  # instrumented: every fork happens from a single-threaded coordinator
  # and the children stay single-threaded, which ThreadSanitizer supports.
  ctest --test-dir "${BUILD_DIR}-tsan" --output-on-failure \
        --no-tests=error -j "${JOBS}" -L 'tsan|proc|tiered|service|server'
fi

echo "== OK =="
