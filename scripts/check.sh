#!/usr/bin/env bash
# Pre-PR gate: configure, build everything (libs, tests, benches, examples)
# with warnings-as-errors, run the full test suite, then run the smoke
# benches. Run from anywhere; exits nonzero on the first failure.
#
#   ./scripts/check.sh            # full gate
#   BUILD_DIR=out ./scripts/check.sh   # custom build dir
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"

echo "== configure (${BUILD_DIR}) =="
cmake -B "${BUILD_DIR}" -S . -DFLOR_WERROR=ON

echo "== build =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== unit + property tests =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error \
      -j "${JOBS}" -LE bench_smoke

echo "== bench smoke (BENCH_SMOKE=1) =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure --no-tests=error \
      -j "${JOBS}" -L bench_smoke

echo "== OK =="
