// Batched iteration over a SyntheticDataset.
//
// Iteration order is a deterministic permutation per epoch (seeded by
// (dataset seed, epoch)), mirroring PyTorch's seeded DataLoader shuffling —
// another piece of the reproducibility premise record/replay relies on.

#ifndef FLOR_DATA_LOADER_H_
#define FLOR_DATA_LOADER_H_

#include <vector>

#include "data/dataset.h"

namespace flor {
namespace data {

/// One minibatch.
struct Batch {
  Tensor features;
  Tensor labels;
  int64_t index = 0;  ///< batch ordinal within the epoch
};

/// Deterministic shuffling batch loader.
class DataLoader {
 public:
  /// Does not own `dataset`. Drops the final partial batch (as the paper's
  /// training loops effectively do for steady-state timing).
  DataLoader(const SyntheticDataset* dataset, int64_t batch_size);

  int64_t batches_per_epoch() const;

  /// Materializes batch `batch_index` of `epoch`.
  Result<Batch> GetBatch(int64_t epoch, int64_t batch_index) const;

  /// All batches of an epoch, in order.
  Result<std::vector<Batch>> Epoch(int64_t epoch) const;

 private:
  /// Sample index permutation for `epoch`.
  std::vector<int64_t> Permutation(int64_t epoch) const;

  const SyntheticDataset* dataset_;
  int64_t batch_size_;
};

}  // namespace data
}  // namespace flor

#endif  // FLOR_DATA_LOADER_H_
