#include "data/loader.h"

#include <numeric>

#include "common/logging.h"

namespace flor {
namespace data {

DataLoader::DataLoader(const SyntheticDataset* dataset, int64_t batch_size)
    : dataset_(dataset), batch_size_(batch_size) {
  FLOR_CHECK_GT(batch_size, 0);
}

int64_t DataLoader::batches_per_epoch() const {
  return dataset_->size() / batch_size_;
}

std::vector<int64_t> DataLoader::Permutation(int64_t epoch) const {
  std::vector<int64_t> perm(static_cast<size_t>(dataset_->size()));
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(Mix64(dataset_->config().seed ^
                (0xe90cull + static_cast<uint64_t>(epoch))));
  // Fisher-Yates with the deterministic stream.
  for (size_t i = perm.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng.Uniform(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

Result<Batch> DataLoader::GetBatch(int64_t epoch, int64_t batch_index) const {
  if (batch_index < 0 || batch_index >= batches_per_epoch())
    return Status::OutOfRange("batch index out of range");
  const auto perm = Permutation(epoch);
  const auto& cfg = dataset_->config();

  Batch out;
  out.index = batch_index;
  std::vector<int64_t> labels(static_cast<size_t>(batch_size_));
  const bool text = cfg.task == Task::kText;
  Tensor feats(Shape{batch_size_, cfg.feature_dim},
               text ? DType::kI64 : DType::kF32);
  for (int64_t i = 0; i < batch_size_; ++i) {
    const int64_t sample_idx =
        perm[static_cast<size_t>(batch_index * batch_size_ + i)];
    Tensor s = dataset_->Sample(sample_idx);
    if (text) {
      std::copy(s.i64(), s.i64() + cfg.feature_dim,
                feats.i64() + i * cfg.feature_dim);
    } else {
      std::copy(s.f32(), s.f32() + cfg.feature_dim,
                feats.f32() + i * cfg.feature_dim);
    }
    labels[static_cast<size_t>(i)] = dataset_->Label(sample_idx);
  }
  out.features = std::move(feats);
  out.labels = Tensor(Shape{batch_size_}, std::move(labels));
  return out;
}

Result<std::vector<Batch>> DataLoader::Epoch(int64_t epoch) const {
  std::vector<Batch> out;
  const int64_t n = batches_per_epoch();
  out.reserve(static_cast<size_t>(n));
  for (int64_t b = 0; b < n; ++b) {
    FLOR_ASSIGN_OR_RETURN(Batch batch, GetBatch(epoch, b));
    out.push_back(std::move(batch));
  }
  return out;
}

}  // namespace data
}  // namespace flor
