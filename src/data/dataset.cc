#include "data/dataset.h"

#include <cmath>

#include "common/logging.h"

namespace flor {
namespace data {

SyntheticDataset::SyntheticDataset(Config config) : config_(config) {
  FLOR_CHECK_GT(config_.num_samples, 0);
  FLOR_CHECK_GT(config_.feature_dim, 0);
  FLOR_CHECK_GT(config_.num_classes, 0);
}

int64_t SyntheticDataset::Label(int64_t index) const {
  // Labels derive from the same per-sample stream as features, so they are
  // learnable (class-dependent feature means) yet fully deterministic.
  uint64_t h = Mix64(config_.seed ^ Mix64(static_cast<uint64_t>(index)));
  return static_cast<int64_t>(h % static_cast<uint64_t>(config_.num_classes));
}

Tensor SyntheticDataset::Sample(int64_t index) const {
  Rng rng(Mix64(config_.seed * 0x9e3779b97f4a7c15ULL +
                static_cast<uint64_t>(index)));
  const int64_t label = Label(index);
  if (config_.task == Task::kText) {
    // Token ids biased by label so text models can learn the mapping.
    std::vector<int64_t> toks(static_cast<size_t>(config_.feature_dim));
    for (auto& t : toks) {
      const int64_t base =
          (label * config_.vocab_size) / config_.num_classes;
      const int64_t spread = config_.vocab_size / 4 + 1;
      t = (base + static_cast<int64_t>(rng.Uniform(
                      static_cast<uint64_t>(spread)))) %
          config_.vocab_size;
    }
    return Tensor(Shape{config_.feature_dim}, std::move(toks));
  }
  // Dense modalities: class-dependent mean + noise.
  std::vector<float> feats(static_cast<size_t>(config_.feature_dim));
  const float mean = static_cast<float>(label) /
                         static_cast<float>(config_.num_classes) -
                     0.5f;
  for (size_t i = 0; i < feats.size(); ++i) {
    const float phase =
        std::sin(static_cast<float>(i + 1) * (mean + 1.5f));
    feats[i] = phase + 0.3f * static_cast<float>(rng.NextGaussian());
  }
  return Tensor(Shape{config_.feature_dim}, std::move(feats));
}

Result<Tensor> SyntheticDataset::BatchFeatures(int64_t first,
                                               int64_t count) const {
  if (first < 0 || count <= 0 || first + count > config_.num_samples)
    return Status::OutOfRange("batch range out of bounds");
  if (config_.task == Task::kText) {
    Tensor out(Shape{count, config_.feature_dim}, DType::kI64);
    int64_t* p = out.i64();
    for (int64_t i = 0; i < count; ++i) {
      Tensor s = Sample(first + i);
      for (int64_t j = 0; j < config_.feature_dim; ++j)
        p[i * config_.feature_dim + j] = s.at_i64(j);
    }
    return out;
  }
  Tensor out(Shape{count, config_.feature_dim});
  float* p = out.f32();
  for (int64_t i = 0; i < count; ++i) {
    Tensor s = Sample(first + i);
    for (int64_t j = 0; j < config_.feature_dim; ++j)
      p[i * config_.feature_dim + j] = s.at(j);
  }
  return out;
}

Result<Tensor> SyntheticDataset::BatchLabels(int64_t first,
                                             int64_t count) const {
  if (first < 0 || count <= 0 || first + count > config_.num_samples)
    return Status::OutOfRange("batch range out of bounds");
  std::vector<int64_t> labels(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i)
    labels[static_cast<size_t>(i)] = Label(first + i);
  return Tensor(Shape{count}, std::move(labels));
}

}  // namespace data
}  // namespace flor
