// Synthetic datasets with the shapes of the paper's benchmarks (Table 3).
//
// The evaluation never depends on label semantics — only on sample counts,
// feature dimensions, and batch counts, which drive loop structure and
// timing. Samples are generated deterministically from (seed, index), so a
// dataset never needs to be checkpointed: replay regenerates identical data,
// mirroring how Flor relies on deterministic data loading in Python.

#ifndef FLOR_DATA_DATASET_H_
#define FLOR_DATA_DATASET_H_

#include <cstdint>
#include <string>

#include "common/random.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace flor {
namespace data {

/// Modality of a synthetic dataset.
enum class Task : uint8_t {
  kVision = 0,  ///< dense feature vector per sample (flattened image)
  kText = 1,    ///< i64 token sequence per sample
  kAudio = 2,   ///< dense frame features per sample (speech)
};

/// Deterministic synthetic dataset.
class SyntheticDataset {
 public:
  struct Config {
    Task task = Task::kVision;
    int64_t num_samples = 1024;
    int64_t feature_dim = 64;  ///< dense dims, or sequence length for text
    int64_t num_classes = 10;
    int64_t vocab_size = 1000;  ///< text only
    uint64_t seed = 42;
  };

  explicit SyntheticDataset(Config config);

  int64_t size() const { return config_.num_samples; }
  const Config& config() const { return config_; }

  /// Features for sample `index`: f32 [feature_dim] for vision/audio,
  /// i64 [feature_dim] token ids for text. Pure function of (seed, index).
  Tensor Sample(int64_t index) const;

  /// Label in [0, num_classes). Correlated with the features so models can
  /// actually learn (tests assert loss decreases).
  int64_t Label(int64_t index) const;

  /// Stacks samples [first, first+count) into a batch tensor:
  /// f32 [count, feature_dim] or i64 [count, feature_dim].
  Result<Tensor> BatchFeatures(int64_t first, int64_t count) const;

  /// i64 [count] labels for the same range.
  Result<Tensor> BatchLabels(int64_t first, int64_t count) const;

 private:
  Config config_;
};

}  // namespace data
}  // namespace flor

#endif  // FLOR_DATA_DATASET_H_
