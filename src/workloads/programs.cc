#include "workloads/programs.h"

#include <cmath>

#include "common/strings.h"
#include "ir/builder.h"
#include "nn/loss.h"
#include "sim/cost_model.h"
#include "tensor/ops.h"

namespace flor {
namespace workloads {

namespace {

using exec::Frame;
using RuntimePtr = std::shared_ptr<WorkloadRuntime>;

/// L2 norm over all (unfrozen and frozen) parameter values.
float ModelWeightNorm(nn::Module* net) {
  double acc = 0;
  for (nn::Parameter* p : net->Parameters()) {
    const float n = ops::L2Norm(p->value);
    acc += static_cast<double>(n) * n;
  }
  return static_cast<float>(std::sqrt(acc));
}

/// L2 norm over all parameter gradients.
float ModelGradNorm(nn::Module* net) {
  double acc = 0;
  for (nn::Parameter* p : net->Parameters()) {
    const float n = ops::L2Norm(p->grad);
    acc += static_cast<double>(n) * n;
  }
  return static_cast<float>(std::sqrt(acc));
}

/// Deterministic eval-set accuracy.
Result<float> Evaluate(WorkloadRuntime* rt) {
  const int64_t n = std::min<int64_t>(rt->eval_dataset->size(), 32);
  FLOR_ASSIGN_OR_RETURN(Tensor feats, rt->eval_dataset->BatchFeatures(0, n));
  FLOR_ASSIGN_OR_RETURN(Tensor labels, rt->eval_dataset->BatchLabels(0, n));
  FLOR_ASSIGN_OR_RETURN(Tensor logits, rt->net->Forward(feats));
  return ops::Accuracy(logits, labels);
}

Result<ProgramInstance> BuildInstance(WorkloadProfile profile,
                                      uint32_t probes) {
  auto rt = std::make_shared<WorkloadRuntime>(profile);
  const WorkloadProfile& p = rt->profile;
  const double batch_cost =
      p.sim_epoch_seconds /
      static_cast<double>(p.real_batches_per_epoch());

  ir::ProgramBuilder b;

  // ----------------------------------------------------------- preamble --
  b.CallAssign({"trainloader"}, "make_loader", {}, [rt](Frame* f) {
     data::SyntheticDataset::Config cfg;
     cfg.task = rt->profile.task_kind;
     cfg.num_samples = rt->profile.real_samples;
     cfg.feature_dim = rt->profile.real_feature_dim;
     cfg.num_classes = rt->profile.real_classes;
     cfg.vocab_size = rt->profile.real_vocab;
     cfg.seed = rt->profile.seed;
     rt->dataset = std::make_unique<data::SyntheticDataset>(cfg);
     rt->loader = std::make_unique<data::DataLoader>(rt->dataset.get(),
                                                     rt->profile.real_batch);
     data::SyntheticDataset::Config eval_cfg = cfg;
     eval_cfg.seed = cfg.seed + 7;
     eval_cfg.num_samples = 32;
     rt->eval_dataset = std::make_unique<data::SyntheticDataset>(eval_cfg);
     f->Set("trainloader", ir::Value::LoaderRef(rt->loader.get()));
     return Status::OK();
   }).Cost(p.sim_preamble_seconds);

  b.CallAssign({"num_batches"}, "len", {"trainloader"}, [rt](Frame* f) {
    f->Set("num_batches",
           ir::Value::Int(rt->loader->batches_per_epoch()));
    return Status::OK();
  });

  b.CallAssign({"net"}, "build_model", {}, [rt](Frame* f) {
    rt->net = BuildModel(rt->profile, &rt->rng);
    f->Set("net", ir::Value::ModuleRef(rt->net.get()));
    return Status::OK();
  });

  if (p.fine_tune) {
    b.OpaqueCall("freeze_encoder", {"net"}, [rt](Frame*) {
      FreezeBackbone(rt->net.get());
      return Status::OK();
    });
  }

  b.CallAssign({"optimizer"}, "make_optimizer", {"net"}, [rt](Frame* f) {
    rt->optimizer = BuildOptimizer(rt->profile, rt->net.get());
    f->Set("optimizer", ir::Value::OptimizerRef(rt->optimizer.get()));
    return Status::OK();
  });

  b.CallAssign({"scheduler"}, "make_scheduler", {"optimizer"},
               [rt](Frame* f) {
                 rt->scheduler =
                     BuildScheduler(rt->profile, rt->optimizer.get());
                 f->Set("scheduler",
                        ir::Value::SchedulerRef(rt->scheduler.get()));
                 return Status::OK();
               });

  // ---------------------------------------------------------- main loop --
  b.BeginLoop("e", p.epochs);
  {
    // ----------------------------------------------------- training loop --
    b.BeginLoopVar("i", "num_batches");
    {
      b.MethodCall("optimizer", "zero_grad", {}, [rt](Frame*) {
        rt->optimizer->model()->ZeroGrad();
        return Status::OK();
      });

      b.CallAssign({"batch", "labels"}, "fetch_batch",
                   {"trainloader", "e", "i"}, [rt](Frame* f) {
                     const int64_t e = f->At("e").AsInt();
                     const int64_t i = f->At("i").AsInt();
                     FLOR_ASSIGN_OR_RETURN(data::Batch batch,
                                           rt->loader->GetBatch(e, i));
                     f->Set("batch",
                            ir::Value::FromTensor(batch.features));
                     f->Set("labels", ir::Value::FromTensor(batch.labels));
                     return Status::OK();
                   });

      b.CallAssign({"preds"}, "forward", {"net", "batch"}, [rt](Frame* f) {
         FLOR_ASSIGN_OR_RETURN(Tensor preds,
                               rt->net->Forward(f->At("batch").AsTensor()));
         f->Set("preds", ir::Value::FromTensor(std::move(preds)));
         return Status::OK();
       }).Cost(batch_cost).WallCost(p.wall_batch_seconds);

      b.CallAssign({"loss", "grad"}, "criterion", {"preds", "labels"},
                   [](Frame* f) {
                     FLOR_ASSIGN_OR_RETURN(
                         nn::LossResult lr,
                         nn::SoftmaxCrossEntropy(f->At("preds").AsTensor(),
                                                 f->At("labels").AsTensor()));
                     f->Set("loss", ir::Value::Float(lr.loss));
                     f->Set("grad", ir::Value::FromTensor(
                                        std::move(lr.grad_logits)));
                     return Status::OK();
                   });

      b.MethodCall("grad", "backward", {"net"}, [rt](Frame* f) {
        FLOR_ASSIGN_OR_RETURN(Tensor unused,
                              rt->net->Backward(f->At("grad").AsTensor()));
        (void)unused;
        return Status::OK();
      });

      b.MethodCall("optimizer", "step", {}, [rt](Frame*) {
        return rt->optimizer->Step();
      });

      b.Log("loss",
            [](Frame* f) {
              return StrFormat("%.6f", f->At("loss").AsFloat());
            },
            {"loss"});

      if (probes & kProbeInner) {
        b.Log("grad_norm",
              [rt](Frame*) {
                return StrFormat("%.6f", ModelGradNorm(rt->net.get()));
              },
              {"net"});
      }
    }
    b.EndLoop();

    b.MethodCall("scheduler", "step", {}, [rt](Frame*) {
      rt->scheduler->Step();
      return Status::OK();
    });

    b.CallAssign({"test_acc"}, "evaluate", {"net", "e"}, [rt](Frame* f) {
       FLOR_ASSIGN_OR_RETURN(float acc, Evaluate(rt.get()));
       f->Set("test_acc", ir::Value::Float(acc));
       return Status::OK();
     }).Cost(p.sim_outer_seconds);

    b.Log("test_acc",
          [](Frame* f) {
            return StrFormat("%.4f", f->At("test_acc").AsFloat());
          },
          {"test_acc"});

    // The user's own periodic save — a rule-5 statement that (correctly)
    // stops Flor from wrapping the main loop in a SkipBlock.
    b.OpaqueCall("save_checkpoint", {"net"},
                 [](Frame*) { return Status::OK(); });

    if (probes & kProbeOuter) {
      b.Log("weight_norm",
            [rt](Frame*) {
              return StrFormat("%.6f", ModelWeightNorm(rt->net.get()));
            },
            {"net"});
    }
  }
  b.EndLoop();

  b.Log("final_weight_norm",
        [rt](Frame*) {
          return StrFormat("%.6f", ModelWeightNorm(rt->net.get()));
        },
        {"net"});

  ProgramInstance instance;
  instance.program = b.Build();
  instance.context = rt;
  return instance;
}

}  // namespace

ProgramFactory MakeWorkloadFactory(const WorkloadProfile& profile,
                                   uint32_t probes) {
  return [profile, probes]() { return BuildInstance(profile, probes); };
}

RecordOptions DefaultRecordOptions(const WorkloadProfile& profile,
                                   const std::string& run_prefix) {
  RecordOptions opts;
  opts.run_prefix = run_prefix;
  opts.workload = profile.name;
  opts.ckpt_shards = profile.ckpt_shards;
  opts.materializer.strategy = MaterializeStrategy::kFork;
  opts.materializer.costs = sim::PaperPlatformCosts();
  opts.adaptive.enabled = true;
  opts.adaptive.epsilon = 1.0 / 15.0;
  opts.nominal_checkpoint_bytes = profile.sim_ckpt_raw_bytes;
  opts.vanilla_runtime_seconds = profile.VanillaSeconds();
  return opts;
}

}  // namespace workloads
}  // namespace flor
