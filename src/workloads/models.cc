#include "workloads/models.h"

#include "common/strings.h"

namespace flor {
namespace workloads {

std::unique_ptr<nn::Module> BuildModel(const WorkloadProfile& profile,
                                       Rng* rng) {
  const std::string name = profile.name + "_net";
  if (profile.task_kind == data::Task::kText) {
    constexpr int64_t kEmbedDim = 8;
    auto seq = std::make_unique<nn::Sequential>(name);
    seq->Add(std::make_unique<nn::Embedding>(name + ".embed",
                                             profile.real_vocab, kEmbedDim,
                                             rng));
    const int64_t flat = profile.real_feature_dim * kEmbedDim;
    seq->Add(std::make_unique<nn::Linear>(name + ".fc0", flat,
                                          profile.real_hidden, rng));
    seq->Add(std::make_unique<nn::ReLU>(name + ".relu0"));
    seq->Add(std::make_unique<nn::Linear>(name + ".head",
                                          profile.real_hidden,
                                          profile.real_classes, rng));
    return seq;
  }
  if (profile.use_conv) {
    // 3x8x8 images -> conv -> classifier.
    auto seq = std::make_unique<nn::Sequential>(name);
    seq->Add(std::make_unique<nn::Unflatten>(name + ".unflatten",
                                             std::vector<int64_t>{3, 8, 8}));
    seq->Add(std::make_unique<nn::Conv2d>(name + ".conv0", 3, 8, 3, 1, rng));
    seq->Add(std::make_unique<nn::ReLU>(name + ".relu0"));
    seq->Add(std::make_unique<nn::Flatten>(name + ".flatten"));
    seq->Add(std::make_unique<nn::Linear>(name + ".head", 8 * 8 * 8,
                                          profile.real_classes, rng));
    return seq;
  }
  return nn::BuildMlp(name,
                      {profile.real_feature_dim, profile.real_hidden,
                       profile.real_hidden, profile.real_classes},
                      rng);
}

int FreezeBackbone(nn::Module* net) {
  int frozen = net->FreezeMatching(".embed");
  frozen += net->FreezeMatching(".fc0");
  return frozen;
}

std::unique_ptr<nn::Optimizer> BuildOptimizer(const WorkloadProfile& profile,
                                              nn::Module* net) {
  if (profile.fine_tune) {
    return std::make_unique<nn::Adam>(net, /*lr=*/1e-3f, 0.9f, 0.999f,
                                      1e-8f, /*weight_decay=*/0.01f,
                                      /*adamw=*/true);
  }
  return std::make_unique<nn::Sgd>(net, /*lr=*/0.05f, /*momentum=*/0.9f,
                                   /*weight_decay=*/5e-4f);
}

std::unique_ptr<nn::LrScheduler> BuildScheduler(
    const WorkloadProfile& profile, nn::Optimizer* optimizer) {
  if (profile.fine_tune) {
    return std::make_unique<nn::StepLr>(
        optimizer, std::max<int64_t>(1, profile.epochs / 3), 0.5f);
  }
  return std::make_unique<nn::CosineLr>(optimizer, profile.epochs);
}

}  // namespace workloads
}  // namespace flor
