#include "workloads/profiles.h"

namespace flor {
namespace workloads {

namespace {

constexpr uint64_t kMB = 1024ull * 1024ull;

std::vector<WorkloadProfile> BuildAll() {
  std::vector<WorkloadProfile> all;

  // --- RTE: GLUE fine-tuning, RoBERTa. Short epochs, enormous (Adam-
  // bearing) checkpoints: the adaptive-checkpointing stress case. With
  // Mi/Ci ≈ 2.2 the Joint Invariant admits a checkpoint roughly every 33
  // epochs → 6 checkpoints over 200 epochs (paper: 6 epoch-partitions).
  {
    WorkloadProfile p;
    p.name = "RTE";
    p.benchmark = "GLUE";
    p.task = "Recognizing Textual Entailment";
    p.model = "RoBERTa";
    p.dataset = "RTE";
    p.fine_tune = true;
    p.epochs = 200;
    p.sim_epoch_seconds = 11.1;
    p.sim_outer_seconds = 1.5;
    p.sim_preamble_seconds = 30;
    p.sim_ckpt_raw_bytes = 3853 * kMB;  // ~3.8 GB raw → ~2.3 GB stored
    p.task_kind = data::Task::kText;
    p.real_samples = 64;
    p.real_batch = 16;
    p.real_feature_dim = 12;  // sequence length
    p.real_classes = 2;
    p.real_hidden = 24;
    p.real_vocab = 96;
    p.seed = 1001;
    all.push_back(p);
  }

  // --- CoLA: GLUE fine-tuning, longer epochs than RTE but still
  // checkpoint-dominated (Mi/Ci ≈ 1.4 → sparse checkpoints).
  {
    WorkloadProfile p;
    p.name = "CoLA";
    p.benchmark = "GLUE";
    p.task = "Language Acceptability";
    p.model = "RoBERTa";
    p.dataset = "CoLA";
    p.fine_tune = true;
    p.epochs = 80;
    p.sim_epoch_seconds = 18.5;
    p.sim_outer_seconds = 1.0;
    p.sim_preamble_seconds = 30;
    p.sim_ckpt_raw_bytes = 4129 * kMB;
    p.task_kind = data::Task::kText;
    p.real_samples = 64;
    p.real_batch = 16;
    p.real_feature_dim = 10;
    p.real_classes = 2;
    p.real_hidden = 24;
    p.real_vocab = 96;
    p.seed = 1002;
    all.push_back(p);
  }

  // --- Cifr: SqueezeNet on Cifar100 from scratch. Small checkpoints,
  // memoized every epoch.
  {
    WorkloadProfile p;
    p.name = "Cifr";
    p.benchmark = "Classic CV";
    p.task = "Image Classification";
    p.model = "Squeezenet";
    p.dataset = "Cifar100";
    p.epochs = 200;
    p.sim_epoch_seconds = 25;
    p.sim_outer_seconds = 2;
    p.sim_preamble_seconds = 20;
    p.sim_ckpt_raw_bytes = static_cast<uint64_t>(5.6 * 1024) * 1024;
    p.task_kind = data::Task::kVision;
    p.real_samples = 96;
    p.real_batch = 16;
    p.real_feature_dim = 48;
    p.real_classes = 6;
    p.real_hidden = 32;
    p.seed = 1003;
    all.push_back(p);
  }

  // --- RsNt: ResNet-152 on Cifar100. The Fig. 13 scale-out workload
  // (200 epochs to parallelize); its dense checkpoint stream is also the
  // in-suite exerciser of the sharded store layout.
  {
    WorkloadProfile p;
    p.name = "RsNt";
    p.ckpt_shards = 4;
    p.benchmark = "Classic CV";
    p.task = "Image Classification";
    p.model = "ResNet-152";
    p.dataset = "Cifar100";
    p.epochs = 200;
    p.sim_epoch_seconds = 170;
    p.sim_outer_seconds = 5;
    p.sim_preamble_seconds = 30;
    p.sim_ckpt_raw_bytes = 320 * kMB;
    p.task_kind = data::Task::kVision;
    p.real_samples = 96;
    p.real_batch = 16;
    p.real_feature_dim = 48;
    p.real_classes = 6;
    p.real_hidden = 40;
    p.seed = 1004;
    all.push_back(p);
  }

  // --- Wiki: RoBERTa language-model pretraining.
  {
    WorkloadProfile p;
    p.name = "Wiki";
    p.benchmark = "GLUE";
    p.task = "Language Modeling";
    p.model = "RoBERTa";
    p.dataset = "Wiki";
    p.epochs = 12;
    p.sim_epoch_seconds = 4700;
    p.sim_outer_seconds = 10;
    p.sim_preamble_seconds = 300;
    p.sim_ckpt_raw_bytes = 1930 * kMB;
    p.task_kind = data::Task::kText;
    p.real_samples = 64;
    p.real_batch = 16;
    p.real_feature_dim = 16;
    p.real_classes = 8;
    p.real_hidden = 32;
    p.real_vocab = 128;
    p.seed = 1005;
    all.push_back(p);
  }

  // --- Jasp: Jasper speech recognition (MLPerf).
  {
    WorkloadProfile p;
    p.name = "Jasp";
    p.benchmark = "MLPerf";
    p.task = "Speech Recognition";
    p.model = "Jasper";
    p.dataset = "LibriSpeech";
    p.epochs = 4;
    p.sim_epoch_seconds = 12500;
    p.sim_outer_seconds = 120;
    p.sim_preamble_seconds = 400;
    p.sim_ckpt_raw_bytes = 826 * kMB;
    p.task_kind = data::Task::kAudio;
    p.real_samples = 64;
    p.real_batch = 16;
    p.real_feature_dim = 40;
    p.real_classes = 6;
    p.real_hidden = 32;
    p.seed = 1006;
    all.push_back(p);
  }

  // --- ImgN: SqueezeNet on ImageNet (conv stack in the tiny model).
  {
    WorkloadProfile p;
    p.name = "ImgN";
    p.benchmark = "Classic CV";
    p.task = "Image Classification";
    p.model = "Squeezenet";
    p.dataset = "ImageNet";
    p.epochs = 8;
    p.sim_epoch_seconds = 5300;
    p.sim_outer_seconds = 180;
    p.sim_preamble_seconds = 600;
    p.sim_ckpt_raw_bytes = static_cast<uint64_t>(10.3 * 1024) * 1024;
    p.task_kind = data::Task::kVision;
    p.real_samples = 64;
    p.real_batch = 16;
    p.real_feature_dim = 3 * 8 * 8;  // unflattened to 3x8x8 for conv
    p.real_classes = 6;
    p.real_hidden = 32;
    p.use_conv = true;
    p.seed = 1007;
    all.push_back(p);
  }

  // --- RnnT: RNN with attention, WMT16 translation (MLPerf).
  {
    WorkloadProfile p;
    p.name = "RnnT";
    p.benchmark = "MLPerf";
    p.task = "Language Translation";
    p.model = "RNN w/ Attention";
    p.dataset = "WMT16";
    p.epochs = 8;
    p.sim_epoch_seconds = 7800;
    p.sim_outer_seconds = 90;
    p.sim_preamble_seconds = 400;
    p.sim_ckpt_raw_bytes = 5987 * kMB;
    p.task_kind = data::Task::kText;
    p.real_samples = 64;
    p.real_batch = 16;
    p.real_feature_dim = 14;
    p.real_classes = 8;
    p.real_hidden = 32;
    p.real_vocab = 128;
    p.seed = 1008;
    all.push_back(p);
  }

  return all;
}

}  // namespace

const std::vector<WorkloadProfile>& AllWorkloads() {
  static const std::vector<WorkloadProfile> all = BuildAll();
  return all;
}

Result<WorkloadProfile> WorkloadByName(const std::string& name) {
  for (const auto& p : AllWorkloads())
    if (p.name == name) return p;
  return Status::NotFound("no such workload: " + name);
}

}  // namespace workloads
}  // namespace flor
