// Tiny real models for the evaluation workloads.

#ifndef FLOR_WORKLOADS_MODELS_H_
#define FLOR_WORKLOADS_MODELS_H_

#include <memory>

#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/scheduler.h"
#include "workloads/profiles.h"

namespace flor {
namespace workloads {

/// Builds the tiny stand-in model for a workload: an embedding classifier
/// for text, a conv stack when `use_conv`, an MLP otherwise.
std::unique_ptr<nn::Module> BuildModel(const WorkloadProfile& profile,
                                       Rng* rng);

/// Freezes the backbone for fine-tuning workloads (embedding table + first
/// projection), mirroring "the vast majority of weights are frozen in model
/// fine-tuning" (§5.3.4). Returns the number of frozen parameters.
int FreezeBackbone(nn::Module* net);

/// AdamW for fine-tuning, SGD+momentum for training from scratch.
std::unique_ptr<nn::Optimizer> BuildOptimizer(const WorkloadProfile& profile,
                                              nn::Module* net);

/// StepLR for fine-tuning, cosine annealing for training.
std::unique_ptr<nn::LrScheduler> BuildScheduler(
    const WorkloadProfile& profile, nn::Optimizer* optimizer);

}  // namespace workloads
}  // namespace flor

#endif  // FLOR_WORKLOADS_MODELS_H_
