// Canonical training-script factories for the evaluation workloads.
//
// Every workload shares the paper's script shape (Fig. 2/6):
//
//   trainloader = make_loader()              # preamble
//   num_batches = len(trainloader)
//   net = build_model()
//   freeze_encoder(net)                      # fine-tune workloads only
//   optimizer = make_optimizer(net)
//   scheduler = make_scheduler(optimizer)
//   for e in range(EPOCHS):                  # main loop (Flor generator)
//       for i in range(num_batches):         # training loop (SkipBlock)
//           optimizer.zero_grad()
//           batch, labels = fetch_batch(trainloader, e, i)
//           preds = forward(net, batch)
//           loss, grad = criterion(preds, labels)
//           grad.backward(net)
//           optimizer.step()
//           flor.log("loss", loss)
//           [kProbeInner: flor.log("grad_norm", ...)]
//       scheduler.step()
//       test_acc = evaluate(net, e)
//       flor.log("test_acc", test_acc)
//       save_checkpoint(net)                 # rule-5: refuses the main loop
//       [kProbeOuter: flor.log("weight_norm", ...)]
//   flor.log("final_weight_norm", ...)
//
// The static analysis yields changeset {optimizer} for the training loop
// (batch/labels/preds/loss/grad are loop-scoped), and runtime augmentation
// adds net — exactly the worked example of paper §5.2.1.

#ifndef FLOR_WORKLOADS_PROGRAMS_H_
#define FLOR_WORKLOADS_PROGRAMS_H_

#include <cstdint>

#include "flor/record.h"
#include "flor/skipblock.h"
#include "workloads/models.h"

namespace flor {
namespace workloads {

/// Hindsight-probe placements for the benchmark harnesses.
enum ProbeFlags : uint32_t {
  kProbeNone = 0,
  /// Probe in the main-loop body (outside the training loop) — the
  /// partial-replay fast path (Fig. 12 top).
  kProbeOuter = 1u << 0,
  /// Probe inside the training loop — forces full re-execution of the
  /// training loops on replay (Fig. 12 bottom).
  kProbeInner = 1u << 1,
};

/// Everything the semantic callbacks touch; owned by the ProgramInstance
/// context so replay workers rebuild it from scratch in the preamble.
struct WorkloadRuntime {
  WorkloadProfile profile;
  Rng rng;
  std::unique_ptr<data::SyntheticDataset> dataset;
  std::unique_ptr<data::DataLoader> loader;
  std::unique_ptr<data::SyntheticDataset> eval_dataset;
  std::unique_ptr<nn::Module> net;
  std::unique_ptr<nn::Optimizer> optimizer;
  std::unique_ptr<nn::LrScheduler> scheduler;

  explicit WorkloadRuntime(WorkloadProfile p)
      : profile(std::move(p)), rng(profile.seed) {}
};

/// Builds a factory producing fresh instances of the workload's training
/// script, with the requested probes inserted.
ProgramFactory MakeWorkloadFactory(const WorkloadProfile& profile,
                                   uint32_t probes);

/// Record options preconfigured for a workload on the paper's platform:
/// Fork materialization, adaptive checkpointing at ε = 6.67%, and the
/// profile's nominal checkpoint size for simulated costs.
RecordOptions DefaultRecordOptions(const WorkloadProfile& profile,
                                   const std::string& run_prefix);

}  // namespace workloads
}  // namespace flor

#endif  // FLOR_WORKLOADS_PROGRAMS_H_
