// The eight evaluation workloads (paper Table 3), each with:
//   * paper-scale simulated parameters — epoch compute time, unskippable
//     per-epoch work, preamble time, and checkpoint sizes — calibrated so
//     the simulated vanilla runtimes and Table 4 storage land near the
//     paper's reported scales (see EXPERIMENTS.md for the calibration
//     notes and known deviations);
//   * tiny *real* model/dataset parameters that the interpreter actually
//     trains, so record/replay correctness is exercised on genuine state.

#ifndef FLOR_WORKLOADS_PROFILES_H_
#define FLOR_WORKLOADS_PROFILES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "data/dataset.h"

namespace flor {
namespace workloads {

/// One Table 3 row plus calibration and tiny-model parameters.
struct WorkloadProfile {
  // Table 3 columns.
  std::string name;       ///< "RTE", "CoLA", ...
  std::string benchmark;  ///< "GLUE", "Classic CV", "MLPerf"
  std::string task;
  std::string model;
  std::string dataset;
  bool fine_tune = false;
  int64_t epochs = 0;

  // Paper-scale simulated timing/size parameters.
  double sim_epoch_seconds = 0;     ///< nested training-loop compute/epoch
  double sim_outer_seconds = 0;     ///< unskippable main-body work/epoch
  double sim_preamble_seconds = 0;  ///< imports + data loading
  uint64_t sim_ckpt_raw_bytes = 0;  ///< raw changeset bytes per checkpoint
  double sim_compress_ratio = 0.62; ///< stored/raw (gzip stand-in)

  /// Real wall-clock cost per training batch (seconds): blocking device
  /// time charged as a bounded wait when replaying on a wall clock (the
  /// exec::ReplayExecutor benches). 0 = pure host compute.
  double wall_batch_seconds = 0;

  /// Checkpoint-store shard count for record runs of this workload
  /// (recorded in the manifest; replay follows it). 1 = legacy flat
  /// layout, which keeps Table 4 bytes/cost exactly comparable to the
  /// paper platform; benches sweep higher counts explicitly.
  int ckpt_shards = 1;

  // Tiny real-execution parameters.
  data::Task task_kind = data::Task::kVision;
  int64_t real_samples = 128;
  int64_t real_batch = 16;
  int64_t real_feature_dim = 32;
  int64_t real_classes = 4;
  int64_t real_hidden = 32;
  int64_t real_vocab = 64;
  bool use_conv = false;           ///< conv stack instead of MLP (ImgN)
  uint64_t seed = 42;

  int64_t real_batches_per_epoch() const { return real_samples / real_batch; }

  /// Simulated vanilla training runtime (the Fig. 11 baseline bar).
  double VanillaSeconds() const {
    return sim_preamble_seconds +
           static_cast<double>(epochs) *
               (sim_epoch_seconds + sim_outer_seconds);
  }

  /// Nominal stored (compressed) bytes per checkpoint — Table 4 unit.
  uint64_t NominalStoredBytes() const {
    return static_cast<uint64_t>(
        static_cast<double>(sim_ckpt_raw_bytes) * sim_compress_ratio);
  }
};

/// All eight workloads, in Table 3 order.
const std::vector<WorkloadProfile>& AllWorkloads();

/// Lookup by name ("RTE").
Result<WorkloadProfile> WorkloadByName(const std::string& name);

}  // namespace workloads
}  // namespace flor

#endif  // FLOR_WORKLOADS_PROFILES_H_
