#include "env/background_queue.h"

namespace flor {

BackgroundQueue::BackgroundQueue()
    : worker_([this] { WorkerLoop(); }) {}

BackgroundQueue::~BackgroundQueue() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  worker_.join();
}

void BackgroundQueue::Submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(std::move(job));
    ++in_flight_;
    if (in_flight_ > max_in_flight_) max_in_flight_ = in_flight_;
  }
  cv_.notify_one();
}

void BackgroundQueue::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void BackgroundQueue::WaitUntilInFlightBelow(size_t n) {
  if (n == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this, n] { return in_flight_ < n; });
}

size_t BackgroundQueue::InFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

size_t BackgroundQueue::MaxInFlight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_in_flight_;
}

void BackgroundQueue::WorkerLoop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !jobs_.empty(); });
      if (jobs_.empty()) {
        if (shutdown_) return;
        continue;
      }
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      // Every completion may unblock a bounded producer, not just the
      // final one unblocking Drain().
      drained_cv_.notify_all();
    }
  }
}

}  // namespace flor
