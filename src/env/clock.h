// Clock abstraction (RocksDB Env idiom).
//
// All timing in florcpp flows through `Clock` so the whole system can run
// against either the wall clock or a discrete-event simulated clock. The
// paper's experiments involve hours of GPU training; the simulated clock lets
// the benchmark harnesses reproduce those time scales deterministically in
// milliseconds of real time (see DESIGN.md §2, "Calibration, not
// fabrication").

#ifndef FLOR_ENV_CLOCK_H_
#define FLOR_ENV_CLOCK_H_

#include <cstdint>

namespace flor {

/// Monotonic time source measured in microseconds.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since an arbitrary epoch.
  virtual uint64_t NowMicros() const = 0;

  /// Advances time by `micros`. On a wall clock this sleeps (bounded); on a
  /// simulated clock it is instantaneous.
  virtual void AdvanceMicros(uint64_t micros) = 0;

  /// True for simulated clocks; lets components decide whether modeled
  /// costs should be charged (sim) or simply measured (wall).
  virtual bool is_simulated() const = 0;

  double NowSeconds() const { return NowMicros() * 1e-6; }
};

/// Real wall clock (std::chrono::steady_clock). AdvanceMicros sleeps.
class WallClock : public Clock {
 public:
  uint64_t NowMicros() const override;
  void AdvanceMicros(uint64_t micros) override;
  bool is_simulated() const override { return false; }
};

/// Deterministic simulated clock for the cluster simulator and benches.
class SimClock : public Clock {
 public:
  explicit SimClock(uint64_t start_micros = 0) : now_(start_micros) {}

  uint64_t NowMicros() const override { return now_; }
  void AdvanceMicros(uint64_t micros) override { now_ += micros; }
  bool is_simulated() const override { return true; }

  /// Jump to an absolute time; no-op if `micros` is in the past (discrete-
  /// event "advance to next event" semantics).
  void AdvanceTo(uint64_t micros) {
    if (micros > now_) now_ = micros;
  }
  void Reset(uint64_t micros = 0) { now_ = micros; }

 private:
  uint64_t now_;
};

/// Converts seconds to the integer microsecond domain used by Clock.
inline uint64_t SecondsToMicros(double seconds) {
  return static_cast<uint64_t>(seconds * 1e6 + 0.5);
}

}  // namespace flor

#endif  // FLOR_ENV_CLOCK_H_
