#include "env/clock.h"

#include <chrono>
#include <thread>

namespace flor {

uint64_t WallClock::NowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void WallClock::AdvanceMicros(uint64_t micros) {
  // Cap real sleeps: tests should never block for long on a wall clock.
  constexpr uint64_t kMaxSleepMicros = 100'000;
  std::this_thread::sleep_for(
      std::chrono::microseconds(micros < kMaxSleepMicros ? micros
                                                         : kMaxSleepMicros));
}

}  // namespace flor
