// Background work queue — the C++ analog of the paper's fork()-based
// background materialization (§5.1).
//
// In Python, Flor forks a child process per checkpoint batch so that
// serialization + I/O run off the training thread with copy-on-write
// concurrency. Here the equivalent is: the caller snapshots state (the COW
// analog, charged to the main thread), then enqueues a job; a worker thread
// performs serialization and I/O.
//
// The queue also keeps a count of in-flight jobs so tests can verify the
// paper's observation that batching keeps at most ~2 live children.

#ifndef FLOR_ENV_BACKGROUND_QUEUE_H_
#define FLOR_ENV_BACKGROUND_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>

namespace flor {

/// Single-worker FIFO job queue with drain support.
class BackgroundQueue {
 public:
  BackgroundQueue();
  ~BackgroundQueue();

  BackgroundQueue(const BackgroundQueue&) = delete;
  BackgroundQueue& operator=(const BackgroundQueue&) = delete;

  /// Enqueues a job; returns immediately.
  void Submit(std::function<void()> job);

  /// Blocks until all previously submitted jobs have completed.
  void Drain();

  /// Blocks until fewer than `n` jobs are in flight — bounded-queue
  /// backpressure for producers (the spooler caps how many batch jobs it
  /// keeps queued behind the single worker). `n` == 0 returns immediately.
  void WaitUntilInFlightBelow(size_t n);

  /// Jobs submitted but not yet finished.
  size_t InFlight() const;

  /// High-water mark of InFlight() over the queue's lifetime.
  size_t MaxInFlight() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::deque<std::function<void()>> jobs_;
  size_t in_flight_ = 0;
  size_t max_in_flight_ = 0;
  bool shutdown_ = false;
  std::thread worker_;
};

}  // namespace flor

#endif  // FLOR_ENV_BACKGROUND_QUEUE_H_
