#include "env/result_file.h"

#include "common/strings.h"
#include "serialize/frame.h"

namespace flor {

namespace {

constexpr const char kMagic[] = "florres1";

}  // namespace

std::string EncodeResultSections(const std::vector<std::string>& sections) {
  std::string out;
  AppendFrame(&out, StrCat(kMagic, "\t", sections.size()));
  for (const std::string& section : sections) AppendFrame(&out, section);
  return out;
}

Result<std::vector<std::string>> DecodeResultSections(
    const std::string& data) {
  FLOR_ASSIGN_OR_RETURN(std::vector<std::string> frames, ReadFrames(data));
  if (frames.empty())
    return Status::Corruption("result file: missing header frame");
  const std::vector<std::string> header = StrSplit(frames[0], '\t');
  if (header.size() != 2 || header[0] != kMagic)
    return Status::Corruption("result file: bad header magic");
  uint64_t declared = 0;
  if (!ParseU64(header[1], &declared))
    return Status::Corruption("result file: unparseable section count");
  if (declared != frames.size() - 1) {
    return Status::Corruption(
        StrCat("result file: header declares ", declared,
               " sections but ", frames.size() - 1,
               " are present (truncated at a frame boundary?)"));
  }
  frames.erase(frames.begin());
  return frames;
}

Status WriteResultFile(FileSystem* fs, const std::string& path,
                       const std::vector<std::string>& sections) {
  return fs->WriteFile(path, EncodeResultSections(sections));
}

Result<std::vector<std::string>> ReadResultFile(const FileSystem* fs,
                                                const std::string& path) {
  FLOR_ASSIGN_OR_RETURN(std::string data, fs->ReadFile(path));
  return DecodeResultSections(data);
}

}  // namespace flor
