// Posix-backed scratch directories.
//
// The process-level replay executor needs a real on-disk rendezvous point:
// forked workers write result files there, the parent reads them back
// after waitpid. ScratchDir wraps mkdtemp-created directories with RAII
// cleanup so a failed replay never litters /tmp, while set_keep(true)
// preserves the directory for post-mortems.

#ifndef FLOR_ENV_SCRATCH_H_
#define FLOR_ENV_SCRATCH_H_

#include <string>

#include "common/status.h"

namespace flor {

/// A uniquely named directory on the real filesystem, removed (recursively)
/// on destruction unless kept.
class ScratchDir {
 public:
  /// Creates `<base>/<tag>-XXXXXX` via mkdtemp. `base` defaults to $TMPDIR
  /// (or /tmp); it is created if missing.
  static Result<ScratchDir> Create(const std::string& tag,
                                   std::string base = "");

  ScratchDir(ScratchDir&& other) noexcept;
  ScratchDir& operator=(ScratchDir&& other) noexcept;
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;
  ~ScratchDir();

  const std::string& path() const { return path_; }

  /// Keep the directory on destruction (crash-debugging aid).
  void set_keep(bool keep) { keep_ = keep; }

 private:
  explicit ScratchDir(std::string path) : path_(std::move(path)) {}

  /// Deletes the directory (unless kept) and resets to the moved-out
  /// state.
  void Remove();

  std::string path_;  // empty after move-out
  bool keep_ = false;
};

}  // namespace flor

#endif  // FLOR_ENV_SCRATCH_H_
