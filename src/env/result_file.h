// Sectioned result files — how a replay worker process reports back.
//
// The process-level replay executor (exec/process_executor.h) forks one
// worker per log partition; each worker hands its merged-log fragment and
// stats to the parent through a file in a posix scratch directory. That
// file must be tamper-evident: a worker SIGKILLed mid-write, a truncated
// disk, or a flipped byte must surface as Corruption on read — never as a
// silently merged garbage fragment.
//
// Layout (all length-prefixed, CRC-framed via serialize/frame.h):
//   frame 0  header  "florres1\t<n>"   (n = number of payload sections)
//   frame 1..n       one payload section each
//
// The header count makes truncation at an exact frame boundary — the one
// cut a bare frame stream cannot see — detectable; every other cut or
// mutation is caught by the per-frame CRC.

#ifndef FLOR_ENV_RESULT_FILE_H_
#define FLOR_ENV_RESULT_FILE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "env/filesystem.h"

namespace flor {

/// Encodes `sections` as a header frame plus one frame per section.
std::string EncodeResultSections(const std::vector<std::string>& sections);

/// Decodes a result file back into its sections. Any truncation (including
/// an empty file or a cut at a frame boundary), bad magic, or byte
/// mutation fails with Corruption.
Result<std::vector<std::string>> DecodeResultSections(
    const std::string& data);

/// Atomically writes `sections` as one result file at `path`.
Status WriteResultFile(FileSystem* fs, const std::string& path,
                       const std::vector<std::string>& sections);

/// Reads and decodes the result file at `path`. NotFound when the file was
/// never (or not yet durably) written; Corruption when it is torn.
Result<std::vector<std::string>> ReadResultFile(const FileSystem* fs,
                                                const std::string& path);

}  // namespace flor

#endif  // FLOR_ENV_RESULT_FILE_H_
