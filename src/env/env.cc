#include "env/env.h"

namespace flor {

std::unique_ptr<Env> Env::NewSimEnv(uint64_t start_micros) {
  return std::make_unique<Env>(std::make_unique<SimClock>(start_micros),
                               std::make_unique<MemFileSystem>());
}

std::unique_ptr<Env> Env::NewPosixEnv(const std::string& root) {
  return std::make_unique<Env>(std::make_unique<WallClock>(),
                               std::make_unique<PosixFileSystem>(root));
}

}  // namespace flor
