// Minimal filesystem abstraction (RocksDB Env idiom).
//
// Checkpoints, recorded source versions, and logs are stored through this
// interface. `MemFileSystem` keeps everything in memory for deterministic
// tests and benches; `PosixFileSystem` writes real files (used by examples).
// Paths are flat, '/'-separated strings; directories are implicit (an object
// store model, matching the paper's S3 target).

#ifndef FLOR_ENV_FILESYSTEM_H_
#define FLOR_ENV_FILESYSTEM_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace flor {

/// Abstract byte-oriented object store.
///
/// Implementations must be safe for concurrent use from multiple threads:
/// the parallel replay executor shares one FileSystem across all worker
/// threads (every worker reads checkpoints, logs, and the manifest from the
/// same store, exactly like the paper's shared S3 bucket).
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Atomically creates or replaces the object at `path`.
  virtual Status WriteFile(const std::string& path,
                           const std::string& data) = 0;

  /// Appends to the object at `path`, creating it if absent.
  virtual Status AppendFile(const std::string& path,
                            const std::string& data) = 0;

  /// Reads the whole object.
  virtual Result<std::string> ReadFile(const std::string& path) const = 0;

  virtual bool Exists(const std::string& path) const = 0;
  virtual Result<uint64_t> FileSize(const std::string& path) const = 0;
  virtual Status DeleteFile(const std::string& path) = 0;

  /// All object paths with the given prefix, sorted lexicographically.
  virtual std::vector<std::string> ListPrefix(
      const std::string& prefix) const = 0;

  /// Sum of sizes of all objects under `prefix`.
  uint64_t TotalBytesUnder(const std::string& prefix) const;
};

/// In-memory filesystem; thread-safe. Reads take a shared lock so
/// concurrent replay workers do not serialize on each other's checkpoint
/// loads; writes are exclusive. Also tracks write statistics used by the
/// checkpoint spooler.
class MemFileSystem : public FileSystem {
 public:
  Status WriteFile(const std::string& path, const std::string& data) override;
  Status AppendFile(const std::string& path,
                    const std::string& data) override;
  Result<std::string> ReadFile(const std::string& path) const override;
  bool Exists(const std::string& path) const override;
  Result<uint64_t> FileSize(const std::string& path) const override;
  Status DeleteFile(const std::string& path) override;
  std::vector<std::string> ListPrefix(
      const std::string& prefix) const override;

  /// Total bytes ever written (for I/O accounting in tests).
  uint64_t bytes_written() const;

  /// Corrupts one byte at `offset` in `path` — failure-injection hook for
  /// checksum tests.
  Status CorruptByte(const std::string& path, size_t offset);

 private:
  mutable std::shared_mutex mu_;
  std::map<std::string, std::string> files_;
  uint64_t bytes_written_ = 0;
};

/// Pass-through FileSystem that injects write failures on demand — the
/// failure hook the spool/materializer error-path tests use to model a
/// flaky object store. Thread-safe (injection state has its own lock; all
/// I/O forwards to the base filesystem, which is itself thread-safe).
class FaultInjectionFileSystem : public FileSystem {
 public:
  /// Does not own `base`.
  explicit FaultInjectionFileSystem(FileSystem* base) : base_(base) {}

  /// Arms the injector: the next `count` WriteFile/AppendFile calls whose
  /// path contains `path_substr` (every write when empty) fail with
  /// IOError before reaching the base filesystem. Calls re-arm (the counts
  /// do not accumulate).
  void InjectWriteFailures(int count, std::string path_substr = "");

  /// Same for DeleteFile — the checkpoint-GC failure paths (a flaky object
  /// store refusing deletes must leak orphans, never break the manifest).
  /// Armed independently of write failures.
  void InjectDeleteFailures(int count, std::string path_substr = "");

  /// Writes + deletes failed by injection so far.
  int64_t failures_injected() const;

  Status WriteFile(const std::string& path, const std::string& data) override;
  Status AppendFile(const std::string& path,
                    const std::string& data) override;
  Result<std::string> ReadFile(const std::string& path) const override;
  bool Exists(const std::string& path) const override;
  Result<uint64_t> FileSize(const std::string& path) const override;
  Status DeleteFile(const std::string& path) override;
  std::vector<std::string> ListPrefix(
      const std::string& prefix) const override;

 private:
  /// Consumes one armed failure if `path` matches; true = fail this write.
  bool ShouldFail(const std::string& path);
  /// Same for deletes.
  bool ShouldFailDelete(const std::string& path);

  FileSystem* base_;
  mutable std::mutex inject_mu_;
  int remaining_failures_ = 0;
  std::string path_substr_;
  int remaining_delete_failures_ = 0;
  std::string delete_path_substr_;
  int64_t failures_injected_ = 0;
};

/// Real filesystem rooted at a directory. Creates parent directories on
/// demand; ListPrefix walks the tree under the root.
class PosixFileSystem : public FileSystem {
 public:
  /// `root` must name a directory; it is created if missing.
  explicit PosixFileSystem(std::string root);

  Status WriteFile(const std::string& path, const std::string& data) override;
  Status AppendFile(const std::string& path,
                    const std::string& data) override;
  Result<std::string> ReadFile(const std::string& path) const override;
  bool Exists(const std::string& path) const override;
  Result<uint64_t> FileSize(const std::string& path) const override;
  Status DeleteFile(const std::string& path) override;
  std::vector<std::string> ListPrefix(
      const std::string& prefix) const override;

 private:
  std::string Resolve(const std::string& path) const;
  std::string root_;
};

}  // namespace flor

#endif  // FLOR_ENV_FILESYSTEM_H_
