#include "env/filesystem.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <shared_mutex>

#include "common/strings.h"

namespace stdfs = std::filesystem;

namespace flor {

uint64_t FileSystem::TotalBytesUnder(const std::string& prefix) const {
  uint64_t total = 0;
  for (const auto& p : ListPrefix(prefix)) {
    auto sz = FileSize(p);
    if (sz.ok()) total += *sz;
  }
  return total;
}

// ---------------------------------------------------------------- MemFS ---

Status MemFileSystem::WriteFile(const std::string& path,
                                const std::string& data) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  bytes_written_ += data.size();
  files_[path] = data;
  return Status::OK();
}

Status MemFileSystem::AppendFile(const std::string& path,
                                 const std::string& data) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  bytes_written_ += data.size();
  files_[path] += data;
  return Status::OK();
}

Result<std::string> MemFileSystem::ReadFile(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return it->second;
}

bool MemFileSystem::Exists(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return files_.count(path) > 0;
}

Result<uint64_t> MemFileSystem::FileSize(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  return static_cast<uint64_t>(it->second.size());
}

Status MemFileSystem::DeleteFile(const std::string& path) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (files_.erase(path) == 0)
    return Status::NotFound("no such file: " + path);
  return Status::OK();
}

std::vector<std::string> MemFileSystem::ListPrefix(
    const std::string& prefix) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  for (auto it = files_.lower_bound(prefix); it != files_.end(); ++it) {
    if (!StartsWith(it->first, prefix)) break;
    out.push_back(it->first);
  }
  return out;
}

uint64_t MemFileSystem::bytes_written() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return bytes_written_;
}

Status MemFileSystem::CorruptByte(const std::string& path, size_t offset) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) return Status::NotFound("no such file: " + path);
  if (offset >= it->second.size())
    return Status::OutOfRange("offset beyond file size");
  it->second[offset] = static_cast<char>(it->second[offset] ^ 0xff);
  return Status::OK();
}

// ------------------------------------------------------ FaultInjection ---

void FaultInjectionFileSystem::InjectWriteFailures(int count,
                                                   std::string path_substr) {
  std::lock_guard<std::mutex> lock(inject_mu_);
  remaining_failures_ = count;
  path_substr_ = std::move(path_substr);
}

void FaultInjectionFileSystem::InjectDeleteFailures(int count,
                                                    std::string path_substr) {
  std::lock_guard<std::mutex> lock(inject_mu_);
  remaining_delete_failures_ = count;
  delete_path_substr_ = std::move(path_substr);
}

int64_t FaultInjectionFileSystem::failures_injected() const {
  std::lock_guard<std::mutex> lock(inject_mu_);
  return failures_injected_;
}

bool FaultInjectionFileSystem::ShouldFail(const std::string& path) {
  std::lock_guard<std::mutex> lock(inject_mu_);
  if (remaining_failures_ <= 0) return false;
  if (!path_substr_.empty() && path.find(path_substr_) == std::string::npos)
    return false;
  --remaining_failures_;
  ++failures_injected_;
  return true;
}

bool FaultInjectionFileSystem::ShouldFailDelete(const std::string& path) {
  std::lock_guard<std::mutex> lock(inject_mu_);
  if (remaining_delete_failures_ <= 0) return false;
  if (!delete_path_substr_.empty() &&
      path.find(delete_path_substr_) == std::string::npos) {
    return false;
  }
  --remaining_delete_failures_;
  ++failures_injected_;
  return true;
}

Status FaultInjectionFileSystem::WriteFile(const std::string& path,
                                           const std::string& data) {
  if (ShouldFail(path))
    return Status::IOError("injected write failure: " + path);
  return base_->WriteFile(path, data);
}

Status FaultInjectionFileSystem::AppendFile(const std::string& path,
                                            const std::string& data) {
  if (ShouldFail(path))
    return Status::IOError("injected append failure: " + path);
  return base_->AppendFile(path, data);
}

Result<std::string> FaultInjectionFileSystem::ReadFile(
    const std::string& path) const {
  return base_->ReadFile(path);
}

bool FaultInjectionFileSystem::Exists(const std::string& path) const {
  return base_->Exists(path);
}

Result<uint64_t> FaultInjectionFileSystem::FileSize(
    const std::string& path) const {
  return base_->FileSize(path);
}

Status FaultInjectionFileSystem::DeleteFile(const std::string& path) {
  if (ShouldFailDelete(path))
    return Status::IOError("injected delete failure: " + path);
  return base_->DeleteFile(path);
}

std::vector<std::string> FaultInjectionFileSystem::ListPrefix(
    const std::string& prefix) const {
  return base_->ListPrefix(prefix);
}

// -------------------------------------------------------------- PosixFS ---

PosixFileSystem::PosixFileSystem(std::string root) : root_(std::move(root)) {
  std::error_code ec;
  stdfs::create_directories(root_, ec);
}

std::string PosixFileSystem::Resolve(const std::string& path) const {
  return root_ + "/" + path;
}

Status PosixFileSystem::WriteFile(const std::string& path,
                                  const std::string& data) {
  const std::string full = Resolve(path);
  std::error_code ec;
  stdfs::create_directories(stdfs::path(full).parent_path(), ec);
  // Write to a temp file then rename for atomicity.
  const std::string tmp = full + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      return Status::IOError(StrCat("cannot open for write: ", full, ": ",
                                    std::strerror(errno)));
    }
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) {
      return Status::IOError(
          StrCat("short write: ", full, ": ", std::strerror(errno)));
    }
  }
  stdfs::rename(tmp, full, ec);
  if (ec) {
    return Status::IOError(
        StrCat("rename failed: ", full, ": ", ec.message()));
  }
  return Status::OK();
}

Status PosixFileSystem::AppendFile(const std::string& path,
                                   const std::string& data) {
  const std::string full = Resolve(path);
  std::error_code ec;
  stdfs::create_directories(stdfs::path(full).parent_path(), ec);
  std::ofstream out(full, std::ios::binary | std::ios::app);
  if (!out) {
    return Status::IOError(StrCat("cannot open for append: ", full, ": ",
                                  std::strerror(errno)));
  }
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  if (!out) {
    return Status::IOError(
        StrCat("short append: ", full, ": ", std::strerror(errno)));
  }
  return Status::OK();
}

Result<std::string> PosixFileSystem::ReadFile(const std::string& path) const {
  std::ifstream in(Resolve(path), std::ios::binary);
  if (!in) return Status::NotFound("no such file: " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return data;
}

bool PosixFileSystem::Exists(const std::string& path) const {
  return stdfs::exists(Resolve(path));
}

Result<uint64_t> PosixFileSystem::FileSize(const std::string& path) const {
  std::error_code ec;
  auto sz = stdfs::file_size(Resolve(path), ec);
  if (ec) return Status::NotFound("no such file: " + path);
  return static_cast<uint64_t>(sz);
}

Status PosixFileSystem::DeleteFile(const std::string& path) {
  std::error_code ec;
  if (!stdfs::remove(Resolve(path), ec))
    return Status::NotFound("no such file: " + path);
  return Status::OK();
}

std::vector<std::string> PosixFileSystem::ListPrefix(
    const std::string& prefix) const {
  std::vector<std::string> out;
  std::error_code ec;
  for (auto it = stdfs::recursive_directory_iterator(root_, ec);
       it != stdfs::recursive_directory_iterator(); ++it) {
    if (!it->is_regular_file()) continue;
    std::string rel =
        stdfs::relative(it->path(), root_, ec).generic_string();
    if (StartsWith(rel, prefix)) out.push_back(rel);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace flor
