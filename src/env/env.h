// Env — the bundle of platform services every florcpp component runs
// against (RocksDB idiom). An Env owns a Clock and a FileSystem; tests and
// benches construct a simulated Env, examples construct a real one.

#ifndef FLOR_ENV_ENV_H_
#define FLOR_ENV_ENV_H_

#include <memory>
#include <string>

#include "env/clock.h"
#include "env/filesystem.h"

namespace flor {

/// Platform service bundle. Non-owning consumers take `Env*`.
class Env {
 public:
  /// Owning constructor.
  Env(std::unique_ptr<Clock> clock, std::unique_ptr<FileSystem> fs)
      : owned_clock_(std::move(clock)), owned_fs_(std::move(fs)),
        clock_ptr_(owned_clock_.get()), fs_ptr_(owned_fs_.get()) {}

  /// Non-owning constructor — used by parallel replay workers that each own
  /// a simulated clock but share one filesystem (the checkpoint store).
  Env(Clock* clock, FileSystem* fs) : clock_ptr_(clock), fs_ptr_(fs) {}

  /// Mixed: owns the clock, borrows the filesystem.
  Env(std::unique_ptr<Clock> clock, FileSystem* fs)
      : owned_clock_(std::move(clock)), clock_ptr_(owned_clock_.get()),
        fs_ptr_(fs) {}

  Clock* clock() { return clock_ptr_; }
  const Clock* clock() const { return clock_ptr_; }
  FileSystem* fs() { return fs_ptr_; }
  const FileSystem* fs() const { return fs_ptr_; }

  /// Simulated clock + in-memory filesystem (deterministic).
  static std::unique_ptr<Env> NewSimEnv(uint64_t start_micros = 0);

  /// Wall clock + posix filesystem rooted at `root`.
  static std::unique_ptr<Env> NewPosixEnv(const std::string& root);

  /// Convenience downcast; null if the clock is not simulated.
  SimClock* sim_clock() {
    return clock_ptr_->is_simulated() ? static_cast<SimClock*>(clock_ptr_)
                                      : nullptr;
  }

 private:
  std::unique_ptr<Clock> owned_clock_;
  std::unique_ptr<FileSystem> owned_fs_;
  Clock* clock_ptr_;
  FileSystem* fs_ptr_;
};

}  // namespace flor

#endif  // FLOR_ENV_ENV_H_
