#include "env/scratch.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "common/strings.h"

namespace flor {

Result<ScratchDir> ScratchDir::Create(const std::string& tag,
                                      std::string base) {
  if (base.empty()) {
    const char* tmpdir = std::getenv("TMPDIR");
    base = (tmpdir != nullptr && tmpdir[0] != '\0') ? tmpdir : "/tmp";
  }
  std::error_code ec;
  std::filesystem::create_directories(base, ec);
  if (ec) {
    return Status::IOError(
        StrCat("scratch base ", base, ": ", ec.message()));
  }
  std::string tmpl =
      (std::filesystem::path(base) / (tag + "-XXXXXX")).string();
  if (::mkdtemp(tmpl.data()) == nullptr) {
    return Status::IOError(
        StrCat("mkdtemp ", tmpl, " failed: ", std::strerror(errno)));
  }
  return ScratchDir(std::move(tmpl));
}

ScratchDir::ScratchDir(ScratchDir&& other) noexcept
    : path_(std::move(other.path_)), keep_(other.keep_) {
  other.path_.clear();
}

ScratchDir& ScratchDir::operator=(ScratchDir&& other) noexcept {
  if (this != &other) {
    Remove();
    path_ = std::move(other.path_);
    keep_ = other.keep_;
    other.path_.clear();
  }
  return *this;
}

ScratchDir::~ScratchDir() { Remove(); }

void ScratchDir::Remove() {
  if (path_.empty() || keep_) return;
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best effort
  path_.clear();
}

}  // namespace flor
