#include "flor/replay_plan.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <set>

#include "common/strings.h"
#include "env/result_file.h"
#include "flor/instrument.h"
#include "flor/partition.h"

namespace flor {

std::vector<int64_t> CheckpointBoundaryEpochs(ir::Program* program,
                                              const Manifest& manifest) {
  // Intersect checkpointed epochs across all skippable epoch-level loops:
  // a worker can start at epoch e+1 only if *every* such loop restored at
  // epoch e reconstructs the state.
  std::vector<ir::Loop*> loops = SkippableEpochLoops(program);
  std::vector<int64_t> out;
  bool first = true;
  for (ir::Loop* loop : loops) {
    std::vector<int64_t> epochs = manifest.EpochsWithCheckpoint(loop->id());
    if (first) {
      out = std::move(epochs);
      first = false;
    } else {
      std::vector<int64_t> merged;
      std::set_intersection(out.begin(), out.end(), epochs.begin(),
                            epochs.end(), std::back_inserter(merged));
      out = std::move(merged);
    }
  }
  return out;
}

Result<int> PlanActiveWorkers(const ProgramFactory& factory,
                              const FileSystem* fs,
                              const ClusterPlanOptions& options) {
  if (!options.sample_epochs.empty()) return 1;
  if (options.num_workers <= 1) return 1;

  FLOR_ASSIGN_OR_RETURN(ProgramInstance instance, factory());
  InstrumentProgram(instance.program.get());
  ir::Loop* main_loop = instance.program->MainLoop();
  if (main_loop == nullptr) return 1;
  const int64_t epochs = main_loop->iter().fixed_count;
  if (epochs < 0) return options.num_workers;  // dynamic trip count

  RunPaths paths(options.run_prefix);
  FLOR_ASSIGN_OR_RETURN(std::string manifest_bytes,
                        fs->ReadFile(paths.Manifest()));
  FLOR_ASSIGN_OR_RETURN(Manifest manifest,
                        Manifest::Deserialize(manifest_bytes));
  const std::vector<int64_t> boundaries =
      CheckpointBoundaryEpochs(instance.program.get(), manifest);
  FLOR_ASSIGN_OR_RETURN(PartitionPlan plan,
                        PartitionMainLoop(epochs, options.num_workers,
                                          options.init_mode, boundaries));
  return static_cast<int>(plan.workers.size());
}

Result<std::vector<int64_t>> PlannedRestoreEpochs(
    const ProgramFactory& factory, const FileSystem* fs,
    const ClusterPlanOptions& options) {
  FLOR_ASSIGN_OR_RETURN(ProgramInstance instance, factory());
  InstrumentProgram(instance.program.get());
  ir::Loop* main_loop = instance.program->MainLoop();
  if (main_loop == nullptr) return std::vector<int64_t>();
  const int64_t epochs = main_loop->iter().fixed_count;
  if (epochs < 0) {
    return Status::FailedPrecondition(
        "PlannedRestoreEpochs: main-loop trip count is dynamic; the plan "
        "is made at run time and cannot be pinned ahead of a GC");
  }

  RunPaths paths(options.run_prefix);
  FLOR_ASSIGN_OR_RETURN(std::string manifest_bytes,
                        fs->ReadFile(paths.Manifest()));
  FLOR_ASSIGN_OR_RETURN(Manifest manifest,
                        Manifest::Deserialize(manifest_bytes));
  const std::vector<int64_t> boundaries =
      CheckpointBoundaryEpochs(instance.program.get(), manifest);

  // Union of init-mode iterations over all planned workers: exactly the
  // epochs whose checkpoints the replay restores before working.
  std::set<int64_t> restore;
  if (!options.sample_epochs.empty()) {
    FLOR_ASSIGN_OR_RETURN(
        WorkerPlan plan,
        PlanSampledEpochs(epochs, options.sample_epochs, boundaries));
    for (const exec::PlannedIter& it : plan.iters) {
      if (it.mode == exec::IterMode::kInit) restore.insert(it.index);
    }
  } else {
    FLOR_ASSIGN_OR_RETURN(PartitionPlan plan,
                          PartitionMainLoop(epochs, options.num_workers,
                                            options.init_mode, boundaries));
    for (const WorkerPlan& wp : plan.workers) {
      for (const exec::PlannedIter& it : wp.iters) {
        if (it.mode == exec::IterMode::kInit) restore.insert(it.index);
      }
    }
  }
  return std::vector<int64_t>(restore.begin(), restore.end());
}

ReplayOptions WorkerReplayOptions(const ClusterPlanOptions& options,
                                  int worker_id) {
  ReplayOptions ropts;
  ropts.run_prefix = options.run_prefix;
  ropts.init_mode = options.init_mode;
  ropts.worker_id = worker_id;
  ropts.num_workers = options.sample_epochs.empty() ? options.num_workers : 1;
  ropts.sample_epochs = options.sample_epochs;
  ropts.costs = options.costs;
  ropts.run_deferred_check = false;  // merged check in ReplayMerger
  // Tier configuration (bucket + bloom) travels as one slice: both structs
  // inherit TierOptions, so a field added there flows to workers without
  // touching this function.
  static_cast<TierOptions&>(ropts) = options;
  return ropts;
}

namespace {

// Worker-result wire format: section 0 is a tab-separated key/value block
// (doubles as hexfloat so the round trip is bit-exact), sections 1-2 are
// LogStream line encodings, sections 3-4 newline-joined statement uids.
constexpr size_t kWorkerResultSections = 5;

void AppendMetaDouble(std::string* out, const char* key, double v) {
  out->append(StrCat(key, "\t", StrFormat("%a", v), "\n"));
}

void AppendMetaInt(std::string* out, const char* key, int64_t v) {
  out->append(StrCat(key, "\t", v, "\n"));
}

Result<double> ParseMetaDouble(const std::string& s) {
  double v = 0;
  if (!ParseF64(s, &v))
    return Status::Corruption("worker result: bad double: " + s);
  return v;
}

Result<int64_t> ParseMetaInt(const std::string& s) {
  int64_t v = 0;
  if (!ParseI64(s, &v))
    return Status::Corruption("worker result: bad integer: " + s);
  return v;
}

std::string JoinUids(const std::set<int32_t>& uids) {
  std::string out;
  for (int32_t uid : uids) out.append(StrCat(uid, "\n"));
  return out;
}

Result<std::set<int32_t>> SplitUids(const std::string& data) {
  std::set<int32_t> out;
  for (const std::string& line : StrSplit(data, '\n')) {
    if (line.empty()) continue;
    FLOR_ASSIGN_OR_RETURN(const int64_t uid, ParseMetaInt(line));
    out.insert(static_cast<int32_t>(uid));
  }
  return out;
}

}  // namespace

std::string EncodeWorkerResult(const ReplayResult& result) {
  std::string meta;
  AppendMetaDouble(&meta, "runtime_seconds", result.runtime_seconds);
  AppendMetaDouble(&meta, "restore_seconds", result.restore_seconds);
  AppendMetaDouble(&meta, "observed_c", result.observed_c);
  AppendMetaInt(&meta, "effective_init",
                static_cast<int64_t>(result.effective_init));
  AppendMetaInt(&meta, "partition_segments", result.partition_segments);
  AppendMetaInt(&meta, "active_workers", result.active_workers);
  AppendMetaInt(&meta, "work_begin", result.work_begin);
  AppendMetaInt(&meta, "work_end", result.work_end);
  AppendMetaInt(&meta, "sb_executed", result.skipblocks.executed);
  AppendMetaInt(&meta, "sb_skipped", result.skipblocks.skipped);
  AppendMetaInt(&meta, "sb_restores", result.skipblocks.restores);
  AppendMetaInt(&meta, "sb_materialized", result.skipblocks.materialized);
  AppendMetaInt(&meta, "bucket_faults", result.bucket_faults);
  AppendMetaInt(&meta, "bloom_skipped_probes", result.bloom_skipped_probes);
  AppendMetaInt(&meta, "preamble_probed",
                result.probes.preamble_probed ? 1 : 0);

  exec::LogStream probe_stream;
  for (const exec::LogEntry& e : result.probe_entries)
    probe_stream.Append(e);

  return EncodeResultSections({meta, result.logs.Serialize(),
                               probe_stream.Serialize(),
                               JoinUids(result.probes.probe_stmt_uids),
                               JoinUids(result.probes.probed_loops)});
}

Result<ReplayResult> DecodeWorkerResult(const std::string& data) {
  FLOR_ASSIGN_OR_RETURN(std::vector<std::string> sections,
                        DecodeResultSections(data));
  if (sections.size() != kWorkerResultSections) {
    return Status::Corruption(
        StrCat("worker result: expected ", kWorkerResultSections,
               " sections, got ", sections.size()));
  }

  std::map<std::string, std::string> meta;
  for (const std::string& line : StrSplit(sections[0], '\n')) {
    if (line.empty()) continue;
    const std::vector<std::string> kv = StrSplit(line, '\t');
    if (kv.size() != 2 || !meta.emplace(kv[0], kv[1]).second)
      return Status::Corruption("worker result: malformed meta line: " +
                                line);
  }
  auto take = [&meta](const char* key) -> Result<std::string> {
    auto it = meta.find(key);
    if (it == meta.end())
      return Status::Corruption(StrCat("worker result: missing ", key));
    std::string v = std::move(it->second);
    meta.erase(it);
    return v;
  };
  auto take_double = [&take](const char* key) -> Result<double> {
    FLOR_ASSIGN_OR_RETURN(const std::string v, take(key));
    return ParseMetaDouble(v);
  };
  auto take_int = [&take](const char* key) -> Result<int64_t> {
    FLOR_ASSIGN_OR_RETURN(const std::string v, take(key));
    return ParseMetaInt(v);
  };

  ReplayResult out;
  FLOR_ASSIGN_OR_RETURN(out.runtime_seconds,
                        take_double("runtime_seconds"));
  FLOR_ASSIGN_OR_RETURN(out.restore_seconds,
                        take_double("restore_seconds"));
  FLOR_ASSIGN_OR_RETURN(out.observed_c, take_double("observed_c"));
  FLOR_ASSIGN_OR_RETURN(const int64_t init, take_int("effective_init"));
  if (init != 0 && init != 1)
    return Status::Corruption("worker result: bad effective_init");
  out.effective_init = static_cast<InitMode>(init);
  FLOR_ASSIGN_OR_RETURN(out.partition_segments,
                        take_int("partition_segments"));
  FLOR_ASSIGN_OR_RETURN(const int64_t active, take_int("active_workers"));
  out.active_workers = static_cast<int>(active);
  FLOR_ASSIGN_OR_RETURN(out.work_begin, take_int("work_begin"));
  FLOR_ASSIGN_OR_RETURN(out.work_end, take_int("work_end"));
  FLOR_ASSIGN_OR_RETURN(out.skipblocks.executed, take_int("sb_executed"));
  FLOR_ASSIGN_OR_RETURN(out.skipblocks.skipped, take_int("sb_skipped"));
  FLOR_ASSIGN_OR_RETURN(out.skipblocks.restores, take_int("sb_restores"));
  FLOR_ASSIGN_OR_RETURN(out.skipblocks.materialized,
                        take_int("sb_materialized"));
  FLOR_ASSIGN_OR_RETURN(out.bucket_faults, take_int("bucket_faults"));
  FLOR_ASSIGN_OR_RETURN(out.bloom_skipped_probes,
                        take_int("bloom_skipped_probes"));
  FLOR_ASSIGN_OR_RETURN(const int64_t preamble,
                        take_int("preamble_probed"));
  out.probes.preamble_probed = preamble != 0;
  if (!meta.empty()) {
    return Status::Corruption("worker result: unknown meta key: " +
                              meta.begin()->first);
  }

  FLOR_ASSIGN_OR_RETURN(out.logs, exec::LogStream::Deserialize(sections[1]));
  FLOR_ASSIGN_OR_RETURN(exec::LogStream probe_stream,
                        exec::LogStream::Deserialize(sections[2]));
  out.probe_entries = probe_stream.entries();
  FLOR_ASSIGN_OR_RETURN(out.probes.probe_stmt_uids,
                        SplitUids(sections[3]));
  FLOR_ASSIGN_OR_RETURN(out.probes.probed_loops, SplitUids(sections[4]));
  return out;
}

void ReplayMerger::Add(int worker_id, ReplayResult result) {
  workers_.emplace_back(worker_id, std::move(result));
}

Result<MergedClusterReplay> ReplayMerger::Finish(
    const FileSystem* fs, const std::string& run_prefix) {
  if (workers_.empty())
    return Status::InvalidArgument("ReplayMerger: no worker results");
  std::sort(workers_.begin(), workers_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  MergedClusterReplay out;
  const ReplayResult& first = workers_.front().second;
  out.workers_used = std::max(1, first.active_workers);
  out.partition_segments = first.partition_segments;
  out.effective_init = first.effective_init;
  const std::set<int32_t>& probe_uids = first.probes.probe_stmt_uids;

  for (const auto& [id, wres] : workers_) {
    (void)id;
    out.worker_seconds.push_back(wres.runtime_seconds);
    out.merged_logs.ExtendWork(wres.logs);
    out.probe_entries.insert(out.probe_entries.end(),
                             wres.probe_entries.begin(),
                             wres.probe_entries.end());
    out.skipblocks.executed += wres.skipblocks.executed;
    out.skipblocks.skipped += wres.skipblocks.skipped;
    out.skipblocks.restores += wres.skipblocks.restores;
    out.bucket_faults += wres.bucket_faults;
    out.bloom_skipped_probes += wres.bloom_skipped_probes;
  }
  out.latency_seconds = *std::max_element(out.worker_seconds.begin(),
                                          out.worker_seconds.end());

  // Merged deferred check against the record logs.
  RunPaths paths(run_prefix);
  FLOR_ASSIGN_OR_RETURN(std::string log_bytes, fs->ReadFile(paths.Logs()));
  FLOR_ASSIGN_OR_RETURN(exec::LogStream record_logs,
                        exec::LogStream::Deserialize(log_bytes));
  out.deferred = DeferredCheck(record_logs.entries(),
                               out.merged_logs.entries(), probe_uids);
  return out;
}

}  // namespace flor
