#include "flor/replay_plan.h"

#include <algorithm>
#include <iterator>
#include <set>

#include "flor/instrument.h"
#include "flor/partition.h"

namespace flor {

std::vector<int64_t> CheckpointBoundaryEpochs(ir::Program* program,
                                              const Manifest& manifest) {
  // Intersect checkpointed epochs across all skippable epoch-level loops:
  // a worker can start at epoch e+1 only if *every* such loop restored at
  // epoch e reconstructs the state.
  std::vector<ir::Loop*> loops = SkippableEpochLoops(program);
  std::vector<int64_t> out;
  bool first = true;
  for (ir::Loop* loop : loops) {
    std::vector<int64_t> epochs = manifest.EpochsWithCheckpoint(loop->id());
    if (first) {
      out = std::move(epochs);
      first = false;
    } else {
      std::vector<int64_t> merged;
      std::set_intersection(out.begin(), out.end(), epochs.begin(),
                            epochs.end(), std::back_inserter(merged));
      out = std::move(merged);
    }
  }
  return out;
}

Result<int> PlanActiveWorkers(const ProgramFactory& factory,
                              const FileSystem* fs,
                              const ClusterPlanOptions& options) {
  if (!options.sample_epochs.empty()) return 1;
  if (options.num_workers <= 1) return 1;

  FLOR_ASSIGN_OR_RETURN(ProgramInstance instance, factory());
  InstrumentProgram(instance.program.get());
  ir::Loop* main_loop = instance.program->MainLoop();
  if (main_loop == nullptr) return 1;
  const int64_t epochs = main_loop->iter().fixed_count;
  if (epochs < 0) return options.num_workers;  // dynamic trip count

  RunPaths paths(options.run_prefix);
  FLOR_ASSIGN_OR_RETURN(std::string manifest_bytes,
                        fs->ReadFile(paths.Manifest()));
  FLOR_ASSIGN_OR_RETURN(Manifest manifest,
                        Manifest::Deserialize(manifest_bytes));
  const std::vector<int64_t> boundaries =
      CheckpointBoundaryEpochs(instance.program.get(), manifest);
  FLOR_ASSIGN_OR_RETURN(PartitionPlan plan,
                        PartitionMainLoop(epochs, options.num_workers,
                                          options.init_mode, boundaries));
  return static_cast<int>(plan.workers.size());
}

Result<std::vector<int64_t>> PlannedRestoreEpochs(
    const ProgramFactory& factory, const FileSystem* fs,
    const ClusterPlanOptions& options) {
  FLOR_ASSIGN_OR_RETURN(ProgramInstance instance, factory());
  InstrumentProgram(instance.program.get());
  ir::Loop* main_loop = instance.program->MainLoop();
  if (main_loop == nullptr) return std::vector<int64_t>();
  const int64_t epochs = main_loop->iter().fixed_count;
  if (epochs < 0) {
    return Status::FailedPrecondition(
        "PlannedRestoreEpochs: main-loop trip count is dynamic; the plan "
        "is made at run time and cannot be pinned ahead of a GC");
  }

  RunPaths paths(options.run_prefix);
  FLOR_ASSIGN_OR_RETURN(std::string manifest_bytes,
                        fs->ReadFile(paths.Manifest()));
  FLOR_ASSIGN_OR_RETURN(Manifest manifest,
                        Manifest::Deserialize(manifest_bytes));
  const std::vector<int64_t> boundaries =
      CheckpointBoundaryEpochs(instance.program.get(), manifest);

  // Union of init-mode iterations over all planned workers: exactly the
  // epochs whose checkpoints the replay restores before working.
  std::set<int64_t> restore;
  if (!options.sample_epochs.empty()) {
    FLOR_ASSIGN_OR_RETURN(
        WorkerPlan plan,
        PlanSampledEpochs(epochs, options.sample_epochs, boundaries));
    for (const exec::PlannedIter& it : plan.iters) {
      if (it.mode == exec::IterMode::kInit) restore.insert(it.index);
    }
  } else {
    FLOR_ASSIGN_OR_RETURN(PartitionPlan plan,
                          PartitionMainLoop(epochs, options.num_workers,
                                            options.init_mode, boundaries));
    for (const WorkerPlan& wp : plan.workers) {
      for (const exec::PlannedIter& it : wp.iters) {
        if (it.mode == exec::IterMode::kInit) restore.insert(it.index);
      }
    }
  }
  return std::vector<int64_t>(restore.begin(), restore.end());
}

ReplayOptions WorkerReplayOptions(const ClusterPlanOptions& options,
                                  int worker_id) {
  ReplayOptions ropts;
  ropts.run_prefix = options.run_prefix;
  ropts.init_mode = options.init_mode;
  ropts.worker_id = worker_id;
  ropts.num_workers = options.sample_epochs.empty() ? options.num_workers : 1;
  ropts.sample_epochs = options.sample_epochs;
  ropts.costs = options.costs;
  ropts.run_deferred_check = false;  // merged check in ReplayMerger
  return ropts;
}

void ReplayMerger::Add(int worker_id, ReplayResult result) {
  workers_.emplace_back(worker_id, std::move(result));
}

Result<MergedClusterReplay> ReplayMerger::Finish(
    const FileSystem* fs, const std::string& run_prefix) {
  if (workers_.empty())
    return Status::InvalidArgument("ReplayMerger: no worker results");
  std::sort(workers_.begin(), workers_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  MergedClusterReplay out;
  const ReplayResult& first = workers_.front().second;
  out.workers_used = std::max(1, first.active_workers);
  out.partition_segments = first.partition_segments;
  out.effective_init = first.effective_init;
  const std::set<int32_t>& probe_uids = first.probes.probe_stmt_uids;

  for (const auto& [id, wres] : workers_) {
    (void)id;
    out.worker_seconds.push_back(wres.runtime_seconds);
    out.merged_logs.ExtendWork(wres.logs);
    out.probe_entries.insert(out.probe_entries.end(),
                             wres.probe_entries.begin(),
                             wres.probe_entries.end());
    out.skipblocks.executed += wres.skipblocks.executed;
    out.skipblocks.skipped += wres.skipblocks.skipped;
    out.skipblocks.restores += wres.skipblocks.restores;
  }
  out.latency_seconds = *std::max_element(out.worker_seconds.begin(),
                                          out.worker_seconds.end());

  // Merged deferred check against the record logs.
  RunPaths paths(run_prefix);
  FLOR_ASSIGN_OR_RETURN(std::string log_bytes, fs->ReadFile(paths.Logs()));
  FLOR_ASSIGN_OR_RETURN(exec::LogStream record_logs,
                        exec::LogStream::Deserialize(log_bytes));
  out.deferred = DeferredCheck(record_logs.entries(),
                               out.merged_logs.entries(), probe_uids);
  return out;
}

}  // namespace flor
