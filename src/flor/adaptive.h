// Adaptive checkpointing (paper §5.3).
//
// After each execution of a wrapped loop — and before materializing its
// checkpoint — the controller tests the Joint Invariant (Eq. 4):
//
//     Mi / Ci  <  ni / (ki + 1) * min( 1/(1+c), ε )
//
// which simultaneously enforces the Record Overhead invariant (Eq. 1,
// ki·Mi < ni·ε·Ci) and the Replay Latency invariant (Eq. 3,
// Mi + Ri < (ni/ki)·Ci with Ri = c·Mi). Loops with cheap checkpoints
// relative to compute get memoized every execution; fine-tuning loops with
// enormous checkpoints and short epochs get periodic/sparse checkpointing,
// which is exactly what caps RTE/CoLA overhead in Fig. 7.
//
// The scaling factor c (restore/materialize time ratio) starts at 1.0 and
// is refined from observed record-replay measurements (paper: measured
// average c = 1.38 across Table 3 workloads).

#ifndef FLOR_FLOR_ADAPTIVE_H_
#define FLOR_FLOR_ADAPTIVE_H_

#include <cstdint>
#include <map>
#include <vector>

namespace flor {

/// Controller configuration.
struct AdaptiveOptions {
  /// When false, every loop execution is materialized (the
  /// adaptivity-disabled ablation of Fig. 7).
  bool enabled = true;
  /// ε — user-specifiable record-overhead tolerance. Paper: 1/15 = 6.67%,
  /// "asking that we only memoize loops whose computation times are at
  /// least 15× larger than the expected materialization times."
  double epsilon = 1.0 / 15.0;
  /// Initial c (restore ≈ materialize until observed otherwise).
  double initial_c = 1.0;
};

/// One decision, kept for tests/benches to audit the invariants.
struct AdaptiveDecision {
  int32_t loop_id = 0;
  int64_t ni = 0;      ///< executions so far (including this one)
  int64_t ki = 0;      ///< checkpoints before this decision
  double ci = 0;       ///< compute-time sample (seconds)
  double mi = 0;       ///< materialization estimate (seconds)
  double ratio = 0;    ///< Mi / Ci
  double threshold = 0;
  bool materialize = false;
};

/// Per-loop adaptive checkpointing state machine.
class AdaptiveController {
 public:
  explicit AdaptiveController(AdaptiveOptions options);

  /// Tests the Joint Invariant for one finished loop execution. Increments
  /// ni; increments ki when returning true. `compute_seconds` is this
  /// execution's Ci sample; `materialize_seconds` the Mi estimate.
  bool ShouldMaterialize(int32_t loop_id, double compute_seconds,
                         double materialize_seconds);

  /// Feeds an observed (restore, materialize) pair to refine c.
  void ObserveRestore(double restore_seconds, double materialize_seconds);

  /// Current c estimate (initial_c until observations arrive).
  double c() const;

  int64_t executions(int32_t loop_id) const;
  int64_t checkpoints(int32_t loop_id) const;

  const std::vector<AdaptiveDecision>& trace() const { return trace_; }
  const AdaptiveOptions& options() const { return options_; }

 private:
  struct LoopState {
    int64_t ni = 0;
    int64_t ki = 0;
  };

  AdaptiveOptions options_;
  std::map<int32_t, LoopState> loops_;
  std::vector<AdaptiveDecision> trace_;
  double c_ratio_sum_ = 0;
  int64_t c_observations_ = 0;
};

}  // namespace flor

#endif  // FLOR_FLOR_ADAPTIVE_H_
