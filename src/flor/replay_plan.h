// Shared partition-planning and log-merging core for cluster replay.
//
// Two engines execute partitioned hindsight replay:
//   * sim::ClusterReplay — workers run sequentially, each on its own
//     simulated clock (deterministic paper-scale latency modeling);
//   * exec::ReplayExecutor — workers run concurrently on a real thread
//     pool against the wall clock (measured speedup).
// Both must agree on *what* each worker replays and on how worker log
// partitions are merged and deferred-checked, so that the merged replay
// logs are byte-identical across engines and thread counts. That common
// core lives here.
//
// Checkpoint-store sharding is invisible at this layer by design: each
// worker's ReplaySession reads the shard count from the record manifest
// and routes object reads itself, so partition planning and log merging
// are identical for flat and sharded stores.

#ifndef FLOR_FLOR_REPLAY_PLAN_H_
#define FLOR_FLOR_REPLAY_PLAN_H_

#include <string>
#include <utility>
#include <vector>

#include "env/filesystem.h"
#include "flor/replay.h"

namespace flor {

/// Engine-agnostic cluster-replay configuration: everything needed to plan
/// worker partitions and build per-worker ReplayOptions. The read-tier
/// fields (bucket + bloom) come from the shared TierOptions base
/// (checkpoint/store.h) and are sliced into every worker's ReplayOptions,
/// so each worker's store sees the same tier configuration.
struct ClusterPlanOptions : TierOptions {
  std::string run_prefix = "run";
  /// Requested log partitions (the paper's G). The effective worker count
  /// can be lower when the main loop is short or checkpoints are sparse.
  int num_workers = 1;
  InitMode init_mode = InitMode::kStrong;
  /// Cost model for restore pricing (only charged under simulated clocks).
  MaterializerCosts costs;
  /// Non-empty selects iteration-sampling replay on a single worker.
  std::vector<int64_t> sample_epochs;
};

/// Main-loop epochs usable as partition boundaries for `program`: every
/// skippable epoch-level loop has a checkpoint there (intersection across
/// loops). `program` must already be instrumented.
std::vector<int64_t> CheckpointBoundaryEpochs(ir::Program* program,
                                              const Manifest& manifest);

/// Plans how many replay sessions a partitioned replay needs, without
/// executing anything: builds a fresh instance, instruments it, reads the
/// record manifest from `fs`, and partitions the main loop. Falls back to
/// `options.num_workers` when the main-loop trip count is not statically
/// known (surplus workers then plan themselves empty at run time).
Result<int> PlanActiveWorkers(const ProgramFactory& factory,
                              const FileSystem* fs,
                              const ClusterPlanOptions& options);

/// Per-worker ReplayOptions derived from the cluster-level options. The
/// deferred check is disabled per worker: the merger checks the merged
/// stream once.
ReplayOptions WorkerReplayOptions(const ClusterPlanOptions& options,
                                  int worker_id);

/// Main-loop epochs whose checkpoints the replay planned by `options` will
/// restore during worker initialization (weak init: each worker's single
/// pre-segment epoch; strong init: every epoch before each work segment;
/// sampling: the weak-init epoch before every non-contiguous jump), as a
/// sorted, deduplicated list. Retention pins these
/// (GcPolicy::pinned_epochs) so a replay planned before a GC pass still
/// finds every checkpoint it restores — the GC-side half of "both engines
/// never observe a retired epoch they were planned against". Fails when
/// the main-loop trip count is not statically known (such plans are made
/// at run time and cannot be pinned ahead of a GC).
Result<std::vector<int64_t>> PlannedRestoreEpochs(
    const ProgramFactory& factory, const FileSystem* fs,
    const ClusterPlanOptions& options);

/// Engine-agnostic aggregate of a partitioned replay.
struct MergedClusterReplay {
  /// Max over worker runtimes (no merge barrier in Flor; partitions are
  /// concatenated by worker order).
  double latency_seconds = 0;
  std::vector<double> worker_seconds;
  int workers_used = 0;
  int64_t partition_segments = 0;
  InitMode effective_init = InitMode::kStrong;
  /// Work-segment log entries of all workers, in partition order.
  exec::LogStream merged_logs;
  std::vector<exec::LogEntry> probe_entries;
  DeferredCheckReport deferred;
  SkipBlockStats skipblocks;
  /// Total restores served by the bucket tier across workers.
  int64_t bucket_faults = 0;
  /// Total store lookups the workers' bloom filters short-circuited.
  int64_t bloom_skipped_probes = 0;
};

/// Encodes one worker's ReplayResult for out-of-process transport — the
/// fork-per-partition engine (exec/process_executor.h) has each child
/// write this to a CRC-framed result file (env/result_file.h) and the
/// parent decode it back into the exact ReplayResult an in-process worker
/// would have handed the merger. The round trip is lossless: doubles
/// travel as hexfloat, log fragments via LogStream's line encoding.
std::string EncodeWorkerResult(const ReplayResult& result);

/// Inverse of EncodeWorkerResult. Truncated or mutated bytes fail with
/// Corruption — a successfully decoded result is safe to merge.
Result<ReplayResult> DecodeWorkerResult(const std::string& data);

/// Accumulates per-worker ReplayResults (in any completion order), then
/// merges logs in worker order and runs the merged deferred check against
/// the record logs. Thread-compatible: callers serialize Add/Finish (both
/// engines add results from the coordinating thread after workers join).
/// Results may come from in-process workers or be decoded from another
/// process's result file (DecodeWorkerResult) — the merge is identical.
class ReplayMerger {
 public:
  void Add(int worker_id, ReplayResult result);

  /// Merges and deferred-checks. `fs` supplies the record logs under
  /// `run_prefix`. Single-use.
  Result<MergedClusterReplay> Finish(const FileSystem* fs,
                                     const std::string& run_prefix);

 private:
  std::vector<std::pair<int, ReplayResult>> workers_;
};

}  // namespace flor

#endif  // FLOR_FLOR_REPLAY_PLAN_H_
