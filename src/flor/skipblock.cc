// Intentionally header-only types; this translation unit exists to give the
// header a home in the build graph (and a place for future out-of-line
// SkipBlock logic).
#include "flor/skipblock.h"
