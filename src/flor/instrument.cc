#include "flor/instrument.h"

#include "analysis/side_effect.h"

namespace flor {

InstrumentReport InstrumentProgram(ir::Program* program) {
  analysis::AnalyzeProgram(program);

  InstrumentReport report;
  ir::Loop* main_loop = program->MainLoop();
  for (ir::Loop* loop : program->AllLoops()) {
    ++report.loops_total;
    ir::LoopAnalysis& a = loop->analysis();
    if (loop == main_loop) {
      a.instrumented = false;
      a.refusal = "main loop: managed by the Flor generator (§5.4)";
      report.refusals.emplace_back(loop->id(), a.refusal);
      continue;
    }
    if (!a.refusal.empty()) {
      a.instrumented = false;
      report.refusals.emplace_back(loop->id(), a.refusal);
      continue;
    }
    a.instrumented = true;
    ++report.loops_instrumented;
  }
  return report;
}

std::vector<ir::Loop*> SkippableEpochLoops(ir::Program* program) {
  std::vector<ir::Loop*> out;
  ir::Loop* main_loop = program->MainLoop();
  if (!main_loop) return out;
  for (auto& node : main_loop->body().nodes) {
    if (node.is_loop() && node.loop->analysis().instrumented)
      out.push_back(node.loop.get());
  }
  return out;
}

}  // namespace flor
