#include "flor/partition.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace flor {

const char* InitModeName(InitMode m) {
  return m == InitMode::kStrong ? "strong" : "weak";
}

namespace {

/// Balanced contiguous grouping of segment sizes into at most `groups`
/// parts, minimizing the maximum part sum (classic linear partition; sizes
/// here are small, so O(n^2 * g) DP is fine).
std::vector<int> LinearPartition(const std::vector<int64_t>& sizes,
                                 int groups) {
  const int n = static_cast<int>(sizes.size());
  groups = std::min(groups, n);
  // prefix sums
  std::vector<int64_t> prefix(static_cast<size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + sizes[i];
  constexpr int64_t kInf = INT64_MAX / 4;
  // dp[g][i] = min over splits of first i segments into g groups of max sum
  std::vector<std::vector<int64_t>> dp(
      static_cast<size_t>(groups) + 1,
      std::vector<int64_t>(static_cast<size_t>(n) + 1, kInf));
  std::vector<std::vector<int>> cut(
      static_cast<size_t>(groups) + 1,
      std::vector<int>(static_cast<size_t>(n) + 1, 0));
  dp[0][0] = 0;
  for (int g = 1; g <= groups; ++g) {
    for (int i = 1; i <= n; ++i) {
      for (int j = g - 1; j < i; ++j) {
        const int64_t candidate =
            std::max(dp[g - 1][j], prefix[i] - prefix[j]);
        if (candidate < dp[g][i]) {
          dp[g][i] = candidate;
          cut[g][i] = j;
        }
      }
    }
  }
  // Pick the smallest group count achieving the optimum (empty groups are
  // pointless), then recover boundaries.
  int best_g = groups;
  for (int g = 1; g <= groups; ++g) {
    if (dp[g][n] <= dp[best_g][n]) {
      best_g = g;
      break;
    }
  }
  // Recover assignment: boundaries[k] = first segment index of group k.
  std::vector<int> bounds;
  int i = n;
  for (int g = best_g; g >= 1; --g) {
    bounds.push_back(cut[g][i]);
    i = cut[g][i];
  }
  std::reverse(bounds.begin(), bounds.end());
  // bounds[k] is the start segment of group k; produce per-segment group id
  std::vector<int> assign(static_cast<size_t>(n), 0);
  for (int k = 0; k < best_g; ++k) {
    const int start = bounds[static_cast<size_t>(k)];
    const int end = (k + 1 < best_g) ? bounds[static_cast<size_t>(k) + 1] : n;
    for (int s = start; s < end; ++s) assign[static_cast<size_t>(s)] = k;
  }
  return assign;
}

}  // namespace

Result<PartitionPlan> PartitionMainLoop(
    int64_t epochs, int num_workers, InitMode requested,
    const std::vector<int64_t>& ckpt_epochs) {
  if (epochs <= 0) return Status::InvalidArgument("epochs must be positive");
  if (num_workers <= 0)
    return Status::InvalidArgument("num_workers must be positive");

  const std::set<int64_t> ckpts(ckpt_epochs.begin(), ckpt_epochs.end());

  // Dense = every epoch that precedes another epoch has a checkpoint.
  bool dense = true;
  for (int64_t e = 0; e + 1 < epochs; ++e) {
    if (!ckpts.count(e)) {
      dense = false;
      break;
    }
  }

  PartitionPlan plan;
  plan.mode = requested;
  if (requested == InitMode::kStrong && !dense) {
    // Strong initialization needs a checkpoint at every preceding epoch;
    // sparse workloads fall back to weak (paper §5.4.2: "weak
    // initialization is necessary when a workload is checkpointed sparsely
    // or periodically on record, as are RTE & CoLA").
    plan.mode = InitMode::kWeak;
  }

  // Candidate segment starts: epoch 0, plus e+1 for each checkpointed e.
  std::vector<int64_t> starts;
  starts.push_back(0);
  for (int64_t e : ckpt_epochs) {
    if (e + 1 < epochs) starts.push_back(e + 1);
  }
  std::sort(starts.begin(), starts.end());
  starts.erase(std::unique(starts.begin(), starts.end()), starts.end());

  // Segment sizes between consecutive starts.
  std::vector<int64_t> sizes;
  for (size_t i = 0; i < starts.size(); ++i) {
    const int64_t end = i + 1 < starts.size() ? starts[i + 1] : epochs;
    sizes.push_back(end - starts[i]);
  }
  plan.segments = static_cast<int64_t>(sizes.size());

  const auto assign = LinearPartition(sizes, num_workers);
  const int groups = assign.empty() ? 0 : assign.back() + 1;

  for (int g = 0; g < groups; ++g) {
    WorkerPlan wp;
    wp.worker_id = g;
    wp.work_begin = -1;
    for (size_t s = 0; s < sizes.size(); ++s) {
      if (assign[s] != g) continue;
      if (wp.work_begin < 0) wp.work_begin = starts[s];
      wp.work_end = s + 1 < starts.size() ? starts[s + 1] : epochs;
    }
    // Init segment.
    if (wp.work_begin > 0) {
      if (plan.mode == InitMode::kStrong) {
        for (int64_t e = 0; e < wp.work_begin; ++e)
          wp.iters.push_back({e, exec::IterMode::kInit});
      } else {
        const int64_t prev = wp.work_begin - 1;
        if (!ckpts.count(prev)) {
          return Status::FailedPrecondition(
              StrCat("no checkpoint at epoch ", prev,
                     " for weak initialization of worker ", g));
        }
        wp.iters.push_back({prev, exec::IterMode::kInit});
      }
    }
    for (int64_t e = wp.work_begin; e < wp.work_end; ++e)
      wp.iters.push_back({e, exec::IterMode::kWork});
    plan.max_worker_epochs =
        std::max(plan.max_worker_epochs, wp.work_epochs());
    plan.workers.push_back(std::move(wp));
  }
  return plan;
}

Result<WorkerPlan> PlanSampledEpochs(int64_t epochs,
                                     const std::vector<int64_t>& sample,
                                     const std::vector<int64_t>&
                                         ckpt_epochs) {
  const std::set<int64_t> ckpts(ckpt_epochs.begin(), ckpt_epochs.end());
  WorkerPlan wp;
  wp.worker_id = 0;
  std::vector<int64_t> sorted = sample;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  int64_t last_executed = -2;  // epoch whose end state we currently hold
  for (int64_t k : sorted) {
    if (k < 0 || k >= epochs)
      return Status::OutOfRange(StrCat("sampled epoch ", k, " out of range"));
    if (k != last_executed + 1) {
      if (k > 0) {
        if (!ckpts.count(k - 1)) {
          return Status::FailedPrecondition(
              StrCat("no checkpoint at epoch ", k - 1,
                     " to random-access sampled epoch ", k));
        }
        wp.iters.push_back({k - 1, exec::IterMode::kInit});
      }
    }
    wp.iters.push_back({k, exec::IterMode::kWork});
    last_executed = k;
  }
  if (!sorted.empty()) {
    wp.work_begin = sorted.front();
    wp.work_end = sorted.back() + 1;
  }
  return wp;
}

}  // namespace flor
