// ReplaySession — Flor replay (paper §3.2, §5.4).
//
// A replay runs the *current* program version (which may contain hindsight
// logging statements) against a finished record run:
//   1. diff current source vs recorded source → probe report,
//   2. plan the main loop: full range for a lone worker, a partition
//      segment for parallel workers, or an arbitrary epoch sample
//      (iteration-sampling replay, paper §8),
//   3. execute: init iterations restore SkipBlock state from checkpoints;
//      work iterations skip unprobed memoized loops (partial replay) and
//      re-execute probed ones (producing the hindsight logs),
//   4. deferred correctness check: this worker's log partition must match
//      the record logs modulo probe output.

#ifndef FLOR_FLOR_REPLAY_H_
#define FLOR_FLOR_REPLAY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "checkpoint/materializer.h"
#include "checkpoint/store.h"
#include "env/env.h"
#include "exec/interpreter.h"
#include "flor/deferred_check.h"
#include "flor/partition.h"
#include "flor/probe.h"
#include "flor/skipblock.h"
#include "ir/diff.h"

namespace flor {

/// Replay configuration. Inherits the shared read-tier fields
/// (bucket_prefix / bucket_rehydrate / bloom_filter / bloom_target_fpr)
/// from TierOptions (checkpoint/store.h) — the same aggregate every engine
/// option struct and the service ConnectionOptions carry, so tier
/// configuration is declared once and flows everywhere by slice
/// assignment.
struct ReplayOptions : TierOptions {
  std::string run_prefix = "run";
  /// Requested worker-initialization mode; falls back to weak when the
  /// record run checkpointed sparsely (§5.4.2).
  InitMode init_mode = InitMode::kStrong;
  /// This worker's identity within a parallel replay (PID in Fig. 8).
  int worker_id = 0;
  int num_workers = 1;
  /// Non-empty selects iteration-sampling replay over these main-loop
  /// epochs instead of a contiguous partition.
  std::vector<int64_t> sample_epochs;
  /// Cost model for restore pricing under a simulated clock.
  MaterializerCosts costs;
  /// Skip the deferred log check (used when a caller merges worker logs and
  /// checks once).
  bool run_deferred_check = true;
};

/// Outcome of one worker's replay.
struct ReplayResult {
  double runtime_seconds = 0;
  /// Complete log stream (including init-mode entries).
  exec::LogStream logs;
  SkipBlockStats skipblocks;
  ir::ProbeReport probes;
  InitMode effective_init = InitMode::kStrong;
  /// Partitioning granularity of the plan this worker came from.
  int64_t partition_segments = 0;
  /// Number of workers the plan actually uses (<= num_workers).
  int active_workers = 0;
  int64_t work_begin = -1;
  int64_t work_end = -1;
  DeferredCheckReport deferred;
  /// Convenience: the hindsight (probe) log entries this worker produced.
  std::vector<exec::LogEntry> probe_entries;
  double restore_seconds = 0;
  /// Mean observed restore/materialize ratio (refines c, §5.3.2).
  double observed_c = 0;
  /// Restores served by the bucket tier (local store miss, bucket hit).
  int64_t bucket_faults = 0;
  /// Store lookups the bloom filter answered definite-miss without
  /// touching a shard (0 when ReplayOptions::bloom_filter is off).
  int64_t bloom_skipped_probes = 0;
};

/// Executes one replay worker. Single-use.
class ReplaySession : public exec::ExecHooks {
 public:
  ReplaySession(Env* env, ReplayOptions options);

  Result<ReplayResult> Run(ir::Program* current_program, exec::Frame* frame);

  // --- ExecHooks (SkipBlock parameterization for replay) ---
  Result<exec::LoopAction> OnSkipBlockEnter(ir::Loop* loop,
                                            const std::string& ctx,
                                            bool init_mode,
                                            exec::Frame* frame) override;
  Status OnSkipBlockExit(ir::Loop* loop, const std::string& ctx,
                         exec::Frame* frame,
                         double compute_seconds) override;
  Result<std::optional<exec::MainLoopPlan>> PlanMainLoop(
      ir::Loop* loop, int64_t trip_count, exec::Frame* frame) override;

 private:
  /// Restores a loop execution's side effects from its checkpoint.
  Status RestoreSkipBlock(ir::Loop* loop, const CheckpointKey& key,
                          exec::Frame* frame);

  Env* env_;
  ReplayOptions options_;
  RunPaths paths_;
  /// Created in Run(), after the manifest is read: the manifest's shard
  /// count decides the store layout, so replay reads are shard-aware
  /// without probing (and pre-sharding runs keep replaying as 1 shard).
  std::unique_ptr<CheckpointStore> store_;

  ir::Program* program_ = nullptr;
  exec::LogStream record_logs_;
  Manifest manifest_;
  std::map<std::string, const CheckpointRecord*> records_by_key_;
  std::set<int32_t> probed_transitive_;
  ReplayResult* result_ = nullptr;  // live during Run

  double restore_ratio_sum_ = 0;
  int64_t restore_ratio_count_ = 0;
};

/// Convenience single-call vanilla re-execution of a program (no Flor
/// speedups) used as the baseline in latency comparisons. Returns the run
/// time and the produced logs.
struct VanillaRunResult {
  double runtime_seconds = 0;
  exec::LogStream logs;
};
Result<VanillaRunResult> VanillaRun(Env* env, ir::Program* program,
                                    exec::Frame* frame);

}  // namespace flor

#endif  // FLOR_FLOR_REPLAY_H_
