#include "flor/query.h"

#include <cstdlib>

#include "checkpoint/store.h"
#include "common/strings.h"
#include "flor/skipblock.h"

namespace flor {

Result<std::vector<RunInfo>> ListRuns(const FileSystem* fs,
                                      const std::string& root) {
  std::vector<RunInfo> out;
  const std::string prefix = root.empty() ? "" : root + "/";
  for (const auto& path : fs->ListPrefix(prefix)) {
    if (!EndsWith(path, "/manifest.tsv")) continue;
    RunInfo info;
    info.prefix = path.substr(0, path.size() - strlen("/manifest.tsv"));
    FLOR_ASSIGN_OR_RETURN(std::string bytes, fs->ReadFile(path));
    FLOR_ASSIGN_OR_RETURN(Manifest manifest, Manifest::Deserialize(bytes));
    info.workload = manifest.workload;
    info.record_runtime_seconds = manifest.record_runtime_seconds;
    info.checkpoints = static_cast<int64_t>(manifest.records.size());
    out.push_back(std::move(info));
  }
  return out;
}

Result<std::vector<double>> MetricSeries(const FileSystem* fs,
                                         const std::string& run_prefix,
                                         const std::string& label) {
  RunPaths paths(run_prefix);
  FLOR_ASSIGN_OR_RETURN(std::string bytes, fs->ReadFile(paths.Logs()));
  FLOR_ASSIGN_OR_RETURN(exec::LogStream logs,
                        exec::LogStream::Deserialize(bytes));
  std::vector<double> out;
  for (const auto& e : logs.entries()) {
    if (e.label != label) continue;
    char* end = nullptr;
    const double v = std::strtod(e.text.c_str(), &end);
    if (end == e.text.c_str()) {
      return Status::InvalidArgument(
          StrCat("log '", label, "' has non-numeric text: ", e.text));
    }
    out.push_back(v);
  }
  return out;
}

Result<std::vector<RunInfo>> FindRuns(const FileSystem* fs,
                                      const std::string& root,
                                      const RunPredicate& predicate) {
  FLOR_ASSIGN_OR_RETURN(std::vector<RunInfo> runs, ListRuns(fs, root));
  std::vector<RunInfo> out;
  for (const auto& run : runs) {
    RunPaths paths(run.prefix);
    FLOR_ASSIGN_OR_RETURN(std::string bytes, fs->ReadFile(paths.Logs()));
    FLOR_ASSIGN_OR_RETURN(exec::LogStream logs,
                          exec::LogStream::Deserialize(bytes));
    FLOR_ASSIGN_OR_RETURN(bool match, predicate(run, logs.entries()));
    if (match) out.push_back(run);
  }
  return out;
}

bool ShowsExplodingVanishingPattern(const std::vector<double>& series,
                                    double explode_factor,
                                    double vanish_factor) {
  if (series.size() < 3 || series.front() <= 0) return false;
  const double start = series.front();
  double peak = start;
  size_t peak_index = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    if (series[i] > peak) {
      peak = series[i];
      peak_index = i;
    }
  }
  if (peak < start * explode_factor) return false;  // never exploded
  for (size_t i = peak_index + 1; i < series.size(); ++i) {
    if (series[i] <= peak * vanish_factor) return true;  // later vanished
  }
  return false;
}

}  // namespace flor
