// Deferred correctness checks (paper §5.2.2).
//
// Flor's side-effect analysis is efficient but unsafe; the mitigation is to
// compare user-observable state between record and replay: "at the end of
// replay, we run diff, and warn the user if the replay logs differ from the
// record logs in any way other than the statements added for hindsight
// logging."
//
// The comparison must tolerate what replay legitimately omits:
//   * log entries from skipped (memoized) loop executions,
//   * entries outside a worker's replayed segment,
//   * init-mode output (excluded by the caller via WorkEntries()),
//   * output of the probe statements themselves.
// So the check is: every non-probe replay entry must match a distinct
// record entry with the same (stmt uid, iteration context, label, text).
// Any divergence in logged *values* — the fingerprint of training
// characteristics the paper relies on — fails the check.

#ifndef FLOR_FLOR_DEFERRED_CHECK_H_
#define FLOR_FLOR_DEFERRED_CHECK_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "exec/log_stream.h"

namespace flor {

/// Outcome of a deferred check.
struct DeferredCheckReport {
  bool ok = true;
  int64_t entries_compared = 0;
  /// Human-readable descriptions of the first few anomalies.
  std::vector<std::string> anomalies;

  /// OK, or ReplayAnomaly with the first anomaly message.
  Status ToStatus() const;
};

/// Compares a replay log (work entries only) against the record log.
/// `probe_uids` identifies hindsight statements whose output is expected to
/// be new.
DeferredCheckReport DeferredCheck(const std::vector<exec::LogEntry>& record,
                                  const std::vector<exec::LogEntry>& replay,
                                  const std::set<int32_t>& probe_uids);

}  // namespace flor

#endif  // FLOR_FLOR_DEFERRED_CHECK_H_
