#include "flor/adaptive.h"

#include <algorithm>
#include <limits>

namespace flor {

AdaptiveController::AdaptiveController(AdaptiveOptions options)
    : options_(options) {}

bool AdaptiveController::ShouldMaterialize(int32_t loop_id,
                                           double compute_seconds,
                                           double materialize_seconds) {
  LoopState& state = loops_[loop_id];
  ++state.ni;

  AdaptiveDecision d;
  d.loop_id = loop_id;
  d.ni = state.ni;
  d.ki = state.ki;
  d.ci = compute_seconds;
  d.mi = materialize_seconds;

  if (!options_.enabled) {
    d.materialize = true;
    d.ratio = compute_seconds > 0 ? materialize_seconds / compute_seconds : 0;
    d.threshold = 0;
    trace_.push_back(d);
    ++state.ki;
    return true;
  }

  // Joint Invariant (Eq. 4). Degenerate compute times (Ci == 0 can happen
  // for empty loops on a simulated clock) are treated as failing the test —
  // a zero-cost loop is never worth checkpointing.
  const double bound = std::min(1.0 / (1.0 + c()), options_.epsilon);
  const double threshold =
      static_cast<double>(state.ni) / static_cast<double>(state.ki + 1) *
      bound;
  const double ratio = compute_seconds > 0
                           ? materialize_seconds / compute_seconds
                           : std::numeric_limits<double>::infinity();
  d.ratio = ratio;
  d.threshold = threshold;
  d.materialize = ratio < threshold;
  trace_.push_back(d);
  if (d.materialize) ++state.ki;
  return d.materialize;
}

void AdaptiveController::ObserveRestore(double restore_seconds,
                                        double materialize_seconds) {
  if (materialize_seconds <= 0) return;
  c_ratio_sum_ += restore_seconds / materialize_seconds;
  ++c_observations_;
}

double AdaptiveController::c() const {
  if (c_observations_ == 0) return options_.initial_c;
  return c_ratio_sum_ / static_cast<double>(c_observations_);
}

int64_t AdaptiveController::executions(int32_t loop_id) const {
  auto it = loops_.find(loop_id);
  return it == loops_.end() ? 0 : it->second.ni;
}

int64_t AdaptiveController::checkpoints(int32_t loop_id) const {
  auto it = loops_.find(loop_id);
  return it == loops_.end() ? 0 : it->second.ki;
}

}  // namespace flor
