// Search replay — the paper's §8 "Partial Replay: Search and Approximation".
//
// "For our example, we want to find the iteration where convergence begins,
//  and look forward enough to be confident the pattern is permanent. By
//  analogy to query processing, Flor is currently sequentially scanning the
//  past; we want to augment it with techniques for searching... Random
//  access to loop iterations enables Flor to schedule the order of
//  traversal (e.g. for binary search)."
//
// `SearchReplay` binary-searches the main-loop epochs of a finished record
// run for the first epoch satisfying a user predicate over that epoch's
// hindsight log output. Each probe of an epoch is one single-epoch sampling
// replay (flor/partition.h random access), so the total work is
// O(log E) epoch re-executions instead of a full scan.

#ifndef FLOR_FLOR_SEARCH_H_
#define FLOR_FLOR_SEARCH_H_

#include <functional>
#include <string>
#include <vector>

#include "checkpoint/materializer.h"
#include "env/env.h"
#include "exec/log_stream.h"
#include "flor/skipblock.h"

namespace flor {

/// Judges whether the searched-for condition holds at one epoch, given the
/// work-segment log entries that epoch produced on replay (record-time logs
/// plus hindsight probe output). The predicate must be monotone over epochs
/// (false ... false true ... true) for binary search to be meaningful —
/// "convergence begins and the pattern is permanent".
using EpochPredicate =
    std::function<Result<bool>(int64_t epoch,
                               const std::vector<exec::LogEntry>& entries)>;

/// Search configuration.
struct SearchOptions {
  std::string run_prefix = "run";
  MaterializerCosts costs;
  /// Confirm this many epochs after the found frontier also satisfy the
  /// predicate ("look forward enough to be confident the pattern is
  /// permanent"). 0 disables confirmation.
  int64_t confirm_epochs = 0;
};

/// Outcome of a search replay.
struct SearchResult {
  /// First epoch where the predicate holds; -1 if it never holds.
  int64_t found_epoch = -1;
  /// Epochs actually re-executed (the probe schedule).
  std::vector<int64_t> probed_epochs;
  /// Total simulated replay latency across probes (sum; probes could also
  /// run in parallel — they are independent sampling replays).
  double total_latency_seconds = 0;
  /// True if the confirmation window also satisfied the predicate.
  bool confirmed = true;
};

/// Binary-searches the record run at `options.run_prefix` (on `env`'s
/// filesystem) for the first epoch satisfying `predicate`. `factory` builds
/// the (possibly probed) program version whose logs the predicate reads.
Result<SearchResult> SearchReplay(Env* env, const ProgramFactory& factory,
                                  const EpochPredicate& predicate,
                                  const SearchOptions& options);

}  // namespace flor

#endif  // FLOR_FLOR_SEARCH_H_
