// Shared record/replay run layout and SkipBlock bookkeeping types.
//
// A record run lives under a filesystem prefix:
//   <prefix>/source.py     rendered program source (probe-diff baseline)
//   <prefix>/logs.tsv      record log stream
//   <prefix>/manifest.tsv  checkpoint index + adaptive stats
//   <prefix>/ckpt/...      Loop End Checkpoints

#ifndef FLOR_FLOR_SKIPBLOCK_H_
#define FLOR_FLOR_SKIPBLOCK_H_

#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "ir/program.h"

namespace flor {

/// Path helpers for a record run rooted at `prefix`.
struct RunPaths {
  std::string prefix;

  explicit RunPaths(std::string p) : prefix(std::move(p)) {}

  std::string Source() const { return prefix + "/source.py"; }
  std::string Logs() const { return prefix + "/logs.tsv"; }
  std::string Manifest() const { return prefix + "/manifest.tsv"; }
  std::string CkptPrefix() const { return prefix + "/ckpt"; }
};

/// Per-run SkipBlock activity counters (diagnostics surfaced in results).
struct SkipBlockStats {
  int64_t executed = 0;   ///< wrapped loops run to completion
  int64_t skipped = 0;    ///< wrapped loops restored from checkpoints
  int64_t restores = 0;   ///< checkpoint loads (== skipped, kept separate
                          ///< for future multi-checkpoint restores)
  int64_t materialized = 0;
};

/// One freshly built, runnable copy of a training script: the program
/// structure plus an opaque context that owns whatever the semantic
/// callbacks capture (models, optimizers, datasets). The preamble
/// statements allocate into the context at run time, so every replay worker
/// reconstructs its objects "from the beginning", exactly like re-running
/// `python train.py` (§5.4.2).
struct ProgramInstance {
  std::unique_ptr<ir::Program> program;
  std::shared_ptr<void> context;
};

/// Rebuildable training script. Calling the factory twice must produce
/// structurally identical programs (same loop ids and statement renderings)
/// — the determinism version diffing and checkpoint keying rely on.
using ProgramFactory = std::function<Result<ProgramInstance>()>;

}  // namespace flor

#endif  // FLOR_FLOR_SKIPBLOCK_H_
