#include "flor/search.h"

#include "common/strings.h"
#include "flor/replay.h"

namespace flor {

namespace {

/// Replays exactly one epoch (sampling replay) and evaluates the predicate
/// on its work entries.
Result<bool> ProbeEpoch(Env* env, const ProgramFactory& factory,
                        const EpochPredicate& predicate, int64_t epoch,
                        const SearchOptions& options,
                        SearchResult* result) {
  FLOR_ASSIGN_OR_RETURN(ProgramInstance instance, factory());
  ReplayOptions ropts;
  ropts.run_prefix = options.run_prefix;
  ropts.sample_epochs = {epoch};
  ropts.costs = options.costs;
  ReplaySession session(env, ropts);
  exec::Frame frame;
  FLOR_ASSIGN_OR_RETURN(ReplayResult rr,
                        session.Run(instance.program.get(), &frame));
  FLOR_RETURN_IF_ERROR(rr.deferred.ToStatus());
  result->probed_epochs.push_back(epoch);
  result->total_latency_seconds += rr.runtime_seconds;
  // Only entries from the sampled epoch's context.
  std::vector<exec::LogEntry> entries;
  const std::string prefix = StrCat("e=", epoch);
  for (const auto& e : rr.logs.WorkEntries()) {
    if (e.context == prefix ||
        StartsWith(e.context, prefix + "/")) {
      entries.push_back(e);
    }
  }
  return predicate(epoch, entries);
}

}  // namespace

Result<SearchResult> SearchReplay(Env* env, const ProgramFactory& factory,
                                  const EpochPredicate& predicate,
                                  const SearchOptions& options) {
  // Discover the epoch count from the recorded manifest's loop executions.
  RunPaths paths(options.run_prefix);
  FLOR_ASSIGN_OR_RETURN(std::string manifest_bytes,
                        env->fs()->ReadFile(paths.Manifest()));
  FLOR_ASSIGN_OR_RETURN(Manifest manifest,
                        Manifest::Deserialize(manifest_bytes));
  int64_t epochs = 0;
  for (const auto& [loop_id, ni] : manifest.loop_executions)
    epochs = std::max(epochs, ni);
  if (epochs == 0)
    return Status::FailedPrecondition(
        "record run has no loop executions to search");

  SearchResult result;

  // Binary search for the false→true frontier. First check the last epoch:
  // if the condition never holds, report -1 after O(1) probes.
  FLOR_ASSIGN_OR_RETURN(bool last_holds,
                        ProbeEpoch(env, factory, predicate, epochs - 1,
                                   options, &result));
  if (!last_holds) {
    result.found_epoch = -1;
    return result;
  }

  int64_t lo = 0, hi = epochs - 1;  // invariant: predicate(hi) == true
  while (lo < hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    FLOR_ASSIGN_OR_RETURN(bool holds, ProbeEpoch(env, factory, predicate,
                                                 mid, options, &result));
    if (holds) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  result.found_epoch = hi;

  // Look forward to confirm the pattern is permanent.
  for (int64_t e = hi + 1;
       e < std::min(epochs, hi + 1 + options.confirm_epochs); ++e) {
    FLOR_ASSIGN_OR_RETURN(bool holds, ProbeEpoch(env, factory, predicate, e,
                                                 options, &result));
    if (!holds) result.confirmed = false;
  }
  return result;
}

}  // namespace flor
