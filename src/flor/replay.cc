#include "flor/replay.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "flor/instrument.h"
#include "flor/replay_plan.h"

namespace flor {

ReplaySession::ReplaySession(Env* env, ReplayOptions options)
    : env_(env), options_(std::move(options)), paths_(options_.run_prefix) {}

Result<ReplayResult> ReplaySession::Run(ir::Program* current_program,
                                        exec::Frame* frame) {
  ReplayResult result;
  result_ = &result;
  program_ = current_program;

  // Replay instruments the current version the same way record did; the
  // analysis only reads surface patterns, and log statements contribute no
  // side effects, so wrapped loops and changesets match the record run.
  InstrumentProgram(current_program);

  FLOR_ASSIGN_OR_RETURN(std::string recorded_source,
                        env_->fs()->ReadFile(paths_.Source()));
  FLOR_ASSIGN_OR_RETURN(result.probes,
                        ir::DiffForProbes(recorded_source,
                                          *current_program));
  probed_transitive_ =
      TransitivelyProbedLoops(*current_program, result.probes);

  FLOR_ASSIGN_OR_RETURN(std::string manifest_bytes,
                        env_->fs()->ReadFile(paths_.Manifest()));
  FLOR_ASSIGN_OR_RETURN(manifest_, Manifest::Deserialize(manifest_bytes));
  // The manifest decides the shard layout; Open applies the whole tier
  // configuration (bucket attach, bloom sizing + manifest seeding) in one
  // place shared with GC and the service Connection.
  store_ = CheckpointStore::Open(env_->fs(), paths_.CkptPrefix(), options_,
                                 &manifest_);
  for (const auto& rec : manifest_.records)
    records_by_key_[rec.key.ToString()] = &rec;

  FLOR_ASSIGN_OR_RETURN(std::string log_bytes,
                        env_->fs()->ReadFile(paths_.Logs()));
  FLOR_ASSIGN_OR_RETURN(record_logs_,
                        exec::LogStream::Deserialize(log_bytes));

  exec::Interpreter interp(env_, &result.logs, this);
  const double start = env_->clock()->NowSeconds();
  FLOR_RETURN_IF_ERROR(interp.Run(current_program, frame));
  result.runtime_seconds = env_->clock()->NowSeconds() - start;

  result.bloom_skipped_probes = store_->tier_stats().bloom_skipped_probes;
  result.restore_seconds = result_->restore_seconds;
  result.observed_c =
      restore_ratio_count_ > 0
          ? restore_ratio_sum_ / static_cast<double>(restore_ratio_count_)
          : 0;

  for (const auto& e : result.logs.WorkEntries()) {
    if (result.probes.probe_stmt_uids.count(e.stmt_uid))
      result.probe_entries.push_back(e);
  }

  if (options_.run_deferred_check) {
    result.deferred =
        DeferredCheck(record_logs_.entries(), result.logs.WorkEntries(),
                      result.probes.probe_stmt_uids);
  }
  result_ = nullptr;
  return result;
}

Status ReplaySession::RestoreSkipBlock(ir::Loop* loop,
                                       const CheckpointKey& key,
                                       exec::Frame* frame) {
  // result_ is only non-null while Run() is live, and RestoreSkipBlock is
  // only reached through the interpreter Run() drives — it used to guard
  // the timing accumulation on result_ but dereference the stats counter
  // unconditionally six lines later. Make the invariant explicit instead
  // of half-guarded.
  FLOR_CHECK(result_ != nullptr)
      << "RestoreSkipBlock outside a live ReplaySession::Run";
  bool from_bucket = false;
  FLOR_ASSIGN_OR_RETURN(NamedSnapshots snaps,
                        store_->Get(key, &from_bucket));
  if (from_bucket) ++result_->bucket_faults;
  for (const auto& [name, snap] : snaps) {
    if (!frame->Has(name)) {
      return Status::ReplayAnomaly(
          StrCat("checkpoint of L", loop->id(), " restores variable '", name,
                 "' which is unbound on replay"));
    }
    FLOR_RETURN_IF_ERROR(RestoreValue(snap, frame->Mutable(name)));
  }

  // Charge the restore latency (Ri) under a simulated clock and refine c.
  // A bucket-served restore pays the slower bucket read throughput.
  auto it = records_by_key_.find(key.ToString());
  if (it != records_by_key_.end()) {
    const CheckpointRecord& rec = *it->second;
    const uint64_t bytes =
        rec.nominal_raw_bytes ? rec.nominal_raw_bytes : rec.raw_bytes;
    const double ri = from_bucket
                          ? options_.costs.BucketRestoreSeconds(bytes)
                          : options_.costs.RestoreSeconds(bytes);
    if (env_->clock()->is_simulated())
      env_->clock()->AdvanceMicros(SecondsToMicros(ri));
    result_->restore_seconds += ri;
    if (rec.materialize_seconds > 0) {
      restore_ratio_sum_ += ri / rec.materialize_seconds;
      ++restore_ratio_count_;
    }
  }
  ++result_->skipblocks.restores;
  return Status::OK();
}

Result<exec::LoopAction> ReplaySession::OnSkipBlockEnter(
    ir::Loop* loop, const std::string& ctx, bool init_mode,
    exec::Frame* frame) {
  CheckpointKey key{loop->id(), ctx};
  const bool have_ckpt = records_by_key_.count(key.ToString()) > 0;

  if (init_mode) {
    // Replay initialization: SkipBlocks always restore; a missing
    // checkpoint here means the partition plan was invalid.
    if (!have_ckpt) {
      return Status::FailedPrecondition(
          StrCat("initialization needs checkpoint ", key.ToString(),
                 " which was not materialized on record"));
    }
    FLOR_RETURN_IF_ERROR(RestoreSkipBlock(loop, key, frame));
    ++result_->skipblocks.skipped;
    return exec::LoopAction::kSkip;
  }

  // Replay execution: a probed loop must re-execute to produce the
  // hindsight logs; an unprobed memoized loop is skipped.
  if (probed_transitive_.count(loop->id())) {
    ++result_->skipblocks.executed;
    return exec::LoopAction::kExecute;
  }
  if (have_ckpt) {
    FLOR_RETURN_IF_ERROR(RestoreSkipBlock(loop, key, frame));
    ++result_->skipblocks.skipped;
    return exec::LoopAction::kSkip;
  }
  ++result_->skipblocks.executed;
  return exec::LoopAction::kExecute;
}

Status ReplaySession::OnSkipBlockExit(ir::Loop*, const std::string&,
                                      exec::Frame*, double) {
  // Replay never re-materializes.
  return Status::OK();
}

Result<std::optional<exec::MainLoopPlan>> ReplaySession::PlanMainLoop(
    ir::Loop*, int64_t trip_count, exec::Frame*) {
  const std::vector<int64_t> boundaries =
      CheckpointBoundaryEpochs(program_, manifest_);

  if (!options_.sample_epochs.empty()) {
    FLOR_ASSIGN_OR_RETURN(
        WorkerPlan plan,
        PlanSampledEpochs(trip_count, options_.sample_epochs, boundaries));
    result_->effective_init = InitMode::kWeak;
    result_->partition_segments = static_cast<int64_t>(plan.iters.size());
    result_->active_workers = 1;
    result_->work_begin = plan.work_begin;
    result_->work_end = plan.work_end;
    exec::MainLoopPlan out;
    out.covers_final_epoch = plan.work_end == trip_count;
    out.iters = std::move(plan.iters);
    return std::optional<exec::MainLoopPlan>(std::move(out));
  }

  FLOR_ASSIGN_OR_RETURN(PartitionPlan plan,
                        PartitionMainLoop(trip_count, options_.num_workers,
                                          options_.init_mode, boundaries));
  result_->effective_init = plan.mode;
  result_->partition_segments = plan.segments;
  result_->active_workers = static_cast<int>(plan.workers.size());
  if (options_.worker_id >= static_cast<int>(plan.workers.size())) {
    // More workers than segments: this worker has nothing to do.
    result_->work_begin = result_->work_end = 0;
    exec::MainLoopPlan out;
    out.covers_final_epoch = false;
    return std::optional<exec::MainLoopPlan>(std::move(out));
  }
  const WorkerPlan& wp = plan.workers[static_cast<size_t>(
      options_.worker_id)];
  result_->work_begin = wp.work_begin;
  result_->work_end = wp.work_end;
  exec::MainLoopPlan out;
  out.covers_final_epoch = wp.work_end == trip_count;
  out.iters = wp.iters;
  return std::optional<exec::MainLoopPlan>(std::move(out));
}

Result<VanillaRunResult> VanillaRun(Env* env, ir::Program* program,
                                    exec::Frame* frame) {
  VanillaRunResult result;
  exec::Interpreter interp(env, &result.logs, nullptr);
  const double start = env->clock()->NowSeconds();
  FLOR_RETURN_IF_ERROR(interp.Run(program, frame));
  result.runtime_seconds = env->clock()->NowSeconds() - start;
  return result;
}

}  // namespace flor
