#include "flor/probe.h"

namespace flor {

namespace {

/// Returns true if `block` (or any nested loop body) contains a directly
/// probed loop; accumulates every enclosing loop id along probed paths.
bool MarkProbedPaths(const ir::Block& block,
                     const std::set<int32_t>& direct,
                     std::set<int32_t>* out) {
  bool any = false;
  for (const auto& node : block.nodes) {
    if (!node.is_loop()) continue;
    const ir::Loop& loop = *node.loop;
    bool probed_here = direct.count(loop.id()) > 0;
    bool probed_below = MarkProbedPaths(loop.body(), direct, out);
    if (probed_here || probed_below) {
      out->insert(loop.id());
      any = true;
    }
  }
  return any;
}

}  // namespace

std::set<int32_t> TransitivelyProbedLoops(const ir::Program& program,
                                          const ir::ProbeReport& report) {
  std::set<int32_t> out;
  MarkProbedPaths(program.top(), report.probed_loops, &out);
  return out;
}

bool OnlyOuterProbes(const ir::Program& program,
                     const ir::ProbeReport& report) {
  const auto probed = TransitivelyProbedLoops(program, report);
  for (const ir::Loop* loop : program.AllLoops()) {
    if (loop->analysis().instrumented && probed.count(loop->id()))
      return false;
  }
  return true;
}

}  // namespace flor
