// Queries across projects and versions — the paper's §8 third direction.
//
// "We believe hindsight logging could support querying the past of multiple
//  versions of a model, or even multiple different models. For example, we
//  might be looking for past Flor logs from colleagues that show the
//  'exploding/vanishing gradient' pattern."
//
// This module provides the log-side half of that vision: a registry of
// record runs on a filesystem, typed metric-series extraction from their
// logs, and cross-run pattern queries (including an exploding/vanishing
// detector matching the paper's example). The replay-side half — injecting
// a probe into *many* runs — composes from the existing ReplaySession, one
// run at a time, given each run's program factory.

#ifndef FLOR_FLOR_QUERY_H_
#define FLOR_FLOR_QUERY_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "env/filesystem.h"
#include "exec/log_stream.h"

namespace flor {

/// One discovered record run.
struct RunInfo {
  std::string prefix;    ///< filesystem prefix of the run
  std::string workload;  ///< manifest's workload name
  double record_runtime_seconds = 0;
  int64_t checkpoints = 0;
};

/// Scans `root` for record runs (directories containing a manifest).
Result<std::vector<RunInfo>> ListRuns(const FileSystem* fs,
                                      const std::string& root);

/// Extracts the numeric series of `label` from a run's record logs, in log
/// order. Non-numeric texts fail with InvalidArgument.
Result<std::vector<double>> MetricSeries(const FileSystem* fs,
                                         const std::string& run_prefix,
                                         const std::string& label);

/// Predicate over a run's full record log stream.
using RunPredicate =
    std::function<Result<bool>(const RunInfo& run,
                               const std::vector<exec::LogEntry>& logs)>;

/// Returns the runs under `root` whose record logs satisfy `predicate`.
Result<std::vector<RunInfo>> FindRuns(const FileSystem* fs,
                                      const std::string& root,
                                      const RunPredicate& predicate);

/// The paper's worked example: does the series first explode (a value at
/// least `explode_factor` × its start) and later vanish (a value at most
/// `vanish_factor` × its peak)?
bool ShowsExplodingVanishingPattern(const std::vector<double>& series,
                                    double explode_factor = 10.0,
                                    double vanish_factor = 0.01);

}  // namespace flor

#endif  // FLOR_FLOR_QUERY_H_
