// Probe resolution: from a version diff to per-loop skippability.
//
// A loop cannot be skipped on replay if *it or any loop nested inside it*
// was probed — restoring its Loop End Checkpoint would jump over the probed
// code without producing the requested logs (paper §3.2: "Flor skips
// memoized code-blocks on replay, unless their internals are probed").

#ifndef FLOR_FLOR_PROBE_H_
#define FLOR_FLOR_PROBE_H_

#include <set>

#include "ir/diff.h"
#include "ir/program.h"

namespace flor {

/// Loops (by id) that are probed directly or contain a probed descendant.
std::set<int32_t> TransitivelyProbedLoops(const ir::Program& program,
                                          const ir::ProbeReport& report);

/// True if replay of this program can skip every instrumented loop — i.e.
/// all probes (if any) sit outside instrumented loops. This is the paper's
/// "outer loop probe" fast path with latencies in minutes (Fig. 12 top).
bool OnlyOuterProbes(const ir::Program& program,
                     const ir::ProbeReport& report);

}  // namespace flor

#endif  // FLOR_FLOR_PROBE_H_
