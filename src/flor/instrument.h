// Instrumentation pass (paper §4.2, §5.2): decides which loops get wrapped
// in SkipBlocks and finalizes their static changesets.
//
// Policy, matching the paper:
//   * The main loop is never wrapped — it is managed by the Flor generator
//     for hindsight parallelism ("Flor automatically ignores the main loop,
//     and encloses the nested training loop inside a SkipBlock").
//   * Any other loop is wrapped iff the side-effect analysis accepted it
//     (no rule-0/5 refusal anywhere in its body, including nested loops).

#ifndef FLOR_FLOR_INSTRUMENT_H_
#define FLOR_FLOR_INSTRUMENT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ir/program.h"

namespace flor {

/// Summary of an instrumentation pass.
struct InstrumentReport {
  int loops_total = 0;
  int loops_instrumented = 0;
  /// (loop id, reason) for each refused loop.
  std::vector<std::pair<int32_t, std::string>> refusals;
};

/// Analyzes the program and wraps eligible loops. Idempotent. The result is
/// written into each loop's LoopAnalysis (ir/program.h).
InstrumentReport InstrumentProgram(ir::Program* program);

/// Instrumented loops that sit directly in the main loop's body — the loops
/// whose Loop End Checkpoints decouple main-loop iterations (§4.1). Empty
/// if there is no main loop.
std::vector<ir::Loop*> SkippableEpochLoops(ir::Program* program);

}  // namespace flor

#endif  // FLOR_FLOR_INSTRUMENT_H_
