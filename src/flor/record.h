// RecordSession — Flor record (paper §3.1, §5).
//
// Running a program under a RecordSession is the C++ analog of executing an
// `import flor` training script:
//   1. the program is instrumented (SkipBlocks around eligible loops),
//   2. the rendered source is saved (the probe-diff baseline),
//   3. execution proceeds; at every wrapped-loop exit the adaptive
//      controller tests the Joint Invariant, and accepted checkpoints are
//      snapshotted on the training thread and materialized in the
//      background,
//   4. the log stream and the checkpoint manifest are persisted.
//
// The background lifecycle continues past materialization when configured:
// with RecordOptions::spool_prefix set, every checkpoint is handed to a
// per-shard batched SpoolQueue the moment the materializer lands it
// (spool-as-you-materialize — the paper's background spooler, §6.2), with
// backpressure through the spooler's bounded queue depth; with
// RecordOptions::gc.keep_last_k set, old checkpoints are retired per shard
// after the run's artifacts are persisted (keep-last-K-per-loop,
// checkpoint/gc.h). Without a spool mirror the result's manifest reflects
// the survivors; with one, the mirror is the store's bucket tier, so GC
// demotes instead — local copies go, the manifest stays complete, and
// replay configured with the same bucket prefix faults old epochs back in.

#ifndef FLOR_FLOR_RECORD_H_
#define FLOR_FLOR_RECORD_H_

#include <memory>
#include <string>
#include <vector>

#include "checkpoint/gc.h"
#include "checkpoint/materializer.h"
#include "checkpoint/spool.h"
#include "checkpoint/store.h"
#include "env/env.h"
#include "exec/interpreter.h"
#include "flor/adaptive.h"
#include "flor/instrument.h"
#include "flor/skipblock.h"

namespace flor {

/// Record configuration.
struct RecordOptions {
  /// Filesystem prefix for this run's artifacts.
  std::string run_prefix = "run";
  /// Workload name stored in the manifest (informational).
  std::string workload;
  /// False disables instrumentation entirely — the "vanilla execution"
  /// baseline the paper compares against.
  bool checkpointing_enabled = true;
  /// Shard count of the run's checkpoint store (recorded in the manifest
  /// so replay finds objects without probing). 1 = legacy flat layout.
  int ckpt_shards = 1;
  MaterializerOptions materializer;
  AdaptiveOptions adaptive;
  /// Non-empty enables spool-as-you-materialize: each checkpoint is
  /// enqueued on a background SpoolQueue as soon as it is durably stored,
  /// mirrored at "<spool_prefix>/<object path>" (prefix "s3" mirrors
  /// run/ckpt/... under s3/run/ckpt/...). Shard-local batching; per-shard
  /// SpoolReports in RecordResult after the end-of-run drain.
  std::string spool_prefix;
  SpoolOptions spool;
  /// Externally owned spool queue (a flor::Connection's shared spooler):
  /// when set together with spool_prefix, the session enqueues through it
  /// instead of constructing a private queue, so concurrent record
  /// sessions share one spooler's batching and backpressure (`spool` is
  /// then ignored — the owner configured the queue). The queue's shard
  /// count must match ckpt_shards. The end-of-run drain drains the shared
  /// queue (other sessions' pending batches included — the group-drain
  /// semantics of a shared spooler), and RecordResult reports the spool
  /// *delta* observed across this session's run, not the queue's lifetime
  /// totals.
  SpoolQueue* shared_spool = nullptr;
  /// Checkpoint retention, applied after logs + manifest are persisted:
  /// keep_last_k == 0 (default) keeps everything and leaves the store
  /// byte-identical; K > 0 retires older epochs per loop, shard-locally
  /// (checkpoint/gc.h). With spool_prefix set this pass demotes to the
  /// bucket tier (local deletes only, manifest intact); bucket copies are
  /// only reclaimed by the separate bucket GC (RetireBucketCheckpoints).
  GcPolicy gc;
  /// Nominal (paper-scale) raw bytes per checkpoint for the simulated cost
  /// model; 0 = use actual snapshot sizes.
  uint64_t nominal_checkpoint_bytes = 0;
  /// Optional vanilla runtime of the same program (stored in the manifest
  /// so benches can report overhead without re-deriving it).
  double vanilla_runtime_seconds = 0;
};

/// Outcome of a record run.
struct RecordResult {
  double runtime_seconds = 0;
  SkipBlockStats skipblocks;
  exec::LogStream logs;
  Manifest manifest;
  InstrumentReport instrument;
  /// Training-thread materialization cost (the record overhead numerator).
  double materialize_main_seconds = 0;
  double materialize_stall_seconds = 0;
  /// Group-commit slot accounting (materializer.group_commit_window): how
  /// many durability syncs the run paid and how many checkpoints shared
  /// each. At window 1, slots == joins == syncs (one sync per checkpoint).
  GroupCommitStats group_commit;
  std::vector<AdaptiveDecision> adaptive_trace;
  /// Per-shard spool outcomes (empty when spooling is disabled) and their
  /// aggregate. Spooling runs as a background tail: its drain is not
  /// charged to runtime_seconds.
  std::vector<SpoolReport> spool_shard_reports;
  SpoolReport spool_report;
  /// Retention outcome (all-zero when gc.keep_last_k == 0). When
  /// checkpoints were retired, `manifest` above reflects the survivors.
  GcReport gc_report;
};

/// Executes one program under Flor record. Single-use.
class RecordSession : public exec::ExecHooks {
 public:
  /// Does not own `env`.
  RecordSession(Env* env, RecordOptions options);

  /// Instruments, executes, persists. `frame` starts empty; the program's
  /// preamble populates it.
  Result<RecordResult> Run(ir::Program* program, exec::Frame* frame);

  // --- ExecHooks (SkipBlock parameterization for record execution) ---
  Result<exec::LoopAction> OnSkipBlockEnter(ir::Loop* loop,
                                            const std::string& ctx,
                                            bool init_mode,
                                            exec::Frame* frame) override;
  Status OnSkipBlockExit(ir::Loop* loop, const std::string& ctx,
                         exec::Frame* frame,
                         double compute_seconds) override;
  Result<std::optional<exec::MainLoopPlan>> PlanMainLoop(
      ir::Loop* loop, int64_t trip_count, exec::Frame* frame) override;

 private:
  Env* env_;
  RecordOptions options_;
  RunPaths paths_;
  std::unique_ptr<CheckpointStore> store_;
  /// Declared before materializer_: the materializer's background jobs
  /// enqueue into the spooler through on_durable, so the materializer must
  /// be destroyed (and drained) first.
  std::unique_ptr<SpoolQueue> spool_;
  std::unique_ptr<Materializer> materializer_;
  AdaptiveController adaptive_;
  Manifest manifest_;
  SkipBlockStats stats_;
};

}  // namespace flor

#endif  // FLOR_FLOR_RECORD_H_
