#include "flor/record.h"

#include "analysis/augment.h"
#include "common/strings.h"

namespace flor {

RecordSession::RecordSession(Env* env, RecordOptions options)
    : env_(env), options_(std::move(options)), paths_(options_.run_prefix),
      adaptive_(options_.adaptive) {
  // The spool mirror doubles as the store's bucket tier: end-of-run GC
  // then demotes (deletes local copies, keeps the manifest) instead of
  // retiring outright, and replay configured with the same bucket prefix
  // faults demoted checkpoints back in. Constructed directly (not via
  // CheckpointStore::Open) on purpose: this ctor is on the measured record
  // hot path (bench_table4_storage) and the direct form keeps the
  // construction inline; it is allowlisted in check.sh's construction lint.
  store_ = std::make_unique<CheckpointStore>(env_->fs(), paths_.CkptPrefix(),
                                             options_.ckpt_shards);
  if (!options_.spool_prefix.empty()) {
    store_->AttachBucket(options_.spool_prefix);
    // Spool-as-you-materialize: the materializer hands each durably stored
    // checkpoint to the spooler's shard-local batch. In wall mode this
    // runs on the materializer's worker thread, and a full spool queue
    // (max_queued_batches) backpressures that worker — and, through the
    // materializer's own bounded in-flight depth, eventually the training
    // thread — instead of buffering unboundedly. A service Connection
    // injects its shared queue through shared_spool; a standalone session
    // owns a private one.
    if (options_.shared_spool == nullptr) {
      spool_ = std::make_unique<SpoolQueue>(env_->fs(), store_->num_shards(),
                                            options_.spool);
    }
    SpoolQueue* spool =
        options_.shared_spool != nullptr ? options_.shared_spool
                                         : spool_.get();
    options_.materializer.on_durable = [this, spool](const CheckpointKey& key,
                                                     uint64_t stored_bytes) {
      const std::string src = store_->PathFor(key);
      spool->Enqueue(store_->ShardOf(key), src, store_->BucketPathFor(key),
                     stored_bytes);
    };
  }
  materializer_ = std::make_unique<Materializer>(env_, options_.materializer);
}

namespace {

// Per-shard spool delta across one session's run: a shared queue's
// counters are cumulative over every session it served, so a session
// reports what moved on its watch. first_error is kept only when it
// appeared during this window (error count grew).
SpoolReport SpoolReportDelta(const SpoolReport& after,
                             const SpoolReport& before) {
  SpoolReport d;
  d.objects = after.objects - before.objects;
  d.bytes = after.bytes - before.bytes;
  d.batches = after.batches - before.batches;
  d.retries = after.retries - before.retries;
  d.failed_objects = after.failed_objects - before.failed_objects;
  d.monthly_cost_dollars =
      after.monthly_cost_dollars - before.monthly_cost_dollars;
  if (d.failed_objects > 0 || d.retries > 0) d.first_error = after.first_error;
  return d;
}

}  // namespace

Result<RecordResult> RecordSession::Run(ir::Program* program,
                                        exec::Frame* frame) {
  RecordResult result;
  SpoolQueue* spool =
      !options_.spool_prefix.empty()
          ? (options_.shared_spool != nullptr ? options_.shared_spool
                                              : spool_.get())
          : nullptr;
  std::vector<SpoolReport> spool_baseline;
  if (spool != nullptr) {
    if (spool->num_shards() != store_->num_shards()) {
      return Status::InvalidArgument(
          StrCat("shared spool has ", spool->num_shards(),
                 " shard(s) but the run's checkpoint store has ",
                 store_->num_shards()));
    }
    for (int shard = 0; shard < spool->num_shards(); ++shard)
      spool_baseline.push_back(spool->ShardReport(shard));
  }
  if (options_.checkpointing_enabled) {
    result.instrument = InstrumentProgram(program);
  }

  // Save the source before executing — this is the version replay diffs
  // against ("Flor stores a copy of the code", §3.1).
  FLOR_RETURN_IF_ERROR(
      env_->fs()->WriteFile(paths_.Source(), program->RenderSource()));

  manifest_.workload = options_.workload;
  manifest_.vanilla_runtime_seconds = options_.vanilla_runtime_seconds;
  manifest_.shard_count = store_->num_shards();

  exec::Interpreter interp(env_, &result.logs,
                           options_.checkpointing_enabled ? this : nullptr);
  const double start = env_->clock()->NowSeconds();
  FLOR_RETURN_IF_ERROR(interp.Run(program, frame));
  // The end-of-run join with background children counts toward runtime.
  materializer_->Drain();
  result.runtime_seconds = env_->clock()->NowSeconds() - start;

  // Spooling is a background tail (the paper's spooler outlives training):
  // drain it after the runtime measurement, so enabling it never shows up
  // as record overhead.
  if (spool != nullptr) {
    spool->Drain();
    for (int shard = 0; shard < spool->num_shards(); ++shard)
      result.spool_shard_reports.push_back(SpoolReportDelta(
          spool->ShardReport(shard),
          spool_baseline[static_cast<size_t>(shard)]));
    result.spool_report = AggregateSpoolReports(result.spool_shard_reports);
  }

  // Persist logs + manifest.
  for (ir::Loop* loop : program->AllLoops()) {
    const int64_t ni = adaptive_.executions(loop->id());
    if (ni > 0) manifest_.loop_executions[loop->id()] = ni;
  }
  manifest_.record_runtime_seconds = result.runtime_seconds;
  manifest_.c_estimate = adaptive_.c();
  FLOR_RETURN_IF_ERROR(
      env_->fs()->WriteFile(paths_.Logs(), result.logs.Serialize()));
  FLOR_RETURN_IF_ERROR(
      env_->fs()->WriteFile(paths_.Manifest(), manifest_.Serialize()));

  // Retirement closes the lifecycle: the full manifest is durable above.
  // With a spool mirror the store has a bucket tier attached, so this pass
  // *demotes* — local copies of old epochs are deleted, the manifest stays
  // complete, and replay faults them back in from the bucket. Without one
  // it prunes outright (atomic manifest rewrite first, shard-local deletes
  // after), so replay plans only ever see surviving epochs.
  if (options_.gc.keep_last_k > 0) {
    FLOR_ASSIGN_OR_RETURN(
        result.gc_report,
        RetireCheckpoints(store_.get(), &manifest_, paths_.Manifest(),
                          options_.gc));
  }

  result.skipblocks = stats_;
  result.manifest = manifest_;
  result.materialize_main_seconds = materializer_->total_main_thread_seconds();
  result.materialize_stall_seconds = materializer_->total_stall_seconds();
  result.group_commit = materializer_->group_commit_stats();
  result.adaptive_trace = adaptive_.trace();
  return result;
}

Result<exec::LoopAction> RecordSession::OnSkipBlockEnter(
    ir::Loop*, const std::string&, bool, exec::Frame*) {
  // Record execution always runs the enclosed loop.
  return exec::LoopAction::kExecute;
}

Status RecordSession::OnSkipBlockExit(ir::Loop* loop, const std::string& ctx,
                                      exec::Frame* frame,
                                      double compute_seconds) {
  ++stats_.executed;

  // Joint Invariant test comes first: "loops are tested after executing,
  // but before materialization" (§5.3.3).
  const uint64_t nominal = options_.nominal_checkpoint_bytes;
  double mi_estimate;
  if (nominal > 0) {
    mi_estimate = options_.materializer.costs.MaterializeSeconds(nominal);
  } else {
    // Estimate from the (cheaply computable) snapshot size of the changeset
    // variables currently in the frame.
    uint64_t bytes = 0;
    for (const auto& name : loop->analysis().changeset) {
      auto v = frame->Get(name);
      if (v.ok()) bytes += ir::SnapshotValue(*v).ApproxBytes();
    }
    mi_estimate = options_.materializer.costs.MaterializeSeconds(bytes);
  }
  if (!adaptive_.ShouldMaterialize(loop->id(), compute_seconds,
                                   mi_estimate)) {
    return Status::OK();
  }

  // Runtime changeset augmentation with library knowledge (§5.2.1): find
  // optimizers/schedulers in the changeset and pull in their referents.
  const std::vector<std::string> augmented =
      analysis::AugmentChangeset(*frame, loop->analysis().changeset);

  // Snapshot on the training thread (the COW copy), then hand off.
  NamedSnapshots snaps;
  for (const auto& name : augmented) {
    auto v = frame->Get(name);
    if (!v.ok()) {
      return Status::FailedPrecondition(
          StrCat("changeset variable '", name,
                 "' unbound at Loop End Checkpoint of L", loop->id()));
    }
    snaps.emplace_back(name, ir::SnapshotValue(*v));
  }

  CheckpointKey key{loop->id(), ctx};
  FLOR_ASSIGN_OR_RETURN(
      MaterializeReceipt receipt,
      materializer_->Materialize(store_.get(), key, std::move(snaps),
                                 nominal));
  ++stats_.materialized;

  CheckpointRecord rec;
  rec.key = key;
  rec.epoch = key.EpochIndex();
  rec.raw_bytes = receipt.raw_bytes;
  rec.stored_bytes = receipt.stored_bytes;
  rec.nominal_raw_bytes = nominal;
  rec.materialize_seconds =
      receipt.background_seconds > 0
          ? receipt.background_seconds
          : options_.materializer.costs.MaterializeSeconds(
                nominal ? nominal : receipt.raw_bytes);
  rec.shard = store_->ShardOf(key);
  manifest_.records.push_back(std::move(rec));
  return Status::OK();
}

Result<std::optional<exec::MainLoopPlan>> RecordSession::PlanMainLoop(
    ir::Loop*, int64_t, exec::Frame*) {
  // Record runs the full range; no generator re-planning.
  return std::optional<exec::MainLoopPlan>();
}

}  // namespace flor
