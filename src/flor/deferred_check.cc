#include "flor/deferred_check.h"

#include <map>

#include "common/strings.h"

namespace flor {

Status DeferredCheckReport::ToStatus() const {
  if (ok) return Status::OK();
  return Status::ReplayAnomaly(anomalies.empty() ? "replay anomaly"
                                                 : anomalies.front());
}

DeferredCheckReport DeferredCheck(
    const std::vector<exec::LogEntry>& record,
    const std::vector<exec::LogEntry>& replay,
    const std::set<int32_t>& probe_uids) {
  constexpr size_t kMaxAnomalies = 8;
  DeferredCheckReport report;

  // Index record entries by (label, context): list of texts in order, with
  // a consumption cursor so duplicate log lines (same statement firing
  // several times in one context) pair off one-to-one. Identity is the log
  // *label* rather than the statement uid because inserting hindsight
  // probes shifts the uids of later statements between program versions —
  // labels are the stable cross-version name of a logged quantity (exactly
  // what a TensorBoard tag is in the paper's setting).
  struct Bucket {
    std::vector<const exec::LogEntry*> entries;
    size_t next = 0;
  };
  std::map<std::pair<std::string, std::string>, Bucket> index;
  for (const auto& e : record) {
    if (e.init_mode) continue;
    index[{e.label, e.context}].entries.push_back(&e);
  }

  auto add_anomaly = [&](std::string msg) {
    report.ok = false;
    if (report.anomalies.size() < kMaxAnomalies)
      report.anomalies.push_back(std::move(msg));
  };

  for (const auto& e : replay) {
    if (e.init_mode) continue;
    if (probe_uids.count(e.stmt_uid)) continue;  // hindsight output is new
    ++report.entries_compared;
    auto it = index.find({e.label, e.context});
    if (it == index.end()) {
      add_anomaly(StrCat("replay logged '", e.label, "=", e.text, "' at [",
                         e.context,
                         "] but record has no entry for that statement"));
      continue;
    }
    Bucket& bucket = it->second;
    if (bucket.next >= bucket.entries.size()) {
      add_anomaly(StrCat("replay logged '", e.label, "' at [", e.context,
                         "] more times than record did"));
      continue;
    }
    const exec::LogEntry* rec = bucket.entries[bucket.next++];
    if (rec->text != e.text) {
      add_anomaly(StrCat("log divergence at [", e.context, "] '", e.label,
                         "': record='", rec->text, "' replay='", e.text,
                         "'"));
    }
  }
  return report;
}

}  // namespace flor
