// Iterator partitioning for hindsight parallelism (paper §5.4.1).
//
// The Flor generator splits the main loop's iterations across G workers.
// Partition boundaries must fall where a worker can reconstruct its start
// state: epoch e is a valid start iff e == 0 or epoch e-1 has Loop End
// Checkpoints for every skippable epoch loop. Densely checkpointed
// workloads partition anywhere; sparsely checkpointed ones (RTE/CoLA under
// adaptive checkpointing) are limited to the checkpointed epochs — which is
// why those workloads bottom out at 2/6 of vanilla replay time on 4 GPUs
// (Fig. 10).
//
// Initialization modes (§5.4.2):
//   * strong — iterate every epoch before the work segment in init mode,
//     restoring each from its checkpoint (the default; correctness follows
//     from loop memoization).
//   * weak — jump straight to epoch (start-1) and restore only it; required
//     when checkpointing is sparse.

#ifndef FLOR_FLOR_PARTITION_H_
#define FLOR_FLOR_PARTITION_H_

#include <vector>

#include "common/status.h"
#include "exec/interpreter.h"

namespace flor {

/// Worker start-state reconstruction strategy.
enum class InitMode : uint8_t { kStrong = 0, kWeak = 1 };

const char* InitModeName(InitMode m);

/// One worker's share of the main loop.
struct WorkerPlan {
  int worker_id = 0;
  int64_t work_begin = 0;  ///< first epoch of the work segment
  int64_t work_end = 0;    ///< one past the last epoch
  /// Full planned iteration sequence (init iterations then work).
  std::vector<exec::PlannedIter> iters;

  int64_t work_epochs() const { return work_end - work_begin; }
};

/// A full partitioning of the main loop.
struct PartitionPlan {
  InitMode mode = InitMode::kStrong;
  std::vector<WorkerPlan> workers;
  /// Number of candidate segments (partitioning granularity; equals the
  /// epoch count when checkpointing is dense).
  int64_t segments = 0;
  /// Epochs of the largest work segment (load-balance ceiling: max speedup
  /// = epochs / max_segment_epochs, the paper's 200/13 example).
  int64_t max_worker_epochs = 0;
};

/// Partitions `epochs` main-loop iterations over `num_workers` workers.
/// `ckpt_epochs` lists epochs whose end state is checkpointed (sorted).
/// `requested` falls back from kStrong to kWeak when checkpoints are
/// sparse; the effective mode is in the returned plan.
Result<PartitionPlan> PartitionMainLoop(int64_t epochs, int num_workers,
                                        InitMode requested,
                                        const std::vector<int64_t>&
                                            ckpt_epochs);

/// Sampling replay (paper §8, "Partial Replay: Search and Approximation"):
/// plans the execution of an arbitrary sorted set of epochs, weak-
/// initializing before each non-contiguous jump. Each sampled epoch k with
/// k-1 not itself sampled-and-just-executed requires a checkpoint at k-1.
Result<WorkerPlan> PlanSampledEpochs(int64_t epochs,
                                     const std::vector<int64_t>& sample,
                                     const std::vector<int64_t>& ckpt_epochs);

}  // namespace flor

#endif  // FLOR_FLOR_PARTITION_H_
