// Static side-effect analysis for lean checkpointing (paper §5.2).
//
// Per loop, three steps:
//   1. Rule application (Table 1) over the body, in order, accumulating the
//      changeset. Rules 0/5 refuse the loop ("No Estimate"); a refused
//      nested loop refuses its parent (the parent's checkpoint could not
//      capture the nested effects).
//   2. Loop-scoped filtering: changeset variables first defined *inside* the
//      loop body are dropped — they are assumed local and dead after the
//      loop. This keeps huge per-batch temporaries (batch, preds, avg_loss
//      in the paper's Fig. 6) out of checkpoints.
//   3. Library-knowledge augmentation is *runtime* work (it needs value
//      types), provided by analysis/augment.h.
//
// The analysis is deliberately unsafe (it trusts surface patterns); the
// deferred checks of flor/deferred_check.h are the mitigation, exactly as
// in the paper (§5.2.2).

#ifndef FLOR_ANALYSIS_SIDE_EFFECT_H_
#define FLOR_ANALYSIS_SIDE_EFFECT_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/program.h"

namespace flor {
namespace analysis {

/// Analysis result for one loop.
struct LoopReport {
  bool eligible = false;
  std::string refusal;                  ///< set when !eligible
  std::vector<std::string> changeset;   ///< after loop-scoped filtering
  std::vector<std::string> filtered;    ///< removed as loop-scoped
  std::vector<int> rules_fired;         ///< rule per analyzed statement
};

/// Analyzes one loop. `defined_before` = variables assigned in the program
/// before the loop starts (in any enclosing scope).
LoopReport AnalyzeLoop(const ir::Loop& loop,
                       const std::set<std::string>& defined_before);

/// Walks the whole program in execution order, analyzing every loop and
/// writing results into each loop's LoopAnalysis (instrumented stays false;
/// policy decisions such as wrapping live in flor/instrument.h).
void AnalyzeProgram(ir::Program* program);

}  // namespace analysis
}  // namespace flor

#endif  // FLOR_ANALYSIS_SIDE_EFFECT_H_
