#include "analysis/side_effect.h"

#include <algorithm>

#include "analysis/changeset.h"
#include "common/strings.h"

namespace flor {
namespace analysis {

namespace {

/// Accumulates the raw (unfiltered) changeset of a loop body. Returns false
/// with `refusal` set when a rule refuses.
bool AccumulateBody(const ir::Block& block, std::set<std::string>* changeset,
                    std::vector<int>* rules_fired, std::string* refusal) {
  for (const auto& node : block.nodes) {
    if (node.is_stmt()) {
      const ir::Stmt& stmt = *node.stmt;
      RuleOutcome outcome = ApplyRules(stmt, *changeset);
      if (outcome.rule >= 0) rules_fired->push_back(outcome.rule);
      if (outcome.refuse) {
        *refusal = StrCat("rule ", outcome.rule, " fired on '",
                          stmt.Render(), "'");
        return false;
      }
      for (const auto& v : outcome.delta) changeset->insert(v);
    } else {
      // A nested loop: its raw changeset joins the parent's; the parent's
      // own filtering pass later removes anything scoped to the parent
      // body, and the nested loop's iteration variable is scoped to it.
      const ir::Loop& nested = *node.loop;
      std::set<std::string> nested_changeset;
      std::vector<int> nested_rules;
      std::string nested_refusal;
      if (!AccumulateBody(nested.body(), &nested_changeset, &nested_rules,
                          &nested_refusal)) {
        *refusal = StrCat("nested loop L", nested.id(),
                          " refused: ", nested_refusal);
        return false;
      }
      rules_fired->insert(rules_fired->end(), nested_rules.begin(),
                          nested_rules.end());
      // Rule 0 across nesting: a later assignment to a variable the nested
      // loop modified would hide its pre-state, so merged variables count
      // as "in the changeset" for subsequent statements.
      for (const auto& v : nested_changeset) changeset->insert(v);
      // The nested loop's iteration variable is scoped to it.
      changeset->erase(nested.iter().var);
    }
  }
  return true;
}

}  // namespace

LoopReport AnalyzeLoop(const ir::Loop& loop,
                       const std::set<std::string>& defined_before) {
  LoopReport report;
  std::set<std::string> raw;
  if (!AccumulateBody(loop.body(), &raw, &report.rules_fired,
                      &report.refusal)) {
    report.eligible = false;
    return report;
  }
  // Loop-scoped filtering: keep only variables already defined before the
  // loop; everything first assigned inside the body is assumed local.
  raw.erase(loop.iter().var);
  for (const auto& v : raw) {
    if (defined_before.count(v)) {
      report.changeset.push_back(v);
    } else {
      report.filtered.push_back(v);
    }
  }
  std::sort(report.changeset.begin(), report.changeset.end());
  std::sort(report.filtered.begin(), report.filtered.end());
  report.eligible = true;
  return report;
}

namespace {

void AnalyzeBlock(ir::Block* block, std::set<std::string>* defined) {
  for (auto& node : block->nodes) {
    if (node.is_stmt()) {
      for (const auto& t : node.stmt->targets) defined->insert(t);
      continue;
    }
    ir::Loop* loop = node.loop.get();
    LoopReport report = AnalyzeLoop(*loop, *defined);
    ir::LoopAnalysis& out = loop->analysis();
    out.instrumented = false;  // policy applied later by flor/instrument
    out.refusal = report.eligible ? "" : report.refusal;
    out.changeset = report.changeset;
    out.filtered = report.filtered;
    // Descend: nested loops get their own reports with the defined set as
    // of their position (loop iter var + earlier body targets count).
    defined->insert(loop->iter().var);
    AnalyzeBlock(&loop->body(), defined);
  }
}

}  // namespace

void AnalyzeProgram(ir::Program* program) {
  // AnalyzeBlock mutates `defined` in program order, so each loop sees
  // exactly the variables assigned before it began.
  std::set<std::string> defined;
  AnalyzeBlock(&program->top(), &defined);
}

}  // namespace analysis
}  // namespace flor
