#include "analysis/augment.h"

#include <algorithm>
#include <set>

namespace flor {
namespace analysis {

namespace {

/// Frame variables whose value is a ModuleRef to `target`.
void AddModuleVars(const exec::Frame& frame, const nn::Module* target,
                   std::set<std::string>* out) {
  for (const auto& name : frame.Names()) {
    auto v = frame.Get(name);
    if (v.ok() && v->kind() == ir::ValueKind::kModule &&
        v->AsModule() == target) {
      out->insert(name);
    }
  }
}

/// Frame variables whose value is an OptimizerRef to `target`.
void AddOptimizerVars(const exec::Frame& frame, const nn::Optimizer* target,
                      std::set<std::string>* out) {
  for (const auto& name : frame.Names()) {
    auto v = frame.Get(name);
    if (v.ok() && v->kind() == ir::ValueKind::kOptimizer &&
        v->AsOptimizer() == target) {
      out->insert(name);
    }
  }
}

/// Frame variables holding a scheduler that *drives* `target` (the reverse
/// edge). Required for anomaly-free weak initialization: the optimizer's
/// future LR trajectory is a function of the scheduler's counter, so a
/// checkpoint that restores the optimizer without its scheduler would let
/// the first post-restore scheduler.step() write a wrong LR. The paper
/// reports no weak-init anomalies on its workloads (§5.4.2), which entails
/// this state being captured; we encode it as a third library-knowledge
/// fact.
void AddSchedulerVarsDriving(const exec::Frame& frame,
                             const nn::Optimizer* target,
                             std::set<std::string>* out) {
  for (const auto& name : frame.Names()) {
    auto v = frame.Get(name);
    if (v.ok() && v->kind() == ir::ValueKind::kScheduler &&
        v->AsScheduler()->optimizer() == target) {
      out->insert(name);
    }
  }
}

}  // namespace

std::vector<std::string> AugmentChangeset(
    const exec::Frame& frame, const std::vector<std::string>& changeset) {
  std::set<std::string> result(changeset.begin(), changeset.end());

  // Fixpoint: scheduler pulls optimizer; optimizer pulls model. Two passes
  // suffice for the scheduler → optimizer → model chain, but iterate until
  // stable for robustness under aliasing.
  for (;;) {
    const size_t before = result.size();
    std::set<std::string> additions;
    for (const auto& name : result) {
      auto v = frame.Get(name);
      if (!v.ok()) continue;
      if (v->kind() == ir::ValueKind::kScheduler) {
        AddOptimizerVars(frame, v->AsScheduler()->optimizer(), &additions);
      } else if (v->kind() == ir::ValueKind::kOptimizer) {
        AddModuleVars(frame, v->AsOptimizer()->model(), &additions);
        AddSchedulerVarsDriving(frame, v->AsOptimizer(), &additions);
      }
    }
    result.insert(additions.begin(), additions.end());
    if (result.size() == before) break;
  }
  return {result.begin(), result.end()};
}

}  // namespace analysis
}  // namespace flor
