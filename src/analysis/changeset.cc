#include "analysis/changeset.h"

namespace flor {
namespace analysis {

RuleOutcome ApplyRules(const ir::Stmt& stmt,
                       const std::set<std::string>& changeset_so_far) {
  RuleOutcome out;
  using P = ir::StmtPattern;

  if (stmt.pattern == P::kLog) {
    return out;  // no rule; probes never contribute side effects
  }

  // Rule 0 has the highest precedence: any assignment whose target was
  // already modified in this loop body would lose the variable's old value
  // from the changeset.
  const bool is_assignment = stmt.pattern == P::kMethodAssign ||
                             stmt.pattern == P::kCallAssign ||
                             stmt.pattern == P::kAssign;
  if (is_assignment) {
    for (const auto& target : stmt.targets) {
      if (changeset_so_far.count(target)) {
        out.rule = 0;
        out.refuse = true;
        return out;
      }
    }
  }

  switch (stmt.pattern) {
    case P::kMethodAssign:  // Rule 1: {obj, v1..vn}
      out.rule = 1;
      out.delta.push_back(stmt.receiver);
      for (const auto& t : stmt.targets) out.delta.push_back(t);
      return out;
    case P::kCallAssign:  // Rule 2: {v1..vn}
      out.rule = 2;
      out.delta = stmt.targets;
      return out;
    case P::kAssign:  // Rule 3: {v1..vn}
      out.rule = 3;
      out.delta = stmt.targets;
      return out;
    case P::kMethodCall:  // Rule 4: {obj}
      out.rule = 4;
      out.delta.push_back(stmt.receiver);
      return out;
    case P::kOpaqueCall:  // Rule 5: No Estimate
      out.rule = 5;
      out.refuse = true;
      return out;
    case P::kLog:
      return out;  // unreachable; handled above
  }
  return out;
}

}  // namespace analysis
}  // namespace flor
