// Runtime changeset augmentation with library knowledge (paper §5.2.1).
//
// "For PyTorch, it suffices to encode two facts: (a) the model may be
//  updated via the optimizer; and (b) the optimizer may be updated via the
//  learning rate schedule. ... This changeset augmentation is done at
//  runtime rather than statically, so Flor has an opportunity to check
//  whether any object in the changeset is an instance of a PyTorch
//  optimizer or learning rate scheduler."
//
// Here: a changeset variable holding a SchedulerRef pulls in the frame
// variable bound to its optimizer; an OptimizerRef pulls in the variable(s)
// bound to its model. Resolution is by referent identity over the live
// frame, iterated to a fixpoint (scheduler → optimizer → model).

#ifndef FLOR_ANALYSIS_AUGMENT_H_
#define FLOR_ANALYSIS_AUGMENT_H_

#include <string>
#include <vector>

#include "exec/frame.h"

namespace flor {
namespace analysis {

/// Returns the changeset augmented with inferred side-effect targets,
/// sorted and deduplicated. Variables in `changeset` missing from the frame
/// are kept verbatim (they may be bound later; restoration will surface any
/// real problem).
std::vector<std::string> AugmentChangeset(
    const exec::Frame& frame, const std::vector<std::string>& changeset);

}  // namespace analysis
}  // namespace flor

#endif  // FLOR_ANALYSIS_AUGMENT_H_
