// Statement-level changeset rules — the paper's Table 1.
//
//   Rule | Pattern                              | ΔChangeset
//   -----+--------------------------------------+---------------
//    0   | v1..vn = ...  ∧ ∃vi ∈ Changeset      | No Estimate
//    1   | v1..vn = obj.method(args)            | {obj, v1..vn}
//    2   | v1..vn = func(args)                  | {v1..vn}
//    3   | v1..vn = u1..um                      | {v1..vn}
//    4   | obj.method(args)                     | {obj}
//    5   | func(args)                           | No Estimate
//
// Rules are sorted in descending precedence; at most one rule activates per
// statement. Log statements activate no rule (they are side-effect-free by
// the hindsight-logging contract and their output is captured separately).

#ifndef FLOR_ANALYSIS_CHANGESET_H_
#define FLOR_ANALYSIS_CHANGESET_H_

#include <set>
#include <string>
#include <vector>

#include "ir/stmt.h"

namespace flor {
namespace analysis {

/// Outcome of matching one statement against the rules.
struct RuleOutcome {
  /// Activated rule number (0-5), or -1 when no rule applies (log stmts).
  int rule = -1;
  /// True when the rule yields "No Estimate" (rules 0 and 5): the enclosing
  /// loop must be refused.
  bool refuse = false;
  /// Variables added to the changeset by this statement.
  std::vector<std::string> delta;
};

/// Matches `stmt` against the rules given the changeset accumulated so far
/// within the enclosing loop body.
RuleOutcome ApplyRules(const ir::Stmt& stmt,
                       const std::set<std::string>& changeset_so_far);

}  // namespace analysis
}  // namespace flor

#endif  // FLOR_ANALYSIS_CHANGESET_H_
