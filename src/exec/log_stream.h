// Log streams — the execution data of the paper.
//
// Every flor.log(...) statement appends an entry tagged with the statement
// uid and the loop-iteration context in which it fired. Record persists the
// stream; replay produces a new stream; the deferred correctness check
// (flor/deferred_check.h) compares the two modulo probe statements, skipped
// loops, and init-mode output.

#ifndef FLOR_EXEC_LOG_STREAM_H_
#define FLOR_EXEC_LOG_STREAM_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace flor {
namespace exec {

/// One logged record.
struct LogEntry {
  int32_t stmt_uid = -1;
  /// Loop-iteration context, e.g. "e=17/i=3"; empty at top level.
  std::string context;
  /// True if emitted during parallel-worker initialization (such output is
  /// a by-product of state reconstruction, not part of the worker's log
  /// partition; §5.4.2).
  bool init_mode = false;
  std::string label;
  std::string text;

  bool operator==(const LogEntry& other) const {
    return stmt_uid == other.stmt_uid && context == other.context &&
           init_mode == other.init_mode && label == other.label &&
           text == other.text;
  }
};

/// Append-only in-memory log with (de)serialization.
///
/// Thread-compatible, const-safe: concurrent const access (entries(),
/// WorkEntries(), Serialize()) from multiple threads is safe as long as no
/// thread mutates. The parallel replay engines rely on this — each worker
/// appends only to its own stream, and merging happens on the coordinating
/// thread after workers join (flor/replay_plan.h).
class LogStream {
 public:
  void Append(LogEntry entry) { entries_.push_back(std::move(entry)); }

  /// In-place append: returns a default-constructed entry to fill, saving
  /// the move of three strings through a temporary LogEntry on the record
  /// hot path (the interpreter writes every field anyway).
  LogEntry& AppendEntry() {
    entries_.emplace_back();
    return entries_.back();
  }

  /// Pre-sizes the entry vector (e.g. to a known log-statement count).
  void Reserve(size_t n) { entries_.reserve(n); }

  const std::vector<LogEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

  /// Entries excluding init-mode output (a worker's "partition of the
  /// logs").
  std::vector<LogEntry> WorkEntries() const;

  /// Tab-separated line encoding, one entry per line. Single-allocation:
  /// the exact output size is computed first, then every entry is escaped
  /// directly into the pre-sized buffer (no per-entry temporaries). The
  /// bytes are pinned bit-identical to the historical per-entry
  /// concatenation by exec_test's reference-serializer property test.
  std::string Serialize() const;
  static Result<LogStream> Deserialize(const std::string& data);

  /// Appends all entries of `other` (log merging across workers).
  void Extend(const LogStream& other);

  /// Appends only the work entries of `other` — merging a worker's log
  /// partition while dropping its init-mode reconstruction by-products.
  void ExtendWork(const LogStream& other);

 private:
  std::vector<LogEntry> entries_;
};

}  // namespace exec
}  // namespace flor

#endif  // FLOR_EXEC_LOG_STREAM_H_
