#include "exec/replay_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <mutex>
#include <thread>

#include "common/strings.h"

namespace flor {
namespace exec {

namespace {

/// One per-thread task deque: owner pops the front, thieves pop the back.
struct TaskDeque {
  std::mutex mu;
  std::deque<size_t> tasks;

  bool PopFront(size_t* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    *out = tasks.front();
    tasks.pop_front();
    return true;
  }
  bool PopBack(size_t* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    *out = tasks.back();
    tasks.pop_back();
    return true;
  }
};

double WallNowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WorkStealingPool::Stats WorkStealingPool::Run(
    int num_threads, const std::vector<std::function<void()>>& tasks) {
  Stats stats;
  if (num_threads <= 1 || tasks.size() <= 1) {
    for (const auto& task : tasks) task();
    stats.tasks_run = static_cast<int64_t>(tasks.size());
    return stats;
  }

  const int threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(num_threads), tasks.size()));
  std::vector<TaskDeque> deques(static_cast<size_t>(threads));
  // Deal task indices round-robin so a 1-thread pool and the sequential
  // path visit partitions in the same order.
  for (size_t i = 0; i < tasks.size(); ++i)
    deques[i % static_cast<size_t>(threads)].tasks.push_back(i);

  std::atomic<int64_t> steals(0);

  auto worker = [&](int self) {
    for (;;) {
      size_t task_index = 0;
      bool found = deques[static_cast<size_t>(self)].PopFront(&task_index);
      if (!found) {
        for (int v = 1; v < threads && !found; ++v) {
          const int victim = (self + v) % threads;
          found = deques[static_cast<size_t>(victim)].PopBack(&task_index);
        }
        if (found) steals.fetch_add(1, std::memory_order_relaxed);
      }
      // Tasks never spawn tasks, so once every deque is empty the only
      // unfinished work is already running on other threads: retire.
      if (!found) return;
      tasks[task_index]();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& t : pool) t.join();

  stats.tasks_run = static_cast<int64_t>(tasks.size());
  stats.steals = steals.load();
  return stats;
}

ReplayExecutor::ReplayExecutor(FileSystem* shared_fs,
                               ReplayExecutorOptions options)
    : fs_(shared_fs), options_(std::move(options)) {}

Result<ReplayExecutorResult> ReplayExecutor::Run(
    const ProgramFactory& factory) {
  const double wall_start = WallNowSeconds();

  ClusterPlanOptions plan;
  plan.run_prefix = options_.run_prefix;
  plan.num_workers = options_.num_partitions > 0 ? options_.num_partitions
                                                 : options_.num_threads;
  plan.init_mode = options_.init_mode;
  plan.costs = options_.costs;
  plan.sample_epochs = options_.sample_epochs;
  static_cast<TierOptions&>(plan) = options_;  // bucket + bloom, one slice

  FLOR_ASSIGN_OR_RETURN(const int active,
                        PlanActiveWorkers(factory, fs_, plan));

  // One task per partition. Every worker owns its clock, program instance,
  // and log stream; the only shared object is the (thread-safe) filesystem.
  std::vector<Result<ReplayResult>> slots(
      static_cast<size_t>(active), Status::Internal("worker never ran"));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(static_cast<size_t>(active));
  for (int w = 0; w < active; ++w) {
    tasks.push_back([this, &factory, &plan, &slots, w] {
      auto run_worker = [&]() -> Result<ReplayResult> {
        Env env(std::make_unique<WallClock>(), fs_);
        FLOR_ASSIGN_OR_RETURN(ProgramInstance instance, factory());
        ReplaySession session(&env, WorkerReplayOptions(plan, w));
        exec::Frame frame;
        return session.Run(instance.program.get(), &frame);
      };
      slots[static_cast<size_t>(w)] = run_worker();
    });
  }

  const WorkStealingPool::Stats pool_stats =
      WorkStealingPool::Run(options_.num_threads, tasks);

  ReplayMerger merger;
  for (int w = 0; w < active; ++w) {
    Result<ReplayResult>& slot = slots[static_cast<size_t>(w)];
    if (!slot.ok()) {
      return Status(slot.status().code(),
                    StrCat("replay worker ", w, ": ",
                           slot.status().message()));
    }
    merger.Add(w, std::move(slot).value());
  }
  ReplayExecutorResult result;
  FLOR_ASSIGN_OR_RETURN(static_cast<MergedClusterReplay&>(result),
                        merger.Finish(fs_, options_.run_prefix));
  result.threads_used = std::min(options_.num_threads, active);
  result.steals = pool_stats.steals;
  result.wall_seconds = WallNowSeconds() - wall_start;
  return result;
}

}  // namespace exec
}  // namespace flor
