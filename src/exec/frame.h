// Interpreter frame: the global variable scope of a training script.
//
// Python training scripts effectively run in one module-level scope; loop
// variables and temporaries share it. Checkpoint restoration writes directly
// into this frame (SkipBlock side-effect restoration).

#ifndef FLOR_EXEC_FRAME_H_
#define FLOR_EXEC_FRAME_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/value.h"

namespace flor {
namespace exec {

/// Named variable store.
class Frame {
 public:
  /// Binds (creates or overwrites) a variable.
  void Set(const std::string& name, ir::Value value);

  /// Variable lookup. NotFound if unbound.
  Result<ir::Value> Get(const std::string& name) const;

  /// Lookup that aborts on absence — for semantic callbacks whose bindings
  /// are guaranteed by program construction.
  const ir::Value& At(const std::string& name) const;
  ir::Value* Mutable(const std::string& name);

  bool Has(const std::string& name) const;

  /// All bound names, sorted.
  std::vector<std::string> Names() const;

  /// Combined fingerprint of a set of variables (order-insensitive by
  /// sorting names) — used by tests to compare end states.
  uint64_t FingerprintOf(const std::vector<std::string>& names) const;

 private:
  std::map<std::string, ir::Value> vars_;
};

}  // namespace exec
}  // namespace flor

#endif  // FLOR_EXEC_FRAME_H_
