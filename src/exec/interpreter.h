// Tree-walking interpreter for training-script programs, with the hook
// surface Flor's record/replay sessions plug into.
//
// The hook protocol is the paper's SkipBlock parameterization (§4.2): the
// interpreter is generic; whether a wrapped loop executes or restores, and
// whether its end state is materialized, is decided by the installed hooks
// ("SkipBlock ... is parameterized by Flor to be informed about relevant
// execution state: record execution, replay initialization, replay
// execution, and whether the enclosed loop is probed").
//
// The main loop is special: its iterator can be re-planned by the hooks
// (the Flor generator of §5.4), yielding (index, mode) pairs where mode is
// kInit during worker initialization and kWork for the worker's segment.

#ifndef FLOR_EXEC_INTERPRETER_H_
#define FLOR_EXEC_INTERPRETER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "env/env.h"
#include "exec/frame.h"
#include "exec/log_stream.h"
#include "ir/program.h"

namespace flor {
namespace exec {

/// Iteration mode assigned by the Flor generator.
enum class IterMode : uint8_t {
  kWork = 0,  ///< normal execution (record, or a worker's own segment)
  kInit = 1,  ///< worker initialization: SkipBlocks restore, logs discarded
};

/// One planned main-loop iteration.
struct PlannedIter {
  int64_t index = 0;
  IterMode mode = IterMode::kWork;
};

/// A re-planned main loop (the Flor generator's output).
struct MainLoopPlan {
  std::vector<PlannedIter> iters;
  /// False when this worker's work segment ends before the final epoch: the
  /// program state after the loop is then *not* the final training state,
  /// so everything executed after the main loop runs in init mode (its log
  /// output is a reconstruction by-product, not part of the log partition).
  bool covers_final_epoch = true;
};

/// SkipBlock branch decision.
enum class LoopAction : uint8_t {
  kExecute = 0,  ///< run the enclosed loop
  kSkip = 1,     ///< side-effects restored by the hook; body not run
};

/// Callbacks implemented by Flor record/replay sessions.
class ExecHooks {
 public:
  virtual ~ExecHooks() = default;

  /// SkipBlock entry for an instrumented loop. `ctx` is the enclosing
  /// iteration context (e.g. "e=17") identifying this loop *execution*.
  /// If the hook returns kSkip it must already have applied the loop's
  /// memoized side-effects to `frame`.
  virtual Result<LoopAction> OnSkipBlockEnter(ir::Loop* loop,
                                              const std::string& ctx,
                                              bool init_mode,
                                              Frame* frame) = 0;

  /// SkipBlock exit after an *executed* loop. `compute_seconds` is the
  /// measured body time (Ci sample). The hook may materialize the Loop End
  /// Checkpoint here (and charge any main-thread cost to the clock).
  virtual Status OnSkipBlockExit(ir::Loop* loop, const std::string& ctx,
                                 Frame* frame, double compute_seconds) = 0;

  /// Main-loop plan (the Flor generator). Returning nullopt runs the full
  /// range in kWork mode (vanilla / record behaviour).
  virtual Result<std::optional<MainLoopPlan>> PlanMainLoop(
      ir::Loop* loop, int64_t trip_count, Frame* frame) = 0;
};

/// Hooks that do nothing — vanilla execution.
class VanillaHooks : public ExecHooks {
 public:
  Result<LoopAction> OnSkipBlockEnter(ir::Loop*, const std::string&, bool,
                                      Frame*) override {
    return LoopAction::kExecute;
  }
  Status OnSkipBlockExit(ir::Loop*, const std::string&, Frame*,
                         double) override {
    return Status::OK();
  }
  Result<std::optional<MainLoopPlan>> PlanMainLoop(ir::Loop*, int64_t,
                                                   Frame*) override {
    return std::optional<MainLoopPlan>();
  }
};

/// Executes programs. Statement costs are charged to the Env clock when it
/// is simulated; on a wall clock, real execution time is simply measured.
class Interpreter {
 public:
  /// `hooks` may be null (vanilla). Does not own its arguments.
  Interpreter(Env* env, LogStream* log, ExecHooks* hooks);

  /// Runs the whole program against `frame`.
  Status Run(ir::Program* program, Frame* frame);

  /// Clock delta over the last Run() (seconds).
  double elapsed_seconds() const { return elapsed_seconds_; }

 private:
  Status RunBlock(ir::Block* block, Frame* frame);
  Status RunLoop(ir::Loop* loop, Frame* frame);
  Status RunLoopBodyOnce(ir::Loop* loop, int64_t index, Frame* frame);
  Status RunStmt(ir::Stmt* stmt, Frame* frame);
  Result<int64_t> TripCount(const ir::Loop& loop, Frame* frame) const;

  /// "e=17/i=3" for the current loop-iteration stack. Maintained
  /// incrementally (appended on loop-body entry, truncated on exit) so the
  /// record hot path copies it instead of re-concatenating the whole stack
  /// on every log statement.
  const std::string& ContextString() const { return ctx_; }

  void PushIterContext(const std::string& var, int64_t index);
  void PopIterContext();

  Env* env_;
  LogStream* log_;
  ExecHooks* hooks_;
  VanillaHooks vanilla_;

  ir::Program* program_ = nullptr;
  /// Current iteration context and, per open loop frame, the context
  /// length to truncate back to on exit.
  std::string ctx_;
  std::vector<size_t> ctx_frame_lens_;
  bool init_mode_ = false;
  double elapsed_seconds_ = 0;
};

}  // namespace exec
}  // namespace flor

#endif  // FLOR_EXEC_INTERPRETER_H_
