#include "exec/interpreter.h"

#include <cstdio>

#include "common/strings.h"

namespace flor {
namespace exec {

Interpreter::Interpreter(Env* env, LogStream* log, ExecHooks* hooks)
    : env_(env), log_(log), hooks_(hooks ? hooks : &vanilla_) {}

Status Interpreter::Run(ir::Program* program, Frame* frame) {
  program_ = program;
  ctx_.clear();
  ctx_frame_lens_.clear();
  init_mode_ = false;
  const double start = env_->clock()->NowSeconds();
  Status s = RunBlock(&program->top(), frame);
  elapsed_seconds_ = env_->clock()->NowSeconds() - start;
  return s;
}

Status Interpreter::RunBlock(ir::Block* block, Frame* frame) {
  for (auto& node : block->nodes) {
    if (node.is_stmt()) {
      FLOR_RETURN_IF_ERROR(RunStmt(node.stmt.get(), frame));
    } else {
      FLOR_RETURN_IF_ERROR(RunLoop(node.loop.get(), frame));
    }
  }
  return Status::OK();
}

Result<int64_t> Interpreter::TripCount(const ir::Loop& loop,
                                       Frame* frame) const {
  if (loop.iter().fixed_count >= 0) return loop.iter().fixed_count;
  FLOR_ASSIGN_OR_RETURN(ir::Value v, frame->Get(loop.iter().count_var));
  if (v.kind() != ir::ValueKind::kInt)
    return Status::InvalidArgument(
        StrCat("loop count variable '", loop.iter().count_var,
               "' is not an int"));
  return v.AsInt();
}

void Interpreter::PushIterContext(const std::string& var, int64_t index) {
  ctx_frame_lens_.push_back(ctx_.size());
  if (!ctx_.empty()) ctx_ += '/';
  ctx_ += var;
  ctx_ += '=';
  char buf[24];
  const int len = std::snprintf(buf, sizeof(buf), "%lld",
                                static_cast<long long>(index));
  ctx_.append(buf, static_cast<size_t>(len));
}

void Interpreter::PopIterContext() {
  ctx_.resize(ctx_frame_lens_.back());
  ctx_frame_lens_.pop_back();
}

Status Interpreter::RunLoopBodyOnce(ir::Loop* loop, int64_t index,
                                    Frame* frame) {
  frame->Set(loop->iter().var, ir::Value::Int(index));
  PushIterContext(loop->iter().var, index);
  Status s = RunBlock(&loop->body(), frame);
  PopIterContext();
  return s;
}

Status Interpreter::RunLoop(ir::Loop* loop, Frame* frame) {
  FLOR_ASSIGN_OR_RETURN(int64_t n, TripCount(*loop, frame));

  const bool is_main = program_->MainLoop() == loop;
  if (is_main) {
    FLOR_ASSIGN_OR_RETURN(auto plan, hooks_->PlanMainLoop(loop, n, frame));
    if (plan.has_value()) {
      for (const PlannedIter& it : plan->iters) {
        if (it.index < 0 || it.index >= n)
          return Status::OutOfRange("planned iteration out of range");
        const bool saved = init_mode_;
        init_mode_ = it.mode == IterMode::kInit || saved;
        Status s = RunLoopBodyOnce(loop, it.index, frame);
        init_mode_ = saved;
        FLOR_RETURN_IF_ERROR(s);
      }
      if (!plan->covers_final_epoch) {
        // The rest of the program runs on non-final state: its output is a
        // by-product of partitioned replay, not part of the log partition.
        init_mode_ = true;
      }
      return Status::OK();
    }
    // No plan: fall through to plain full-range execution.
  }

  const bool skipblock = loop->analysis().instrumented;
  if (skipblock) {
    const std::string ctx = ContextString();
    FLOR_ASSIGN_OR_RETURN(
        exec::LoopAction action,
        hooks_->OnSkipBlockEnter(loop, ctx, init_mode_, frame));
    if (action == LoopAction::kSkip) {
      // Side effects were restored by the hook; leave the iterator variable
      // at its final value as an executed loop would.
      if (n > 0) frame->Set(loop->iter().var, ir::Value::Int(n - 1));
      return Status::OK();
    }
    const double start = env_->clock()->NowSeconds();
    for (int64_t i = 0; i < n; ++i)
      FLOR_RETURN_IF_ERROR(RunLoopBodyOnce(loop, i, frame));
    const double compute = env_->clock()->NowSeconds() - start;
    return hooks_->OnSkipBlockExit(loop, ctx, frame, compute);
  }

  for (int64_t i = 0; i < n; ++i)
    FLOR_RETURN_IF_ERROR(RunLoopBodyOnce(loop, i, frame));
  return Status::OK();
}

Status Interpreter::RunStmt(ir::Stmt* stmt, Frame* frame) {
  if (env_->clock()->is_simulated()) {
    if (stmt->sim_cost_seconds > 0)
      env_->clock()->AdvanceMicros(SecondsToMicros(stmt->sim_cost_seconds));
  } else if (stmt->wall_cost_seconds > 0) {
    // Blocking device time (ir/stmt.h): a real bounded wait on wall
    // clocks, so measured replay parallelism reflects the paper's
    // GPU-bound overlap rather than host arithmetic speed.
    env_->clock()->AdvanceMicros(SecondsToMicros(stmt->wall_cost_seconds));
  }
  if (stmt->is_log()) {
    FLOR_ASSIGN_OR_RETURN(std::string text, stmt->log_fn(frame));
    if (log_) {
      // Emplace the entry and fill it in place (no temporary LogEntry),
      // copying the incrementally maintained context string.
      LogEntry& entry = log_->AppendEntry();
      entry.stmt_uid = stmt->uid;
      entry.context = ContextString();
      entry.init_mode = init_mode_;
      entry.label = stmt->log_label;
      entry.text = std::move(text);
    }
    return Status::OK();
  }
  if (!stmt->fn) return Status::OK();
  return stmt->fn(frame);
}

}  // namespace exec
}  // namespace flor
