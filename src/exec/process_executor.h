// Process-level parallel replay engine (the paper's flashback deployment:
// one replay process per GPU/partition).
//
// The third engine over the shared plan (flor/replay_plan.h):
//   * sim::ClusterReplay     — sequential workers, simulated clocks;
//   * exec::ReplayExecutor   — worker threads, one address space;
//   * exec::ProcessReplayExecutor — fork one worker *process* per log
//     partition, true isolation: a worker that segfaults, leaks, or is
//     OOM-killed takes down only its partition, exactly like a lost GPU
//     node in the paper's cluster runs.
//
// Protocol: the parent plans partitions (the same PlanActiveWorkers every
// engine uses), forks one child per partition, and blocks in waitpid. Each
// child runs its ReplaySession against the shared record artifacts and
// writes its merged-log fragment plus per-worker stats to a length-
// prefixed, CRC-framed result file (env/result_file.h) in a posix scratch
// directory — atomically, so a child killed mid-write leaves either
// nothing or a torn file that fails to parse, never a silently mergeable
// garbage fragment. The parent reaps every child, reports per-partition
// death (nonzero exit or signal) without touching surviving fragments,
// decodes the fragments (flor::DecodeWorkerResult), and merges them via
// the same ReplayMerger as the other two engines — so the merged replay
// log is byte-identical to both.
//
// The shared FileSystem must be readable in the children: PosixFileSystem
// shares the on-disk record run across processes; MemFileSystem works too
// because fork() snapshots it copy-on-write (the record artifacts are
// read-only during replay). Results always travel through the scratch
// directory, never through memory.

#ifndef FLOR_EXEC_PROCESS_EXECUTOR_H_
#define FLOR_EXEC_PROCESS_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "flor/replay_plan.h"

namespace flor {
namespace exec {

/// Process-engine configuration.
struct ProcessReplayExecutorOptions {
  std::string run_prefix = "run";
  /// Log partitions (the paper's G); one worker process is forked per
  /// partition. The planner may clamp to fewer when checkpoints are
  /// sparse.
  int num_partitions = 4;
  InitMode init_mode = InitMode::kStrong;
  /// Carried for parity with the other engines (only charged under
  /// simulated clocks; wall-clock restores are simply measured).
  MaterializerCosts costs;
  /// Non-empty selects iteration-sampling replay on a single worker.
  std::vector<int64_t> sample_epochs;
  /// Bucket tier of the run's checkpoint store (spool mirror prefix):
  /// restores missing locally fall through to the bucket in every child.
  std::string bucket_prefix;
  /// Write bucket fault-ins back to the local shard.
  bool bucket_rehydrate = true;
  /// Directory for worker result files. Empty: a fresh mkdtemp scratch
  /// directory, removed after the run. Non-empty: used as-is (created if
  /// missing, stale worker files cleared, left in place afterwards) so
  /// tests and post-mortems can inspect surviving fragments.
  std::string scratch_dir;

  /// Test-only fault-injection hooks, invoked inside the forked child.
  /// `before_session` runs before the child's ReplaySession,
  /// `before_result_write` after the session but before the result file
  /// is committed — a hook that kills the process at either point models
  /// a worker lost mid-partition.
  std::function<void(int worker_id)> child_before_session;
  std::function<void(int worker_id)> child_before_result_write;
};

/// Outcome of a process-level replay: the engine-agnostic merge plus
/// process-side measurements.
struct ProcessReplayExecutorResult : MergedClusterReplay {
  /// Measured wall-clock time of the whole replay (plan + fork + children
  /// + merge), parent perspective.
  double wall_seconds = 0;
  /// Worker processes forked (== active partitions).
  int processes_used = 0;
};

/// Runs partitioned hindsight replay on forked worker processes. Single-
/// use per Run call; the executor itself holds no per-run state. Fork
/// happens on the calling thread — do not call with unrelated threads
/// live in the parent (the engines' usual single-coordinator discipline).
class ProcessReplayExecutor {
 public:
  /// Does not own `shared_fs` (see file comment for cross-process
  /// visibility requirements).
  ProcessReplayExecutor(FileSystem* shared_fs,
                        ProcessReplayExecutorOptions options);

  /// Plans partitions, forks and reaps one worker per partition, merges,
  /// deferred-checks. On any partition failure returns an error that
  /// names each dead partition and its cause; surviving result files are
  /// left intact in the scratch directory (an auto-created scratch dir is
  /// preserved on failure and named in the error message).
  Result<ProcessReplayExecutorResult> Run(const ProgramFactory& factory);

  /// Scratch-relative result file a worker commits ("worker-<id>.res").
  static std::string ResultFileName(int worker_id);
  /// Scratch-relative error file a worker leaves when its replay fails
  /// cleanly ("worker-<id>.err").
  static std::string ErrorFileName(int worker_id);

 private:
  FileSystem* fs_;
  ProcessReplayExecutorOptions options_;
};

}  // namespace exec
}  // namespace flor

#endif  // FLOR_EXEC_PROCESS_EXECUTOR_H_
