// Process-level parallel replay engine (the paper's flashback deployment:
// one replay process per GPU/partition).
//
// The third engine over the shared plan (flor/replay_plan.h):
//   * sim::ClusterReplay     — sequential workers, simulated clocks;
//   * exec::ReplayExecutor   — worker threads, one address space;
//   * exec::ProcessReplayExecutor — forked worker *processes*, true
//     isolation: a worker that segfaults, leaks, or is OOM-killed takes
//     down only its partition, exactly like a lost GPU node in the
//     paper's cluster runs.
//
// The executor is a small cluster scheduler, not a fork-all barrier: a
// bounded pool of at most `max_concurrent_children` worker processes runs
// at once, queued partitions are forked as slots free up (so G partitions
// replay on fewer slots, just slower — the elastic scale-out shape), and a
// partition whose worker *dies* (killed by a signal, or unable to commit
// its result file) is automatically re-forked up to `max_attempts` times.
// Every attempt writes to its own attempt-suffixed result/error file name,
// so a torn attempt-1 file can never shadow a clean attempt-2 fragment.
// Optionally, once every other partition has finished, the last running
// straggler is speculatively re-forked and raced against itself: the first
// attempt to commit wins, the loser is killed, reaped, and its file
// ignored.
//
// Protocol: the parent plans partitions (the same PlanActiveWorkers every
// engine uses) and forks worker processes as described above. Each child
// runs its ReplaySession against the shared record artifacts and writes
// its merged-log fragment plus per-worker stats to a length-prefixed,
// CRC-framed result file (env/result_file.h) in a posix scratch directory
// — atomically, so a child killed mid-write leaves either nothing or a
// torn file that fails to parse, never a silently mergeable garbage
// fragment. The parent reaps children as they exit (EINTR-safe
// waitpid(-1)), maps death (nonzero exit or signal) into retry-or-fail per
// partition without touching surviving fragments, decodes committed
// fragments (flor::DecodeWorkerResult) in completion order, and merges
// them via the same ReplayMerger as the other two engines — merging is
// order-insensitive, so the merged replay log is byte-identical to both
// no matter how out-of-order partitions complete or how often they retry.
//
// The shared FileSystem must be readable in the children: PosixFileSystem
// shares the on-disk record run across processes; MemFileSystem works too
// because fork() snapshots it copy-on-write (the record artifacts are
// read-only during replay). Results always travel through the scratch
// directory, never through memory.

#ifndef FLOR_EXEC_PROCESS_EXECUTOR_H_
#define FLOR_EXEC_PROCESS_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "flor/replay_plan.h"

namespace flor {
namespace exec {

/// Process-engine configuration. The read-tier fields (bucket
/// fall-through, bloom filters) come from the shared TierOptions base
/// (checkpoint/store.h) and are sliced into the cluster plan, so every
/// forked child's store sees them.
struct ProcessReplayExecutorOptions : TierOptions {
  std::string run_prefix = "run";
  /// Log partitions (the paper's G); one worker process replays each
  /// partition. The planner may clamp to fewer when checkpoints are
  /// sparse.
  int num_partitions = 4;
  InitMode init_mode = InitMode::kStrong;
  /// Carried for parity with the other engines (only charged under
  /// simulated clocks; wall-clock restores are simply measured).
  MaterializerCosts costs;
  /// Non-empty selects iteration-sampling replay on a single worker.
  std::vector<int64_t> sample_epochs;
  /// Directory for worker result files. Empty: a fresh mkdtemp scratch
  /// directory, removed after the run. Non-empty: used as-is (created if
  /// missing, stale worker files cleared, left in place afterwards) so
  /// tests and post-mortems can inspect surviving fragments.
  std::string scratch_dir;

  /// Scheduler pool size: at most this many worker processes are alive at
  /// once; partitions beyond it queue and fork as slots free up. <= 0
  /// (the default) means min(active partitions, hardware_concurrency).
  /// Benches replaying device-bound partitions (one slot per modeled GPU)
  /// should pin this to the partition count explicitly.
  int max_concurrent_children = 0;
  /// Fork budget per partition. A worker that dies by signal or cannot
  /// commit its result file is re-forked until its partition commits or
  /// the budget is exhausted; 1 restores the original fail-fast behavior.
  /// A replay that fails *cleanly* inside the child (a Status carried
  /// back through the framed error file) is deterministic and is never
  /// retried.
  int max_attempts = 2;
  /// Once every other partition has finished, re-fork the last running
  /// straggler (within its remaining pool slot) and race the two
  /// attempts: the first committed result wins, the loser is killed and
  /// its file ignored. Models the paper deployment's straggler
  /// mitigation; off by default because it burns a fork on a healthy
  /// worker.
  bool speculate_stragglers = false;

  /// Test-only fault-injection hooks, invoked inside the forked child
  /// with the worker id and the 1-based attempt number.
  /// `before_session` runs before the child's ReplaySession,
  /// `before_result_write` after the session but before the result file
  /// is committed — a hook that kills the process at either point models
  /// a worker lost mid-partition.
  std::function<void(int worker_id, int attempt)> child_before_session;
  std::function<void(int worker_id, int attempt)> child_before_result_write;
};

/// Outcome of a process-level replay: the engine-agnostic merge plus
/// process-side measurements and scheduler statistics.
struct ProcessReplayExecutorResult : MergedClusterReplay {
  /// Measured wall-clock time of the whole replay (plan + fork + children
  /// + merge), parent perspective.
  double wall_seconds = 0;
  /// Partitions replayed (== workers_used; kept for bench continuity).
  int processes_used = 0;
  /// Effective scheduler pool size (after defaulting).
  int pool_size = 0;
  /// Worker processes forked in total, including retries and speculative
  /// twins (== processes_used when nothing died).
  int total_forks = 0;
  /// Most worker processes alive at any instant (never exceeds
  /// pool_size).
  int max_observed_children = 0;
  /// Partitions that needed a re-fork after a worker death.
  int retried_partitions = 0;
  /// Speculative straggler twins forked / partitions won by the twin.
  int speculative_forks = 0;
  int speculative_wins = 0;
  /// Forks per partition, indexed by worker id.
  std::vector<int> partition_attempts;
};

/// Runs partitioned hindsight replay on forked worker processes. Single-
/// use per Run call; the executor itself holds no per-run state. Fork
/// happens on the calling thread — do not call with unrelated threads
/// live in the parent (the engines' usual single-coordinator discipline).
/// Run reaps with waitpid(-1): it must not race another wait loop in the
/// same process (statuses of unrelated children reaped here are
/// discarded).
class ProcessReplayExecutor {
 public:
  /// Does not own `shared_fs` (see file comment for cross-process
  /// visibility requirements).
  ProcessReplayExecutor(FileSystem* shared_fs,
                        ProcessReplayExecutorOptions options);

  /// Plans partitions, schedules worker processes over the bounded pool
  /// (retrying dead workers up to the attempt budget), merges, deferred-
  /// checks. When a partition exhausts its attempts the error names each
  /// dead partition and its cause; surviving result files are left intact
  /// in the scratch directory (an auto-created scratch dir is preserved
  /// on failure and named in the error message).
  Result<ProcessReplayExecutorResult> Run(const ProgramFactory& factory);

  /// Scratch-relative result file a worker commits. Attempt 1 keeps the
  /// legacy name ("worker-<id>.res"); retries and speculative twins get
  /// attempt-suffixed names ("worker-<id>.attempt-<n>.res") so no torn
  /// earlier attempt can shadow a clean later one.
  static std::string ResultFileName(int worker_id, int attempt = 1);
  /// Scratch-relative error file a worker leaves when its replay fails
  /// cleanly ("worker-<id>.err", attempt-suffixed like ResultFileName).
  static std::string ErrorFileName(int worker_id, int attempt = 1);

 private:
  FileSystem* fs_;
  ProcessReplayExecutorOptions options_;
};

}  // namespace exec
}  // namespace flor

#endif  // FLOR_EXEC_PROCESS_EXECUTOR_H_
