#include "exec/log_stream.h"

#include <cstdio>

#include "common/strings.h"

namespace flor {
namespace exec {

namespace {

/// Bytes Escape would emit for `s`: each of \t \n \\ grows to two bytes.
size_t EscapedSize(const std::string& s) {
  size_t n = s.size();
  for (char c : s)
    if (c == '\t' || c == '\n' || c == '\\') ++n;
  return n;
}

/// Escapes `s` directly into `out` (no temporary string).
void EscapeTo(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '\t':
        *out += "\\t";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\\':
        *out += "\\\\";
        break;
      default:
        *out += c;
    }
  }
}

/// Decimal length of `v` including a leading '-' (matches StrCat/printf).
size_t DecimalLen(int32_t v) {
  size_t n = v < 0 ? 1 : 0;
  uint32_t u = v < 0 ? 0u - static_cast<uint32_t>(v)
                     : static_cast<uint32_t>(v);
  do {
    ++n;
    u /= 10;
  } while (u != 0);
  return n;
}

void DecimalTo(int32_t v, std::string* out) {
  char buf[16];
  const int len = std::snprintf(buf, sizeof(buf), "%d", v);
  out->append(buf, static_cast<size_t>(len));
}

Result<std::string> Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size())
      return Status::Corruption("dangling escape in log entry");
    switch (s[++i]) {
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      case '\\':
        out += '\\';
        break;
      default:
        return Status::Corruption("unknown escape in log entry");
    }
  }
  return out;
}

}  // namespace

std::vector<LogEntry> LogStream::WorkEntries() const {
  std::vector<LogEntry> out;
  for (const auto& e : entries_)
    if (!e.init_mode) out.push_back(e);
  return out;
}

std::string LogStream::Serialize() const {
  // Exact-size first pass, then escape in place: one allocation for the
  // whole stream instead of a temporary line (plus its escape temporaries)
  // per entry.
  size_t total = 0;
  for (const auto& e : entries_) {
    total += DecimalLen(e.stmt_uid) + EscapedSize(e.context) +
             EscapedSize(e.label) + EscapedSize(e.text) +
             6;  // 4 tabs + the init digit + newline
  }
  std::string out;
  out.reserve(total);
  for (const auto& e : entries_) {
    DecimalTo(e.stmt_uid, &out);
    out += '\t';
    EscapeTo(e.context, &out);
    out += '\t';
    out += e.init_mode ? '1' : '0';
    out += '\t';
    EscapeTo(e.label, &out);
    out += '\t';
    EscapeTo(e.text, &out);
    out += '\n';
  }
  return out;
}

Result<LogStream> LogStream::Deserialize(const std::string& data) {
  LogStream out;
  for (const auto& line : StrSplit(data, '\n')) {
    if (line.empty()) continue;
    auto fields = StrSplit(line, '\t');
    if (fields.size() != 5)
      return Status::Corruption("malformed log line: " + line);
    LogEntry e;
    e.stmt_uid = static_cast<int32_t>(std::strtol(fields[0].c_str(),
                                                  nullptr, 10));
    FLOR_ASSIGN_OR_RETURN(e.context, Unescape(fields[1]));
    e.init_mode = fields[2] == "1";
    FLOR_ASSIGN_OR_RETURN(e.label, Unescape(fields[3]));
    FLOR_ASSIGN_OR_RETURN(e.text, Unescape(fields[4]));
    out.Append(std::move(e));
  }
  return out;
}

void LogStream::Extend(const LogStream& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

void LogStream::ExtendWork(const LogStream& other) {
  entries_.reserve(entries_.size() + other.entries_.size());
  for (const auto& e : other.entries_)
    if (!e.init_mode) entries_.push_back(e);
}

}  // namespace exec
}  // namespace flor
