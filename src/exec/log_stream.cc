#include "exec/log_stream.h"

#include "common/strings.h"

namespace flor {
namespace exec {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> Unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size())
      return Status::Corruption("dangling escape in log entry");
    switch (s[++i]) {
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      case '\\':
        out += '\\';
        break;
      default:
        return Status::Corruption("unknown escape in log entry");
    }
  }
  return out;
}

}  // namespace

std::vector<LogEntry> LogStream::WorkEntries() const {
  std::vector<LogEntry> out;
  for (const auto& e : entries_)
    if (!e.init_mode) out.push_back(e);
  return out;
}

std::string LogStream::Serialize() const {
  std::string out;
  for (const auto& e : entries_) {
    out += StrCat(e.stmt_uid, "\t", Escape(e.context), "\t",
                  e.init_mode ? 1 : 0, "\t", Escape(e.label), "\t",
                  Escape(e.text), "\n");
  }
  return out;
}

Result<LogStream> LogStream::Deserialize(const std::string& data) {
  LogStream out;
  for (const auto& line : StrSplit(data, '\n')) {
    if (line.empty()) continue;
    auto fields = StrSplit(line, '\t');
    if (fields.size() != 5)
      return Status::Corruption("malformed log line: " + line);
    LogEntry e;
    e.stmt_uid = static_cast<int32_t>(std::strtol(fields[0].c_str(),
                                                  nullptr, 10));
    FLOR_ASSIGN_OR_RETURN(e.context, Unescape(fields[1]));
    e.init_mode = fields[2] == "1";
    FLOR_ASSIGN_OR_RETURN(e.label, Unescape(fields[3]));
    FLOR_ASSIGN_OR_RETURN(e.text, Unescape(fields[4]));
    out.Append(std::move(e));
  }
  return out;
}

void LogStream::Extend(const LogStream& other) {
  entries_.insert(entries_.end(), other.entries_.begin(),
                  other.entries_.end());
}

void LogStream::ExtendWork(const LogStream& other) {
  entries_.reserve(entries_.size() + other.entries_.size());
  for (const auto& e : other.entries_)
    if (!e.init_mode) entries_.push_back(e);
}

}  // namespace exec
}  // namespace flor
