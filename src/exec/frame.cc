#include "exec/frame.h"

#include <algorithm>

#include "common/logging.h"

namespace flor {
namespace exec {

void Frame::Set(const std::string& name, ir::Value value) {
  vars_[name] = std::move(value);
}

Result<ir::Value> Frame::Get(const std::string& name) const {
  auto it = vars_.find(name);
  if (it == vars_.end())
    return Status::NotFound("unbound variable: " + name);
  return it->second;
}

const ir::Value& Frame::At(const std::string& name) const {
  auto it = vars_.find(name);
  FLOR_CHECK(it != vars_.end()) << "unbound variable: " << name;
  return it->second;
}

ir::Value* Frame::Mutable(const std::string& name) {
  auto it = vars_.find(name);
  FLOR_CHECK(it != vars_.end()) << "unbound variable: " << name;
  return &it->second;
}

bool Frame::Has(const std::string& name) const {
  return vars_.count(name) > 0;
}

std::vector<std::string> Frame::Names() const {
  std::vector<std::string> out;
  out.reserve(vars_.size());
  for (const auto& [name, v] : vars_) out.push_back(name);
  return out;
}

uint64_t Frame::FingerprintOf(const std::vector<std::string>& names) const {
  std::vector<std::string> sorted = names;
  std::sort(sorted.begin(), sorted.end());
  uint64_t h = 0xf7a3e;
  for (const auto& name : sorted) {
    for (char c : name) h = Mix64(h ^ static_cast<uint8_t>(c));
    auto it = vars_.find(name);
    h = Mix64(h ^ (it == vars_.end() ? 0 : it->second.Fingerprint()));
  }
  return h;
}

}  // namespace exec
}  // namespace flor
