#include "exec/process_executor.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "common/strings.h"
#include "env/result_file.h"
#include "env/scratch.h"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <string.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace flor {
namespace exec {

namespace {

/// Child exit codes past the session: the parent maps them back to
/// partition-level diagnoses. 0 = result file committed.
constexpr int kChildReplayFailed = 12;  // error file has the Status
constexpr int kChildWriteFailed = 13;   // could not commit result/error

double WallNowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Error-file payload: the failed Status as (code, message) sections, CRC
/// framed like everything else in the scratch directory.
std::string EncodeWorkerError(const Status& status) {
  return EncodeResultSections(
      {StrCat(static_cast<int>(status.code())), status.message()});
}

Status DecodeWorkerError(const std::string& data) {
  auto sections = DecodeResultSections(data);
  if (!sections.ok() || sections->size() != 2)
    return Status::Corruption("worker error file is torn");
  int64_t code = 0;
  if (!ParseI64((*sections)[0], &code) || code <= 0 ||
      !IsValidStatusCode(code)) {
    return Status::Corruption("worker error file: bad status code");
  }
  return Status(static_cast<StatusCode>(code), (*sections)[1]);
}

}  // namespace

ProcessReplayExecutor::ProcessReplayExecutor(
    FileSystem* shared_fs, ProcessReplayExecutorOptions options)
    : fs_(shared_fs), options_(std::move(options)) {}

std::string ProcessReplayExecutor::ResultFileName(int worker_id,
                                                  int attempt) {
  if (attempt <= 1) return StrCat("worker-", worker_id, ".res");
  return StrCat("worker-", worker_id, ".attempt-", attempt, ".res");
}

std::string ProcessReplayExecutor::ErrorFileName(int worker_id,
                                                 int attempt) {
  if (attempt <= 1) return StrCat("worker-", worker_id, ".err");
  return StrCat("worker-", worker_id, ".attempt-", attempt, ".err");
}

#if defined(__unix__) || defined(__APPLE__)

namespace {

/// EINTR-safe waitpid: a signal delivered to the coordinator must never
/// diagnose a healthy partition as dead.
pid_t WaitPidRetry(pid_t pid, int* wstatus, int flags) {
  for (;;) {
    const pid_t got = waitpid(pid, wstatus, flags);
    if (got >= 0 || errno != EINTR) return got;
  }
}

/// Child-side worker body. Never returns into the parent's code: commits
/// a result (or error) file and _exit()s, skipping atexit handlers and
/// the parent's buffered state.
[[noreturn]] void RunChild(int worker_id, int attempt, FileSystem* shared_fs,
                           const ProgramFactory& factory,
                           const ClusterPlanOptions& plan,
                           const ProcessReplayExecutorOptions& options,
                           const std::string& scratch_path) {
  PosixFileSystem scratch_fs(scratch_path);
  if (options.child_before_session)
    options.child_before_session(worker_id, attempt);

  auto run_worker = [&]() -> Result<ReplayResult> {
    Env env(std::make_unique<WallClock>(), shared_fs);
    FLOR_ASSIGN_OR_RETURN(ProgramInstance instance, factory());
    ReplaySession session(&env, WorkerReplayOptions(plan, worker_id));
    exec::Frame frame;
    return session.Run(instance.program.get(), &frame);
  };
  Result<ReplayResult> result = run_worker();

  if (options.child_before_result_write)
    options.child_before_result_write(worker_id, attempt);

  if (result.ok()) {
    const Status wrote = scratch_fs.WriteFile(
        ProcessReplayExecutor::ResultFileName(worker_id, attempt),
        EncodeWorkerResult(*result));
    _exit(wrote.ok() ? 0 : kChildWriteFailed);
  }
  const Status wrote = scratch_fs.WriteFile(
      ProcessReplayExecutor::ErrorFileName(worker_id, attempt),
      EncodeWorkerError(result.status()));
  _exit(wrote.ok() ? kChildReplayFailed : kChildWriteFailed);
}

}  // namespace

Result<ProcessReplayExecutorResult> ProcessReplayExecutor::Run(
    const ProgramFactory& factory) {
  const double wall_start = WallNowSeconds();

  ClusterPlanOptions plan;
  plan.run_prefix = options_.run_prefix;
  plan.num_workers = options_.num_partitions > 0 ? options_.num_partitions
                                                 : 1;
  plan.init_mode = options_.init_mode;
  plan.costs = options_.costs;
  plan.sample_epochs = options_.sample_epochs;
  static_cast<TierOptions&>(plan) = options_;  // bucket + bloom, one slice

  FLOR_ASSIGN_OR_RETURN(const int active,
                        PlanActiveWorkers(factory, fs_, plan));

  const int max_attempts = std::max(1, options_.max_attempts);
  int pool = options_.max_concurrent_children;
  if (pool <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    pool = std::min(active, static_cast<int>(hw > 0 ? hw : 1));
  }
  pool = std::max(1, pool);

  std::optional<ScratchDir> owned_scratch;
  std::string scratch_path = options_.scratch_dir;
  if (scratch_path.empty()) {
    FLOR_ASSIGN_OR_RETURN(ScratchDir scratch,
                          ScratchDir::Create("flor-procreplay"));
    scratch_path = scratch.path();
    owned_scratch.emplace(std::move(scratch));
  }
  PosixFileSystem scratch_fs(scratch_path);
  // A caller-supplied scratch directory may hold a previous run's files —
  // possibly from a run with *more* partitions or more attempts than this
  // one — and a stale fragment must never pass for this run's. Clear by
  // listing, not by iterating this run's worker ids.
  for (const std::string& stale : scratch_fs.ListPrefix("worker-"))
    (void)scratch_fs.DeleteFile(stale);

  // ---- scheduler state ----------------------------------------------
  struct LiveAttempt {
    int worker = 0;
    int attempt = 0;
    bool speculative = false;
  };
  std::map<pid_t, LiveAttempt> running;
  std::deque<int> ready;  // partitions awaiting a pool slot
  for (int w = 0; w < active; ++w) ready.push_back(w);

  std::vector<int> forks_per_partition(static_cast<size_t>(active), 0);
  std::vector<int> committed_attempt(static_cast<size_t>(active), 0);
  std::vector<Status> partition_error(static_cast<size_t>(active),
                                      Status::OK());
  std::vector<bool> partition_failed(static_cast<size_t>(active), false);
  std::vector<bool> death_retried(static_cast<size_t>(active), false);
  std::vector<bool> speculated(static_cast<size_t>(active), false);
  int completed = 0;  // partitions committed or failed for good
  int total_forks = 0;
  int speculative_forks = 0;
  int speculative_wins = 0;
  int max_children = 0;
  ReplayMerger merger;

  const auto terminal = [&](int w) {
    return committed_attempt[static_cast<size_t>(w)] > 0 ||
           partition_failed[static_cast<size_t>(w)];
  };
  const auto live_attempts_of = [&](int w) {
    int n = 0;
    for (const auto& [pid, la] : running) {
      (void)pid;
      if (la.worker == w) ++n;
    }
    return n;
  };
  const auto kill_other_attempts = [&](int w, pid_t except) {
    for (const auto& [pid, la] : running)
      if (la.worker == w && pid != except) (void)kill(pid, SIGKILL);
  };
  // Tear down every live child (fork/waitpid failure paths and the final
  // sweep that reaps speculation losers), EINTR-safe.
  const auto kill_and_reap_all = [&] {
    for (const auto& [pid, la] : running) {
      (void)la;
      (void)kill(pid, SIGKILL);
    }
    for (const auto& [pid, la] : running) {
      (void)la;
      int ignored = 0;
      (void)WaitPidRetry(pid, &ignored, 0);
    }
    running.clear();
  };
  const auto fork_attempt = [&](int w, bool speculative) -> Status {
    const int attempt = ++forks_per_partition[static_cast<size_t>(w)];
    // Flush stdio so children do not replay the parent's buffered output
    // on their own streams.
    std::fflush(nullptr);
    const pid_t pid = fork();
    if (pid < 0)
      return Status::IOError(
          StrCat("fork failed for replay partition ", w));
    if (pid == 0)
      RunChild(w, attempt, fs_, factory, plan, options_, scratch_path);
    running.emplace(pid, LiveAttempt{w, attempt, speculative});
    ++total_forks;
    if (speculative) ++speculative_forks;
    max_children = std::max(max_children, static_cast<int>(running.size()));
    return Status::OK();
  };
  const auto record_failure = [&](int w, Status status) {
    partition_failed[static_cast<size_t>(w)] = true;
    partition_error[static_cast<size_t>(w)] = std::move(status);
    ++completed;
    kill_other_attempts(w, /*except=*/-1);
  };

  // ---- scheduling loop ----------------------------------------------
  // Fill free pool slots, maybe speculate on the last straggler, reap one
  // child (in whatever order children finish), map its exit to
  // commit/retry/fail — until every partition is terminal. Surviving
  // result files are read but never rewritten, so a partial failure
  // leaves the healthy fragments on disk for inspection or re-merge.
  Status scheduler_error = Status::OK();
  while (completed < active) {
    while (!ready.empty() && static_cast<int>(running.size()) < pool) {
      const int w = ready.front();
      ready.pop_front();
      scheduler_error = fork_attempt(w, /*speculative=*/false);
      if (!scheduler_error.ok()) break;
    }
    if (!scheduler_error.ok()) break;

    // Straggler speculation: every other partition has finished, exactly
    // one attempt is still running, and a pool slot is free — race a twin
    // against it; first committed result wins.
    if (options_.speculate_stragglers && ready.empty() &&
        completed == active - 1 && running.size() == 1 &&
        static_cast<int>(running.size()) < pool) {
      const int last = running.begin()->second.worker;
      if (!terminal(last) && !speculated[static_cast<size_t>(last)]) {
        speculated[static_cast<size_t>(last)] = true;
        scheduler_error = fork_attempt(last, /*speculative=*/true);
        if (!scheduler_error.ok()) break;
      }
    }

    if (running.empty()) {
      scheduler_error =
          Status::Internal("process replay scheduler stalled");
      break;
    }
    int wstatus = 0;
    const pid_t pid = WaitPidRetry(-1, &wstatus, 0);
    if (pid < 0) {
      scheduler_error = Status::Internal(
          StrCat("waitpid failed: ", strerror(errno)));
      break;
    }
    const auto it = running.find(pid);
    if (it == running.end()) continue;  // not one of ours; status discarded
    const LiveAttempt la = it->second;
    running.erase(it);
    const int w = la.worker;

    if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
      // The attempt committed a result file. A losing speculative twin
      // that commits after the winner is ignored — first commit wins.
      if (terminal(w)) continue;
      auto result_bytes = scratch_fs.ReadFile(ResultFileName(w, la.attempt));
      if (!result_bytes.ok()) {
        record_failure(w, Status(result_bytes.status().code(),
                                 "result file unreadable: " +
                                     result_bytes.status().message()));
        continue;
      }
      auto decoded = DecodeWorkerResult(*result_bytes);
      if (!decoded.ok()) {
        record_failure(w, Status(decoded.status().code(),
                                 "result file: " +
                                     decoded.status().message()));
        continue;
      }
      committed_attempt[static_cast<size_t>(w)] = la.attempt;
      ++completed;
      if (la.speculative) ++speculative_wins;
      merger.Add(w, std::move(*decoded));
      kill_other_attempts(w, pid);  // reaped (and ignored) by this loop
      continue;
    }

    // The attempt did not commit: diagnose, then retry or fail. Worker
    // *death* (signal, or a result that could not be committed) is
    // retryable — the SIGKILL suites prove surviving fragments stay
    // intact, so re-forking just the dead partition is safe. A replay
    // that failed cleanly inside the child is deterministic: retrying
    // would fail identically.
    Status cause = Status::OK();
    bool retryable = false;
    if (WIFSIGNALED(wstatus)) {
      const int sig = WTERMSIG(wstatus);
      const char* name = strsignal(sig);
      cause = Status::Aborted(StrCat("worker process killed by signal ",
                                     sig, " (",
                                     name != nullptr ? name : "?", ")"));
      retryable = true;
    } else {
      const int code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
      if (code == kChildReplayFailed) {
        auto err_bytes = scratch_fs.ReadFile(ErrorFileName(w, la.attempt));
        cause = err_bytes.ok()
                    ? DecodeWorkerError(*err_bytes)
                    : Status::Internal("replay failed (error file missing)");
      } else {
        cause = Status::Aborted(StrCat(
            "worker process exited with status ", code,
            code == kChildWriteFailed ? " (result write failed)" : ""));
        retryable = (code == kChildWriteFailed);
      }
    }
    if (terminal(w)) continue;  // twin of a partition already settled
    if (live_attempts_of(w) > 0) continue;  // a racing twin carries it on
    if (retryable &&
        forks_per_partition[static_cast<size_t>(w)] < max_attempts) {
      death_retried[static_cast<size_t>(w)] = true;
      ready.push_back(w);
      continue;
    }
    if (forks_per_partition[static_cast<size_t>(w)] > 1) {
      cause = Status(cause.code(),
                     StrCat(cause.message(), " (",
                            forks_per_partition[static_cast<size_t>(w)],
                            " attempts)"));
    }
    record_failure(w, std::move(cause));
  }

  // Reap whatever is still alive: speculation losers we killed above, or
  // every child when the scheduler itself failed.
  kill_and_reap_all();
  if (!scheduler_error.ok()) return scheduler_error;

  bool any_failed = false;
  for (int w = 0; w < active; ++w)
    any_failed = any_failed || partition_failed[static_cast<size_t>(w)];
  if (any_failed) {
    // Keep the fragments inspectable: an auto-created scratch dir is
    // preserved (and named) instead of being removed on this return.
    if (owned_scratch) owned_scratch->set_keep(true);
    std::vector<std::string> failures;
    Status first_failure = Status::OK();
    for (int w = 0; w < active; ++w) {
      if (!partition_failed[static_cast<size_t>(w)]) continue;
      const Status& status = partition_error[static_cast<size_t>(w)];
      failures.push_back(StrCat("partition ", w, "/", active, ": ",
                                status.message()));
      if (first_failure.ok()) first_failure = status;
    }
    return Status(first_failure.code(),
                  StrCat("process replay: ", StrJoin(failures, "; "),
                         " [surviving fragments in ", scratch_path, "]"));
  }

  ProcessReplayExecutorResult result;
  FLOR_ASSIGN_OR_RETURN(static_cast<MergedClusterReplay&>(result),
                        merger.Finish(fs_, options_.run_prefix));
  result.processes_used = active;
  result.pool_size = pool;
  result.total_forks = total_forks;
  result.max_observed_children = max_children;
  for (const bool retried : death_retried)
    result.retried_partitions += retried ? 1 : 0;
  result.speculative_forks = speculative_forks;
  result.speculative_wins = speculative_wins;
  result.partition_attempts = std::move(forks_per_partition);
  result.wall_seconds = WallNowSeconds() - wall_start;
  return result;
}

#else  // !(__unix__ || __APPLE__)

Result<ProcessReplayExecutorResult> ProcessReplayExecutor::Run(
    const ProgramFactory&) {
  return Status::NotSupported(
      "ProcessReplayExecutor requires fork(); use exec::ReplayExecutor");
}

#endif

}  // namespace exec
}  // namespace flor
