#include "exec/process_executor.h"

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <utility>

#include "common/strings.h"
#include "env/result_file.h"
#include "env/scratch.h"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <string.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace flor {
namespace exec {

namespace {

/// Child exit codes past the session: the parent maps them back to
/// partition-level diagnoses. 0 = result file committed.
constexpr int kChildReplayFailed = 12;  // error file has the Status
constexpr int kChildWriteFailed = 13;   // could not commit result/error

double WallNowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Error-file payload: the failed Status as (code, message) sections, CRC
/// framed like everything else in the scratch directory.
std::string EncodeWorkerError(const Status& status) {
  return EncodeResultSections(
      {StrCat(static_cast<int>(status.code())), status.message()});
}

Status DecodeWorkerError(const std::string& data) {
  auto sections = DecodeResultSections(data);
  if (!sections.ok() || sections->size() != 2)
    return Status::Corruption("worker error file is torn");
  int64_t code = 0;
  if (!ParseI64((*sections)[0], &code) || code <= 0 ||
      code > static_cast<int64_t>(StatusCode::kAborted)) {
    return Status::Corruption("worker error file: bad status code");
  }
  return Status(static_cast<StatusCode>(code), (*sections)[1]);
}

}  // namespace

ProcessReplayExecutor::ProcessReplayExecutor(
    FileSystem* shared_fs, ProcessReplayExecutorOptions options)
    : fs_(shared_fs), options_(std::move(options)) {}

std::string ProcessReplayExecutor::ResultFileName(int worker_id) {
  return StrCat("worker-", worker_id, ".res");
}

std::string ProcessReplayExecutor::ErrorFileName(int worker_id) {
  return StrCat("worker-", worker_id, ".err");
}

#if defined(__unix__) || defined(__APPLE__)

namespace {

/// Child-side worker body. Never returns into the parent's code: commits
/// a result (or error) file and _exit()s, skipping atexit handlers and
/// the parent's buffered state.
[[noreturn]] void RunChild(int worker_id, FileSystem* shared_fs,
                           const ProgramFactory& factory,
                           const ClusterPlanOptions& plan,
                           const ProcessReplayExecutorOptions& options,
                           const std::string& scratch_path) {
  PosixFileSystem scratch_fs(scratch_path);
  if (options.child_before_session) options.child_before_session(worker_id);

  auto run_worker = [&]() -> Result<ReplayResult> {
    Env env(std::make_unique<WallClock>(), shared_fs);
    FLOR_ASSIGN_OR_RETURN(ProgramInstance instance, factory());
    ReplaySession session(&env, WorkerReplayOptions(plan, worker_id));
    exec::Frame frame;
    return session.Run(instance.program.get(), &frame);
  };
  Result<ReplayResult> result = run_worker();

  if (options.child_before_result_write)
    options.child_before_result_write(worker_id);

  if (result.ok()) {
    const Status wrote = scratch_fs.WriteFile(
        ProcessReplayExecutor::ResultFileName(worker_id),
        EncodeWorkerResult(*result));
    _exit(wrote.ok() ? 0 : kChildWriteFailed);
  }
  const Status wrote =
      scratch_fs.WriteFile(ProcessReplayExecutor::ErrorFileName(worker_id),
                           EncodeWorkerError(result.status()));
  _exit(wrote.ok() ? kChildReplayFailed : kChildWriteFailed);
}

}  // namespace

Result<ProcessReplayExecutorResult> ProcessReplayExecutor::Run(
    const ProgramFactory& factory) {
  const double wall_start = WallNowSeconds();

  ClusterPlanOptions plan;
  plan.run_prefix = options_.run_prefix;
  plan.num_workers = options_.num_partitions > 0 ? options_.num_partitions
                                                 : 1;
  plan.init_mode = options_.init_mode;
  plan.costs = options_.costs;
  plan.sample_epochs = options_.sample_epochs;
  plan.bucket_prefix = options_.bucket_prefix;
  plan.bucket_rehydrate = options_.bucket_rehydrate;

  FLOR_ASSIGN_OR_RETURN(const int active,
                        PlanActiveWorkers(factory, fs_, plan));

  std::optional<ScratchDir> owned_scratch;
  std::string scratch_path = options_.scratch_dir;
  if (scratch_path.empty()) {
    FLOR_ASSIGN_OR_RETURN(ScratchDir scratch,
                          ScratchDir::Create("flor-procreplay"));
    scratch_path = scratch.path();
    owned_scratch.emplace(std::move(scratch));
  }
  PosixFileSystem scratch_fs(scratch_path);
  // A caller-supplied scratch directory may hold a previous run's files;
  // a stale fragment must never pass for this run's.
  for (int w = 0; w < active; ++w) {
    (void)scratch_fs.DeleteFile(ResultFileName(w));
    (void)scratch_fs.DeleteFile(ErrorFileName(w));
  }

  // Fork one worker per partition. Flush stdio first so children do not
  // replay the parent's buffered output on their own streams.
  std::fflush(nullptr);
  std::vector<pid_t> pids(static_cast<size_t>(active), -1);
  for (int w = 0; w < active; ++w) {
    const pid_t pid = fork();
    if (pid < 0) {
      // Reap what was already forked before reporting.
      for (int k = 0; k < w; ++k) {
        (void)kill(pids[static_cast<size_t>(k)], SIGKILL);
        int ignored = 0;
        (void)waitpid(pids[static_cast<size_t>(k)], &ignored, 0);
      }
      return Status::IOError(
          StrCat("fork failed for replay partition ", w));
    }
    if (pid == 0)
      RunChild(w, fs_, factory, plan, options_, scratch_path);
    pids[static_cast<size_t>(w)] = pid;
  }

  // Reap every child; collect per-partition outcomes. Surviving result
  // files are read but never rewritten, so a partial failure leaves the
  // healthy fragments on disk for inspection or re-merge.
  ReplayMerger merger;
  std::vector<std::string> failures;
  Status first_failure = Status::OK();
  auto fail = [&](int w, Status status) {
    failures.push_back(StrCat("partition ", w, "/", active, ": ",
                              status.message()));
    if (first_failure.ok()) first_failure = std::move(status);
  };
  for (int w = 0; w < active; ++w) {
    int wstatus = 0;
    if (waitpid(pids[static_cast<size_t>(w)], &wstatus, 0) !=
        pids[static_cast<size_t>(w)]) {
      fail(w, Status::Internal("waitpid failed"));
      continue;
    }
    if (WIFSIGNALED(wstatus)) {
      const int sig = WTERMSIG(wstatus);
      const char* name = strsignal(sig);
      fail(w, Status::Aborted(StrCat("worker process killed by signal ",
                                     sig, " (",
                                     name != nullptr ? name : "?", ")")));
      continue;
    }
    const int code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
    if (code == kChildReplayFailed) {
      auto err_bytes = scratch_fs.ReadFile(ErrorFileName(w));
      fail(w, err_bytes.ok()
                  ? DecodeWorkerError(*err_bytes)
                  : Status::Internal("replay failed (error file missing)"));
      continue;
    }
    if (code != 0) {
      fail(w, Status::Aborted(StrCat(
                  "worker process exited with status ", code,
                  code == kChildWriteFailed ? " (result write failed)"
                                            : "")));
      continue;
    }
    auto result_bytes = scratch_fs.ReadFile(ResultFileName(w));
    if (!result_bytes.ok()) {
      fail(w, Status(result_bytes.status().code(),
                     "result file unreadable: " +
                         result_bytes.status().message()));
      continue;
    }
    auto decoded = DecodeWorkerResult(*result_bytes);
    if (!decoded.ok()) {
      fail(w, Status(decoded.status().code(),
                     "result file: " + decoded.status().message()));
      continue;
    }
    merger.Add(w, std::move(*decoded));
  }
  if (!failures.empty()) {
    // Keep the fragments inspectable: an auto-created scratch dir is
    // preserved (and named) instead of being removed on this return.
    if (owned_scratch) owned_scratch->set_keep(true);
    return Status(first_failure.code(),
                  StrCat("process replay: ", StrJoin(failures, "; "),
                         " [surviving fragments in ", scratch_path, "]"));
  }

  ProcessReplayExecutorResult result;
  FLOR_ASSIGN_OR_RETURN(static_cast<MergedClusterReplay&>(result),
                        merger.Finish(fs_, options_.run_prefix));
  result.processes_used = active;
  result.wall_seconds = WallNowSeconds() - wall_start;
  return result;
}

#else  // !(__unix__ || __APPLE__)

Result<ProcessReplayExecutorResult> ProcessReplayExecutor::Run(
    const ProgramFactory&) {
  return Status::NotSupported(
      "ProcessReplayExecutor requires fork(); use exec::ReplayExecutor");
}

#endif

}  // namespace exec
}  // namespace flor
