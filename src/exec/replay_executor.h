// Real thread-pool parallel replay engine (paper §5.4, Fig. 10/13 — the
// measured counterpart of sim::ClusterReplay).
//
// The executor runs one ReplaySession per log partition on N worker
// threads, work-stealing over the partitions, against a shared thread-safe
// FileSystem and the wall clock. Partition planning and log merging are the
// exact same code the simulated engine uses (flor/replay_plan.h), so the
// merged replay log is byte-identical to a single-thread run and to the
// simulated engine — only the latency is measured instead of modeled.
//
// Worker sessions never synchronize with each other (hindsight replay is
// embarrassingly parallel): each builds its own program instance, owns its
// own clock and log stream, and only shares the read-only record artifacts
// through the FileSystem. The coordinating thread merges partitions after
// all workers join.

#ifndef FLOR_EXEC_REPLAY_EXECUTOR_H_
#define FLOR_EXEC_REPLAY_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "flor/replay_plan.h"

namespace flor {
namespace exec {

/// Minimal work-stealing task pool. Task indices are dealt round-robin to
/// per-thread deques; a thread pops its own deque from the front and, when
/// empty, steals from the back of a victim's deque. Blocks until all tasks
/// complete. Tasks must not block on each other.
class WorkStealingPool {
 public:
  struct Stats {
    int64_t tasks_run = 0;
    /// Tasks executed by a thread other than the one they were dealt to.
    int64_t steals = 0;
  };

  /// Runs all `tasks` on `num_threads` threads (inline when either count
  /// is <= 1).
  static Stats Run(int num_threads,
                   const std::vector<std::function<void()>>& tasks);
};

/// Real-engine configuration. The read-tier fields (bucket fall-through,
/// bloom filters) come from the shared TierOptions base
/// (checkpoint/store.h) and are sliced into the cluster plan, so every
/// worker's store sees them.
struct ReplayExecutorOptions : TierOptions {
  std::string run_prefix = "run";
  /// Worker threads in the pool.
  int num_threads = 4;
  /// Log partitions (the paper's G). 0 = one per thread. May exceed
  /// num_threads: threads then steal the surplus partitions.
  int num_partitions = 0;
  InitMode init_mode = InitMode::kStrong;
  /// Restore-cost model, carried for parity with the simulated engine (it
  /// is only charged under simulated clocks; wall-clock restores are simply
  /// measured).
  MaterializerCosts costs;
  /// Non-empty selects iteration-sampling replay on a single worker.
  std::vector<int64_t> sample_epochs;
};

/// Outcome of a real parallel replay: the engine-agnostic merge (latency,
/// merged logs — byte-identical across thread counts and engines —
/// deferred check; flor/replay_plan.h) plus pool-side measurements.
struct ReplayExecutorResult : MergedClusterReplay {
  /// Measured wall-clock time of the whole replay (plan + sessions +
  /// merge), coordinating thread perspective; latency_seconds from the
  /// base is the max over worker session runtimes (no-barrier latency).
  double wall_seconds = 0;
  int threads_used = 0;
  /// Partitions executed by a thread they were not dealt to.
  int64_t steals = 0;
};

/// Runs partitioned hindsight replay on a real thread pool. Single-use per
/// Run call; the executor itself holds no per-run state.
class ReplayExecutor {
 public:
  /// Does not own `shared_fs`, which must be thread-safe (all flor
  /// FileSystem implementations are).
  ReplayExecutor(FileSystem* shared_fs, ReplayExecutorOptions options);

  /// Plans partitions, replays them on the pool, merges, deferred-checks.
  /// `factory` is invoked once per worker, on the worker's thread; it must
  /// be safe to call concurrently (workload factories build fresh,
  /// disjoint instances).
  Result<ReplayExecutorResult> Run(const ProgramFactory& factory);

 private:
  FileSystem* fs_;
  ReplayExecutorOptions options_;
};

}  // namespace exec
}  // namespace flor

#endif  // FLOR_EXEC_REPLAY_EXECUTOR_H_
