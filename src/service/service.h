// Connection/Session — the always-on multi-tenant hindsight service
// front-end (WiredTiger's connection/session split, applied to Flor).
//
// Everything below this layer is one-shot: a RecordSession records and
// exits, a replay engine replays and exits, each opening its own
// CheckpointStore and SpoolQueue. A long-running service inverts that
// ownership:
//
//   * flor::Connection — opened once per process. Owns the shared
//     infrastructure: the tier configuration every store open uses
//     (bucket mirror + bloom filters, TierOptions), the single shared
//     SpoolQueue all record sessions spool through (shard-batched, with
//     backpressure via SpoolOptions::max_queued_batches), admission
//     control over concurrent recorders, and the background GC worker
//     that retires checkpoints after record sessions finish — demoting
//     to the bucket tier when one is attached, racing live readers
//     safely (the tiered-store fall-through contract).
//   * flor::Session — a lightweight per-tenant handle from
//     Connection::OpenSession. Record / Replay / Query / Exists calls
//     map the tenant namespace onto run prefixes
//     ("<root>/<tenant>/<run>"), so tenants can never observe each
//     other's runs or checkpoint keys through any tier — local shards,
//     bucket fall-through, or the bloom fast path.
//
// Thread-safety follows WiredTiger: a Connection is fully thread-safe
// and meant to be shared; a Session is a cheap single-threaded handle —
// open one per thread. The pre-existing one-shot entry points
// (RecordSession, sim::ClusterReplay, exec::ReplayExecutor,
// exec::ProcessReplayExecutor) remain as the compat surface and share
// this layer's internals (CheckpointStore::Open, TierOptions,
// RecordOptions::shared_spool), so both paths stay byte-identical.

#ifndef FLOR_SERVICE_SERVICE_H_
#define FLOR_SERVICE_SERVICE_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "checkpoint/gc.h"
#include "checkpoint/spool.h"
#include "checkpoint/store.h"
#include "env/background_queue.h"
#include "env/env.h"
#include "flor/query.h"
#include "flor/record.h"
#include "flor/replay_plan.h"
#include "sim/cost_model.h"

namespace flor {

class Session;

/// Which engine executes a Session::Replay. All three consume the shared
/// plan (flor/replay_plan.h) and produce byte-identical merged logs; they
/// differ in clocks and isolation.
enum class ReplayEngine {
  kSimulated,  ///< sequential workers on simulated clocks (latency model)
  kThreads,    ///< work-stealing thread pool, wall clock
  kProcesses,  ///< fork-per-partition scheduler, true isolation
};

/// Connection-level configuration: the layer of knobs that is set once
/// for the service lifetime. Per-call knobs (engine choice, worker count,
/// scratch dir, workload costs) live in SessionRecordOptions /
/// SessionReplayOptions instead.
struct ConnectionOptions {
  /// Filesystem root of the service namespace; a tenant's runs live at
  /// "<root>/<tenant>/<run>".
  std::string root = "flor";
  /// Shard count of every run's checkpoint store.
  int ckpt_shards = 1;
  /// Read-tier configuration applied to every store the connection opens
  /// (record spool mirror, replay fall-through, Exists/query probes):
  /// bucket prefix + rehydration, bloom filters + target FPR. The same
  /// aggregate the one-shot entry points inherit.
  TierOptions tier;
  /// Shared spooler batching/backpressure (the admission-control back
  /// half: a full queue blocks the materializer threads of every
  /// recording session). Only used when tier.bucket_prefix is set.
  SpoolOptions spool;
  /// Local checkpoint retention, applied by the background GC worker
  /// after each record session completes. keep_last_k == 0 disables
  /// retirement. With a bucket tier attached the pass *demotes* (local
  /// deletes only, manifest intact) — live replays fault demoted epochs
  /// back in, so GC can race readers.
  GcPolicy gc;
  /// Admission control: at most this many record sessions execute
  /// concurrently; further Session::Record calls block until a slot
  /// frees (counted in ConnectionStats::admission_waits). 0 = unlimited.
  int max_concurrent_records = 0;
  /// Per-tenant admission quota: at most this many of the global slots
  /// may be held by one tenant at a time. 0 = no per-tenant cap. Only
  /// meaningful under fair admission.
  int max_records_per_tenant = 0;
  /// Fair admission (the default): freed slots are handed round-robin
  /// across *tenants* with waiting recorders, and arrivals cannot barge
  /// past the wait ring, so a burst tenant cannot starve steady ones.
  /// false selects the legacy global FIFO cv-gate — kept so the skewed
  /// bench can measure the fairness fix (per-tenant quotas are not
  /// enforced in this mode).
  bool fair_admission = true;
};

/// Starved-wait histogram shape: exponential admission-wait buckets
/// <1ms, <10ms, <100ms, <1s, <10s, >=10s (wall-clock accounting — the
/// gate always waits in real time, even on simulated-clock connections).
inline constexpr int kStarvedWaitBucketCount = 6;

/// Bucket index for an admission wait of `seconds`.
int StarvedWaitBucket(double seconds);

/// Per-tenant slice of the service counters
/// (ConnectionStats::tenants). A tenant appears once any of its
/// sessions touches the connection.
struct TenantStats {
  int64_t sessions_opened = 0;
  int64_t records_completed = 0;
  int64_t replays_completed = 0;
  int64_t queries_served = 0;
  /// Record calls that blocked on the admission gate.
  int64_t admission_waits = 0;
  /// High-water mark of this tenant's concurrently executing records —
  /// under fair admission never exceeds max_records_per_tenant.
  int max_observed_records = 0;
  int active_records = 0;
  /// Total / worst admission-gate wait, and the starved-wait histogram
  /// (one count per blocked Record call, bucketed by wait duration).
  double admission_wait_seconds = 0;
  double max_admission_wait_seconds = 0;
  std::array<int64_t, kStarvedWaitBucketCount> starved_wait_hist{};
  /// Spool traffic attributed to this tenant's record sessions (only
  /// populated when a bucket tier is attached).
  int64_t spool_objects = 0;
  int64_t spool_bytes = 0;
  /// Read-tier traffic from this tenant's replays and Exists probes.
  int64_t bucket_faults = 0;
  int64_t bloom_skipped_probes = 0;
  /// Background retirement passes for this tenant's runs.
  int64_t gc_passes = 0;
  int64_t gc_failures = 0;
};

/// One background-GC failure, tenant-attributed
/// (ConnectionStats::recent_gc_errors).
struct GcFailure {
  std::string tenant;
  std::string run;
  std::string error;
};

/// Point-in-time service counters (Connection::stats()).
struct ConnectionStats {
  int64_t sessions_opened = 0;
  int64_t records_completed = 0;
  int64_t replays_completed = 0;
  /// Query-surface calls served (ListRuns / FindRuns / MetricSeries /
  /// Exists).
  int64_t queries_served = 0;
  /// Record calls that blocked on the admission gate before starting.
  int64_t admission_waits = 0;
  /// High-water mark of concurrently executing record sessions.
  int max_observed_records = 0;
  /// Record sessions executing right now (point-in-time; lets a caller
  /// observe that a record is genuinely in flight).
  int active_records = 0;
  /// Background retirement passes completed / failed. The last failure
  /// message is in last_gc_error; the most recent kGcErrorRingCapacity
  /// failures survive (tenant-attributed, oldest first) in
  /// recent_gc_errors. A pass that leaves failed deletes behind counts
  /// as a failure even when the report itself decodes — orphaned local
  /// checkpoints are exactly what an operator needs to see.
  int64_t gc_passes = 0;
  int64_t gc_failures = 0;
  std::string last_gc_error;
  std::vector<GcFailure> recent_gc_errors;
  /// Per-tenant breakdowns, keyed by tenant name.
  std::map<std::string, TenantStats> tenants;
};

/// Bound on ConnectionStats::recent_gc_errors.
inline constexpr size_t kGcErrorRingCapacity = 16;

/// The shared service owner. Thread-safe; open one per process and share
/// it across threads, handing each thread its own Session.
class Connection {
 public:
  /// Validates `options` (root name, shard count) and builds the shared
  /// state: the spool queue when a bucket tier is configured, and the
  /// background GC worker. Does not own `env`; env->fs() must be
  /// thread-safe (all flor FileSystem implementations are). A simulated
  /// env clock makes every record/replay run on its own fresh SimClock —
  /// deterministic and byte-identical to the one-shot entry points.
  static Result<std::unique_ptr<Connection>> Open(Env* env,
                                                  ConnectionOptions options);

  /// Drains the shared spool and the background GC queue.
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Hands out a tenant-scoped session handle. Tenant names are path
  /// segments: [A-Za-z0-9._-]+, not "." or ".." — anything else is
  /// rejected so a tenant cannot escape its namespace.
  Result<std::unique_ptr<Session>> OpenSession(const std::string& tenant);

  /// Blocks until the background work the connection owns is idle: the
  /// shared spool's pending batches and every scheduled GC pass.
  void DrainBackground();

  /// Graceful drain: stops admitting new work (every subsequent session
  /// call — and any Record blocked on the admission gate — fails with
  /// Unavailable), waits for in-flight session calls to finish, then
  /// drains the spool and the GC queue. `deadline_seconds > 0` bounds
  /// the wait for in-flight work: on expiry Close returns Aborted
  /// *without* draining — the connection stays closed and a later
  /// Close() can finish the job. Idempotent; 0 = wait forever.
  Status Close(double deadline_seconds = 0);

  /// True once Close has been called (even if a deadline expired).
  bool closed() const;

  /// Bucket-tier retirement (keep-newest-K') for one run. Synchronous,
  /// between-sessions maintenance: fails with FailedPrecondition while
  /// any record session is executing.
  Result<GcReport> RetireBucket(const std::string& tenant,
                                const std::string& run,
                                const BucketGcPolicy& policy);

  /// Manifest-vs-listing orphan sweep for one run. Synchronous,
  /// between-sessions maintenance like RetireBucket.
  Result<ReconcileReport> Reconcile(const std::string& tenant,
                                    const std::string& run);

  ConnectionStats stats() const;
  const ConnectionOptions& options() const { return options_; }
  Env* env() const { return env_; }
  /// The shared spooler; null when no bucket tier is configured.
  SpoolQueue* shared_spool() const { return spool_.get(); }

  /// "<root>/<tenant>" — the prefix a session's queries scan. The
  /// trailing-slash scan in ListRuns means tenant "a" can never match
  /// tenant "ab"'s runs.
  std::string TenantRoot(const std::string& tenant) const;

 private:
  friend class Session;

  explicit Connection(Env* env, ConnectionOptions options);

  /// Per-tenant admission gate state, owned by the connection map so
  /// pointers stay stable across rehashes. Slots are handed off
  /// directly: the granter accounts the slot and posts a token, and the
  /// woken waiter consumes the token without re-checking capacity — so
  /// a freed slot can never be stolen by a barging arrival.
  struct TenantGate {
    explicit TenantGate(std::string n) : name(std::move(n)) {}
    std::string name;
    int waiting = 0;  ///< blocked Record calls
    int tokens = 0;   ///< granted-but-unconsumed slots
    bool in_ring = false;
    std::condition_variable cv;
    TenantStats stats;
  };

  /// In-flight-call guard around every session op: refuses with
  /// Unavailable once the connection is closing, and lets Close wait
  /// for the stragglers.
  Status BeginOp();
  void EndOp();

  /// RAII over a successful BeginOp.
  class OpScope {
   public:
    explicit OpScope(Connection* conn) : conn_(conn) {}
    ~OpScope() { conn_->EndOp(); }
    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;

   private:
    Connection* conn_;
  };

  /// Admission gate. On success *waited_seconds is the wall-clock gate
  /// wait (0 when admitted immediately); Unavailable when the
  /// connection closes while waiting.
  Status AcquireRecordSlot(const std::string& tenant,
                           double* waited_seconds);
  void ReleaseRecordSlot(const std::string& tenant);

  /// Hands freed capacity to waiting tenants, round-robin across the
  /// wait ring. Caller holds mu_.
  void GrantSlotsLocked();
  bool GlobalSlotFreeLocked() const;
  bool TenantSlotFreeLocked(const TenantGate& gate) const;
  void AdmitLocked(TenantGate* gate);
  TenantGate* GateLocked(const std::string& tenant);

  /// Queues a background retirement pass for a finished run (no-op when
  /// gc.keep_last_k == 0). Tenant/run feed the GC failure ring.
  void ScheduleRetirement(const std::string& tenant, const std::string& run,
                          const std::string& manifest_path,
                          const std::string& ckpt_prefix);

  void BumpQuery(const std::string& tenant);
  void BumpReplay(const std::string& tenant, int64_t bucket_faults,
                  int64_t bloom_skipped_probes);
  void BumpRecord(const std::string& tenant, int64_t spool_objects,
                  int64_t spool_bytes);
  /// Read-tier deltas from an Exists probe.
  void AccountTier(const std::string& tenant, const TierStats& delta);

  /// True while any record session is executing (guards the synchronous
  /// maintenance entry points).
  bool AnyRecordActive() const;

  Env* env_;
  ConnectionOptions options_;

  /// Declared before gc_queue_ so queued GC jobs (which only read/write
  /// through env_->fs()) are drained before the spooler goes away.
  std::unique_ptr<SpoolQueue> spool_;
  BackgroundQueue gc_queue_;

  mutable std::mutex mu_;
  std::condition_variable slot_freed_;  ///< legacy FIFO gate only
  std::condition_variable ops_idle_;    ///< Close waits here
  std::map<std::string, TenantGate> gates_;
  /// Round-robin grant order: tenants with waiting recorders, each at
  /// most once.
  std::deque<TenantGate*> wait_ring_;
  int active_records_ = 0;
  int in_flight_ops_ = 0;
  bool closing_ = false;
  ConnectionStats stats_;
};

/// Per-call record knobs — the workload-shaped layer (cost models,
/// adaptive controller); everything store/tier/GC-shaped is connection
/// state.
struct SessionRecordOptions {
  /// Workload name stored in the manifest (informational).
  std::string workload;
  MaterializerOptions materializer;
  AdaptiveOptions adaptive;
  /// Nominal (paper-scale) raw bytes per checkpoint for the simulated
  /// cost model; 0 = actual snapshot sizes.
  uint64_t nominal_checkpoint_bytes = 0;
  /// Optional vanilla runtime of the same program (manifest field).
  double vanilla_runtime_seconds = 0;
};

/// Per-call replay knobs: engine choice, worker count, scratch dir. The
/// tier configuration (bucket + bloom) always comes from the connection.
struct SessionReplayOptions {
  ReplayEngine engine = ReplayEngine::kSimulated;
  /// Log partitions (the paper's G); one worker per partition.
  int workers = 1;
  /// Thread-engine pool size; 0 = one thread per worker.
  int num_threads = 0;
  InitMode init_mode = InitMode::kStrong;
  /// Non-empty selects iteration-sampling replay on a single worker.
  std::vector<int64_t> sample_epochs;
  /// Restore-cost model (charged under simulated clocks only).
  MaterializerCosts costs;
  /// Process-engine result-file directory; empty = fresh mkdtemp scratch.
  std::string scratch_dir;
  /// Simulated-engine billing shape: workers fill machines of this
  /// instance type, `workers` must be a multiple of instance.gpus so the
  /// partition count stays exactly `workers`.
  sim::Ec2Instance instance = sim::kP3_2xLarge;
};

/// Record outcome through the service path: everything the one-shot
/// RecordSession reports, plus what only the service layer can know —
/// how long this call was held at the admission gate.
struct SessionRecordResult : RecordResult {
  /// Wall-clock admission-gate wait before the run started (0 when
  /// admitted immediately).
  double admission_wait_seconds = 0;
};

/// Engine-agnostic replay outcome (merged logs are byte-identical across
/// all three engines) plus the per-engine extras that survive the
/// dispatch.
struct SessionReplayResult : MergedClusterReplay {
  ReplayEngine engine = ReplayEngine::kSimulated;
  /// Measured wall time (thread/process engines; 0 under the simulated
  /// engine, whose latency_seconds is modeled).
  double wall_seconds = 0;
  /// Simulated-cluster billing (simulated engine only).
  double total_cost_dollars = 0;
};

/// A tenant-scoped handle. Cheap to create and destroy; NOT thread-safe —
/// like a WiredTiger session, open one per thread and share the
/// Connection instead.
class Session {
 public:
  const std::string& tenant() const { return tenant_; }
  Connection* connection() const { return conn_; }

  /// "<root>/<tenant>/<run>" after validating `run` as a path segment.
  Result<std::string> RunPrefix(const std::string& run) const;

  /// Records one program execution as run `run` under this tenant,
  /// spooling through the connection's shared queue and subject to its
  /// admission gate. Retirement (ConnectionOptions::gc) is scheduled on
  /// the connection's background worker after the artifacts are durable —
  /// the session never blocks on GC.
  Result<SessionRecordResult> Record(const std::string& run,
                                     const ProgramFactory& factory,
                                     const SessionRecordOptions& options =
                                         SessionRecordOptions());

  /// Replays run `run` on the chosen engine. `factory` rebuilds the
  /// *current* (possibly probed) program per worker.
  Result<SessionReplayResult> Replay(const std::string& run,
                                     const ProgramFactory& factory,
                                     const SessionReplayOptions& options =
                                         SessionReplayOptions());

  /// This tenant's recorded runs (never another tenant's: the scan is
  /// prefix-scoped to TenantRoot).
  Result<std::vector<RunInfo>> Query() const;

  /// This tenant's runs whose record logs satisfy `predicate`.
  Result<std::vector<RunInfo>> Query(const RunPredicate& predicate) const;

  /// Numeric series of `label` from a run's record logs.
  Result<std::vector<double>> MetricSeries(const std::string& run,
                                           const std::string& label) const;

  /// Whether `key` is readable through any tier of `run`'s store — the
  /// connection's tier configuration applies (bucket fall-through, bloom
  /// fast path). NotFound when the run itself does not exist.
  Result<bool> Exists(const std::string& run,
                      const CheckpointKey& key) const;

 private:
  friend class Connection;

  Session(Connection* conn, std::string tenant);

  /// Opens the run's store the same way replay does: manifest-first, then
  /// CheckpointStore::Open with the connection tier.
  Result<std::unique_ptr<CheckpointStore>> OpenRunStore(
      const std::string& run, Manifest* manifest_out) const;

  Connection* conn_;
  std::string tenant_;
};

/// Longest accepted tenant/run name. Chosen under every mainstream
/// filesystem's 255-byte component limit so an over-long name fails
/// here with InvalidArgument instead of surfacing as ENAMETOOLONG from
/// deep inside a record session.
inline constexpr size_t kMaxNamespaceSegmentBytes = 200;

/// Validates a tenant or run name as a single safe path segment:
/// non-empty, at most kMaxNamespaceSegmentBytes bytes, [A-Za-z0-9._-]
/// only, not "." or "..". Exposed for tests.
Status ValidateNamespaceSegment(const std::string& name,
                                const char* what);

}  // namespace flor

#endif  // FLOR_SERVICE_SERVICE_H_
