// Wire protocol for the service front-end (service/server.h).
//
// Messages reuse the sectioned CRC-framing idiom of env/result_file.h —
// the same tamper-evidence contract, applied to a socket instead of a
// scratch file:
//
//   frame 0  header  "florwir1\t<req|res>\t<n>"  (n = payload sections)
//   frame 1..n       one payload section each
//
// with each frame [fixed32 crc][varint len][payload] (serialize/frame.h).
// The header count catches truncation at an exact frame boundary; every
// other cut or flipped byte is caught by a frame CRC. Decoding a torn or
// mutated message therefore always fails with Corruption — never a
// crash, never a garbage request. On the socket, each message travels as
// [u32 LE total length][message bytes] (server.h).
//
// Error taxonomy: structural problems (bad magic, wrong kind, bad CRC,
// section-count mismatch, malformed meta) are Corruption; semantically
// invalid but well-formed requests (unknown op, bad tenant name) decode
// fine and earn a typed error *response* from the server instead.

#ifndef FLOR_SERVICE_WIRE_H_
#define FLOR_SERVICE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "flor/query.h"
#include "service/service.h"

namespace flor {
namespace wire {

/// Magic of frame 0; bumping it is a wire-format break.
inline constexpr char kWireMagic[] = "florwir1";

/// Default cap on one message's total encoded size (requests carry no
/// bulk data; responses carry manifests and merged logs, which stay far
/// below this for any realistic run).
inline constexpr uint32_t kMaxWireMessageBytes = 64u << 20;

/// Which side of the exchange a message claims to be. A response decoded
/// as a request (or vice versa) is Corruption — a desynced stream must
/// not be half-interpreted.
enum class WireKind { kRequest, kResponse };

/// Encodes `sections` as one wire message of `kind`.
std::string EncodeWireSections(WireKind kind,
                               const std::vector<std::string>& sections);

/// Decodes a wire message back into its sections, requiring `expected`
/// kind. Corruption on any structural problem.
Result<std::vector<std::string>> DecodeWireSections(
    WireKind expected, const std::string& data);

/// One client request. `op` selects the Session call; the remaining
/// fields are that call's arguments. Unknown ops/engines survive
/// decoding (they are semantic errors, answered with a typed response).
struct Request {
  std::string op;        ///< "record" | "replay" | "query" | "exists"
  std::string tenant;
  std::string run;       ///< record / replay / exists
  std::string workload;  ///< resolver spec (record / replay)
  std::string engine = "sim";  ///< replay: "sim" | "threads" | "procs"
  int64_t workers = 1;         ///< replay partition count
  int32_t loop_id = 0;         ///< exists: checkpoint key loop
  std::string ctx;             ///< exists: checkpoint key context (raw)
};

std::string EncodeRequest(const Request& req);
Result<Request> DecodeRequest(const std::string& message);

/// One server response: a status code + message, plus op-specific
/// payload sections (see the *Reply structs).
struct Response {
  int64_t code = 0;  ///< StatusCode as integer
  std::string message;
  std::vector<std::string> payload;

  bool ok() const { return code == 0; }
  /// Reconstructs the Status a failed call carried.
  Status ToStatus() const;
};

std::string EncodeResponse(const Response& res);
Result<Response> DecodeResponse(const std::string& message);

/// The error-shaped response for `status` (no payload).
Response ErrorResponse(const Status& status);

/// record: manifest bytes travel verbatim (byte-identical to the
/// manifest file an in-process Session::Record leaves behind).
struct RecordReply {
  int64_t checkpoints = 0;
  double runtime_seconds = 0;
  double admission_wait_seconds = 0;
  std::string manifest;
};
Response MakeRecordReply(const RecordReply& reply);
Result<RecordReply> ParseRecordReply(const Response& res);

/// replay: merged logs travel in LogStream's line encoding — pinned
/// byte-identical across all three engines, so the wire answer can be
/// compared bytewise against an in-process replay.
struct ReplayReply {
  int64_t workers_used = 0;
  double latency_seconds = 0;
  double wall_seconds = 0;
  int64_t bucket_faults = 0;
  int64_t bloom_skipped_probes = 0;
  bool deferred_ok = false;
  std::string merged_logs;
};
Response MakeReplayReply(const ReplayReply& reply);
Result<ReplayReply> ParseReplayReply(const Response& res);

/// query: the tenant's run listing (doubles as hexfloat, bit-exact).
struct QueryReply {
  std::vector<RunInfo> runs;
};
Response MakeQueryReply(const QueryReply& reply);
Result<QueryReply> ParseQueryReply(const Response& res);

/// exists: one bool.
struct ExistsReply {
  bool exists = false;
};
Response MakeExistsReply(const ExistsReply& reply);
Result<ExistsReply> ParseExistsReply(const Response& res);

/// "sim" / "threads" / "procs" <-> ReplayEngine. Unknown names are
/// InvalidArgument (semantic, not Corruption).
const char* EngineName(ReplayEngine engine);
Result<ReplayEngine> ParseEngine(const std::string& name);

}  // namespace wire
}  // namespace flor

#endif  // FLOR_SERVICE_WIRE_H_
