#include "service/wire.h"

#include <utility>

#include "common/strings.h"
#include "serialize/frame.h"

namespace flor {
namespace wire {

namespace {

const char* KindName(WireKind kind) {
  return kind == WireKind::kRequest ? "req" : "res";
}

/// Parses a meta section of exactly `keys.size()` "key\tvalue" lines in
/// the given order. Anything else — missing key, extra line, reordered
/// lines — is Corruption: encoders emit a fixed shape, so deviation
/// means the bytes were not produced by EncodeRequest/EncodeResponse.
Result<std::vector<std::string>> ParseMetaValues(
    const std::string& section, const std::vector<const char*>& keys) {
  const std::vector<std::string> lines = StrSplit(section, '\n');
  if (lines.size() != keys.size()) {
    return Status::Corruption(
        StrCat("wire meta: expected ", keys.size(), " lines, got ",
               lines.size()));
  }
  std::vector<std::string> values;
  values.reserve(keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    const size_t tab = lines[i].find('\t');
    if (tab == std::string::npos ||
        lines[i].compare(0, tab, keys[i]) != 0) {
      return Status::Corruption(
          StrCat("wire meta: expected key '", keys[i], "' on line ", i));
    }
    values.push_back(lines[i].substr(tab + 1));
  }
  return values;
}

Result<int64_t> MetaInt(const std::string& value, const char* key) {
  int64_t out = 0;
  if (!ParseI64(value, &out)) {
    return Status::Corruption(
        StrCat("wire meta: '", key, "' is not an integer: '", value, "'"));
  }
  return out;
}

Result<double> MetaDouble(const std::string& value, const char* key) {
  double out = 0;
  if (!ParseF64(value, &out)) {
    return Status::Corruption(
        StrCat("wire meta: '", key, "' is not a double: '", value, "'"));
  }
  return out;
}

}  // namespace

std::string EncodeWireSections(WireKind kind,
                               const std::vector<std::string>& sections) {
  std::string out;
  AppendFrame(&out, StrCat(kWireMagic, "\t", KindName(kind), "\t",
                           sections.size()));
  for (const std::string& section : sections) AppendFrame(&out, section);
  return out;
}

Result<std::vector<std::string>> DecodeWireSections(
    WireKind expected, const std::string& data) {
  FLOR_ASSIGN_OR_RETURN(std::vector<std::string> frames, ReadFrames(data));
  if (frames.empty())
    return Status::Corruption("wire message: empty (no header frame)");
  const std::vector<std::string> header = StrSplit(frames[0], '\t');
  if (header.size() != 3 || header[0] != kWireMagic) {
    return Status::Corruption("wire message: bad header magic");
  }
  if (header[1] != KindName(expected)) {
    return Status::Corruption(
        StrCat("wire message: expected kind '", KindName(expected),
               "', got '", header[1], "'"));
  }
  int64_t declared = 0;
  if (!ParseI64(header[2], &declared) || declared < 0) {
    return Status::Corruption(
        StrCat("wire message: bad section count '", header[2], "'"));
  }
  if (static_cast<size_t>(declared) != frames.size() - 1) {
    return Status::Corruption(
        StrCat("wire message: header declares ", declared,
               " sections but ", frames.size() - 1,
               " follow — truncated at a frame boundary?"));
  }
  frames.erase(frames.begin());
  return frames;
}

std::string EncodeRequest(const Request& req) {
  std::string meta;
  meta += StrCat("op\t", req.op, "\n");
  meta += StrCat("tenant\t", req.tenant, "\n");
  meta += StrCat("run\t", req.run, "\n");
  meta += StrCat("workload\t", req.workload, "\n");
  meta += StrCat("engine\t", req.engine, "\n");
  meta += StrCat("workers\t", req.workers, "\n");
  meta += StrCat("loop_id\t", req.loop_id);
  return EncodeWireSections(WireKind::kRequest, {meta, req.ctx});
}

Result<Request> DecodeRequest(const std::string& message) {
  FLOR_ASSIGN_OR_RETURN(std::vector<std::string> sections,
                        DecodeWireSections(WireKind::kRequest, message));
  if (sections.size() != 2) {
    return Status::Corruption(
        StrCat("wire request: expected 2 sections, got ", sections.size()));
  }
  FLOR_ASSIGN_OR_RETURN(
      std::vector<std::string> values,
      ParseMetaValues(sections[0], {"op", "tenant", "run", "workload",
                                    "engine", "workers", "loop_id"}));
  Request req;
  req.op = values[0];
  req.tenant = values[1];
  req.run = values[2];
  req.workload = values[3];
  req.engine = values[4];
  FLOR_ASSIGN_OR_RETURN(req.workers, MetaInt(values[5], "workers"));
  FLOR_ASSIGN_OR_RETURN(const int64_t loop, MetaInt(values[6], "loop_id"));
  if (loop < INT32_MIN || loop > INT32_MAX) {
    return Status::Corruption(
        StrCat("wire request: loop_id out of range: ", loop));
  }
  req.loop_id = static_cast<int32_t>(loop);
  req.ctx = std::move(sections[1]);
  return req;
}

std::string EncodeResponse(const Response& res) {
  std::vector<std::string> sections;
  sections.reserve(res.payload.size() + 2);
  sections.push_back(StrCat("code\t", res.code));
  sections.push_back(res.message);
  for (const std::string& p : res.payload) sections.push_back(p);
  return EncodeWireSections(WireKind::kResponse, sections);
}

Result<Response> DecodeResponse(const std::string& message) {
  FLOR_ASSIGN_OR_RETURN(std::vector<std::string> sections,
                        DecodeWireSections(WireKind::kResponse, message));
  if (sections.size() < 2) {
    return Status::Corruption(
        StrCat("wire response: expected >= 2 sections, got ",
               sections.size()));
  }
  FLOR_ASSIGN_OR_RETURN(std::vector<std::string> values,
                        ParseMetaValues(sections[0], {"code"}));
  Response res;
  FLOR_ASSIGN_OR_RETURN(res.code, MetaInt(values[0], "code"));
  if (!IsValidStatusCode(res.code)) {
    return Status::Corruption(
        StrCat("wire response: invalid status code ", res.code));
  }
  res.message = std::move(sections[1]);
  res.payload.assign(std::make_move_iterator(sections.begin() + 2),
                     std::make_move_iterator(sections.end()));
  return res;
}

Status Response::ToStatus() const {
  if (ok()) return Status::OK();
  return Status(static_cast<StatusCode>(code), message);
}

Response ErrorResponse(const Status& status) {
  Response res;
  res.code = static_cast<int64_t>(status.code());
  res.message = status.message();
  return res;
}

Response MakeRecordReply(const RecordReply& reply) {
  Response res;
  std::string meta;
  meta += StrCat("checkpoints\t", reply.checkpoints, "\n");
  meta += StrCat("runtime_seconds\t",
                 StrFormat("%a", reply.runtime_seconds), "\n");
  meta += StrCat("admission_wait_seconds\t",
                 StrFormat("%a", reply.admission_wait_seconds));
  res.payload = {meta, reply.manifest};
  return res;
}

Result<RecordReply> ParseRecordReply(const Response& res) {
  if (!res.ok()) return res.ToStatus();
  if (res.payload.size() != 2) {
    return Status::Corruption(
        StrCat("record reply: expected 2 payload sections, got ",
               res.payload.size()));
  }
  FLOR_ASSIGN_OR_RETURN(
      std::vector<std::string> values,
      ParseMetaValues(res.payload[0], {"checkpoints", "runtime_seconds",
                                       "admission_wait_seconds"}));
  RecordReply reply;
  FLOR_ASSIGN_OR_RETURN(reply.checkpoints,
                        MetaInt(values[0], "checkpoints"));
  FLOR_ASSIGN_OR_RETURN(reply.runtime_seconds,
                        MetaDouble(values[1], "runtime_seconds"));
  FLOR_ASSIGN_OR_RETURN(reply.admission_wait_seconds,
                        MetaDouble(values[2], "admission_wait_seconds"));
  reply.manifest = res.payload[1];
  return reply;
}

Response MakeReplayReply(const ReplayReply& reply) {
  Response res;
  std::string meta;
  meta += StrCat("workers_used\t", reply.workers_used, "\n");
  meta += StrCat("latency_seconds\t",
                 StrFormat("%a", reply.latency_seconds), "\n");
  meta += StrCat("wall_seconds\t", StrFormat("%a", reply.wall_seconds),
                 "\n");
  meta += StrCat("bucket_faults\t", reply.bucket_faults, "\n");
  meta += StrCat("bloom_skipped_probes\t", reply.bloom_skipped_probes,
                 "\n");
  meta += StrCat("deferred_ok\t", reply.deferred_ok ? 1 : 0);
  res.payload = {meta, reply.merged_logs};
  return res;
}

Result<ReplayReply> ParseReplayReply(const Response& res) {
  if (!res.ok()) return res.ToStatus();
  if (res.payload.size() != 2) {
    return Status::Corruption(
        StrCat("replay reply: expected 2 payload sections, got ",
               res.payload.size()));
  }
  FLOR_ASSIGN_OR_RETURN(
      std::vector<std::string> values,
      ParseMetaValues(res.payload[0],
                      {"workers_used", "latency_seconds", "wall_seconds",
                       "bucket_faults", "bloom_skipped_probes",
                       "deferred_ok"}));
  ReplayReply reply;
  FLOR_ASSIGN_OR_RETURN(reply.workers_used,
                        MetaInt(values[0], "workers_used"));
  FLOR_ASSIGN_OR_RETURN(reply.latency_seconds,
                        MetaDouble(values[1], "latency_seconds"));
  FLOR_ASSIGN_OR_RETURN(reply.wall_seconds,
                        MetaDouble(values[2], "wall_seconds"));
  FLOR_ASSIGN_OR_RETURN(reply.bucket_faults,
                        MetaInt(values[3], "bucket_faults"));
  FLOR_ASSIGN_OR_RETURN(reply.bloom_skipped_probes,
                        MetaInt(values[4], "bloom_skipped_probes"));
  FLOR_ASSIGN_OR_RETURN(const int64_t deferred,
                        MetaInt(values[5], "deferred_ok"));
  if (deferred != 0 && deferred != 1) {
    return Status::Corruption(
        StrCat("replay reply: deferred_ok must be 0/1, got ", deferred));
  }
  reply.deferred_ok = deferred == 1;
  reply.merged_logs = res.payload[1];
  return reply;
}

Response MakeQueryReply(const QueryReply& reply) {
  Response res;
  res.payload.reserve(reply.runs.size() + 1);
  res.payload.push_back(StrCat("runs\t", reply.runs.size()));
  for (const RunInfo& run : reply.runs) {
    std::string section;
    section += StrCat("prefix\t", run.prefix, "\n");
    section += StrCat("workload\t", run.workload, "\n");
    section += StrCat("record_runtime_seconds\t",
                      StrFormat("%a", run.record_runtime_seconds), "\n");
    section += StrCat("checkpoints\t", run.checkpoints);
    res.payload.push_back(std::move(section));
  }
  return res;
}

Result<QueryReply> ParseQueryReply(const Response& res) {
  if (!res.ok()) return res.ToStatus();
  if (res.payload.empty()) {
    return Status::Corruption("query reply: missing count section");
  }
  FLOR_ASSIGN_OR_RETURN(std::vector<std::string> head,
                        ParseMetaValues(res.payload[0], {"runs"}));
  FLOR_ASSIGN_OR_RETURN(const int64_t count, MetaInt(head[0], "runs"));
  if (count < 0 || static_cast<size_t>(count) != res.payload.size() - 1) {
    return Status::Corruption(
        StrCat("query reply: declares ", count, " runs but ",
               res.payload.size() - 1, " sections follow"));
  }
  QueryReply reply;
  reply.runs.reserve(static_cast<size_t>(count));
  for (size_t i = 1; i < res.payload.size(); ++i) {
    FLOR_ASSIGN_OR_RETURN(
        std::vector<std::string> values,
        ParseMetaValues(res.payload[i],
                        {"prefix", "workload", "record_runtime_seconds",
                         "checkpoints"}));
    RunInfo run;
    run.prefix = values[0];
    run.workload = values[1];
    FLOR_ASSIGN_OR_RETURN(
        run.record_runtime_seconds,
        MetaDouble(values[2], "record_runtime_seconds"));
    FLOR_ASSIGN_OR_RETURN(run.checkpoints,
                          MetaInt(values[3], "checkpoints"));
    reply.runs.push_back(std::move(run));
  }
  return reply;
}

Response MakeExistsReply(const ExistsReply& reply) {
  Response res;
  res.payload = {StrCat("exists\t", reply.exists ? 1 : 0)};
  return res;
}

Result<ExistsReply> ParseExistsReply(const Response& res) {
  if (!res.ok()) return res.ToStatus();
  if (res.payload.size() != 1) {
    return Status::Corruption(
        StrCat("exists reply: expected 1 payload section, got ",
               res.payload.size()));
  }
  FLOR_ASSIGN_OR_RETURN(std::vector<std::string> values,
                        ParseMetaValues(res.payload[0], {"exists"}));
  FLOR_ASSIGN_OR_RETURN(const int64_t flag, MetaInt(values[0], "exists"));
  if (flag != 0 && flag != 1) {
    return Status::Corruption(
        StrCat("exists reply: flag must be 0/1, got ", flag));
  }
  ExistsReply reply;
  reply.exists = flag == 1;
  return reply;
}

const char* EngineName(ReplayEngine engine) {
  switch (engine) {
    case ReplayEngine::kSimulated:
      return "sim";
    case ReplayEngine::kThreads:
      return "threads";
    case ReplayEngine::kProcesses:
      return "procs";
  }
  return "sim";
}

Result<ReplayEngine> ParseEngine(const std::string& name) {
  if (name == "sim") return ReplayEngine::kSimulated;
  if (name == "threads") return ReplayEngine::kThreads;
  if (name == "procs") return ReplayEngine::kProcesses;
  return Status::InvalidArgument(
      StrCat("unknown replay engine '", name,
             "' (expected sim, threads, or procs)"));
}

}  // namespace wire
}  // namespace flor
