#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/strings.h"
#include "flor/skipblock.h"

namespace flor {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int StarvedWaitBucket(double seconds) {
  constexpr double kUpperEdges[kStarvedWaitBucketCount - 1] = {
      1e-3, 1e-2, 1e-1, 1.0, 10.0};
  for (int i = 0; i < kStarvedWaitBucketCount - 1; ++i) {
    if (seconds < kUpperEdges[i]) return i;
  }
  return kStarvedWaitBucketCount - 1;
}

Status ValidateNamespaceSegment(const std::string& name, const char* what) {
  if (name.empty())
    return Status::InvalidArgument(StrCat("empty ", what, " name"));
  if (name.size() > kMaxNamespaceSegmentBytes) {
    return Status::InvalidArgument(
        StrCat(what, " name is ", name.size(), " bytes; the limit is ",
               kMaxNamespaceSegmentBytes,
               " (filesystem path components cap out at 255)"));
  }
  if (name == "." || name == "..") {
    return Status::InvalidArgument(
        StrCat(what, " name '", name, "' would escape its namespace"));
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          StrCat(what, " name '", name,
                 "' contains a character outside [A-Za-z0-9._-]"));
    }
  }
  return Status::OK();
}

Connection::Connection(Env* env, ConnectionOptions options)
    : env_(env), options_(std::move(options)) {
  if (!options_.tier.bucket_prefix.empty()) {
    spool_ = std::make_unique<SpoolQueue>(env_->fs(), options_.ckpt_shards,
                                          options_.spool);
  }
}

Result<std::unique_ptr<Connection>> Connection::Open(
    Env* env, ConnectionOptions options) {
  if (env == nullptr)
    return Status::InvalidArgument("Connection::Open: null env");
  FLOR_RETURN_IF_ERROR(
      ValidateNamespaceSegment(options.root, "connection root"));
  if (options.ckpt_shards < 1) {
    return Status::InvalidArgument(
        StrCat("ckpt_shards must be >= 1, got ", options.ckpt_shards));
  }
  if (options.max_concurrent_records < 0) {
    return Status::InvalidArgument(
        StrCat("max_concurrent_records must be >= 0, got ",
               options.max_concurrent_records));
  }
  if (options.max_records_per_tenant < 0) {
    return Status::InvalidArgument(
        StrCat("max_records_per_tenant must be >= 0, got ",
               options.max_records_per_tenant));
  }
  // The connection's bucket prefix must not collide with the namespace
  // root: bucket objects live at "<bucket>/<root>/<tenant>/...", so a
  // bucket *inside* the root would be scanned as tenant data.
  if (!options.tier.bucket_prefix.empty()) {
    FLOR_RETURN_IF_ERROR(ValidateNamespaceSegment(
        options.tier.bucket_prefix, "bucket prefix"));
    if (options.tier.bucket_prefix == options.root) {
      return Status::InvalidArgument(
          StrCat("bucket prefix '", options.tier.bucket_prefix,
                 "' collides with the connection root"));
    }
  }
  return std::unique_ptr<Connection>(
      new Connection(env, std::move(options)));
}

Connection::~Connection() { DrainBackground(); }

void Connection::DrainBackground() {
  // Spool first: a GC pass scheduled behind a still-spooling run must see
  // the bucket mirror complete before it demotes local copies.
  if (spool_) spool_->Drain();
  gc_queue_.Drain();
}

Status Connection::Close(double deadline_seconds) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!closing_) {
      closing_ = true;
      // Wake every recorder blocked on the admission gate; they observe
      // closing_ and fail with Unavailable, which releases their
      // in-flight op guard.
      for (auto& entry : gates_) entry.second.cv.notify_all();
      slot_freed_.notify_all();
    }
    const auto idle = [this] { return in_flight_ops_ == 0; };
    if (deadline_seconds > 0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(deadline_seconds));
      if (!ops_idle_.wait_until(lock, deadline, idle)) {
        return Status::Aborted(
            StrCat("close deadline expired with ", in_flight_ops_,
                   " session call(s) still in flight"));
      }
    } else {
      ops_idle_.wait(lock, idle);
    }
  }
  DrainBackground();
  return Status::OK();
}

bool Connection::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closing_;
}

Status Connection::BeginOp() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closing_)
    return Status::Unavailable("connection is closed to new work");
  ++in_flight_ops_;
  return Status::OK();
}

void Connection::EndOp() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--in_flight_ops_ == 0) ops_idle_.notify_all();
}

std::string Connection::TenantRoot(const std::string& tenant) const {
  return JoinObjectPath(options_.root, tenant);
}

Result<std::unique_ptr<Session>> Connection::OpenSession(
    const std::string& tenant) {
  FLOR_RETURN_IF_ERROR(ValidateNamespaceSegment(tenant, "tenant"));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closing_)
      return Status::Unavailable("connection is closed to new work");
    ++stats_.sessions_opened;
    ++GateLocked(tenant)->stats.sessions_opened;
  }
  return std::unique_ptr<Session>(new Session(this, tenant));
}

Connection::TenantGate* Connection::GateLocked(const std::string& tenant) {
  auto it = gates_.find(tenant);
  if (it == gates_.end()) it = gates_.try_emplace(tenant, tenant).first;
  return &it->second;
}

bool Connection::GlobalSlotFreeLocked() const {
  return options_.max_concurrent_records <= 0 ||
         active_records_ < options_.max_concurrent_records;
}

bool Connection::TenantSlotFreeLocked(const TenantGate& gate) const {
  return options_.max_records_per_tenant <= 0 ||
         gate.stats.active_records < options_.max_records_per_tenant;
}

void Connection::AdmitLocked(TenantGate* gate) {
  ++active_records_;
  stats_.max_observed_records =
      std::max(stats_.max_observed_records, active_records_);
  ++gate->stats.active_records;
  gate->stats.max_observed_records = std::max(
      gate->stats.max_observed_records, gate->stats.active_records);
}

void Connection::GrantSlotsLocked() {
  if (closing_) return;
  // Round-robin across the wait ring: each pass visits every queued
  // tenant at most once; repeat while grants are still being handed out
  // (a release can free room for several waiters at once). Tenants at
  // their per-tenant quota rotate to the back instead of head-blocking
  // everyone behind them.
  bool progress = true;
  while (progress) {
    progress = false;
    size_t rounds = wait_ring_.size();
    while (rounds-- > 0 && !wait_ring_.empty() && GlobalSlotFreeLocked()) {
      TenantGate* gate = wait_ring_.front();
      wait_ring_.pop_front();
      if (gate->waiting - gate->tokens <= 0) {
        gate->in_ring = false;  // stale entry: all waiters already granted
        continue;
      }
      if (!TenantSlotFreeLocked(*gate)) {
        wait_ring_.push_back(gate);
        continue;
      }
      // Direct handoff: account the slot on behalf of the waiter and
      // post a token it consumes without re-checking capacity, so an
      // arrival racing the wakeup cannot steal the freed slot.
      AdmitLocked(gate);
      ++gate->tokens;
      gate->cv.notify_one();
      progress = true;
      if (gate->waiting - gate->tokens > 0) {
        wait_ring_.push_back(gate);
      } else {
        gate->in_ring = false;
      }
    }
  }
}

Status Connection::AcquireRecordSlot(const std::string& tenant,
                                     double* waited_seconds) {
  *waited_seconds = 0;
  std::unique_lock<std::mutex> lock(mu_);
  if (closing_)
    return Status::Unavailable("connection is closed to new work");
  TenantGate* gate = GateLocked(tenant);

  if (!options_.fair_admission) {
    // Legacy global FIFO cv-gate, kept for before/after measurement of
    // the fairness fix: wakeup order is whatever the cv delivers, and a
    // burst tenant's backlog can starve everyone else. No per-tenant
    // quota is enforced here.
    bool waited = false;
    const auto start = std::chrono::steady_clock::now();
    while (!closing_ && options_.max_concurrent_records > 0 &&
           active_records_ >= options_.max_concurrent_records) {
      waited = true;
      slot_freed_.wait(lock);
    }
    if (closing_) {
      return Status::Unavailable(
          "connection closed while waiting for admission");
    }
    AdmitLocked(gate);
    if (waited) {
      const double secs = SecondsSince(start);
      *waited_seconds = secs;
      ++stats_.admission_waits;
      ++gate->stats.admission_waits;
      gate->stats.admission_wait_seconds += secs;
      gate->stats.max_admission_wait_seconds =
          std::max(gate->stats.max_admission_wait_seconds, secs);
      ++gate->stats.starved_wait_hist[static_cast<size_t>(
          StarvedWaitBucket(secs))];
    }
    return Status::OK();
  }

  // Fair gate fast path: only when nobody is queued — arrivals may not
  // barge past the wait ring.
  if (wait_ring_.empty() && GlobalSlotFreeLocked() &&
      TenantSlotFreeLocked(*gate)) {
    AdmitLocked(gate);
    return Status::OK();
  }

  ++gate->waiting;
  if (!gate->in_ring) {
    gate->in_ring = true;
    wait_ring_.push_back(gate);
  }
  const auto start = std::chrono::steady_clock::now();
  // Capacity may be free right now (e.g. every queued tenant is at its
  // quota but this one is not): run a grant pass with ourselves queued.
  GrantSlotsLocked();
  while (gate->tokens == 0 && !closing_) gate->cv.wait(lock);
  --gate->waiting;
  if (gate->tokens == 0) {
    // Connection closed before a slot was granted. Drop our ring entry
    // if we were this tenant's last ungranted waiter.
    if (gate->in_ring && gate->waiting - gate->tokens <= 0) {
      auto it = std::find(wait_ring_.begin(), wait_ring_.end(), gate);
      if (it != wait_ring_.end()) wait_ring_.erase(it);
      gate->in_ring = false;
    }
    return Status::Unavailable(
        "connection closed while waiting for admission");
  }
  --gate->tokens;
  const double secs = SecondsSince(start);
  *waited_seconds = secs;
  ++stats_.admission_waits;
  ++gate->stats.admission_waits;
  gate->stats.admission_wait_seconds += secs;
  gate->stats.max_admission_wait_seconds =
      std::max(gate->stats.max_admission_wait_seconds, secs);
  ++gate->stats.starved_wait_hist[static_cast<size_t>(
      StarvedWaitBucket(secs))];
  return Status::OK();
}

void Connection::ReleaseRecordSlot(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantGate* gate = GateLocked(tenant);
  --active_records_;
  --gate->stats.active_records;
  if (options_.fair_admission) {
    GrantSlotsLocked();
  } else {
    slot_freed_.notify_one();
  }
}

bool Connection::AnyRecordActive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_records_ > 0;
}

void Connection::ScheduleRetirement(const std::string& tenant,
                                    const std::string& run,
                                    const std::string& manifest_path,
                                    const std::string& ckpt_prefix) {
  if (options_.gc.keep_last_k <= 0) return;
  gc_queue_.Submit([this, tenant, run, manifest_path, ckpt_prefix] {
    auto report = RetireRun(env_->fs(), manifest_path, ckpt_prefix,
                            options_.gc, options_.tier.bucket_prefix);
    // A pass that decodes but leaves failed deletes behind is a failure
    // too: the local orphans it leaks are invisible otherwise.
    std::string error;
    if (!report.ok()) {
      error = report.status().ToString();
    } else if (report->failed_deletes() > 0) {
      error = StrCat(report->failed_deletes(),
                     " checkpoint delete(s) failed; local orphans remain "
                     "under ",
                     ckpt_prefix);
    }
    std::lock_guard<std::mutex> lock(mu_);
    TenantGate* gate = GateLocked(tenant);
    if (error.empty()) {
      ++stats_.gc_passes;
      ++gate->stats.gc_passes;
    } else {
      ++stats_.gc_failures;
      ++gate->stats.gc_failures;
      stats_.last_gc_error =
          StrCat("tenant ", tenant, " run ", run, ": ", error);
      if (stats_.recent_gc_errors.size() >= kGcErrorRingCapacity) {
        stats_.recent_gc_errors.erase(stats_.recent_gc_errors.begin());
      }
      stats_.recent_gc_errors.push_back(GcFailure{tenant, run, error});
    }
  });
}

void Connection::BumpQuery(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.queries_served;
  ++GateLocked(tenant)->stats.queries_served;
}

void Connection::BumpReplay(const std::string& tenant, int64_t bucket_faults,
                            int64_t bloom_skipped_probes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.replays_completed;
  TenantGate* gate = GateLocked(tenant);
  ++gate->stats.replays_completed;
  gate->stats.bucket_faults += bucket_faults;
  gate->stats.bloom_skipped_probes += bloom_skipped_probes;
}

void Connection::BumpRecord(const std::string& tenant, int64_t spool_objects,
                            int64_t spool_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.records_completed;
  TenantGate* gate = GateLocked(tenant);
  ++gate->stats.records_completed;
  gate->stats.spool_objects += spool_objects;
  gate->stats.spool_bytes += spool_bytes;
}

void Connection::AccountTier(const std::string& tenant,
                             const TierStats& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantGate* gate = GateLocked(tenant);
  gate->stats.bucket_faults += delta.bucket_faults;
  gate->stats.bloom_skipped_probes += delta.bloom_skipped_probes;
}

Result<GcReport> Connection::RetireBucket(const std::string& tenant,
                                          const std::string& run,
                                          const BucketGcPolicy& policy) {
  FLOR_RETURN_IF_ERROR(ValidateNamespaceSegment(tenant, "tenant"));
  FLOR_RETURN_IF_ERROR(ValidateNamespaceSegment(run, "run"));
  if (options_.tier.bucket_prefix.empty())
    return Status::FailedPrecondition("connection has no bucket tier");
  FLOR_RETURN_IF_ERROR(BeginOp());
  OpScope op(this);
  if (AnyRecordActive()) {
    return Status::FailedPrecondition(
        "bucket retirement is between-sessions maintenance; a record "
        "session is executing");
  }
  const RunPaths paths(JoinObjectPath(TenantRoot(tenant), run));
  return RetireBucketRun(env_->fs(), paths.Manifest(), paths.CkptPrefix(),
                         options_.tier.bucket_prefix, policy);
}

Result<ReconcileReport> Connection::Reconcile(const std::string& tenant,
                                              const std::string& run) {
  FLOR_RETURN_IF_ERROR(ValidateNamespaceSegment(tenant, "tenant"));
  FLOR_RETURN_IF_ERROR(ValidateNamespaceSegment(run, "run"));
  FLOR_RETURN_IF_ERROR(BeginOp());
  OpScope op(this);
  if (AnyRecordActive()) {
    return Status::FailedPrecondition(
        "orphan reconciliation is between-sessions maintenance; a record "
        "session is executing");
  }
  const RunPaths paths(JoinObjectPath(TenantRoot(tenant), run));
  return ReconcileRun(env_->fs(), paths.Manifest(), paths.CkptPrefix(),
                      options_.tier.bucket_prefix);
}

ConnectionStats Connection::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ConnectionStats snapshot = stats_;
  snapshot.active_records = active_records_;
  for (const auto& entry : gates_) {
    snapshot.tenants[entry.first] = entry.second.stats;
  }
  return snapshot;
}

}  // namespace flor
