#include "service/service.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "flor/skipblock.h"

namespace flor {

Status ValidateNamespaceSegment(const std::string& name, const char* what) {
  if (name.empty())
    return Status::InvalidArgument(StrCat("empty ", what, " name"));
  if (name == "." || name == "..") {
    return Status::InvalidArgument(
        StrCat(what, " name '", name, "' would escape its namespace"));
  }
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) {
      return Status::InvalidArgument(
          StrCat(what, " name '", name,
                 "' contains a character outside [A-Za-z0-9._-]"));
    }
  }
  return Status::OK();
}

Connection::Connection(Env* env, ConnectionOptions options)
    : env_(env), options_(std::move(options)) {
  if (!options_.tier.bucket_prefix.empty()) {
    spool_ = std::make_unique<SpoolQueue>(env_->fs(), options_.ckpt_shards,
                                          options_.spool);
  }
}

Result<std::unique_ptr<Connection>> Connection::Open(
    Env* env, ConnectionOptions options) {
  if (env == nullptr)
    return Status::InvalidArgument("Connection::Open: null env");
  FLOR_RETURN_IF_ERROR(
      ValidateNamespaceSegment(options.root, "connection root"));
  if (options.ckpt_shards < 1) {
    return Status::InvalidArgument(
        StrCat("ckpt_shards must be >= 1, got ", options.ckpt_shards));
  }
  if (options.max_concurrent_records < 0) {
    return Status::InvalidArgument(
        StrCat("max_concurrent_records must be >= 0, got ",
               options.max_concurrent_records));
  }
  // The connection's bucket prefix must not collide with the namespace
  // root: bucket objects live at "<bucket>/<root>/<tenant>/...", so a
  // bucket *inside* the root would be scanned as tenant data.
  if (!options.tier.bucket_prefix.empty()) {
    FLOR_RETURN_IF_ERROR(ValidateNamespaceSegment(
        options.tier.bucket_prefix, "bucket prefix"));
    if (options.tier.bucket_prefix == options.root) {
      return Status::InvalidArgument(
          StrCat("bucket prefix '", options.tier.bucket_prefix,
                 "' collides with the connection root"));
    }
  }
  return std::unique_ptr<Connection>(
      new Connection(env, std::move(options)));
}

Connection::~Connection() { DrainBackground(); }

void Connection::DrainBackground() {
  // Spool first: a GC pass scheduled behind a still-spooling run must see
  // the bucket mirror complete before it demotes local copies.
  if (spool_) spool_->Drain();
  gc_queue_.Drain();
}

std::string Connection::TenantRoot(const std::string& tenant) const {
  return JoinObjectPath(options_.root, tenant);
}

Result<std::unique_ptr<Session>> Connection::OpenSession(
    const std::string& tenant) {
  FLOR_RETURN_IF_ERROR(ValidateNamespaceSegment(tenant, "tenant"));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sessions_opened;
  }
  return std::unique_ptr<Session>(new Session(this, tenant));
}

bool Connection::AcquireRecordSlot() {
  std::unique_lock<std::mutex> lock(mu_);
  bool waited = false;
  while (options_.max_concurrent_records > 0 &&
         active_records_ >= options_.max_concurrent_records) {
    waited = true;
    slot_freed_.wait(lock);
  }
  ++active_records_;
  stats_.max_observed_records =
      std::max(stats_.max_observed_records, active_records_);
  if (waited) ++stats_.admission_waits;
  return waited;
}

void Connection::ReleaseRecordSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --active_records_;
  }
  slot_freed_.notify_one();
}

bool Connection::AnyRecordActive() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_records_ > 0;
}

void Connection::ScheduleRetirement(const std::string& manifest_path,
                                    const std::string& ckpt_prefix) {
  if (options_.gc.keep_last_k <= 0) return;
  gc_queue_.Submit([this, manifest_path, ckpt_prefix] {
    auto report = RetireRun(env_->fs(), manifest_path, ckpt_prefix,
                            options_.gc, options_.tier.bucket_prefix);
    std::lock_guard<std::mutex> lock(mu_);
    if (report.ok()) {
      ++stats_.gc_passes;
    } else {
      ++stats_.gc_failures;
      stats_.last_gc_error = report.status().ToString();
    }
  });
}

void Connection::BumpQuery() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.queries_served;
}

void Connection::BumpReplay() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.replays_completed;
}

void Connection::BumpRecord() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.records_completed;
}

Result<GcReport> Connection::RetireBucket(const std::string& tenant,
                                          const std::string& run,
                                          const BucketGcPolicy& policy) {
  FLOR_RETURN_IF_ERROR(ValidateNamespaceSegment(tenant, "tenant"));
  FLOR_RETURN_IF_ERROR(ValidateNamespaceSegment(run, "run"));
  if (options_.tier.bucket_prefix.empty())
    return Status::FailedPrecondition("connection has no bucket tier");
  if (AnyRecordActive()) {
    return Status::FailedPrecondition(
        "bucket retirement is between-sessions maintenance; a record "
        "session is executing");
  }
  const RunPaths paths(JoinObjectPath(TenantRoot(tenant), run));
  return RetireBucketRun(env_->fs(), paths.Manifest(), paths.CkptPrefix(),
                         options_.tier.bucket_prefix, policy);
}

Result<ReconcileReport> Connection::Reconcile(const std::string& tenant,
                                              const std::string& run) {
  FLOR_RETURN_IF_ERROR(ValidateNamespaceSegment(tenant, "tenant"));
  FLOR_RETURN_IF_ERROR(ValidateNamespaceSegment(run, "run"));
  if (AnyRecordActive()) {
    return Status::FailedPrecondition(
        "orphan reconciliation is between-sessions maintenance; a record "
        "session is executing");
  }
  const RunPaths paths(JoinObjectPath(TenantRoot(tenant), run));
  return ReconcileRun(env_->fs(), paths.Manifest(), paths.CkptPrefix(),
                      options_.tier.bucket_prefix);
}

ConnectionStats Connection::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ConnectionStats snapshot = stats_;
  snapshot.active_records = active_records_;
  return snapshot;
}

}  // namespace flor
