#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/strings.h"

namespace flor {

namespace {

/// EINTR-safe full read. Returns the bytes read (== n on success); a
/// short count means EOF or a socket error mid-read.
size_t ReadFull(int fd, char* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t r = ::recv(fd, buf + done, n - done, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (r == 0) break;
    done += static_cast<size_t>(r);
  }
  return done;
}

/// EINTR-safe full write. MSG_NOSIGNAL: a peer hanging up mid-response
/// must surface as EPIPE, not kill the server process.
Status WriteFull(int fd, const char* buf, size_t n) {
  size_t done = 0;
  while (done < n) {
    const ssize_t w = ::send(fd, buf + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(
          StrCat("socket write failed: ", std::strerror(errno)));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

void EncodeLen(uint32_t len, char out[4]) {
  out[0] = static_cast<char>(len & 0xff);
  out[1] = static_cast<char>((len >> 8) & 0xff);
  out[2] = static_cast<char>((len >> 16) & 0xff);
  out[3] = static_cast<char>((len >> 24) & 0xff);
}

uint32_t DecodeLen(const char in[4]) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(in);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

Status WriteMessage(int fd, const std::string& message) {
  char hdr[4];
  EncodeLen(static_cast<uint32_t>(message.size()), hdr);
  FLOR_RETURN_IF_ERROR(WriteFull(fd, hdr, sizeof hdr));
  return WriteFull(fd, message.data(), message.size());
}

/// Reads one length-prefixed message. `*clean_eof` is set when the peer
/// closed before sending any byte of the next message (a normal
/// goodbye). A declared length above `max_bytes` is Corruption (the
/// caller answers it with a typed response); a stream cut mid-message is
/// IOError (nothing can be answered — alignment is gone).
Result<std::string> ReadMessage(int fd, uint32_t max_bytes,
                                bool* clean_eof) {
  *clean_eof = false;
  char hdr[4];
  const size_t got = ReadFull(fd, hdr, sizeof hdr);
  if (got == 0) {
    *clean_eof = true;
    return Status::IOError("peer closed the connection");
  }
  if (got < sizeof hdr)
    return Status::IOError("stream cut inside a message length prefix");
  const uint32_t len = DecodeLen(hdr);
  if (len > max_bytes) {
    return Status::Corruption(
        StrCat("declared message length ", len, " exceeds the limit of ",
               max_bytes, " bytes"));
  }
  std::string message(len, '\0');
  if (ReadFull(fd, message.data(), len) < len)
    return Status::IOError("stream cut inside a message body");
  return message;
}

Status ListenUnixSocket(const std::string& path, int* fd_out) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    return Status::InvalidArgument(
        StrCat("unix socket path is ", path.size(),
               " bytes; the limit is ", sizeof addr.sun_path - 1));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(
        StrCat("socket(AF_UNIX) failed: ", std::strerror(errno)));
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Status::IOError(
        StrCat("bind ", path, " failed: ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    const Status st = Status::IOError(
        StrCat("listen ", path, " failed: ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  *fd_out = fd;
  return Status::OK();
}

Status ListenTcpSocket(int port, int* fd_out, int* port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(
        StrCat("socket(AF_INET) failed: ", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Status::IOError(
        StrCat("bind 127.0.0.1:", port, " failed: ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    const Status st =
        Status::IOError(StrCat("listen failed: ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    const Status st = Status::IOError(
        StrCat("getsockname failed: ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  *fd_out = fd;
  *port_out = static_cast<int>(ntohs(bound.sin_port));
  return Status::OK();
}

}  // namespace

Server::Server(Connection* conn, ServerOptions options)
    : conn_(conn), options_(std::move(options)) {}

Result<std::unique_ptr<Server>> Server::Start(Connection* conn,
                                              ServerOptions options) {
  if (conn == nullptr)
    return Status::InvalidArgument("Server::Start: null connection");
  const bool want_unix = !options.unix_path.empty();
  if (want_unix == options.tcp) {
    return Status::InvalidArgument(
        "Server::Start: configure exactly one of unix_path or tcp");
  }
  std::unique_ptr<Server> server(new Server(conn, std::move(options)));
  FLOR_RETURN_IF_ERROR(server->Listen());
  server->accept_thread_ =
      std::thread([raw = server.get()] { raw->AcceptLoop(); });
  return server;
}

Status Server::Listen() {
  if (!options_.unix_path.empty())
    return ListenUnixSocket(options_.unix_path, &listen_fd_);
  return ListenTcpSocket(options_.tcp_port, &listen_fd_, &tcp_port_);
}

Server::~Server() { Stop(); }

void Server::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    // Unblock every handler stuck in recv; handlers close their own fd
    // (under mu_) on the way out, so shutdown-under-lock cannot race a
    // close-and-reuse of the descriptor.
    for (int fd : client_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable()) accept_thread_.join();
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!options_.unix_path.empty())
      ::unlink(options_.unix_path.c_str());
  }
  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    handlers.swap(handlers_);
  }
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void Server::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener shut down (or hard error): stop accepting
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    ++stats_.connections_accepted;
    client_fds_.push_back(fd);
    handlers_.emplace_back([this, fd] { HandleClient(fd); });
  }
}

void Server::HandleClient(int fd) {
  for (;;) {
    bool clean_eof = false;
    auto message = ReadMessage(fd, options_.max_message_bytes, &clean_eof);
    if (!message.ok()) {
      if (!clean_eof && message.status().IsCorruption()) {
        // Oversized declared length: answer with the typed error, then
        // hang up — the remaining stream bytes cannot be trusted.
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.corrupt_messages;
        }
        WriteMessage(
            fd, wire::EncodeResponse(wire::ErrorResponse(message.status())));
      }
      break;
    }
    auto request = wire::DecodeRequest(*message);
    if (!request.ok()) {
      // Torn or mutated frames: typed Corruption response, then hang up
      // (a corrupt message poisons stream alignment; reconnect).
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.corrupt_messages;
      }
      WriteMessage(
          fd, wire::EncodeResponse(wire::ErrorResponse(request.status())));
      break;
    }
    const wire::Response response = Dispatch(*request);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.requests_served;
      if (response.code == static_cast<int64_t>(StatusCode::kUnavailable))
        ++stats_.unavailable_refusals;
    }
    if (!WriteMessage(fd, wire::EncodeResponse(response)).ok()) break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  client_fds_.erase(
      std::remove(client_fds_.begin(), client_fds_.end(), fd),
      client_fds_.end());
  ::close(fd);
}

wire::Response Server::Dispatch(const wire::Request& req) {
  // OpenSession validates the tenant name and refuses once the
  // connection is draining — the typed-Unavailable contract.
  auto session_or = conn_->OpenSession(req.tenant);
  if (!session_or.ok()) return wire::ErrorResponse(session_or.status());
  Session* session = session_or->get();

  if (req.op == "record" || req.op == "replay") {
    if (!options_.resolve_workload) {
      return wire::ErrorResponse(Status::NotSupported(
          "server has no workload resolver; record/replay are disabled"));
    }
    auto resolved = options_.resolve_workload(req.workload);
    if (!resolved.ok()) return wire::ErrorResponse(resolved.status());

    if (req.op == "record") {
      auto rec = session->Record(req.run, resolved->factory,
                                 resolved->record);
      if (!rec.ok()) return wire::ErrorResponse(rec.status());
      auto prefix = session->RunPrefix(req.run);
      if (!prefix.ok()) return wire::ErrorResponse(prefix.status());
      const RunPaths paths(*prefix);
      auto manifest = conn_->env()->fs()->ReadFile(paths.Manifest());
      if (!manifest.ok()) return wire::ErrorResponse(manifest.status());
      wire::RecordReply reply;
      reply.checkpoints =
          static_cast<int64_t>(rec->manifest.records.size());
      reply.runtime_seconds = rec->runtime_seconds;
      reply.admission_wait_seconds = rec->admission_wait_seconds;
      reply.manifest = std::move(*manifest);
      return wire::MakeRecordReply(reply);
    }

    auto engine = wire::ParseEngine(req.engine);
    if (!engine.ok()) return wire::ErrorResponse(engine.status());
    if (req.workers < 1 || req.workers > 4096) {
      return wire::ErrorResponse(Status::InvalidArgument(
          StrCat("replay workers must be in [1, 4096], got ",
                 req.workers)));
    }
    SessionReplayOptions ropts;
    ropts.engine = *engine;
    ropts.workers = static_cast<int>(req.workers);
    auto rep = session->Replay(req.run, resolved->factory, ropts);
    if (!rep.ok()) return wire::ErrorResponse(rep.status());
    wire::ReplayReply reply;
    reply.workers_used = rep->workers_used;
    reply.latency_seconds = rep->latency_seconds;
    reply.wall_seconds = rep->wall_seconds;
    reply.bucket_faults = rep->bucket_faults;
    reply.bloom_skipped_probes = rep->bloom_skipped_probes;
    reply.deferred_ok = rep->deferred.ok;
    reply.merged_logs = rep->merged_logs.Serialize();
    return wire::MakeReplayReply(reply);
  }

  if (req.op == "query") {
    auto runs = session->Query();
    if (!runs.ok()) return wire::ErrorResponse(runs.status());
    wire::QueryReply reply;
    reply.runs = std::move(*runs);
    return wire::MakeQueryReply(reply);
  }

  if (req.op == "exists") {
    CheckpointKey key;
    key.loop_id = req.loop_id;
    key.ctx = req.ctx;
    auto exists = session->Exists(req.run, key);
    if (!exists.ok()) return wire::ErrorResponse(exists.status());
    wire::ExistsReply reply;
    reply.exists = *exists;
    return wire::MakeExistsReply(reply);
  }

  return wire::ErrorResponse(Status::InvalidArgument(
      StrCat("unknown wire op '", req.op,
             "' (expected record, replay, query, or exists)")));
}

WireClient::WireClient(WireClient&& other) noexcept : fd_(other.fd_) {
  other.fd_ = -1;
}

WireClient& WireClient::operator=(WireClient&& other) noexcept {
  if (this != &other) {
    Disconnect();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

WireClient::~WireClient() { Disconnect(); }

void WireClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<WireClient> WireClient::ConnectUnix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    return Status::InvalidArgument(
        StrCat("unix socket path is ", path.size(),
               " bytes; the limit is ", sizeof addr.sun_path - 1));
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(
        StrCat("socket(AF_UNIX) failed: ", std::strerror(errno)));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Status::IOError(
        StrCat("connect ", path, " failed: ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  return WireClient(fd);
}

Result<WireClient> WireClient::ConnectTcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(
        StrCat("socket(AF_INET) failed: ", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st = Status::IOError(StrCat(
        "connect 127.0.0.1:", port, " failed: ", std::strerror(errno)));
    ::close(fd);
    return st;
  }
  return WireClient(fd);
}

Status WireClient::SendBytes(const std::string& message) {
  if (fd_ < 0) return Status::FailedPrecondition("client is disconnected");
  return WriteMessage(fd_, message);
}

Status WireClient::SendRawPrefix(uint32_t declared,
                                 const std::string& body) {
  if (fd_ < 0) return Status::FailedPrecondition("client is disconnected");
  char hdr[4];
  EncodeLen(declared, hdr);
  FLOR_RETURN_IF_ERROR(WriteFull(fd_, hdr, sizeof hdr));
  return WriteFull(fd_, body.data(), body.size());
}

Result<wire::Response> WireClient::ReadResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("client is disconnected");
  bool clean_eof = false;
  auto message =
      ReadMessage(fd_, wire::kMaxWireMessageBytes, &clean_eof);
  if (!message.ok()) {
    if (clean_eof)
      return Status::IOError("server closed the connection");
    return message.status();
  }
  return wire::DecodeResponse(*message);
}

Result<wire::Response> WireClient::Call(const wire::Request& req) {
  FLOR_RETURN_IF_ERROR(SendBytes(wire::EncodeRequest(req)));
  return ReadResponse();
}

}  // namespace flor
