// flor::Server — the socket front door of the Connection/Session service.
//
// Speaks the CRC-framed wire protocol (service/wire.h) over a unix-domain
// or loopback-TCP stream socket; each message travels as
// [u32 LE total length][message bytes]. One accept thread hands every
// client connection to its own handler thread; handlers dispatch
// requests 1:1 onto Session calls against the shared Connection, which
// is fully thread-safe (per-tenant fair admission included).
//
// Failure semantics, in line with the rest of the storage stack:
//   * a message that fails to decode (torn, mutated, wrong kind) earns a
//     typed Corruption *response* and then the connection is closed —
//     after a corrupt message the byte stream can no longer be trusted
//     to be aligned, so the client must reconnect;
//   * a well-formed but semantically invalid request (unknown op or
//     engine, invalid tenant name, unresolvable workload spec) earns a
//     typed error response and the connection stays usable;
//   * once Connection::Close has been called, every request is refused
//     with a typed Unavailable response (counted in ServerStats) — the
//     graceful-drain contract;
//   * a server never crashes on client bytes: every decode failure is a
//     Status, never undefined behavior (fuzzed in tests/server_test.cc).

#ifndef FLOR_SERVICE_SERVER_H_
#define FLOR_SERVICE_SERVER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "flor/skipblock.h"
#include "service/service.h"
#include "service/wire.h"

namespace flor {

/// What a workload spec string resolves to: the program factory plus the
/// record-op knobs for that workload. The server cannot invent programs —
/// the embedding process decides which specs exist, exactly like the
/// replay engines take a factory from their caller.
struct ResolvedWorkload {
  ProgramFactory factory;
  SessionRecordOptions record;
};

/// Maps a request's workload spec to a runnable workload; NotFound (or
/// any error) turns into a typed error response for that request.
using WorkloadResolver =
    std::function<Result<ResolvedWorkload>(const std::string& spec)>;

struct ServerOptions {
  /// Listen on this AF_UNIX socket path (must not already exist)...
  std::string unix_path;
  /// ...or on loopback TCP. Exactly one of the two must be selected.
  bool tcp = false;
  /// TCP port; 0 picks an ephemeral port (read it back via tcp_port()).
  int tcp_port = 0;
  /// Upper bound on one message's declared length; a larger length is
  /// answered with a typed Corruption response and a hangup.
  uint32_t max_message_bytes = wire::kMaxWireMessageBytes;
  /// Null disables record/replay (typed NotSupported); query/exists
  /// always work.
  WorkloadResolver resolve_workload;
};

struct ServerStats {
  int64_t connections_accepted = 0;
  /// Well-formed requests dispatched (including ones answered with a
  /// typed semantic error).
  int64_t requests_served = 0;
  /// Messages that failed to decode (or declared an oversized length).
  int64_t corrupt_messages = 0;
  /// Requests refused with Unavailable because the connection is
  /// draining/closed.
  int64_t unavailable_refusals = 0;
};

/// The listening server. Start() binds and spawns the accept thread;
/// Stop() (idempotent, also run by the destructor) shuts the listener
/// and every client socket down and joins all threads. Does not own the
/// Connection — closing the connection first is the graceful-drain
/// sequence: in-flight requests finish, new ones get Unavailable.
class Server {
 public:
  static Result<std::unique_ptr<Server>> Start(Connection* conn,
                                               ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void Stop();

  /// Bound TCP port (ephemeral resolved), 0 on unix sockets.
  int tcp_port() const { return tcp_port_; }
  const std::string& unix_path() const { return options_.unix_path; }
  ServerStats stats() const;

 private:
  Server(Connection* conn, ServerOptions options);

  Status Listen();
  void AcceptLoop();
  void HandleClient(int fd);
  wire::Response Dispatch(const wire::Request& req);

  Connection* conn_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int tcp_port_ = 0;
  std::thread accept_thread_;

  mutable std::mutex mu_;
  bool stopping_ = false;
  std::vector<int> client_fds_;
  std::vector<std::thread> handlers_;
  ServerStats stats_;
};

/// A minimal synchronous client for the wire protocol — what the tests
/// and examples drive the server with. Not thread-safe; one per thread.
class WireClient {
 public:
  static Result<WireClient> ConnectUnix(const std::string& path);
  static Result<WireClient> ConnectTcp(int port);

  WireClient(WireClient&& other) noexcept;
  WireClient& operator=(WireClient&& other) noexcept;
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;
  ~WireClient();

  /// One request/response exchange.
  Result<wire::Response> Call(const wire::Request& req);

  /// Sends pre-encoded message bytes (length prefix added here) without
  /// any validation — the fuzzing hook for torn/mutated frames.
  Status SendBytes(const std::string& message);
  /// Sends a raw length prefix claiming `declared` bytes followed by
  /// `body` (possibly shorter) — the truncated-stream fuzzing hook.
  Status SendRawPrefix(uint32_t declared, const std::string& body);
  Result<wire::Response> ReadResponse();

  void Disconnect();

 private:
  explicit WireClient(int fd) : fd_(fd) {}

  int fd_ = -1;
};

}  // namespace flor

#endif  // FLOR_SERVICE_SERVER_H_
