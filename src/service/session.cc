#include "service/service.h"

#include <utility>

#include "common/strings.h"
#include "exec/process_executor.h"
#include "exec/replay_executor.h"
#include "flor/skipblock.h"
#include "sim/parallel_replay.h"

namespace flor {

namespace {

/// A record/replay run on a connection whose env clock is simulated gets
/// its own fresh SimClock — every run starts at t=0 regardless of what
/// other sessions did, which is exactly the per-worker-env discipline
/// sim::ClusterReplay uses, and what keeps service-path results
/// byte-identical to the one-shot entry points. Wall-clock connections
/// keep the shared clock (wall clocks are stateless).
struct RunEnv {
  explicit RunEnv(Env* conn_env) {
    if (conn_env->clock()->is_simulated()) {
      owned = std::make_unique<Env>(std::make_unique<SimClock>(),
                                    conn_env->fs());
      env = owned.get();
    } else {
      env = conn_env;
    }
  }
  std::unique_ptr<Env> owned;
  Env* env = nullptr;
};

}  // namespace

Session::Session(Connection* conn, std::string tenant)
    : conn_(conn), tenant_(std::move(tenant)) {}

Result<std::string> Session::RunPrefix(const std::string& run) const {
  FLOR_RETURN_IF_ERROR(ValidateNamespaceSegment(run, "run"));
  return JoinObjectPath(conn_->TenantRoot(tenant_), run);
}

Result<SessionRecordResult> Session::Record(
    const std::string& run, const ProgramFactory& factory,
    const SessionRecordOptions& options) {
  FLOR_ASSIGN_OR_RETURN(const std::string prefix, RunPrefix(run));
  FLOR_RETURN_IF_ERROR(conn_->BeginOp());
  Connection::OpScope op(conn_);
  const ConnectionOptions& copts = conn_->options();

  RecordOptions ropts;
  ropts.run_prefix = prefix;
  ropts.workload = options.workload;
  ropts.ckpt_shards = copts.ckpt_shards;
  ropts.materializer = options.materializer;
  ropts.adaptive = options.adaptive;
  ropts.nominal_checkpoint_bytes = options.nominal_checkpoint_bytes;
  ropts.vanilla_runtime_seconds = options.vanilla_runtime_seconds;
  // The connection owns the spool mirror and retirement: sessions spool
  // through the shared queue and never run GC inline — the background
  // worker retires after the run's artifacts are durable.
  ropts.spool_prefix = copts.tier.bucket_prefix;
  ropts.shared_spool = conn_->shared_spool();
  ropts.gc = GcPolicy();

  double admission_wait_seconds = 0;
  FLOR_RETURN_IF_ERROR(
      conn_->AcquireRecordSlot(tenant_, &admission_wait_seconds));
  Result<RecordResult> result = [&]() -> Result<RecordResult> {
    RunEnv run_env(conn_->env());
    FLOR_ASSIGN_OR_RETURN(ProgramInstance instance, factory());
    RecordSession session(run_env.env, std::move(ropts));
    exec::Frame frame;
    return session.Run(instance.program.get(), &frame);
  }();
  conn_->ReleaseRecordSlot(tenant_);
  if (!result.ok()) return result.status();

  conn_->BumpRecord(tenant_,
                    static_cast<int64_t>(result->spool_report.objects),
                    static_cast<int64_t>(result->spool_report.bytes));
  const RunPaths paths(prefix);
  conn_->ScheduleRetirement(tenant_, run, paths.Manifest(),
                            paths.CkptPrefix());
  SessionRecordResult out;
  static_cast<RecordResult&>(out) = std::move(*result);
  out.admission_wait_seconds = admission_wait_seconds;
  return out;
}

Result<SessionReplayResult> Session::Replay(
    const std::string& run, const ProgramFactory& factory,
    const SessionReplayOptions& options) {
  FLOR_ASSIGN_OR_RETURN(const std::string prefix, RunPrefix(run));
  if (options.workers < 1) {
    return Status::InvalidArgument(
        StrCat("replay workers must be >= 1, got ", options.workers));
  }
  FLOR_RETURN_IF_ERROR(conn_->BeginOp());
  Connection::OpScope op(conn_);
  const TierOptions& tier = conn_->options().tier;

  SessionReplayResult out;
  out.engine = options.engine;
  switch (options.engine) {
    case ReplayEngine::kSimulated: {
      if (options.instance.gpus < 1 ||
          options.workers % options.instance.gpus != 0) {
        return Status::InvalidArgument(
            StrCat("simulated replay: workers (", options.workers,
                   ") must be a positive multiple of instance gpus (",
                   options.instance.gpus, ")"));
      }
      sim::ClusterReplayOptions eopts;
      static_cast<TierOptions&>(eopts) = tier;
      eopts.run_prefix = prefix;
      eopts.cluster.instance = options.instance;
      eopts.cluster.num_machines = options.workers / options.instance.gpus;
      eopts.init_mode = options.init_mode;
      eopts.costs = options.costs;
      eopts.sample_epochs = options.sample_epochs;
      FLOR_ASSIGN_OR_RETURN(
          sim::ClusterReplayResult r,
          sim::ClusterReplay(factory, conn_->env()->fs(), eopts));
      out.total_cost_dollars = r.total_cost_dollars;
      static_cast<MergedClusterReplay&>(out) = std::move(r);
      break;
    }
    case ReplayEngine::kThreads: {
      exec::ReplayExecutorOptions eopts;
      static_cast<TierOptions&>(eopts) = tier;
      eopts.run_prefix = prefix;
      eopts.num_partitions = options.workers;
      eopts.num_threads =
          options.num_threads > 0 ? options.num_threads : options.workers;
      eopts.init_mode = options.init_mode;
      eopts.costs = options.costs;
      eopts.sample_epochs = options.sample_epochs;
      exec::ReplayExecutor executor(conn_->env()->fs(), std::move(eopts));
      FLOR_ASSIGN_OR_RETURN(exec::ReplayExecutorResult r,
                            executor.Run(factory));
      out.wall_seconds = r.wall_seconds;
      static_cast<MergedClusterReplay&>(out) = std::move(r);
      break;
    }
    case ReplayEngine::kProcesses: {
      exec::ProcessReplayExecutorOptions eopts;
      static_cast<TierOptions&>(eopts) = tier;
      eopts.run_prefix = prefix;
      eopts.num_partitions = options.workers;
      eopts.init_mode = options.init_mode;
      eopts.costs = options.costs;
      eopts.sample_epochs = options.sample_epochs;
      eopts.scratch_dir = options.scratch_dir;
      exec::ProcessReplayExecutor executor(conn_->env()->fs(),
                                           std::move(eopts));
      FLOR_ASSIGN_OR_RETURN(exec::ProcessReplayExecutorResult r,
                            executor.Run(factory));
      out.wall_seconds = r.wall_seconds;
      static_cast<MergedClusterReplay&>(out) = std::move(r);
      break;
    }
  }
  conn_->BumpReplay(tenant_, out.bucket_faults, out.bloom_skipped_probes);
  return out;
}

Result<std::vector<RunInfo>> Session::Query() const {
  FLOR_RETURN_IF_ERROR(conn_->BeginOp());
  Connection::OpScope op(conn_);
  conn_->BumpQuery(tenant_);
  return ListRuns(conn_->env()->fs(), conn_->TenantRoot(tenant_));
}

Result<std::vector<RunInfo>> Session::Query(
    const RunPredicate& predicate) const {
  FLOR_RETURN_IF_ERROR(conn_->BeginOp());
  Connection::OpScope op(conn_);
  conn_->BumpQuery(tenant_);
  return FindRuns(conn_->env()->fs(), conn_->TenantRoot(tenant_),
                  predicate);
}

Result<std::vector<double>> Session::MetricSeries(
    const std::string& run, const std::string& label) const {
  FLOR_ASSIGN_OR_RETURN(const std::string prefix, RunPrefix(run));
  FLOR_RETURN_IF_ERROR(conn_->BeginOp());
  Connection::OpScope op(conn_);
  conn_->BumpQuery(tenant_);
  return flor::MetricSeries(conn_->env()->fs(), prefix, label);
}

Result<std::unique_ptr<CheckpointStore>> Session::OpenRunStore(
    const std::string& run, Manifest* manifest_out) const {
  FLOR_ASSIGN_OR_RETURN(const std::string prefix, RunPrefix(run));
  const RunPaths paths(prefix);
  FLOR_ASSIGN_OR_RETURN(std::string manifest_bytes,
                        conn_->env()->fs()->ReadFile(paths.Manifest()));
  FLOR_ASSIGN_OR_RETURN(Manifest manifest,
                        Manifest::Deserialize(manifest_bytes));
  auto store = CheckpointStore::Open(conn_->env()->fs(), paths.CkptPrefix(),
                                     conn_->options().tier, &manifest);
  if (manifest_out != nullptr) *manifest_out = std::move(manifest);
  return store;
}

Result<bool> Session::Exists(const std::string& run,
                             const CheckpointKey& key) const {
  FLOR_RETURN_IF_ERROR(conn_->BeginOp());
  Connection::OpScope op(conn_);
  conn_->BumpQuery(tenant_);
  FLOR_ASSIGN_OR_RETURN(std::unique_ptr<CheckpointStore> store,
                        OpenRunStore(run, nullptr));
  Result<bool> exists = store->Exists(key);
  // The store is opened fresh per probe, so its tier stats are exactly
  // this call's read-tier traffic.
  conn_->AccountTier(tenant_, store->tier_stats());
  return exists;
}

}  // namespace flor
