// Optimizers — the narrow interface through which the training library
// mutates the model (paper §5.2.1, library-knowledge fact (a): "the model
// may be updated via the optimizer").
//
// Optimizers hold *references* to the parameters of a model; calling Step()
// mutates the model in place. The runtime changeset augmentation
// (analysis/augment.cc) discovers this mutation by asking the optimizer for
// its target module. Optimizer internal state (momentum / Adam moments) is
// itself part of a Loop End Checkpoint, so full serialization is provided in
// nn/serialize.h.

#ifndef FLOR_NN_OPTIMIZER_H_
#define FLOR_NN_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"

namespace flor {
namespace nn {

/// Base optimizer over a module's parameters.
class Optimizer {
 public:
  /// Does not own `model`; the model must outlive the optimizer.
  Optimizer(Module* model, float lr) : model_(model), lr_(lr) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from current gradients; skips frozen parameters.
  virtual Status Step() = 0;

  /// Identifier used in checkpoints ("sgd", "adam", "adamw").
  virtual std::string Kind() const = 0;

  /// Internal state tensors (momentum buffers etc.) in a stable order,
  /// exposed for checkpointing.
  virtual std::vector<Tensor*> StateTensors() = 0;

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  /// The module this optimizer mutates — the hook used by changeset
  /// augmentation.
  Module* model() const { return model_; }

  /// Steps taken so far.
  int64_t step_count() const { return step_count_; }
  void set_step_count(int64_t n) { step_count_ = n; }

  /// Hash over lr, step count, and all state tensors.
  uint64_t StateFingerprint();

 protected:
  Module* model_;
  float lr_;
  int64_t step_count_ = 0;
};

/// SGD with optional momentum and decoupled weight decay.
///
/// Weight decay is the regularization knob Alice disables in the paper's
/// §2.1 debugging scenario.
class Sgd : public Optimizer {
 public:
  Sgd(Module* model, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);

  Status Step() override;
  std::string Kind() const override { return "sgd"; }
  std::vector<Tensor*> StateTensors() override;

  float weight_decay() const { return weight_decay_; }
  void set_weight_decay(float wd) { weight_decay_ = wd; }

 private:
  float momentum_;
  float weight_decay_;
  std::vector<Tensor> velocity_;  // parallel to model_->Parameters()
};

/// Adam / AdamW (decoupled weight decay when `adamw` is true).
class Adam : public Optimizer {
 public:
  Adam(Module* model, float lr, float beta1 = 0.9f, float beta2 = 0.999f,
       float eps = 1e-8f, float weight_decay = 0.0f, bool adamw = false);

  Status Step() override;
  std::string Kind() const override { return adamw_ ? "adamw" : "adam"; }
  std::vector<Tensor*> StateTensors() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  bool adamw_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace nn
}  // namespace flor

#endif  // FLOR_NN_OPTIMIZER_H_
