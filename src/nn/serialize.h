// Model / optimizer / scheduler state (de)serialization.
//
// A Loop End Checkpoint stores the *changeset* of a loop, which for training
// loops is typically {optimizer, model} (paper §5.2.1 example). These
// helpers flatten that state into bytes and restore it in place — restoring
// into existing objects is exactly SkipBlock side-effect restoration.

#ifndef FLOR_NN_SERIALIZE_H_
#define FLOR_NN_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/scheduler.h"
#include "serialize/coding.h"

namespace flor {
namespace nn {

/// Encodes all parameter values (not grads) with their names.
void EncodeModuleState(std::string* dst, Module* module);

/// Restores parameter values in place. Fails if names/shapes mismatch.
Status DecodeModuleState(Decoder* dec, Module* module);

/// Encodes lr, step count, and internal state tensors.
void EncodeOptimizerState(std::string* dst, Optimizer* optimizer);

/// Restores optimizer state in place.
Status DecodeOptimizerState(Decoder* dec, Optimizer* optimizer);

/// Encodes scheduler epoch counter (its only mutable state besides the LR
/// it writes into the optimizer).
void EncodeSchedulerState(std::string* dst, LrScheduler* scheduler);

Status DecodeSchedulerState(Decoder* dec, LrScheduler* scheduler);

}  // namespace nn
}  // namespace flor

#endif  // FLOR_NN_SERIALIZE_H_
