// Learning-rate schedulers — library-knowledge fact (b) from paper §5.2.1:
// "the optimizer may be updated via the learning rate schedule". A scheduler
// holds a reference to its optimizer and mutates it via Step(); the runtime
// changeset augmentation follows that link.

#ifndef FLOR_NN_SCHEDULER_H_
#define FLOR_NN_SCHEDULER_H_

#include <string>

#include "nn/optimizer.h"

namespace flor {
namespace nn {

/// Base LR scheduler.
class LrScheduler {
 public:
  /// Does not own `optimizer`.
  explicit LrScheduler(Optimizer* optimizer)
      : optimizer_(optimizer), base_lr_(optimizer->lr()) {}
  virtual ~LrScheduler() = default;

  LrScheduler(const LrScheduler&) = delete;
  LrScheduler& operator=(const LrScheduler&) = delete;

  /// Advances one epoch and writes the new LR into the optimizer.
  virtual void Step() = 0;

  virtual std::string Kind() const = 0;

  /// The optimizer this scheduler mutates — the augmentation hook.
  Optimizer* optimizer() const { return optimizer_; }

  int64_t epoch() const { return epoch_; }
  void set_epoch(int64_t e) { epoch_ = e; }
  float base_lr() const { return base_lr_; }

  uint64_t StateFingerprint() const;

 protected:
  Optimizer* optimizer_;
  float base_lr_;
  int64_t epoch_ = 0;
};

/// Multiplies LR by `gamma` every `step_size` epochs.
class StepLr : public LrScheduler {
 public:
  StepLr(Optimizer* optimizer, int64_t step_size, float gamma);
  void Step() override;
  std::string Kind() const override { return "step"; }

 private:
  int64_t step_size_;
  float gamma_;
};

/// Cosine annealing from base LR to `min_lr` over `t_max` epochs.
class CosineLr : public LrScheduler {
 public:
  CosineLr(Optimizer* optimizer, int64_t t_max, float min_lr = 0.0f);
  void Step() override;
  std::string Kind() const override { return "cosine"; }

 private:
  int64_t t_max_;
  float min_lr_;
};

/// Cyclical LR used by stochastic weight averaging recipes — the schedule
/// in the paper's Alice scenario (§2.1) whose "higher than usual learning
/// rate bounds" inflate gradient magnitudes.
class CyclicLr : public LrScheduler {
 public:
  CyclicLr(Optimizer* optimizer, float max_lr, int64_t cycle_len);
  void Step() override;
  std::string Kind() const override { return "cyclic"; }

 private:
  float max_lr_;
  int64_t cycle_len_;
};

}  // namespace nn
}  // namespace flor

#endif  // FLOR_NN_SCHEDULER_H_
