#include "nn/serialize.h"

#include "common/strings.h"
#include "tensor/serialize.h"

namespace flor {
namespace nn {

void EncodeModuleState(std::string* dst, Module* module) {
  auto params = module->Parameters();
  PutVarint64(dst, params.size());
  for (Parameter* p : params) {
    PutLengthPrefixed(dst, p->name);
    EncodeTensor(dst, p->value);
  }
}

Status DecodeModuleState(Decoder* dec, Module* module) {
  uint64_t n;
  FLOR_RETURN_IF_ERROR(dec->GetVarint64(&n));
  auto params = module->Parameters();
  if (n != params.size()) {
    return Status::Corruption(
        StrCat("parameter count mismatch: checkpoint has ", n,
               ", module has ", params.size()));
  }
  for (Parameter* p : params) {
    std::string name;
    FLOR_RETURN_IF_ERROR(dec->GetLengthPrefixed(&name));
    if (name != p->name) {
      return Status::Corruption(
          StrCat("parameter name mismatch: checkpoint '", name,
                 "' vs module '", p->name, "'"));
    }
    FLOR_ASSIGN_OR_RETURN(Tensor t, DecodeTensor(dec));
    if (t.shape() != p->value.shape() || t.dtype() != p->value.dtype()) {
      return Status::Corruption(
          StrCat("parameter shape mismatch for '", name, "'"));
    }
    p->value = std::move(t);
  }
  return Status::OK();
}

void EncodeOptimizerState(std::string* dst, Optimizer* optimizer) {
  PutLengthPrefixed(dst, optimizer->Kind());
  PutFloat(dst, optimizer->lr());
  PutVarint64(dst, static_cast<uint64_t>(optimizer->step_count()));
  auto tensors = optimizer->StateTensors();
  PutVarint64(dst, tensors.size());
  for (Tensor* t : tensors) EncodeTensor(dst, *t);
}

Status DecodeOptimizerState(Decoder* dec, Optimizer* optimizer) {
  std::string kind;
  FLOR_RETURN_IF_ERROR(dec->GetLengthPrefixed(&kind));
  if (kind != optimizer->Kind()) {
    return Status::Corruption(StrCat("optimizer kind mismatch: '", kind,
                                     "' vs '", optimizer->Kind(), "'"));
  }
  float lr;
  FLOR_RETURN_IF_ERROR(dec->GetFloat(&lr));
  uint64_t steps;
  FLOR_RETURN_IF_ERROR(dec->GetVarint64(&steps));
  uint64_t n;
  FLOR_RETURN_IF_ERROR(dec->GetVarint64(&n));
  auto tensors = optimizer->StateTensors();
  if (n != tensors.size())
    return Status::Corruption("optimizer state tensor count mismatch");
  for (Tensor* t : tensors) {
    FLOR_ASSIGN_OR_RETURN(Tensor loaded, DecodeTensor(dec));
    if (loaded.shape() != t->shape())
      return Status::Corruption("optimizer state tensor shape mismatch");
    *t = std::move(loaded);
  }
  optimizer->set_lr(lr);
  optimizer->set_step_count(static_cast<int64_t>(steps));
  return Status::OK();
}

void EncodeSchedulerState(std::string* dst, LrScheduler* scheduler) {
  PutLengthPrefixed(dst, scheduler->Kind());
  PutVarint64(dst, static_cast<uint64_t>(scheduler->epoch()));
}

Status DecodeSchedulerState(Decoder* dec, LrScheduler* scheduler) {
  std::string kind;
  FLOR_RETURN_IF_ERROR(dec->GetLengthPrefixed(&kind));
  if (kind != scheduler->Kind())
    return Status::Corruption("scheduler kind mismatch");
  uint64_t epoch;
  FLOR_RETURN_IF_ERROR(dec->GetVarint64(&epoch));
  scheduler->set_epoch(static_cast<int64_t>(epoch));
  return Status::OK();
}

}  // namespace nn
}  // namespace flor
