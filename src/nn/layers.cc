#include "nn/layers.h"

#include <cmath>

#include "common/strings.h"
#include "tensor/ops.h"

namespace flor {
namespace nn {

// -------------------------------------------------------------- Linear ---

Linear::Linear(std::string name, int64_t in_features, int64_t out_features,
               Rng* rng)
    : Module(std::move(name)),
      in_features_(in_features),
      out_features_(out_features) {
  weight_.name = Module::name() + ".weight";
  weight_.value = Tensor(Shape{out_features, in_features});
  weight_.grad = Tensor(Shape{out_features, in_features});
  ops::KaimingInit(&weight_.value, rng, in_features);
  bias_.name = Module::name() + ".bias";
  bias_.value = Tensor(Shape{out_features});
  bias_.grad = Tensor(Shape{out_features});
}

Result<Tensor> Linear::Forward(const Tensor& input) {
  if (input.shape().rank() != 2 || input.shape().dim(1) != in_features_) {
    return Status::InvalidArgument(
        StrCat(name(), ": expected [batch, ", in_features_, "], got ",
               input.shape().ToString()));
  }
  last_input_ = input;
  FLOR_ASSIGN_OR_RETURN(Tensor wt, ops::Transpose2D(weight_.value));
  FLOR_ASSIGN_OR_RETURN(Tensor xw, ops::MatMul(input, wt));
  return ops::AddRowBias(xw, bias_.value);
}

Result<Tensor> Linear::Backward(const Tensor& grad_output) {
  // dW = g^T x, db = sum_rows(g), dx = g W.
  FLOR_ASSIGN_OR_RETURN(Tensor gt, ops::Transpose2D(grad_output));
  FLOR_ASSIGN_OR_RETURN(Tensor dw, ops::MatMul(gt, last_input_));
  FLOR_RETURN_IF_ERROR(ops::Axpy(1.0f, dw, &weight_.grad));
  const int64_t m = grad_output.shape().dim(0);
  const float* g = grad_output.f32();
  float* db = bias_.grad.f32();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < out_features_; ++j)
      db[j] += g[i * out_features_ + j];
  return ops::MatMul(grad_output, weight_.value);
}

std::vector<Parameter*> Linear::LocalParameters() {
  return {&weight_, &bias_};
}

// ---------------------------------------------------------------- ReLU ---

Result<Tensor> ReLU::Forward(const Tensor& input) {
  last_input_ = input;
  return ops::Relu(input);
}

Result<Tensor> ReLU::Backward(const Tensor& grad_output) {
  return ops::ReluBackward(last_input_, grad_output);
}

// ------------------------------------------------------------- Flatten ---

Result<Tensor> Flatten::Forward(const Tensor& input) {
  last_shape_ = input.shape();
  const int64_t n = input.shape().dim(0);
  const int64_t rest = input.numel() / n;
  Tensor out(Shape{n, rest});
  std::copy(input.f32(), input.f32() + input.numel(), out.f32());
  return out;
}

Result<Tensor> Flatten::Backward(const Tensor& grad_output) {
  Tensor out(last_shape_);
  std::copy(grad_output.f32(), grad_output.f32() + grad_output.numel(),
            out.f32());
  return out;
}

// ----------------------------------------------------------- Unflatten ---

Unflatten::Unflatten(std::string name, std::vector<int64_t> dims)
    : Module(std::move(name)), dims_(std::move(dims)) {}

Result<Tensor> Unflatten::Forward(const Tensor& input) {
  if (input.shape().rank() != 2)
    return Status::InvalidArgument(StrCat(name(), ": expects rank-2 input"));
  batch_ = input.shape().dim(0);
  int64_t prod = 1;
  for (int64_t d : dims_) prod *= d;
  if (input.shape().dim(1) != prod)
    return Status::InvalidArgument(
        StrCat(name(), ": cannot unflatten ", input.shape().ToString()));
  std::vector<int64_t> shape{batch_};
  shape.insert(shape.end(), dims_.begin(), dims_.end());
  Tensor out(Shape(std::move(shape)));
  std::copy(input.f32(), input.f32() + input.numel(), out.f32());
  return out;
}

Result<Tensor> Unflatten::Backward(const Tensor& grad_output) {
  Tensor out(Shape{batch_, grad_output.numel() / batch_});
  std::copy(grad_output.f32(), grad_output.f32() + grad_output.numel(),
            out.f32());
  return out;
}

// -------------------------------------------------------------- Conv2d ---

Conv2d::Conv2d(std::string name, int64_t in_channels, int64_t out_channels,
               int64_t kernel, int64_t pad, Rng* rng)
    : Module(std::move(name)), pad_(pad) {
  kernel_.name = Module::name() + ".kernel";
  kernel_.value = Tensor(Shape{out_channels, in_channels, kernel, kernel});
  kernel_.grad = Tensor(Shape{out_channels, in_channels, kernel, kernel});
  ops::KaimingInit(&kernel_.value, rng, in_channels * kernel * kernel);
}

Result<Tensor> Conv2d::Forward(const Tensor& input) {
  last_input_ = input;
  return ops::Conv2D(input, kernel_.value, pad_);
}

Result<Tensor> Conv2d::Backward(const Tensor& grad_output) {
  const Shape& is = last_input_.shape();
  const Shape& ks = kernel_.value.shape();
  const int64_t n = is.dim(0), c = is.dim(1), h = is.dim(2), w = is.dim(3);
  const int64_t oc = ks.dim(0), kh = ks.dim(2), kw = ks.dim(3);
  const Shape& os = grad_output.shape();
  const int64_t oh = os.dim(2), ow = os.dim(3);

  Tensor grad_input(is);
  const float* gi = grad_output.f32();
  const float* pi = last_input_.f32();
  const float* pk = kernel_.value.f32();
  float* dgi = grad_input.f32();
  float* dk = kernel_.grad.f32();

  for (int64_t b = 0; b < n; ++b) {
    for (int64_t o = 0; o < oc; ++o) {
      for (int64_t y = 0; y < oh; ++y) {
        for (int64_t x = 0; x < ow; ++x) {
          const float g = gi[((b * oc + o) * oh + y) * ow + x];
          if (g == 0.0f) continue;
          for (int64_t ch = 0; ch < c; ++ch) {
            for (int64_t ky = 0; ky < kh; ++ky) {
              const int64_t iy = y + ky - pad_;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < kw; ++kx) {
                const int64_t ix = x + kx - pad_;
                if (ix < 0 || ix >= w) continue;
                const size_t ii = ((b * c + ch) * h + iy) * w + ix;
                const size_t kk = ((o * c + ch) * kh + ky) * kw + kx;
                dk[kk] += g * pi[ii];
                dgi[ii] += g * pk[kk];
              }
            }
          }
        }
      }
    }
  }
  return grad_input;
}

std::vector<Parameter*> Conv2d::LocalParameters() { return {&kernel_}; }

// ----------------------------------------------------------- Embedding ---

Embedding::Embedding(std::string name, int64_t vocab, int64_t dim, Rng* rng)
    : Module(std::move(name)), vocab_(vocab), dim_(dim) {
  table_.name = Module::name() + ".table";
  table_.value = Tensor(Shape{vocab, dim});
  table_.grad = Tensor(Shape{vocab, dim});
  ops::RandNormal(&table_.value, rng, 0.02f);
}

Result<Tensor> Embedding::Forward(const Tensor& input) {
  if (input.dtype() != DType::kI64 || input.shape().rank() != 2)
    return Status::InvalidArgument(
        StrCat(name(), ": expected i64 [batch, seq]"));
  last_input_ = input;
  const int64_t batch = input.shape().dim(0), seq = input.shape().dim(1);
  Tensor out(Shape{batch, seq * dim_});
  float* po = out.f32();
  const float* tab = table_.value.f32();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t s = 0; s < seq; ++s) {
      int64_t tok = input.at_i64(b * seq + s);
      if (tok < 0 || tok >= vocab_)
        return Status::OutOfRange(StrCat("token id ", tok, " out of range"));
      std::copy(tab + tok * dim_, tab + (tok + 1) * dim_,
                po + b * seq * dim_ + s * dim_);
    }
  }
  return out;
}

Result<Tensor> Embedding::Backward(const Tensor& grad_output) {
  const int64_t batch = last_input_.shape().dim(0);
  const int64_t seq = last_input_.shape().dim(1);
  const float* g = grad_output.f32();
  float* dt = table_.grad.f32();
  for (int64_t b = 0; b < batch; ++b) {
    for (int64_t s = 0; s < seq; ++s) {
      const int64_t tok = last_input_.at_i64(b * seq + s);
      for (int64_t d = 0; d < dim_; ++d)
        dt[tok * dim_ + d] += g[b * seq * dim_ + s * dim_ + d];
    }
  }
  // No gradient w.r.t. integer token ids.
  return Tensor(last_input_.shape(), DType::kF32);
}

std::vector<Parameter*> Embedding::LocalParameters() { return {&table_}; }

// ----------------------------------------------------------- LayerNorm ---

LayerNorm::LayerNorm(std::string name, int64_t features)
    : Module(std::move(name)), features_(features) {
  gain_.name = Module::name() + ".gain";
  gain_.value = Tensor(Shape{features});
  gain_.grad = Tensor(Shape{features});
  ops::Fill(&gain_.value, 1.0f);
  bias_.name = Module::name() + ".bias";
  bias_.value = Tensor(Shape{features});
  bias_.grad = Tensor(Shape{features});
}

Result<Tensor> LayerNorm::Forward(const Tensor& input) {
  if (input.shape().rank() != 2 || input.shape().dim(1) != features_)
    return Status::InvalidArgument(StrCat(name(), ": bad input shape"));
  last_input_ = input;
  const int64_t m = input.shape().dim(0);
  Tensor out(input.shape());
  last_normed_ = Tensor(input.shape());
  last_invstd_.assign(static_cast<size_t>(m), 0.0f);
  const float* p = input.f32();
  float* pn = last_normed_.f32();
  float* po = out.f32();
  const float* gv = gain_.value.f32();
  const float* bv = bias_.value.f32();
  for (int64_t i = 0; i < m; ++i) {
    double mean = 0;
    for (int64_t j = 0; j < features_; ++j) mean += p[i * features_ + j];
    mean /= features_;
    double var = 0;
    for (int64_t j = 0; j < features_; ++j) {
      double d = p[i * features_ + j] - mean;
      var += d * d;
    }
    var /= features_;
    const float invstd = 1.0f / std::sqrt(static_cast<float>(var) + 1e-5f);
    last_invstd_[static_cast<size_t>(i)] = invstd;
    for (int64_t j = 0; j < features_; ++j) {
      const float nj =
          (p[i * features_ + j] - static_cast<float>(mean)) * invstd;
      pn[i * features_ + j] = nj;
      po[i * features_ + j] = nj * gv[j] + bv[j];
    }
  }
  return out;
}

Result<Tensor> LayerNorm::Backward(const Tensor& grad_output) {
  const int64_t m = grad_output.shape().dim(0);
  const int64_t f = features_;
  Tensor grad_input(grad_output.shape());
  const float* g = grad_output.f32();
  const float* pn = last_normed_.f32();
  const float* gv = gain_.value.f32();
  float* dg = gain_.grad.f32();
  float* db = bias_.grad.f32();
  float* dx = grad_input.f32();
  for (int64_t i = 0; i < m; ++i) {
    double sum_gy = 0, sum_gyn = 0;
    for (int64_t j = 0; j < f; ++j) {
      const float gy = g[i * f + j] * gv[j];
      sum_gy += gy;
      sum_gyn += gy * pn[i * f + j];
      dg[j] += g[i * f + j] * pn[i * f + j];
      db[j] += g[i * f + j];
    }
    const float invstd = last_invstd_[static_cast<size_t>(i)];
    for (int64_t j = 0; j < f; ++j) {
      const float gy = g[i * f + j] * gv[j];
      dx[i * f + j] =
          invstd * (gy - static_cast<float>(sum_gy) / f -
                    pn[i * f + j] * static_cast<float>(sum_gyn) / f);
    }
  }
  return grad_input;
}

std::vector<Parameter*> LayerNorm::LocalParameters() {
  return {&gain_, &bias_};
}

// ------------------------------------------------------------- Dropout ---

Dropout::Dropout(std::string name, float p, Rng* rng)
    : Module(std::move(name)), p_(p), rng_(rng) {}

Result<Tensor> Dropout::Forward(const Tensor& input) {
  if (!training_ || p_ <= 0.0f) {
    last_mask_ = Tensor();
    return input;
  }
  last_mask_ = Tensor(input.shape());
  Tensor out(input.shape());
  const float scale = 1.0f / (1.0f - p_);
  const float* p = input.f32();
  float* pm = last_mask_.f32();
  float* po = out.f32();
  for (int64_t i = 0; i < input.numel(); ++i) {
    const float keep = rng_->Bernoulli(p_) ? 0.0f : scale;
    pm[i] = keep;
    po[i] = p[i] * keep;
  }
  return out;
}

Result<Tensor> Dropout::Backward(const Tensor& grad_output) {
  if (last_mask_.numel() <= 1) return grad_output;
  return ops::Mul(grad_output, last_mask_);
}

// ------------------------------------------------------------ BuildMlp ---

std::unique_ptr<Sequential> BuildMlp(const std::string& name,
                                     const std::vector<int64_t>& dims,
                                     Rng* rng) {
  FLOR_CHECK_GE(dims.size(), 2u);
  auto seq = std::make_unique<Sequential>(name);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    seq->Add(std::make_unique<Linear>(StrCat(name, ".fc", i), dims[i],
                                      dims[i + 1], rng));
    if (i + 2 < dims.size())
      seq->Add(std::make_unique<ReLU>(StrCat(name, ".relu", i)));
  }
  return seq;
}

}  // namespace nn
}  // namespace flor
