// Loss functions with analytic gradients.

#ifndef FLOR_NN_LOSS_H_
#define FLOR_NN_LOSS_H_

#include "common/status.h"
#include "tensor/tensor.h"

namespace flor {
namespace nn {

/// Loss value plus the gradient w.r.t. the logits, ready for Backward().
struct LossResult {
  float loss = 0.0f;
  Tensor grad_logits;
};

/// Softmax cross-entropy over rank-2 logits [batch, classes] and i64
/// labels [batch]. Gradient is (softmax - onehot) / batch.
Result<LossResult> SoftmaxCrossEntropy(const Tensor& logits,
                                       const Tensor& labels);

/// Mean squared error against targets of the same shape.
Result<LossResult> MseLoss(const Tensor& prediction, const Tensor& target);

}  // namespace nn
}  // namespace flor

#endif  // FLOR_NN_LOSS_H_
