#include "nn/optimizer.h"

#include <cmath>
#include <cstring>

#include "tensor/ops.h"

namespace flor {
namespace nn {

uint64_t Optimizer::StateFingerprint() {
  uint64_t h = Mix64(static_cast<uint64_t>(step_count_) ^ 0x0a71);
  uint32_t lr_bits;
  static_assert(sizeof(lr_bits) == sizeof(lr_));
  std::memcpy(&lr_bits, &lr_, sizeof(lr_bits));
  h = Mix64(h ^ lr_bits);
  for (Tensor* t : StateTensors()) h = Mix64(h ^ t->Fingerprint());
  return h;
}

// ------------------------------------------------------------------ SGD ---

Sgd::Sgd(Module* model, float lr, float momentum, float weight_decay)
    : Optimizer(model, lr), momentum_(momentum), weight_decay_(weight_decay) {
  for (Parameter* p : model->Parameters())
    velocity_.push_back(Tensor(p->value.shape()));
}

Status Sgd::Step() {
  auto params = model_->Parameters();
  if (params.size() != velocity_.size())
    return Status::FailedPrecondition("model structure changed under SGD");
  for (size_t i = 0; i < params.size(); ++i) {
    Parameter* p = params[i];
    if (p->frozen) continue;
    Tensor grad = p->grad;
    if (weight_decay_ != 0.0f) {
      grad = grad.Clone();
      FLOR_RETURN_IF_ERROR(ops::Axpy(weight_decay_, p->value, &grad));
    }
    if (momentum_ != 0.0f) {
      ops::Scale(&velocity_[i], momentum_);
      FLOR_RETURN_IF_ERROR(ops::Axpy(1.0f, grad, &velocity_[i]));
      FLOR_RETURN_IF_ERROR(ops::Axpy(-lr_, velocity_[i], &p->value));
    } else {
      FLOR_RETURN_IF_ERROR(ops::Axpy(-lr_, grad, &p->value));
    }
  }
  ++step_count_;
  return Status::OK();
}

std::vector<Tensor*> Sgd::StateTensors() {
  std::vector<Tensor*> out;
  out.reserve(velocity_.size());
  for (auto& t : velocity_) out.push_back(&t);
  return out;
}

// ----------------------------------------------------------------- Adam ---

Adam::Adam(Module* model, float lr, float beta1, float beta2, float eps,
           float weight_decay, bool adamw)
    : Optimizer(model, lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay),
      adamw_(adamw) {
  for (Parameter* p : model->Parameters()) {
    m_.push_back(Tensor(p->value.shape()));
    v_.push_back(Tensor(p->value.shape()));
  }
}

Status Adam::Step() {
  auto params = model_->Parameters();
  if (params.size() != m_.size())
    return Status::FailedPrecondition("model structure changed under Adam");
  ++step_count_;
  const float t = static_cast<float>(step_count_);
  const float bc1 = 1.0f - std::pow(beta1_, t);
  const float bc2 = 1.0f - std::pow(beta2_, t);
  for (size_t i = 0; i < params.size(); ++i) {
    Parameter* p = params[i];
    if (p->frozen) continue;
    const int64_t n = p->value.numel();
    const float* g = p->grad.f32();
    float* pm = m_[i].f32();
    float* pv = v_[i].f32();
    float* w = p->value.f32();
    for (int64_t j = 0; j < n; ++j) {
      float gj = g[j];
      if (!adamw_ && weight_decay_ != 0.0f) gj += weight_decay_ * w[j];
      pm[j] = beta1_ * pm[j] + (1.0f - beta1_) * gj;
      pv[j] = beta2_ * pv[j] + (1.0f - beta2_) * gj * gj;
      const float mhat = pm[j] / bc1;
      const float vhat = pv[j] / bc2;
      float update = mhat / (std::sqrt(vhat) + eps_);
      if (adamw_ && weight_decay_ != 0.0f) update += weight_decay_ * w[j];
      w[j] -= lr_ * update;
    }
  }
  return Status::OK();
}

std::vector<Tensor*> Adam::StateTensors() {
  std::vector<Tensor*> out;
  out.reserve(m_.size() + v_.size());
  for (auto& t : m_) out.push_back(&t);
  for (auto& t : v_) out.push_back(&t);
  return out;
}

}  // namespace nn
}  // namespace flor
