#include "nn/scheduler.h"

#include <cmath>
#include <cstring>

#include "common/random.h"

namespace flor {
namespace nn {

uint64_t LrScheduler::StateFingerprint() const {
  uint64_t h = Mix64(static_cast<uint64_t>(epoch_) ^ 0x5c4ed);
  const float lr = optimizer_->lr();
  uint32_t bits;
  std::memcpy(&bits, &lr, sizeof(bits));
  return Mix64(h ^ bits);
}

StepLr::StepLr(Optimizer* optimizer, int64_t step_size, float gamma)
    : LrScheduler(optimizer), step_size_(step_size), gamma_(gamma) {}

void StepLr::Step() {
  ++epoch_;
  const auto decays = epoch_ / step_size_;
  optimizer_->set_lr(base_lr_ *
                     std::pow(gamma_, static_cast<float>(decays)));
}

CosineLr::CosineLr(Optimizer* optimizer, int64_t t_max, float min_lr)
    : LrScheduler(optimizer), t_max_(t_max), min_lr_(min_lr) {}

void CosineLr::Step() {
  ++epoch_;
  const double frac =
      static_cast<double>(epoch_ % (t_max_ + 1)) / static_cast<double>(t_max_);
  optimizer_->set_lr(
      min_lr_ + 0.5f * (base_lr_ - min_lr_) *
                    (1.0f + static_cast<float>(std::cos(M_PI * frac))));
}

CyclicLr::CyclicLr(Optimizer* optimizer, float max_lr, int64_t cycle_len)
    : LrScheduler(optimizer), max_lr_(max_lr), cycle_len_(cycle_len) {}

void CyclicLr::Step() {
  ++epoch_;
  // Triangular wave between base_lr and max_lr with period cycle_len.
  const int64_t pos = epoch_ % cycle_len_;
  const double frac = static_cast<double>(pos) / cycle_len_;
  const double tri = frac < 0.5 ? 2 * frac : 2 * (1 - frac);
  optimizer_->set_lr(base_lr_ +
                     static_cast<float>(tri) * (max_lr_ - base_lr_));
}

}  // namespace nn
}  // namespace flor
