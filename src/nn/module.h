// Neural-network module tree — the PyTorch stand-in.
//
// Flor's side-effect analysis (paper §5.2.1) leans on the fact that a
// training library mutates the user program through a narrow interface:
//   (1) assignments and encapsulated state updates from method calls,
//   (2) the optimizer mutates the model (optimizer.step()),
//   (3) the LR scheduler mutates the optimizer (scheduler.step()).
// This module tree reproduces that interface: parameters live in named
// slots, an optimizer holds a reference to the parameters it updates, and a
// scheduler holds a reference to the optimizer. The runtime changeset
// augmentation in analysis/augment.cc walks exactly these links.
//
// Gradients are computed layer-wise (explicit forward/backward), which is
// all the evaluation workloads need.

#ifndef FLOR_NN_MODULE_H_
#define FLOR_NN_MODULE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "tensor/tensor.h"

namespace flor {
namespace nn {

/// One learnable tensor with its gradient and a freeze flag (fine-tuning
/// workloads freeze most parameters; see workloads/profiles.cc).
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;
  bool frozen = false;

  uint64_t byte_size() const { return value.byte_size() + grad.byte_size(); }
};

/// Base class for layers and containers.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }

  /// Forward pass; caches whatever backward needs.
  virtual Result<Tensor> Forward(const Tensor& input) = 0;

  /// Backward pass: takes dLoss/dOutput, accumulates parameter grads,
  /// returns dLoss/dInput.
  virtual Result<Tensor> Backward(const Tensor& grad_output) = 0;

  /// Direct parameters of this module (not descendants).
  virtual std::vector<Parameter*> LocalParameters() { return {}; }

  /// Child modules.
  virtual std::vector<Module*> Children() { return {}; }

  /// All parameters in the subtree, pre-order.
  std::vector<Parameter*> Parameters();

  /// Zeroes all gradients in the subtree.
  void ZeroGrad();

  /// Sets `frozen` on every parameter whose name contains `substr`.
  /// Returns the number of parameters affected.
  int FreezeMatching(const std::string& substr, bool frozen = true);

  /// Total parameter bytes (values only; grads excluded), for checkpoint
  /// size estimation.
  uint64_t ParameterBytes();

  /// Number of scalar parameters in the subtree.
  int64_t ParameterCount();

  /// Order-sensitive content hash of all parameter values.
  uint64_t StateFingerprint();

 private:
  std::string name_;
};

/// Container applying children in order.
class Sequential : public Module {
 public:
  explicit Sequential(std::string name) : Module(std::move(name)) {}

  /// Appends a child; returns a raw observer pointer.
  Module* Add(std::unique_ptr<Module> child);

  Result<Tensor> Forward(const Tensor& input) override;
  Result<Tensor> Backward(const Tensor& grad_output) override;
  std::vector<Module*> Children() override;

 private:
  std::vector<std::unique_ptr<Module>> children_;
};

}  // namespace nn
}  // namespace flor

#endif  // FLOR_NN_MODULE_H_
