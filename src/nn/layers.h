// Concrete layers: Linear, ReLU, Conv2d, Embedding, LayerNorm, Flatten,
// Dropout. Each implements explicit forward/backward.

#ifndef FLOR_NN_LAYERS_H_
#define FLOR_NN_LAYERS_H_

#include <memory>
#include <string>

#include "nn/module.h"

namespace flor {
namespace nn {

/// Fully connected layer: y = x W^T + b. x is [batch, in].
class Linear : public Module {
 public:
  Linear(std::string name, int64_t in_features, int64_t out_features,
         Rng* rng);

  Result<Tensor> Forward(const Tensor& input) override;
  Result<Tensor> Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> LocalParameters() override;

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  Parameter weight_;  // [out, in]
  Parameter bias_;    // [out]
  Tensor last_input_;
};

/// Elementwise ReLU.
class ReLU : public Module {
 public:
  explicit ReLU(std::string name) : Module(std::move(name)) {}
  Result<Tensor> Forward(const Tensor& input) override;
  Result<Tensor> Backward(const Tensor& grad_output) override;

 private:
  Tensor last_input_;
};

/// Flattens [n, ...] to [n, prod(...)].
class Flatten : public Module {
 public:
  explicit Flatten(std::string name) : Module(std::move(name)) {}
  Result<Tensor> Forward(const Tensor& input) override;
  Result<Tensor> Backward(const Tensor& grad_output) override;

 private:
  Shape last_shape_;
};

/// Reshapes [n, prod(dims)] to [n, dims...] (e.g. flat features back to
/// NCHW for convolution).
class Unflatten : public Module {
 public:
  Unflatten(std::string name, std::vector<int64_t> dims);
  Result<Tensor> Forward(const Tensor& input) override;
  Result<Tensor> Backward(const Tensor& grad_output) override;

 private:
  std::vector<int64_t> dims_;
  int64_t batch_ = 0;
};

/// NCHW convolution, stride 1, padding `pad`. Forward uses ops::Conv2D;
/// backward computes input/kernel grads naively.
class Conv2d : public Module {
 public:
  Conv2d(std::string name, int64_t in_channels, int64_t out_channels,
         int64_t kernel, int64_t pad, Rng* rng);

  Result<Tensor> Forward(const Tensor& input) override;
  Result<Tensor> Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> LocalParameters() override;

 private:
  int64_t pad_;
  Parameter kernel_;  // [oc, ic, k, k]
  Tensor last_input_;
};

/// Token embedding lookup: i64 [batch, seq] -> f32 [batch, seq*dim]
/// (flattened so it can feed Linear layers directly).
class Embedding : public Module {
 public:
  Embedding(std::string name, int64_t vocab, int64_t dim, Rng* rng);

  Result<Tensor> Forward(const Tensor& input) override;
  Result<Tensor> Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> LocalParameters() override;

 private:
  int64_t vocab_;
  int64_t dim_;
  Parameter table_;  // [vocab, dim]
  Tensor last_input_;
};

/// Row-wise layer normalization with learned gain/bias.
class LayerNorm : public Module {
 public:
  LayerNorm(std::string name, int64_t features);

  Result<Tensor> Forward(const Tensor& input) override;
  Result<Tensor> Backward(const Tensor& grad_output) override;
  std::vector<Parameter*> LocalParameters() override;

 private:
  int64_t features_;
  Parameter gain_;
  Parameter bias_;
  Tensor last_input_;
  Tensor last_normed_;
  std::vector<float> last_invstd_;
};

/// Inverted dropout driven by a deterministic Rng (so record and replay see
/// the same masks — the reproducibility premise of the paper §7).
class Dropout : public Module {
 public:
  Dropout(std::string name, float p, Rng* rng);

  Result<Tensor> Forward(const Tensor& input) override;
  Result<Tensor> Backward(const Tensor& grad_output) override;

  void set_training(bool training) { training_ = training; }

 private:
  float p_;
  Rng* rng_;
  bool training_ = true;
  Tensor last_mask_;
};

/// Builds a small MLP classifier: Linear-ReLU stacks ending in a Linear.
std::unique_ptr<Sequential> BuildMlp(const std::string& name,
                                     const std::vector<int64_t>& dims,
                                     Rng* rng);

}  // namespace nn
}  // namespace flor

#endif  // FLOR_NN_LAYERS_H_
