#include "nn/module.h"

#include "tensor/ops.h"

namespace flor {
namespace nn {

std::vector<Parameter*> Module::Parameters() {
  std::vector<Parameter*> out;
  for (Parameter* p : LocalParameters()) out.push_back(p);
  for (Module* child : Children()) {
    auto sub = child->Parameters();
    out.insert(out.end(), sub.begin(), sub.end());
  }
  return out;
}

void Module::ZeroGrad() {
  for (Parameter* p : Parameters()) ops::Fill(&p->grad, 0.0f);
}

int Module::FreezeMatching(const std::string& substr, bool frozen) {
  int count = 0;
  for (Parameter* p : Parameters()) {
    if (p->name.find(substr) != std::string::npos) {
      p->frozen = frozen;
      ++count;
    }
  }
  return count;
}

uint64_t Module::ParameterBytes() {
  uint64_t total = 0;
  for (Parameter* p : Parameters()) total += p->value.byte_size();
  return total;
}

int64_t Module::ParameterCount() {
  int64_t total = 0;
  for (Parameter* p : Parameters()) total += p->value.numel();
  return total;
}

uint64_t Module::StateFingerprint() {
  uint64_t h = 0x10b5;
  for (Parameter* p : Parameters()) h = Mix64(h ^ p->value.Fingerprint());
  return h;
}

Module* Sequential::Add(std::unique_ptr<Module> child) {
  children_.push_back(std::move(child));
  return children_.back().get();
}

Result<Tensor> Sequential::Forward(const Tensor& input) {
  Tensor x = input;
  for (auto& child : children_) {
    FLOR_ASSIGN_OR_RETURN(x, child->Forward(x));
  }
  return x;
}

Result<Tensor> Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = children_.rbegin(); it != children_.rend(); ++it) {
    FLOR_ASSIGN_OR_RETURN(g, (*it)->Backward(g));
  }
  return g;
}

std::vector<Module*> Sequential::Children() {
  std::vector<Module*> out;
  out.reserve(children_.size());
  for (auto& c : children_) out.push_back(c.get());
  return out;
}

}  // namespace nn
}  // namespace flor
