#include "nn/loss.h"

#include <cmath>

#include "tensor/ops.h"

namespace flor {
namespace nn {

Result<LossResult> SoftmaxCrossEntropy(const Tensor& logits,
                                       const Tensor& labels) {
  if (logits.shape().rank() != 2)
    return Status::InvalidArgument("logits must be rank-2");
  if (labels.dtype() != DType::kI64)
    return Status::InvalidArgument("labels must be i64");
  const int64_t m = logits.shape().dim(0), n = logits.shape().dim(1);
  if (labels.numel() != m)
    return Status::InvalidArgument("label count mismatch");

  FLOR_ASSIGN_OR_RETURN(Tensor probs, ops::SoftmaxRows(logits));
  FLOR_ASSIGN_OR_RETURN(float loss, ops::NllLoss(probs, labels));

  LossResult out;
  out.loss = loss;
  out.grad_logits = probs.Clone();
  float* g = out.grad_logits.f32();
  const float inv_m = 1.0f / static_cast<float>(m);
  for (int64_t i = 0; i < m; ++i) {
    g[i * n + labels.at_i64(i)] -= 1.0f;
    for (int64_t j = 0; j < n; ++j) g[i * n + j] *= inv_m;
  }
  return out;
}

Result<LossResult> MseLoss(const Tensor& prediction, const Tensor& target) {
  if (prediction.shape() != target.shape())
    return Status::InvalidArgument("MSE shape mismatch");
  FLOR_ASSIGN_OR_RETURN(Tensor diff, ops::Sub(prediction, target));
  const float inv_n = 1.0f / static_cast<float>(diff.numel());
  LossResult out;
  double acc = 0;
  const float* d = diff.f32();
  for (int64_t i = 0; i < diff.numel(); ++i)
    acc += static_cast<double>(d[i]) * d[i];
  out.loss = static_cast<float>(acc * inv_n);
  out.grad_logits = ops::Scaled(diff, 2.0f * inv_n);
  return out;
}

}  // namespace nn
}  // namespace flor
