// Program structure of the training-script IR: blocks, loops, programs.
//
// A Program is the analog of the user's Python training script:
//   * a top-level block of statements (imports, data loading, model
//     construction — the "preamble"),
//   * loops, possibly nested (the main loop over epochs with a nested
//     training loop over batches is the canonical shape, paper Fig. 2).
//
// The *structure* is the source code: it is rendered to text, saved at
// record time, and diffed at replay time to find hindsight probes. The
// semantic callbacks are rebuilt per instance by a ProgramFactory (the
// analog of re-running `python train.py`).

#ifndef FLOR_IR_PROGRAM_H_
#define FLOR_IR_PROGRAM_H_

#include <memory>
#include <string>
#include <vector>

#include "ir/stmt.h"

namespace flor {
namespace ir {

class Loop;

/// One element of a block: either a statement or a nested loop.
struct Node {
  /// Exactly one of the two is set.
  std::unique_ptr<Stmt> stmt;
  std::unique_ptr<Loop> loop;

  bool is_stmt() const { return stmt != nullptr; }
  bool is_loop() const { return loop != nullptr; }
};

/// Ordered list of nodes.
struct Block {
  std::vector<Node> nodes;
};

/// How a loop's trip count is determined at runtime.
struct LoopIter {
  /// Loop variable name bound each iteration ("e", "i", ...).
  std::string var;
  /// If >= 0, a fixed trip count (range(N) with literal N).
  int64_t fixed_count = -1;
  /// Otherwise, the frame variable holding the count (e.g. "num_batches").
  std::string count_var;
};

/// Static analysis / instrumentation results attached to a loop.
/// Populated by flor::InstrumentProgram (analysis module).
struct LoopAnalysis {
  /// Whether the loop was wrapped in a SkipBlock (eligible for
  /// memoization). False when rules 0/5 fired or a nested loop refused.
  bool instrumented = false;
  /// Human-readable refusal reason when !instrumented.
  std::string refusal;
  /// Final changeset: frame variable names whose state the Loop End
  /// Checkpoint must capture (before runtime augmentation).
  std::vector<std::string> changeset;
  /// Variables filtered out as loop-scoped (for diagnostics/tests).
  std::vector<std::string> filtered;
};

/// A loop. Identified by a stable id assigned in builder order, which is the
/// identity used to match loops across program versions and to key
/// checkpoints.
class Loop {
 public:
  Loop(int32_t id, LoopIter iter) : id_(id), iter_(std::move(iter)) {}

  int32_t id() const { return id_; }
  const LoopIter& iter() const { return iter_; }
  Block& body() { return body_; }
  const Block& body() const { return body_; }

  LoopAnalysis& analysis() { return analysis_; }
  const LoopAnalysis& analysis() const { return analysis_; }

  /// "for e in range(200):" — header rendering.
  std::string RenderHeader() const;

 private:
  int32_t id_;
  LoopIter iter_;
  Block body_;
  LoopAnalysis analysis_;
};

/// A whole training script.
class Program {
 public:
  Block& top() { return top_; }
  const Block& top() const { return top_; }

  /// The main loop is the outermost loop the Flor generator partitions for
  /// hindsight parallelism (§5.4). By convention (and per the paper's
  /// observation about training scripts) it is the first top-level loop.
  Loop* MainLoop();
  const Loop* MainLoop() const;

  /// All loops in the program, preorder.
  std::vector<Loop*> AllLoops();
  std::vector<const Loop*> AllLoops() const;

  /// Loop lookup by id; nullptr if absent.
  Loop* FindLoop(int32_t id);

  /// Renders the whole program as pseudo-Python source. This is the text
  /// saved by record and diffed by replay.
  std::string RenderSource() const;

 private:
  Block top_;
};

}  // namespace ir
}  // namespace flor

#endif  // FLOR_IR_PROGRAM_H_
