#include "ir/program.h"

#include "common/strings.h"

namespace flor {
namespace ir {

namespace {

void CollectLoops(Block* block, std::vector<Loop*>* out) {
  for (auto& node : block->nodes) {
    if (node.is_loop()) {
      out->push_back(node.loop.get());
      CollectLoops(&node.loop->body(), out);
    }
  }
}

void RenderBlock(const Block& block, int indent, std::string* out) {
  const std::string pad(static_cast<size_t>(indent) * 4, ' ');
  for (const auto& node : block.nodes) {
    if (node.is_stmt()) {
      *out += pad + node.stmt->Render() + "\n";
    } else {
      *out += pad + node.loop->RenderHeader() + "\n";
      RenderBlock(node.loop->body(), indent + 1, out);
    }
  }
}

}  // namespace

std::string Loop::RenderHeader() const {
  if (iter_.fixed_count >= 0)
    return StrCat("for ", iter_.var, " in range(", iter_.fixed_count,
                  "):  # L", id_);
  return StrCat("for ", iter_.var, " in range(", iter_.count_var, "):  # L",
                id_);
}

Loop* Program::MainLoop() {
  for (auto& node : top_.nodes)
    if (node.is_loop()) return node.loop.get();
  return nullptr;
}

const Loop* Program::MainLoop() const {
  for (const auto& node : top_.nodes)
    if (node.is_loop()) return node.loop.get();
  return nullptr;
}

std::vector<Loop*> Program::AllLoops() {
  std::vector<Loop*> out;
  CollectLoops(&top_, &out);
  return out;
}

std::vector<const Loop*> Program::AllLoops() const {
  std::vector<Loop*> loops;
  CollectLoops(const_cast<Block*>(&top_), &loops);
  return {loops.begin(), loops.end()};
}

Loop* Program::FindLoop(int32_t id) {
  for (Loop* loop : AllLoops())
    if (loop->id() == id) return loop;
  return nullptr;
}

std::string Program::RenderSource() const {
  std::string out = "import flor\n";
  RenderBlock(top_, 0, &out);
  return out;
}

}  // namespace ir
}  // namespace flor
