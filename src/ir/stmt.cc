#include "ir/stmt.h"

#include "common/strings.h"

namespace flor {
namespace ir {

const char* StmtPatternName(StmtPattern p) {
  switch (p) {
    case StmtPattern::kMethodAssign:
      return "method-assign";
    case StmtPattern::kCallAssign:
      return "call-assign";
    case StmtPattern::kAssign:
      return "assign";
    case StmtPattern::kMethodCall:
      return "method-call";
    case StmtPattern::kOpaqueCall:
      return "opaque-call";
    case StmtPattern::kLog:
      return "log";
  }
  return "?";
}

std::string Stmt::Render() const {
  const std::string args = StrJoin(reads, ", ");
  const std::string tgts = StrJoin(targets, ", ");
  switch (pattern) {
    case StmtPattern::kMethodAssign:
      return StrCat(tgts, " = ", receiver, ".", callee, "(", args, ")");
    case StmtPattern::kCallAssign:
      return StrCat(tgts, " = ", callee, "(", args, ")");
    case StmtPattern::kAssign:
      return StrCat(tgts, " = ", args);
    case StmtPattern::kMethodCall:
      return StrCat(receiver, ".", callee, "(", args, ")");
    case StmtPattern::kOpaqueCall:
      return StrCat(callee, "(", args, ")");
    case StmtPattern::kLog:
      return StrCat("flor.log(\"", log_label, "\", ", args.empty() ? "..."
                                                                   : args,
                    ")");
  }
  return "?";
}

}  // namespace ir
}  // namespace flor
