// Source version diffing — probe detection (paper §3.2, Fig. 1).
//
// "On replay, Flor diffs the current version of the source code with the
//  version saved at record to determine whether block i was probed. Any
//  differences between the source codes are due to hindsight logging
//  statements added by the model developer."
//
// Record saves Program::RenderSource(); replay parses that text back into a
// line tree and aligns it against the current program. The only tolerated
// difference is *insertion of log statements*; any other edit is rejected
// (replaying modified code against old checkpoints would be unsound).

#ifndef FLOR_IR_DIFF_H_
#define FLOR_IR_DIFF_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "ir/program.h"

namespace flor {
namespace ir {

/// Result of diffing recorded source against the current program.
struct ProbeReport {
  /// Loops (ids in the current program) whose *direct body* gained one or
  /// more log statements. A probed loop cannot be skipped on replay.
  std::set<int32_t> probed_loops;

  /// Statement uids (current program) of the inserted log statements —
  /// their log output is excluded from the deferred record/replay log
  /// comparison.
  std::set<int32_t> probe_stmt_uids;

  /// True if probes were added to the top-level preamble.
  bool preamble_probed = false;

  bool any() const {
    return !probe_stmt_uids.empty();
  }
};

/// Parses recorded source text and aligns it with `current`. Returns the
/// probe report, or InvalidArgument if `current` differs from the recorded
/// version by anything other than inserted log statements.
Result<ProbeReport> DiffForProbes(const std::string& recorded_source,
                                  const Program& current);

}  // namespace ir
}  // namespace flor

#endif  // FLOR_IR_DIFF_H_
