// Runtime values of the training-script IR.
//
// A `Value` is what a frame variable holds: a scalar, a tensor, or a
// *reference* to a stateful library object (module / optimizer / scheduler /
// data loader / RNG). Reference values mirror Python semantics: assignment
// copies the reference, and library calls mutate the referent in place —
// which is exactly the behaviour Flor's side-effect analysis reasons about.
//
// `ValueSnapshot` is the deep-copied state image a Loop End Checkpoint
// stores. Taking a snapshot is a memcpy-bound operation performed on the
// main thread (the analog of fork()'s copy-on-write page copies, §5.1);
// serializing a snapshot to bytes happens later, in the background
// materializer.

#ifndef FLOR_IR_VALUE_H_
#define FLOR_IR_VALUE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "data/loader.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "nn/scheduler.h"
#include "tensor/tensor.h"

namespace flor {
namespace ir {

enum class ValueKind : uint8_t {
  kNone = 0,
  kInt = 1,
  kFloat = 2,
  kBool = 3,
  kStr = 4,
  kTensor = 5,
  kModule = 6,
  kOptimizer = 7,
  kScheduler = 8,
  kLoader = 9,
  kRng = 10,
};

const char* ValueKindName(ValueKind k);

/// A frame variable's contents. Copyable; reference kinds copy the pointer
/// (Python reference semantics), tensors share storage on copy.
class Value {
 public:
  Value() : kind_(ValueKind::kNone) {}

  static Value Int(int64_t v);
  static Value Float(double v);
  static Value Bool(bool v);
  static Value Str(std::string v);
  static Value FromTensor(Tensor t);
  static Value ModuleRef(nn::Module* m);
  static Value OptimizerRef(nn::Optimizer* o);
  static Value SchedulerRef(nn::LrScheduler* s);
  static Value LoaderRef(const data::DataLoader* l);
  static Value RngRef(Rng* r);

  ValueKind kind() const { return kind_; }
  bool is_none() const { return kind_ == ValueKind::kNone; }

  /// Typed accessors. Preconditions: matching kind.
  int64_t AsInt() const;
  double AsFloat() const;
  bool AsBool() const;
  const std::string& AsStr() const;
  const Tensor& AsTensor() const;
  Tensor& MutableTensor();
  nn::Module* AsModule() const;
  nn::Optimizer* AsOptimizer() const;
  nn::LrScheduler* AsScheduler() const;
  const data::DataLoader* AsLoader() const;
  Rng* AsRng() const;

  /// Content hash used by deferred checks and tests. For reference kinds
  /// this hashes the *referent's* state, not the pointer.
  uint64_t Fingerprint() const;

  /// Short human-readable form for logs.
  std::string ToString() const;

 private:
  ValueKind kind_;
  int64_t int_ = 0;
  double float_ = 0;
  bool bool_ = false;
  std::string str_;
  Tensor tensor_;
  nn::Module* module_ = nullptr;
  nn::Optimizer* optimizer_ = nullptr;
  nn::LrScheduler* scheduler_ = nullptr;
  const data::DataLoader* loader_ = nullptr;
  Rng* rng_ = nullptr;
};

/// Deep state image of one Value, cheap to take (memcpy-bound), restorable
/// into a live Value. Reference kinds snapshot the referent's mutable state.
struct ValueSnapshot {
  ValueKind kind = ValueKind::kNone;

  // Scalar payloads.
  int64_t int_v = 0;
  double float_v = 0;
  bool bool_v = false;
  std::string str_v;

  // Tensor payload (deep clone).
  Tensor tensor_v;

  // Module payload: named parameter values.
  std::vector<std::pair<std::string, Tensor>> params;

  // Optimizer payload.
  std::string opt_kind;
  float opt_lr = 0;
  int64_t opt_steps = 0;
  std::vector<Tensor> opt_state;

  // Scheduler payload.
  std::string sched_kind;
  int64_t sched_epoch = 0;

  // RNG payload.
  uint64_t rng_state[4] = {0, 0, 0, 0};

  /// Bytes of state captured — drives the materialization cost model.
  uint64_t ApproxBytes() const;
};

/// Deep-copies the state behind `v`. Loader references snapshot to nothing
/// (loaders are deterministic pure functions of (seed, epoch, batch); see
/// data/loader.h).
ValueSnapshot SnapshotValue(const Value& v);

/// Restores `snap` into `live`. For reference kinds, `live` must reference
/// an object of compatible structure (same parameter shapes etc.): replay
/// re-runs the program preamble, so structures always match unless the user
/// edited non-log code — which the version diff rejects up front.
Status RestoreValue(const ValueSnapshot& snap, Value* live);

}  // namespace ir
}  // namespace flor

#endif  // FLOR_IR_VALUE_H_
