#include "ir/builder.h"

#include "common/logging.h"

namespace flor {
namespace ir {

ProgramBuilder::ProgramBuilder() : program_(std::make_unique<Program>()) {}

Block* ProgramBuilder::CurrentBlock() {
  if (loop_stack_.empty()) return &program_->top();
  return &loop_stack_.back()->body();
}

Stmt* ProgramBuilder::Append(Stmt stmt) {
  stmt.uid = next_stmt_uid_++;
  Node node;
  node.stmt = std::make_unique<Stmt>(std::move(stmt));
  Stmt* raw = node.stmt.get();
  CurrentBlock()->nodes.push_back(std::move(node));
  last_stmt_ = raw;
  return raw;
}

ProgramBuilder& ProgramBuilder::Assign(std::vector<std::string> targets,
                                       std::vector<std::string> reads,
                                       StmtFn fn) {
  Stmt s;
  s.pattern = StmtPattern::kAssign;
  s.targets = std::move(targets);
  s.reads = std::move(reads);
  s.fn = std::move(fn);
  Append(std::move(s));
  return *this;
}

ProgramBuilder& ProgramBuilder::CallAssign(std::vector<std::string> targets,
                                           std::string callee,
                                           std::vector<std::string> reads,
                                           StmtFn fn) {
  Stmt s;
  s.pattern = StmtPattern::kCallAssign;
  s.targets = std::move(targets);
  s.callee = std::move(callee);
  s.reads = std::move(reads);
  s.fn = std::move(fn);
  Append(std::move(s));
  return *this;
}

ProgramBuilder& ProgramBuilder::MethodAssign(std::vector<std::string> targets,
                                             std::string receiver,
                                             std::string callee,
                                             std::vector<std::string> reads,
                                             StmtFn fn) {
  Stmt s;
  s.pattern = StmtPattern::kMethodAssign;
  s.targets = std::move(targets);
  s.receiver = std::move(receiver);
  s.callee = std::move(callee);
  s.reads = std::move(reads);
  s.fn = std::move(fn);
  Append(std::move(s));
  return *this;
}

ProgramBuilder& ProgramBuilder::MethodCall(std::string receiver,
                                           std::string callee,
                                           std::vector<std::string> reads,
                                           StmtFn fn) {
  Stmt s;
  s.pattern = StmtPattern::kMethodCall;
  s.receiver = std::move(receiver);
  s.callee = std::move(callee);
  s.reads = std::move(reads);
  s.fn = std::move(fn);
  Append(std::move(s));
  return *this;
}

ProgramBuilder& ProgramBuilder::OpaqueCall(std::string callee,
                                           std::vector<std::string> reads,
                                           StmtFn fn) {
  Stmt s;
  s.pattern = StmtPattern::kOpaqueCall;
  s.callee = std::move(callee);
  s.reads = std::move(reads);
  s.fn = std::move(fn);
  Append(std::move(s));
  return *this;
}

ProgramBuilder& ProgramBuilder::Log(std::string label, LogFn fn,
                                    std::vector<std::string> reads) {
  Stmt s;
  s.pattern = StmtPattern::kLog;
  s.log_label = std::move(label);
  s.log_fn = std::move(fn);
  s.reads = std::move(reads);
  Append(std::move(s));
  return *this;
}

ProgramBuilder& ProgramBuilder::Cost(double seconds) {
  FLOR_CHECK(last_stmt_ != nullptr) << "Cost() before any statement";
  last_stmt_->sim_cost_seconds = seconds;
  return *this;
}

ProgramBuilder& ProgramBuilder::WallCost(double seconds) {
  FLOR_CHECK(last_stmt_ != nullptr) << "WallCost() before any statement";
  last_stmt_->wall_cost_seconds = seconds;
  return *this;
}

ProgramBuilder& ProgramBuilder::BeginLoop(std::string var,
                                          int64_t fixed_count) {
  LoopIter iter;
  iter.var = std::move(var);
  iter.fixed_count = fixed_count;
  Node node;
  node.loop = std::make_unique<Loop>(next_loop_id_++, std::move(iter));
  Loop* raw = node.loop.get();
  CurrentBlock()->nodes.push_back(std::move(node));
  loop_stack_.push_back(raw);
  last_stmt_ = nullptr;
  return *this;
}

ProgramBuilder& ProgramBuilder::BeginLoopVar(std::string var,
                                             std::string count_var) {
  LoopIter iter;
  iter.var = std::move(var);
  iter.count_var = std::move(count_var);
  Node node;
  node.loop = std::make_unique<Loop>(next_loop_id_++, std::move(iter));
  Loop* raw = node.loop.get();
  CurrentBlock()->nodes.push_back(std::move(node));
  loop_stack_.push_back(raw);
  last_stmt_ = nullptr;
  return *this;
}

ProgramBuilder& ProgramBuilder::EndLoop() {
  FLOR_CHECK(!loop_stack_.empty()) << "EndLoop with no open loop";
  loop_stack_.pop_back();
  last_stmt_ = nullptr;
  return *this;
}

std::unique_ptr<Program> ProgramBuilder::Build() {
  FLOR_CHECK(loop_stack_.empty()) << "unclosed loop at Build()";
  return std::move(program_);
}

}  // namespace ir
}  // namespace flor
