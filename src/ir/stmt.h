// Statements of the training-script IR.
//
// Each statement carries two things:
//   1. A *surface pattern* — the syntactic form the paper's Table 1 rules
//      match against: targets, reads, callee, and pattern kind. This is what
//      static analysis and version diffing see; it is the analog of the
//      Python AST node.
//   2. A *semantic callback* — the effect of executing the statement on the
//      interpreter frame. This is the analog of the compiled bytecode.
//
// The analysis is deliberately blind to the callback (just like Flor cannot
// see inside C extensions); tests exploit this to model Python's dynamism by
// giving a statement a callback that mutates more than its pattern admits,
// then asserting the deferred checks catch the resulting replay anomaly.

#ifndef FLOR_IR_STMT_H_
#define FLOR_IR_STMT_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"

namespace flor {

namespace exec {
class Frame;  // exec/frame.h
}  // namespace exec

namespace ir {

/// Surface form of a statement — one row of the paper's Table 1.
enum class StmtPattern : uint8_t {
  /// Rule 1: v1..vn = obj.method(args). Changeset += {obj, v1..vn}.
  kMethodAssign = 1,
  /// Rule 2: v1..vn = func(args). Changeset += {v1..vn}.
  kCallAssign = 2,
  /// Rule 3: v1..vn = u1..um. Changeset += {v1..vn}; rule 0 refusal applies
  /// when a target is already in the changeset.
  kAssign = 3,
  /// Rule 4: obj.method(args). Changeset += {obj}.
  kMethodCall = 4,
  /// Rule 5: func(args) — side effects beyond analysis; the enclosing loop
  /// is refused.
  kOpaqueCall = 5,
  /// flor.log("label", expr) — side-effect-free probe/logging statement.
  /// Contributes nothing to the changeset; its output is captured by the
  /// log stream and is the subject of hindsight logging.
  kLog = 6,
};

const char* StmtPatternName(StmtPattern p);

/// Effect of a non-log statement on the frame.
using StmtFn = std::function<Status(exec::Frame*)>;

/// A log statement's expression: evaluates to the text to record. Must be
/// side-effect-free (the hindsight-logging contract).
using LogFn = std::function<Result<std::string>(exec::Frame*)>;

/// One statement. Value type; the Program owns its statements.
struct Stmt {
  StmtPattern pattern = StmtPattern::kOpaqueCall;

  /// Assignment targets (v1..vn). Empty for kMethodCall/kOpaqueCall/kLog.
  std::vector<std::string> targets;

  /// The receiver object for kMethodAssign/kMethodCall ("obj").
  std::string receiver;

  /// Callee name ("func"/"method") — identification only; semantics live in
  /// `fn`.
  std::string callee;

  /// Variables read (args / rhs). Used for rendering and for loop-scoped
  /// analysis of reads.
  std::vector<std::string> reads;

  /// Label for log statements (the "name" under which the value is logged).
  std::string log_label;

  /// Semantic callback (non-log statements).
  StmtFn fn;

  /// Log expression (kLog statements).
  LogFn log_fn;

  /// Simulated execution cost charged to the clock when running against a
  /// SimClock (seconds). Calibrated by workload profiles.
  double sim_cost_seconds = 0.0;

  /// Real execution cost charged (as a bounded sleep) when running against
  /// a wall clock (seconds). Models device time the host blocks on — e.g.
  /// the GPU kernel latency of a training step — so wall-clock replay
  /// benchmarks expose the paper's overlap-bound parallelism even when the
  /// miniature models compute faster than real ones. Ignored under
  /// simulated clocks. Does not affect rendering (it is not source text).
  double wall_cost_seconds = 0.0;

  /// Stable id unique within a program version; assigned by the builder.
  int32_t uid = -1;

  bool is_log() const { return pattern == StmtPattern::kLog; }

  /// Pseudo-source rendering, e.g. "preds = net.forward(batch)". Two
  /// statements with equal renderings are considered the same statement by
  /// the version diff.
  std::string Render() const;
};

}  // namespace ir
}  // namespace flor

#endif  // FLOR_IR_STMT_H_
