#include "ir/value.h"

#include <cstring>

#include "common/logging.h"
#include "common/strings.h"

namespace flor {
namespace ir {

const char* ValueKindName(ValueKind k) {
  switch (k) {
    case ValueKind::kNone:
      return "none";
    case ValueKind::kInt:
      return "int";
    case ValueKind::kFloat:
      return "float";
    case ValueKind::kBool:
      return "bool";
    case ValueKind::kStr:
      return "str";
    case ValueKind::kTensor:
      return "tensor";
    case ValueKind::kModule:
      return "module";
    case ValueKind::kOptimizer:
      return "optimizer";
    case ValueKind::kScheduler:
      return "scheduler";
    case ValueKind::kLoader:
      return "loader";
    case ValueKind::kRng:
      return "rng";
  }
  return "?";
}

Value Value::Int(int64_t v) {
  Value out;
  out.kind_ = ValueKind::kInt;
  out.int_ = v;
  return out;
}

Value Value::Float(double v) {
  Value out;
  out.kind_ = ValueKind::kFloat;
  out.float_ = v;
  return out;
}

Value Value::Bool(bool v) {
  Value out;
  out.kind_ = ValueKind::kBool;
  out.bool_ = v;
  return out;
}

Value Value::Str(std::string v) {
  Value out;
  out.kind_ = ValueKind::kStr;
  out.str_ = std::move(v);
  return out;
}

Value Value::FromTensor(Tensor t) {
  Value out;
  out.kind_ = ValueKind::kTensor;
  out.tensor_ = std::move(t);
  return out;
}

Value Value::ModuleRef(nn::Module* m) {
  Value out;
  out.kind_ = ValueKind::kModule;
  out.module_ = m;
  return out;
}

Value Value::OptimizerRef(nn::Optimizer* o) {
  Value out;
  out.kind_ = ValueKind::kOptimizer;
  out.optimizer_ = o;
  return out;
}

Value Value::SchedulerRef(nn::LrScheduler* s) {
  Value out;
  out.kind_ = ValueKind::kScheduler;
  out.scheduler_ = s;
  return out;
}

Value Value::LoaderRef(const data::DataLoader* l) {
  Value out;
  out.kind_ = ValueKind::kLoader;
  out.loader_ = l;
  return out;
}

Value Value::RngRef(Rng* r) {
  Value out;
  out.kind_ = ValueKind::kRng;
  out.rng_ = r;
  return out;
}

int64_t Value::AsInt() const {
  FLOR_CHECK(kind_ == ValueKind::kInt) << "kind=" << ValueKindName(kind_);
  return int_;
}
double Value::AsFloat() const {
  FLOR_CHECK(kind_ == ValueKind::kFloat) << "kind=" << ValueKindName(kind_);
  return float_;
}
bool Value::AsBool() const {
  FLOR_CHECK(kind_ == ValueKind::kBool);
  return bool_;
}
const std::string& Value::AsStr() const {
  FLOR_CHECK(kind_ == ValueKind::kStr);
  return str_;
}
const Tensor& Value::AsTensor() const {
  FLOR_CHECK(kind_ == ValueKind::kTensor);
  return tensor_;
}
Tensor& Value::MutableTensor() {
  FLOR_CHECK(kind_ == ValueKind::kTensor);
  return tensor_;
}
nn::Module* Value::AsModule() const {
  FLOR_CHECK(kind_ == ValueKind::kModule);
  return module_;
}
nn::Optimizer* Value::AsOptimizer() const {
  FLOR_CHECK(kind_ == ValueKind::kOptimizer);
  return optimizer_;
}
nn::LrScheduler* Value::AsScheduler() const {
  FLOR_CHECK(kind_ == ValueKind::kScheduler);
  return scheduler_;
}
const data::DataLoader* Value::AsLoader() const {
  FLOR_CHECK(kind_ == ValueKind::kLoader);
  return loader_;
}
Rng* Value::AsRng() const {
  FLOR_CHECK(kind_ == ValueKind::kRng);
  return rng_;
}

uint64_t Value::Fingerprint() const {
  const uint64_t tag = Mix64(static_cast<uint64_t>(kind_) + 0xf1);
  switch (kind_) {
    case ValueKind::kNone:
      return tag;
    case ValueKind::kInt:
      return Mix64(tag ^ static_cast<uint64_t>(int_));
    case ValueKind::kFloat: {
      uint64_t bits;
      std::memcpy(&bits, &float_, sizeof(bits));
      return Mix64(tag ^ bits);
    }
    case ValueKind::kBool:
      return Mix64(tag ^ (bool_ ? 1u : 0u));
    case ValueKind::kStr: {
      uint64_t h = tag;
      for (char c : str_) h = Mix64(h ^ static_cast<uint8_t>(c));
      return h;
    }
    case ValueKind::kTensor:
      return Mix64(tag ^ tensor_.Fingerprint());
    case ValueKind::kModule:
      return Mix64(tag ^ module_->StateFingerprint());
    case ValueKind::kOptimizer:
      return Mix64(tag ^ optimizer_->StateFingerprint());
    case ValueKind::kScheduler:
      return Mix64(tag ^ scheduler_->StateFingerprint());
    case ValueKind::kLoader:
      return tag;  // loaders are stateless (deterministic)
    case ValueKind::kRng: {
      uint64_t st[4];
      rng_->GetState(st);
      uint64_t h = tag;
      for (uint64_t w : st) h = Mix64(h ^ w);
      return h;
    }
  }
  return tag;
}

std::string Value::ToString() const {
  switch (kind_) {
    case ValueKind::kNone:
      return "None";
    case ValueKind::kInt:
      return StrCat(int_);
    case ValueKind::kFloat:
      return StrFormat("%.6g", float_);
    case ValueKind::kBool:
      return bool_ ? "True" : "False";
    case ValueKind::kStr:
      return str_;
    case ValueKind::kTensor:
      return tensor_.ToString();
    case ValueKind::kModule:
      return StrCat("<module ", module_->name(), ">");
    case ValueKind::kOptimizer:
      return StrCat("<optimizer ", optimizer_->Kind(), ">");
    case ValueKind::kScheduler:
      return StrCat("<scheduler ", scheduler_->Kind(), ">");
    case ValueKind::kLoader:
      return "<loader>";
    case ValueKind::kRng:
      return "<rng>";
  }
  return "?";
}

uint64_t ValueSnapshot::ApproxBytes() const {
  uint64_t bytes = 16;  // kind + bookkeeping
  bytes += str_v.size();
  bytes += tensor_v.byte_size();
  for (const auto& [name, t] : params) bytes += name.size() + t.byte_size();
  for (const auto& t : opt_state) bytes += t.byte_size();
  bytes += opt_kind.size() + sched_kind.size();
  return bytes;
}

ValueSnapshot SnapshotValue(const Value& v) {
  ValueSnapshot snap;
  snap.kind = v.kind();
  switch (v.kind()) {
    case ValueKind::kNone:
      break;
    case ValueKind::kInt:
      snap.int_v = v.AsInt();
      break;
    case ValueKind::kFloat:
      snap.float_v = v.AsFloat();
      break;
    case ValueKind::kBool:
      snap.bool_v = v.AsBool();
      break;
    case ValueKind::kStr:
      snap.str_v = v.AsStr();
      break;
    case ValueKind::kTensor:
      snap.tensor_v = v.AsTensor().Clone();
      break;
    case ValueKind::kModule:
      for (nn::Parameter* p : v.AsModule()->Parameters())
        snap.params.emplace_back(p->name, p->value.Clone());
      break;
    case ValueKind::kOptimizer: {
      nn::Optimizer* opt = v.AsOptimizer();
      snap.opt_kind = opt->Kind();
      snap.opt_lr = opt->lr();
      snap.opt_steps = opt->step_count();
      for (Tensor* t : opt->StateTensors())
        snap.opt_state.push_back(t->Clone());
      break;
    }
    case ValueKind::kScheduler: {
      nn::LrScheduler* sched = v.AsScheduler();
      snap.sched_kind = sched->Kind();
      snap.sched_epoch = sched->epoch();
      break;
    }
    case ValueKind::kLoader:
      break;  // stateless by construction
    case ValueKind::kRng:
      v.AsRng()->GetState(snap.rng_state);
      break;
  }
  return snap;
}

Status RestoreValue(const ValueSnapshot& snap, Value* live) {
  if (snap.kind != live->kind() &&
      !(live->is_none() &&
        (snap.kind == ValueKind::kInt || snap.kind == ValueKind::kFloat ||
         snap.kind == ValueKind::kBool || snap.kind == ValueKind::kStr ||
         snap.kind == ValueKind::kTensor))) {
    return Status::Corruption(
        StrCat("snapshot kind ", ValueKindName(snap.kind),
               " does not match live value kind ",
               ValueKindName(live->kind())));
  }
  switch (snap.kind) {
    case ValueKind::kNone:
      *live = Value();
      return Status::OK();
    case ValueKind::kInt:
      *live = Value::Int(snap.int_v);
      return Status::OK();
    case ValueKind::kFloat:
      *live = Value::Float(snap.float_v);
      return Status::OK();
    case ValueKind::kBool:
      *live = Value::Bool(snap.bool_v);
      return Status::OK();
    case ValueKind::kStr:
      *live = Value::Str(snap.str_v);
      return Status::OK();
    case ValueKind::kTensor:
      *live = Value::FromTensor(snap.tensor_v.Clone());
      return Status::OK();
    case ValueKind::kModule: {
      auto params = live->AsModule()->Parameters();
      if (params.size() != snap.params.size())
        return Status::Corruption("module parameter count mismatch");
      for (size_t i = 0; i < params.size(); ++i) {
        if (params[i]->name != snap.params[i].first)
          return Status::Corruption("module parameter name mismatch: " +
                                    params[i]->name);
        if (params[i]->value.shape() != snap.params[i].second.shape())
          return Status::Corruption("module parameter shape mismatch: " +
                                    params[i]->name);
        params[i]->value = snap.params[i].second.Clone();
      }
      return Status::OK();
    }
    case ValueKind::kOptimizer: {
      nn::Optimizer* opt = live->AsOptimizer();
      if (opt->Kind() != snap.opt_kind)
        return Status::Corruption("optimizer kind mismatch");
      auto tensors = opt->StateTensors();
      if (tensors.size() != snap.opt_state.size())
        return Status::Corruption("optimizer state count mismatch");
      for (size_t i = 0; i < tensors.size(); ++i) {
        if (tensors[i]->shape() != snap.opt_state[i].shape())
          return Status::Corruption("optimizer state shape mismatch");
        *tensors[i] = snap.opt_state[i].Clone();
      }
      opt->set_lr(snap.opt_lr);
      opt->set_step_count(snap.opt_steps);
      return Status::OK();
    }
    case ValueKind::kScheduler: {
      nn::LrScheduler* sched = live->AsScheduler();
      if (sched->Kind() != snap.sched_kind)
        return Status::Corruption("scheduler kind mismatch");
      sched->set_epoch(snap.sched_epoch);
      return Status::OK();
    }
    case ValueKind::kLoader:
      return Status::OK();
    case ValueKind::kRng:
      live->AsRng()->SetState(snap.rng_state);
      return Status::OK();
  }
  return Status::Internal("unreachable");
}

}  // namespace ir
}  // namespace flor
