// Fluent construction of training-script programs.
//
// Loop ids and statement uids are assigned in construction order, so two
// builds of the same script (e.g. one per parallel replay worker) produce
// structurally identical programs — the property version diffing and
// checkpoint keying rely on.

#ifndef FLOR_IR_BUILDER_H_
#define FLOR_IR_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "ir/program.h"

namespace flor {
namespace ir {

/// Builds a Program. Usage:
///
///   ProgramBuilder b;
///   b.CallAssign({"net"}, "build_model", {}, make_model_fn);
///   b.BeginLoop("e", num_epochs);
///     b.BeginLoop("i", "num_batches");
///       ...
///     b.EndLoop();
///     b.Log("train_acc", acc_fn);
///   b.EndLoop();
///   auto program = b.Build();
class ProgramBuilder {
 public:
  ProgramBuilder();

  /// Rule 3: targets = reads.
  ProgramBuilder& Assign(std::vector<std::string> targets,
                         std::vector<std::string> reads, StmtFn fn);

  /// Rule 2: targets = callee(reads).
  ProgramBuilder& CallAssign(std::vector<std::string> targets,
                             std::string callee,
                             std::vector<std::string> reads, StmtFn fn);

  /// Rule 1: targets = receiver.callee(reads).
  ProgramBuilder& MethodAssign(std::vector<std::string> targets,
                               std::string receiver, std::string callee,
                               std::vector<std::string> reads, StmtFn fn);

  /// Rule 4: receiver.callee(reads).
  ProgramBuilder& MethodCall(std::string receiver, std::string callee,
                             std::vector<std::string> reads, StmtFn fn);

  /// Rule 5: callee(reads) — opaque side effects.
  ProgramBuilder& OpaqueCall(std::string callee,
                             std::vector<std::string> reads, StmtFn fn);

  /// Probe/log statement: flor.log(label, <expr over reads>).
  ProgramBuilder& Log(std::string label, LogFn fn,
                      std::vector<std::string> reads = {});

  /// Sets the simulated cost (seconds) of the most recent statement.
  ProgramBuilder& Cost(double seconds);

  /// Sets the wall-clock cost (seconds) of the most recent statement —
  /// a real bounded wait modeling blocking device time (ir/stmt.h).
  ProgramBuilder& WallCost(double seconds);

  /// Opens a loop with a literal trip count.
  ProgramBuilder& BeginLoop(std::string var, int64_t fixed_count);

  /// Opens a loop whose trip count is read from a frame variable.
  ProgramBuilder& BeginLoopVar(std::string var, std::string count_var);

  ProgramBuilder& EndLoop();

  /// Finalizes the program. Precondition: all loops closed.
  std::unique_ptr<Program> Build();

 private:
  Block* CurrentBlock();
  Stmt* Append(Stmt stmt);

  std::unique_ptr<Program> program_;
  std::vector<Loop*> loop_stack_;
  Stmt* last_stmt_ = nullptr;
  int32_t next_loop_id_ = 1;
  int32_t next_stmt_uid_ = 1;
};

}  // namespace ir
}  // namespace flor

#endif  // FLOR_IR_BUILDER_H_
