#include "ir/diff.h"

#include "common/strings.h"

namespace flor {
namespace ir {

namespace {

/// Parsed line tree of a recorded source file.
struct RecItem {
  bool is_loop = false;
  std::string text;     // statement rendering (stmt items)
  int32_t loop_id = -1; // loop items
  std::string header;   // loop header text
  std::vector<RecItem> children;
};

struct Parser {
  std::vector<std::string> lines;
  size_t pos = 0;

  static int IndentOf(const std::string& line) {
    int spaces = 0;
    for (char c : line) {
      if (c == ' ') {
        ++spaces;
      } else {
        break;
      }
    }
    return spaces / 4;
  }

  /// Parses items at `level` until a line with smaller indent appears.
  Status ParseBlock(int level, std::vector<RecItem>* out) {
    while (pos < lines.size()) {
      const std::string& line = lines[pos];
      if (line.empty()) {
        ++pos;
        continue;
      }
      const int indent = IndentOf(line);
      if (indent < level) return Status::OK();
      if (indent > level)
        return Status::Corruption(
            StrCat("unexpected indent at line ", pos + 1));
      std::string body = line.substr(static_cast<size_t>(level) * 4);
      RecItem item;
      if (StartsWith(body, "for ")) {
        // "for e in range(...):  # L<id>"
        const auto marker = body.rfind("# L");
        if (marker == std::string::npos)
          return Status::Corruption("loop header missing id marker: " + body);
        item.is_loop = true;
        item.header = body;
        item.loop_id = static_cast<int32_t>(
            std::strtol(body.c_str() + marker + 3, nullptr, 10));
        ++pos;
        FLOR_RETURN_IF_ERROR(ParseBlock(level + 1, &item.children));
      } else {
        item.text = body;
        ++pos;
      }
      out->push_back(std::move(item));
    }
    return Status::OK();
  }
};

/// Recursive alignment of recorded items against the current block.
Status AlignBlock(const std::vector<RecItem>& rec, const Block& cur,
                  int32_t enclosing_loop_id, ProbeReport* report) {
  size_t ri = 0;
  for (const auto& node : cur.nodes) {
    if (node.is_stmt()) {
      const Stmt& stmt = *node.stmt;
      const std::string rendering = stmt.Render();
      if (ri < rec.size() && !rec[ri].is_loop && rec[ri].text == rendering) {
        ++ri;
        continue;
      }
      if (stmt.is_log()) {
        // Inserted hindsight logging statement.
        report->probe_stmt_uids.insert(stmt.uid);
        if (enclosing_loop_id < 0) {
          report->preamble_probed = true;
        } else {
          report->probed_loops.insert(enclosing_loop_id);
        }
        continue;
      }
      return Status::InvalidArgument(
          StrCat("replay version modifies non-log code: current has '",
                 rendering, "', recorded has '",
                 ri < rec.size() ? (rec[ri].is_loop ? rec[ri].header
                                                    : rec[ri].text)
                                 : std::string("<end of block>"),
                 "'"));
    }
    // Current node is a loop.
    const Loop& loop = *node.loop;
    if (ri >= rec.size() || !rec[ri].is_loop ||
        rec[ri].loop_id != loop.id() ||
        rec[ri].header != loop.RenderHeader()) {
      return Status::InvalidArgument(
          StrCat("replay version changes loop structure at L", loop.id()));
    }
    FLOR_RETURN_IF_ERROR(
        AlignBlock(rec[ri].children, loop.body(), loop.id(), report));
    ++ri;
  }
  if (ri < rec.size()) {
    return Status::InvalidArgument(
        StrCat("replay version deletes recorded code: '",
               rec[ri].is_loop ? rec[ri].header : rec[ri].text, "'"));
  }
  return Status::OK();
}

}  // namespace

Result<ProbeReport> DiffForProbes(const std::string& recorded_source,
                                  const Program& current) {
  Parser parser;
  parser.lines = StrSplit(recorded_source, '\n');
  // Skip the "import flor" banner if present.
  if (!parser.lines.empty() && parser.lines[0] == "import flor")
    parser.pos = 1;
  std::vector<RecItem> rec;
  FLOR_RETURN_IF_ERROR(parser.ParseBlock(0, &rec));

  ProbeReport report;
  FLOR_RETURN_IF_ERROR(AlignBlock(rec, current.top(), -1, &report));
  return report;
}

}  // namespace ir
}  // namespace flor
