// Tensor (de)serialization into the checkpoint byte format.
// Layout: [u8 dtype][varint rank][varint dims...][raw data LE].

#ifndef FLOR_TENSOR_SERIALIZE_H_
#define FLOR_TENSOR_SERIALIZE_H_

#include <string>

#include "common/status.h"
#include "serialize/coding.h"
#include "tensor/tensor.h"

namespace flor {

/// Appends the encoded tensor to `dst`.
void EncodeTensor(std::string* dst, const Tensor& t);

/// Decodes one tensor from the cursor.
Result<Tensor> DecodeTensor(Decoder* dec);

/// One-shot helpers.
std::string TensorToBytes(const Tensor& t);
Result<Tensor> TensorFromBytes(const std::string& bytes);

}  // namespace flor

#endif  // FLOR_TENSOR_SERIALIZE_H_
