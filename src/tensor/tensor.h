// Dense tensors — the data substrate standing in for PyTorch tensors.
//
// Semantics mirror torch where it matters to Flor:
//   * copying a Tensor is shallow (shares storage), like Python references;
//   * `Clone()` deep-copies — this is what a checkpoint snapshot uses (the
//     analog of fork()'s copy-on-write page copy);
//   * `Fingerprint()` gives a cheap content hash used by the deferred
//     correctness checks and by tests asserting replay ≡ record.
// Two dtypes: float32 (weights, activations) and int64 (token ids, labels).

#ifndef FLOR_TENSOR_TENSOR_H_
#define FLOR_TENSOR_TENSOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/status.h"
#include "tensor/shape.h"

namespace flor {

enum class DType : uint8_t { kF32 = 0, kI64 = 1 };

const char* DTypeName(DType t);
size_t DTypeSize(DType t);

/// Reference-counted dense tensor.
class Tensor {
 public:
  /// Empty scalar f32 tensor.
  Tensor();

  /// Uninitialized (zeroed) tensor of the given shape/dtype.
  explicit Tensor(Shape shape, DType dtype = DType::kF32);

  /// f32 tensor initialized from values. Precondition: sizes match.
  Tensor(Shape shape, std::vector<float> values);
  /// i64 tensor initialized from values. Precondition: sizes match.
  Tensor(Shape shape, std::vector<int64_t> values);

  static Tensor Scalar(float v);
  static Tensor ScalarI64(int64_t v);

  const Shape& shape() const { return shape_; }
  DType dtype() const { return dtype_; }
  int64_t numel() const { return shape_.numel(); }
  uint64_t byte_size() const {
    return static_cast<uint64_t>(numel()) * DTypeSize(dtype_);
  }

  /// Raw element access. Preconditions: correct dtype, index in range.
  float* f32();
  const float* f32() const;
  int64_t* i64();
  const int64_t* i64() const;

  float at(int64_t i) const;
  int64_t at_i64(int64_t i) const;

  /// Scalar value of a 1-element tensor (any rank).
  float item() const;

  /// Deep copy (fresh storage).
  Tensor Clone() const;

  /// True if the two tensors share storage.
  bool SharesStorageWith(const Tensor& other) const;

  /// Content hash over dtype, shape, and data bytes.
  uint64_t Fingerprint() const;

  /// Bitwise equality of dtype, shape and contents.
  bool Equals(const Tensor& other) const;

  /// Approximate equality for f32 tensors (elementwise |a-b| <= tol).
  bool AllClose(const Tensor& other, float tol = 1e-5f) const;

  /// Short debug form: "f32[2, 3] {0.1, 0.2, ...}".
  std::string ToString(int64_t max_elems = 8) const;

 private:
  struct Storage {
    std::vector<float> f32;
    std::vector<int64_t> i64;
  };

  Shape shape_;
  DType dtype_;
  std::shared_ptr<Storage> storage_;
};

}  // namespace flor

#endif  // FLOR_TENSOR_TENSOR_H_
