#include "tensor/serialize.h"

#include <cstring>

namespace flor {

void EncodeTensor(std::string* dst, const Tensor& t) {
  dst->push_back(static_cast<char>(t.dtype()));
  PutVarint64(dst, static_cast<uint64_t>(t.shape().rank()));
  for (int64_t d : t.shape().dims())
    PutVarint64(dst, static_cast<uint64_t>(d));
  const int64_t n = t.numel();
  if (t.dtype() == DType::kF32) {
    const size_t bytes = static_cast<size_t>(n) * sizeof(float);
    const size_t off = dst->size();
    dst->resize(off + bytes);
    std::memcpy(dst->data() + off, t.f32(), bytes);
  } else {
    const size_t bytes = static_cast<size_t>(n) * sizeof(int64_t);
    const size_t off = dst->size();
    dst->resize(off + bytes);
    std::memcpy(dst->data() + off, t.i64(), bytes);
  }
}

Result<Tensor> DecodeTensor(Decoder* dec) {
  uint8_t dtype_byte;
  FLOR_RETURN_IF_ERROR(dec->GetRaw(&dtype_byte, 1));
  if (dtype_byte > static_cast<uint8_t>(DType::kI64))
    return Status::Corruption("bad tensor dtype byte");
  const DType dtype = static_cast<DType>(dtype_byte);
  uint64_t rank;
  FLOR_RETURN_IF_ERROR(dec->GetVarint64(&rank));
  if (rank > 8) return Status::Corruption("tensor rank too large");
  std::vector<int64_t> dims(rank);
  uint64_t numel = 1;
  for (auto& d : dims) {
    uint64_t v;
    FLOR_RETURN_IF_ERROR(dec->GetVarint64(&v));
    d = static_cast<int64_t>(v);
    numel *= v;
  }
  const size_t bytes = numel * DTypeSize(dtype);
  if (dec->remaining() < bytes)
    return Status::Corruption("tensor data truncated");
  Shape shape(std::move(dims));
  if (dtype == DType::kF32) {
    std::vector<float> data(numel);
    FLOR_RETURN_IF_ERROR(dec->GetRaw(data.data(), bytes));
    return Tensor(std::move(shape), std::move(data));
  }
  std::vector<int64_t> data(numel);
  FLOR_RETURN_IF_ERROR(dec->GetRaw(data.data(), bytes));
  return Tensor(std::move(shape), std::move(data));
}

std::string TensorToBytes(const Tensor& t) {
  std::string out;
  EncodeTensor(&out, t);
  return out;
}

Result<Tensor> TensorFromBytes(const std::string& bytes) {
  Decoder dec(bytes);
  FLOR_ASSIGN_OR_RETURN(Tensor t, DecodeTensor(&dec));
  if (!dec.done()) return Status::Corruption("trailing bytes after tensor");
  return t;
}

}  // namespace flor
