#include "tensor/shape.h"

#include "common/strings.h"

namespace flor {

int64_t Shape::numel() const {
  int64_t n = 1;
  for (int64_t d : dims_) n *= d;
  return n;
}

std::vector<int64_t> Shape::Strides() const {
  std::vector<int64_t> strides(dims_.size(), 1);
  for (int64_t i = rank() - 2; i >= 0; --i) {
    strides[static_cast<size_t>(i)] =
        strides[static_cast<size_t>(i + 1)] * dims_[static_cast<size_t>(i + 1)];
  }
  return strides;
}

std::string Shape::ToString() const {
  std::string s = "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i) s += ", ";
    s += StrCat(dims_[i]);
  }
  s += "]";
  return s;
}

}  // namespace flor
