// Tensor shapes: a small value type over dimension extents.

#ifndef FLOR_TENSOR_SHAPE_H_
#define FLOR_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace flor {

/// Dimension extents of a tensor. Rank 0 denotes a scalar.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int64_t rank() const { return static_cast<int64_t>(dims_.size()); }
  int64_t dim(int64_t i) const { return dims_[static_cast<size_t>(i)]; }
  const std::vector<int64_t>& dims() const { return dims_; }

  /// Total element count (1 for scalars).
  int64_t numel() const;

  /// Row-major strides.
  std::vector<int64_t> Strides() const;

  /// "[2, 3, 4]"
  std::string ToString() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

 private:
  std::vector<int64_t> dims_;
};

}  // namespace flor

#endif  // FLOR_TENSOR_SHAPE_H_
